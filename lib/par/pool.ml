(* A fixed pool of OCaml 5 domains executing site-addressed tasks.

   Each worker domain owns a deque; [submit ~site] routes the task to
   deque [site mod domains], mirroring how the Rediflow scheduler maps a
   task's home site to a processing element.  An idle worker first drains
   its own deque from the front (oldest local work first, preserving
   flood order), then steals from the back of its neighbours' deques, and
   only then parks on the pool's condition variable.

   The pool makes no determinism promise about execution order — that is
   the deterministic engine's job.  Callers get determinism of *results*
   the same way the paper does: single-assignment data (Lcell, immutable
   versions) makes the task graph confluent, so any schedule converges to
   the same answers. *)

let m_tasks = Fdb_obs.Metrics.counter "par.pool_tasks"
let m_steals = Fdb_obs.Metrics.counter "par.pool_steals"

(* A tiny growable ring deque; every access is under the owning lock. *)
module Deque = struct
  type 'a t = {
    mutable buf : 'a option array;
    mutable head : int;  (* index of front element *)
    mutable len : int;
  }

  let create () = { buf = Array.make 16 None; head = 0; len = 0 }

  let grow d =
    let cap = Array.length d.buf in
    let buf' = Array.make (2 * cap) None in
    for i = 0 to d.len - 1 do
      buf'.(i) <- d.buf.((d.head + i) mod cap)
    done;
    d.buf <- buf';
    d.head <- 0

  let push_back d x =
    if d.len = Array.length d.buf then grow d;
    d.buf.((d.head + d.len) mod Array.length d.buf) <- Some x;
    d.len <- d.len + 1

  let pop_front d =
    if d.len = 0 then None
    else begin
      let x = d.buf.(d.head) in
      d.buf.(d.head) <- None;
      d.head <- (d.head + 1) mod Array.length d.buf;
      d.len <- d.len - 1;
      x
    end

  let pop_back d =
    if d.len = 0 then None
    else begin
      let i = (d.head + d.len - 1) mod Array.length d.buf in
      let x = d.buf.(i) in
      d.buf.(i) <- None;
      d.len <- d.len - 1;
      x
    end
end

type t = {
  n : int;
  deques : (unit -> unit) Deque.t array;
  locks : Mutex.t array;  (* one per deque *)
  queued : int Atomic.t;  (* submitted, not yet taken by a worker *)
  unfinished : int Atomic.t;  (* submitted, not yet completed *)
  park : Mutex.t;  (* parking lot: idle workers and barrier waiters *)
  work_cond : Condition.t;
  done_cond : Condition.t;
  mutable stopping : bool;  (* under [park] *)
  mutable first_error : exn option;  (* under [park] *)
  executed : int array;  (* per worker, own slot only *)
  steals : int Atomic.t;
  mutable workers : unit Domain.t array;
}

type stats = { domains : int; executed : int array; steals : int }

let try_take pool me =
  (* Own deque from the front; then steal from the back, nearest first. *)
  let take i ~front =
    Mutex.lock pool.locks.(i);
    let x =
      if front then Deque.pop_front pool.deques.(i)
      else Deque.pop_back pool.deques.(i)
    in
    Mutex.unlock pool.locks.(i);
    x
  in
  match take me ~front:true with
  | Some _ as t -> t
  | None ->
      let rec scan k =
        if k >= pool.n then None
        else
          match take ((me + k) mod pool.n) ~front:false with
          | Some _ as t ->
              Atomic.incr pool.steals;
              Fdb_obs.Metrics.incr m_steals;
              t
          | None -> scan (k + 1)
      in
      scan 1

let complete pool =
  if Atomic.fetch_and_add pool.unfinished (-1) = 1 then begin
    Mutex.lock pool.park;
    Condition.broadcast pool.done_cond;
    Mutex.unlock pool.park
  end

let record_error pool exn =
  Mutex.lock pool.park;
  if pool.first_error = None then pool.first_error <- Some exn;
  Mutex.unlock pool.park

let worker pool me () =
  let rec loop () =
    match try_take pool me with
    | Some task ->
        Atomic.decr pool.queued;
        pool.executed.(me) <- pool.executed.(me) + 1;
        (try task () with exn -> record_error pool exn);
        complete pool;
        loop ()
    | None ->
        Mutex.lock pool.park;
        let continue =
          if Atomic.get pool.queued > 0 then true  (* raced a submit: rescan *)
          else if pool.stopping then false
          else begin
            Condition.wait pool.work_cond pool.park;
            true
          end
        in
        Mutex.unlock pool.park;
        if continue then loop ()
  in
  loop ()

let create ?domains () =
  let n =
    match domains with
    | Some d ->
        if d < 1 || d > 128 then invalid_arg "Pool.create: domains must be in 1..128";
        d
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  let pool =
    {
      n;
      deques = Array.init n (fun _ -> Deque.create ());
      locks = Array.init n (fun _ -> Mutex.create ());
      queued = Atomic.make 0;
      unfinished = Atomic.make 0;
      park = Mutex.create ();
      work_cond = Condition.create ();
      done_cond = Condition.create ();
      stopping = false;
      first_error = None;
      executed = Array.make n 0;
      steals = Atomic.make 0;
      workers = [||];
    }
  in
  pool.workers <- Array.init n (fun i -> Domain.spawn (worker pool i));
  pool

let size pool = pool.n

let submit pool ~site task =
  let i = ((site mod pool.n) + pool.n) mod pool.n in
  Atomic.incr pool.unfinished;
  Atomic.incr pool.queued;
  Fdb_obs.Metrics.incr m_tasks;
  Mutex.lock pool.locks.(i);
  Deque.push_back pool.deques.(i) task;
  Mutex.unlock pool.locks.(i);
  Mutex.lock pool.park;
  Condition.signal pool.work_cond;
  Mutex.unlock pool.park

let wait pool =
  Mutex.lock pool.park;
  while Atomic.get pool.unfinished > 0 do
    Condition.wait pool.done_cond pool.park
  done;
  let err = pool.first_error in
  pool.first_error <- None;
  Mutex.unlock pool.park;
  match err with None -> () | Some exn -> raise exn

let stats pool =
  {
    domains = pool.n;
    executed = Array.copy pool.executed;
    steals = Atomic.get pool.steals;
  }

let shutdown pool =
  wait pool;
  Mutex.lock pool.park;
  pool.stopping <- true;
  Condition.broadcast pool.work_cond;
  Mutex.unlock pool.park;
  Array.iter Domain.join pool.workers;
  pool.workers <- [||]

let with_pool ?domains f =
  let pool = create ?domains () in
  match f pool with
  | v ->
      shutdown pool;
      v
  | exception exn ->
      (try shutdown pool with _ -> ());
      raise exn
