open Fdb_relational
module Txn = Fdb_txn.Txn
module History = Fdb_txn.History
module Pool = Fdb_par.Pool
module Metrics = Fdb_obs.Metrics
module Trace = Fdb_obs.Trace
module Event = Fdb_obs.Event

let m_spec = Metrics.counter "repair.spec_execs"
let m_hits = Metrics.counter "repair.spec_hits"
let m_redo = Metrics.counter "repair.reexecs"
let m_rounds = Metrics.counter "repair.rounds"
let m_disjoint = Metrics.counter "repair.bypass.disjoint"
let m_commute = Metrics.counter "repair.bypass.commute"
let m_adopt = Metrics.counter "repair.adopted_slots"
let h_rounds = Metrics.histogram "repair.rounds_per_batch"

type stats = {
  txns : int;
  rounds : int;
  spec_hits : int;
  reexecs : int;
  bypass_disjoint : int;
  bypass_commute : int;
  adopted_slots : int;
}

let zero_stats =
  {
    txns = 0;
    rounds = 0;
    spec_hits = 0;
    reexecs = 0;
    bypass_disjoint = 0;
    bypass_commute = 0;
    adopted_slots = 0;
  }

let add_stats a b =
  {
    txns = a.txns + b.txns;
    rounds = a.rounds + b.rounds;
    spec_hits = a.spec_hits + b.spec_hits;
    reexecs = a.reexecs + b.reexecs;
    bypass_disjoint = a.bypass_disjoint + b.bypass_disjoint;
    bypass_commute = a.bypass_commute + b.bypass_commute;
    adopted_slots = a.adopted_slots + b.adopted_slots;
  }

let pp_stats ppf s =
  Fmt.pf ppf
    "txns=%d rounds=%d spec_hits=%d reexecs=%d bypass=%d+%d adopted=%d" s.txns
    s.rounds s.spec_hits s.reexecs s.bypass_disjoint s.bypass_commute
    s.adopted_slots

type report = {
  responses : Txn.response list;
  history : History.t;
  final : Database.t;
  stats : stats;
}

(* One transaction's latest (speculative or repaired) execution. *)
type exec_result = {
  resp : Txn.response;
  db_after : Database.t;
  fp : Footprint.t;
  base_db : Database.t;  (** the version it executed against *)
  base : int;  (** how many batch predecessors that version finalises *)
  round : int;
}

module Ix = Fdb_index.Index

let exec_tracked ?index query db =
  let c = Footprint.collector () in
  let tracker = Footprint.tracker c in
  let (resp, db') =
    match index with
    | Some session ->
        (* Speculative executions read the session's indexes (whose store
           tracks the committed prefix — exactly each round's base version)
           but never mutate them: maintenance happens once, at the serial
           commit point below. *)
        Txn.translate_indexed ~tracker
          (Ix.Session.use ~maintain:false session)
          query db
    | None -> Txn.translate_tracked tracker query db
  in
  (resp, db', Footprint.captured c)

let run_batch ?pool ?domains ?index ?(batch_id = 0) db0 queries =
  let go pool =
    let qs = Array.of_list queries in
    let n = Array.length qs in
    let schema_of rel = Database.schema_of db0 rel in
    let traced = Trace.enabled () in
    if traced then Trace.emit (Event.Repair_batch { batch = batch_id; size = n });
    let results = Array.make n None in
    let get j =
      match results.(j) with Some r -> r | None -> assert false
    in
    let reexecs = ref 0 in
    let execute ~round ~base ~base_db idxs =
      List.iter
        (fun j ->
          if round = 0 then Metrics.incr m_spec
          else begin
            incr reexecs;
            Metrics.incr m_redo
          end;
          if traced then
            Trace.emit
              (if round = 0 then Event.Repair_spec { batch = batch_id; txn = j }
               else Event.Repair_redo { batch = batch_id; txn = j; round });
          let run () =
            let (resp, db_after, fp) = exec_tracked ?index qs.(j) base_db in
            results.(j) <- Some { resp; db_after; fp; base_db; base; round }
          in
          (* The trace sink is a plain closure — not domain-safe — so traced
             runs execute inline on the coordinator. *)
          if traced then run () else Pool.submit pool ~site:j run)
        idxs;
      if not traced then Pool.wait pool
    in
    execute ~round:0 ~base:0 ~base_db:db0 (List.init n Fun.id);
    (* Conflict test: does earlier transaction [i]'s current publication
       invalidate later transaction [j]'s recorded reads? *)
    let disjoint = ref 0 and commute = ref 0 in
    let damages i j =
      match Footprint.overlap ~writer:(get i).fp ~reader:(get j).fp with
      | Footprint.No_overlap -> false
      | Footprint.Key_disjoint ->
          incr disjoint;
          Metrics.incr m_disjoint;
          false
      | Footprint.Overlapping ->
          if Footprint.commutes ~schema_of (get i).fp qs.(j) then begin
            incr commute;
            Metrics.incr m_commute;
            false
          end
          else true
    in
    let versions = Array.make n db0 in
    let current = ref db0 in
    let committed = ref 0 in
    let rounds = ref 0 in
    let spec_hits = ref 0 in
    let adopted = ref 0 in
    (* Replay [r]'s publication onto the running version.  When a touched
       relation slot is physically unchanged since [r]'s base version, the
       speculatively built slot *is* the serial result — adopt it O(1)
       instead of replaying tuple by tuple. *)
    let apply_effects v (r : exec_result) =
      List.fold_left
        (fun v (rel, (removed, added)) ->
          if
            Database.shares_relation ~old:r.base_db v rel
            && Option.is_some (Database.relation r.db_after rel)
          then begin
            incr adopted;
            Metrics.incr m_adopt;
            match Database.relation r.db_after rel with
            | Some slot -> Database.replace v rel slot
            | None -> v
          end
          else
            let v =
              List.fold_left
                (fun v t ->
                  match Database.delete v ~rel ~key:(Tuple.key t) with
                  | Ok (v', _) -> v'
                  | Error _ -> v)
                v removed
            in
            List.fold_left
              (fun v t ->
                match Database.insert v ~rel t with
                | Ok (v', _) -> v'
                | Error _ -> v)
              v added)
        v r.fp.Footprint.effects
    in
    let commit j =
      let r = get j in
      let v' = apply_effects !current r in
      versions.(j) <- v';
      current := v';
      (* Indexes advance at the serial commit point, in batch order, from
         the same effect list just replayed onto the base — so every index
         of a relation sees the same base size, in lockstep. *)
      (match index with
      | Some session -> Ix.Session.apply_effects session v' r.fp.Footprint.effects
      | None -> ());
      if r.round = 0 then begin
        incr spec_hits;
        Metrics.incr m_hits
      end;
      if traced then
        Trace.emit
          (Event.Repair_commit { batch = batch_id; txn = j; round = r.round })
    in
    let rec fix () =
      let damaged = ref [] in
      for j = n - 1 downto !committed do
        let b = (get j).base in
        let rec scan i = i < j && (damages i j || scan (i + 1)) in
        if scan (max b !committed) then damaged := j :: !damaged
      done;
      match !damaged with
      | [] -> for j = !committed to n - 1 do commit j done
      | m :: _ as ds ->
          incr rounds;
          Metrics.incr m_rounds;
          if traced then
            Trace.emit
              (Event.Repair_round
                 { batch = batch_id; round = !rounds; damaged = List.length ds });
          (* Everything before the first damaged transaction is final: its
             validity was checked against every (now final) predecessor. *)
          for j = !committed to m - 1 do commit j done;
          committed := m;
          execute ~round:!rounds ~base:m ~base_db:!current ds;
          fix ()
    in
    fix ();
    Metrics.observe h_rounds !rounds;
    let history =
      History.of_versions (List.rev (db0 :: Array.to_list versions))
    in
    {
      responses = List.init n (fun j -> (get j).resp);
      history;
      final = !current;
      stats =
        {
          txns = n;
          rounds = !rounds;
          spec_hits = !spec_hits;
          reexecs = !reexecs;
          bypass_disjoint = !disjoint;
          bypass_commute = !commute;
          adopted_slots = !adopted;
        };
    }
  in
  match pool with Some p -> go p | None -> Pool.with_pool ?domains go
