module Make (Elt : Ordered.S) = struct
  type t = Leaf | Node of t * Elt.t * t * int

  let empty = Leaf

  let height = function Leaf -> 0 | Node (_, _, _, h) -> h

  let node ?meter l x r =
    Meter.alloc meter 1;
    Node (l, x, r, 1 + max (height l) (height r))

  (* Rebalance a node whose children differ in height by at most 2. *)
  let balance ?meter l x r =
    let hl = height l and hr = height r in
    if hl > hr + 1 then
      match l with
      | Leaf -> assert false
      | Node (ll, lx, lr, _) ->
          if height ll >= height lr then node ?meter ll lx (node ?meter lr x r)
          else begin
            match lr with
            | Leaf -> assert false
            | Node (lrl, lrx, lrr, _) ->
                node ?meter (node ?meter ll lx lrl) lrx (node ?meter lrr x r)
          end
    else if hr > hl + 1 then
      match r with
      | Leaf -> assert false
      | Node (rl, rx, rr, _) ->
          if height rr >= height rl then node ?meter (node ?meter l x rl) rx rr
          else begin
            match rl with
            | Leaf -> assert false
            | Node (rll, rlx, rlr, _) ->
                node ?meter (node ?meter l x rll) rlx (node ?meter rlr rx rr)
          end
    else node ?meter l x r

  let rec member x = function
    | Leaf -> false
    | Node (l, y, r, _) ->
        let c = Elt.compare x y in
        if c = 0 then true else if c < 0 then member x l else member x r

  let rec find x = function
    | Leaf -> None
    | Node (l, y, r, _) ->
        let c = Elt.compare x y in
        if c = 0 then Some y else if c < 0 then find x l else find x r

  let insert ?meter x t =
    let rec go = function
      | Leaf -> node ?meter Leaf x Leaf
      | Node (l, y, r, _) as whole ->
          let c = Elt.compare x y in
          if c = 0 then whole
          else if c < 0 then
            let l' = go l in
            if l' == l then whole else balance ?meter l' y r
          else
            let r' = go r in
            if r' == r then whole else balance ?meter l y r'
    in
    go t

  (* Remove and return the smallest element of a nonempty tree. *)
  let rec take_min ?meter = function
    | Leaf -> assert false
    | Node (Leaf, y, r, _) -> (y, r)
    | Node (l, y, r, _) ->
        let (m, l') = take_min ?meter l in
        (m, balance ?meter l' y r)

  let delete ?meter x t =
    let rec go = function
      | Leaf -> (Leaf, false)
      | Node (l, y, r, _) as whole ->
          let c = Elt.compare x y in
          if c = 0 then
            match (l, r) with
            | (Leaf, _) -> (r, true)
            | (_, Leaf) -> (l, true)
            | _ ->
                let (m, r') = take_min ?meter r in
                (balance ?meter l m r', true)
          else if c < 0 then begin
            let (l', found) = go l in
            if found then (balance ?meter l' y r, true) else (whole, false)
          end
          else begin
            let (r', found) = go r in
            if found then (balance ?meter l y r', true) else (whole, false)
          end
    in
    go t

  let of_list xs = List.fold_left (fun t x -> insert x t) empty xs

  let fold ?meter f acc t =
    let rec go acc = function
      | Leaf -> acc
      | Node (l, x, r, _) ->
          Meter.alloc meter 1;
          go (f (go acc l) x) r
    in
    go acc t

  let iter f t =
    let rec go = function
      | Leaf -> ()
      | Node (l, x, r, _) ->
          go l;
          f x;
          go r
    in
    go t

  let range_fold ?meter ~ge_lo ~le_hi f acc t =
    (* Subtree pruning: everything left of a node below the lower bound is
       also below it, and symmetrically on the right, so only the O(log n)
       boundary paths plus the in-range subtrees are visited (and metered). *)
    let rec go acc = function
      | Leaf -> acc
      | Node (l, y, r, _) ->
          Meter.alloc meter 1;
          let acc = if ge_lo y then go acc l else acc in
          let acc = if ge_lo y && le_hi y then f acc y else acc in
          if le_hi y then go acc r else acc
    in
    go acc t

  let rewrite ?meter ~ge_lo ~le_hi f t =
    let count = ref 0 in
    let rec go = function
      | Leaf -> Leaf
      | Node (l, y, r, h) as whole ->
          let l' = if ge_lo y then go l else l in
          let y' =
            if ge_lo y && le_hi y then
              match f y with
              | None -> y
              | Some z ->
                  if Elt.compare z y <> 0 then
                    invalid_arg "Avl.rewrite: replacement reorders element";
                  incr count;
                  z
            else y
          in
          let r' = if le_hi y then go r else r in
          if l' == l && y' == y && r' == r then whole
          else begin
            (* Keys are unchanged, so the shape (and every height) is too. *)
            Meter.alloc meter 1;
            Node (l', y', r', h)
          end
    in
    let t' = go t in
    (t', !count)

  let to_list t =
    let rec go acc = function
      | Leaf -> acc
      | Node (l, x, r, _) -> go (x :: go acc r) l
    in
    go [] t

  let rec size = function
    | Leaf -> 0
    | Node (l, _, r, _) -> 1 + size l + size r

  let shared_nodes ~old t =
    (* Collect the old version's physical nodes, then walk the new one.
       Subtree sharing lets us stop descending once a whole subtree is
       physically present in the old version. *)
    let module H = Hashtbl.Make (struct
      type nonrec t = t

      let equal = ( == )

      (* Structural hash (depth-limited by Hashtbl.hash, so O(1)); combined
         with physical equality this is a correct identity table. *)
      let hash = Hashtbl.hash
    end) in
    let seen = H.create 64 in
    let rec remember = function
      | Leaf -> ()
      | Node (l, _, r, _) as n ->
          if not (H.mem seen n) then begin
            H.add seen n ();
            remember l;
            remember r
          end
    in
    remember old;
    let rec go (shared, total) = function
      | Leaf -> (shared, total)
      | Node (l, _, r, _) as n ->
          if H.mem seen n then (shared + size n, total + size n)
          else go (go (shared, total + 1) l) r
    in
    go (0, 0) t

  exception Broken

  let invariant t =
    (* Returns (height, bounds) where bounds = Some (min, max). *)
    let rec check = function
      | Leaf -> (0, None)
      | Node (l, x, r, h) ->
          let (hl, bl) = check l and (hr, br) = check r in
          if abs (hl - hr) > 1 || h <> 1 + max hl hr then raise Broken;
          (match bl with
          | Some (_, lmax) when Elt.compare lmax x >= 0 -> raise Broken
          | _ -> ());
          (match br with
          | Some (rmin, _) when Elt.compare x rmin >= 0 -> raise Broken
          | _ -> ());
          let mn = match bl with Some (m, _) -> m | None -> x in
          let mx = match br with Some (_, m) -> m | None -> x in
          (h, Some (mn, mx))
    in
    match check t with _ -> true | exception Broken -> false
end
