module Event = Fdb_obs.Event

type violation = { invariant : string; index : int; detail : string }

let v invariant index fmt = Format.kasprintf (fun detail -> { invariant; index; detail }) fmt

(* Every reply the primary (site 0) releases for a replicated commit must
   be covered by a backup ack: at reply time, some [Replica_ack] with
   [upto > index of the commit] must already have been seen.  Dedup-cache
   resends obey the same law — their commit was released once before. *)
let ack_before_reply events =
  let violations = ref [] in
  let acked = ref 0 in
  let commits : (int * int, int * bool) Hashtbl.t = Hashtbl.create 64 in
  List.iteri
    (fun i (ev : Event.t) ->
      if ev.site = 0 then
        match ev.kind with
        | Event.Replica_commit { index; client; seq; backed } ->
            Hashtbl.replace commits (client, seq) (index, backed)
        | Event.Replica_ack { upto } -> if upto > !acked then acked := upto
        | Event.Replica_reply { client; seq; status = "committed" } -> (
            match Hashtbl.find_opt commits (client, seq) with
            | None ->
                violations :=
                  v "ack_before_reply" i
                    "reply to client %d seq %d with no prior commit" client seq
                  :: !violations
            | Some (index, backed) ->
                if backed && index >= !acked then
                  violations :=
                    v "ack_before_reply" i
                      "reply to client %d seq %d released at log index %d \
                       with acks only up to %d"
                      client seq index !acked
                    :: !violations)
        | _ -> ())
    events;
  List.rev !violations

(* Promotion declares a suffix length; exactly that many replay events must
   follow, and none may precede the promotion. *)
let exact_suffix_replay events =
  let violations = ref [] in
  let suffix = ref None in
  let replayed = ref 0 in
  List.iteri
    (fun i (ev : Event.t) ->
      match ev.kind with
      | Event.Replica_promote { suffix = n } -> suffix := Some n
      | Event.Replica_replay _ -> (
          match !suffix with
          | None ->
              violations :=
                v "exact_suffix_replay" i "replay before any promotion"
                :: !violations
          | Some _ -> incr replayed)
      | _ -> ())
    events;
  (match !suffix with
  | Some n when n <> !replayed ->
      violations :=
        v "exact_suffix_replay" (List.length events)
          "promotion declared a %d-record suffix, %d records replayed" n
          !replayed
        :: !violations
  | _ -> ());
  List.rev !violations

let single_assignment events =
  let violations = ref [] in
  let written : (int, int) Hashtbl.t = Hashtbl.create 256 in
  List.iteri
    (fun i (ev : Event.t) ->
      match ev.kind with
      | Event.Cell_write { cell } -> (
          match Hashtbl.find_opt written cell with
          | Some first ->
              violations :=
                v "single_assignment" i
                  "cell #%d written twice (first at event %d)" cell first
                :: !violations
          | None -> Hashtbl.replace written cell i)
      | _ -> ())
    events;
  List.rev !violations

let fabric_conservation events =
  let violations = ref [] in
  let check_net i (n : Event.net) =
    if n.in_flight <> n.sent - n.delivered - n.faulted then
      violations :=
        v "fabric_conservation" i
          "fab %d: in_flight %d <> sent %d - delivered %d - faulted %d" n.fab
          n.in_flight n.sent n.delivered n.faulted
        :: !violations;
    if n.in_flight < 0 then
      violations :=
        v "fabric_conservation" i "fab %d: in_flight %d negative" n.fab
          n.in_flight
        :: !violations
  in
  List.iteri
    (fun i (ev : Event.t) ->
      match ev.kind with
      | Event.Dg_send n | Event.Dg_deliver n | Event.Dg_drop n -> check_net i n
      | _ -> ())
    events;
  List.rev !violations

(* Dispatch spans never interleave on one site — the chain hands version
   i+1 over before dispatching i+1 — and transactions start in id order. *)
let dispatch_spans events =
  let violations = ref [] in
  let open_span : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let last_started : (int, int) Hashtbl.t = Hashtbl.create 8 in
  List.iteri
    (fun i (ev : Event.t) ->
      match ev.kind with
      | Event.Dispatch_start { txn; _ } ->
          (match Hashtbl.find_opt open_span ev.site with
          | Some inner ->
              violations :=
                v "dispatch_spans" i
                  "dispatch %d starts inside still-open dispatch %d on site %d"
                  txn inner ev.site
                :: !violations
          | None -> Hashtbl.replace open_span ev.site txn);
          (match Hashtbl.find_opt last_started ev.site with
          | Some prev when txn <= prev ->
              violations :=
                v "dispatch_spans" i
                  "dispatch %d starts after dispatch %d on site %d" txn prev
                  ev.site
                :: !violations
          | _ -> ());
          Hashtbl.replace last_started ev.site txn
      | Event.Dispatch_end { txn; _ } -> (
          match Hashtbl.find_opt open_span ev.site with
          | Some open_txn when open_txn = txn -> Hashtbl.remove open_span ev.site
          | Some open_txn ->
              violations :=
                v "dispatch_spans" i
                  "dispatch %d ends while dispatch %d is open on site %d" txn
                  open_txn ev.site
                :: !violations
          | None ->
              violations :=
                v "dispatch_spans" i "dispatch %d ends without a start" txn
                :: !violations)
      | _ -> ())
    events;
  Hashtbl.iter
    (fun site txn ->
      violations :=
        v "dispatch_spans" (List.length events)
          "dispatch %d on site %d never ended" txn site
        :: !violations)
    open_span;
  List.rev !violations

(* Speculation must converge: within a batch, every transaction that was
   speculated or re-executed is eventually committed exactly once, nothing
   re-executes after its commit, commits are released in batch order, and
   the number of repair rounds never exceeds the batch size (the repair
   fixpoint's termination bound: the first damaged index strictly
   increases every round). *)
let repair_convergence events =
  let violations = ref [] in
  let note idx fmt = Format.kasprintf (fun detail -> violations := { invariant = "repair_convergence"; index = idx; detail } :: !violations) fmt in
  let sizes : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let execs : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let commits : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let last_commit : (int, int) Hashtbl.t = Hashtbl.create 8 in
  List.iteri
    (fun i (ev : Event.t) ->
      match ev.kind with
      | Event.Repair_batch { batch; size } -> Hashtbl.replace sizes batch size
      | Event.Repair_spec { batch; txn } | Event.Repair_redo { batch; txn; _ }
        ->
          (match Hashtbl.find_opt commits (batch, txn) with
          | Some at ->
              note i
                "batch %d: txn %d re-executed after its commit (event %d)"
                batch txn at
          | None -> ());
          Hashtbl.replace execs (batch, txn) i
      | Event.Repair_round { batch; round; _ } -> (
          match Hashtbl.find_opt sizes batch with
          | Some n when round > n ->
              note i "batch %d: repair round %d exceeds batch size %d" batch
                round n
          | Some _ -> ()
          | None -> note i "batch %d: repair round without a batch start" batch)
      | Event.Repair_commit { batch; txn; _ } ->
          if not (Hashtbl.mem execs (batch, txn)) then
            note i "batch %d: txn %d committed without executing" batch txn;
          (match Hashtbl.find_opt commits (batch, txn) with
          | Some first ->
              note i "batch %d: txn %d committed twice (first at event %d)"
                batch txn first
          | None -> Hashtbl.replace commits (batch, txn) i);
          (match Hashtbl.find_opt last_commit batch with
          | Some prev when txn <= prev ->
              note i
                "batch %d: txn %d commits after txn %d — out of batch order"
                batch txn prev
          | _ -> ());
          Hashtbl.replace last_commit batch txn
      | _ -> ())
    events;
  let missing = ref [] in
  Hashtbl.iter
    (fun (batch, txn) at ->
      if not (Hashtbl.mem commits (batch, txn)) then
        missing := (at, batch, txn) :: !missing)
    execs;
  List.iter
    (fun (at, batch, txn) ->
      note at "batch %d: txn %d speculated but never committed" batch txn)
    (List.sort compare !missing);
  List.sort
    (fun a b -> compare (a.index, a.detail) (b.index, b.detail))
    !violations

(* No committed-but-lost versions at any fsync boundary: whatever a sync
   or checkpoint promised durable must come back from recovery, recovery
   can never invent versions past the last append, appends advance one
   version at a time (resetting after a recovery, which may legitimately
   roll the tail back to the durable mark), and a segment is deleted only
   after a checkpoint heading a strictly newer segment was synced. *)
let durability events =
  let violations = ref [] in
  let note idx fmt =
    Format.kasprintf
      (fun detail ->
        violations := { invariant = "durability"; index = idx; detail } :: !violations)
      fmt
  in
  let durable = ref None in
  (* newest promised-durable version index *)
  let appended = ref None in
  (* newest appended version index *)
  let ckpt_seg = ref None in
  (* newest synced checkpoint's segment *)
  List.iteri
    (fun i (ev : Event.t) ->
      match ev.kind with
      | Event.Wal_append { index; _ } ->
          (match !appended with
          | Some a when index <> a + 1 ->
              note i "append of version %d after version %d (expected %d)"
                index a (a + 1)
          | _ -> ());
          appended := Some index
      | Event.Wal_sync { upto } -> (
          (match !appended with
          | Some a when upto > a ->
              note i "sync promises version %d durable, only %d appended" upto a
          | None when upto > 0 ->
              note i "sync promises version %d durable before any append" upto
          | _ -> ());
          match !durable with
          | Some d when upto < d ->
              note i "sync rolls the durable mark back from %d to %d" d upto
          | _ -> durable := Some upto)
      | Event.Wal_checkpoint { upto; segment; _ } ->
          (match !durable with
          | Some d when upto < d ->
              note i "checkpoint covers %d, behind the durable mark %d" upto d
          | _ -> durable := Some upto);
          (match !ckpt_seg with
          | Some s when segment <= s ->
              note i "checkpoint segment %d not newer than segment %d" segment s
          | _ -> ());
          ckpt_seg := Some segment
      | Event.Wal_segment_delete { segment } -> (
          match !ckpt_seg with
          | None ->
              note i "segment %d deleted before any synced checkpoint" segment
          | Some s when segment >= s ->
              note i
                "segment %d deleted but the newest synced checkpoint heads \
                 segment %d"
                segment s
          | Some _ -> ())
      | Event.Wal_recovered { upto; base; _ } ->
          (match !durable with
          | Some d when upto < d ->
              note i
                "recovery reached version %d but versions up to %d were \
                 promised durable — committed versions lost"
                upto d
          | _ -> ());
          (match !appended with
          | Some a when upto > a ->
              note i "recovery invented version %d, only %d ever appended"
                upto a
          | _ -> ());
          if upto < base then
            note i "recovered range [%d..%d] is empty" base upto;
          (* A restarted writer continues from the recovered tail. *)
          appended := Some upto;
          durable := Some upto
      | _ -> ())
    events;
  List.rev !violations

(* Indexes advance in lockstep with their base relation: every maintenance
   event must leave the index covering exactly as many tuples as the base
   relation holds at that point, and all indexes of one relation must see
   the same sequence of base sizes — an index that skips or reorders a
   write shows up as a diverging base sequence even if its own cardinality
   happens to match. *)
let index_coherence events =
  let violations = ref [] in
  let note idx fmt =
    Format.kasprintf
      (fun detail ->
        violations :=
          { invariant = "index_coherence"; index = idx; detail } :: !violations)
      fmt
  in
  (* rel -> (index name, base size, event position) in emission order *)
  let maint : (string, (string * int * int) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iteri
    (fun i (ev : Event.t) ->
      match ev.kind with
      | Event.Index_maintain { rel; index; kind = _; base; entries } ->
          if entries <> base then
            note i
              "index %s on %s covers %d tuples while the base relation \
               holds %d"
              index rel entries base;
          let cell =
            match Hashtbl.find_opt maint rel with
            | Some r -> r
            | None ->
                let r = ref [] in
                Hashtbl.replace maint rel r;
                r
          in
          cell := (index, base, i) :: !cell
      | _ -> ())
    events;
  let rels =
    List.sort compare (Hashtbl.fold (fun rel _ acc -> rel :: acc) maint [])
  in
  List.iter
    (fun rel ->
      let steps = List.rev !(Hashtbl.find maint rel) in
      let names =
        List.sort_uniq compare (List.map (fun (n, _, _) -> n) steps)
      in
      let seq_of name =
        List.filter_map
          (fun (n, base, at) -> if String.equal n name then Some (base, at) else None)
          steps
      in
      match names with
      | [] | [ _ ] -> ()
      | first :: rest ->
          let ref_seq = seq_of first in
          List.iter
            (fun name ->
              let s = seq_of name in
              if List.length s <> List.length ref_seq then
                note (List.length events)
                  "indexes %s and %s on %s saw %d and %d writes" first name
                  rel (List.length ref_seq) (List.length s)
              else
                List.iter2
                  (fun (b1, _) (b2, at) ->
                    if b1 <> b2 then
                      note at
                        "index %s on %s saw base size %d where index %s saw \
                         %d — maintenance out of lockstep"
                        name rel b2 first b1)
                  ref_seq s)
            rest)
    rels;
  List.rev !violations

(* The two-level merge's ordering laws: every shard-local commit stream is
   gap-free (positions are exactly 0, 1, 2, ... per shard — a committed
   version can never be skipped or reordered within a shard), the global
   spine releases its sequence numbers in exactly increasing order (it is
   the single serial stream), and no transaction the analysis saw conflict
   may take the bypass — a bypassed non-commuting pair would make the
   shards' independent orders observably diverge. *)
let shard_serializability events =
  let violations = ref [] in
  let note idx fmt =
    Format.kasprintf
      (fun detail ->
        violations :=
          { invariant = "shard_serializability"; index = idx; detail }
          :: !violations)
      fmt
  in
  let pos : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let gsn = ref 0 in
  let conflicted : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let bypassed : (int, int) Hashtbl.t = Hashtbl.create 16 in
  List.iteri
    (fun i (ev : Event.t) ->
      match ev.kind with
      | Event.Shard_commit { shard; txn; pos = p } ->
          let expect =
            Option.value ~default:0 (Hashtbl.find_opt pos shard)
          in
          if p <> expect then
            note i
              "shard %d: txn %d commits at stream position %d, expected %d \
               — gap or reorder in the shard-local stream"
              shard txn p expect;
          Hashtbl.replace pos shard (max (p + 1) (expect + 1))
      | Event.Shard_spine { txn; gsn = g } ->
          if g <> !gsn then
            note i
              "txn %d takes global sequence number %d, expected %d — spine \
               out of global-merge order"
              txn g !gsn;
          gsn := max (g + 1) (!gsn + 1);
          (match Hashtbl.find_opt bypassed txn with
          | Some at ->
              note i "txn %d on the spine after bypassing it (event %d)" txn at
          | None -> ())
      | Event.Shard_conflict { txn; against } -> (
          Hashtbl.replace conflicted txn i;
          match Hashtbl.find_opt bypassed txn with
          | Some at ->
              note i
                "txn %d bypassed the spine (event %d) despite a non-commuting \
                 conflict with txn %d"
                txn at against
          | None -> ())
      | Event.Shard_bypass { txn; _ } -> (
          Hashtbl.replace bypassed txn i;
          match Hashtbl.find_opt conflicted txn with
          | Some at ->
              note i
                "txn %d bypasses the spine despite the non-commuting conflict \
                 seen at event %d"
                txn at
          | None -> ())
      | _ -> ())
    events;
  List.rev !violations

let invariant_names =
  [
    "ack_before_reply";
    "exact_suffix_replay";
    "single_assignment";
    "fabric_conservation";
    "dispatch_spans";
    "repair_convergence";
    "durability";
    "index_coherence";
    "shard_serializability";
  ]

let check events =
  ack_before_reply events
  @ exact_suffix_replay events
  @ single_assignment events
  @ fabric_conservation events
  @ dispatch_spans events
  @ repair_convergence events
  @ durability events
  @ index_coherence events
  @ shard_serializability events

let pp_violation ppf { invariant; index; detail } =
  Format.fprintf ppf "%s at event %d: %s" invariant index detail
