open Fdb_relational

type bound = { value : Value.t; inclusive : bool }

type path =
  | Point_lookup of Value.t
  | Range_scan of { lo : bound option; hi : bound option }
  | Full_scan

type t = { path : path; residual : Ast.pred }

(* Flatten the top-level [And] spine into a conjunct list; [True] conjuncts
   vanish.  Disjunctions and negations stay opaque (a single conjunct). *)
let conjuncts pred =
  let rec go acc = function
    | Ast.And (a, b) -> go (go acc a) b
    | Ast.True -> acc
    | p -> p :: acc
  in
  List.rev (go [] pred)

let conjoin = function
  | [] -> Ast.True
  | p :: rest -> List.fold_left (fun acc q -> Ast.And (acc, q)) p rest

let key_column schema =
  match Schema.columns schema with
  | (name, _) :: _ -> name
  | [] -> assert false (* Schema.make rejects empty column lists *)

(* Tighter of two bounds of the same side.  [keep_gt] chooses the greater
   value (lower bounds tighten upward), its negation the smaller (upper
   bounds tighten downward); at equal values the exclusive bound wins. *)
let tighten ~keep_gt cur cand =
  match cur with
  | None -> Some cand
  | Some b ->
      let c = Value.compare cand.value b.value in
      if c = 0 then
        Some (if b.inclusive then cand else b)
      else if (c > 0) = keep_gt then Some cand
      else Some b

let analyze schema pred =
  let key = key_column schema in
  let atoms = conjuncts pred in
  (* First pass: a key-equality atom makes the path a point lookup and every
     other conjunct residual (further bounds would be redundant next to a
     single-key probe, and a contradictory one falsifies the residual). *)
  let rec find_eq seen = function
    | [] -> None
    | Ast.Cmp (col, Ast.Eq, v) :: rest when String.equal col key ->
        Some (v, List.rev_append seen rest)
    | atom :: rest -> find_eq (atom :: seen) rest
  in
  match find_eq [] atoms with
  | Some (v, rest) -> { path = Point_lookup v; residual = conjoin rest }
  | None ->
      let lo = ref None and hi = ref None and residual = ref [] in
      List.iter
        (fun atom ->
          match atom with
          | Ast.Cmp (col, op, v) when String.equal col key -> (
              match op with
              | Ast.Gt -> lo := tighten ~keep_gt:true !lo { value = v; inclusive = false }
              | Ast.Ge -> lo := tighten ~keep_gt:true !lo { value = v; inclusive = true }
              | Ast.Lt -> hi := tighten ~keep_gt:false !hi { value = v; inclusive = false }
              | Ast.Le -> hi := tighten ~keep_gt:false !hi { value = v; inclusive = true }
              | Ast.Eq | Ast.Ne -> residual := atom :: !residual)
          | _ -> residual := atom :: !residual)
        atoms;
      let residual = conjoin (List.rev !residual) in
      (match (!lo, !hi) with
      | (None, None) -> { path = Full_scan; residual }
      | (lo, hi) -> { path = Range_scan { lo; hi }; residual })

let pp_bound side ppf = function
  | None -> Format.pp_print_string ppf (if side = `Lo then "-inf" else "+inf")
  | Some { value; inclusive } ->
      let op =
        match (side, inclusive) with
        | (`Lo, true) -> ">="
        | (`Lo, false) -> ">"
        | (`Hi, true) -> "<="
        | (`Hi, false) -> "<"
      in
      Format.fprintf ppf "key %s %a" op Value.pp value

let pp_path ppf = function
  | Point_lookup v -> Format.fprintf ppf "point lookup key = %a" Value.pp v
  | Range_scan { lo; hi } ->
      Format.fprintf ppf "range scan [%a, %a]" (pp_bound `Lo) lo
        (pp_bound `Hi) hi
  | Full_scan -> Format.pp_print_string ppf "full scan"

let pp ppf { path; residual } =
  pp_path ppf path;
  match residual with
  | Ast.True -> ()
  | p -> Format.fprintf ppf "; residual %a" Ast.pp_pred p

let to_string plan = Format.asprintf "%a" pp plan

(* -- indexed planning ------------------------------------------------------ *)

type index_kind =
  | Ix_secondary
  | Ix_covering of string list
  | Ix_derived of string

type index_desc = {
  ix_name : string;
  ix_rel : string;
  ix_col : string;
  ix_kind : index_kind;
}

let index_kind_name = function
  | Ix_secondary -> "secondary"
  | Ix_covering _ -> "covering"
  | Ix_derived _ -> "derived"

type ipath =
  | Primary of path
  | Index_scan of {
      ix : index_desc;
      ilo : bound option;
      ihi : bound option;
      only : bool;
    }
  | Index_group of { ix : index_desc; group : Value.t }

type iplan = { ipath : ipath; iresidual : Ast.pred }

type want = Want_all | Want_cols of string list | Want_base

let rec pred_columns acc = function
  | Ast.True -> acc
  | Ast.Cmp (c, _, _) -> c :: acc
  | Ast.And (a, b) | Ast.Or (a, b) -> pred_columns (pred_columns acc a) b
  | Ast.Not p -> pred_columns acc p

(* How an index's column appears in the conjunct list: an equality atom
   (preferred — a single probe), or range atoms tightened per side.  The
   absorbed atoms are removed; everything else is returned as residual, in
   the original conjunct order. *)
let index_match col atoms =
  let rec find_eq seen = function
    | [] -> None
    | Ast.Cmp (c, Ast.Eq, v) :: rest when String.equal c col ->
        Some (v, List.rev_append seen rest)
    | atom :: rest -> find_eq (atom :: seen) rest
  in
  match find_eq [] atoms with
  | Some (v, rest) ->
      let b = Some { value = v; inclusive = true } in
      Some (`Eq, b, b, rest)
  | None ->
      let lo = ref None and hi = ref None and residual = ref [] in
      List.iter
        (fun atom ->
          match atom with
          | Ast.Cmp (c, op, v) when String.equal c col -> (
              match op with
              | Ast.Gt ->
                  lo := tighten ~keep_gt:true !lo { value = v; inclusive = false }
              | Ast.Ge ->
                  lo := tighten ~keep_gt:true !lo { value = v; inclusive = true }
              | Ast.Lt ->
                  hi := tighten ~keep_gt:false !hi { value = v; inclusive = false }
              | Ast.Le ->
                  hi := tighten ~keep_gt:false !hi { value = v; inclusive = true }
              | Ast.Eq | Ast.Ne -> residual := atom :: !residual)
          | _ -> residual := atom :: !residual)
        atoms;
      (match (!lo, !hi) with
      | (None, None) -> None
      | (lo, hi) -> Some (`Range, lo, hi, List.rev !residual))

let scan_indexes indexes =
  List.filter
    (fun ix ->
      match ix.ix_kind with
      | Ix_secondary | Ix_covering _ -> true
      | Ix_derived _ -> false)
    indexes

(* Can [ix] answer the read without touching the base relation?  Only a
   covering index, and only when every column the executor still needs —
   residual tests plus the requested output — is stored in the payload. *)
let index_only ix ~wanted schema residual =
  match ix.ix_kind with
  | Ix_secondary | Ix_derived _ -> false
  | Ix_covering stored ->
      let needed =
        match wanted with
        | Want_base -> None
        | Want_all -> Some (List.map fst (Schema.columns schema))
        | Want_cols cs -> Some (pred_columns cs residual)
      in
      (match needed with
      | None -> false
      | Some cols ->
          List.for_all (fun c -> List.exists (String.equal c) stored) cols)

(* Path preference, most to least selective: primary point lookup, index
   equality probe (covering before secondary: it may go index-only), primary
   range scan, index range, full scan.  A primary range beats an index range
   because the latter pays a base fetch per entry; an index equality beats a
   primary range because it is O(log n + k) on the probed group alone. *)
let analyze_indexed schema ~indexes ~wanted pred =
  let primary = analyze schema pred in
  match primary.path with
  | Point_lookup _ -> { ipath = Primary primary.path; iresidual = primary.residual }
  | Range_scan _ | Full_scan ->
      let atoms = conjuncts pred in
      let covering_first =
        let (cov, sec) =
          List.partition
            (fun ix ->
              match ix.ix_kind with Ix_covering _ -> true | _ -> false)
            (scan_indexes indexes)
        in
        cov @ sec
      in
      let matches =
        List.filter_map
          (fun ix ->
            Option.map
              (fun (shape, ilo, ihi, rest) -> (ix, shape, ilo, ihi, rest))
              (index_match ix.ix_col atoms))
          covering_first
      in
      let eq_match =
        List.find_opt (fun (_, shape, _, _, _) -> shape = `Eq) matches
      in
      let range_match =
        List.find_opt (fun (_, shape, _, _, _) -> shape = `Range) matches
      in
      let pick =
        match (primary.path, eq_match, range_match) with
        | (_, Some m, _) -> Some m
        | (Full_scan, None, Some m) -> Some m
        | _ -> None
      in
      (match pick with
      | None -> { ipath = Primary primary.path; iresidual = primary.residual }
      | Some (ix, _, ilo, ihi, rest) ->
          let iresidual = conjoin rest in
          let only = index_only ix ~wanted schema iresidual in
          { ipath = Index_scan { ix; ilo; ihi; only }; iresidual })

(* A derived index answers an aggregate in O(log n) only when the predicate
   is {e exactly} one equality on its group column — then the probed group
   is precisely the matching tuple set and the maintained count/sum/min/max
   is the answer.  Any residual conjunct, or an aggregate over a column
   other than the maintained target, disqualifies it. *)
let analyze_group schema ~indexes ~target pred =
  match conjuncts pred with
  | [ Ast.Cmp (col, Ast.Eq, v) ] ->
      let answers ix =
        String.equal ix.ix_col col
        &&
        match (ix.ix_kind, target) with
        | (Ix_derived _, `Count) -> true
        | (Ix_derived tgt, `Agg ((Ast.Min | Ast.Max), c)) -> String.equal tgt c
        | (Ix_derived tgt, `Agg (Ast.Sum, c)) ->
            String.equal tgt c
            && (match Schema.column_index schema c with
               | None -> false
               | Some i -> (
                   match snd (List.nth (Schema.columns schema) i) with
                   | Schema.CInt | Schema.CReal -> true
                   | Schema.CStr | Schema.CBool -> false))
        | ((Ix_secondary | Ix_covering _), _) -> false
      in
      Option.map
        (fun ix -> { ipath = Index_group { ix; group = v }; iresidual = Ast.True })
        (List.find_opt answers indexes)
  | _ -> None

let pp_ibound col side ppf = function
  | None -> Format.pp_print_string ppf (if side = `Lo then "-inf" else "+inf")
  | Some { value; inclusive } ->
      let op =
        match (side, inclusive) with
        | (`Lo, true) -> ">="
        | (`Lo, false) -> ">"
        | (`Hi, true) -> "<="
        | (`Hi, false) -> "<"
      in
      Format.fprintf ppf "%s %s %a" col op Value.pp value

let pp_ipath ppf = function
  | Primary p -> pp_path ppf p
  | Index_scan { ix; ilo; ihi; only } -> (
      let tag = if only then "index-only" else "index" in
      match (ilo, ihi) with
      | (Some l, Some h)
        when l.inclusive && h.inclusive && Value.equal l.value h.value ->
          Format.fprintf ppf "%s probe %s [%s = %a]" tag ix.ix_name ix.ix_col
            Value.pp l.value
      | _ ->
          Format.fprintf ppf "%s range %s [%a, %a]" tag ix.ix_name
            (pp_ibound ix.ix_col `Lo) ilo
            (pp_ibound ix.ix_col `Hi) ihi)
  | Index_group { ix; group } ->
      Format.fprintf ppf "derived index %s [%s = %a]" ix.ix_name ix.ix_col
        Value.pp group

let pp_iplan ppf { ipath; iresidual } =
  pp_ipath ppf ipath;
  match iresidual with
  | Ast.True -> ()
  | p -> Format.fprintf ppf "; residual %a" Ast.pp_pred p

let iplan_to_string plan = Format.asprintf "%a" pp_iplan plan

let explain ~schema_of query =
  let planned verb rel where extra =
    match schema_of rel with
    | None -> Format.asprintf "%s %s: unknown relation" verb rel
    | Some schema ->
        Format.asprintf "%s %s: %a%s" verb rel pp (analyze schema where) extra
  in
  match query with
  | Ast.Select { rel; cols; where } ->
      let extra =
        match cols with
        | None -> ""
        | Some cs -> "; project " ^ String.concat ", " cs
      in
      planned "select" rel where extra
  | Ast.Count { rel; where } -> (
      match where with
      | Ast.True -> Format.asprintf "count %s: size accessor" rel
      | _ -> planned "count" rel where "")
  | Ast.Aggregate { rel; where; _ } -> planned "aggregate" rel where ""
  | Ast.Update { rel; where; _ } -> planned "update" rel where ""
  | Ast.Find { rel; key } ->
      Format.asprintf "find %s: point lookup key = %s" rel
        (Format.asprintf "%a" Value.pp key)
  | Ast.Insert { rel; _ } -> Format.asprintf "insert %s: ordered insert" rel
  | Ast.Delete { rel; key } ->
      Format.asprintf "delete %s: point delete key = %s" rel
        (Format.asprintf "%a" Value.pp key)
  | Ast.Join { left; right; _ } ->
      Format.asprintf "join %s x %s: hash join (build %s, probe %s)" left
        right right left

let explain_indexed ~schema_of ~indexes_of query =
  let planned verb rel where ~wanted extra =
    match schema_of rel with
    | None -> Format.asprintf "%s %s: unknown relation" verb rel
    | Some schema ->
        let ip = analyze_indexed schema ~indexes:(indexes_of rel) ~wanted where in
        Format.asprintf "%s %s: %a%s" verb rel pp_iplan ip extra
  in
  let grouped verb rel where ~target k =
    match schema_of rel with
    | None -> Some (Format.asprintf "%s %s: unknown relation" verb rel)
    | Some schema ->
        Option.map
          (fun ip -> Format.asprintf "%s %s: %a%s" verb rel pp_iplan ip (k schema))
          (analyze_group schema ~indexes:(indexes_of rel) ~target where)
  in
  match query with
  | Ast.Select { rel; cols; where } ->
      let extra =
        match cols with
        | None -> ""
        | Some cs -> "; project " ^ String.concat ", " cs
      in
      let wanted = match cols with None -> Want_all | Some cs -> Want_cols cs in
      planned "select" rel where ~wanted extra
  | Ast.Count { rel; where } -> (
      match where with
      | Ast.True -> Format.asprintf "count %s: size accessor" rel
      | _ -> (
          match grouped "count" rel where ~target:`Count (fun _ -> "") with
          | Some line -> line
          | None -> planned "count" rel where ~wanted:(Want_cols []) ""))
  | Ast.Aggregate { agg; rel; col; where } -> (
      match grouped "aggregate" rel where ~target:(`Agg (agg, col)) (fun _ -> "")
      with
      | Some line -> line
      | None -> planned "aggregate" rel where ~wanted:Want_base "")
  | Ast.Update _ | Ast.Find _ | Ast.Insert _ | Ast.Delete _ | Ast.Join _ ->
      explain ~schema_of query
