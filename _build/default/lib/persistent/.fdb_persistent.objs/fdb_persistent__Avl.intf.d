lib/persistent/avl.mli: Meter Ordered
