(** Persistent ordered linked list — the relation representation used in the
    paper's experiments ("for simplicity, a linked-list implementation of
    both the database and individual relations was used", §4).

    An ordered insert copies the prefix before the insertion point and
    shares the suffix; this is the pure counterpart of
    {!Fdb_lenient.Llist.insert_ordered}. *)

module Make (Elt : Ordered.S) : sig
  type t

  val empty : t

  val of_list : Elt.t list -> t
  (** Sorts the input. *)

  val to_list : t -> Elt.t list

  val size : t -> int

  val is_empty : t -> bool

  val member : Elt.t -> t -> bool

  val find : (Elt.t -> bool) -> t -> Elt.t option

  val insert : ?meter:Meter.t -> Elt.t -> t -> t
  (** Ordered insert; duplicates are kept adjacent.  Meters one allocation
      per copied cell plus one for the new cell. *)

  val delete : ?meter:Meter.t -> Elt.t -> t -> t * bool
  (** Remove the first element equal to the argument. *)

  val shared_cells : old:t -> t -> int * int
  (** [(shared, total)]: of the new version's [total] cells, how many are
      physically shared with the old version. *)

  val invariant : t -> bool
  (** Elements are in nondecreasing order. *)
end
