lib/lenient/lmerge.ml: Engine Fdb_kernel List Llist
