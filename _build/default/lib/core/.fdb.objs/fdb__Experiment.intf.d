lib/core/experiment.mli: Fdb_net Fdb_query Fdb_workload Format Pipeline Topology
