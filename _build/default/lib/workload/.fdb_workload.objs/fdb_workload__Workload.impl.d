lib/workload/workload.ml: Array Fdb_query Fdb_relational Float List Printf Random Schema Tuple Value
