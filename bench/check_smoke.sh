#!/bin/sh
# Tier-1 smoke for the serializability harness: sweep seeds 1..5 through
# every merge policy and the fault-injected network path.  Run by the
# default test alias (see bench/dune); standalone:
#   sh bench/check_smoke.sh _build/default/bin/fdbsim.exe
set -e
FDBSIM="${1:-_build/default/bin/fdbsim.exe}"
BENCH="${2:-_build/default/bench/main.exe}"
case "$BENCH" in */*) ;; *) BENCH="./$BENCH" ;; esac
"$FDBSIM" check --seed 1 --sweep 5
"$FDBSIM" check --seed 6 --sweep 2 --clients 4 --txns 8 --relations 3
# Crash-failover smoke: 6 consecutive seeds cover each crash kind twice
# (mid-stream, mid-checkpoint, mid-replay).
"$FDBSIM" recover --seed 1 --sweep 6
# Planner smoke: the access-path sweep must run end to end on every backend
# (quick sizes; the JSON artifact goes to a scratch path).
"$BENCH" plan --quick -o "${TMPDIR:-/tmp}/BENCH_plan_smoke.json" > /dev/null
# Observability smoke: disabled tracing must add zero allocations to the
# hot path, and the trace exporter must produce a law-abiding Chrome trace.
"$BENCH" trace-overhead > /dev/null
"$FDBSIM" trace --seed 2 -o "${TMPDIR:-/tmp}/trace_smoke.json" > /dev/null
# Repair smoke: a short speculative sweep — parallel batches, traced inline
# run and sequential engine must agree, traces must satisfy every law.
"$FDBSIM" repair --seed 1 --sweep 3 --domains 2 > /dev/null
# Durability smoke: crash-restart recovery under every disk fault kind and
# checkpoint interval (2 seeds per cell), and the restart-recovery bench.
"$FDBSIM" recover-disk --seed 1 --sweep 2 > /dev/null
"$BENCH" wal --quick -o "${TMPDIR:-/tmp}/BENCH_wal_smoke.json" > /dev/null
# Shard smoke: the full default sweep is cheap (128 scenarios) — sharded
# executor, sequential engine, epoch-reordered replay and oracle must all
# agree, with shard_serializability holding on every trace; plus the
# spine-share bench (quick sizes, artifact to a scratch path).
"$FDBSIM" shard --seed 1 > /dev/null
"$BENCH" shard --quick -o "${TMPDIR:-/tmp}/BENCH_shard_smoke.json" > /dev/null
# Index smoke: the indexed interpreter must agree with the plain one with
# the store coherent and the trace laws holding, and a default stats sweep
# must surface the indexed-planner decision counters and the maintenance
# histograms in its snapshot.
"$FDBSIM" index --seed 1 --sweep 3 > /dev/null
STATS=$("$FDBSIM" stats --seed 1 --sweep 8)
for metric in plan.index_probe plan.index_only plan.index_aggregate \
    plan.scan_fallback index.maintain_allocs; do
  echo "$STATS" | grep -q "$metric" || {
    echo "fdbsim stats is missing $metric" >&2
    exit 1
  }
done
# Traffic smoke: the open-loop harness through every execution mode on two
# layouts — final states must agree (the command exits 1 on divergence) —
# plus a quick bench run (artifact to a scratch path).
"$FDBSIM" traffic -n 600 --tuples 2000 > /dev/null
"$BENCH" traffic --quick -o "${TMPDIR:-/tmp}/BENCH_traffic_smoke.json" > /dev/null
