(** Primary/backup replication of the version stream, with crash failover.

    The server half of the failure-transparency opportunity (§1), built on
    the same observation as {!Snapshot}: because versions share structure,
    shipping checkpoints of the complete archive is cheap, and recovery is
    checkpoint + replay of a short log suffix.

    The moving parts, all driven by one deterministic discrete-time loop:

    - {b Primary} (node 0): commits client queries in per-client sequence
      order against its {!Fdb_txn.History.t}, streams every committed
      (client, seq, query, response) record to the backup over
      {!Fdb_net.Reliable}, and every [checkpoint_every] commits ships a
      {!Snapshot}-encoded checkpoint plus its per-client dedup table.
      Replies are {e gated on replication}: a client is only told
      [Committed] once the backup has acknowledged the record's log index,
      so an acknowledged commit can never die with the primary.
    - {b Backup} (node 1): reassembles the replication stream by log
      index, acknowledges its contiguous prefix, and installs checkpoints
      (truncating the covered log).  It does {e not} eagerly execute
      records — promotion-time replay is exactly the log suffix past the
      last installed checkpoint, measured by the [replayed] counter.
    - {b Failure detector} (crash-stop): both nodes exchange seeded
      heartbeats; after [detector_timeout] silent ticks the backup promotes
      itself by replaying its suffix at [replay_rate] records per tick,
      then serves as the new primary.  Replayed responses are compared
      against the recorded ones ([replay_mismatches] must stay 0 — the
      version stream is a pure function of the merged query stream).
    - {b Clients} (nodes 2..): closed-loop, at most one outstanding query,
      retried over raw datagrams with capped exponential backoff; after two
      consecutive timeouts they switch servers.  While failover is in
      progress the backup answers read-only queries from its newest
      installed version, explicitly tagged [Stale] (never recorded as a
      commit); writes get [Not_ready].  Exactly-once across failover comes
      from the replicated dedup table: a retried query that already
      committed is answered from the response cache, not re-applied. *)

open Fdb_relational
module Ast = Fdb_query.Ast
module Txn = Fdb_txn.Txn

type crash_point =
  | No_crash
  | Mid_stream of int
      (** primary dies right after its [n]-th commit, with that commit's
          replication record still in its NIC buffers *)
  | Mid_checkpoint of int
      (** primary dies the tick after emitting its [n]-th checkpoint: the
          checkpoint is lost with it and recovery falls back to the
          previous one plus a longer suffix *)
  | Mid_replay of int
      (** like [Mid_stream n], but replay is throttled to one record per
          tick so live traffic demonstrably overlaps recovery (stale reads,
          [Not_ready] writes) *)

type config = {
  checkpoint_every : int;  (** commits per checkpoint; 0 disables *)
  replay_rate : int;  (** log records replayed per promotion tick *)
  client_timeout : int;  (** initial client retry timeout, ticks *)
  client_backoff_cap : int;  (** retry timeout cap *)
  heartbeat_every : int;
  detector_timeout : int;  (** silent ticks before the backup promotes *)
  drop_one_in : int;  (** lossy medium under everything; 0 disables *)
  seed : int;
  crash : crash_point;
}

val default_config : config

type report = {
  responses : Txn.response list list;
      (** committed responses per client, in stream order — feed to
          {!Fdb_check.Oracle.check} *)
  final : Database.t;  (** surviving server's newest version *)
  history_len : int;  (** surviving server's archive length *)
  crashed : bool;  (** did the configured crash actually fire *)
  committed_primary : int;  (** live commits at node 0 before the crash *)
  committed_backup : int;  (** live commits at node 1 after promotion *)
  replayed : int;  (** records re-executed during promotion *)
  log_suffix_at_crash : int;
      (** backup log length minus checkpoint cover at promotion: the
          instrumentation check is [replayed = log_suffix_at_crash] *)
  discarded_log : int;
      (** non-contiguous log entries dropped at promotion (never
          acknowledged to any client, so safe to lose) *)
  checkpoints_sent : int;
  checkpoints_installed : int;
  checkpoint_bytes : int;  (** total {!Snapshot} bytes shipped *)
  stale_served : int;  (** tagged stale reads answered during degradation *)
  not_ready : int;  (** writes refused while not primary *)
  client_retries : int;
  dedup_hits : int;  (** retries answered from the response cache *)
  acked_lost : (int * int) list;
      (** acknowledged (client, seq) commits missing from the surviving
          server — must be [[]] *)
  dup_applied : int;
      (** (client, seq) pairs applied more than once on the surviving
          server — must be 0 *)
  replay_mismatches : int;
      (** replayed response disagreed with the recorded one — must be 0 *)
  crash_tick : int option;
  promoted_tick : int option;
  recovery_ticks : int option;  (** promotion end minus crash tick *)
  ticks : int;
  net : Fdb_net.Reliable.stats;
}

val run : ?config:config -> initial:Database.t -> Ast.query list list -> report
(** [run ~initial streams] drives every client stream to completion
    through the replicated pair.
    Deterministic in (config, initial, streams).
    @raise Invalid_argument on an empty stream list or a bad config.
    @raise Failure if the system fails to quiesce within its tick budget
    (diagnostic message includes per-client progress and network stats). *)

val pp_report : Format.formatter -> report -> unit
(** One-paragraph summary (commit counts, recovery, checkpoint economy). *)
