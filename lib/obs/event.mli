(** Typed trace events.

    One constructor per observable action in the stack; every layer emits
    through {!Fdb_obs.Trace} so a single captured trace interleaves kernel
    cell traffic, dispatch spans, planner decisions, datagram motion and
    replication protocol steps in emission order.  Emission order is the
    ground truth the {i trace oracles} reason about — the [ts] field is
    layer-local (engine cycles, fabric clock ticks, replica ticks) and is
    only used for display. *)

type net = {
  fab : int;  (** fabric instance id — traces can interleave several *)
  src : int;
  dst : int;
  sent : int;
  delivered : int;
  faulted : int;
  in_flight : int;
      (** [sent]..[in_flight] are the fabric's accounting counters {e after}
          this event was applied; conservation must hold at every event. *)
}

type kind =
  | Dispatch_start of { txn : int; label : string }
  | Dispatch_end of { txn : int; label : string }
  | Cell_write of { cell : int }
  | Cell_read of { cell : int; label : string }
  | Plan_chosen of { rel : string; path : string }
  | Merge_take of { tag : int; pos : int }
      (** merge arbitration: element [pos] of the output came from input
          stream [tag] *)
  | Dg_send of net
  | Dg_deliver of net
  | Dg_drop of net
  | Dg_retransmit of { src : int; dst : int; seq : int }
  | Replica_commit of { index : int; client : int; seq : int; backed : bool }
  | Replica_ack of { upto : int }
  | Replica_reply of { client : int; seq : int; status : string }
  | Replica_checkpoint of { upto : int; bytes : int }
  | Replica_install of { upto : int }
  | Replica_promote of { suffix : int }
  | Replica_replay of { index : int }
  | Replica_crash of { site : int }
  | Repair_batch of { batch : int; size : int }
      (** a speculative batch of [size] transactions entered the executor *)
  | Repair_spec of { batch : int; txn : int }
      (** round-0 speculative execution of [txn] against the batch-entry
          version *)
  | Repair_redo of { batch : int; txn : int; round : int }
      (** [txn]'s reads were invalidated; re-executed in repair [round] *)
  | Repair_round of { batch : int; round : int; damaged : int }
      (** a repair round began with [damaged] transactions to re-execute *)
  | Repair_commit of { batch : int; txn : int; round : int }
      (** [txn]'s result (from [round]) was merged into the running
          version; commits are released in batch order *)
  | Wal_append of { index : int; bytes : int }
      (** version [index]'s delta frame was buffered into the current log
          segment ([bytes] framed bytes) — not yet durable *)
  | Wal_sync of { upto : int }
      (** an fsync point: every version up to [upto] is now durable *)
  | Wal_checkpoint of { upto : int; bytes : int; segment : int }
      (** a compact checkpoint covering versions up to [upto] was written
          {e and synced} as the head of [segment]; emitted only after the
          sync, so its position in the trace is a durability witness *)
  | Wal_segment_delete of { segment : int }
      (** an obsolete segment was removed — lawful only after a checkpoint
        of a strictly newer segment was synced *)
  | Wal_replay of { index : int }
      (** recovery replayed version [index]'s delta from the log suffix *)
  | Wal_recovered of { upto : int; base : int; reason : string }
      (** recovery rebuilt versions [base..upto]; [reason] is ["clean"] or
          why replay stopped (torn / checksum / out-of-order frame) *)
  | Index_maintain of {
      rel : string;
      index : string;
      kind : string;
      base : int;
      entries : int;
    }
      (** index [index] on [rel] absorbed a write: it now covers [entries]
          base tuples while the base relation holds [base] — the
          lockstep-coherence law requires the two to be equal at every
          maintenance point, for every index of the relation *)
  | Index_probe of { rel : string; index : string; kind : string }
      (** the executor answered a read through [index] instead of a base
          relation access path *)
  | Shard_commit of { shard : int; txn : int; pos : int }
      (** transaction [txn] (merged-order index) committed on [shard] at
          shard-local stream position [pos]; the positions of one shard
          must be exactly 0, 1, 2, ... — a gap or reorder is a torn
          shard-local version stream *)
  | Shard_bypass of { txn : int; shards : int }
      (** cross-shard [txn] (touching [shards] shards) passed the
          commutativity analysis and committed shard-locally, bypassing
          the global spine *)
  | Shard_spine of { txn : int; gsn : int }
      (** cross-shard [txn] was serialized through the global arbiter as
          global sequence number [gsn]; gsns must appear in exactly
          increasing order — the spine is the single serial stream *)
  | Shard_conflict of { txn : int; against : int }
      (** the analysis found a non-commuting conflict between [txn] and
          the earlier in-epoch transaction [against]; [txn] must therefore
          take the spine, never the bypass *)

type t = { ts : int; site : int; kind : kind }

val name : kind -> string
(** Constructor name, e.g. ["dg_send"] — stable, used as the Chrome event
    name and in oracle diagnostics. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
