lib/net/topology.ml: Array Format List Printf Queue Random
