test/test_merge.ml: Alcotest Fdb_merge Float List QCheck2 QCheck_alcotest
