test/test_rediflow.mli:
