lib/persistent/avl.ml: Hashtbl List Meter Ordered
