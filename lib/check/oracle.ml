open Fdb_relational
module Ast = Fdb_query.Ast
module Txn = Fdb_txn.Txn
module Merge = Fdb_merge.Merge

type observation = {
  responses : Txn.response list list;
  final : Database.t;
}

type verdict =
  | Serializable of (int * Ast.query) list
  | Not_serializable of { explored : int; deepest : int; total : int }
  | Inconclusive of { explored : int }

let accepted = function Serializable _ -> true | _ -> false

let pp_verdict ppf = function
  | Serializable witness ->
      Format.fprintf ppf "serializable (witness: %d queries)"
        (List.length witness)
  | Not_serializable { explored; deepest; total } ->
      Format.fprintf ppf
        "NOT serializable: explored %d states, explained %d of %d queries"
        explored deepest total
  | Inconclusive { explored } ->
      Format.fprintf ppf "inconclusive after %d states" explored

(* Databases are compared and fingerprinted by contents only.
   Relation.to_list is ascending key order, so contents determine the
   string exactly; physical sharing and backend layout are ignored. *)
let add_db_fingerprint buf db =
  List.iter
    (fun name ->
      Buffer.add_string buf name;
      Buffer.add_char buf '|';
      (match Database.relation db name with
      | None -> ()
      | Some r ->
          List.iter
            (fun t ->
              Buffer.add_string buf (Tuple.to_string t);
              Buffer.add_char buf ';')
            (Relation.to_list r));
      Buffer.add_char buf '\n')
    (Database.names db)

let db_equal a b =
  List.equal String.equal (Database.names a) (Database.names b)
  && List.for_all
       (fun name ->
         match (Database.relation a name, Database.relation b name) with
         | (Some ra, Some rb) ->
             List.equal Tuple.equal (Relation.to_list ra) (Relation.to_list rb)
         | _ -> false)
       (Database.names a)

let observe ~initial ~clients merged =
  let per_client = Array.make clients [] in
  let db = ref initial in
  List.iter
    (fun { Merge.tag; item } ->
      if tag < 0 || tag >= clients then
        invalid_arg "Oracle.observe: tag out of range";
      let (resp, db') = Txn.translate item !db in
      db := db';
      per_client.(tag) <- resp :: per_client.(tag))
    merged;
  { responses = Array.to_list (Array.map List.rev per_client); final = !db }

let check ?(max_states = 500_000) ~initial ~streams obs =
  let qs = Array.of_list (List.map Array.of_list streams) in
  let rs = Array.of_list (List.map Array.of_list obs.responses) in
  if Array.length qs <> Array.length rs then
    invalid_arg "Oracle.check: stream/response list counts differ";
  Array.iteri
    (fun i s ->
      if Array.length s <> Array.length rs.(i) then
        invalid_arg
          (Printf.sprintf
             "Oracle.check: client %d has %d queries but %d responses" i
             (Array.length s)
             (Array.length rs.(i))))
    qs;
  let n = Array.length qs in
  let total = Array.fold_left (fun acc s -> acc + Array.length s) 0 qs in
  let failed = Hashtbl.create 1024 in
  let explored = ref 0 in
  let deepest = ref 0 in
  let overflow = ref false in
  let state_key positions db =
    let buf = Buffer.create 128 in
    Array.iter
      (fun p ->
        Buffer.add_string buf (string_of_int p);
        Buffer.add_char buf ',')
      positions;
    Buffer.add_char buf '#';
    add_db_fingerprint buf db;
    Buffer.contents buf
  in
  (* DFS over the merge lattice.  [positions] is mutated in place and
     restored on backtrack; [trail] is the interleaving so far, reversed. *)
  let rec dfs positions depth db trail =
    if depth > !deepest then deepest := depth;
    if depth = total then
      if db_equal db obs.final then Some (List.rev trail) else None
    else begin
      incr explored;
      if !explored > max_states then begin
        overflow := true;
        None
      end
      else
        let key = state_key positions db in
        if Hashtbl.mem failed key then None
        else begin
          let rec try_client c =
            if c >= n then None
            else
              let p = positions.(c) in
              if p >= Array.length qs.(c) then try_client (c + 1)
              else
                let q = qs.(c).(p) in
                let (resp, db') = Txn.translate q db in
                if Txn.response_equal resp rs.(c).(p) then begin
                  positions.(c) <- p + 1;
                  let result = dfs positions (depth + 1) db' ((c, q) :: trail) in
                  positions.(c) <- p;
                  match result with
                  | Some _ as witness -> witness
                  | None -> try_client (c + 1)
                end
                else try_client (c + 1)
          in
          match try_client 0 with
          | Some witness -> Some witness
          | None ->
              if not !overflow then Hashtbl.add failed key ();
              None
        end
    end
  in
  match dfs (Array.make n 0) 0 initial [] with
  | Some witness -> Serializable witness
  | None ->
      if !overflow then Inconclusive { explored = !explored }
      else Not_serializable { explored = !explored; deepest = !deepest; total }

let check_merged ?max_states ~initial ~streams merged =
  let obs = observe ~initial ~clients:(List.length streams) merged in
  check ?max_states ~initial ~streams obs
