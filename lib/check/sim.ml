module Ast = Fdb_query.Ast
module Txn = Fdb_txn.Txn
module Ix = Fdb_index.Index
module Topology = Fdb_net.Topology
module Reliable = Fdb_net.Reliable

module Replica = Fdb_replica.Replica

type faults = {
  drop_one_in : int;
  dup_one_in : int;
  delay_one_in : int;
  max_delay : int;
  crash : bool;
}

let no_faults =
  {
    drop_one_in = 0;
    dup_one_in = 0;
    delay_one_in = 0;
    max_delay = 0;
    crash = false;
  }

let default_faults =
  {
    drop_one_in = 5;
    dup_one_in = 6;
    delay_one_in = 4;
    max_delay = 3;
    crash = false;
  }

type outcome = {
  verdict : Oracle.verdict;
  applied : int;
  dup_suppressed : int;
  delayed : int;
  recovery : Replica.report option;
  net : Reliable.stats;
  trace : Fdb_obs.Event.t list;
  metrics : Fdb_obs.Metrics.snapshot;
}

let no_metrics = { Fdb_obs.Metrics.counters = []; histograms = [] }

exception
  Lost_queries of {
    missing : (int * int) list;
    buffered : int;
    stats : Reliable.stats;
    trace_tail : string list;
  }

(* Every sweep doubles as a trace-invariant check: the run executes under a
   recording sink and the captured trace must satisfy every law in
   {!Trace_oracle}. *)
let assert_lawful trace =
  match Trace_oracle.check trace with
  | [] -> ()
  | vs ->
      failwith
        (Format.asprintf "Sim.run: %d trace oracle violation(s):@,%a"
           (List.length vs)
           (Format.pp_print_list ~pp_sep:Format.pp_print_newline
              Trace_oracle.pp_violation)
           vs)

type msg = { client : int; seq : int; query : Ast.query }

let check_faults f =
  if f.drop_one_in = 1 then invalid_arg "Sim: drop_one_in = 1 loses everything";
  if f.drop_one_in < 0 || f.dup_one_in < 0 || f.delay_one_in < 0 then
    invalid_arg "Sim: negative fault rate";
  if f.delay_one_in > 0 && f.max_delay < 1 then
    invalid_arg "Sim: delay fault with max_delay < 1"

(* Seeded crash point: which commit (or checkpoint) the primary dies
   after, and whether replay is throttled, both drawn from a dedicated
   stream so they don't perturb the medium's drop sequence. *)
let crash_point ~seed ~checkpointing total =
  let crand = Random.State.make [| seed; 0xc4a5 |] in
  let n = 1 + Random.State.int crand (max 1 (total - 1)) in
  match seed mod 3 with
  | 0 -> Replica.Mid_stream n
  | 1 when checkpointing -> Replica.Mid_checkpoint (1 + (n mod 3))
  | 1 -> Replica.Mid_stream n
  | _ -> Replica.Mid_replay n

let run_crash ~recover_config ~faults ~seed (sc : Gen.scenario) =
  let base = Option.value ~default:Replica.default_config recover_config in
  let config =
    {
      base with
      Replica.drop_one_in = faults.drop_one_in;
      seed;
      crash =
        crash_point ~seed
          ~checkpointing:(base.Replica.checkpoint_every > 0)
          (Gen.query_count sc);
    }
  in
  let initial = Gen.initial_db sc in
  let (r, trace) =
    Fdb_obs.Trace.record (fun () -> Replica.run ~config ~initial sc.Gen.streams)
  in
  assert_lawful trace;
  (* Invariants the oracle cannot see: an acked commit must survive the
     failover exactly once, and promotion must replay exactly the log
     suffix past the last installed checkpoint. *)
  if r.Replica.acked_lost <> [] then
    failwith
      (Printf.sprintf "Sim.run: %d acked commits lost in failover (%s)"
         (List.length r.Replica.acked_lost)
         (String.concat ", "
            (List.map
               (fun (c, s) -> Printf.sprintf "client %d seq %d" c s)
               r.Replica.acked_lost)));
  if r.Replica.dup_applied > 0 then
    failwith
      (Printf.sprintf "Sim.run: %d commits applied twice across failover"
         r.Replica.dup_applied);
  if r.Replica.replay_mismatches > 0 then
    failwith
      (Printf.sprintf "Sim.run: %d replayed responses diverged"
         r.Replica.replay_mismatches);
  if r.Replica.crashed && r.Replica.replayed <> r.Replica.log_suffix_at_crash
  then
    failwith
      (Printf.sprintf "Sim.run: replayed %d records, log suffix was %d"
         r.Replica.replayed r.Replica.log_suffix_at_crash);
  let obs =
    { Oracle.responses = r.Replica.responses; final = r.Replica.final }
  in
  {
    verdict = Oracle.check ~initial ~streams:sc.Gen.streams obs;
    applied = r.Replica.history_len - 1;
    dup_suppressed = r.Replica.dedup_hits;
    delayed = 0;
    recovery = Some r;
    net = r.Replica.net;
    trace;
    metrics = no_metrics;
  }

let run_raw ?(faults = default_faults) ?recover_config ~seed (sc : Gen.scenario) =
  check_faults faults;
  if faults.crash then run_crash ~recover_config ~faults ~seed sc
  else begin
  let clients = List.length sc.Gen.streams in
  (* Client 0 is co-located with the primary at the hub (site 0, the
     src = dst hand-off path); clients 1.. sit on the leaves. *)
  let topo = Topology.star (max 2 clients) in
  let site_of c = if c = 0 then 0 else c in
  let channel = Reliable.create ~drop_one_in:faults.drop_one_in ~seed topo in
  let rand = Random.State.make [| seed; 0xfab |] in
  let remaining = Array.of_list (List.map ref sc.Gen.streams) in
  let next_seq = Array.make clients 0 in
  let delayed = ref [] in
  let delayed_count = ref 0 in
  let db = ref (Gen.initial_db sc) in
  (* The primary executes through a default index catalog: every read that
     an index can answer takes the indexed path (checked differentially by
     the oracle below against plain sequential semantics), every write
     maintains the indexes in lockstep — emitting the [Index_maintain]
     events the [index_coherence] trace law audits. *)
  let session =
    Ix.Session.create_exn (Ix.Catalog.default_for sc.Gen.schemas) !db
  in
  let per_client = Array.make clients [] in
  (* Reassembly at the primary: commit strictly in per-client seq order,
     buffering gaps — the per-stream-order guarantee the oracle assumes. *)
  let expected = Array.make clients 0 in
  let buffered : (int * int, Ast.query) Hashtbl.t = Hashtbl.create 32 in
  let applied = ref 0 in
  let dup_suppressed = ref 0 in
  let commit c q =
    let (resp, db') = Txn.translate_indexed (Ix.Session.use session) q !db in
    db := db';
    per_client.(c) <- resp :: per_client.(c);
    incr applied
  in
  let receive m =
    if m.seq < expected.(m.client) || Hashtbl.mem buffered (m.client, m.seq)
    then incr dup_suppressed
    else begin
      Hashtbl.replace buffered (m.client, m.seq) m.query;
      let c = m.client in
      let continue = ref true in
      while !continue do
        match Hashtbl.find_opt buffered (c, expected.(c)) with
        | None -> continue := false
        | Some q ->
            Hashtbl.remove buffered (c, expected.(c));
            expected.(c) <- expected.(c) + 1;
            commit c q
      done
    end
  in
  let roll n = n > 0 && Random.State.int rand n = 0 in
  let send_now m =
    let copies = if roll faults.dup_one_in then 2 else 1 in
    for _ = 1 to copies do
      Reliable.send channel ~src:(site_of m.client) ~dst:0 m
    done
  in
  let emit c =
    match !(remaining.(c)) with
    | [] -> ()
    | q :: rest ->
        remaining.(c) := rest;
        let m = { client = c; seq = next_seq.(c); query = q } in
        next_seq.(c) <- next_seq.(c) + 1;
        if roll faults.delay_one_in then begin
          incr delayed_count;
          delayed :=
            (ref (1 + Random.State.int rand faults.max_delay), m) :: !delayed
        end
        else send_now m
  in
  let any_remaining () = Array.exists (fun r -> !r <> []) remaining in
  let ticks = ref 0 in
  let ((), trace) =
    Fdb_obs.Trace.record @@ fun () ->
  while any_remaining () || !delayed <> [] || not (Reliable.idle channel) do
    incr ticks;
    if !ticks > 200_000 then failwith "Sim.run: no quiescence";
    (* 0-2 fresh queries injected per tick, from random live clients. *)
    if any_remaining () then
      for _ = 1 to Random.State.int rand 3 do
        let live =
          List.filter
            (fun c -> !(remaining.(c)) <> [])
            (List.init clients Fun.id)
        in
        match live with
        | [] -> ()
        | l -> emit (List.nth l (Random.State.int rand (List.length l)))
      done;
    (* Reorder fault: held-back queries re-enter the transport late. *)
    let (due, held) =
      List.partition
        (fun (countdown, _) ->
          decr countdown;
          !countdown <= 0)
        !delayed
    in
    delayed := held;
    List.iter (fun (_, m) -> send_now m) due;
    List.iter (fun (_dst, m) -> receive m) (Reliable.step channel)
  done
  in
  assert_lawful trace;
  (* End-state coherence: every index must equal a fresh rebuild from the
     final base relations (the per-step lockstep was checked by the trace
     law above). *)
  (match Ix.Store.coherent (Ix.Session.store session) !db with
  | Ok () -> ()
  | Error e -> failwith (Printf.sprintf "Sim.run: index incoherence: %s" e));
  let total = Gen.query_count sc in
  if !applied <> total || Hashtbl.length buffered <> 0 then begin
    (* Which (client, seq) never committed — a transport bug, surfaced
       with enough structure to replay the seed. *)
    let missing = ref [] in
    let lens = Array.of_list (List.map List.length sc.Gen.streams) in
    for c = clients - 1 downto 0 do
      for s = lens.(c) - 1 downto expected.(c) do
        if not (Hashtbl.mem buffered (c, s)) then
          missing := (c, s) :: !missing
      done
    done;
    raise
      (Lost_queries
         {
           missing = !missing;
           buffered = Hashtbl.length buffered;
           stats = Reliable.stats channel;
           trace_tail = Fdb_obs.Trace.tail ();
         })
  end;
  let obs =
    { Oracle.responses = Array.to_list (Array.map List.rev per_client);
      final = !db }
  in
  let verdict =
    Oracle.check ~initial:(Gen.initial_db sc) ~streams:sc.Gen.streams obs
  in
  {
    verdict;
    applied = !applied;
    dup_suppressed = !dup_suppressed;
    delayed = !delayed_count;
    recovery = None;
    net = Reliable.stats channel;
    trace;
    metrics = no_metrics;
  }
  end

(* Each run executes against a zeroed metrics registry and reports only
   its own delta, with the surrounding totals restored afterwards — so
   sweeps and test suites can never bleed counter state into each other
   through the process-global registry. *)
let run ?faults ?recover_config ~seed sc =
  let (o, metrics) =
    Fdb_obs.Metrics.scoped (fun () -> run_raw ?faults ?recover_config ~seed sc)
  in
  { o with metrics }

(* -- the repair-executor sweep --------------------------------------------- *)

module Merge = Fdb_merge.Merge
module Exec = Fdb_repair.Exec

type repair_outcome = {
  repair_verdict : Oracle.verdict;
  repair_stats : Exec.stats;
  repair_trace : Fdb_obs.Event.t list;
  repair_metrics : Fdb_obs.Metrics.snapshot;
}

let chunk_list k xs =
  let rec go acc cur n = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
        if n + 1 >= k then go (List.rev (x :: cur) :: acc) [] 0 rest
        else go acc (x :: cur) (n + 1) rest
  in
  go [] [] 0 xs

let run_repair_raw ?pool ?domains ?(batch = 8) ?max_states ~seed
    (sc : Gen.scenario) =
  if batch < 1 then invalid_arg "Sim.run_repair: batch must be >= 1";
  let initial = Gen.initial_db sc in
  let merged = Merge.merge (Merge.Seeded ((7 * seed) + 1)) sc.Gen.streams in
  let queries = List.map (fun (m : _ Merge.tagged) -> m.Merge.item) merged in
  let exec pool =
    (* A fresh session per invocation: [exec] runs twice (pooled, then
       traced inline) and the determinism check below requires identical
       starting stores. *)
    let session =
      Ix.Session.create_exn (Ix.Catalog.default_for sc.Gen.schemas) initial
    in
    let rec go db acc stats bid = function
      | [] -> (List.rev acc, db, stats)
      | qs :: rest ->
          let r = Exec.run_batch ~pool ~index:session ~batch_id:bid db qs in
          go r.Exec.final
            (List.rev_append r.Exec.responses acc)
            (Exec.add_stats stats r.Exec.stats)
            (bid + 1) rest
    in
    let (resps, final, stats) =
      go initial [] Exec.zero_stats 0 (chunk_list batch queries)
    in
    (match Ix.Store.coherent (Ix.Session.store session) final with
    | Ok () -> ()
    | Error e ->
        failwith
          (Printf.sprintf "Sim.run_repair (seed %d): index incoherence: %s"
             seed e));
    (resps, final, stats)
  in
  (* All failure paths below raise inside [go] — i.e. inside the
     [Pool.with_pool] bracket when no pool was passed — so worker domains
     are joined even when a scenario fails. *)
  let go pool =
    (* Pooled run: real parallel speculation. *)
    let (responses, final, stats) = exec pool in
    (* Traced run: the executor falls back to inline execution under a
       recording sink (the sink is not domain-safe), which doubles as a
       determinism check — pooled and inline runs must agree exactly. *)
    let ((responses_t, final_t, _), trace) =
      Fdb_obs.Trace.record (fun () -> exec pool)
    in
    assert_lawful trace;
    if
      not
        (List.equal Txn.response_equal responses responses_t
        && Oracle.db_equal final final_t)
    then
      failwith
        (Printf.sprintf
           "Sim.run_repair (seed %d): traced inline run diverged from the \
            pooled run"
           seed);
    (* Differential check 1: the ideal sequential engine over the same
       merged order. *)
    let (seq_resps, seq_final) = Txn.run_queries initial queries in
    List.iteri
      (fun i (r, s) ->
        if not (Txn.response_equal r s) then
          failwith
            (Format.asprintf
               "Sim.run_repair (seed %d): response %d diverged from the \
                sequential engine: repair %a, sequential %a"
               seed i Txn.pp_response r Txn.pp_response s))
      (List.combine responses seq_resps);
    if not (Oracle.db_equal final seq_final) then
      failwith
        (Printf.sprintf
           "Sim.run_repair (seed %d): final database diverged from the \
            sequential engine"
           seed);
    (* Differential check 2: the serializability oracle over the
       per-client observation. *)
    let clients = List.length sc.Gen.streams in
    let per_client = Array.make clients [] in
    List.iter2
      (fun (m : _ Merge.tagged) resp ->
        per_client.(m.Merge.tag) <- resp :: per_client.(m.Merge.tag))
      merged responses;
    let obs =
      {
        Oracle.responses = Array.to_list (Array.map List.rev per_client);
        final;
      }
    in
    let verdict =
      Oracle.check ?max_states ~initial ~streams:sc.Gen.streams obs
    in
    if not (Oracle.accepted verdict) then
      failwith
        (Format.asprintf "Sim.run_repair (seed %d): oracle verdict: %a" seed
           Oracle.pp_verdict verdict);
    {
      repair_verdict = verdict;
      repair_stats = stats;
      repair_trace = trace;
      repair_metrics = no_metrics;
    }
  in
  match pool with
  | Some p -> go p
  | None -> Fdb_par.Pool.with_pool ?domains go

let run_repair ?pool ?domains ?batch ?max_states ~seed sc =
  let (o, metrics) =
    Fdb_obs.Metrics.scoped (fun () ->
        run_repair_raw ?pool ?domains ?batch ?max_states ~seed sc)
  in
  { o with repair_metrics = metrics }

(* -- the sharded two-level merge sweep ------------------------------------- *)

module Shard = Fdb_shard.Shard

type shard_outcome = {
  shard_verdict : Oracle.verdict;
  shard_stats : Shard.stats;
  shard_streams : int array;  (** shard-local commit stream length per shard *)
  shard_trace : Fdb_obs.Event.t list;
  shard_metrics : Fdb_obs.Metrics.snapshot;
}

(* Rewrite a generated scenario to an exact cross-shard ratio: each query
   slot is forced to a cross-relation join with probability [ratio], and
   below the threshold any native cross-relation join is folded onto its
   left relation — so ratio 0.0 carries no cross-shard work at all and
   the knob is monotone. *)
let cross_shardify ~ratio ~seed (sc : Gen.scenario) =
  if ratio < 0.0 || ratio > 1.0 then
    invalid_arg "Sim.cross_shardify: ratio outside [0, 1]";
  let rels =
    Array.of_list (List.map Fdb_relational.Schema.name sc.Gen.schemas)
  in
  let nr = Array.length rels in
  let rand = Random.State.make [| seed; 0x5a4d |] in
  let cross_join () =
    let l = Random.State.int rand nr in
    let r = (l + 1 + Random.State.int rand (max 1 (nr - 1))) mod nr in
    Ast.Join { left = rels.(l); right = rels.(r); on = ("key", "key") }
  in
  let streams =
    List.map
      (List.map (fun q ->
           if Random.State.float rand 1.0 < ratio then cross_join ()
           else
             match q with
             | Ast.Join { left; on; _ } -> Ast.Join { left; right = left; on }
             | q -> q))
      sc.Gen.streams
  in
  { sc with Gen.streams }

let shard_fail ~seed fmt =
  Format.kasprintf
    (fun m -> failwith (Printf.sprintf "Sim.run_sharded (seed %d): %s" seed m))
    fmt

let run_sharded_raw ?policy ?(replicate = false) ?max_states ~shards ~seed
    (sc : Gen.scenario) =
  if shards < 1 then invalid_arg "Sim.run_sharded: shards < 1";
  let initial = Gen.initial_db sc in
  let policy =
    Option.value policy ~default:(Merge.Seeded ((13 * seed) + 3))
  in
  (* The sharded run executes under a recording sink; the trace must
     satisfy every law, including [shard_serializability]. *)
  let (r, trace) =
    Fdb_obs.Trace.record (fun () ->
        Shard.run ~policy ~shards ~initial sc.Gen.streams)
  in
  assert_lawful trace;
  let n = Array.length r.Shard.queries in
  let queries = Array.to_list r.Shard.queries in
  (* Differential 1: the ideal sequential engine over the same router
     order — the sharded executor's scatter/gather must be invisible. *)
  let (seq_resps, seq_final) = Txn.run_queries initial queries in
  List.iteri
    (fun i s ->
      if not (Txn.response_equal r.Shard.responses.(i) s) then
        shard_fail ~seed
          "response %d diverged from the sequential engine: sharded %a, \
           sequential %a"
          i Txn.pp_response r.Shard.responses.(i) Txn.pp_response s)
    seq_resps;
  if not (Oracle.db_equal r.Shard.final seq_final) then
    shard_fail ~seed "final database diverged from the sequential engine";
  (* Shard count 1 collapses to the unsharded pipeline: the rendered
     output bytes must be identical, not merely equivalent. *)
  if shards = 1 then begin
    let render resps db =
      Format.asprintf "%a|%a"
        (Format.pp_print_list Txn.pp_response)
        resps Fdb_relational.Database.pp db
    in
    let ours = render (Array.to_list r.Shard.responses) r.Shard.final in
    let ref_ = render seq_resps seq_final in
    if not (String.equal ours ref_) then
      shard_fail ~seed
        "shards=1 output is not byte-identical to the unsharded pipeline"
  end;
  (* Differential 2: the adversarial shard-major replay.  A falsely
     granted bypass — a non-commuting pair committing in shard-local
     order — shows up here as a diverging response or final database. *)
  let sched = Shard.reorder_schedule r in
  if List.length sched <> n then
    shard_fail ~seed "reorder schedule dropped %d transactions"
      (n - List.length sched);
  let (re_resps, re_final) =
    Txn.run_queries initial (List.map (fun (_, _, q) -> q) sched)
  in
  List.iter2
    (fun (i, _, _) resp ->
      if not (Txn.response_equal r.Shard.responses.(i) resp) then
        shard_fail ~seed
          "txn %d answered %a in the epoch-reordered replay but %a in the \
           sharded run — an unsound bypass"
          i Txn.pp_response resp Txn.pp_response r.Shard.responses.(i))
    sched re_resps;
  if not (Oracle.db_equal r.Shard.final re_final) then
    shard_fail ~seed
      "final database diverged under the epoch-reordered replay — an \
       unsound bypass";
  (* Differential 3: the serializability oracle over the per-client
     observation. *)
  let clients = List.length sc.Gen.streams in
  let per_client = Array.make clients [] in
  Array.iteri
    (fun i tag -> per_client.(tag) <- r.Shard.responses.(i) :: per_client.(tag))
    r.Shard.tags;
  let obs =
    {
      Oracle.responses = Array.to_list (Array.map List.rev per_client);
      final = r.Shard.final;
    }
  in
  let verdict = Oracle.check ?max_states ~initial ~streams:sc.Gen.streams obs in
  if not (Oracle.accepted verdict) then
    shard_fail ~seed "oracle verdict: %a" Oracle.pp_verdict verdict;
  (* Composition with lib/replica: each shard's commit stream drives its
     own primary/backup pair, whose surviving state must equal the
     slice.  (Cross-shard joins are read-only, so the slice evolves only
     through the shard's local stream — asserted via [foreign_writes].) *)
  if replicate then begin
    let slices = Shard.slice ~shards initial in
    Array.iteri
      (fun s slice0 ->
        if r.Shard.foreign_writes.(s) then
          shard_fail ~seed "shard %d slice written by a cross-shard txn" s;
        let stream = r.Shard.local_queries.(s) in
        let rep = Replica.run ~initial:slice0 [ stream ] in
        if rep.Replica.acked_lost <> [] then
          shard_fail ~seed "shard %d replica lost %d acked commits" s
            (List.length rep.Replica.acked_lost);
        if rep.Replica.dup_applied > 0 then
          shard_fail ~seed "shard %d replica applied %d commits twice" s
            rep.Replica.dup_applied;
        if not (Oracle.db_equal rep.Replica.final r.Shard.shard_dbs.(s)) then
          shard_fail ~seed
            "shard %d replica final state diverged from the slice" s;
        let local_resps =
          List.filter_map
            (fun i ->
              match Shard.shards_of_query ~shards r.Shard.queries.(i) with
              | [ s' ] when s' = s -> Some r.Shard.responses.(i)
              | _ -> None)
            r.Shard.commit_log.(s)
        in
        let rep_resps = List.concat rep.Replica.responses in
        if
          not (List.equal Txn.response_equal local_resps rep_resps)
        then
          shard_fail ~seed
            "shard %d replica responses diverged from the commit stream" s)
      slices
  end;
  {
    shard_verdict = verdict;
    shard_stats = r.Shard.stats;
    shard_streams = Array.map List.length r.Shard.commit_log;
    shard_trace = trace;
    shard_metrics = no_metrics;
  }

let run_sharded ?policy ?replicate ?max_states ~shards ~seed sc =
  let (o, metrics) =
    Fdb_obs.Metrics.scoped (fun () ->
        run_sharded_raw ?policy ?replicate ?max_states ~shards ~seed sc)
  in
  { o with shard_metrics = metrics }

(* -- the crash-restart disk sweep ------------------------------------------- *)

module Wal = Fdb_wal.Wal
module Wire = Fdb_wire.Wire

type disk_fault = Clean_kill | Truncate_mid_frame | Bit_flip | Duplicate_tail

let all_disk_faults = [ Clean_kill; Truncate_mid_frame; Bit_flip; Duplicate_tail ]

let disk_fault_name = function
  | Clean_kill -> "clean-kill"
  | Truncate_mid_frame -> "truncate-mid-frame"
  | Bit_flip -> "bit-flip"
  | Duplicate_tail -> "duplicate-tail"

let disk_fault_of_name = function
  | "clean-kill" -> Some Clean_kill
  | "truncate-mid-frame" -> Some Truncate_mid_frame
  | "bit-flip" -> Some Bit_flip
  | "duplicate-tail" -> Some Duplicate_tail
  | _ -> None

type disk_outcome = {
  disk_appended : int;  (** versions logged before the kill *)
  disk_durable : int;  (** newest version the fsync discipline promised *)
  disk_recovered : int;  (** newest version the first recovery rebuilt *)
  disk_base : int;  (** checkpoint version the first recovery started from *)
  disk_stop : string;  (** why replay stopped (["clean"] if it didn't) *)
  disk_segments : int;  (** segment files present at the first recovery *)
  disk_resumed : int;  (** versions appended after restart *)
  disk_trace : Fdb_obs.Event.t list;
  disk_metrics : Fdb_obs.Metrics.snapshot;
}

let disk_fail ~seed fmt =
  Format.kasprintf (fun m -> failwith (Printf.sprintf "Sim.run_disk (seed %d): %s" seed m)) fmt

(* Doctor the newest surviving segment after the torn-write crash.  Every
   doctoring stays at or past the synced mark: fsynced bytes are stable by
   the fault model — the whole point is that recovery must survive
   anything that happens {e past} the promise. *)
let doctor_tail ~fault ~rand mem store =
  let top =
    List.fold_left
      (fun acc name ->
        match Wal.segment_number name with Some n -> max acc n | None -> acc)
      (-1)
      (store.Wal.Store.list_files ())
  in
  if top >= 0 then begin
    let name = Wal.segment_name top in
    let content = Wal.Mem.get mem name in
    let synced = Wal.Mem.synced mem name in
    let len = String.length content in
    match fault with
    | Clean_kill -> ()
    | Truncate_mid_frame ->
        if len > synced then
          Wal.Mem.set mem name
            (String.sub content 0 (synced + Random.State.int rand (len - synced)))
    | Bit_flip ->
        if len > synced then begin
          let off = synced + Random.State.int rand (len - synced) in
          let b = Bytes.of_string content in
          Bytes.set b off
            (Char.chr
               (Char.code (Bytes.get b off)
               lxor (1 lsl Random.State.int rand 8)));
          Wal.Mem.set mem name (Bytes.to_string b)
        end
    | Duplicate_tail ->
        (* Re-append the last whole frame: a checksum-valid duplicate the
           reader must reject as out-of-order, keeping the prefix. *)
        let rec last pos best =
          match Wire.read_frame content ~pos with
          | Wire.Frame { next; _ } -> last next (Some (pos, next))
          | Wire.End_of_input | Wire.Torn _ -> best
        in
        (match last 0 None with
        | Some (s, e) ->
            Wal.Mem.set mem name (content ^ String.sub content s (e - s))
        | None -> ())
  end

let run_disk_raw ?(sync_every = 3) ?(checkpoint_every = 0) ~fault ~seed
    (sc : Gen.scenario) =
  let initial = Gen.initial_db sc in
  let merged = Merge.merge (Merge.Seeded ((11 * seed) + 5)) sc.Gen.streams in
  let queries = List.map (fun (m : _ Merge.tagged) -> m.Merge.item) merged in
  let rand = Random.State.make [| seed; 0xd15c |] in
  let total = List.length queries in
  let kill = if total = 0 then 0 else 1 + Random.State.int rand total in
  let mem = Wal.Mem.create () in
  let store = Wal.Mem.store mem in
  let (outcome, trace) =
    Fdb_obs.Trace.record @@ fun () ->
    (* -- before the kill: commit through the reference engine, logging
       every new version; group fsync + checkpoint policy as configured. *)
    let w = Wal.create ~sync_every ~checkpoint_every ~store initial in
    let expected = ref [ initial ] in
    let db = ref initial in
    let rec apply_prefix n = function
      | q :: rest when n < kill ->
          let (_resp, db') = Txn.translate q !db in
          if not (db' == !db) then begin
            db := db';
            expected := db' :: !expected;
            Wal.append w db'
          end;
          apply_prefix (n + 1) rest
      | rest -> rest
    in
    let remaining = apply_prefix 0 queries in
    if fault = Clean_kill then Wal.sync w;
    let durable = Wal.durable w in
    let appended = Wal.appended w in
    (* -- the kill: tear the unsynced tail, then doctor what survived. *)
    Wal.Mem.crash ~rand mem;
    doctor_tail ~fault ~rand mem store;
    (* -- restart: checkpoint + suffix replay. *)
    let r = Wal.recover store in
    (* The durability contract, checked differentially against the
       pre-crash run: everything promised by the fsync discipline is
       back, nothing past the last append was invented... *)
    if r.Wal.upto < durable then
      disk_fail ~seed
        "recovered only to version %d, fsync promised %d (%s fault)"
        r.Wal.upto durable (disk_fault_name fault);
    if r.Wal.upto > appended then
      disk_fail ~seed "recovered version %d past the last append %d"
        r.Wal.upto appended;
    (* ...and every recovered version equals the version the pre-crash
       engine committed — byte-for-byte the same relations, never a wrong
       or reordered history. *)
    let expected = Array.of_list (List.rev !expected) in
    for i = r.Wal.base to r.Wal.upto do
      if
        not
          (Oracle.db_equal
             (Fdb_txn.History.version r.Wal.rhistory (i - r.Wal.base))
             expected.(i))
      then
        disk_fail ~seed "recovered version %d diverges from the pre-crash run"
          i
    done;
    (* -- continue after restart: the recovered state is the new tail. *)
    let w2 = Wal.resume ~sync_every ~checkpoint_every ~store r in
    let db2 = ref (Wal.latest w2) in
    let expected2 = ref [ !db2 ] in
    List.iter
      (fun q ->
        let (_resp, db') = Txn.translate q !db2 in
        if not (db' == !db2) then begin
          db2 := db';
          expected2 := db' :: !expected2;
          Wal.append w2 db'
        end)
      remaining;
    Wal.sync w2;
    let r2 = Wal.recover store in
    if r2.Wal.upto <> Wal.appended w2 then
      disk_fail ~seed
        "post-restart recovery reached version %d, writer appended %d"
        r2.Wal.upto (Wal.appended w2);
    let expected2 = Array.of_list (List.rev !expected2) in
    for i = r2.Wal.base to r2.Wal.upto do
      if
        not
          (Oracle.db_equal
             (Fdb_txn.History.version r2.Wal.rhistory (i - r2.Wal.base))
             expected2.(i - r.Wal.upto))
      then
        disk_fail ~seed
          "post-restart version %d diverges from the continued run" i
    done;
    {
      disk_appended = appended;
      disk_durable = durable;
      disk_recovered = r.Wal.upto;
      disk_base = r.Wal.base;
      disk_stop =
        (match r.Wal.stop with
        | Wal.Clean -> "clean"
        | Wal.Stopped { reason; _ } -> reason);
      disk_segments = r.Wal.segments;
      disk_resumed = Wal.appended w2 - r.Wal.upto;
      disk_trace = [];
      disk_metrics = no_metrics;
    }
  in
  assert_lawful trace;
  { outcome with disk_trace = trace }

let run_disk ?sync_every ?checkpoint_every ~fault ~seed sc =
  let (o, metrics) =
    Fdb_obs.Metrics.scoped (fun () ->
        run_disk_raw ?sync_every ?checkpoint_every ~fault ~seed sc)
  in
  { o with disk_metrics = metrics }
