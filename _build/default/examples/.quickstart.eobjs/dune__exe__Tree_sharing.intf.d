examples/tree_sharing.mli:
