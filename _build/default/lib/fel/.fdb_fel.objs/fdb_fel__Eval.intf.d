lib/fel/eval.mli: Ast Engine Fdb_kernel
