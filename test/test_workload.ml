(* Workload generator tests: determinism, operation mix, client dealing. *)

module W = Fdb_workload.Workload
module Ast = Fdb_query.Ast

let test_determinism () =
  let a = W.generate W.default_spec and b = W.generate W.default_spec in
  Alcotest.(check bool) "same streams" true
    (a.W.client_streams = b.W.client_streams);
  let c = W.generate { W.default_spec with seed = 43 } in
  Alcotest.(check bool) "different seed differs" true
    (a.W.client_streams <> c.W.client_streams)

let test_counts () =
  let w = W.generate { W.default_spec with insert_pct = 14.0 } in
  Alcotest.(check int) "50 transactions" 50 (List.length (W.all_queries w));
  Alcotest.(check int) "14% of 50 = 7 inserts" 7 (W.insert_count w);
  let total_initial =
    List.fold_left (fun acc (_, ts) -> acc + List.length ts) 0 w.W.initial
  in
  Alcotest.(check int) "50 initial tuples" 50 total_initial;
  Alcotest.(check int) "3 schemas" 3 (List.length w.W.schemas)

let test_paper_grid_counts () =
  (* The paper's odd percentages resolve to exact transaction counts. *)
  List.iter2
    (fun pct expected ->
      let w =
        W.generate { W.default_spec with insert_pct = pct; relations = 1 }
      in
      Alcotest.(check int)
        (Printf.sprintf "%.0f%% inserts" pct)
        expected (W.insert_count w))
    W.paper_insert_percentages [ 0; 2; 4; 7; 12; 19 ]

let test_initial_round_robin () =
  let w = W.generate { W.default_spec with relations = 3 } in
  List.iteri
    (fun i (name, tuples) ->
      Alcotest.(check string) "name" (W.relation_name (i + 1)) name;
      (* 50 keys dealt over 3 relations: 17/17/16 *)
      let expected = if i < 2 then 17 else 16 in
      Alcotest.(check int) (name ^ " share") expected (List.length tuples))
    w.W.initial

let test_client_dealing () =
  let w = W.generate { W.default_spec with clients = 4 } in
  Alcotest.(check int) "4 streams" 4 (List.length w.W.client_streams);
  Alcotest.(check int) "all queries dealt" 50
    (List.fold_left (fun a s -> a + List.length s) 0 w.W.client_streams);
  (* Round-robin dealing: stream sizes differ by at most one. *)
  let sizes = List.map List.length w.W.client_streams in
  Alcotest.(check bool) "balanced" true
    (List.fold_left max 0 sizes - List.fold_left min 100 sizes <= 1)

let test_inserts_use_fresh_keys () =
  let w = W.generate { W.default_spec with insert_pct = 38.0 } in
  let insert_keys =
    List.filter_map
      (function
        | Ast.Insert { values = Fdb_relational.Value.Int k :: _; _ } -> Some k
        | _ -> None)
      (W.all_queries w)
  in
  Alcotest.(check int) "19 inserts" 19 (List.length insert_keys);
  Alcotest.(check bool) "all fresh (>= 50)" true
    (List.for_all (fun k -> k >= 50) insert_keys);
  Alcotest.(check bool) "no duplicates" true
    (List.length (List.sort_uniq compare insert_keys) = 19)

let test_deletes_extension () =
  let w =
    W.generate { W.default_spec with delete_pct = 10.0; insert_pct = 10.0 }
  in
  let deletes =
    List.filter (function Ast.Delete _ -> true | _ -> false) (W.all_queries w)
  in
  Alcotest.(check int) "10% deletes" 5 (List.length deletes)

let test_updates_extension () =
  let w =
    W.generate
      { W.default_spec with update_pct = 20.0; insert_pct = 10.0 }
  in
  let updates =
    List.filter (function Ast.Update _ -> true | _ -> false) (W.all_queries w)
  in
  Alcotest.(check int) "20% updates" 10 (List.length updates);
  (* every generated update targets the val column of a real key *)
  List.iter
    (function
      | Ast.Update { col = "val"; where = Ast.Cmp ("key", Ast.Eq, _); _ } -> ()
      | Ast.Update _ -> Alcotest.fail "malformed update"
      | _ -> ())
    updates

let test_validation () =
  let expect_invalid name spec =
    match W.generate spec with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s accepted" name
  in
  expect_invalid "no relations" { W.default_spec with relations = 0 };
  expect_invalid "no clients" { W.default_spec with clients = 0 };
  expect_invalid "over 100%"
    { W.default_spec with insert_pct = 80.0; delete_pct = 30.0 };
  expect_invalid "bad miss ratio" { W.default_spec with miss_ratio = 1.5 }

let test_queries_parse_back () =
  (* Every generated query survives a print/parse round trip. *)
  let w =
    W.generate
      { W.default_spec with insert_pct = 24.0; delete_pct = 6.0;
        update_pct = 6.0 }
  in
  List.iter
    (fun q ->
      match Fdb_query.Parser.parse (Ast.to_string q) with
      | Ok q' when q = q' -> ()
      | Ok _ -> Alcotest.failf "round trip changed %s" (Ast.to_string q)
      | Error e -> Alcotest.failf "%s: %s" (Ast.to_string q) e)
    (W.all_queries w)

let find_keys w =
  List.filter_map
    (function
      | Ast.Find { key = Fdb_relational.Value.Int k; _ } -> Some k
      | _ -> None)
    (W.all_queries w)

let test_skew_determinism () =
  (* skewed draws come from the same seeded stream: generation stays a
     pure function of the spec *)
  let spec = { W.default_spec with skew = 1.5; delete_pct = 8.0 } in
  let a = W.generate spec and b = W.generate spec in
  Alcotest.(check bool) "same streams" true
    (a.W.client_streams = b.W.client_streams);
  let c = W.generate { spec with seed = 43 } in
  Alcotest.(check bool) "different seed differs" true
    (a.W.client_streams <> c.W.client_streams);
  (* the historical uniform generator is the default *)
  Alcotest.(check (float 0.0)) "default is uniform" 0.0 W.default_spec.W.skew

let test_skew_concentrates () =
  let base =
    { W.default_spec with transactions = 200; relations = 1;
      initial_tuples = 100; insert_pct = 0.0; miss_ratio = 0.0 }
  in
  let distinct ks = List.length (List.sort_uniq compare ks) in
  let hottest ks =
    List.fold_left
      (fun best k -> max best (List.length (List.filter (( = ) k) ks)))
      0 ks
  in
  let uniform = find_keys (W.generate base)
  and skewed = find_keys (W.generate { base with skew = 6.0 }) in
  Alcotest.(check int) "same volume" (List.length uniform)
    (List.length skewed);
  (* heavy rank-skew piles references onto a few hot keys: the hottest
     key dominates and the reference set shrinks *)
  Alcotest.(check bool)
    (Printf.sprintf "hottest %d skewed >> %d uniform" (hottest skewed)
       (hottest uniform))
    true
    (hottest skewed >= 5 * hottest uniform);
  Alcotest.(check bool)
    (Printf.sprintf "%d skewed distinct < %d uniform distinct"
       (distinct skewed) (distinct uniform))
    true
    (distinct skewed < distinct uniform);
  (* every skewed reference still hits a present key *)
  Alcotest.(check bool) "all present" true
    (List.for_all (fun k -> k >= 0 && k < 100) skewed)

let test_skew_validation () =
  match W.generate { W.default_spec with skew = -0.1 } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative skew accepted"

(* -- pinned golden streams --------------------------------------------------

   The O(n^2) present-key fix swapped the generator's data structure; these
   digests were captured from the legacy list-based generator and pin that
   the streams are byte-identical — at skew 0 and, because [Keyset] ranks
   match the legacy list exactly, at every skew. *)

let stream_digest spec =
  let w = W.generate spec in
  let b = Buffer.create 4096 in
  List.iteri
    (fun i stream ->
      Buffer.add_string b (Printf.sprintf "-- client %d\n" i);
      List.iter
        (fun q ->
          Buffer.add_string b (Ast.to_string q);
          Buffer.add_char b '\n')
        stream)
    w.W.client_streams;
  Digest.to_hex (Digest.string (Buffer.contents b))

let pinned_specs =
  [
    ("default", W.default_spec, "35dab3cf458c24db0f2d2a367d9dfb28");
    ( "paper-0-r1",
      { W.default_spec with insert_pct = 0.0; relations = 1 },
      "5bcb736dd7330a9d47653f60e267023a" );
    ( "paper-4-r1",
      { W.default_spec with insert_pct = 4.0; relations = 1 },
      "01fbe447d68871a26a2c1a3b11f6a2c5" );
    ( "paper-7-r5",
      { W.default_spec with insert_pct = 7.0; relations = 5 },
      "88e047cbc987c7dde9c5205c81af1049" );
    ( "paper-38-r3",
      { W.default_spec with insert_pct = 38.0 },
      "8ba4367205c566e99c4d6211bbde31fc" );
    ( "del-ins",
      { W.default_spec with delete_pct = 10.0; insert_pct = 10.0 },
      "138a2b12146627c87ec4504b8731dd2b" );
    ( "upd-ins",
      { W.default_spec with update_pct = 20.0; insert_pct = 10.0 },
      "e4eabd0ede3c41840c15e46abb1a4877" );
    ( "mixed",
      { W.default_spec with insert_pct = 24.0; delete_pct = 6.0;
        update_pct = 6.0 },
      "c8c9f0cd18cb6073f81cc98c77663b7f" );
    ( "skew-delete",
      { W.default_spec with skew = 1.5; delete_pct = 8.0 },
      "d722df0172fe2e5eb373c6ef31772576" );
    ( "skew-hot",
      { W.default_spec with transactions = 200; relations = 1;
        initial_tuples = 100; insert_pct = 0.0; miss_ratio = 0.0; skew = 6.0 },
      "175620895839c34ce09753f837342553" );
    ( "shard-bench",
      { W.default_spec with transactions = 1600; relations = 6;
        initial_tuples = 240; insert_pct = 20.0; delete_pct = 5.0;
        update_pct = 10.0; join_pct = 20.0; clients = 4; seed = 1 },
      "499fbfda4fb64ef61c1ccd830dce6426" );
    ( "churn",
      { W.default_spec with transactions = 500; relations = 2;
        initial_tuples = 40; insert_pct = 30.0; delete_pct = 30.0;
        update_pct = 10.0; miss_ratio = 0.3; clients = 3; seed = 7 },
      "6655e8ace8135549546e54a97562def2" );
  ]

let test_pinned_goldens () =
  List.iter
    (fun (name, spec, expected) ->
      Alcotest.(check string) name expected (stream_digest spec))
    pinned_specs

(* -- keyset ----------------------------------------------------------------- *)

let keyset_vs_list_model =
  (* The Fenwick keyset against the legacy list it replaces: same get,
     same remove, same order, under arbitrary op sequences. *)
  QCheck2.Test.make ~count:200 ~name:"keyset matches the list model"
    QCheck2.Gen.(
      pair (list (int_bound 2)) (list nat))
    (fun (ops, picks) ->
      let module K = Fdb_workload.Keyset in
      let ks = K.create () in
      let model = ref [] in
      let next = ref 0 in
      let picks = ref (picks @ [ 0 ]) in
      let pick bound =
        match !picks with
        | [] -> 0
        | p :: rest ->
            picks := rest;
            if bound = 0 then 0 else p mod bound
      in
      List.iter
        (fun op ->
          match op with
          | 0 ->
              K.prepend ks !next;
              model := !next :: !model;
              incr next
          | 1 ->
              let n = List.length !model in
              if n > 0 then begin
                let i = pick n in
                let got = K.remove ks i in
                let want = List.nth !model i in
                if got <> want then QCheck2.Test.fail_report "remove mismatch";
                model := List.filteri (fun j _ -> j <> i) !model
              end
          | _ ->
              let n = List.length !model in
              if n > 0 then begin
                let i = pick n in
                if K.get ks i <> List.nth !model i then
                  QCheck2.Test.fail_report "get mismatch"
              end)
        ops;
      K.to_list ks = !model && K.size ks = List.length !model)

(* -- operation mix allocation ----------------------------------------------- *)

let count_kinds w =
  List.fold_left
    (fun (i, d, u, j, f) q ->
      match q with
      | Ast.Insert _ -> (i + 1, d, u, j, f)
      | Ast.Delete _ -> (i, d + 1, u, j, f)
      | Ast.Update _ -> (i, d, u + 1, j, f)
      | Ast.Join _ -> (i, d, u, j + 1, f)
      | _ -> (i, d, u, j, f + 1))
    (0, 0, 0, 0, 0) (W.all_queries w)

let test_overflow_mix () =
  (* The satellite bug: three 33.4% kinds over 10 transactions used to
     round each to 3, then the half-up total (10) pushed the clamped
     assignment loops past the array and starved the later kinds.
     Largest remainder allocates 4/3/3 and exactly fills the stream. *)
  let (i, d, u, j) =
    W.mix_counts ~insert_pct:33.4 ~delete_pct:33.4 ~update_pct:33.4
      ~join_pct:0.0 10
  in
  Alcotest.(check (list int)) "33.4/33.4/33.4 of 10" [ 4; 3; 3; 0 ]
    [ i; d; u; j ];
  let w =
    W.generate
      { W.default_spec with transactions = 10; insert_pct = 33.3;
        delete_pct = 33.3; update_pct = 33.3 }
  in
  let (gi, gd, gu, gj, gf) = count_kinds w in
  Alcotest.(check (list int)) "generated counts" [ 4; 3; 3; 0; 0 ]
    [ gi; gd; gu; gj; gf ];
  (* a 25x4 mix of 10 must also fill exactly, leaving no finds *)
  let (i, d, u, j) =
    W.mix_counts ~insert_pct:25.0 ~delete_pct:25.0 ~update_pct:25.0
      ~join_pct:25.0 10
  in
  Alcotest.(check int) "25x4 of 10 total" 10 (i + d + u + j)

let mix_conformance =
  QCheck2.Test.make ~count:300 ~name:"mix allocation conforms"
    QCheck2.Gen.(
      tup4 (float_bound_inclusive 100.0) (float_bound_inclusive 100.0)
        (float_bound_inclusive 100.0) (int_range 0 300))
    (fun (a, b, c, n) ->
      (* scale three raw draws into a mix summing to at most 100 *)
      let total = a +. b +. c in
      let scale = if total > 100.0 then 100.0 /. total else 1.0 in
      let insert_pct = a *. scale
      and delete_pct = b *. scale
      and update_pct = c *. scale in
      let (i, d, u, j) =
        W.mix_counts ~insert_pct ~delete_pct ~update_pct ~join_pct:0.0 n
      in
      let quota pct = pct *. float_of_int n /. 100.0 in
      (* never overflows the stream *)
      i + d + u + j <= n
      && j = 0
      (* each kind within one transaction of its exact quota *)
      && abs_float (float_of_int i -. quota insert_pct) < 1.0
      && abs_float (float_of_int d -. quota delete_pct) < 1.0
      && abs_float (float_of_int u -. quota update_pct) < 1.0
      (* and the generator emits exactly the allocated counts *)
      &&
      let w =
        W.generate
          { W.default_spec with transactions = n; insert_pct; delete_pct;
            update_pct; initial_tuples = 30 }
      in
      let (gi, gd, gu, _, gf) = count_kinds w in
      gi = i && gd = d && gu = u && gf = n - i - d - u)

let test_epsilon_boundary () =
  (* mixes that sum to exactly 100 modulo float noise must be accepted:
     two thirds plus two sixths sums to 100.00000000000001 *)
  let third = 100.0 /. 3.0 and sixth = 100.0 /. 6.0 in
  Alcotest.(check bool) "float noise over 100" true
    (third +. third +. sixth +. sixth > 100.0);
  let w =
    W.generate
      { W.default_spec with transactions = 30; insert_pct = third;
        delete_pct = third; update_pct = sixth; join_pct = sixth }
  in
  let (i, d, u, j, f) = count_kinds w in
  Alcotest.(check (list int)) "noisy 100% mix fills the stream"
    [ 10; 10; 5; 5; 0 ]
    [ i; d; u; j; f ];
  (* an exact 100 stays accepted *)
  ignore
    (W.generate
       { W.default_spec with insert_pct = 60.0; delete_pct = 40.0 });
  (* genuinely over-100 mixes stay rejected *)
  (match
     W.generate { W.default_spec with insert_pct = 80.0; delete_pct = 30.0 }
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "80+30 accepted");
  match
    W.generate { W.default_spec with insert_pct = 100.0; delete_pct = 0.001 }
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "100+0.001 accepted"

let test_generation_scales () =
  (* The O(n^2) bug made million-tuple specs take minutes; the keyset
     makes generation near-linear.  Time a spec and one 4x larger: a
     quadratic generator would blow the generous 16x envelope. *)
  let churn n tuples =
    { W.default_spec with transactions = n; initial_tuples = tuples;
      relations = 2; insert_pct = 20.0; delete_pct = 20.0;
      update_pct = 10.0; miss_ratio = 0.05; seed = 5 }
  in
  let time spec =
    let t0 = Sys.time () in
    ignore (W.generate spec);
    Sys.time () -. t0
  in
  let small = time (churn 25_000 100_000) in
  let big = time (churn 100_000 400_000) in
  Alcotest.(check bool)
    (Printf.sprintf "4x work stays near-linear (%.3fs -> %.3fs)" small big)
    true
    (big <= Float.max 1.0 (16.0 *. small))

(* -- open-loop traffic ------------------------------------------------------ *)

module O = Fdb_workload.Openloop

let small_plan =
  O.standard ~relations:2 ~initial_tuples:2_000 ~tenants:3 ~txns:1_500
    ~seed:11 ()

let test_openloop_determinism () =
  let a = O.generate small_plan and b = O.generate small_plan in
  Alcotest.(check bool) "same stream" true (a.O.stream = b.O.stream);
  let c = O.generate { small_plan with seed = 12 } in
  Alcotest.(check bool) "different seed differs" true (c.O.stream <> a.O.stream)

let test_openloop_phases () =
  let t = O.generate small_plan in
  (* phase bounds partition the stream in order *)
  let stop =
    List.fold_left
      (fun expect (name, start, stop) ->
        Alcotest.(check int) (name ^ " starts where previous stopped") expect
          start;
        Alcotest.(check bool) (name ^ " non-empty") true (stop > start);
        stop)
      0 t.O.phase_bounds
  in
  Alcotest.(check int) "bounds cover the stream" (O.total_txns t) stop;
  (* tenants tag every query and each tenant sees a substream *)
  Array.iter
    (fun (tenant, _) ->
      Alcotest.(check bool) "tenant in range" true
        (tenant >= 0 && tenant < small_plan.O.tenants))
    t.O.stream;
  let per_tenant =
    List.init small_plan.O.tenants (fun tn ->
        List.length (O.tenant_stream t tn))
  in
  Alcotest.(check int) "tenant streams partition the arrival order"
    (O.total_txns t)
    (List.fold_left ( + ) 0 per_tenant);
  Alcotest.(check bool) "every tenant gets traffic" true
    (List.for_all (fun n -> n > 0) per_tenant)

let test_openloop_storm_concentrates () =
  (* one relation, two read-only phases differing only in the storm: 95% of
     the stormy phase's references must pile into the 8 newest keys *)
  let plan =
    {
      O.relations = 1;
      initial_tuples = 2_000;
      tenants = 1;
      seed = 3;
      phases =
        [
          { O.name = "uniform"; txns = 600; mix = O.read_mix; storm = None };
          {
            O.name = "storm";
            txns = 600;
            mix = O.read_mix;
            storm = Some { O.hot_keys = 8; hot_pct = 95.0 };
          };
        ];
    }
  in
  let t = O.generate plan in
  let find_keys_in (start, stop) =
    let acc = ref [] in
    for i = start to stop - 1 do
      match snd t.O.stream.(i) with
      | Ast.Find { key = Fdb_relational.Value.Int k; _ } -> acc := k :: !acc
      | _ -> ()
    done;
    !acc
  in
  let bounds name =
    let (_, start, stop) =
      List.find (fun (n, _, _) -> n = name) t.O.phase_bounds
    in
    (start, stop)
  in
  let uniform = find_keys_in (bounds "uniform")
  and storm = find_keys_in (bounds "storm") in
  let distinct ks = List.length (List.sort_uniq compare ks) in
  let hot ks =
    (* occurrences of the 8 most frequent keys *)
    let sorted = List.sort compare ks in
    let runs = ref [] and cur = ref 0 and prev = ref min_int in
    List.iter
      (fun k ->
        if k = !prev then incr cur
        else begin
          if !cur > 0 then runs := !cur :: !runs;
          prev := k;
          cur := 1
        end)
      sorted;
    if !cur > 0 then runs := !cur :: !runs;
    match List.sort (fun a b -> compare b a) !runs with
    | a :: rest ->
        List.fold_left ( + ) a
          (List.filteri (fun i _ -> i < 7) rest)
    | [] -> 0
  in
  Alcotest.(check bool)
    (Printf.sprintf "storm concentrates (%d distinct of %d refs)"
       (distinct storm) (List.length storm))
    true
    (List.length storm > 500 && distinct storm * 4 < List.length storm);
  (* ~95% of stormy references hit the top-8 keys; the uniform phase
     spreads over ~2000 keys, so its top-8 share stays tiny *)
  Alcotest.(check bool) "hot-set share dominates under storm" true
    (hot storm * 10 > List.length storm * 8);
  Alcotest.(check bool) "uniform phase stays flat" true
    (hot uniform * 4 < List.length uniform)

let test_openloop_validation () =
  let expect_invalid name spec =
    match O.generate spec with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s accepted" name
  in
  expect_invalid "no tenants" { small_plan with tenants = 0 };
  expect_invalid "no phases" { small_plan with phases = [] };
  expect_invalid "bad storm"
    {
      small_plan with
      phases =
        [
          {
            O.name = "p";
            txns = 10;
            mix = O.read_mix;
            storm = Some { O.hot_keys = 0; hot_pct = 50.0 };
          };
        ];
    };
  expect_invalid "over-100 mix"
    {
      small_plan with
      phases =
        [
          {
            O.name = "p";
            txns = 10;
            mix = { O.read_mix with insert_pct = 70.0; delete_pct = 40.0 };
            storm = None;
          };
        ];
    }

let () =
  Alcotest.run "workload"
    [
      ( "generation",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "counts" `Quick test_counts;
          Alcotest.test_case "paper grid counts" `Quick test_paper_grid_counts;
          Alcotest.test_case "initial round robin" `Quick
            test_initial_round_robin;
          Alcotest.test_case "client dealing" `Quick test_client_dealing;
          Alcotest.test_case "fresh insert keys" `Quick
            test_inserts_use_fresh_keys;
          Alcotest.test_case "deletes extension" `Quick test_deletes_extension;
          Alcotest.test_case "updates extension" `Quick
            test_updates_extension;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "queries parse back" `Quick
            test_queries_parse_back;
        ] );
      ( "skew",
        [
          Alcotest.test_case "skewed determinism" `Quick test_skew_determinism;
          Alcotest.test_case "skew concentrates references" `Quick
            test_skew_concentrates;
          Alcotest.test_case "negative skew rejected" `Quick
            test_skew_validation;
        ] );
      ( "pinned",
        [
          Alcotest.test_case "golden streams byte-identical" `Quick
            test_pinned_goldens;
          QCheck_alcotest.to_alcotest keyset_vs_list_model;
        ] );
      ( "mix",
        [
          Alcotest.test_case "largest remainder fills overflow mix" `Quick
            test_overflow_mix;
          QCheck_alcotest.to_alcotest mix_conformance;
          Alcotest.test_case "epsilon boundary" `Quick test_epsilon_boundary;
        ] );
      ( "scale",
        [
          Alcotest.test_case "generation near-linear" `Slow
            test_generation_scales;
        ] );
      ( "openloop",
        [
          Alcotest.test_case "determinism" `Quick test_openloop_determinism;
          Alcotest.test_case "phases and tenants" `Quick test_openloop_phases;
          Alcotest.test_case "storm concentrates" `Quick
            test_openloop_storm_concentrates;
          Alcotest.test_case "validation" `Quick test_openloop_validation;
        ] );
    ]
