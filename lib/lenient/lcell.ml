(* Domain-safe single-assignment cells: the lenient constructor's
   multicore twin.  [Engine.ivar] is deliberately single-domain (the
   deterministic simulator owns every cell); an [Lcell.t] carries the same
   write-once discipline across OCaml 5 domains.  The whole state lives in
   one [Atomic.t] word, so a reader either sees [Empty] or the fully
   published [Full v] — never a torn write: the CAS that installs [Full]
   is a release, and any read that observes it is an acquire, so every
   plain write the producer made before [put] happens-before the
   consumer's use of [v]. *)

type 'a state =
  | Empty of ('a -> unit) list  (* waiters, most recent first *)
  | Full of 'a

type 'a t = 'a state Atomic.t

exception Double_put

let create () = Atomic.make (Empty [])

let make v = Atomic.make (Full v)

let peek cell =
  match Atomic.get cell with Full v -> Some v | Empty _ -> None

let is_full cell =
  match Atomic.get cell with Full _ -> true | Empty _ -> false

let rec put cell v =
  match Atomic.get cell with
  | Full _ -> raise Double_put
  | Empty waiters as seen ->
      if Atomic.compare_and_set cell seen (Full v) then
        (* Registration order, like [Engine.put] waking its waiters. *)
        List.iter (fun k -> k v) (List.rev waiters)
      else put cell v

let rec on_full cell k =
  match Atomic.get cell with
  | Full v -> k v
  | Empty waiters as seen ->
      if not (Atomic.compare_and_set cell seen (Empty (k :: waiters))) then
        on_full cell k

(* Blocked-reader parking: a reader on another domain sleeps on a private
   mutex/condvar pair and is woken by the waiter the producer runs.  The
   [slot] hand-off is inside the mutex, so the wake-up cannot be missed
   even if [put] lands between the [on_full] and the [wait]. *)
let get cell =
  match Atomic.get cell with
  | Full v -> v
  | Empty _ ->
      let m = Mutex.create () and c = Condition.create () in
      let slot = ref None in
      on_full cell (fun v ->
          Mutex.lock m;
          slot := Some v;
          Condition.signal c;
          Mutex.unlock m);
      Mutex.lock m;
      let rec park () =
        match !slot with
        | Some v -> v
        | None ->
            Condition.wait c m;
            park ()
      in
      let v = park () in
      Mutex.unlock m;
      v
