examples/multi_user.ml: Fdb Fdb_kernel Fdb_merge Fdb_query Fdb_relational Format List Pipeline Printf Schema Tuple Value
