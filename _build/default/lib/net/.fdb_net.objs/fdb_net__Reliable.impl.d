lib/net/reliable.ml: Fabric Hashtbl List Option Random Topology
