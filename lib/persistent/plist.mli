(** Persistent ordered linked list — the relation representation used in the
    paper's experiments ("for simplicity, a linked-list implementation of
    both the database and individual relations was used", §4).

    An ordered insert copies the prefix before the insertion point and
    shares the suffix; this is the pure counterpart of
    {!Fdb_lenient.Llist.insert_ordered}. *)

module Make (Elt : Ordered.S) : sig
  type t

  val empty : t

  val of_list : Elt.t list -> t
  (** Sorts the input. *)

  val to_list : t -> Elt.t list

  val size : t -> int

  val is_empty : t -> bool

  val member : Elt.t -> t -> bool

  val find : (Elt.t -> bool) -> t -> Elt.t option

  val fold : ?meter:Meter.t -> ('a -> Elt.t -> 'a) -> 'a -> t -> 'a
  (** Ascending fold without materializing a list.  Meters one unit per cell
      visited. *)

  val iter : (Elt.t -> unit) -> t -> unit

  val range_fold :
    ?meter:Meter.t ->
    ge_lo:(Elt.t -> bool) ->
    le_hi:(Elt.t -> bool) ->
    ('a -> Elt.t -> 'a) ->
    'a ->
    t ->
    'a
  (** Fold over the elements satisfying both bound predicates, in order.
      [ge_lo] must be upward closed and [le_hi] downward closed with respect
      to [Elt.compare].  The scan stops at the first element past the upper
      bound; every cell visited (including the skipped prefix — a list has no
      index) meters one unit. *)

  val rewrite :
    ?meter:Meter.t ->
    ge_lo:(Elt.t -> bool) ->
    le_hi:(Elt.t -> bool) ->
    (Elt.t -> Elt.t option) ->
    t ->
    t * int
  (** Single-traversal bulk update: replace each in-bounds element [x] with
      [y] when [f x = Some y] (which must satisfy [compare y x = 0]), keeping
      every untouched suffix physically shared.  Returns the new list and the
      number of replacements; meters one unit per rebuilt cell.
      @raise Invalid_argument if a replacement changes the element's order. *)

  val insert : ?meter:Meter.t -> Elt.t -> t -> t
  (** Ordered insert; duplicates are kept adjacent.  Meters one allocation
      per copied cell plus one for the new cell. *)

  val delete : ?meter:Meter.t -> Elt.t -> t -> t * bool
  (** Remove the first element equal to the argument. *)

  val shared_cells : old:t -> t -> int * int
  (** [(shared, total)]: of the new version's [total] cells, how many are
      physically shared with the old version. *)

  val invariant : t -> bool
  (** Elements are in nondecreasing order. *)
end
