(* Workload generator tests: determinism, operation mix, client dealing. *)

module W = Fdb_workload.Workload
module Ast = Fdb_query.Ast

let test_determinism () =
  let a = W.generate W.default_spec and b = W.generate W.default_spec in
  Alcotest.(check bool) "same streams" true
    (a.W.client_streams = b.W.client_streams);
  let c = W.generate { W.default_spec with seed = 43 } in
  Alcotest.(check bool) "different seed differs" true
    (a.W.client_streams <> c.W.client_streams)

let test_counts () =
  let w = W.generate { W.default_spec with insert_pct = 14.0 } in
  Alcotest.(check int) "50 transactions" 50 (List.length (W.all_queries w));
  Alcotest.(check int) "14% of 50 = 7 inserts" 7 (W.insert_count w);
  let total_initial =
    List.fold_left (fun acc (_, ts) -> acc + List.length ts) 0 w.W.initial
  in
  Alcotest.(check int) "50 initial tuples" 50 total_initial;
  Alcotest.(check int) "3 schemas" 3 (List.length w.W.schemas)

let test_paper_grid_counts () =
  (* The paper's odd percentages resolve to exact transaction counts. *)
  List.iter2
    (fun pct expected ->
      let w =
        W.generate { W.default_spec with insert_pct = pct; relations = 1 }
      in
      Alcotest.(check int)
        (Printf.sprintf "%.0f%% inserts" pct)
        expected (W.insert_count w))
    W.paper_insert_percentages [ 0; 2; 4; 7; 12; 19 ]

let test_initial_round_robin () =
  let w = W.generate { W.default_spec with relations = 3 } in
  List.iteri
    (fun i (name, tuples) ->
      Alcotest.(check string) "name" (W.relation_name (i + 1)) name;
      (* 50 keys dealt over 3 relations: 17/17/16 *)
      let expected = if i < 2 then 17 else 16 in
      Alcotest.(check int) (name ^ " share") expected (List.length tuples))
    w.W.initial

let test_client_dealing () =
  let w = W.generate { W.default_spec with clients = 4 } in
  Alcotest.(check int) "4 streams" 4 (List.length w.W.client_streams);
  Alcotest.(check int) "all queries dealt" 50
    (List.fold_left (fun a s -> a + List.length s) 0 w.W.client_streams);
  (* Round-robin dealing: stream sizes differ by at most one. *)
  let sizes = List.map List.length w.W.client_streams in
  Alcotest.(check bool) "balanced" true
    (List.fold_left max 0 sizes - List.fold_left min 100 sizes <= 1)

let test_inserts_use_fresh_keys () =
  let w = W.generate { W.default_spec with insert_pct = 38.0 } in
  let insert_keys =
    List.filter_map
      (function
        | Ast.Insert { values = Fdb_relational.Value.Int k :: _; _ } -> Some k
        | _ -> None)
      (W.all_queries w)
  in
  Alcotest.(check int) "19 inserts" 19 (List.length insert_keys);
  Alcotest.(check bool) "all fresh (>= 50)" true
    (List.for_all (fun k -> k >= 50) insert_keys);
  Alcotest.(check bool) "no duplicates" true
    (List.length (List.sort_uniq compare insert_keys) = 19)

let test_deletes_extension () =
  let w =
    W.generate { W.default_spec with delete_pct = 10.0; insert_pct = 10.0 }
  in
  let deletes =
    List.filter (function Ast.Delete _ -> true | _ -> false) (W.all_queries w)
  in
  Alcotest.(check int) "10% deletes" 5 (List.length deletes)

let test_updates_extension () =
  let w =
    W.generate
      { W.default_spec with update_pct = 20.0; insert_pct = 10.0 }
  in
  let updates =
    List.filter (function Ast.Update _ -> true | _ -> false) (W.all_queries w)
  in
  Alcotest.(check int) "20% updates" 10 (List.length updates);
  (* every generated update targets the val column of a real key *)
  List.iter
    (function
      | Ast.Update { col = "val"; where = Ast.Cmp ("key", Ast.Eq, _); _ } -> ()
      | Ast.Update _ -> Alcotest.fail "malformed update"
      | _ -> ())
    updates

let test_validation () =
  let expect_invalid name spec =
    match W.generate spec with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s accepted" name
  in
  expect_invalid "no relations" { W.default_spec with relations = 0 };
  expect_invalid "no clients" { W.default_spec with clients = 0 };
  expect_invalid "over 100%"
    { W.default_spec with insert_pct = 80.0; delete_pct = 30.0 };
  expect_invalid "bad miss ratio" { W.default_spec with miss_ratio = 1.5 }

let test_queries_parse_back () =
  (* Every generated query survives a print/parse round trip. *)
  let w =
    W.generate
      { W.default_spec with insert_pct = 24.0; delete_pct = 6.0;
        update_pct = 6.0 }
  in
  List.iter
    (fun q ->
      match Fdb_query.Parser.parse (Ast.to_string q) with
      | Ok q' when q = q' -> ()
      | Ok _ -> Alcotest.failf "round trip changed %s" (Ast.to_string q)
      | Error e -> Alcotest.failf "%s: %s" (Ast.to_string q) e)
    (W.all_queries w)

let find_keys w =
  List.filter_map
    (function
      | Ast.Find { key = Fdb_relational.Value.Int k; _ } -> Some k
      | _ -> None)
    (W.all_queries w)

let test_skew_determinism () =
  (* skewed draws come from the same seeded stream: generation stays a
     pure function of the spec *)
  let spec = { W.default_spec with skew = 1.5; delete_pct = 8.0 } in
  let a = W.generate spec and b = W.generate spec in
  Alcotest.(check bool) "same streams" true
    (a.W.client_streams = b.W.client_streams);
  let c = W.generate { spec with seed = 43 } in
  Alcotest.(check bool) "different seed differs" true
    (a.W.client_streams <> c.W.client_streams);
  (* the historical uniform generator is the default *)
  Alcotest.(check (float 0.0)) "default is uniform" 0.0 W.default_spec.W.skew

let test_skew_concentrates () =
  let base =
    { W.default_spec with transactions = 200; relations = 1;
      initial_tuples = 100; insert_pct = 0.0; miss_ratio = 0.0 }
  in
  let distinct ks = List.length (List.sort_uniq compare ks) in
  let hottest ks =
    List.fold_left
      (fun best k -> max best (List.length (List.filter (( = ) k) ks)))
      0 ks
  in
  let uniform = find_keys (W.generate base)
  and skewed = find_keys (W.generate { base with skew = 6.0 }) in
  Alcotest.(check int) "same volume" (List.length uniform)
    (List.length skewed);
  (* heavy rank-skew piles references onto a few hot keys: the hottest
     key dominates and the reference set shrinks *)
  Alcotest.(check bool)
    (Printf.sprintf "hottest %d skewed >> %d uniform" (hottest skewed)
       (hottest uniform))
    true
    (hottest skewed >= 5 * hottest uniform);
  Alcotest.(check bool)
    (Printf.sprintf "%d skewed distinct < %d uniform distinct"
       (distinct skewed) (distinct uniform))
    true
    (distinct skewed < distinct uniform);
  (* every skewed reference still hits a present key *)
  Alcotest.(check bool) "all present" true
    (List.for_all (fun k -> k >= 0 && k < 100) skewed)

let test_skew_validation () =
  match W.generate { W.default_spec with skew = -0.1 } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative skew accepted"

let () =
  Alcotest.run "workload"
    [
      ( "generation",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "counts" `Quick test_counts;
          Alcotest.test_case "paper grid counts" `Quick test_paper_grid_counts;
          Alcotest.test_case "initial round robin" `Quick
            test_initial_round_robin;
          Alcotest.test_case "client dealing" `Quick test_client_dealing;
          Alcotest.test_case "fresh insert keys" `Quick
            test_inserts_use_fresh_keys;
          Alcotest.test_case "deletes extension" `Quick test_deletes_extension;
          Alcotest.test_case "updates extension" `Quick
            test_updates_extension;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "queries parse back" `Quick
            test_queries_parse_back;
        ] );
      ( "skew",
        [
          Alcotest.test_case "skewed determinism" `Quick test_skew_determinism;
          Alcotest.test_case "skew concentrates references" `Quick
            test_skew_concentrates;
          Alcotest.test_case "negative skew rejected" `Quick
            test_skew_validation;
        ] );
    ]
