(** Persistent chunked column store.

    The fifth relation layout: rows live decomposed into per-column packed
    arrays at a fixed chunk granularity — the column-oriented table shape
    of analytic stores — kept globally sorted by the ordering field
    (field 0).  Chunks are immutable; an update rebuilds exactly the one
    chunk it touches plus the chunk spine and shares every other chunk
    physically, so the paper's structure-sharing accounting
    ({!val:shared_chunks}, the analogue of {!Btree.Make.shared_pages})
    applies unchanged: all but O(chunk) of an n-row relation survives any
    single-row write.

    Unlike the tree backends, which are functors over an ordered element,
    this one needs to see {e inside} the element to shred it into columns:
    {!module-type:Row} exposes the element as a field array whose slot 0
    is the ordering key. *)

(** How elements decompose into fields.  [fields] and [of_fields] must be
    inverses; field 0 is the ordering key, and two elements compare as
    their field-0s under [compare_field] (set semantics: one element per
    key). *)
module type Row = sig
  type t

  type field

  val fields : t -> field array
  (** Read-only view; the store never mutates it. *)

  val of_fields : field array -> t

  val compare_field : field -> field -> int
end

module Make (Row : Row) : sig
  type t

  val create : ?chunk:int -> unit -> t
  (** [chunk] is the maximum rows per chunk (default 256; minimum 2). *)

  val chunk_capacity : t -> int

  val chunk_count : t -> int

  val of_list : ?chunk:int -> Row.t list -> t
  (** Bulk load: stable-sorts by key and keeps the {e first} occurrence of
      each duplicate key, then packs full chunks directly — O(n log n),
      the path million-row loads take. *)

  val to_list : t -> Row.t list

  val size : t -> int

  val member : Row.t -> t -> bool

  val find : Row.t -> t -> Row.t option

  val fold : ?meter:Meter.t -> ('a -> Row.t -> 'a) -> 'a -> t -> 'a
  (** In-order fold; meters one unit per chunk visited. *)

  val iter : (Row.t -> unit) -> t -> unit

  val range_fold :
    ?meter:Meter.t ->
    ge_lo:(Row.t -> bool) ->
    le_hi:(Row.t -> bool) ->
    ('a -> Row.t -> 'a) ->
    'a ->
    t ->
    'a
  (** In-order fold over the elements satisfying both bound predicates
      ([ge_lo] upward closed, [le_hi] downward closed).  Chunks wholly
      outside the range are pruned by their boundary rows without being
      metered; O(log n + k/chunk) chunks are visited for a k-element
      range. *)

  val rewrite :
    ?meter:Meter.t ->
    ge_lo:(Row.t -> bool) ->
    le_hi:(Row.t -> bool) ->
    (Row.t -> Row.t option) ->
    t ->
    t * int
  (** Single-traversal bulk update of the in-bounds elements; replacements
      must keep the ordering key (and the width), so chunk shapes are
      preserved and untouched chunks stay physically shared.  Returns the
      replacement count; meters one unit per rebuilt chunk.
      @raise Invalid_argument if a replacement changes the key or width. *)

  val insert : ?meter:Meter.t -> Row.t -> t -> t
  (** Set semantics: an existing key is replaced in place.  Rebuilds one
      chunk (two when the chunk splits at capacity) and the spine; meters
      one unit per chunk built. *)

  val delete : ?meter:Meter.t -> Row.t -> t -> t * bool

  val shared_chunks : old:t -> t -> int * int
  (** [(shared, total)] over the new version's chunks — physical identity,
      measured by a merge walk over the two sorted spines. *)

  val chunks_cols : t -> Row.field array array array
  (** The raw per-chunk column arrays, ascending: element [ci] is chunk
      [ci]'s columns, [cols.(j).(i)] the field [j] of its row [i].  Shared
      with the store — callers must not mutate.  For serializers. *)

  val invariant : t -> bool
  (** Chunk occupancy in [1, capacity], consistent column lengths and
      widths, keys strictly ascending within and across chunks, size
      consistent. *)
end
