(** Relation schemas: named, typed columns.  Column 0 is the key. *)

type ctype = CInt | CStr | CBool | CReal

type t

val make : name:string -> cols:(string * ctype) list -> t
(** @raise Invalid_argument on empty or duplicated column lists. *)

val name : t -> string

val columns : t -> (string * ctype) list

val arity : t -> int

val column_index : t -> string -> int option

val matches : t -> Tuple.t -> bool
(** Arity and per-column type agreement. *)

val pp : Format.formatter -> t -> unit
