(** Persistent AVL trees with metered path copying.

    Myers [18] is cited by the paper for "efficient applicative data types"
    based on AVL trees; this is the corresponding representation for a
    relation.  Set semantics: inserting an element already present returns
    the tree unchanged (and physically shared). *)

module Make (Elt : Ordered.S) : sig
  type t

  val empty : t

  val of_list : Elt.t list -> t

  val to_list : t -> Elt.t list
  (** In-order, ascending. *)

  val size : t -> int

  val height : t -> int

  val member : Elt.t -> t -> bool

  val find : Elt.t -> t -> Elt.t option
  (** The stored element equal to the argument, if any (useful when
      [compare] only inspects a key field). *)

  val fold : ?meter:Meter.t -> ('a -> Elt.t -> 'a) -> 'a -> t -> 'a
  (** In-order fold without materializing a list.  Meters one unit per node
      visited. *)

  val iter : (Elt.t -> unit) -> t -> unit

  val range_fold :
    ?meter:Meter.t ->
    ge_lo:(Elt.t -> bool) ->
    le_hi:(Elt.t -> bool) ->
    ('a -> Elt.t -> 'a) ->
    'a ->
    t ->
    'a
  (** In-order fold over the elements satisfying both bound predicates.
      [ge_lo] must be upward closed and [le_hi] downward closed with respect
      to [Elt.compare]; subtrees provably outside the bounds are pruned, so
      only the nodes actually visited are metered — O(log n + k) for a
      k-element range. *)

  val rewrite :
    ?meter:Meter.t ->
    ge_lo:(Elt.t -> bool) ->
    le_hi:(Elt.t -> bool) ->
    (Elt.t -> Elt.t option) ->
    t ->
    t * int
  (** Single-traversal bulk update over the in-bounds elements: replace [x]
      with [y] when [f x = Some y] (which must satisfy [compare y x = 0], so
      the shape and balance are preserved and untouched subtrees stay
      physically shared).  Returns the new tree and the replacement count;
      meters one unit per rebuilt node.
      @raise Invalid_argument if a replacement changes the element's order. *)

  val insert : ?meter:Meter.t -> Elt.t -> t -> t

  val delete : ?meter:Meter.t -> Elt.t -> t -> t * bool

  val shared_nodes : old:t -> t -> int * int
  (** [(shared, total)] physical-node sharing of the new version against the
      old one. *)

  val invariant : t -> bool
  (** Ordering, height consistency, and balance factors in [-1, 1]. *)
end
