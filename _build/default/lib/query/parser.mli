(** Recursive-descent parser: the symbolic half of the paper's
    [translate : queries -> transactions]. *)

val parse : string -> (Ast.query, string) result
(** Parse one query.  Errors are human-readable messages. *)

val parse_exn : string -> Ast.query
(** @raise Failure with the error message. *)

val parse_script : string -> (Ast.query list, string) result
(** Parse a [;]-or-newline-separated sequence of queries; blank lines and
    [--] comments are skipped. *)
