lib/persistent/ordered.ml: Int String
