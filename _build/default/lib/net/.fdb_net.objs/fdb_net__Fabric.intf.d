lib/net/fabric.mli: Topology
