(** Persistent 2-3 trees.

    The paper cites Hoffman & O'Donnell's equational 2-3 tree programs
    (transcribed to FEL by Ibrahim) as the tree representation whose
    functional updating shares all but O(log n) of a relation.  Set
    semantics; full insert and delete with rebalancing. *)

module Make (Elt : Ordered.S) : sig
  type t

  val empty : t

  val of_list : Elt.t list -> t

  val to_list : t -> Elt.t list

  val size : t -> int

  val height : t -> int

  val member : Elt.t -> t -> bool

  val find : Elt.t -> t -> Elt.t option

  val fold : ?meter:Meter.t -> ('a -> Elt.t -> 'a) -> 'a -> t -> 'a
  (** In-order fold without materializing a list.  Meters one unit per node
      visited. *)

  val iter : (Elt.t -> unit) -> t -> unit

  val range_fold :
    ?meter:Meter.t ->
    ge_lo:(Elt.t -> bool) ->
    le_hi:(Elt.t -> bool) ->
    ('a -> Elt.t -> 'a) ->
    'a ->
    t ->
    'a
  (** In-order fold over the elements satisfying both bound predicates
      ([ge_lo] upward closed, [le_hi] downward closed).  Out-of-bounds
      subtrees are pruned; only nodes actually visited are metered. *)

  val rewrite :
    ?meter:Meter.t ->
    ge_lo:(Elt.t -> bool) ->
    le_hi:(Elt.t -> bool) ->
    (Elt.t -> Elt.t option) ->
    t ->
    t * int
  (** Single-traversal bulk update of the in-bounds elements; replacements
      must compare equal to the original so the shape is preserved and
      untouched subtrees stay shared.  Returns the replacement count; meters
      one unit per rebuilt node.
      @raise Invalid_argument if a replacement changes the element's order. *)

  val insert : ?meter:Meter.t -> Elt.t -> t -> t

  val delete : ?meter:Meter.t -> Elt.t -> t -> t * bool

  val shared_nodes : old:t -> t -> int * int

  val invariant : t -> bool
  (** All leaves at the same depth; keys strictly ordered. *)
end
