open Fdb_relational
module Ast = Fdb_query.Ast

type spec = {
  transactions : int;
  relations : int;
  initial_tuples : int;
  insert_pct : float;
  delete_pct : float;
  update_pct : float;
  join_pct : float;
  miss_ratio : float;
  skew : float;
  clients : int;
  seed : int;
}

let default_spec =
  {
    transactions = 50;
    relations = 3;
    initial_tuples = 50;
    insert_pct = 14.0;
    delete_pct = 0.0;
    update_pct = 0.0;
    join_pct = 0.0;
    miss_ratio = 0.1;
    skew = 0.0;
    clients = 2;
    seed = 42;
  }

let paper_insert_percentages = [ 0.0; 4.0; 7.0; 14.0; 24.0; 38.0 ]
let paper_relation_counts = [ 5; 3; 1 ]

type t = {
  spec : spec;
  schemas : Schema.t list;
  initial : (string * Tuple.t list) list;
  client_streams : Ast.query list list;
}

let relation_name i = Printf.sprintf "R%d" i

let schema_for i =
  Schema.make ~name:(relation_name i)
    ~cols:[ ("key", Schema.CInt); ("val", Schema.CStr) ]

let tuple_for key = Tuple.make [ Value.Int key; Value.Str (Printf.sprintf "t%d" key) ]

let check spec =
  if spec.transactions < 0 then invalid_arg "Workload: transactions < 0";
  if spec.relations < 1 then invalid_arg "Workload: relations < 1";
  if spec.initial_tuples < 0 then invalid_arg "Workload: initial_tuples < 0";
  if spec.clients < 1 then invalid_arg "Workload: clients < 1";
  if spec.insert_pct < 0.0 || spec.delete_pct < 0.0 || spec.update_pct < 0.0
     || spec.join_pct < 0.0
     || spec.insert_pct +. spec.delete_pct +. spec.update_pct +. spec.join_pct
        > 100.0
  then invalid_arg "Workload: bad operation mix";
  if spec.miss_ratio < 0.0 || spec.miss_ratio > 1.0 then
    invalid_arg "Workload: miss_ratio outside [0, 1]";
  if spec.skew < 0.0 then invalid_arg "Workload: skew < 0"

(* Which of [n] present keys a reference touches.  [skew = 0.0] is exactly
   the uniform draw the generator always made — same stream consumption,
   so existing seeds regenerate byte-identical workloads.  [skew > 0.0] is
   a rank-skew: a uniform variate raised to [1 + skew] concentrates picks
   on low ranks — the head of the present-key list, i.e. the most recently
   inserted keys — approximating the zipfian access patterns real caches
   and hot rows see.  Higher skew, hotter head. *)
let pick_index rand ~skew n =
  if skew <= 0.0 then Random.State.int rand n
  else
    let u = Random.State.float rand 1.0 in
    min (n - 1) (int_of_float (float_of_int n *. (u ** (1.0 +. skew))))

(* How many of [n] transactions are of a kind given its percentage;
   round half up so the paper's 7% of 50 becomes 4. *)
let count_of_pct pct n =
  int_of_float (Float.round (pct *. float_of_int n /. 100.0))

let generate spec =
  check spec;
  let rand = Random.State.make [| spec.seed |] in
  let k = spec.relations in
  let schemas = List.init k (fun i -> schema_for (i + 1)) in
  (* Initial tuples: keys 0 .. initial-1, dealt round-robin. *)
  let initial_keys = Array.make k [] in
  for key = spec.initial_tuples - 1 downto 0 do
    let r = key mod k in
    initial_keys.(r) <- key :: initial_keys.(r)
  done;
  let initial =
    List.init k (fun i ->
        (relation_name (i + 1), List.map tuple_for initial_keys.(i)))
  in
  (* Kind sequence: the right counts of inserts/deletes, shuffled. *)
  let n = spec.transactions in
  let n_ins = count_of_pct spec.insert_pct n in
  let n_del = count_of_pct spec.delete_pct n in
  let n_upd = count_of_pct spec.update_pct n in
  let n_join = count_of_pct spec.join_pct n in
  let kinds = Array.make n `Find in
  for i = 0 to n_ins - 1 do
    kinds.(i) <- `Insert
  done;
  for i = n_ins to min (n - 1) (n_ins + n_del - 1) do
    kinds.(i) <- `Delete
  done;
  for i = n_ins + n_del to min (n - 1) (n_ins + n_del + n_upd - 1) do
    kinds.(i) <- `Update
  done;
  for
    i = n_ins + n_del + n_upd
    to min (n - 1) (n_ins + n_del + n_upd + n_join - 1)
  do
    kinds.(i) <- `Join
  done;
  for i = n - 1 downto 1 do
    let j = Random.State.int rand (i + 1) in
    let tmp = kinds.(i) in
    kinds.(i) <- kinds.(j);
    kinds.(j) <- tmp
  done;
  (* Present keys per relation evolve as inserts/deletes are generated. *)
  let present = Array.map (fun ks -> ref ks) initial_keys in
  let next_key = ref spec.initial_tuples in
  let pick_relation () = Random.State.int rand k in
  let queries =
    Array.to_list
      (Array.mapi
         (fun _i kind ->
           let r = pick_relation () in
           let rel = relation_name (r + 1) in
           match kind with
           | `Insert ->
               let key = !next_key in
               incr next_key;
               present.(r) := key :: !(present.(r));
               Ast.Insert { rel; values = [ Value.Int key;
                                            Value.Str (Printf.sprintf "t%d" key) ] }
           | `Delete -> (
               match !(present.(r)) with
               | [] ->
                   (* nothing to delete here: probe an absent key *)
                   Ast.Delete { rel; key = Value.Int (-1) }
               | keys ->
                   let key =
                     List.nth keys
                       (pick_index rand ~skew:spec.skew (List.length keys))
                   in
                   present.(r) := List.filter (fun x -> x <> key) keys;
                   Ast.Delete { rel; key = Value.Int key })
           | `Update -> (
               match !(present.(r)) with
               | [] -> Ast.Update { rel; col = "val";
                                    value = Value.Str "touched";
                                    where = Ast.Cmp ("key", Ast.Eq, Value.Int (-1)) }
               | keys ->
                   let key =
                     List.nth keys
                       (pick_index rand ~skew:spec.skew (List.length keys))
                   in
                   Ast.Update
                     { rel; col = "val";
                       value = Value.Str (Printf.sprintf "u%d" key);
                       where = Ast.Cmp ("key", Ast.Eq, Value.Int key) })
           | `Join ->
               (* Cross-relation when there is more than one relation —
                  the multi-site (cross-shard) transaction of the sharded
                  executor.  Consumes one extra draw, but only workloads
                  with [join_pct > 0] reach this branch, so historical
                  seeds regenerate byte-identical streams. *)
               let r2 =
                 if k = 1 then r
                 else (r + 1 + Random.State.int rand (k - 1)) mod k
               in
               Ast.Join
                 { left = rel; right = relation_name (r2 + 1);
                   on = ("key", "key") }
           | `Find ->
               let miss = Random.State.float rand 1.0 < spec.miss_ratio in
               if miss || !(present.(r)) = [] then
                 Ast.Find { rel; key = Value.Int (-1 - Random.State.int rand 1000) }
               else
                 let keys = !(present.(r)) in
                 Ast.Find
                   { rel;
                     key =
                       Value.Int
                         (List.nth keys
                            (pick_index rand ~skew:spec.skew
                               (List.length keys)))
                   })
         kinds)
  in
  (* Deal queries round-robin into client streams. *)
  let streams = Array.make spec.clients [] in
  List.iteri
    (fun i q -> streams.(i mod spec.clients) <- q :: streams.(i mod spec.clients))
    queries;
  let client_streams = Array.to_list (Array.map List.rev streams) in
  { spec; schemas; initial; client_streams }

let all_queries w = List.concat w.client_streams

let insert_count w =
  List.length
    (List.filter (function Ast.Insert _ -> true | _ -> false) (all_queries w))
