lib/kernel/vec.mli:
