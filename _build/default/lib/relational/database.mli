(** The versioned database: an immutable mapping from relation names to
    relations (paper §2.1).  Every update produces a new version that shares
    all untouched relations with its predecessor — the "selective object
    copying" the concurrency story depends on. *)

type t

val create : ?backend:Relation.backend -> Schema.t list -> t
(** Empty relations, one per schema.
    @raise Invalid_argument on duplicate relation names. *)

val names : t -> string list

val relation : t -> string -> Relation.t option

val schema_of : t -> string -> Schema.t option

val replace : t -> string -> Relation.t -> t
(** New version with one slot replaced; all other slots physically shared.
    @raise Invalid_argument when the name is unknown. *)

val insert : t -> rel:string -> Tuple.t -> (t * bool, string) result
(** [Ok (db', added)]; [Error] on unknown relation or schema mismatch. *)

val delete : t -> rel:string -> key:Value.t -> (t * bool, string) result

val find : t -> rel:string -> key:Value.t -> (Tuple.t option, string) result

val total_tuples : t -> int

val load : t -> rel:string -> Tuple.t list -> (t, string) result
(** Bulk insert. *)

val shares_relation : old:t -> t -> string -> bool
(** Is the named relation physically the same object in both versions? *)

val pp : Format.formatter -> t -> unit
