(** The production traffic driver: run a generated open-loop stream
    ({!Fdb_workload.Openloop}) through an execution mode and report
    latency percentiles and sustained throughput from the
    {!Fdb_obs.Metrics} histogram shards.

    [Sequential] applies the stream one transaction at a time through the
    reference interpreter {!Fdb_txn.Txn.translate} on the chosen relation
    backend, rolling the version chain forward without retention — the
    scalable path, and the only mode with true per-transaction service
    times.  The other modes cut the stream into microbatches and push each
    through the corresponding {!Pipeline} executor ([run_parallel],
    [run_repair], [run_sharded]), timing whole batches; they exist for
    differential smoke and mode comparison at moderate scale, since the
    pipeline modes re-materialize state between batches. *)

type mode =
  | Sequential
  | Parallel of { domains : int option }
  | Repair of { batch : int }  (** speculative repair batch size *)
  | Sharded of { shards : int }

val mode_name : mode -> string

type phase_stats = {
  ph_name : string;
  ph_txns : int;
  ph_p50_ns : float;
  ph_p99_ns : float;
  ph_p999_ns : float;
}

type report = {
  tr_mode : string;
  tr_backend : string;
  tr_initial_tuples : int;
  tr_txns : int;
  tr_load_s : float;  (** bulk-loading the initial image (Sequential) *)
  tr_run_s : float;  (** executing the whole stream *)
  tr_throughput : float;  (** transactions per second of run time *)
  tr_latency_unit : string;
      (** what the percentiles measure: ["txn"] (Sequential) or
          ["microbatch"] (the batched modes) *)
  tr_p50_ns : float;
  tr_p99_ns : float;
  tr_p999_ns : float;
  tr_failed : int;  (** [Failed] responses seen *)
  tr_final_tuples : int;
  tr_final_digest : string;
      (** content digest of the final state — equal streams must produce
          equal digests across backends and modes *)
  tr_phases : phase_stats list;  (** per-phase percentiles, Sequential only *)
}

val drive :
  ?mode:mode ->
  ?microbatch:int ->
  ?backend:Fdb_relational.Relation.backend ->
  ?clock:(unit -> int64) ->
  Fdb_workload.Openloop.t ->
  report
(** Execute the plan.  Defaults: [Sequential], microbatch 512, btree-8
    backend, a [gettimeofday]-derived nanosecond clock (microsecond
    resolution — pass a real monotonic nanosecond clock for
    sub-microsecond service times).
    @raise Invalid_argument when [microbatch < 1] or the plan's initial
    image does not match its schemas. *)
