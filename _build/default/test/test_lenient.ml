(* Tests for lenient lists: correctness of every operation plus the
   pipelining timing properties the paper's concurrency story rests on. *)

open Fdb_kernel
open Fdb_lenient

let run f =
  let eng = Engine.create () in
  let out = f eng in
  let stats = Engine.run eng in
  (out, stats)

let ilist = Alcotest.(list int)

let get_list name l =
  match Llist.to_list_now l with
  | Some xs -> xs
  | None -> Alcotest.failf "%s: list not fully materialized" name

let get name iv =
  match Engine.peek iv with
  | Some v -> v
  | None -> Alcotest.failf "%s: ivar empty after run" name

(* -- construction -------------------------------------------------------- *)

let test_of_list_roundtrip () =
  let (l, _) = run (fun eng -> Llist.of_list eng [ 1; 2; 3; 4 ]) in
  Alcotest.check ilist "roundtrip" [ 1; 2; 3; 4 ] (get_list "of_list" l)

let test_produce () =
  let (l, stats) = run (fun eng -> Llist.produce eng [ 1; 2; 3 ]) in
  Alcotest.check ilist "produced" [ 1; 2; 3 ] (get_list "produce" l);
  (* one task per cell plus the Nil *)
  Alcotest.(check int) "4 tasks" 4 stats.Engine.tasks;
  Alcotest.(check int) "sequential production" 1 stats.Engine.max_ply

let test_prefix_now () =
  let eng = Engine.create () in
  let tail = Llist.empty eng in
  let l = Llist.cons eng 1 (Llist.cons eng 2 tail) in
  Alcotest.check ilist "prefix" [ 1; 2 ] (Llist.prefix_now l);
  Alcotest.(check (option ilist)) "incomplete" None (Llist.to_list_now l)

(* -- scans ---------------------------------------------------------------- *)

let test_find_hit_miss () =
  let ((hit, miss), _) =
    run (fun eng ->
        let l = Llist.of_list eng [ 10; 20; 30 ] in
        (Llist.find eng (fun x -> x = 20) l, Llist.find eng (fun x -> x > 99) l))
  in
  Alcotest.(check (option int)) "hit" (Some 20) (get "hit" hit);
  Alcotest.(check (option int)) "miss" None (get "miss" miss)

let test_find_early_exit () =
  (* Finding the first element of a long list must cost 1 task, not n. *)
  let (_, stats) =
    run (fun eng ->
        let l = Llist.of_list eng (List.init 100 (fun i -> i)) in
        Llist.find eng (fun x -> x = 0) l)
  in
  Alcotest.(check int) "early exit" 1 stats.Engine.tasks

let test_length_fold_count_exists () =
  let ((len, sum, evens, has), _) =
    run (fun eng ->
        let l = Llist.of_list eng [ 1; 2; 3; 4; 5 ] in
        ( Llist.length eng l,
          Llist.fold eng ( + ) 0 l,
          Llist.count eng (fun x -> x mod 2 = 0) l,
          Llist.exists eng (fun x -> x = 4) l ))
  in
  Alcotest.(check int) "length" 5 (get "len" len);
  Alcotest.(check int) "sum" 15 (get "sum" sum);
  Alcotest.(check int) "evens" 2 (get "count" evens);
  Alcotest.(check bool) "exists" true (get "exists" has)

(* -- reconstruction ------------------------------------------------------- *)

let test_insert_ordered_middle () =
  let ((l', ack), _) =
    run (fun eng ->
        let l = Llist.of_list eng [ 1; 3; 5; 7 ] in
        Llist.insert_ordered eng ~cmp:compare 4 l)
  in
  Alcotest.check ilist "inserted" [ 1; 3; 4; 5; 7 ] (get_list "insert" l');
  Alcotest.(check unit) "acked" () (get "ack" ack)

let test_insert_ordered_front_and_back () =
  let ((front, back), _) =
    run (fun eng ->
        let l = Llist.of_list eng [ 2; 4 ] in
        let (f, _) = Llist.insert_ordered eng ~cmp:compare 1 l in
        let (b, _) = Llist.insert_ordered eng ~cmp:compare 9 l in
        (f, b))
  in
  Alcotest.check ilist "front" [ 1; 2; 4 ] (get_list "front" front);
  Alcotest.check ilist "back" [ 2; 4; 9 ] (get_list "back" back)

let test_insert_into_empty () =
  let ((l', _), _) =
    run (fun eng ->
        let l = Llist.nil eng in
        Llist.insert_ordered eng ~cmp:compare 42 l)
  in
  Alcotest.check ilist "singleton" [ 42 ] (get_list "insert-empty" l')

let test_insert_shares_suffix () =
  (* Inserting near the front of a long list costs O(position) tasks:
     the suffix is shared, not copied. *)
  let (_, stats) =
    run (fun eng ->
        let l = Llist.of_list eng (List.init 100 (fun i -> 2 * i)) in
        Llist.insert_ordered eng ~cmp:compare 5 l)
  in
  Alcotest.(check bool)
    (Printf.sprintf "tasks (%d) ~ position, not length" stats.Engine.tasks)
    true
    (stats.Engine.tasks <= 6)

let test_append_elem_copies_spine () =
  let ((l', _), stats) =
    run (fun eng ->
        let l = Llist.of_list eng [ 1; 2; 3 ] in
        Llist.append_elem eng 4 l)
  in
  Alcotest.check ilist "appended" [ 1; 2; 3; 4 ] (get_list "append" l');
  Alcotest.(check int) "n+1 tasks" 4 stats.Engine.tasks

let test_delete_found_and_missing () =
  let ((l1, a1, l2, a2), _) =
    run (fun eng ->
        let l = Llist.of_list eng [ 1; 2; 3 ] in
        let (l1, a1) = Llist.delete_first eng (fun x -> x = 2) l in
        let (l2, a2) = Llist.delete_first eng (fun x -> x = 9) l in
        (l1, a1, l2, a2))
  in
  Alcotest.check ilist "deleted" [ 1; 3 ] (get_list "del" l1);
  Alcotest.(check bool) "found" true (get "ack1" a1);
  Alcotest.check ilist "unchanged" [ 1; 2; 3 ] (get_list "del-miss" l2);
  Alcotest.(check bool) "not found" false (get "ack2" a2)

let test_old_version_intact () =
  (* Persistence: the pre-insert version must be untouched. *)
  let ((old_l, new_l), _) =
    run (fun eng ->
        let l = Llist.of_list eng [ 1; 5; 9 ] in
        let (l', _) = Llist.insert_ordered eng ~cmp:compare 3 l in
        (l, l'))
  in
  Alcotest.check ilist "old version" [ 1; 5; 9 ] (get_list "old" old_l);
  Alcotest.check ilist "new version" [ 1; 3; 5; 9 ] (get_list "new" new_l)

(* -- keyed-set operations --------------------------------------------------- *)

let test_insert_unique () =
  let ((l1, a1, l2, a2), _) =
    run (fun eng ->
        let l = Llist.of_list eng [ 1; 3; 5 ] in
        let (l1, a1) = Llist.insert_unique eng ~cmp:compare 4 l in
        let (l2, a2) = Llist.insert_unique eng ~cmp:compare 3 l in
        (l1, a1, l2, a2))
  in
  Alcotest.check ilist "added" [ 1; 3; 4; 5 ] (get_list "uniq" l1);
  Alcotest.(check bool) "ack true" true (get "a1" a1);
  Alcotest.check ilist "duplicate keeps contents" [ 1; 3; 5 ]
    (get_list "dup" l2);
  Alcotest.(check bool) "ack false" false (get "a2" a2)

let test_delete_ordered_early_stop () =
  let ((l', ack), stats) =
    run (fun eng ->
        let l = Llist.of_list eng (List.init 100 (fun i -> 2 * i)) in
        Llist.delete_ordered eng ~cmp:compare 5 l)
  in
  Alcotest.(check bool) "absent" false (get "ack" ack);
  Alcotest.(check int) "unchanged" 100 (List.length (get_list "del" l'));
  (* gave up at the ordered position (~3 cells), not at the end *)
  Alcotest.(check bool)
    (Printf.sprintf "early stop (%d tasks)" stats.Engine.tasks)
    true
    (stats.Engine.tasks <= 5)

let test_delete_ordered_hit () =
  let ((l', ack), _) =
    run (fun eng ->
        let l = Llist.of_list eng [ 2; 4; 6; 8 ] in
        Llist.delete_ordered eng ~cmp:compare 6 l)
  in
  Alcotest.(check bool) "found" true (get "ack" ack);
  Alcotest.check ilist "removed" [ 2; 4; 8 ] (get_list "del" l')

let test_update_all () =
  let ((l', count), _) =
    run (fun eng ->
        let l = Llist.of_list eng [ 1; 2; 3; 4 ] in
        Llist.update_all eng
          (fun x -> if x mod 2 = 0 then Some (x * 10) else None)
          l)
  in
  Alcotest.check ilist "rewritten" [ 1; 20; 3; 40 ] (get_list "upd" l');
  Alcotest.(check int) "count" 2 (get "count" count)

let test_find_until () =
  let ((hit, stopped), stats) =
    run (fun eng ->
        let l = Llist.of_list eng [ 2; 4; 6; 8; 10 ] in
        ( Llist.find_until eng ~stop:(fun y -> y > 6) (fun y -> y = 6) l,
          Llist.find_until eng ~stop:(fun y -> y > 6) (fun y -> y = 7) l ))
  in
  Alcotest.(check (option int)) "hit" (Some 6) (get "hit" hit);
  Alcotest.(check (option int)) "stopped early" None (get "stop" stopped);
  (* hit scan: 3 cells; stopped scan: 4 cells (stops at 8) *)
  Alcotest.(check int) "bounded work" 7 stats.Engine.tasks

let prop_update_all_matches_map =
  QCheck2.Test.make ~name:"update_all == List.map with count" ~count:200
    QCheck2.Gen.(list_size (int_range 0 30) (int_range 0 20))
    (fun xs ->
      let rewrite x = if x mod 3 = 0 then Some (x + 100) else None in
      let ((l', count), _) =
        run (fun eng -> Llist.update_all eng rewrite (Llist.of_list eng xs))
      in
      let expected =
        List.map (fun x -> match rewrite x with Some y -> y | None -> x) xs
      in
      let expected_count =
        List.length (List.filter (fun x -> rewrite x <> None) xs)
      in
      Llist.to_list_now l' = Some expected
      && Engine.peek count = Some expected_count)

(* -- transformations ------------------------------------------------------ *)

let test_map_filter_append () =
  let ((m, f, a), _) =
    run (fun eng ->
        let l = Llist.of_list eng [ 1; 2; 3; 4 ] in
        let r = Llist.of_list eng [ 9; 8 ] in
        ( Llist.map eng (fun x -> x * 10) l,
          Llist.filter eng (fun x -> x mod 2 = 0) l,
          Llist.append eng l r ))
  in
  Alcotest.check ilist "map" [ 10; 20; 30; 40 ] (get_list "map" m);
  Alcotest.check ilist "filter" [ 2; 4 ] (get_list "filter" f);
  Alcotest.check ilist "append" [ 1; 2; 3; 4; 9; 8 ] (get_list "append" a)

let test_select () =
  let ((lazy_out, strict_out), _) =
    run (fun eng ->
        let l = Llist.of_list eng [ 1; 2; 3; 4; 5; 6 ] in
        Llist.select eng (fun x -> x > 3) l)
  in
  Alcotest.check ilist "lazy side" [ 4; 5; 6 ] (get_list "select" lazy_out);
  Alcotest.check ilist "strict side" [ 4; 5; 6 ] (get "strict" strict_out)

(* -- the paper's pipelining claims, as timing assertions ------------------ *)

(* A find chasing an in-progress insert completes ~1 cell behind it:
   total makespan stays ~n + O(1), not 2n. *)
let test_scan_chases_insert () =
  let n = 60 in
  let (_, stats) =
    run (fun eng ->
        let l = Llist.of_list eng (List.init n (fun i -> 2 * i)) in
        (* insert at the very end: copies all n cells *)
        let (l', _) = Llist.insert_ordered eng ~cmp:compare (2 * n) l in
        (* scan of the new version starts immediately *)
        Llist.find eng (fun x -> x = 2 * n) l')
  in
  Alcotest.(check bool)
    (Printf.sprintf "pipelined makespan %d ~ n" stats.Engine.cycles)
    true
    (stats.Engine.cycles <= n + 6);
  Alcotest.(check bool) "steady-state ply 2" true (stats.Engine.max_ply >= 2)

(* k independent scans of the same list flood: makespan ~ n, ply ~ k. *)
let test_flooding_scans () =
  let n = 40 and k = 8 in
  let (_, stats) =
    run (fun eng ->
        let l = Llist.of_list eng (List.init n (fun i -> i)) in
        for _ = 1 to k do
          ignore (Llist.find eng (fun x -> x = n - 1) l)
        done)
  in
  Alcotest.(check int) "ply = k" k stats.Engine.max_ply;
  Alcotest.(check bool) "makespan ~ n" true (stats.Engine.cycles <= n + 4)

(* Writers to the same list pipeline: w successive inserts at the back of
   an n-list finish in ~n + w cycles, not w * n. *)
let test_pipelined_writers () =
  let n = 40 and w = 6 in
  let (_, stats) =
    run (fun eng ->
        let l = ref (Llist.of_list eng (List.init n (fun i -> i))) in
        for j = 1 to w do
          let (l', _) = Llist.insert_ordered eng ~cmp:compare (n + j) !l in
          l := l'
        done)
  in
  Alcotest.(check bool)
    (Printf.sprintf "write pipeline makespan %d ~ n + w" stats.Engine.cycles)
    true
    (stats.Engine.cycles <= n + (2 * w) + 4)

(* -- lenient 2-3 trees ----------------------------------------------------- *)

let test_ltree_find () =
  let ((hit, miss), _) =
    run (fun eng ->
        let t = Ltree.of_list eng ~cmp:compare [ 5; 1; 9; 3; 7 ] in
        (Ltree.find eng ~cmp:compare 7 t, Ltree.find eng ~cmp:compare 4 t))
  in
  Alcotest.(check (option int)) "hit" (Some 7) (get "hit" hit);
  Alcotest.(check (option int)) "miss" None (get "miss" miss)

let test_ltree_insert () =
  let ((t', ack), _) =
    run (fun eng ->
        let t = Ltree.of_list eng ~cmp:compare [ 2; 4; 6 ] in
        Ltree.insert eng ~cmp:compare 5 t)
  in
  Alcotest.(check bool) "added" true (get "ack" ack);
  Alcotest.(check (option ilist)) "inorder" (Some [ 2; 4; 5; 6 ])
    (Ltree.to_list_now t')

let test_ltree_duplicate_shares () =
  let ((t, t', ack), _) =
    run (fun eng ->
        let t = Ltree.of_list eng ~cmp:compare [ 1; 2; 3 ] in
        let (t', ack) = Ltree.insert eng ~cmp:compare 2 t in
        (t, t', ack))
  in
  Alcotest.(check bool) "rejected" false (get "ack" ack);
  Alcotest.(check (option ilist)) "same contents" (Ltree.to_list_now t)
    (Ltree.to_list_now t')

let test_ltree_fold () =
  let (sum, _) =
    run (fun eng ->
        let t = Ltree.of_list eng ~cmp:compare [ 4; 1; 3; 2 ] in
        Ltree.fold_inorder eng ( + ) 0 t)
  in
  Alcotest.(check int) "sum" 10 (get "sum" sum)

let test_ltree_insert_is_logarithmic () =
  (* Insertion into a 512-element tree costs ~2 * height tasks, far fewer
     than the list's O(position). *)
  let n = 512 in
  let (_, stats) =
    run (fun eng ->
        let t = Ltree.of_list eng ~cmp:compare (List.init n (fun i -> 2 * i)) in
        Ltree.insert eng ~cmp:compare 501 t)
  in
  Alcotest.(check bool)
    (Printf.sprintf "tasks %d <= 2*height+2" stats.Engine.tasks)
    true
    (stats.Engine.tasks <= 22)

let test_ltree_finds_flood () =
  (* Independent searches overlap: k finds take ~depth cycles, not k*depth. *)
  let (_, stats) =
    run (fun eng ->
        let t =
          Ltree.of_list eng ~cmp:compare (List.init 128 (fun i -> i))
        in
        for k = 0 to 9 do
          ignore (Ltree.find eng ~cmp:compare (k * 12) t)
        done)
  in
  Alcotest.(check bool) "flooded" true (stats.Engine.max_ply >= 5);
  Alcotest.(check bool) "short makespan" true (stats.Engine.cycles <= 12)

let prop_ltree_matches_sorted_set =
  QCheck2.Test.make ~name:"ltree inserts == sorted set" ~count:200
    QCheck2.Gen.(list_size (int_range 0 30) (int_range 0 100))
    (fun xs ->
      let ((final, _), _) =
        run (fun eng ->
            List.fold_left
              (fun (t, _) x -> Ltree.insert eng ~cmp:compare x t)
              (Ltree.empty eng, Fdb_kernel.Engine.full eng true)
              xs)
      in
      Ltree.to_list_now final = Some (List.sort_uniq compare xs))

(* -- the engine-level merge (paper 2.4) ------------------------------------- *)

let test_lmerge_materialized_inputs () =
  (* All cells available at once: the arbiter advances each input one
     element per cycle, giving a deterministic round interleaving. *)
  let (m, _) =
    run (fun eng ->
        Lmerge.merge eng
          [ Llist.of_list eng [ 1; 2 ]; Llist.of_list eng [ 10; 20 ] ])
  in
  match Llist.to_list_now m with
  | Some merged ->
      Alcotest.(check int) "all four" 4 (List.length merged);
      let of_tag t =
        List.filter_map (fun (g, x) -> if g = t then Some x else None) merged
      in
      Alcotest.(check ilist) "stream 0 order" [ 1; 2 ] (of_tag 0);
      Alcotest.(check ilist) "stream 1 order" [ 10; 20 ] (of_tag 1)
  | None -> Alcotest.fail "merge incomplete"

let test_lmerge_arrival_order () =
  (* A fast producer and a slow one: arrival order decides. *)
  let (m, _) =
    run (fun eng ->
        let fast = Llist.produce eng [ 1; 2; 3 ] in
        (* the slow stream's head appears only after a 6-task delay chain *)
        let slow_head = Llist.empty eng in
        let rec delay k =
          Engine.spawn eng (fun () ->
              if k = 0 then Engine.put slow_head (Llist.Cons (99, Llist.nil eng))
              else delay (k - 1))
        in
        delay 6;
        Lmerge.merge eng [ fast; slow_head ])
  in
  match Llist.to_list_now m with
  | Some merged ->
      Alcotest.(check (list (pair int int))) "fast elements first"
        [ (0, 1); (0, 2); (0, 3); (1, 99) ]
        merged
  | None -> Alcotest.fail "merge incomplete"

let test_lmerge_empty_and_single () =
  let (a, _) = run (fun eng -> Lmerge.merge eng []) in
  Alcotest.(check bool) "no inputs" true (Llist.to_list_now a = Some []);
  let (b, _) =
    run (fun eng -> Lmerge.merge eng [ Llist.of_list eng [ 7 ]; Llist.nil eng ])
  in
  Alcotest.(check bool) "one empty input" true
    (Llist.to_list_now b = Some [ (0, 7) ])

let test_lmerge_choose_inverts () =
  let ((c0, c1), _) =
    run (fun eng ->
        let m =
          Lmerge.merge eng
            [ Llist.of_list eng [ 1; 2; 3 ]; Llist.of_list eng [ 9 ] ]
        in
        (Lmerge.choose eng ~tag:0 m, Lmerge.choose eng ~tag:1 m))
  in
  Alcotest.check ilist "choose 0" [ 1; 2; 3 ] (get_list "c0" c0);
  Alcotest.check ilist "choose 1" [ 9 ] (get_list "c1" c1)

let prop_lmerge_preserves_stream_order =
  QCheck2.Test.make ~name:"engine merge preserves per-stream order"
    ~count:150
    QCheck2.Gen.(
      list_size (int_range 1 4) (list_size (int_range 0 12) (int_range 0 50)))
    (fun streams ->
      let (m, _) =
        run (fun eng ->
            Lmerge.merge eng (List.map (Llist.of_list eng) streams))
      in
      match Llist.to_list_now m with
      | None -> false
      | Some merged ->
          List.length merged
            = List.fold_left (fun a s -> a + List.length s) 0 streams
          && List.for_all
               (fun tag ->
                 List.filter_map
                   (fun (g, x) -> if g = tag then Some x else None)
                   merged
                 = List.nth streams tag)
               (List.init (List.length streams) (fun i -> i)))

(* -- qcheck properties ---------------------------------------------------- *)

let gen_ints = QCheck2.Gen.(list_size (int_range 0 30) (int_range 0 100))

let prop_insert_ordered_is_sorted_insert =
  QCheck2.Test.make ~name:"insert_ordered == List sorted insert" ~count:200
    QCheck2.Gen.(pair gen_ints (int_range 0 100))
    (fun (xs, x) ->
      let xs = List.sort compare xs in
      let ((l', _), _) =
        run (fun eng ->
            Llist.insert_ordered eng ~cmp:compare x (Llist.of_list eng xs))
      in
      Llist.to_list_now l' = Some (List.sort compare (x :: xs)))

let prop_map_matches_list_map =
  QCheck2.Test.make ~name:"map == List.map" ~count:200 gen_ints (fun xs ->
      let (l, _) =
        run (fun eng -> Llist.map eng (fun v -> v + 1) (Llist.of_list eng xs))
      in
      Llist.to_list_now l = Some (List.map (fun v -> v + 1) xs))

let prop_filter_matches_list_filter =
  QCheck2.Test.make ~name:"filter == List.filter" ~count:200 gen_ints
    (fun xs ->
      let p v = v mod 3 = 0 in
      let (l, _) =
        run (fun eng -> Llist.filter eng p (Llist.of_list eng xs))
      in
      Llist.to_list_now l = Some (List.filter p xs))

let prop_find_matches_list_find =
  QCheck2.Test.make ~name:"find == List.find_opt" ~count:200
    QCheck2.Gen.(pair gen_ints (int_range 0 100))
    (fun (xs, x) ->
      let (r, _) =
        run (fun eng -> Llist.find eng (fun v -> v = x) (Llist.of_list eng xs))
      in
      Engine.peek r = Some (List.find_opt (fun v -> v = x) xs))

let prop_delete_matches_spec =
  QCheck2.Test.make ~name:"delete_first == spec" ~count:200
    QCheck2.Gen.(pair gen_ints (int_range 0 100))
    (fun (xs, x) ->
      let rec spec = function
        | [] -> []
        | y :: rest -> if y = x then rest else y :: spec rest
      in
      let ((l', ack), _) =
        run (fun eng ->
            Llist.delete_first eng (fun v -> v = x) (Llist.of_list eng xs))
      in
      Llist.to_list_now l' = Some (spec xs)
      && Engine.peek ack = Some (List.mem x xs))

let () =
  Alcotest.run "lenient"
    [
      ( "construction",
        [
          Alcotest.test_case "of_list roundtrip" `Quick test_of_list_roundtrip;
          Alcotest.test_case "produce" `Quick test_produce;
          Alcotest.test_case "prefix_now" `Quick test_prefix_now;
        ] );
      ( "scans",
        [
          Alcotest.test_case "find hit/miss" `Quick test_find_hit_miss;
          Alcotest.test_case "find early exit" `Quick test_find_early_exit;
          Alcotest.test_case "length/fold/count/exists" `Quick
            test_length_fold_count_exists;
        ] );
      ( "reconstruction",
        [
          Alcotest.test_case "insert middle" `Quick test_insert_ordered_middle;
          Alcotest.test_case "insert front/back" `Quick
            test_insert_ordered_front_and_back;
          Alcotest.test_case "insert into empty" `Quick test_insert_into_empty;
          Alcotest.test_case "insert shares suffix" `Quick
            test_insert_shares_suffix;
          Alcotest.test_case "append copies spine" `Quick
            test_append_elem_copies_spine;
          Alcotest.test_case "delete" `Quick test_delete_found_and_missing;
          Alcotest.test_case "old version intact" `Quick
            test_old_version_intact;
        ] );
      ( "engine merge",
        [
          Alcotest.test_case "materialized inputs" `Quick
            test_lmerge_materialized_inputs;
          Alcotest.test_case "arrival order" `Quick test_lmerge_arrival_order;
          Alcotest.test_case "empty/single" `Quick
            test_lmerge_empty_and_single;
          Alcotest.test_case "choose inverts" `Quick
            test_lmerge_choose_inverts;
          QCheck_alcotest.to_alcotest prop_lmerge_preserves_stream_order;
        ] );
      ( "keyed-set ops",
        [
          Alcotest.test_case "insert_unique" `Quick test_insert_unique;
          Alcotest.test_case "delete_ordered early stop" `Quick
            test_delete_ordered_early_stop;
          Alcotest.test_case "delete_ordered hit" `Quick
            test_delete_ordered_hit;
          Alcotest.test_case "update_all" `Quick test_update_all;
          Alcotest.test_case "find_until" `Quick test_find_until;
          QCheck_alcotest.to_alcotest prop_update_all_matches_map;
        ] );
      ( "transformations",
        [
          Alcotest.test_case "map/filter/append" `Quick test_map_filter_append;
          Alcotest.test_case "select" `Quick test_select;
        ] );
      ( "pipelining",
        [
          Alcotest.test_case "scan chases insert" `Quick
            test_scan_chases_insert;
          Alcotest.test_case "flooding scans" `Quick test_flooding_scans;
          Alcotest.test_case "pipelined writers" `Quick test_pipelined_writers;
        ] );
      ( "ltree",
        [
          Alcotest.test_case "find" `Quick test_ltree_find;
          Alcotest.test_case "insert" `Quick test_ltree_insert;
          Alcotest.test_case "duplicate shares" `Quick
            test_ltree_duplicate_shares;
          Alcotest.test_case "fold" `Quick test_ltree_fold;
          Alcotest.test_case "logarithmic insert" `Quick
            test_ltree_insert_is_logarithmic;
          Alcotest.test_case "finds flood" `Quick test_ltree_finds_flood;
          QCheck_alcotest.to_alcotest prop_ltree_matches_sorted_set;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_insert_ordered_is_sorted_insert;
          QCheck_alcotest.to_alcotest prop_map_matches_list_map;
          QCheck_alcotest.to_alcotest prop_filter_matches_list_filter;
          QCheck_alcotest.to_alcotest prop_find_matches_list_find;
          QCheck_alcotest.to_alcotest prop_delete_matches_spec;
        ] );
    ]
