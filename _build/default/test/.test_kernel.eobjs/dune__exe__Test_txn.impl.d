test/test_txn.ml: Alcotest Database Fdb_query Fdb_relational Fdb_txn List QCheck2 QCheck_alcotest Schema Tuple Value
