lib/lenient/llist.mli: Engine Fdb_kernel
