lib/fel/lexer.ml: Buffer Format List Printf String
