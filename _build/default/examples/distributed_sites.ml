(* The primary-site model over a physical network (paper §3, Figure 3-1).

   Four sites share an Ethernet-like bus; site 0 is the primary.  Client
   queries travel the medium as tagged messages — the medium itself is the
   merge.  The primary executes the merged stream on a simulated Rediflow
   machine (an 8-node hypercube), and tagged responses are chosen per
   site on the way back.

   Run with:  dune exec examples/distributed_sites.exe *)

open Fdb
open Fdb_relational
module Topology = Fdb_net.Topology
module Machine = Fdb_rediflow.Machine
module Engine = Fdb_kernel.Engine

let schemas =
  [ Schema.make ~name:"Inventory"
      ~cols:[ ("sku", Schema.CInt); ("item", Schema.CStr) ] ]

let spec =
  {
    Pipeline.schemas;
    initial =
      [ ( "Inventory",
          List.init 30 (fun i ->
              Tuple.make
                [ Value.Int (100 + i); Value.Str (Printf.sprintf "part%d" i) ])
        ) ];
  }

let () =
  let q = Fdb_query.Parser.parse_exn in
  (* Transactions execute on an 8-PE hypercube behind the primary. *)
  let cluster =
    Cluster.create ~topology:(Topology.bus 4)
      ~mode:
        (Pipeline.On_machine (Machine.default_config (Topology.hypercube 3)))
      spec
  in
  let outcome =
    Cluster.submit cluster
      [ (1, [ q "insert (500, \"widget\") into Inventory";
              q "find 500 in Inventory" ]);
        (2, [ q "count Inventory";
              q "insert (501, \"gadget\") into Inventory" ]);
        (3, [ q "select * from Inventory where sku >= 500" ]) ]
  in
  Format.printf "-- the medium is the merge: arrival order at the primary --@.";
  List.iter
    (fun (site, query) ->
      Format.printf "  [site %d] %s@." site (Fdb_query.Ast.to_string query))
    outcome.Cluster.merged;
  Format.printf "@.-- responses chosen per site --@.";
  List.iter
    (fun (site, rs) ->
      Format.printf "site %d:@." site;
      List.iter (fun r -> Format.printf "  %a@." Pipeline.pp_response r) rs)
    outcome.Cluster.per_site;
  let s = outcome.Cluster.report.Pipeline.stats in
  Format.printf "@.-- costs --@.";
  Format.printf "transport: %d requests + %d responses over %d bus cycles@."
    outcome.Cluster.request_messages outcome.Cluster.response_messages
    outcome.Cluster.transport_cycles;
  Format.printf "processing: %d tasks in %d cycles on the hypercube" s.Engine.tasks
    s.Engine.cycles;
  (match outcome.Cluster.report.Pipeline.speedup with
  | Some sp -> Format.printf " (speedup %.2f vs one PE)@." sp
  | None -> Format.printf "@.");
  Format.printf "serializable: %b@." (Cluster.serializable outcome cluster)
