lib/workload/workload.mli: Fdb_query Fdb_relational Schema Tuple
