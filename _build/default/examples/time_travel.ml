(* Complete archives (paper §3.3): functional updating makes it cheap to
   keep every database version, and any old version still answers queries
   exactly as it did when it was current.

   Run with:  dune exec examples/time_travel.exe *)

open Fdb_relational
module Txn = Fdb_txn.Txn
module History = Fdb_txn.History

let schemas =
  [ Schema.make ~name:"Balance"
      ~cols:[ ("acct", Schema.CInt); ("note", Schema.CStr) ];
    Schema.make ~name:"Log" ~cols:[ ("id", Schema.CInt); ("entry", Schema.CStr) ] ]

let script =
  [ "insert (1, \"opened\") into Balance";
    "insert (100, \"day one\") into Log";
    "insert (2, \"opened\") into Balance";
    "update Balance set note = \"frozen\" where acct = 1";
    "delete 2 from Balance";
    "insert (101, \"day two\") into Log" ]

let () =
  let queries = List.map Fdb_query.Parser.parse_exn script in
  let (archive, responses) =
    History.of_queries (Database.create schemas) queries
  in
  Format.printf "-- committing %d transactions into the archive --@."
    (List.length script);
  List.iter2
    (fun src r -> Format.printf "  %-55s => %a@." src Txn.pp_response r)
    script responses;
  Format.printf "@.-- the archive holds every version --@.";
  Format.printf "versions: %d (v0 = initial)@." (History.length archive);
  for i = 0 to History.length archive - 1 do
    let count rel =
      match History.query_at archive i (Fdb_query.Parser.parse_exn ("count " ^ rel)) with
      | Txn.Counted n -> n
      | _ -> assert false
    in
    let changed = History.changed_relations archive i in
    Format.printf "  v%d: Balance=%d Log=%d  %s@." i (count "Balance")
      (count "Log")
      (if changed = [] then "(shares everything with its predecessor)"
       else "rebuilt: " ^ String.concat ", " changed)
  done;
  Format.printf "@.-- time-travel queries --@.";
  let probe i src =
    Format.printf "  at v%d, %-28s => %a@." i src Txn.pp_response
      (History.query_at archive i (Fdb_query.Parser.parse_exn src))
  in
  probe 3 "find 1 in Balance";
  probe 4 "find 1 in Balance";
  probe 4 "find 2 in Balance";
  probe 5 "find 2 in Balance";
  Format.printf
    "@.physical sharing across consecutive versions: %.0f%% of relation@.\
     slots shared — archiving every version costs only the touched@.\
     relations (\"complete archives\", paper s3.3).@."
    (100.0 *. History.sharing_ratio archive)
