lib/relational/relation.mli: Fdb_persistent Format Schema Tuple Value
