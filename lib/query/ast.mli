(** Abstract syntax of the symbolic query language (paper §2.1: "an
    incoming query is in symbolic form").

    Concrete syntax examples:
    - [insert (7, "g") into R]
    - [find 7 in R]
    - [delete 7 from R]
    - [select name, age from People where age >= 30 and not (name = "x")]
    - [count R], [count R where age >= 30]
    - [sum age from People where age >= 30], [min age from People]
    - [update People set age = 38 where name = "ada"]
    - [join R and S on b = c] *)

open Fdb_relational

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type pred =
  | True
  | Cmp of string * cmp * Value.t  (** column, operator, literal *)
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

type agg = Sum | Min | Max

type query =
  | Insert of { rel : string; values : Value.t list }
  | Find of { rel : string; key : Value.t }
  | Delete of { rel : string; key : Value.t }
  | Select of { rel : string; cols : string list option; where : pred }
      (** [cols = None] means [*]. *)
  | Count of { rel : string; where : pred }
      (** [count R] / [count R where ...] *)
  | Aggregate of { agg : agg; rel : string; col : string; where : pred }
      (** [sum col from R where ...] / [min ...] / [max ...] *)
  | Update of { rel : string; col : string; value : Value.t; where : pred }
      (** [update R set col = v where ...]; the key column cannot be
          updated. *)
  | Join of { left : string; right : string; on : string * string }

val is_update : query -> bool
(** Does the query produce a new database version? *)

val relations_touched : query -> string list

val pp_cmp : Format.formatter -> cmp -> unit

val pp_pred : Format.formatter -> pred -> unit

val pp : Format.formatter -> query -> unit
(** Prints valid concrete syntax (parses back to the same query). *)

val to_string : query -> string
