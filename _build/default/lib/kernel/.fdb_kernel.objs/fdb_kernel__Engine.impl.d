lib/kernel/engine.ml: Format List Printf Queue Vec
