(** Mini-FEL evaluator: compiles equations to a lenient task graph on the
    {!Fdb_kernel.Engine}.

    Every value is a future (a single-assignment cell).  Constructors
    ([ ], [^]) are lenient: the cell is available immediately, components
    fill in as their producers run.  Every continuation — an application
    step, a conditional decision, an arithmetic operation, a stream-map
    step — costs one engine task, so the concurrency statistics of a FEL
    run are directly comparable with the paper's. *)

open Fdb_kernel

exception Runtime_error of string

type mode =
  | Lenient
      (** the paper's data-driven model: every subexpression evaluates
          immediately, constructors are non-strict — maximal "anticipatory"
          parallelism, but unbounded recursive producers diverge *)
  | Demand
      (** call-by-need: constructor components, arguments and value
          equations are suspended until first use — infinite streams work,
          at the cost of the anticipatory parallelism *)

type value =
  | VInt of int
  | VStr of string
  | VBool of bool
  | VNil
  | VCons of fvalue * fvalue
  | VClosure of env * Ast.pattern * Ast.expr
  | VPrim of string

and fvalue = value Engine.ivar

and env = (string * fvalue) list

val eval : Engine.t -> env -> Ast.expr -> fvalue
(** Launch evaluation (Lenient mode); the result cell fills as the graph
    executes. *)

val eval_m : mode -> Engine.t -> env -> Ast.expr -> fvalue

val base_env : Engine.t -> env
(** Primitives: [first], [rest], [null?], [not], [my-site].  Two site
    pragmas from the paper's §3.2 are supported: [my-site:[]] evaluates to
    the site the task runs on, and [result-on:[expr, site]] computes
    [expr]'s outermost function on the given site (a syntactic form). *)

val prelude_src : string
(** The standard prelude, written in FEL: [length], [append], [take],
    [drop], [reverse], [member], [sum], [nth], [filter], [foldr], [iota].
    Program equations shadow prelude names. *)

val env_with_prelude : ?mode:mode -> Engine.t -> env
(** {!val:base_env} plus the prelude's equations (function definitions cost
    no tasks until applied). *)

val eval_program : ?mode:mode -> Engine.t -> Ast.program -> fvalue
(** Launch a whole program on a caller-supplied engine (e.g. one driven by
    the Rediflow machine scheduler); run the engine afterwards and inspect
    the cell.  In Demand mode a deep printing demand is installed on the
    result, so the run materializes exactly what the result needs. *)

val run_program :
  ?max_cycles:int -> ?mode:mode -> Ast.program ->
  (string * Engine.run_stats, string) result
(** Evaluate a whole program on a fresh ideal engine (default: Lenient);
    the result is rendered with {!val:render} after quiescence. *)

val run_string :
  ?max_cycles:int -> ?mode:mode -> string ->
  (string * Engine.run_stats, string) result
(** Parse then run. *)

val render : fvalue -> string
(** Force-print a value from the cells that are filled; unresolved parts
    print as [_|_]. *)
