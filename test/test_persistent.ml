(* Model-based tests for the persistent structures: every structure is
   checked against a sorted-list reference model under random operation
   sequences, plus structure-specific invariants and the sharing
   measurements the paper's updating story depends on. *)

open Fdb_persistent

module IntList = Plist.Make (Ordered.Int)
module IntAvl = Avl.Make (Ordered.Int)
module Int23 = Two3.Make (Ordered.Int)
module IntBt = Btree.Make (Ordered.Int)

let gen_ops =
  (* A sequence of inserts (positive) and deletes (negative). *)
  QCheck2.Gen.(list_size (int_range 0 120) (int_range (-50) 50))

(* Reference model: a sorted list with set semantics. *)
module Model = struct
  let insert x m = if List.mem x m then m else List.sort compare (x :: m)
  let delete x m = (List.filter (fun y -> y <> x) m, List.mem x m)

  let apply ops =
    List.fold_left
      (fun m op ->
        if op >= 0 then insert op m
        else fst (delete (-op) m))
      [] ops
end

(* -- plist ---------------------------------------------------------------- *)

let test_plist_basics () =
  let l = IntList.of_list [ 3; 1; 2 ] in
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3 ] (IntList.to_list l);
  Alcotest.(check int) "size" 3 (IntList.size l);
  Alcotest.(check bool) "member" true (IntList.member 2 l);
  Alcotest.(check bool) "not member" false (IntList.member 9 l);
  let l' = IntList.insert 0 l in
  Alcotest.(check (list int)) "insert front" [ 0; 1; 2; 3 ]
    (IntList.to_list l');
  let (l'', found) = IntList.delete 2 l' in
  Alcotest.(check bool) "deleted" true found;
  Alcotest.(check (list int)) "after delete" [ 0; 1; 3 ] (IntList.to_list l'')

let test_plist_sharing () =
  (* Insert near the front of a long list: almost everything shared. *)
  let l = IntList.of_list (List.init 100 (fun i -> 2 * i)) in
  let meter = Meter.create () in
  let l' = IntList.insert ~meter 5 l in
  Alcotest.(check int) "4 cells built (0,2,4 copied + new 5)" 4
    (Meter.allocs meter);
  let (shared, total) = IntList.shared_cells ~old:l l' in
  Alcotest.(check int) "total cells" 101 total;
  Alcotest.(check int) "shared cells" 97 shared

let test_plist_find () =
  let l = IntList.of_list [ 1; 4; 9 ] in
  Alcotest.(check (option int)) "found" (Some 4)
    (IntList.find (fun x -> x > 2) l);
  Alcotest.(check (option int)) "absent" None
    (IntList.find (fun x -> x > 100) l)

let prop_plist_model =
  QCheck2.Test.make ~name:"plist == model" ~count:300 gen_ops (fun ops ->
      let l =
        List.fold_left
          (fun l op ->
            if op >= 0 then
              if IntList.member op l then l else IntList.insert op l
            else fst (IntList.delete (-op) l))
          IntList.empty ops
      in
      IntList.invariant l && IntList.to_list l = Model.apply ops)

(* -- generic model harness for the tree structures ------------------------ *)

let tree_model_test name fold_ops =
  QCheck2.Test.make ~name ~count:300 gen_ops (fun ops ->
      let (to_list, invariant) = fold_ops ops in
      invariant && to_list = Model.apply ops)

let prop_avl_model =
  tree_model_test "avl == model" (fun ops ->
      let t =
        List.fold_left
          (fun t op ->
            if op >= 0 then IntAvl.insert op t
            else fst (IntAvl.delete (-op) t))
          IntAvl.empty ops
      in
      (IntAvl.to_list t, IntAvl.invariant t))

let prop_two3_model =
  tree_model_test "two3 == model" (fun ops ->
      let t =
        List.fold_left
          (fun t op ->
            if op >= 0 then Int23.insert op t
            else fst (Int23.delete (-op) t))
          Int23.empty ops
      in
      (Int23.to_list t, Int23.invariant t))

let prop_btree_model branching =
  tree_model_test
    (Printf.sprintf "btree(b=%d) == model" branching)
    (fun ops ->
      let t =
        List.fold_left
          (fun t op ->
            if op >= 0 then IntBt.insert op t
            else fst (IntBt.delete (-op) t))
          (IntBt.create ~branching ())
          ops
      in
      (IntBt.to_list t, IntBt.invariant t))

(* -- avl specifics --------------------------------------------------------- *)

let test_avl_logarithmic_height () =
  let t = IntAvl.of_list (List.init 1000 (fun i -> i)) in
  Alcotest.(check bool)
    (Printf.sprintf "height %d <= 1.44 log2 1000 + 2" (IntAvl.height t))
    true
    (IntAvl.height t <= 16);
  Alcotest.(check int) "size" 1000 (IntAvl.size t);
  Alcotest.(check bool) "invariant" true (IntAvl.invariant t)

let test_avl_duplicate_insert_shares_everything () =
  let t = IntAvl.of_list [ 5; 2; 8; 1 ] in
  let meter = Meter.create () in
  let t' = IntAvl.insert ~meter 5 t in
  Alcotest.(check bool) "physically unchanged" true (t == t');
  Alcotest.(check int) "no allocation" 0 (Meter.allocs meter)

let test_avl_find_by_key () =
  let module KV = Avl.Make (struct
    type t = int * string

    let compare (a, _) (b, _) = compare a b
  end) in
  let t = KV.of_list [ (1, "one"); (2, "two") ] in
  Alcotest.(check (option (pair int string)))
    "find retrieves stored value" (Some (2, "two"))
    (KV.find (2, "") t)

(* -- two3 specifics -------------------------------------------------------- *)

let test_two3_insert_sharing_is_logarithmic () =
  let n = 1024 in
  let t = Int23.of_list (List.init n (fun i -> 2 * i)) in
  let meter = Meter.create () in
  let t' = Int23.insert ~meter 333 t in
  let allocated = Meter.allocs meter in
  Alcotest.(check bool)
    (Printf.sprintf "allocated %d nodes <= 2 * height + 1" allocated)
    true
    (allocated <= (2 * Int23.height t) + 1);
  let (shared, total) = Int23.shared_nodes ~old:t t' in
  let fraction = float_of_int (total - shared) /. float_of_int total in
  Alcotest.(check bool)
    (Printf.sprintf "rebuilt fraction %.4f ~ (log n)/n" fraction)
    true
    (fraction < 0.05)

let test_two3_uniform_depth_after_deletes () =
  let t = Int23.of_list (List.init 200 (fun i -> i)) in
  let t =
    List.fold_left
      (fun t x -> fst (Int23.delete x t))
      t
      (List.init 100 (fun i -> 2 * i))
  in
  Alcotest.(check bool) "invariant after 100 deletes" true (Int23.invariant t);
  Alcotest.(check int) "100 left" 100 (Int23.size t)

let test_two3_delete_absent_shares () =
  let t = Int23.of_list [ 1; 2; 3 ] in
  let (t', found) = Int23.delete 9 t in
  Alcotest.(check bool) "not found" false found;
  Alcotest.(check bool) "physically unchanged" true (t == t')

(* -- btree specifics -------------------------------------------------------- *)

let test_btree_occupancy () =
  let t = IntBt.of_list ~branching:4 (List.init 500 (fun i -> i)) in
  Alcotest.(check bool) "invariant" true (IntBt.invariant t);
  Alcotest.(check int) "size" 500 (IntBt.size t);
  Alcotest.(check bool)
    (Printf.sprintf "height %d is logarithmic" (IntBt.height t))
    true
    (IntBt.height t <= 10)

let test_btree_range () =
  let t = IntBt.of_list ~branching:5 (List.init 100 (fun i -> i)) in
  Alcotest.(check (list int)) "range" [ 40; 41; 42; 43; 44; 45 ]
    (IntBt.range ~lo:40 ~hi:45 t);
  Alcotest.(check (list int)) "empty range" [] (IntBt.range ~lo:200 ~hi:300 t)

let test_btree_page_sharing_figure_2_2 () =
  (* The Figure 2-2 scenario: one insert rebuilds only the root-to-leaf
     path ("new directory"), sharing every other page with the old
     version. *)
  let t = IntBt.of_list ~branching:8 (List.init 1000 (fun i -> 2 * i)) in
  let t' = IntBt.insert 501 t in
  let (shared, total) = IntBt.shared_pages ~old:t t' in
  let rebuilt = total - shared in
  Alcotest.(check bool)
    (Printf.sprintf "rebuilt %d pages = height %d" rebuilt (IntBt.height t'))
    true
    (rebuilt <= IntBt.height t');
  Alcotest.(check bool) "most pages shared" true
    (float_of_int shared /. float_of_int total > 0.9)

let test_btree_duplicate_insert_shares_everything () =
  let t = IntBt.of_list ~branching:4 [ 1; 5; 9; 13; 20; 30 ] in
  let t' = IntBt.insert 9 t in
  let (shared, total) = IntBt.shared_pages ~old:t t' in
  Alcotest.(check int) "all pages shared" total shared

let test_btree_bad_branching () =
  Alcotest.check_raises "branching < 3"
    (Invalid_argument "Btree.create: branching < 3") (fun () ->
      ignore (IntBt.create ~branching:2 ()))

(* -- cross-structure agreement -------------------------------------------- *)

let prop_structures_agree =
  QCheck2.Test.make ~name:"all structures agree on random workloads"
    ~count:150 gen_ops (fun ops ->
      let model = Model.apply ops in
      let fold_insert insert delete empty =
        List.fold_left
          (fun t op -> if op >= 0 then insert op t else delete (-op) t)
          empty ops
      in
      let avl =
        fold_insert IntAvl.insert (fun x t -> fst (IntAvl.delete x t))
          IntAvl.empty
      in
      let t23 =
        fold_insert Int23.insert (fun x t -> fst (Int23.delete x t))
          Int23.empty
      in
      let bt =
        fold_insert IntBt.insert
          (fun x t -> fst (IntBt.delete x t))
          (IntBt.create ~branching:4 ())
      in
      IntAvl.to_list avl = model
      && Int23.to_list t23 = model
      && IntBt.to_list bt = model)

(* Sharing fraction shrinks as n grows — the (log n)/n claim of §3.3. *)
let test_sharing_fraction_shrinks_with_n () =
  let fraction n =
    let t = Int23.of_list (List.init n (fun i -> 2 * i)) in
    let t' = Int23.insert (n + 1) t in
    let (shared, total) = Int23.shared_nodes ~old:t t' in
    float_of_int (total - shared) /. float_of_int total
  in
  let f100 = fraction 100 and f1000 = fraction 1000 and f10000 = fraction 10000 in
  Alcotest.(check bool)
    (Printf.sprintf "monotone: %.4f > %.4f > %.4f" f100 f1000 f10000)
    true
    (f100 > f1000 && f1000 > f10000)

(* -- seeded stepwise invariants (two3) ------------------------------------ *)

(* 150 seeded insert/delete sequences, checking ordering and balance after
   EVERY operation — the model property above only checks the end state,
   which can miss a transiently broken rebalance. *)
let test_two3_stepwise_invariants () =
  for case = 0 to 149 do
    let rng = Random.State.make [| case; 0x23 |] in
    let len = 20 + Random.State.int rng 41 in
    let t = ref Int23.empty and m = ref [] in
    for step = 1 to len do
      let x = Random.State.int rng 60 in
      if Random.State.int rng 3 < 2 then begin
        t := Int23.insert x !t;
        m := Model.insert x !m
      end
      else begin
        t := fst (Int23.delete x !t);
        m := fst (Model.delete x !m)
      end;
      if not (Int23.invariant !t) then
        Alcotest.failf "case %d step %d: balance/ordering invariant broken"
          case step;
      if Int23.to_list !t <> !m then
        Alcotest.failf "case %d step %d: contents diverged from model" case
          step
    done
  done

(* -- seeded sharing-ratio bounds ------------------------------------------ *)

(* 120 seeded single updates at random sizes: the rebuilt fraction of a
   2-3 tree stays within a constant factor of (log2 n)/n — the §3.3 claim
   that makes complete archives affordable. *)
let test_two3_sharing_log_bound () =
  for case = 0 to 119 do
    let rng = Random.State.make [| case; 0x5a |] in
    let n = 64 + Random.State.int rng 961 in
    let t = Int23.of_list (List.init n (fun i -> 2 * i)) in
    let t' =
      if case land 1 = 0 then Int23.insert ((2 * Random.State.int rng n) + 1) t
      else fst (Int23.delete (2 * Random.State.int rng n) t)
    in
    let (shared, total) = Int23.shared_nodes ~old:t t' in
    let rebuilt = float_of_int (total - shared) /. float_of_int total in
    let bound = 8.0 *. (log (float_of_int n) /. log 2.0) /. float_of_int n in
    if rebuilt > bound then
      Alcotest.failf
        "case %d (n=%d): rebuilt fraction %.4f exceeds 8(log2 n)/n = %.4f"
        case n rebuilt bound
  done

(* 120 seeded single updates on the list representation: prefix-copy
   accounting is exact — an op at position p copies exactly the p-cell
   prefix and shares the whole suffix. *)
let test_plist_prefix_copy_accounting () =
  for case = 0 to 119 do
    let rng = Random.State.make [| case; 0x7115 |] in
    let n = 10 + Random.State.int rng 191 in
    let l = IntList.of_list (List.init n (fun i -> 2 * i)) in
    let meter = Meter.create () in
    if case land 1 = 0 then begin
      (* insert 2p+1: the p+1 elements below it are copied, plus one new *)
      let p = Random.State.int rng n in
      let l' = IntList.insert ~meter ((2 * p) + 1) l in
      let (shared, total) = IntList.shared_cells ~old:l l' in
      if Meter.allocs meter <> p + 2 then
        Alcotest.failf "case %d (n=%d p=%d): insert allocated %d, expected %d"
          case n p (Meter.allocs meter) (p + 2);
      if total <> n + 1 || shared <> n - (p + 1) then
        Alcotest.failf
          "case %d (n=%d p=%d): insert shared %d/%d, expected %d/%d" case n p
          shared total
          (n - (p + 1))
          (n + 1)
    end
    else begin
      (* delete the element at index j: the j-cell prefix is copied *)
      let j = Random.State.int rng n in
      let (l', found) = IntList.delete ~meter (2 * j) l in
      if not found then Alcotest.failf "case %d: delete missed" case;
      let (shared, total) = IntList.shared_cells ~old:l l' in
      if Meter.allocs meter <> j then
        Alcotest.failf "case %d (n=%d j=%d): delete allocated %d, expected %d"
          case n j (Meter.allocs meter) j;
      if total <> n - 1 || shared <> n - 1 - j then
        Alcotest.failf
          "case %d (n=%d j=%d): delete shared %d/%d, expected %d/%d" case n j
          shared total (n - 1 - j) (n - 1)
    end
  done

let () =
  Alcotest.run "persistent"
    [
      ( "plist",
        [
          Alcotest.test_case "basics" `Quick test_plist_basics;
          Alcotest.test_case "sharing" `Quick test_plist_sharing;
          Alcotest.test_case "find" `Quick test_plist_find;
          Alcotest.test_case "120 seeded prefix-copy accounting" `Quick
            test_plist_prefix_copy_accounting;
          QCheck_alcotest.to_alcotest prop_plist_model;
        ] );
      ( "avl",
        [
          Alcotest.test_case "logarithmic height" `Quick
            test_avl_logarithmic_height;
          Alcotest.test_case "duplicate insert shares" `Quick
            test_avl_duplicate_insert_shares_everything;
          Alcotest.test_case "find by key" `Quick test_avl_find_by_key;
          QCheck_alcotest.to_alcotest prop_avl_model;
        ] );
      ( "two3",
        [
          Alcotest.test_case "log sharing" `Quick
            test_two3_insert_sharing_is_logarithmic;
          Alcotest.test_case "uniform depth after deletes" `Quick
            test_two3_uniform_depth_after_deletes;
          Alcotest.test_case "delete absent shares" `Quick
            test_two3_delete_absent_shares;
          Alcotest.test_case "150 seeded stepwise invariants" `Quick
            test_two3_stepwise_invariants;
          Alcotest.test_case "120 seeded sharing bounds" `Quick
            test_two3_sharing_log_bound;
          QCheck_alcotest.to_alcotest prop_two3_model;
        ] );
      ( "btree",
        [
          Alcotest.test_case "occupancy" `Quick test_btree_occupancy;
          Alcotest.test_case "range" `Quick test_btree_range;
          Alcotest.test_case "figure 2-2 page sharing" `Quick
            test_btree_page_sharing_figure_2_2;
          Alcotest.test_case "duplicate insert shares" `Quick
            test_btree_duplicate_insert_shares_everything;
          Alcotest.test_case "bad branching" `Quick test_btree_bad_branching;
          QCheck_alcotest.to_alcotest (prop_btree_model 3);
          QCheck_alcotest.to_alcotest (prop_btree_model 4);
          QCheck_alcotest.to_alcotest (prop_btree_model 7);
        ] );
      ( "cross-structure",
        [
          QCheck_alcotest.to_alcotest prop_structures_agree;
          Alcotest.test_case "(log n)/n shrinks" `Quick
            test_sharing_fraction_shrinks_with_n;
        ] );
    ]
