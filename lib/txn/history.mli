(** Complete archives of database versions (paper §3.3: "there is reason to
    believe that some applications will permit 'complete archives' to be
    constructed").

    Because every transaction produces a new version that shares almost all
    structure with its predecessor, retaining {e every} version is cheap —
    and gives time travel for free: any historical version answers
    read-only queries exactly as it did when it was current. *)

open Fdb_relational

type t

exception Empty_history
(** An archive with no versions is unrepresentable through {!val:create}
    and {!val:commit}; raised instead of an anonymous assertion failure if
    one is ever constructed (e.g. {!val:of_versions}[ []]), so the
    invariant violation is diagnosable at the API boundary. *)

val create : Database.t -> t
(** An archive whose version 0 is the initial database. *)

val of_versions : Database.t list -> t
(** An archive from an explicit newest-first version list.
    @raise Empty_history on the empty list. *)

val commit : t -> Txn.t -> t * Txn.response
(** Apply a transaction to the newest version and archive the result. *)

val commit_query : t -> Fdb_query.Ast.query -> t * Txn.response

val append : t -> Database.t -> t
(** Adopt an externally built version as the new newest one — the recovery
    path: a backup reconstructing the archive from a decoded checkpoint
    plus replayed log records appends versions it did not compute through
    {!val:commit}. *)

val of_queries : Database.t -> Fdb_query.Ast.query list -> t * Txn.response list

val length : t -> int
(** Number of versions, including version 0. *)

val version : t -> int -> Database.t
(** O(1) after the first access on a given archive value (an oldest-first
    array snapshot is built lazily and reused; committing yields a new
    archive with a fresh cache).
    @raise Invalid_argument when out of range. *)

val to_array : t -> Database.t array
(** All versions, oldest first ([to_array t].(i) = [version t i]).  The
    returned array is the accessor cache: treat it as read-only. *)

val latest : t -> Database.t

val query_at : t -> int -> Fdb_query.Ast.query -> Txn.response
(** Run a query against a historical version (read-only: the archive is
    not extended, and an update query's new version is discarded). *)

val changed_relations : t -> int -> string list
(** Relations physically replaced by version [i] (relative to [i - 1]);
    empty for version 0 or read-only transactions. *)

val sharing_ratio : t -> float
(** Across consecutive versions, the fraction of relation slots physically
    shared — the archive-cheapness measurement (1.0 = everything shared). *)
