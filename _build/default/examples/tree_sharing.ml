(* Figure 2-2, hands on: functional updating of a paged B-tree relation.

   One insert produces a "new directory" — the pages on the root-to-leaf
   path — while every other page is shared with the old version.  This is
   the partial physical reconstruction that gives full logical
   reconstruction (paper §2.2, §3.3: only ~(log n)/n of a relation is
   rebuilt).

   Run with:  dune exec examples/tree_sharing.exe *)

open Fdb_relational
module Meter = Fdb_persistent.Meter

let schema =
  Schema.make ~name:"Ledger"
    ~cols:[ ("serial", Schema.CInt); ("entry", Schema.CStr) ]

let show_backend backend n =
  let tuples =
    List.init n (fun i ->
        Tuple.make [ Value.Int (2 * i); Value.Str (Printf.sprintf "e%d" i) ])
  in
  let rel =
    match Relation.of_tuples ~backend schema tuples with
    | Ok r -> r
    | Error e -> failwith e
  in
  let meter = Meter.create () in
  let rel' =
    match
      Relation.insert ~meter rel
        (Tuple.make [ Value.Int 501; Value.Str "inserted" ])
    with
    | Ok (r, true) -> r
    | Ok (_, false) -> failwith "duplicate?"
    | Error e -> failwith e
  in
  let (shared, total) = Relation.shared_units ~old:rel rel' in
  Format.printf
    "%-10s n=%-6d  rebuilt %3d units, shared %6d of %6d (%.2f%% rebuilt)@."
    (Relation.backend_name backend)
    n (Meter.allocs meter) shared total
    (100.0 *. float_of_int (total - shared) /. float_of_int total);
  (* the old version answers queries exactly as before *)
  assert (Relation.size rel = n);
  assert (Relation.size rel' = n + 1);
  assert (Relation.find_key rel (Value.Int 501) = None)

let () =
  Format.printf "-- one insert into a relation of n tuples --@.@.";
  List.iter
    (fun n ->
      List.iter
        (fun backend -> show_backend backend n)
        [ Relation.List_backend; Relation.Avl_backend; Relation.Two3_backend;
          Relation.Btree_backend 8 ];
      Format.printf "@.")
    [ 100; 1000; 10000 ];
  Format.printf
    "The linked list (the paper's experimental representation) rebuilds\n\
     O(position) cells; every tree representation rebuilds only the\n\
     O(log n) path to the touched leaf — the 'new directory' of Figure\n\
     2-2 — and shares everything else.  Old versions remain fully\n\
     queryable: updating never destroys.@."
