(** The lenient transaction pipeline — the paper's system.

    A merged, tagged query stream is processed "sequentially" by a chain of
    dispatch tasks (one per transaction, the unfolding of [apply-stream]);
    each dispatch immediately constructs the next database version as a
    tuple of relation slots, sharing every untouched slot, and launches the
    transaction's cell-level work.  All synchronization is implicit in the
    single-assignment cells: scans chase inserts one cell behind
    (pipelining), independent scans flood, and nothing ever locks.

    Execution can be measured on the ideal machine (ply widths — Table I)
    or on a Rediflow machine over a concrete topology (speedup — Tables II
    and III).

    Two insert semantics are provided:
    - {!constructor:Prepend} — the 1985 experiment's linked-list multiset
      semantics: insert is a 1-task cons at the head, find scans the whole
      relation collecting matches;
    - {!constructor:Ordered_unique} — keyed-set semantics over sorted
      lists, matching the production interpreter [Fdb_txn.Txn]: inserts
      copy up to the splice point and reject duplicates, probes stop at the
      ordered position.

    Either way, {!val:reference} gives the pure sequential meaning of the
    same stream and {!val:check_serializable} verifies the lenient run
    against it — the paper's serializability claim, as an executable
    property. *)

open Fdb_kernel
open Fdb_relational
open Fdb_rediflow

type semantics = Prepend | Ordered_unique

type mode = Ideal | On_machine of Machine.config

type response =
  | Inserted of bool
  | Found of Tuple.t list  (** every tuple with the probed key *)
  | Deleted of int  (** number of tuples removed *)
  | Selected of Tuple.t list
  | Counted of int
  | Aggregated of Value.t option  (** sum/min/max; [None] when empty *)
  | Updated of int  (** rows rewritten *)
  | Joined of Tuple.t list
  | Failed of string

val response_equal : response -> response -> bool

val pp_response : Format.formatter -> response -> unit

type db_spec = {
  schemas : Schema.t list;
  initial : (string * Tuple.t list) list;
}

val db_spec_of_workload : Fdb_workload.Workload.t -> db_spec

val initial_database : db_spec -> Database.t
(** The durable image of the initial state: relations as keyed sets, the
    first tuple kept per duplicate key — exactly the state every
    ordered-unique executor starts from.  Pass this to
    {!Fdb_wal.Wal.create} to open a durability sink ([?wal] below) whose
    genesis checkpoint matches the run.
    @raise Invalid_argument when the spec's initial tuples do not match
    their schema. *)

type report = {
  responses : (int * response) list;  (** (tag, response), merged order *)
  stats : Engine.run_stats;
  machine : Machine.machine_stats option;
  speedup : float option;  (** tasks / makespan, machine mode only *)
  final_db : (string * Tuple.t list) list;
      (** contents of the last database version, per relation *)
}

val responses_for : tag:int -> report -> response list
(** Route a client's substream of responses (choose on the tagged response
    stream). *)

val run :
  ?semantics:semantics ->
  ?mode:mode ->
  ?trace:bool ->
  ?primary:int ->
  ?wal:Fdb_wal.Wal.writer ->
  db_spec ->
  (int * Fdb_query.Ast.query) list ->
  report
(** Execute the merged stream.  Defaults: [Prepend], [Ideal], no trace,
    primary site 0.  In machine mode the initial relation cells are dealt
    round-robin across the PEs and dispatch runs on the primary site.

    [wal] attaches a durability sink: after the engine quiesces, every
    version the dispatch chain produced (in dispatch order, skipping
    versions whose contents did not actually change) is appended to the
    durable log and the log is synced, so a crash after [run] returns
    loses nothing.  The writer should be opened on
    {!val:initial_database}[ spec] so the genesis checkpoint matches.
    @raise Failure if the run leaves a response unresolved (an engine bug —
    surfaced loudly rather than silently).
    @raise Invalid_argument if [wal] is combined with [Prepend] semantics
    (the durable log stores relations as keyed sets). *)

val run_streams :
  ?semantics:semantics ->
  ?mode:mode ->
  ?trace:bool ->
  ?primary:int ->
  ?wal:Fdb_wal.Wal.writer ->
  db_spec ->
  Fdb_query.Ast.query list list ->
  report * (int * Fdb_query.Ast.query) list
(** The whole architecture as one task graph: each client stream is a
    lenient producer (one query per cycle), the engine-level merge arbiter
    ({!Fdb_lenient.Lmerge}) interleaves them by arrival, and the dispatch
    chain chases the merged stream as it materializes.  Returns the report
    and the merged order the arbiter actually produced (for checking
    against {!val:reference}).  [wal] behaves as in {!val:run}. *)

val reference :
  ?semantics:semantics ->
  db_spec ->
  (int * Fdb_query.Ast.query) list ->
  (int * response) list
(** The sequential meaning of the merged stream: what processing it
    one-transaction-at-a-time would answer. *)

val check_serializable :
  ?semantics:semantics ->
  ?mode:mode ->
  db_spec ->
  (int * Fdb_query.Ast.query) list ->
  (bool, string) result
(** Run both and compare responses position by position; [Error] carries
    the first mismatch, pretty-printed. *)

(** {1 The parallel executor}

    Real multicore execution on OCaml 5 domains ({!Fdb_par.Pool}), as
    opposed to the {e simulated} parallelism the engine measures.  Writes
    run inline on the dispatching thread (they are cheap version
    constructions); every read floods its relation scan across the pool
    as chunked map-reduce tasks whose results meet in domain-safe
    single-assignment cells ({!Fdb_lenient.Lcell}).

    Reads snapshot the relation's immutable tuple list at dispatch time,
    so transaction [i+1] proceeds while transaction [i]'s scans are still
    in flight — the paper's pipelining, now across real cores.  Task
    completion order is nondeterministic, but each response is assembled
    from single-assignment chunk slots in chunk order, so the response
    stream is deterministic and must equal {!val:run} and
    {!val:reference} on the same inputs (the differential tests assert
    exactly this). *)

type par_report = {
  par_responses : (int * response) list;  (** (tag, response), stream order *)
  par_final_db : (string * Tuple.t list) list;
  par_tasks : int;  (** pool tasks executed (chunks + aggregates) *)
  par_steals : int;  (** tasks run by a domain other than their home *)
  par_domains : int;
}

val run_parallel :
  ?semantics:semantics ->
  ?domains:int ->
  ?chunk:int ->
  ?pool:Fdb_par.Pool.t ->
  ?wal:Fdb_wal.Wal.writer ->
  ?index:Fdb_index.Index.Session.t ->
  db_spec ->
  (int * Fdb_query.Ast.query) list ->
  par_report
(** Execute the merged stream on a domain pool.  [domains] defaults to
    the pool default ({!Fdb_par.Pool.create}); [chunk] (default 512) is
    the scan flood granularity in tuples.  Passing [pool] reuses an
    existing pool (and leaves it running); otherwise a fresh pool is
    created and shut down around the run — in that case [par_tasks] and
    [par_steals] count this run alone.  [wal] attaches a durability sink
    as in {!val:run}: writes are logged inline on the dispatch thread (so
    the log order is the stream order) and synced before the pool drains.
    [index] attaches an index session: writes maintain its indexes inline
    on the dispatch thread in stream order (emitting the lockstep
    [Index_maintain] events), and aggregates whose predicate matches a
    derived index group are answered inline in O(log n) from the
    maintained statistics instead of being folded as an opaque pool task.
    @raise Invalid_argument when [chunk < 1], or if [wal] or [index] is
    combined with [Prepend] semantics. *)

type repair_report = {
  rep_responses : (int * response) list;  (** (tag, response), stream order *)
  rep_final_db : (string * Tuple.t list) list;
  rep_batches : int;
  rep_versions : int;
      (** versions archived across all batch histories, including v0 *)
  rep_stats : Fdb_repair.Exec.stats;  (** summed over batches *)
}

val run_repair :
  ?domains:int ->
  ?batch:int ->
  ?pool:Fdb_par.Pool.t ->
  ?wal:Fdb_wal.Wal.writer ->
  ?index:Fdb_index.Index.Session.t ->
  db_spec ->
  (int * Fdb_query.Ast.query) list ->
  repair_report
(** The third execution mode: speculative parallel batches with
    incremental repair ({!Fdb_repair.Exec}).  The stream is cut into
    batches of [batch] (default 16) queries; each batch runs all its
    transactions in parallel against the batch-entry version and repairs
    footprint conflicts to the serial fixpoint, so responses and final
    state equal {!val:reference}[ ~semantics:Ordered_unique] (this mode
    is inherently ordered-unique: relations are keyed sets).  Pool reuse
    follows {!val:run_parallel}.  [wal] attaches a durability sink: each
    batch's repaired version chain is appended after the batch reaches
    its fixpoint, and the log is synced at the end of the run.  [index]
    attaches an index session, threaded through every batch as in
    {!Fdb_repair.Exec.run_batch}: speculative reads go through the
    indexes, commits advance them at the serial commit point.
    @raise Invalid_argument when [batch < 1]. *)

type shard_report = {
  sh_responses : (int * response) list;  (** (tag, response), stream order *)
  sh_final_db : (string * Tuple.t list) list;
      (** the shard slices reassembled *)
  sh_shards : int;
  sh_versions : int;
      (** durable global versions, including v0 (the initial database) *)
  sh_stats : Fdb_shard.Shard.stats;
}

val run_sharded :
  ?shards:int ->
  ?wal:Fdb_wal.Wal.writer ->
  db_spec ->
  (int * Fdb_query.Ast.query) list ->
  shard_report
(** The fourth execution mode: multi-site serialization with a
    commutativity-aware bypass ({!Fdb_shard.Shard}).  The already-merged
    stream (tags are client ids — the level-1 router order) is executed
    over [shards] (default 2) relation slices, each with its own merge
    point and version archive; cross-shard transactions whose footprints
    commute with the open epoch bypass the global spine, the rest are
    serialized through it.  Responses and final state equal
    {!val:reference}[ ~semantics:Ordered_unique] over the same order
    (this mode is inherently ordered-unique: relations are keyed sets).
    [wal] attaches a durability sink fed the reassembled global version
    chain, synced at the end of the run.
    @raise Invalid_argument when [shards < 1]. *)
