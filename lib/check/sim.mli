(** Fault-injecting end-to-end simulation.

    The oracle's client-side contract — per-stream order in, per-stream
    order out — has to survive a real transport.  This driver runs a
    generated scenario through the network stack: clients sit on the leaves
    of a star topology (client 0 shares the hub with the primary,
    exercising the src = dst local hand-off), queries travel to the primary
    over {!Fdb_net.Reliable} (itself over {!Fdb_net.Fabric}), and three
    seeded fault kinds are injected:

    - {b drop}: the lossy medium loses one in [drop_one_in] arrivals
      (data and acks alike); Reliable retransmits.
    - {b duplicate}: one in [dup_one_in] queries is sent twice with the
      same (client, seq); the primary must deduplicate.
    - {b reorder}: one in [delay_one_in] queries is held back up to
      [max_delay] scheduler ticks before being handed to the transport, so
      a client's later query can arrive first; the primary reassembles by
      per-client sequence number before committing anything.

    The primary applies queries under the sequential reference semantics
    in reassembled arrival order — a nondeterministic (but seeded) merge of
    the client streams — and the resulting observation must pass the
    {!Oracle}. *)

type faults = {
  drop_one_in : int;  (** 0 disables; must not be 1 *)
  dup_one_in : int;  (** 0 disables *)
  delay_one_in : int;  (** 0 disables *)
  max_delay : int;  (** max ticks a delayed query is held *)
}

val no_faults : faults

val default_faults : faults
(** drop 1/5, duplicate 1/6, delay 1/4 up to 3 ticks. *)

type outcome = {
  verdict : Oracle.verdict;
  applied : int;  (** queries committed at the primary *)
  dup_suppressed : int;  (** application-level duplicates discarded *)
  delayed : int;  (** queries that took the reorder path *)
  net : Fdb_net.Reliable.stats;
}

val run : ?faults:faults -> seed:int -> Gen.scenario -> outcome
(** Deterministic in (faults, seed, scenario).
    @raise Invalid_argument on a bad fault spec.
    @raise Failure if the network fails to quiesce or loses a query (a
    transport bug — surfaced loudly). *)
