(** Lenient 2-3 trees: the engine-level tree representation the paper
    projects for relations ("tree representations are projected to be even
    more efficient, since fewer nodes need to be modified on insertion",
    §4; implicit synchronization in functional tree-updating, §2.3).

    Every node lives in a single-assignment cell.  A search costs one task
    per level; an insertion descends (one task per level) and rebuilds the
    path bottom-up (one task per level), sharing every untouched subtree
    with the old version.  Unlike lists, the new version's {e root} only
    materializes after the rebuild returns — readers of the new version
    synchronize on it implicitly, which is exactly the paper's
    "functional approach to tree-updating induces implicit
    synchronization". *)

open Fdb_kernel

type 'a node =
  | Leaf
  | N2 of 'a t * 'a * 'a t
  | N3 of 'a t * 'a * 'a t * 'a * 'a t

and 'a t = 'a node Engine.ivar

val empty : Engine.t -> 'a t

val of_list : Engine.t -> cmp:('a -> 'a -> int) -> 'a list -> 'a t
(** Build (strictly, at setup time) from a list; duplicates keep the first
    occurrence. *)

val find : Engine.t -> ?label:string -> cmp:('a -> 'a -> int) -> 'a -> 'a t ->
  'a option Engine.ivar
(** One task per level. *)

val insert :
  Engine.t -> ?label:string -> cmp:('a -> 'a -> int) -> 'a -> 'a t ->
  'a t * bool Engine.ivar
(** Path-copying insertion with 2-3 rebalancing; the acknowledgement is
    [false] when an equal element was present (the old version is then
    shared wholesale). *)

val fold_inorder :
  Engine.t -> ?label:string -> ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b Engine.ivar
(** Sequential in-order traversal, one task per node. *)

val to_list_now : 'a t -> 'a list option
(** Post-run extraction; [None] if any cell is still empty. *)

val size_now : 'a t -> int
(** Elements in the materialized part. *)
