(* Quickstart: a single-user functional database.

   Shows the production (sequential, set-semantic) interpreter: parse
   symbolic queries, translate them into transactions — functions from
   database versions to (response, new version) — and observe that
   versions share structure.

   Run with:  dune exec examples/quickstart.exe *)

open Fdb_relational
module Txn = Fdb_txn.Txn

let schemas =
  [ Schema.make ~name:"People"
      ~cols:[ ("id", Schema.CInt); ("name", Schema.CStr); ("age", Schema.CInt) ];
    Schema.make ~name:"Cities"
      ~cols:[ ("id", Schema.CInt); ("city", Schema.CStr) ] ]

let script =
  {|
    insert (1, "ada", 36) into People
    insert (2, "alan", 41) into People
    insert (3, "grace", 37) into People
    insert (1, "london") into Cities
    insert (3, "new york") into Cities
    -- schema violation: rejected with an error response
    insert (2, "paris", 0) into Cities
    -- duplicate key: rejected, database version unchanged
    insert (1, "imposter", 99) into People
    find 2 in People
    select name, age from People where age >= 37
    count People
    delete 2 from People
    find 2 in People
    join People and Cities on id = id
  |}

let () =
  let queries =
    match Fdb_query.Parser.parse_script script with
    | Ok qs -> qs
    | Error e -> failwith e
  in
  let db0 = Database.create schemas in
  let txns = List.map Txn.translate queries in
  let (responses, versions) = Txn.apply_stream txns db0 in
  Format.printf "-- a stream of transactions over a stream of versions --@.";
  List.iteri
    (fun i (query, response) ->
      Format.printf "%2d. %-52s => %a@." i (Fdb_query.Ast.to_string query)
        Txn.pp_response response)
    (List.combine queries responses);
  (* The version stream is real: earlier versions are still live and
     unchanged — time travel for free. *)
  let v_after_inserts = List.nth versions 3 in
  let final = List.nth versions (List.length versions - 1) in
  Format.printf "@.-- versions are persistent --@.";
  Format.printf "tuples after the first four inserts : %d@."
    (Database.total_tuples v_after_inserts);
  Format.printf "tuples in the final version         : %d@."
    (Database.total_tuples final);
  Format.printf "Cities shared between those versions: %b@."
    (Database.shares_relation ~old:v_after_inserts final "Cities")
