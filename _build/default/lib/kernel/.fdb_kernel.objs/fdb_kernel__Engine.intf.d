lib/kernel/engine.mli: Format
