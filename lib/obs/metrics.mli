(** Named counters and histograms, safe to use from any domain.

    A process-global registry replacing the per-module ad-hoc counters.
    Instruments register once at module initialisation (the only point that
    pays a hashtable lookup, under the registry lock); the hot path is an
    atomic increment (counters) or a plain mutation of the calling domain's
    private histogram shard — cheap enough to leave permanently on, and
    race-free under parallel execution.  {!val:snapshot} merges the
    per-domain shards; for exact figures take it while no other domain is
    observing (e.g. after {!Fdb_par.Pool.wait}), or use {!val:scoped}.

    Histograms use power-of-two buckets: bucket [i] holds observations [v]
    with [2^(i-1) <= v < 2^i] (bucket 0 holds [v <= 0]); values past the
    last bucket clamp into it. *)

type counter
type histogram

val counter : string -> counter
(** Find-or-create; the same name always yields the same counter. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val histogram : string -> histogram
val observe : histogram -> int -> unit

val n_buckets : int
(** Number of histogram buckets (32). *)

val bucket_of : int -> int
(** The bucket index an observation lands in: [0] for [v <= 0], else the
    [i] with [2^(i-1) <= v < 2^i], clamped to [n_buckets - 1]. *)

type histo_stats = {
  count : int;
  sum : int;
  min : int;  (** 0 when [count = 0] *)
  max : int;
  buckets : (int * int) list;  (** (inclusive upper bound, count), non-empty buckets only *)
}

val percentile : histo_stats -> float -> float
(** [percentile stats q] ([q] in [[0, 1]], clamped) estimates the
    q-quantile of the observations from the power-of-two buckets by linear
    interpolation within the bucket the rank falls in, clamped to the
    exact observed min/max — the p50/p99/p999 reader for latency
    histograms.  [0.0] when empty.  Resolution is the bucket width, i.e.
    within a factor of two. *)

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  histograms : (string * histo_stats) list;  (** sorted by name *)
}

val snapshot : unit -> snapshot
(** Every instrument with activity (non-zero counters, non-empty
    histograms).  Merely-registered instruments are omitted, so a
    snapshot depends only on what was recorded, never on module
    initialisation order. *)

val reset : unit -> unit
(** Zero every registered instrument (registration survives). *)

val scoped : (unit -> 'a) -> 'a * snapshot
(** [scoped f] runs [f] against a zeroed registry and returns its result
    together with a snapshot of only what [f] recorded, then restores the
    surrounding totals (by adding the saved values back), so enclosing
    accumulation — e.g. [fdbsim stats] over a whole run — is unaffected.
    A scope that raises is erased — its partial recordings are discarded
    before the surrounding totals are restored and the exception
    re-raised.  Not reentrant, and assumes no {e other} domain records
    metrics concurrently with the save/restore edges. *)

val pp_snapshot : Format.formatter -> snapshot -> unit
