open Fdb_relational
module History = Fdb_txn.History

let magic = "FDBSNAP1"

(* -- writer ----------------------------------------------------------------- *)

let w_int b n =
  Buffer.add_string b (string_of_int n);
  Buffer.add_char b ';'

let w_str b s =
  w_int b (String.length s);
  Buffer.add_string b s

let w_value b = function
  | Value.Int n ->
      Buffer.add_char b 'I';
      w_int b n
  | Value.Str s ->
      Buffer.add_char b 'S';
      w_str b s
  | Value.Bool v ->
      Buffer.add_char b 'B';
      w_int b (if v then 1 else 0)
  | Value.Real r ->
      Buffer.add_char b 'R';
      (* %h round-trips every finite float exactly *)
      w_str b (Printf.sprintf "%h" r)

let w_tuple b tup =
  w_int b (Tuple.arity tup);
  Array.iter (w_value b) tup

let w_backend b = function
  | Relation.List_backend -> Buffer.add_char b 'L'
  | Relation.Avl_backend -> Buffer.add_char b 'A'
  | Relation.Two3_backend -> Buffer.add_char b 'T'
  | Relation.Btree_backend k ->
      Buffer.add_char b 'B';
      w_int b k

let w_schema b schema =
  w_str b (Schema.name schema);
  let cols = Schema.columns schema in
  w_int b (List.length cols);
  List.iter
    (fun (name, ctype) ->
      w_str b name;
      Buffer.add_char b
        (match ctype with
        | Schema.CInt -> 'i'
        | Schema.CStr -> 's'
        | Schema.CBool -> 'b'
        | Schema.CReal -> 'r'))
    cols

let w_relation_body b rel =
  let tuples = Relation.to_list rel in
  w_int b (List.length tuples);
  List.iter (w_tuple b) tuples

let relation_exn db name =
  match Database.relation db name with
  | Some r -> r
  | None -> invalid_arg "Snapshot: relation vanished mid-archive"

let encode_with ~changed_only history =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  let n = History.length history in
  let v0 = History.version history 0 in
  let names = Database.names v0 in
  w_int b n;
  w_int b (List.length names);
  List.iter
    (fun name ->
      let rel = relation_exn v0 name in
      w_schema b (Relation.schema rel);
      w_backend b (Relation.backend rel))
    names;
  (* version 0: everything *)
  List.iter (fun name -> w_relation_body b (relation_exn v0 name)) names;
  (* later versions: indices of replaced slots, then their bodies *)
  for i = 1 to n - 1 do
    let before = History.version history (i - 1) in
    let after = History.version history i in
    let changed =
      List.filteri
        (fun _ name ->
          (not changed_only)
          || not (Database.shares_relation ~old:before after name))
        names
    in
    w_int b (List.length changed);
    List.iter
      (fun name ->
        (match List.find_index (String.equal name) names with
        | Some idx -> w_int b idx
        | None -> invalid_arg "Snapshot: relation vanished mid-archive");
        w_relation_body b (relation_exn after name))
      changed
  done;
  Buffer.contents b

let encode history = encode_with ~changed_only:true history

let encode_naive history = encode_with ~changed_only:false history

(* -- reader ----------------------------------------------------------------- *)

type reader = { src : string; mutable pos : int }

let corrupt what = failwith ("Snapshot.decode: corrupt snapshot (" ^ what ^ ")")

let r_char r =
  if r.pos >= String.length r.src then corrupt "truncated";
  let c = r.src.[r.pos] in
  r.pos <- r.pos + 1;
  c

let r_int r =
  let start = r.pos in
  while r.pos < String.length r.src && r.src.[r.pos] <> ';' do
    r.pos <- r.pos + 1
  done;
  if r.pos >= String.length r.src then corrupt "unterminated int";
  let s = String.sub r.src start (r.pos - start) in
  r.pos <- r.pos + 1;
  match int_of_string_opt s with Some n -> n | None -> corrupt "bad int"

let r_str r =
  let len = r_int r in
  if len < 0 || r.pos + len > String.length r.src then corrupt "bad string";
  let s = String.sub r.src r.pos len in
  r.pos <- r.pos + len;
  s

let r_value r =
  match r_char r with
  | 'I' -> Value.Int (r_int r)
  | 'S' -> Value.Str (r_str r)
  | 'B' -> Value.Bool (r_int r <> 0)
  | 'R' -> (
      match float_of_string_opt (r_str r) with
      | Some f -> Value.Real f
      | None -> corrupt "bad float")
  | _ -> corrupt "bad value tag"

let r_tuple r =
  let arity = r_int r in
  if arity < 0 then corrupt "bad arity";
  Tuple.make (List.init arity (fun _ -> r_value r))

let r_backend r =
  match r_char r with
  | 'L' -> Relation.List_backend
  | 'A' -> Relation.Avl_backend
  | 'T' -> Relation.Two3_backend
  | 'B' -> Relation.Btree_backend (r_int r)
  | _ -> corrupt "bad backend tag"

let r_schema r =
  let name = r_str r in
  let ncols = r_int r in
  if ncols < 0 then corrupt "bad column count";
  let cols =
    List.init ncols (fun _ ->
        let cname = r_str r in
        let ctype =
          match r_char r with
          | 'i' -> Schema.CInt
          | 's' -> Schema.CStr
          | 'b' -> Schema.CBool
          | 'r' -> Schema.CReal
          | _ -> corrupt "bad column type"
        in
        (cname, ctype))
  in
  try Schema.make ~name ~cols with Invalid_argument m -> corrupt m

let r_relation_body r ~backend schema =
  let count = r_int r in
  if count < 0 then corrupt "bad tuple count";
  let tuples = List.init count (fun _ -> r_tuple r) in
  match Relation.of_tuples ~backend schema tuples with
  | Ok rel -> rel
  | Error m -> corrupt m

let decode src =
  let r = { src; pos = 0 } in
  if
    String.length src < String.length magic
    || String.sub src 0 (String.length magic) <> magic
  then corrupt "bad magic";
  r.pos <- String.length magic;
  let nversions = r_int r in
  if nversions < 1 then corrupt "empty archive";
  let nrelations = r_int r in
  if nrelations < 0 then corrupt "bad relation count";
  let headers =
    Array.init nrelations (fun _ ->
        let schema = r_schema r in
        let backend = r_backend r in
        (schema, backend))
  in
  let schemas = Array.to_list (Array.map fst headers) in
  let v0 =
    Array.fold_left
      (fun db (schema, backend) ->
        Database.replace db (Schema.name schema)
          (r_relation_body r ~backend schema))
      (Database.create schemas) headers
  in
  let history = ref (History.create v0) in
  let current = ref v0 in
  for _ = 1 to nversions - 1 do
    let nchanged = r_int r in
    if nchanged < 0 || nchanged > nrelations then corrupt "bad change count";
    let db = ref !current in
    for _ = 1 to nchanged do
      let idx = r_int r in
      if idx < 0 || idx >= nrelations then corrupt "bad relation index";
      let (schema, backend) = headers.(idx) in
      db :=
        Database.replace !db (Schema.name schema)
          (r_relation_body r ~backend schema)
    done;
    current := !db;
    history := History.append !history !db
  done;
  if r.pos <> String.length src then corrupt "trailing bytes";
  !history
