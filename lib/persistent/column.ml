module type Row = sig
  type t

  type field

  val fields : t -> field array

  val of_fields : field array -> t

  val compare_field : field -> field -> int
end

module Make (Row : Row) = struct
  (* A chunk is [width] packed column arrays of [len] rows each; row [i]
     of chunk [c] is [c.cols.(0).(i), ..., c.cols.(width-1).(i)].  Rows
     are sorted by field 0 within a chunk, chunks are disjoint and sorted
     in the spine, keys globally unique. *)
  type chunk = { len : int; cols : Row.field array array }

  type t = { cap : int; size : int; chunks : chunk array }

  let default_chunk = 256

  let cap_arg = function
    | None -> default_chunk
    | Some c ->
        if c < 2 then invalid_arg "Column.create: chunk capacity < 2" else c

  let create ?chunk () = { cap = cap_arg chunk; size = 0; chunks = [||] }

  let chunk_capacity t = t.cap

  let chunk_count t = Array.length t.chunks

  let size t = t.size

  let width c = Array.length c.cols

  let key_at c i = c.cols.(0).(i)

  let row_of c i = Row.of_fields (Array.init (width c) (fun j -> c.cols.(j).(i)))

  let key_of x = (Row.fields x).(0)

  (* Smallest chunk index whose last key is >= [k]; [Array.length chunks]
     when every chunk is below [k]. *)
  let locate_chunk t k =
    let lo = ref 0 and hi = ref (Array.length t.chunks) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      let c = t.chunks.(mid) in
      if Row.compare_field (key_at c (c.len - 1)) k < 0 then lo := mid + 1
      else hi := mid
    done;
    !lo

  (* Smallest row index in [c] with key >= [k]; [c.len] when none. *)
  let lower_bound c k =
    let lo = ref 0 and hi = ref c.len in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Row.compare_field (key_at c mid) k < 0 then lo := mid + 1
      else hi := mid
    done;
    !lo

  let find_slot t k =
    let ci = locate_chunk t k in
    if ci >= Array.length t.chunks then None
    else
      let c = t.chunks.(ci) in
      let i = lower_bound c k in
      if i < c.len && Row.compare_field (key_at c i) k = 0 then Some (ci, i)
      else None

  let member x t = find_slot t (key_of x) <> None

  let find x t =
    match find_slot t (key_of x) with
    | Some (ci, i) -> Some (row_of t.chunks.(ci) i)
    | None -> None

  let fold ?meter f acc t =
    Array.fold_left
      (fun acc c ->
        Meter.alloc meter 1;
        let acc = ref acc in
        for i = 0 to c.len - 1 do
          acc := f !acc (row_of c i)
        done;
        !acc)
      acc t.chunks

  let iter f t = fold (fun () row -> f row) () t

  let to_list t = List.rev (fold (fun acc row -> row :: acc) [] t)

  let range_fold ?meter ~ge_lo ~le_hi f acc t =
    let n = Array.length t.chunks in
    let rec chunks ci acc =
      if ci >= n then acc
      else
        let c = t.chunks.(ci) in
        if not (ge_lo (row_of c (c.len - 1))) then
          (* whole chunk below the range: prune, unmetered *)
          chunks (ci + 1) acc
        else if not (le_hi (row_of c 0)) then
          (* first row already past the range: everything later is too *)
          acc
        else begin
          Meter.alloc meter 1;
          let rec rows i acc =
            if i >= c.len then chunks (ci + 1) acc
            else
              let row = row_of c i in
              if not (ge_lo row) then rows (i + 1) acc
              else if not (le_hi row) then acc
              else rows (i + 1) (f acc row)
          in
          rows 0 acc
        end
    in
    chunks 0 acc

  (* Spine with chunk [ci] replaced by the (possibly empty, possibly
     split) [replacement] run. *)
  let splice chunks ci replacement =
    let n = Array.length chunks in
    Array.concat
      [ Array.sub chunks 0 ci; replacement; Array.sub chunks (ci + 1) (n - ci - 1) ]

  let sub_chunk c lo n = { len = n; cols = Array.map (fun col -> Array.sub col lo n) c.cols }

  let check_row_width c x fs =
    if Array.length fs <> width c then
      invalid_arg "Column: row width differs from the chunk's"
    else ignore x

  (* [c] with row [i] replaced by [x] (same key, checked by callers). *)
  let replace_row c i x =
    let fs = Row.fields x in
    check_row_width c x fs;
    {
      len = c.len;
      cols =
        Array.mapi
          (fun j col ->
            let col' = Array.copy col in
            col'.(i) <- fs.(j);
            col')
          c.cols;
    }

  (* [c] with [x] inserted before row [pos]. *)
  let insert_row c pos x =
    let fs = Row.fields x in
    check_row_width c x fs;
    {
      len = c.len + 1;
      cols =
        Array.mapi
          (fun j col ->
            let col' = Array.make (c.len + 1) fs.(j) in
            Array.blit col 0 col' 0 pos;
            Array.blit col pos col' (pos + 1) (c.len - pos);
            col')
          c.cols;
    }

  let remove_row c i =
    {
      len = c.len - 1;
      cols =
        Array.map
          (fun col ->
            let col' = Array.make (c.len - 1) col.(0) in
            Array.blit col 0 col' 0 i;
            Array.blit col (i + 1) col' i (c.len - 1 - i);
            col')
          c.cols;
    }

  let singleton_chunk x =
    let fs = Row.fields x in
    { len = 1; cols = Array.map (fun f -> [| f |]) fs }

  let insert ?meter x t =
    let n = Array.length t.chunks in
    if n = 0 then begin
      Meter.alloc meter 1;
      { t with size = 1; chunks = [| singleton_chunk x |] }
    end
    else
      let k = key_of x in
      let ci = min (locate_chunk t k) (n - 1) in
      let c = t.chunks.(ci) in
      let i = lower_bound c k in
      if i < c.len && Row.compare_field (key_at c i) k = 0 then begin
        (* set semantics: replace in place *)
        Meter.alloc meter 1;
        { t with chunks = splice t.chunks ci [| replace_row c i x |] }
      end
      else
        let c' = insert_row c i x in
        let replacement =
          if c'.len <= t.cap then begin
            Meter.alloc meter 1;
            [| c' |]
          end
          else begin
            Meter.alloc meter 2;
            let half = c'.len / 2 in
            [| sub_chunk c' 0 half; sub_chunk c' half (c'.len - half) |]
          end
        in
        { t with size = t.size + 1; chunks = splice t.chunks ci replacement }

  let delete ?meter x t =
    match find_slot t (key_of x) with
    | None -> (t, false)
    | Some (ci, i) ->
        let c = t.chunks.(ci) in
        let replacement =
          if c.len = 1 then [||]
          else begin
            Meter.alloc meter 1;
            [| remove_row c i |]
          end
        in
        ({ t with size = t.size - 1; chunks = splice t.chunks ci replacement }, true)

  let rewrite ?meter ~ge_lo ~le_hi f t =
    let total = ref 0 in
    let past_hi = ref false in
    let chunks =
      Array.map
        (fun c ->
          if !past_hi || not (ge_lo (row_of c (c.len - 1))) then c
          else if not (le_hi (row_of c 0)) then begin
            past_hi := true;
            c
          end
          else begin
            (* in range: collect replacements, rebuild only if any *)
            let changed = ref [] in
            (try
               for i = 0 to c.len - 1 do
                 let row = row_of c i in
                 if ge_lo row then
                   if le_hi row then (
                     match f row with
                     | None -> ()
                     | Some row' ->
                         let fs = Row.fields row' in
                         check_row_width c row' fs;
                         if Row.compare_field fs.(0) (key_at c i) <> 0 then
                           invalid_arg "Column.rewrite: replacement changed the key";
                         changed := (i, fs) :: !changed)
                   else begin
                     past_hi := true;
                     raise Exit
                   end
               done
             with Exit -> ());
            match !changed with
            | [] -> c
            | replacements ->
                Meter.alloc meter 1;
                total := !total + List.length replacements;
                let cols = Array.map Array.copy c.cols in
                List.iter
                  (fun (i, fs) ->
                    Array.iteri (fun j col -> col.(i) <- fs.(j)) cols)
                  replacements;
                { len = c.len; cols }
          end)
        t.chunks
    in
    if !total = 0 then (t, 0) else ({ t with chunks }, !total)

  let of_list ?chunk rows =
    let cap = cap_arg chunk in
    let sorted =
      List.stable_sort
        (fun a b -> Row.compare_field (key_of a) (key_of b))
        rows
    in
    (* first occurrence of each duplicate key wins, as sequential insert
       against [member] would keep it *)
    let deduped =
      List.rev
        (List.fold_left
           (fun acc row ->
             match acc with
             | prev :: _ when Row.compare_field (key_of prev) (key_of row) = 0
               ->
                 acc
             | _ -> row :: acc)
           [] sorted)
    in
    let all = Array.of_list deduped in
    let n = Array.length all in
    if n = 0 then create ~chunk:cap ()
    else
      let w = Array.length (Row.fields all.(0)) in
      Array.iter
        (fun row ->
          if Array.length (Row.fields row) <> w then
            invalid_arg "Column.of_list: rows of differing widths")
        all;
      let nchunks = (n + cap - 1) / cap in
      let chunks =
        Array.init nchunks (fun ci ->
            let lo = ci * cap in
            let len = min cap (n - lo) in
            {
              len;
              cols =
                Array.init w (fun j ->
                    Array.init len (fun i -> (Row.fields all.(lo + i)).(j)));
            })
      in
      { cap; size = n; chunks }

  let shared_chunks ~old t =
    (* both spines are sorted by first key with globally unique keys, so a
       merge walk aligns candidate chunks in O(n + m) *)
    let oc = old.chunks and nc = t.chunks in
    let shared = ref 0 in
    let i = ref 0 and j = ref 0 in
    while !i < Array.length oc && !j < Array.length nc do
      let a = oc.(!i) and b = nc.(!j) in
      if a == b then begin
        incr shared;
        incr i;
        incr j
      end
      else
        let cmp = Row.compare_field (key_at a 0) (key_at b 0) in
        if cmp < 0 then incr i
        else if cmp > 0 then incr j
        else begin
          incr i;
          incr j
        end
    done;
    (!shared, Array.length nc)

  let chunks_cols t = Array.map (fun c -> c.cols) t.chunks

  let invariant t =
    let ok = ref true in
    let total = ref 0 in
    let w = ref (-1) in
    let prev_key = ref None in
    Array.iter
      (fun c ->
        if c.len < 1 || c.len > t.cap then ok := false;
        if !w = -1 then w := width c else if width c <> !w then ok := false;
        Array.iter (fun col -> if Array.length col <> c.len then ok := false) c.cols;
        for i = 0 to c.len - 1 do
          (match !prev_key with
          | Some k when Row.compare_field k (key_at c i) >= 0 -> ok := false
          | _ -> ());
          prev_key := Some (key_at c i)
        done;
        total := !total + c.len)
      t.chunks;
    !ok && !total = t.size
end
