(* The speculative repair executor (lib/repair): footprint tracking over
   the transaction reference semantics, conflict analysis with the
   commutativity bypass, the fixpoint repair loop, and the flagship
   differential property — the repair executor's responses and final
   state are identical to the ideal sequential engine's and accepted by
   the serializability oracle, across batch sizes, key skews, conflict
   ratios and domain counts. *)

open Fdb
open Fdb_relational
module Pool = Fdb_par.Pool
module Footprint = Fdb_repair.Footprint
module Exec = Fdb_repair.Exec
module Txn = Fdb_txn.Txn
module Ast = Fdb_query.Ast
module Sim = Fdb_check.Sim
module Cgen = Fdb_check.Gen
module Oracle = Fdb_check.Oracle
module Trace_oracle = Fdb_check.Trace_oracle
module Event = Fdb_obs.Event
module Trace = Fdb_obs.Trace

let tup k s = Tuple.make [ Value.Int k; Value.Str s ]

let schemas =
  [ Schema.make ~name:"R" ~cols:[ ("key", Schema.CInt); ("val", Schema.CStr) ];
    Schema.make ~name:"S" ~cols:[ ("key", Schema.CInt); ("val", Schema.CStr) ] ]

let q = Fdb_query.Parser.parse_exn

let random_db rand =
  let load db name n =
    List.fold_left
      (fun db t ->
        match Database.insert db ~rel:name t with
        | Ok (db, _) -> db
        | Error _ -> db)
      db
      (List.init n (fun i ->
           tup (Random.State.int rand 16) (Printf.sprintf "%s%d" name i)))
  in
  let db = Database.create schemas in
  let db = load db "R" (3 + Random.State.int rand 20) in
  load db "S" (Random.State.int rand 12)

(* Same query shapes as the parallel-executor suite (including unknown
   relation Z and ill-typed aggregates), so error responses are
   differentially checked too. *)
let random_query rand i =
  let rel () = [| "R"; "S"; "Z" |].(Random.State.int rand 3) in
  let key () = Random.State.int rand 16 in
  q
    (match Random.State.int rand 10 with
    | 0 -> Printf.sprintf "insert (%d, \"v%d\") into %s" (key ()) i (rel ())
    | 1 -> Printf.sprintf "find %d in %s" (key ()) (rel ())
    | 2 -> Printf.sprintf "delete %d from %s" (key ()) (rel ())
    | 3 -> Printf.sprintf "select * from %s where key >= %d" (rel ()) (key ())
    | 4 -> Printf.sprintf "count %s" (rel ())
    | 5 -> Printf.sprintf "sum key from %s where key <= %d" (rel ()) (key ())
    | 6 -> Printf.sprintf "min key from %s" (rel ())
    | 7 ->
        Printf.sprintf "update %s set val = \"u%d\" where key = %d" (rel ()) i
          (key ())
    | 8 -> Printf.sprintf "max val from %s" (rel ())
    | _ -> "join R and S on key = key")

let random_queries rand n = List.init n (random_query rand)

(* -- footprint spans ------------------------------------------------------- *)

let test_key_in_span () =
  let open Footprint in
  let i n = Value.Int n in
  Alcotest.(check bool) "key in Keys" true (key_in_span (i 3) (Keys [ i 1; i 3 ]));
  Alcotest.(check bool) "key not in Keys" false (key_in_span (i 2) (Keys [ i 1 ]));
  Alcotest.(check bool) "All catches everything" true (key_in_span (i 9) All);
  let range lo hi = Range (lo, hi) in
  Alcotest.(check bool) "inside inclusive range" true
    (key_in_span (i 5) (range (Some (Relation.Inclusive (i 5))) None));
  Alcotest.(check bool) "outside exclusive lo" false
    (key_in_span (i 5) (range (Some (Relation.Exclusive (i 5))) None));
  Alcotest.(check bool) "inside open-ended" true
    (key_in_span (i (-100)) (range None (Some (Relation.Inclusive (i 0)))));
  Alcotest.(check bool) "above hi" false
    (key_in_span (i 1) (range None (Some (Relation.Exclusive (i 1)))))

let footprint_of db query =
  let c = Footprint.collector () in
  let (resp, db') = Txn.translate_tracked (Footprint.tracker c) query db in
  (resp, db', Footprint.captured c)

let test_overlap_verdicts () =
  let db =
    match Database.load (Database.create schemas) ~rel:"R" [ tup 1 "a"; tup 5 "b" ] with
    | Ok db -> db
    | Error e -> Alcotest.fail e
  in
  let (_, _, w_ins) = footprint_of db (q "insert (9, \"w\") into R") in
  let (_, _, r_point) = footprint_of db (q "find 1 in R") in
  let (_, _, r_scan) = footprint_of db (q "select * from R where key >= 4") in
  let (_, _, r_other) = footprint_of db (q "count S") in
  Alcotest.(check bool) "writer vs unrelated relation" true
    (Footprint.overlap ~writer:w_ins ~reader:r_other = Footprint.No_overlap);
  Alcotest.(check bool) "write 9 vs point read 1 is key-disjoint" true
    (Footprint.overlap ~writer:w_ins ~reader:r_point = Footprint.Key_disjoint);
  Alcotest.(check bool) "write 9 vs scan key >= 4 overlaps" true
    (Footprint.overlap ~writer:w_ins ~reader:r_scan = Footprint.Overlapping);
  (* read-only transactions never damage anyone *)
  Alcotest.(check bool) "reader has no writes" true
    (Footprint.overlap ~writer:r_scan ~reader:r_scan = Footprint.No_overlap)

(* -- QCheck: tracking is observational ------------------------------------- *)

let seed_gen = QCheck2.Gen.int_range 0 100_000

let prop_tracked_equals_untracked =
  QCheck2.Test.make ~name:"tracked transaction == untracked transaction"
    ~count:300 seed_gen (fun seed ->
      let rand = Random.State.make [| seed; 0x7a1 |] in
      let db = random_db rand in
      let query = random_query rand seed in
      let (resp, db') = Txn.translate query db in
      let (resp_t, db_t, _) = footprint_of db query in
      Txn.response_equal resp resp_t && Oracle.db_equal db' db_t)

(* Write-completeness: every key whose tuple changed between input and
   output versions appears in the recorded write footprint (and in the
   effect record) of its relation. *)
let prop_write_completeness =
  QCheck2.Test.make ~name:"changed keys are all in the write footprint"
    ~count:300 seed_gen (fun seed ->
      let rand = Random.State.make [| seed; 0x7a2 |] in
      let db = random_db rand in
      let query = random_query rand seed in
      let (_, db', fp) = footprint_of db query in
      List.for_all
        (fun rel ->
          List.for_all
            (fun k ->
              let key = Value.Int k in
              let before = Result.value ~default:None (Database.find db ~rel ~key) in
              let after = Result.value ~default:None (Database.find db' ~rel ~key) in
              Option.equal Tuple.equal before after
              ||
              let written =
                match List.assoc_opt rel fp.Footprint.writes with
                | Some ks -> List.exists (Value.equal key) ks
                | None -> false
              in
              let in_effects =
                match List.assoc_opt rel fp.Footprint.effects with
                | Some (removed, added) ->
                    List.exists (fun t -> Value.equal (Tuple.key t) key) removed
                    || List.exists (fun t -> Value.equal (Tuple.key t) key) added
                | None -> false
              in
              written && in_effects)
            (List.init 18 Fun.id))
        [ "R"; "S" ])

(* Read-soundness, operationally: perturbing any key outside the recorded
   read spans (and write set) cannot change the transaction's response. *)
let prop_read_soundness =
  QCheck2.Test.make ~name:"keys outside the read footprint don't matter"
    ~count:300 seed_gen (fun seed ->
      let rand = Random.State.make [| seed; 0x7a3 |] in
      let db = random_db rand in
      let query = random_query rand seed in
      let (resp, _, fp) = footprint_of db query in
      let unread rel k =
        let key = Value.Int k in
        let spans =
          match List.assoc_opt rel fp.Footprint.reads with
          | Some s -> s
          | None -> []
        in
        (not (List.exists (Footprint.key_in_span key) spans))
        &&
        match List.assoc_opt rel fp.Footprint.writes with
        | Some ks -> not (List.exists (Value.equal key) ks)
        | None -> true
      in
      let perturb db rel k =
        let key = Value.Int k in
        match Database.find db ~rel ~key with
        | Ok (Some _) -> (
            match Database.delete db ~rel ~key with
            | Ok (db, _) -> db
            | Error _ -> db)
        | Ok None -> (
            match Database.insert db ~rel (tup k "perturbed") with
            | Ok (db, _) -> db
            | Error _ -> db)
        | Error _ -> db
      in
      List.for_all
        (fun rel ->
          List.for_all
            (fun k ->
              (not (unread rel k))
              ||
              let (resp', _) = Txn.translate query (perturb db rel k) in
              Txn.response_equal resp resp')
            (List.init 18 Fun.id))
        [ "R"; "S" ])

(* -- QCheck: commutativity-bypass soundness --------------------------------- *)

let effects_equal (a : Footprint.t) (b : Footprint.t) =
  List.equal
    (fun (r1, (rm1, ad1)) (r2, (rm2, ad2)) ->
      String.equal r1 r2
      && List.equal Tuple.equal rm1 rm2
      && List.equal Tuple.equal ad1 ad2)
    a.Footprint.effects b.Footprint.effects

(* Writers and readers skewed so that the semantic bypass actually fires:
   writers publish tuples with "w"-values, readers predicate on both
   matching and non-matching values. *)
let random_writer rand i =
  let key () = Random.State.int rand 16 in
  q
    (match Random.State.int rand 3 with
    | 0 -> Printf.sprintf "insert (%d, \"w%d\") into R" (key ()) i
    | 1 -> Printf.sprintf "delete %d from R" (key ())
    | _ ->
        Printf.sprintf "update R set val = \"w%d\" where key = %d" i (key ()))

let random_reader rand i =
  let v () =
    [| "R0"; "R1"; "w1"; "perturbed" |].(Random.State.int rand 4)
  in
  q
    (match Random.State.int rand 4 with
    | 0 -> Printf.sprintf "select * from R where val = \"%s\"" (v ())
    | 1 -> Printf.sprintf "count R where val = \"%s\"" (v ())
    | 2 -> Printf.sprintf "sum key from R where val = \"%s\"" (v ())
    | _ ->
        Printf.sprintf "update R set val = \"r%d\" where val = \"%s\"" i (v ()))

(* The direction the executor relies on: when [commutes] clears writer w
   against later reader r, then r's response AND r's replayable effects
   are identical whether or not w ran first. *)
let prop_commute_bypass_sound =
  QCheck2.Test.make ~name:"bypassed pairs commute (response and effects)"
    ~count:500 seed_gen (fun seed ->
      let rand = Random.State.make [| seed; 0x7a4 |] in
      let db = random_db rand in
      let w = random_writer rand seed in
      let r = random_reader rand seed in
      let (_, db_w, fp_w) = footprint_of db w in
      if not (Footprint.commutes ~schema_of:(Database.schema_of db) fp_w r)
      then true (* not bypassed: nothing claimed *)
      else
        let (resp_before, _, fp_before) = footprint_of db r in
        let (resp_after, _, fp_after) = footprint_of db_w r in
        Txn.response_equal resp_before resp_after
        && effects_equal fp_before fp_after)

let count_bypasses = ref 0

(* Guard against the bypass silently never firing (a vacuous property). *)
let test_commute_bypass_not_vacuous () =
  let fired = ref 0 in
  for seed = 0 to 299 do
    let rand = Random.State.make [| seed; 0x7a4 |] in
    let db = random_db rand in
    let w = random_writer rand seed in
    let r = random_reader rand seed in
    let (_, _, fp_w) = footprint_of db w in
    if Footprint.commutes ~schema_of:(Database.schema_of db) fp_w r then
      incr fired
  done;
  count_bypasses := !fired;
  Alcotest.(check bool)
    (Printf.sprintf "bypass fired on %d of 300 generated pairs" !fired)
    true (!fired > 20)

(* -- Exec.run_batch -------------------------------------------------------- *)

let test_run_batch_empty () =
  let db = Database.create schemas in
  let r = Exec.run_batch ~domains:2 db [] in
  Alcotest.(check int) "no responses" 0 (List.length r.Exec.responses);
  Alcotest.(check int) "stats.txns" 0 r.Exec.stats.Exec.txns;
  Alcotest.(check int) "history is just v0" 1
    (Fdb_txn.History.length r.Exec.history);
  Alcotest.(check bool) "final is the input" true (Oracle.db_equal db r.Exec.final)

let test_run_batch_matches_sequential () =
  Pool.with_pool ~domains:3 (fun pool ->
      for seed = 0 to 19 do
        let rand = Random.State.make [| seed; 0xba7c |] in
        let db = random_db rand in
        let queries = random_queries rand (4 + Random.State.int rand 12) in
        let r = Exec.run_batch ~pool db queries in
        let (seq_resps, seq_final) = Txn.run_queries db queries in
        List.iteri
          (fun i (a, b) ->
            if not (Txn.response_equal a b) then
              Alcotest.failf "seed %d: response %d diverges: %a vs %a" seed i
                Txn.pp_response a Txn.pp_response b)
          (List.combine r.Exec.responses seq_resps);
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: final db" seed)
          true
          (Oracle.db_equal r.Exec.final seq_final);
        (* the history really archives one version per transaction, and its
           newest version is the final state *)
        Alcotest.(check int)
          (Printf.sprintf "seed %d: history length" seed)
          (List.length queries + 1)
          (Fdb_txn.History.length r.Exec.history);
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: latest version = final" seed)
          true
          (Oracle.db_equal (Fdb_txn.History.latest r.Exec.history) r.Exec.final)
      done)

let test_run_batch_repairs_conflicts () =
  (* insert 9 then count R: the count's full scan is damaged by the
     insert, forcing at least one repair round — and the repaired count
     must see the new tuple. *)
  let db =
    match Database.load (Database.create schemas) ~rel:"R" [ tup 1 "a" ] with
    | Ok db -> db
    | Error e -> Alcotest.fail e
  in
  let r = Exec.run_batch ~domains:2 db [ q "insert (9, \"b\") into R"; q "count R" ] in
  (match r.Exec.responses with
  | [ Txn.Inserted true; Txn.Counted 2 ] -> ()
  | _ -> Alcotest.fail "unexpected responses");
  Alcotest.(check bool) "at least one repair round" true
    (r.Exec.stats.Exec.rounds >= 1);
  Alcotest.(check bool) "the count was re-executed" true
    (r.Exec.stats.Exec.reexecs >= 1)

let test_run_batch_disjoint_speculates_clean () =
  (* fully key-disjoint writes: everything commits from round 0 *)
  let db = Database.create schemas in
  let queries =
    List.init 12 (fun i -> q (Printf.sprintf "insert (%d, \"v%d\") into R" i i))
  in
  let r = Exec.run_batch ~domains:3 db queries in
  Alcotest.(check int) "no repair rounds" 0 r.Exec.stats.Exec.rounds;
  Alcotest.(check int) "every speculation hit" 12 r.Exec.stats.Exec.spec_hits;
  Alcotest.(check int) "no re-executions" 0 r.Exec.stats.Exec.reexecs;
  Alcotest.(check bool) "disjoint bypasses were taken" true
    (r.Exec.stats.Exec.bypass_disjoint > 0);
  let (_, seq_final) = Txn.run_queries db queries in
  Alcotest.(check bool) "final db" true (Oracle.db_equal r.Exec.final seq_final)

(* -- Pipeline.run_repair ---------------------------------------------------- *)

let spec_for ~seed =
  let rand = Random.State.make [| seed; 0x9a7 |] in
  let rel name n =
    ( name,
      List.init n (fun i ->
          tup (Random.State.int rand 16) (Printf.sprintf "%s%d" name i)) )
  in
  {
    Pipeline.schemas;
    initial =
      [ rel "R" (5 + Random.State.int rand 40); rel "S" (Random.State.int rand 25) ];
  }

let gen_tagged ~seed n =
  let rand = Random.State.make [| seed; 0x9a8 |] in
  List.init n (fun i -> (i mod 4, random_query rand i))

let test_pipeline_run_repair_differential () =
  Pool.with_pool ~domains:3 (fun pool ->
      List.iter
        (fun batch ->
          for seed = 0 to 19 do
            let spec = spec_for ~seed in
            let tagged = gen_tagged ~seed (8 + (seed mod 20)) in
            let name = Printf.sprintf "batch %d seed %d" batch seed in
            let rep = Pipeline.run_repair ~batch ~pool spec tagged in
            let reference =
              Pipeline.reference ~semantics:Pipeline.Ordered_unique spec tagged
            in
            let ideal =
              Pipeline.run ~semantics:Pipeline.Ordered_unique spec tagged
            in
            List.iteri
              (fun i ((t1, r1), (t2, r2)) ->
                if t1 <> t2 || not (Pipeline.response_equal r1 r2) then
                  Alcotest.failf "%s: response %d diverges: (%d) %a vs (%d) %a"
                    name i t1 Pipeline.pp_response r1 t2 Pipeline.pp_response r2)
              (List.combine rep.Pipeline.rep_responses reference);
            List.iter2
              (fun (rel1, ts1) (rel2, ts2) ->
                Alcotest.(check string) (name ^ ": relation order") rel1 rel2;
                if not (List.equal Tuple.equal ts1 ts2) then
                  Alcotest.failf "%s: final contents of %s diverge" name rel1)
              ideal.Pipeline.final_db rep.Pipeline.rep_final_db;
            Alcotest.(check int)
              (name ^ ": one version per query plus v0")
              (List.length tagged + 1)
              rep.Pipeline.rep_versions
          done)
        [ 1; 4; 16 ])

let test_pipeline_run_repair_validation () =
  Alcotest.check_raises "batch must be positive"
    (Invalid_argument "Pipeline.run_repair: batch must be >= 1") (fun () ->
      ignore
        (Pipeline.run_repair ~batch:0 { Pipeline.schemas = []; initial = [] } []))

(* -- the flagship differential sweep (Sim.run_repair) ----------------------- *)

(* >= 150 scenarios: batch sizes x key ranges (conflict ratio) x seeds,
   at two domain counts.  Every scenario checks repair == sequential
   engine == traced inline run, trace lawfulness (including
   repair_convergence), and oracle acceptance. *)
let sweep ~domains ~seeds () =
  Pool.with_pool ~domains (fun pool ->
      List.iter
        (fun batch ->
          List.iter
            (fun key_range ->
              for seed = 0 to seeds - 1 do
                let sc =
                  Cgen.generate
                    {
                      Cgen.default_spec with
                      Cgen.clients = 3;
                      queries_per_client = 5;
                      key_range;
                      seed = (batch * 1000) + (key_range * 100) + seed;
                    }
                in
                let o = Sim.run_repair ~pool ~batch ~seed sc in
                if not (Oracle.accepted o.Sim.repair_verdict) then
                  Alcotest.failf "batch %d range %d seed %d: not accepted"
                    batch key_range seed;
                let st = o.Sim.repair_stats in
                if st.Exec.txns <> Cgen.query_count sc then
                  Alcotest.failf "batch %d range %d seed %d: %d txns, %d queries"
                    batch key_range seed st.Exec.txns (Cgen.query_count sc)
              done)
            [ 4; 12; 48 ])
        [ 1; 4; 16 ])

let test_sweep_2_domains = sweep ~domains:2 ~seeds:9
let test_sweep_3_domains = sweep ~domains:3 ~seeds:9

(* -- repair_convergence trace invariant ------------------------------------- *)

let ev kind = { Event.ts = 0; site = -1; kind }

let test_repair_convergence_accepts_lawful () =
  let lawful =
    [
      ev (Event.Repair_batch { batch = 0; size = 2 });
      ev (Event.Repair_spec { batch = 0; txn = 0 });
      ev (Event.Repair_spec { batch = 0; txn = 1 });
      ev (Event.Repair_round { batch = 0; round = 1; damaged = 1 });
      ev (Event.Repair_commit { batch = 0; txn = 0; round = 0 });
      ev (Event.Repair_redo { batch = 0; txn = 1; round = 1 });
      ev (Event.Repair_commit { batch = 0; txn = 1; round = 1 });
    ]
  in
  Alcotest.(check int) "lawful trace has no violations" 0
    (List.length (Trace_oracle.repair_convergence lawful))

let violates expected events =
  let vs = Trace_oracle.repair_convergence (List.map ev events) in
  if vs = [] then Alcotest.failf "expected a violation (%s), got none" expected;
  List.iter
    (fun (v : Trace_oracle.violation) ->
      Alcotest.(check string) "invariant name" "repair_convergence" v.Trace_oracle.invariant)
    vs

let test_repair_convergence_rejects () =
  violates "spec without commit"
    [
      Event.Repair_batch { batch = 0; size = 1 };
      Event.Repair_spec { batch = 0; txn = 0 };
    ];
  violates "redo after commit"
    [
      Event.Repair_batch { batch = 0; size = 1 };
      Event.Repair_spec { batch = 0; txn = 0 };
      Event.Repair_commit { batch = 0; txn = 0; round = 0 };
      Event.Repair_redo { batch = 0; txn = 0; round = 1 };
      Event.Repair_commit { batch = 0; txn = 0; round = 1 };
    ];
  violates "double commit"
    [
      Event.Repair_spec { batch = 0; txn = 0 };
      Event.Repair_commit { batch = 0; txn = 0; round = 0 };
      Event.Repair_commit { batch = 0; txn = 0; round = 0 };
    ];
  violates "commit without execution"
    [ Event.Repair_commit { batch = 0; txn = 0; round = 0 } ];
  violates "rounds exceed batch size"
    [
      Event.Repair_batch { batch = 0; size = 1 };
      Event.Repair_spec { batch = 0; txn = 0 };
      Event.Repair_round { batch = 0; round = 2; damaged = 1 };
      Event.Repair_commit { batch = 0; txn = 0; round = 0 };
    ];
  violates "commits out of batch order"
    [
      Event.Repair_spec { batch = 0; txn = 0 };
      Event.Repair_spec { batch = 0; txn = 1 };
      Event.Repair_commit { batch = 0; txn = 1; round = 0 };
      Event.Repair_commit { batch = 0; txn = 0; round = 0 };
    ]

let test_live_trace_is_lawful () =
  (* a real repaired batch, traced: the new invariant holds on live data
     and the trace contains actual repair activity *)
  let db =
    match Database.load (Database.create schemas) ~rel:"R" [ tup 1 "a" ] with
    | Ok db -> db
    | Error e -> Alcotest.fail e
  in
  let queries =
    [ q "insert (9, \"b\") into R"; q "count R"; q "insert (3, \"c\") into R" ]
  in
  let (r, trace) =
    Trace.record (fun () -> Exec.run_batch ~domains:2 db queries)
  in
  ignore r;
  Alcotest.(check int) "no violations" 0
    (List.length (Trace_oracle.check trace));
  let has k = List.exists (fun (e : Event.t) -> Event.name e.Event.kind = k) trace in
  List.iter
    (fun k -> Alcotest.(check bool) (k ^ " present") true (has k))
    [ "repair_batch"; "repair_spec"; "repair_redo"; "repair_round";
      "repair_commit" ]

(* -- pool bracket on failure paths (satellite: with_pool teardown) ----------- *)

exception Boom

let test_with_pool_joins_domains_on_raise () =
  (* OCaml caps live domains at 128.  Leak 12 domains per iteration and
     the 10th iteration cannot spawn; if the bracket joins them on the
     exception path, all iterations succeed and a fresh pool still
     works. *)
  for _ = 1 to 10 do
    match Pool.with_pool ~domains:12 (fun _pool -> raise Boom) with
    | _ -> Alcotest.fail "with_pool swallowed the exception"
    | exception Boom -> ()
  done;
  Pool.with_pool ~domains:12 (fun pool ->
      let r = ref 0 in
      Pool.submit pool ~site:0 (fun () -> r := 1);
      Pool.wait pool;
      Alcotest.(check int) "domains available again" 1 !r)

let test_sim_run_repair_brackets_pool () =
  (* max_states:0 forces an Inconclusive oracle verdict, which makes
     Sim.run_repair raise *inside* the with_pool bracket; domains must
     still be joined — same 128-domain budget argument as above. *)
  let sc = Cgen.generate { Cgen.default_spec with Cgen.seed = 5 } in
  for _ = 1 to 10 do
    match Sim.run_repair ~domains:12 ~max_states:0 ~seed:5 sc with
    | _ -> Alcotest.fail "expected the oracle to be inconclusive"
    | exception Failure _ -> ()
  done;
  (* after 10 failing sweeps, a full healthy run still gets its domains *)
  let o = Sim.run_repair ~domains:12 ~seed:5 sc in
  Alcotest.(check bool) "healthy run accepted" true
    (Oracle.accepted o.Sim.repair_verdict)

let test_sim_run_repair_metrics_scoped () =
  let sc = Cgen.generate { Cgen.default_spec with Cgen.seed = 3 } in
  let run () = Sim.run_repair ~domains:2 ~seed:3 sc in
  let a = run () in
  let noise = Fdb_obs.Metrics.counter "test.repair.noise" in
  Fdb_obs.Metrics.add noise 777;
  ignore (Sim.run_repair ~domains:2 ~seed:8 sc);
  let b = run () in
  Alcotest.(check bool) "identical runs report identical metrics" true
    (a.Sim.repair_metrics = b.Sim.repair_metrics);
  Alcotest.(check int) "surrounding accumulation untouched" 777
    (Fdb_obs.Metrics.counter_value noise);
  Alcotest.(check bool) "repair counters recorded" true
    (List.exists
       (fun (name, v) ->
         String.length name >= 7 && String.sub name 0 7 = "repair." && v > 0)
       a.Sim.repair_metrics.Fdb_obs.Metrics.counters)

let () =
  Alcotest.run "repair"
    [
      ( "footprint",
        [
          Alcotest.test_case "key_in_span" `Quick test_key_in_span;
          Alcotest.test_case "overlap verdicts" `Quick test_overlap_verdicts;
          QCheck_alcotest.to_alcotest prop_tracked_equals_untracked;
          QCheck_alcotest.to_alcotest prop_write_completeness;
          QCheck_alcotest.to_alcotest prop_read_soundness;
        ] );
      ( "commutativity",
        [
          QCheck_alcotest.to_alcotest prop_commute_bypass_sound;
          Alcotest.test_case "bypass is not vacuous" `Quick
            test_commute_bypass_not_vacuous;
        ] );
      ( "exec",
        [
          Alcotest.test_case "empty batch" `Quick test_run_batch_empty;
          Alcotest.test_case "batch == sequential engine" `Slow
            test_run_batch_matches_sequential;
          Alcotest.test_case "conflicts force repair rounds" `Quick
            test_run_batch_repairs_conflicts;
          Alcotest.test_case "disjoint batch speculates clean" `Quick
            test_run_batch_disjoint_speculates_clean;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "run_repair == reference == ideal" `Slow
            test_pipeline_run_repair_differential;
          Alcotest.test_case "argument validation" `Quick
            test_pipeline_run_repair_validation;
        ] );
      ( "differential",
        [
          Alcotest.test_case "81 scenarios @ 2 domains" `Slow
            test_sweep_2_domains;
          Alcotest.test_case "81 scenarios @ 3 domains" `Slow
            test_sweep_3_domains;
        ] );
      ( "trace",
        [
          Alcotest.test_case "repair_convergence accepts lawful" `Quick
            test_repair_convergence_accepts_lawful;
          Alcotest.test_case "repair_convergence rejects violations" `Quick
            test_repair_convergence_rejects;
          Alcotest.test_case "live repaired batch is lawful" `Quick
            test_live_trace_is_lawful;
        ] );
      ( "pool-bracket",
        [
          Alcotest.test_case "with_pool joins domains on raise" `Slow
            test_with_pool_joins_domains_on_raise;
          Alcotest.test_case "Sim.run_repair brackets its pool" `Slow
            test_sim_run_repair_brackets_pool;
          Alcotest.test_case "metrics scoped per run" `Quick
            test_sim_run_repair_metrics_scoped;
        ] );
    ]
