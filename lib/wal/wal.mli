(** The durable version log: an append-only log of version deltas with
    periodic compact checkpoints, written in the shared frame format
    ({!Fdb_wire.Wire}).

    The paper's functional design makes durability cheap: a
    {!Fdb_txn.History.t} is an immutable spine of structure-shared
    versions, so an append-only log of per-version deltas {e is} the
    database.  Layout:

    {v
      seg-000000.wal:  [ckpt v0] [delta v1] [delta v2] ... [delta vK]
      seg-000001.wal:  [ckpt vK] [delta vK+1] ...
    v}

    Every segment begins with a {b checkpoint frame} — the version index it
    covers plus a one-version archive of that database — followed by
    {b delta frames}, each carrying its version index and the changed
    relation slots against the previous version.  Recovery
    ({!val:recover}) picks the newest segment whose checkpoint frame is
    intact, rebuilds that database, and replays the delta suffix in order,
    stopping cleanly at the first torn, truncated, checksum-corrupt or
    out-of-order frame.

    {b Fsync discipline.}  Appends are group-buffered; {!val:sync} is the
    explicit fsync point after which every appended version is promised to
    survive a crash.  A checkpoint (a) syncs the current segment, (b)
    writes and syncs the new segment's checkpoint frame, and only then (c)
    deletes the old segments — so at any crash point some synced segment
    still holds everything promised durable.  The [Wal_*] trace events are
    emitted {e after} the corresponding bytes are down, so trace order is
    a durability witness the [durability] oracle
    ({!Fdb_check.Trace_oracle}) can check. *)

open Fdb_relational

(** Where log bytes live.  A first-class record of closures so the
    simulator can inject an in-memory store with torn-write crash
    semantics while the CLI and bench run against real files. *)
module Store : sig
  type t = {
    append : string -> string -> unit;  (** [append file bytes] — buffered *)
    sync : string -> unit;  (** flush [file]; its bytes are now durable *)
    read : string -> string option;  (** whole current contents *)
    list_files : unit -> string list;
    remove : string -> unit;
    close : unit -> unit;  (** release handles (no-op for memory) *)
  }
end

(** In-memory store with explicit durability tracking: each file knows how
    many bytes were covered by the last [sync].  {!val:crash} keeps the
    synced prefix plus a {e random prefix of the unsynced suffix} — a torn
    write — which is exactly the fault model the recovery reader must
    survive. *)
module Mem : sig
  type t

  val create : unit -> t
  val store : t -> Store.t

  val crash : rand:Random.State.t -> t -> unit
  (** Tear every file at a random point no earlier than its synced length. *)

  val synced : t -> string -> int
  (** Bytes of [file] covered by the last sync (0 if absent). *)

  val get : t -> string -> string
  (** Current contents ("" if absent) — for doctoring in fault tests. *)

  val set : t -> string -> string -> unit
  (** Overwrite contents — for doctoring in fault tests.  The synced mark
      is clamped to the new length. *)
end

module Fs : sig
  val store : dir:string -> Store.t
  (** A directory of segment files.  [sync] flushes the channel (the
      strongest barrier available without a Unix dependency); call
      [close] when done. *)
end

val segment_name : int -> string
(** [segment_name 3] is ["seg-000003.wal"]. *)

val segment_number : string -> int option
(** Inverse of {!segment_name}; [None] for non-segment file names. *)

(** {1 Writing} *)

type writer

val create :
  ?sync_every:int -> ?checkpoint_every:int -> store:Store.t -> Database.t ->
  writer
(** Start a log over [store] with the given initial database: writes and
    syncs the genesis checkpoint (version 0).  [sync_every] (default 1)
    groups that many appends per automatic fsync; 0 means only explicit
    {!val:sync} calls.  [checkpoint_every] (default 0 = never) compacts
    after that many appends since the last checkpoint.
    @raise Invalid_argument on negative parameters. *)

val append : writer -> Database.t -> unit
(** Log the next committed version: encodes the delta against the current
    newest version, buffers the frame, and applies the group-sync /
    checkpoint policy. *)

val sync : writer -> unit
(** Explicit fsync point: every appended version becomes durable. *)

val checkpoint : writer -> unit
(** Force a compact checkpoint now (see the fsync discipline above). *)

val latest : writer -> Database.t
(** The newest appended version (the shadow of the log tail). *)

val history : writer -> Fdb_txn.History.t
(** The shadow archive of every version appended through this writer
    (including its initial version). *)

val appended : writer -> int
(** Newest version index written to the log (0 = just the initial
    checkpoint). *)

val durable : writer -> int
(** Newest version index covered by a sync — the crash-survival promise. *)

val segment : writer -> int
(** Current segment number. *)

(** {1 Recovery} *)

type stop_reason =
  | Clean  (** the log ended exactly at a frame boundary *)
  | Stopped of { offset : int; reason : string }
      (** replay stopped at the first torn / truncated / checksum-corrupt /
          out-of-order frame — everything before it was recovered *)

type recovery = {
  rhistory : Fdb_txn.History.t;
      (** versions [base..upto], oldest first (version 0 of [rhistory] is
          version [base] of the original log) *)
  base : int;  (** version index the chosen checkpoint covers *)
  upto : int;  (** newest recovered version index *)
  segments : int;  (** segment files present in the store *)
  stop : stop_reason;
}

val recover : Store.t -> recovery
(** Rebuild the newest durable state by checkpoint + suffix replay.  Picks
    the newest segment whose head checkpoint frame is intact (a segment
    whose checkpoint was torn mid-write is skipped — its contents were
    never promised durable), then replays delta frames in version order.
    Emits [Wal_replay] / [Wal_recovered] trace events and [wal.*] metrics.
    @raise Fdb_wire.Wire.Corrupt if no segment holds an intact checkpoint,
    or if a checksum-valid frame is structurally invalid (real corruption,
    not a torn write). *)

val resume :
  ?sync_every:int -> ?checkpoint_every:int -> store:Store.t -> recovery ->
  writer
(** Continue a recovered log: writes a fresh checkpoint segment at the
    recovered state (discarding any torn tail) and returns a writer whose
    next append is version [upto + 1]. *)

val pp_stop : Format.formatter -> stop_reason -> unit
