open Fdb_relational

exception Parse_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

(* Token-list cursor. *)
type cursor = { mutable toks : Lexer.token list }

let peek c = match c.toks with [] -> None | t :: _ -> Some t

let advance c =
  match c.toks with [] -> fail "unexpected end of query" | _ :: r -> c.toks <- r

let next c =
  match c.toks with
  | [] -> fail "unexpected end of query"
  | t :: r ->
      c.toks <- r;
      t

let expect_kw c kw =
  match next c with
  | Lexer.KW k when String.equal k kw -> ()
  | t -> fail "expected '%s', got %a" kw Lexer.pp_token t

let expect c tok name =
  let t = next c in
  if t <> tok then fail "expected %s, got %a" name Lexer.pp_token t

let ident c =
  match next c with
  | Lexer.IDENT s -> s
  | t -> fail "expected identifier, got %a" Lexer.pp_token t

let literal c =
  match next c with
  | Lexer.INT i -> Value.Int i
  | Lexer.REAL f -> Value.Real f
  | Lexer.STRING s -> Value.Str s
  | Lexer.KW "true" -> Value.Bool true
  | Lexer.KW "false" -> Value.Bool false
  | t -> fail "expected literal, got %a" Lexer.pp_token t

let tuple_literal c =
  expect c Lexer.LPAREN "'('";
  let rec go acc =
    let v = literal c in
    match next c with
    | Lexer.COMMA -> go (v :: acc)
    | Lexer.RPAREN -> List.rev (v :: acc)
    | t -> fail "expected ',' or ')', got %a" Lexer.pp_token t
  in
  go []

let comparison c =
  match next c with
  | Lexer.OP "=" -> Ast.Eq
  | Lexer.OP "!=" -> Ast.Ne
  | Lexer.OP "<" -> Ast.Lt
  | Lexer.OP "<=" -> Ast.Le
  | Lexer.OP ">" -> Ast.Gt
  | Lexer.OP ">=" -> Ast.Ge
  | t -> fail "expected comparison operator, got %a" Lexer.pp_token t

(* pred := conj (or conj)* ; conj := atom (and atom)* ;
   atom := not atom | ( pred ) | true | column cmp literal *)
let rec pred c =
  let left = conj c in
  match peek c with
  | Some (Lexer.KW "or") ->
      advance c;
      Ast.Or (left, pred c)
  | _ -> left

and conj c =
  let left = atom c in
  match peek c with
  | Some (Lexer.KW "and") ->
      advance c;
      Ast.And (left, conj c)
  | _ -> left

and atom c =
  match peek c with
  | Some (Lexer.KW "not") ->
      advance c;
      Ast.Not (atom c)
  | Some Lexer.LPAREN ->
      advance c;
      let p = pred c in
      expect c Lexer.RPAREN "')'";
      p
  | Some (Lexer.KW "true") ->
      advance c;
      Ast.True
  | Some (Lexer.IDENT col) ->
      advance c;
      let op = comparison c in
      let v = literal c in
      Ast.Cmp (col, op, v)
  | Some t -> fail "expected predicate, got %a" Lexer.pp_token t
  | None -> fail "expected predicate, got end of query"

let columns c =
  match peek c with
  | Some Lexer.STAR ->
      advance c;
      None
  | _ ->
      let rec go acc =
        let col = ident c in
        match peek c with
        | Some Lexer.COMMA ->
            advance c;
            go (col :: acc)
        | _ -> List.rev (col :: acc)
      in
      Some (go [])

let query c =
  match next c with
  | Lexer.KW "insert" ->
      let values = tuple_literal c in
      expect_kw c "into";
      let rel = ident c in
      Ast.Insert { rel; values }
  | Lexer.KW "find" ->
      let key = literal c in
      expect_kw c "in";
      let rel = ident c in
      Ast.Find { rel; key }
  | Lexer.KW "delete" ->
      let key = literal c in
      expect_kw c "from";
      let rel = ident c in
      Ast.Delete { rel; key }
  | Lexer.KW "select" ->
      let cols = columns c in
      expect_kw c "from";
      let rel = ident c in
      let where =
        match peek c with
        | Some (Lexer.KW "where") ->
            advance c;
            pred c
        | _ -> Ast.True
      in
      Ast.Select { rel; cols; where }
  | Lexer.KW "count" ->
      let rel = ident c in
      let where =
        match peek c with
        | Some (Lexer.KW "where") ->
            advance c;
            pred c
        | _ -> Ast.True
      in
      Ast.Count { rel; where }
  | Lexer.KW (("sum" | "min" | "max") as verb) ->
      let agg =
        match verb with
        | "sum" -> Ast.Sum
        | "min" -> Ast.Min
        | _ -> Ast.Max
      in
      let col = ident c in
      expect_kw c "from";
      let rel = ident c in
      let where =
        match peek c with
        | Some (Lexer.KW "where") ->
            advance c;
            pred c
        | _ -> Ast.True
      in
      Ast.Aggregate { agg; rel; col; where }
  | Lexer.KW "update" ->
      let rel = ident c in
      expect_kw c "set";
      let col = ident c in
      (match next c with
      | Lexer.OP "=" -> ()
      | t -> fail "expected '=', got %a" Lexer.pp_token t);
      let value = literal c in
      let where =
        match peek c with
        | Some (Lexer.KW "where") ->
            advance c;
            pred c
        | _ -> Ast.True
      in
      Ast.Update { rel; col; value; where }
  | Lexer.KW "join" ->
      let left = ident c in
      expect_kw c "and";
      let right = ident c in
      expect_kw c "on";
      let lc = ident c in
      (match next c with
      | Lexer.OP "=" -> ()
      | t -> fail "expected '=', got %a" Lexer.pp_token t);
      let rc = ident c in
      Ast.Join { left; right; on = (lc, rc) }
  | t -> fail "expected a query verb, got %a" Lexer.pp_token t

let parse src =
  match Lexer.tokens src with
  | exception Lexer.Lex_error (msg, pos) ->
      Error (Printf.sprintf "lexical error at %d: %s" pos msg)
  | toks -> (
      let c = { toks } in
      match query c with
      | q ->
          if c.toks = [] then Ok q
          else Error (Format.asprintf "trailing input after query: %a"
                        Lexer.pp_token (List.hd c.toks))
      | exception Parse_error msg -> Error msg)

let parse_exn src =
  match parse src with Ok q -> q | Error e -> failwith e

let parse_script src =
  let lines =
    String.split_on_char '\n' src
    |> List.concat_map (String.split_on_char ';')
    |> List.map String.trim
    |> List.filter (fun l ->
           l <> "" && not (String.length l >= 2 && String.sub l 0 2 = "--"))
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | l :: rest -> (
        match parse l with
        | Ok q -> go (q :: acc) rest
        | Error e -> Error (Printf.sprintf "in %S: %s" l e))
  in
  go [] lines
