open Fdb_relational

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type pred =
  | True
  | Cmp of string * cmp * Value.t
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

type agg = Sum | Min | Max

type query =
  | Insert of { rel : string; values : Value.t list }
  | Find of { rel : string; key : Value.t }
  | Delete of { rel : string; key : Value.t }
  | Select of { rel : string; cols : string list option; where : pred }
  | Count of { rel : string; where : pred }
  | Aggregate of { agg : agg; rel : string; col : string; where : pred }
  | Update of { rel : string; col : string; value : Value.t; where : pred }
  | Join of { left : string; right : string; on : string * string }

let is_update = function
  | Insert _ | Delete _ | Update _ -> true
  | Find _ | Select _ | Count _ | Aggregate _ | Join _ -> false

let relations_touched = function
  | Insert { rel; _ } | Find { rel; _ } | Delete { rel; _ }
  | Select { rel; _ } | Count { rel; _ } | Aggregate { rel; _ }
  | Update { rel; _ } ->
      [ rel ]
  | Join { left; right; _ } -> [ left; right ]

let pp_cmp ppf c =
  Format.pp_print_string ppf
    (match c with
    | Eq -> "="
    | Ne -> "!="
    | Lt -> "<"
    | Le -> "<="
    | Gt -> ">"
    | Ge -> ">=")

(* Precedence: Or (1) < And (2) < Not (3); parenthesize when a child binds
   looser than its context.  The parser is right-associative, so the left
   operand prints one level tighter: a left-nested (a and b) and c keeps
   its parentheses and round-trips. *)
let rec pp_pred_prec prec ppf = function
  | True -> Format.pp_print_string ppf "true"
  | Cmp (col, c, v) -> Format.fprintf ppf "%s %a %a" col pp_cmp c Value.pp v
  | And (a, b) ->
      let body ppf () =
        Format.fprintf ppf "%a and %a" (pp_pred_prec 3) a (pp_pred_prec 2) b
      in
      if prec > 2 then Format.fprintf ppf "(%a)" body ()
      else body ppf ()
  | Or (a, b) ->
      let body ppf () =
        Format.fprintf ppf "%a or %a" (pp_pred_prec 2) a (pp_pred_prec 1) b
      in
      if prec > 1 then Format.fprintf ppf "(%a)" body ()
      else body ppf ()
  | Not p -> Format.fprintf ppf "not %a" (pp_pred_prec 4) p

let pp_pred = pp_pred_prec 0

let pp_values ppf vs =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Value.pp)
    vs

let pp ppf = function
  | Insert { rel; values } ->
      Format.fprintf ppf "insert %a into %s" pp_values values rel
  | Find { rel; key } -> Format.fprintf ppf "find %a in %s" Value.pp key rel
  | Delete { rel; key } ->
      Format.fprintf ppf "delete %a from %s" Value.pp key rel
  | Select { rel; cols; where } ->
      let pp_cols ppf = function
        | None -> Format.pp_print_string ppf "*"
        | Some cs ->
            Format.pp_print_list
              ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
              Format.pp_print_string ppf cs
      in
      Format.fprintf ppf "select %a from %s" pp_cols cols rel;
      (match where with
      | True -> ()
      | w -> Format.fprintf ppf " where %a" pp_pred w)
  | Count { rel; where } -> (
      Format.fprintf ppf "count %s" rel;
      match where with
      | True -> ()
      | w -> Format.fprintf ppf " where %a" pp_pred w)
  | Aggregate { agg; rel; col; where } ->
      let verb = match agg with Sum -> "sum" | Min -> "min" | Max -> "max" in
      Format.fprintf ppf "%s %s from %s" verb col rel;
      (match where with
      | True -> ()
      | w -> Format.fprintf ppf " where %a" pp_pred w)
  | Update { rel; col; value; where } ->
      Format.fprintf ppf "update %s set %s = %a" rel col Value.pp value;
      (match where with
      | True -> ()
      | w -> Format.fprintf ppf " where %a" pp_pred w)
  | Join { left; right; on = (lc, rc) } ->
      Format.fprintf ppf "join %s and %s on %s = %s" left right lc rc

let to_string q = Format.asprintf "%a" pp q
