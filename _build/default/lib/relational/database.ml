type t = { rels : (string * Relation.t) list }

let create ?backend schemas =
  let names = List.map Schema.name schemas in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then invalid_arg "Database.create: duplicate relation names";
  { rels = List.map (fun s -> (Schema.name s, Relation.create ?backend s)) schemas }

let names db = List.map fst db.rels

let relation db name = List.assoc_opt name db.rels

let schema_of db name = Option.map Relation.schema (relation db name)

let replace db name rel =
  if not (List.mem_assoc name db.rels) then
    invalid_arg ("Database.replace: unknown relation " ^ name);
  let rec go = function
    | [] -> []
    | ((n, _) as slot) :: rest ->
        if String.equal n name then (n, rel) :: rest else slot :: go rest
  in
  { rels = go db.rels }

let with_rel db name f =
  match relation db name with
  | None -> Error (Printf.sprintf "unknown relation %s" name)
  | Some rel -> f rel

let insert db ~rel tuple =
  with_rel db rel (fun r ->
      match Relation.insert r tuple with
      | Error e -> Error e
      | Ok (r', added) ->
          if added then Ok (replace db rel r', true) else Ok (db, false))

let delete db ~rel ~key =
  with_rel db rel (fun r ->
      let (r', found) = Relation.delete_key r key in
      if found then Ok (replace db rel r', true) else Ok (db, false))

let find db ~rel ~key = with_rel db rel (fun r -> Ok (Relation.find_key r key))

let total_tuples db =
  List.fold_left (fun acc (_, r) -> acc + Relation.size r) 0 db.rels

let load db ~rel tuples =
  List.fold_left
    (fun acc tup ->
      match acc with
      | Error _ as e -> e
      | Ok db -> Result.map fst (insert db ~rel tup))
    (Ok db) tuples

let shares_relation ~old db name =
  match (relation old name, relation db name) with
  | (Some a, Some b) -> a == b
  | _ -> false

let pp ppf db =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list
       ~pp_sep:Format.pp_print_cut
       (fun ppf (_, r) -> Relation.pp ppf r))
    db.rels
