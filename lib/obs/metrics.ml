type counter = { c_name : string; mutable count : int }

type histogram = {
  h_name : string;
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
  h_buckets : int array;  (* power-of-two buckets *)
}

let n_buckets = 32
let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
      let c = { c_name = name; count = 0 } in
      Hashtbl.add counters name c;
      c

let incr c = c.count <- c.count + 1
let add c n = c.count <- c.count + n
let counter_value c = c.count

let histogram name =
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
      let h =
        {
          h_name = name;
          h_count = 0;
          h_sum = 0;
          h_min = 0;
          h_max = 0;
          h_buckets = Array.make n_buckets 0;
        }
      in
      Hashtbl.add histograms name h;
      h

(* bucket 0: v <= 0; bucket i: 2^(i-1) <= v < 2^i, clamped to the last. *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 and x = ref v in
    while !x > 0 do
      Stdlib.incr b;
      x := !x lsr 1
    done;
    min !b (n_buckets - 1)
  end

let observe h v =
  if h.h_count = 0 then begin
    h.h_min <- v;
    h.h_max <- v
  end
  else begin
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v
  end;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  let b = bucket_of v in
  h.h_buckets.(b) <- h.h_buckets.(b) + 1

type histo_stats = {
  count : int;
  sum : int;
  min : int;
  max : int;
  buckets : (int * int) list;
}

type snapshot = {
  counters : (string * int) list;
  histograms : (string * histo_stats) list;
}

let histo_stats h =
  let buckets = ref [] in
  for i = n_buckets - 1 downto 0 do
    if h.h_buckets.(i) > 0 then
      let upper = if i = 0 then 0 else (1 lsl i) - 1 in
      buckets := (upper, h.h_buckets.(i)) :: !buckets
  done;
  {
    count = h.h_count;
    sum = h.h_sum;
    min = h.h_min;
    max = h.h_max;
    buckets = !buckets;
  }

let snapshot () =
  let cs =
    Hashtbl.fold
      (fun name (c : counter) acc -> (name, c.count) :: acc)
      counters []
  in
  let hs =
    Hashtbl.fold (fun name h acc -> (name, histo_stats h) :: acc) histograms []
  in
  let by_name (a, _) (b, _) = String.compare a b in
  { counters = List.sort by_name cs; histograms = List.sort by_name hs }

let reset () =
  Hashtbl.iter (fun _ (c : counter) -> c.count <- 0) counters;
  Hashtbl.iter
    (fun _ h ->
      h.h_count <- 0;
      h.h_sum <- 0;
      h.h_min <- 0;
      h.h_max <- 0;
      Array.fill h.h_buckets 0 n_buckets 0)
    histograms

let pp_snapshot ppf snap =
  Fmt.pf ppf "counters:@.";
  List.iter
    (fun (name, v) -> Fmt.pf ppf "  %-34s %d@." name v)
    snap.counters;
  if snap.histograms <> [] then begin
    Fmt.pf ppf "histograms:@.";
    List.iter
      (fun (name, h) ->
        let mean = if h.count = 0 then 0.0 else float h.sum /. float h.count in
        Fmt.pf ppf "  %-34s n=%d min=%d max=%d mean=%.1f@." name h.count h.min
          h.max mean;
        List.iter
          (fun (upper, c) -> Fmt.pf ppf "    <=%-8d %d@." upper c)
          h.buckets)
      snap.histograms
  end
