(** Sharded serialization: N merge points with a commutativity-aware
    global spine.

    The paper's single primary-site merge is the scale ceiling — one
    serial stream cannot serve heavy traffic.  This module partitions the
    relations across [shards] sites.  Each site owns a slice of the
    database, a shard-local commit stream and its own version archive
    ({!Fdb_txn.History.t}); the slices evolve only through the site's
    commit stream, so shard-local work never coordinates.

    Serialization is two-level:

    - {b Level 1 — the router}: the client streams are arbitrated once by
      a {!Fdb_merge.Merge.policy} (exactly the unsharded pipeline's merge
      point).  Every commit a shard releases is a subsequence of this
      router order, so the union of the shard-local orders is acyclic by
      construction.
    - {b Level 2 — the global spine}: a transaction whose statically
      touched relations span more than one shard is a {e spine candidate}.
      Its footprint ({!Fdb_repair.Footprint}, via
      {!Fdb_txn.Txn.translate_tracked}) is compared against everything
      committed on its shards since the last global barrier (the open
      {e epoch}): if every such pair commutes — disjoint relations,
      disjoint key sets, or semantic commutation ("Limits of
      Commutativity", PAPERS.md) — the transaction {b bypasses} the spine
      and commits shard-locally.  Otherwise it is serialized through the
      global arbiter: it takes the next global sequence number and acts as
      a barrier closing the epoch on {e every} shard.

    The bypass claim — that within an epoch the shards could have
    executed independently — is checkable: {!val:reorder_schedule} builds
    an adversarial shard-major reordering of each epoch, and a sound
    analysis guarantees replaying it yields the same responses and final
    database.  Any pair the reorder swaps either shares no shard (the
    partition makes them commute trivially) or was explicitly checked
    when the later one committed. *)

open Fdb_relational
module Ast = Fdb_query.Ast
module Merge = Fdb_merge.Merge
module Txn = Fdb_txn.Txn
module History = Fdb_txn.History
module Footprint = Fdb_repair.Footprint

val shard_of : shards:int -> string -> int
(** Deterministic placement of a relation name (a stable string hash,
    independent of [Hashtbl.hash]).
    @raise Invalid_argument when [shards < 1]. *)

val shards_of_query : shards:int -> Ast.query -> int list
(** Sorted, deduplicated shard set of the relations the query names
    statically ({!Ast.relations_touched}); [[0]] mapped-to for a query
    touching no relation.  Unknown relation names still place — the owning
    shard answers [Failed] exactly as the unsharded engine does. *)

val slice : shards:int -> Database.t -> Database.t array
(** Partition a database into per-shard slices: shard [s] owns exactly
    the relations {!val:shard_of} places there, physically sharing their
    slots with the source.
    @raise Invalid_argument when [shards < 1]. *)

val pair_commutes :
  schema_of:(string -> Schema.t option) ->
  Footprint.t * Ast.query ->
  Footprint.t * Ast.query ->
  bool
(** Do the two executed transactions commute?  True when, in {e both}
    directions, the writer's published keys miss every read span of the
    reader ({!Footprint.overlap} is [No_overlap] or [Key_disjoint]) or the
    pair commutes semantically ({!Footprint.commutes}).  Because every
    write is preceded by a tracked read of the written key, write-write
    collisions surface as read overlaps — a [true] verdict means applying
    the pair in either order yields the same responses and final
    database. *)

type stats = {
  txns : int;
  local : int;  (** single-shard commits (never spine candidates) *)
  bypassed : int;  (** cross-shard commits that bypassed the spine *)
  spine : int;  (** cross-shard commits serialized by the global arbiter *)
  conflicts : int;  (** non-commuting pairs found by the analysis *)
  max_epoch : int;  (** largest number of commits between two barriers *)
}

val pp_stats : Format.formatter -> stats -> unit

type report = {
  shards : int;
  queries : Ast.query array;  (** router order *)
  tags : int array;  (** client of each query, router order *)
  responses : Txn.response array;  (** router order *)
  final : Database.t;
      (** the shard slices reassembled over the initial database *)
  shard_dbs : Database.t array;  (** final slice per shard *)
  histories : History.t array;
      (** per-shard version archives; version 0 is the initial slice and
          a new version is archived per commit that changed the slice *)
  commit_log : int list array;
      (** per shard, router-order indices committed there, in commit
          order — each is a subsequence of the router order *)
  local_queries : Ast.query list array;
      (** per shard, the single-shard queries it committed, in order —
          the replication stream for the shard's primary/backup pair *)
  foreign_writes : bool array;
      (** did any cross-shard transaction write into this slice?  (Never,
          for workloads whose only multi-relation query is a join.) *)
  versions : Database.t list;
      (** updates-only chain of reassembled global versions, oldest
          first, excluding the initial database — the durability feed *)
  epochs : (int list * int option) list;
      (** per epoch: bypassed/local members (router order) and the spine
          transaction that closed it, [None] for the final open epoch *)
  stats : stats;
}

val run_merged :
  shards:int -> initial:Database.t -> Ast.query Merge.tagged list -> report
(** Execute an already-arbitrated stream (tags are client ids) over
    [shards] slices of [initial].  Deterministic; emits [Shard_*] trace
    events when tracing is enabled ([Shard_commit] at [site = shard]).
    @raise Invalid_argument when [shards < 1]. *)

val run :
  ?policy:Merge.policy ->
  shards:int ->
  initial:Database.t ->
  Ast.query list list ->
  report
(** Arbitrate the client streams with [policy] (default [Arrival_order])
    — the level-1 merge — then {!val:run_merged}. *)

val reorder_schedule : report -> (int * int * Ast.query) list
(** The adversarial replay order: within each epoch the members are
    stably reordered shard-major (by lowest touched shard), spine
    transactions stay put as barriers.  Elements are
    [(router_index, client_tag, query)].  Replaying this schedule against
    the same initial database must reproduce [responses] (matched by
    router index) and [final] — the soundness check for every bypass the
    analysis granted. *)
