let select = List.filter

let project idxs tuples =
  let pick t =
    Array.of_list
      (List.map
         (fun i ->
           if i < 0 || i >= Tuple.arity t then
             invalid_arg "Algebra.project: column index out of range"
           else Tuple.get t i)
         idxs)
  in
  List.map pick tuples

let join ~left_col ~right_col left right =
  List.concat_map
    (fun lt ->
      List.filter_map
        (fun rt ->
          if Value.equal (Tuple.get lt left_col) (Tuple.get rt right_col) then
            Some (Array.append lt rt)
          else None)
        right)
    left

let union a b = List.sort_uniq Tuple.compare (a @ b)

let difference a b =
  List.filter (fun t -> not (List.exists (Tuple.equal t) b)) a

let intersection a b = List.filter (fun t -> List.exists (Tuple.equal t) b) a

let product a b =
  List.concat_map (fun lt -> List.map (fun rt -> Array.append lt rt) b) a
