lib/fel/eval.ml: Ast Buffer Engine Fdb_kernel Format List Parser Printf String
