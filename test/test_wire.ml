(* The shared wire codec (lib/wire): CRC32c, the length-prefixed checksummed
   frame format shared by the replica snapshots and the durable log, and the
   archive/delta payload codecs.  The load-bearing properties: a torn or
   bit-flipped frame is *detected* (never silently decoded, never an
   unhandled exception), and structural corruption inside a checksum-valid
   payload raises [Wire.Corrupt] with a byte offset. *)

open Fdb_relational
module Wire = Fdb_wire.Wire
module History = Fdb_txn.History
module Oracle = Fdb_check.Oracle

let q = Fdb_query.Parser.parse_exn

let schemas =
  [ Schema.make ~name:"R" ~cols:[ ("key", Schema.CInt); ("val", Schema.CStr) ];
    Schema.make ~name:"S" ~cols:[ ("key", Schema.CInt); ("val", Schema.CStr) ] ]

let db0 =
  let db = Database.create schemas in
  let load db rel tuples =
    match Database.load db ~rel tuples with
    | Ok db -> db
    | Error e -> failwith e
  in
  let tup k s = Tuple.make [ Value.Int k; Value.Str s ] in
  let db = load db "R" [ tup 1 "a"; tup 2 "b"; tup 3 "c" ] in
  load db "S" [ tup 10 "x"; tup 20 "y" ]

let history =
  fst
    (History.of_queries db0
       [
         q "insert (4, \"d\") into R";
         q "delete 2 from R";
         q "insert (30, \"z\") into S";
         q "update R set val = \"u\" where key = 1";
       ])

(* -- crc32c ----------------------------------------------------------------- *)

(* The standard CRC32-C check value: crc of the ASCII digits "123456789". *)
let test_crc32c_check_value () =
  Alcotest.(check int32) "check value" 0xE3069283l (Wire.crc32c "123456789");
  Alcotest.(check int32) "empty" 0l (Wire.crc32c "")

let test_crc32c_sensitivity () =
  let a = Wire.crc32c "hello world" in
  Alcotest.(check bool) "one bit apart" false
    (Int32.equal a (Wire.crc32c "hello worle"));
  Alcotest.(check bool) "prefix" false (Int32.equal a (Wire.crc32c "hello worl"))

(* -- frames ----------------------------------------------------------------- *)

let test_frame_roundtrip () =
  List.iter
    (fun (kind, payload) ->
      let s = Wire.frame ~kind payload in
      Alcotest.(check int) "framed length"
        (String.length payload + Wire.frame_overhead)
        (String.length s);
      match Wire.read_frame s ~pos:0 with
      | Wire.Frame { kind = k; payload = p; next } ->
          Alcotest.(check bool) "kind" true (k = kind);
          Alcotest.(check string) "payload" payload p;
          Alcotest.(check int) "next" (String.length s) next
      | Wire.End_of_input -> Alcotest.fail "end of input"
      | Wire.Torn { reason; _ } -> Alcotest.fail ("torn: " ^ reason))
    [ (Wire.Checkpoint, "ckpt payload");
      (Wire.Delta, "");
      (Wire.Delta, String.make 4096 '\142') ]

let test_frame_stream () =
  let s =
    Wire.frame ~kind:Wire.Checkpoint "one" ^ Wire.frame ~kind:Wire.Delta "two"
  in
  (match Wire.read_frame s ~pos:0 with
  | Wire.Frame { payload = "one"; next; _ } -> (
      match Wire.read_frame s ~pos:next with
      | Wire.Frame { payload = "two"; next; _ } -> (
          match Wire.read_frame s ~pos:next with
          | Wire.End_of_input -> ()
          | _ -> Alcotest.fail "expected end of input")
      | _ -> Alcotest.fail "second frame")
  | _ -> Alcotest.fail "first frame");
  Alcotest.check_raises "bad pos" (Invalid_argument "Wire.read_frame: bad pos")
    (fun () -> ignore (Wire.read_frame s ~pos:(String.length s + 1)))

(* Every strict byte-prefix of a frame reads as Torn (or End_of_input when
   empty) — never a Frame, never an exception. *)
let test_frame_prefixes_torn () =
  let s = Wire.frame ~kind:Wire.Delta "some delta payload" in
  for len = 0 to String.length s - 1 do
    match Wire.read_frame (String.sub s 0 len) ~pos:0 with
    | Wire.End_of_input -> Alcotest.(check int) "only empty" 0 len
    | Wire.Torn { offset; _ } ->
        Alcotest.(check bool) "offset in bounds" true
          (offset >= 0 && offset <= len)
    | Wire.Frame _ -> Alcotest.fail (Printf.sprintf "prefix %d decoded" len)
  done

(* CRC32c detects every single-bit error, so *any* one-bit flip anywhere in
   a frame must read as Torn. *)
let test_frame_bitflips_torn () =
  let s = Wire.frame ~kind:Wire.Checkpoint "payload under test" in
  let b = Bytes.of_string s in
  for i = 0 to Bytes.length b - 1 do
    for bit = 0 to 7 do
      let orig = Bytes.get b i in
      Bytes.set b i (Char.chr (Char.code orig lxor (1 lsl bit)));
      (match Wire.read_frame (Bytes.to_string b) ~pos:0 with
      | Wire.Torn _ -> ()
      | Wire.End_of_input -> Alcotest.fail "end of input"
      | Wire.Frame _ ->
          Alcotest.fail (Printf.sprintf "flip %d.%d accepted" i bit));
      Bytes.set b i orig
    done
  done

(* -- chunked column payloads ------------------------------------------------ *)

let wide_schema =
  Schema.make ~name:"W"
    ~cols:
      [ ("key", Schema.CInt); ("flag", Schema.CBool); ("ratio", Schema.CReal);
        ("label", Schema.CStr) ]

let wide_tup k =
  Tuple.make
    [ Value.Int k; Value.Bool (k mod 3 = 0); Value.Real (float_of_int k /. 7.0);
      Value.Str (Printf.sprintf "row;%d\"with\nnasty bytes" k) ]

let wide_rel ~backend n =
  match Relation.of_tuples ~backend wide_schema (List.init n wide_tup) with
  | Ok r -> r
  | Error e -> Alcotest.fail e

let chunked_backends =
  [ Relation.Column_backend 16; Relation.Btree_backend 4;
    Relation.List_backend; Relation.Avl_backend ]

let check_rel_equal name expected actual =
  Alcotest.(check string) (name ^ " backend")
    (Relation.backend_name (Relation.backend expected))
    (Relation.backend_name (Relation.backend actual));
  Alcotest.(check int) (name ^ " size") (Relation.size expected)
    (Relation.size actual);
  Alcotest.(check bool) (name ^ " contents") true
    (List.equal Tuple.equal (Relation.to_list expected)
       (Relation.to_list actual))

(* The chunked format is backend-agnostic: a column relation writes its
   actual chunks, the others pack fixed runs — all roundtrip through the
   same frames, every value type included. *)
let test_chunked_roundtrip () =
  List.iter
    (fun backend ->
      let name = Relation.backend_name backend in
      let r = wide_rel ~backend 100 in
      check_rel_equal name r (Wire.decode_chunked (Wire.encode_chunked r));
      let empty = Relation.create ~backend wide_schema in
      check_rel_equal (name ^ " empty") empty
        (Wire.decode_chunked (Wire.encode_chunked empty)))
    chunked_backends

(* Every strict prefix of an encoding must raise [Corrupt] — a torn write
   is detected, never silently decoded as a smaller relation. *)
let test_chunked_prefixes_corrupt () =
  let s = Wire.encode_chunked (wide_rel ~backend:(Relation.Column_backend 8) 40) in
  for len = 0 to String.length s - 1 do
    match Wire.decode_chunked (String.sub s 0 len) with
    | exception Wire.Corrupt { offset; _ } ->
        Alcotest.(check bool) "offset in bounds" true
          (offset >= 0 && offset <= len)
    | _ -> Alcotest.fail (Printf.sprintf "prefix %d decoded" len)
  done

(* Any single-bit flip anywhere lands on some chunk's CRC (or the header's)
   and must raise [Corrupt]. *)
let test_chunked_bitflips_corrupt () =
  let s = Wire.encode_chunked (wide_rel ~backend:(Relation.Column_backend 8) 24) in
  let b = Bytes.of_string s in
  for i = 0 to Bytes.length b - 1 do
    let orig = Bytes.get b i in
    let bit = i mod 8 in
    Bytes.set b i (Char.chr (Char.code orig lxor (1 lsl bit)));
    (match Wire.decode_chunked (Bytes.to_string b) with
    | exception Wire.Corrupt _ -> ()
    | _ -> Alcotest.fail (Printf.sprintf "flip %d.%d accepted" i bit));
    Bytes.set b i orig
  done;
  (* and trailing garbage after a valid stream is rejected too *)
  match Wire.decode_chunked (Bytes.to_string b ^ "x") with
  | exception Wire.Corrupt _ -> ()
  | _ -> Alcotest.fail "trailing byte accepted"

let prop_chunked_roundtrip =
  QCheck2.Test.make ~name:"chunked codec roundtrips any relation" ~count:100
    QCheck2.Gen.(
      pair (list_size (int_range 0 80) (int_range (-50) 50)) (int_range 2 32))
    (fun (keys, chunk) ->
      let backend = Relation.Column_backend chunk in
      let r =
        match
          Relation.of_tuples ~backend wide_schema (List.map wide_tup keys)
        with
        | Ok r -> r
        | Error e -> failwith e
      in
      let r' = Wire.decode_chunked (Wire.encode_chunked r) in
      List.equal Tuple.equal (Relation.to_list r) (Relation.to_list r'))

(* -- archive payloads ------------------------------------------------------- *)

let check_history_equal expected actual =
  Alcotest.(check int) "versions" (History.length expected)
    (History.length actual);
  for i = 0 to History.length expected - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "version %d" i)
      true
      (Oracle.db_equal (History.version expected i) (History.version actual i))
  done

let test_archive_roundtrip () =
  check_history_equal history (Wire.decode_archive (Wire.encode_archive history))

(* The changed-only encoding rebuilds the same physical sharing: a version
   that left a relation untouched shares its slot after decoding too. *)
let test_archive_preserves_sharing () =
  let decoded = Wire.decode_archive (Wire.encode_archive history) in
  for i = 1 to History.length history - 1 do
    List.iter
      (fun name ->
        let shares h =
          Database.shares_relation
            ~old:(History.version h (i - 1))
            (History.version h i) name
        in
        Alcotest.(check bool)
          (Printf.sprintf "v%d %s shared" i name)
          (shares history) (shares decoded))
      (Database.names (History.version history i))
  done

let test_archive_naive_roundtrip () =
  check_history_equal history
    (Wire.decode_archive (Wire.encode_archive ~changed_only:false history))

let test_archive_sub_consumes_exactly () =
  let payload = Wire.encode_archive history in
  let (h, next) = Wire.decode_archive_sub (payload ^ "trailing") ~pos:0 in
  Alcotest.(check int) "next" (String.length payload) next;
  check_history_equal history h

let test_archive_garbage_raises () =
  List.iter
    (fun src ->
      match Wire.decode_archive src with
      | exception Wire.Corrupt { offset; _ } ->
          Alcotest.(check bool) "offset in bounds" true
            (offset >= 0 && offset <= String.length src)
      | _ -> Alcotest.fail "garbage decoded")
    [ ""; "FDBSNAP"; "FDBSNAP1"; "FDBSNAP1;;;"; "not an archive at all" ]

(* -- version deltas --------------------------------------------------------- *)

let test_version_delta_roundtrip () =
  for i = 1 to History.length history - 1 do
    let prev = History.version history (i - 1) in
    let after = History.version history i in
    let payload = Wire.encode_version ~prev after in
    let decoded = Wire.decode_version ~prev payload in
    Alcotest.(check bool)
      (Printf.sprintf "delta %d" i)
      true
      (Oracle.db_equal after decoded);
    (* untouched slots are shared with [prev], not copied *)
    List.iter
      (fun name ->
        if Database.shares_relation ~old:prev after name then
          Alcotest.(check bool)
            (Printf.sprintf "delta %d shares %s" i name)
            true
            (Database.shares_relation ~old:prev decoded name))
      (Database.names after)
  done

let test_version_delta_trailing_raises () =
  let prev = History.version history 0 in
  let payload = Wire.encode_version ~prev (History.version history 1) in
  match Wire.decode_version ~prev (payload ^ "x") with
  | exception Wire.Corrupt { offset; _ } ->
      Alcotest.(check int) "offset at trailing byte" (String.length payload)
        offset
  | _ -> Alcotest.fail "trailing byte accepted"

let () =
  Alcotest.run "wire"
    [
      ( "crc32c",
        [
          Alcotest.test_case "check value" `Quick test_crc32c_check_value;
          Alcotest.test_case "sensitivity" `Quick test_crc32c_sensitivity;
        ] );
      ( "frames",
        [
          Alcotest.test_case "roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "stream" `Quick test_frame_stream;
          Alcotest.test_case "prefixes torn" `Quick test_frame_prefixes_torn;
          Alcotest.test_case "bitflips torn" `Quick test_frame_bitflips_torn;
        ] );
      ( "archive",
        [
          Alcotest.test_case "roundtrip" `Quick test_archive_roundtrip;
          Alcotest.test_case "sharing preserved" `Quick
            test_archive_preserves_sharing;
          Alcotest.test_case "naive roundtrip" `Quick
            test_archive_naive_roundtrip;
          Alcotest.test_case "sub consumes exactly" `Quick
            test_archive_sub_consumes_exactly;
          Alcotest.test_case "garbage raises" `Quick test_archive_garbage_raises;
        ] );
      ( "chunked",
        [
          Alcotest.test_case "roundtrip all backends" `Quick
            test_chunked_roundtrip;
          Alcotest.test_case "prefixes corrupt" `Quick
            test_chunked_prefixes_corrupt;
          Alcotest.test_case "bitflips corrupt" `Quick
            test_chunked_bitflips_corrupt;
          QCheck_alcotest.to_alcotest prop_chunked_roundtrip;
        ] );
      ( "deltas",
        [
          Alcotest.test_case "roundtrip" `Quick test_version_delta_roundtrip;
          Alcotest.test_case "trailing raises" `Quick
            test_version_delta_trailing_raises;
        ] );
    ]
