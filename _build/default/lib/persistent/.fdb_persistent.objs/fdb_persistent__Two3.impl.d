lib/persistent/two3.ml: Hashtbl List Meter Ordered
