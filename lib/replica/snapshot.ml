module Wire = Fdb_wire.Wire

(* The codec itself lives in {!Fdb_wire.Wire} — one format for network and
   disk.  A snapshot is exactly one Checkpoint frame: the frame header
   carries the length, format version and CRC32c, the payload is the
   delta-encoded archive. *)

let encode history = Wire.frame ~kind:Wire.Checkpoint (Wire.encode_archive history)

let encode_naive history =
  Wire.frame ~kind:Wire.Checkpoint (Wire.encode_archive ~changed_only:false history)

let corrupt offset reason = raise (Wire.Corrupt { offset; reason })

let decode src =
  match Wire.read_frame src ~pos:0 with
  | Wire.End_of_input -> corrupt 0 "empty snapshot"
  | Wire.Torn { offset; reason } -> corrupt offset reason
  | Wire.Frame { kind = Wire.Delta; _ } ->
      corrupt 0 "expected a checkpoint frame, got a delta frame"
  | Wire.Frame { kind = Wire.Checkpoint; payload; next } ->
      (* Consume exactly one frame: anything after it is typed corruption,
         not silently accepted garbage. *)
      if next <> String.length src then
        corrupt next "trailing bytes after snapshot frame";
      Wire.decode_archive payload
