open Fdb_persistent

module TupleByKey = struct
  type t = Tuple.t

  let compare = Tuple.compare_key
end

module PL = Plist.Make (TupleByKey)
module AV = Avl.Make (TupleByKey)
module T23 = Two3.Make (TupleByKey)
module BT = Btree.Make (TupleByKey)

module CO = Column.Make (struct
  type t = Tuple.t

  type field = Value.t

  (* a tuple already is its field array; field 0 is the key *)
  let fields = Fun.id

  let of_fields = Fun.id

  let compare_field = Value.compare
end)

type backend =
  | List_backend
  | Avl_backend
  | Two3_backend
  | Btree_backend of int
  | Column_backend of int

let backend_name = function
  | List_backend -> "list"
  | Avl_backend -> "avl"
  | Two3_backend -> "two3"
  | Btree_backend b -> Printf.sprintf "btree-%d" b
  | Column_backend c -> Printf.sprintf "column-%d" c

type repr =
  | L of PL.t
  | A of AV.t
  | T of T23.t
  | B of BT.t
  | C of CO.t

type t = { schema : Schema.t; back : backend; repr : repr }

let create ?(backend = List_backend) schema =
  let repr =
    match backend with
    | List_backend -> L PL.empty
    | Avl_backend -> A AV.empty
    | Two3_backend -> T T23.empty
    | Btree_backend b -> B (BT.create ~branching:b ())
    | Column_backend c -> C (CO.create ~chunk:c ())
  in
  { schema; back = backend; repr }

let schema r = r.schema
let backend r = r.back

let size r =
  match r.repr with
  | L l -> PL.size l
  | A a -> AV.size a
  | T t -> T23.size t
  | B b -> BT.size b
  | C c -> CO.size c

let to_list r =
  match r.repr with
  | L l -> PL.to_list l
  | A a -> AV.to_list a
  | T t -> T23.to_list t
  | B b -> BT.to_list b
  | C c -> CO.to_list c

(* A probe tuple carrying only the key; compare_key ignores the rest. *)
let probe key = [| key |]

let mem_key r key =
  match r.repr with
  | L l -> PL.member (probe key) l
  | A a -> AV.member (probe key) a
  | T t -> T23.member (probe key) t
  | B b -> BT.member (probe key) b
  | C c -> CO.member (probe key) c

let find_key r key =
  match r.repr with
  | L l -> PL.find (fun tup -> Value.equal (Tuple.key tup) key) l
  | A a -> AV.find (probe key) a
  | T t -> T23.find (probe key) t
  | B b -> BT.find (probe key) b
  | C c -> CO.find (probe key) c

let insert ?meter r tuple =
  if not (Schema.matches r.schema tuple) then
    Error
      (Format.asprintf "tuple %a does not match schema %a" Tuple.pp tuple
         Schema.pp r.schema)
  else if mem_key r (Tuple.key tuple) then Ok (r, false)
  else
    let repr =
      match r.repr with
      | L l -> L (PL.insert ?meter tuple l)
      | A a -> A (AV.insert ?meter tuple a)
      | T t -> T (T23.insert ?meter tuple t)
      | B b -> B (BT.insert ?meter tuple b)
      | C c -> C (CO.insert ?meter tuple c)
    in
    Ok ({ r with repr }, true)

let delete_key ?meter r key =
  match r.repr with
  | L l ->
      let (l', found) = PL.delete ?meter (probe key) l in
      ({ r with repr = L l' }, found)
  | A a ->
      let (a', found) = AV.delete ?meter (probe key) a in
      ({ r with repr = A a' }, found)
  | T t ->
      let (t', found) = T23.delete ?meter (probe key) t in
      ({ r with repr = T t' }, found)
  | B b ->
      let (b', found) = BT.delete ?meter (probe key) b in
      ({ r with repr = B b' }, found)
  | C c ->
      let (c', found) = CO.delete ?meter (probe key) c in
      ({ r with repr = C c' }, found)

let select r pred = List.filter pred (to_list r)

let fold ?meter f acc r =
  match r.repr with
  | L l -> PL.fold ?meter f acc l
  | A a -> AV.fold ?meter f acc a
  | T t -> T23.fold ?meter f acc t
  | B b -> BT.fold ?meter f acc b
  | C c -> CO.fold ?meter f acc c

let iter f r =
  match r.repr with
  | L l -> PL.iter f l
  | A a -> AV.iter f a
  | T t -> T23.iter f t
  | B b -> BT.iter f b
  | C c -> CO.iter f c

type bound = Inclusive of Value.t | Exclusive of Value.t

let bound_tests ~lo ~hi =
  let ge_lo =
    match lo with
    | None -> fun _ -> true
    | Some (Inclusive v) -> fun tup -> Value.compare (Tuple.key tup) v >= 0
    | Some (Exclusive v) -> fun tup -> Value.compare (Tuple.key tup) v > 0
  and le_hi =
    match hi with
    | None -> fun _ -> true
    | Some (Inclusive v) -> fun tup -> Value.compare (Tuple.key tup) v <= 0
    | Some (Exclusive v) -> fun tup -> Value.compare (Tuple.key tup) v < 0
  in
  (ge_lo, le_hi)

let range_fold ?meter ?lo ?hi f acc r =
  let (ge_lo, le_hi) = bound_tests ~lo ~hi in
  match r.repr with
  | L l -> PL.range_fold ?meter ~ge_lo ~le_hi f acc l
  | A a -> AV.range_fold ?meter ~ge_lo ~le_hi f acc a
  | T t -> T23.range_fold ?meter ~ge_lo ~le_hi f acc t
  | B b -> BT.range_fold ?meter ~ge_lo ~le_hi f acc b
  | C c -> CO.range_fold ?meter ~ge_lo ~le_hi f acc c

let range ?meter ?lo ?hi r =
  List.rev (range_fold ?meter ?lo ?hi (fun acc tup -> tup :: acc) [] r)

let update ?meter ?lo ?hi r rewrite =
  (* Rewrites preserve the key, so the tuple order — and hence each
     backend's shape — is unchanged: a single structural traversal maps the
     touched tuples in place, shares every untouched subtree, and skips
     subtrees outside the optional key bounds entirely. *)
  let (ge_lo, le_hi) = bound_tests ~lo ~hi in
  let f tup =
    match rewrite tup with
    | None -> None
    | Some tup' ->
        if not (Value.equal (Tuple.key tup) (Tuple.key tup')) then
          invalid_arg "Relation.update: rewrite changed the key";
        Some tup'
  in
  match r.repr with
  | L l ->
      let (l', n) = PL.rewrite ?meter ~ge_lo ~le_hi f l in
      ((if n = 0 then r else { r with repr = L l' }), n)
  | A a ->
      let (a', n) = AV.rewrite ?meter ~ge_lo ~le_hi f a in
      ((if n = 0 then r else { r with repr = A a' }), n)
  | T t ->
      let (t', n) = T23.rewrite ?meter ~ge_lo ~le_hi f t in
      ((if n = 0 then r else { r with repr = T t' }), n)
  | B b ->
      let (b', n) = BT.rewrite ?meter ~ge_lo ~le_hi f b in
      ((if n = 0 then r else { r with repr = B b' }), n)
  | C c ->
      let (c', n) = CO.rewrite ?meter ~ge_lo ~le_hi f c in
      ((if n = 0 then r else { r with repr = C c' }), n)

let of_tuples ?backend schema tuples =
  match backend with
  | Some (Column_backend chunk) -> (
      (* bulk path: validate, then sort-and-pack in one pass — the
         sequential insert fold below would rebuild a chunk per tuple *)
      let rec validate = function
        | [] -> Ok ()
        | tup :: rest ->
            if Schema.matches schema tup then validate rest
            else
              Error
                (Format.asprintf "tuple %a does not match schema %a" Tuple.pp
                   tup Schema.pp schema)
      in
      match validate tuples with
      | Error e -> Error e
      | Ok () ->
          Ok
            {
              schema;
              back = Column_backend chunk;
              repr = C (CO.of_list ~chunk tuples);
            })
  | _ ->
      let rec go r = function
        | [] -> Ok r
        | tup :: rest -> (
            match insert r tup with
            | Ok (r', _) -> go r' rest
            | Error e -> Error e)
      in
      go (create ?backend schema) tuples

let shared_units ~old r =
  match (old.repr, r.repr) with
  | (L o, L n) -> PL.shared_cells ~old:o n
  | (A o, A n) -> AV.shared_nodes ~old:o n
  | (T o, T n) -> T23.shared_nodes ~old:o n
  | (B o, B n) -> BT.shared_pages ~old:o n
  | (C o, C n) -> CO.shared_chunks ~old:o n
  | _ -> invalid_arg "Relation.shared_units: backend mismatch"

let column_chunks r = match r.repr with C c -> CO.chunks_cols c | _ -> [||]

let pp ppf r =
  Format.fprintf ppf "@[<v>%a [%s, %d tuples]@]" Schema.pp r.schema
    (backend_name r.back) (size r)
