(** The pseudo-functional merge (paper §2.4).

    A merge takes several query streams and produces one interleaving; it
    is the {e only} non-functional ingredient of the whole system.  Each
    merged item carries the tag of its origin stream so the response can be
    routed back ("the tagging idea", §2.4); [choose] is the inverse
    selection a site applies to the shared medium (§3.1, Figure 3-1).

    Real merges are timing-nondeterministic.  Here every policy is a
    {e deterministic model} of one possible arrival order — which is all
    serializability requires: the system must be correct for every
    interleaving, and the property tests quantify over policies and seeds. *)

type 'a tagged = { tag : int; item : 'a }

type policy =
  | Arrival_order  (** round-robin across streams: one item per client turn *)
  | Eager_clients of int list
      (** clients drain in bursts of the given sizes (cyclically);
          non-positive sizes are ignored, and a list with none left
          behaves as [[1]] *)
  | Seeded of int  (** uniformly random nonempty stream each step *)
  | Concatenated  (** stream 0 entirely, then stream 1, ... (degenerate) *)

val merge : policy -> 'a list list -> 'a tagged list
(** Interleave the streams.  Every policy preserves the relative order of
    items within each input stream. *)

val merge_timed : (float * 'a) list list -> 'a tagged list
(** Merge by explicit arrival timestamps (nondecreasing within each
    stream); ties broken by stream index.  The physical-network model: the
    medium delivers in arrival order. *)

val choose : tag:int -> 'a tagged list -> 'a list
(** The site-selection function: the substream belonging to one origin. *)

val tags_used : 'a tagged list -> int list
(** Sorted distinct tags. *)

val pp :
  (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a tagged list -> unit
