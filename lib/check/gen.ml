open Fdb_relational
module Ast = Fdb_query.Ast

type spec = {
  clients : int;
  relations : int;
  queries_per_client : int;
  initial_tuples : int;
  key_range : int;
  seed : int;
}

let default_spec =
  {
    clients = 3;
    relations = 2;
    queries_per_client = 6;
    initial_tuples = 6;
    key_range = 12;
    seed = 0;
  }

type scenario = {
  spec : spec;
  schemas : Schema.t list;
  initial : (string * Tuple.t list) list;
  streams : Ast.query list list;
}

let check spec =
  if spec.clients < 1 then invalid_arg "Gen: clients < 1";
  if spec.relations < 1 then invalid_arg "Gen: relations < 1";
  if spec.queries_per_client < 0 then invalid_arg "Gen: queries_per_client < 0";
  if spec.initial_tuples < 0 then invalid_arg "Gen: initial_tuples < 0";
  if spec.key_range < 1 then invalid_arg "Gen: key_range < 1"

(* Fixed pools keep generated values small and collision-prone: conflicts
   between clients are the whole point of the oracle. *)
let extra_col_pool = [| "a"; "b"; "c" |]
let string_pool = [| "x"; "y"; "z"; "w"; "v" |]

(* Exact binary fractions: sums are exact, so aggregate responses depend
   only on relation *contents*, never on arrival order. *)
let real_pool = [| 0.5; 1.0; 1.5; 2.5; -0.5 |]

let pick rand arr = arr.(Random.State.int rand (Array.length arr))

let random_ctype rand =
  match Random.State.int rand 4 with
  | 0 -> Schema.CInt
  | 1 -> Schema.CStr
  | 2 -> Schema.CBool
  | _ -> Schema.CReal

let random_value rand ~key_range = function
  | Schema.CInt -> Value.Int (Random.State.int rand (key_range + 2) - 1)
  | Schema.CStr -> Value.Str (pick rand string_pool)
  | Schema.CBool -> Value.Bool (Random.State.bool rand)
  | Schema.CReal -> Value.Real (pick rand real_pool)

let random_schema rand i =
  let extras = 1 + Random.State.int rand (Array.length extra_col_pool) in
  Schema.make
    ~name:(Printf.sprintf "R%d" (i + 1))
    ~cols:
      (("key", Schema.CInt)
      :: List.init extras (fun j -> (extra_col_pool.(j), random_ctype rand)))

let random_key rand spec = Random.State.int rand spec.key_range

let random_tuple rand spec schema key =
  Tuple.make
    (Value.Int key
    :: List.map
         (fun (_, ct) -> random_value rand ~key_range:spec.key_range ct)
         (List.tl (Schema.columns schema)))

let initial_for rand spec schema =
  (* A random subset of the key space, distinct keys. *)
  let keys = Array.init spec.key_range (fun i -> i) in
  for i = spec.key_range - 1 downto 1 do
    let j = Random.State.int rand (i + 1) in
    let tmp = keys.(i) in
    keys.(i) <- keys.(j);
    keys.(j) <- tmp
  done;
  let n = min spec.initial_tuples spec.key_range in
  List.init n (fun i -> random_tuple rand spec schema keys.(i))

let random_cmp rand =
  match Random.State.int rand 6 with
  | 0 -> Ast.Eq
  | 1 -> Ast.Ne
  | 2 -> Ast.Lt
  | 3 -> Ast.Le
  | 4 -> Ast.Gt
  | _ -> Ast.Ge

let rec random_pred rand spec schema depth =
  let leaf () =
    if Random.State.int rand 8 = 0 then Ast.True
    else
      let cols = Array.of_list (Schema.columns schema) in
      let (name, ct) = pick rand cols in
      Ast.Cmp (name, random_cmp rand, random_value rand ~key_range:spec.key_range ct)
  in
  if depth = 0 then leaf ()
  else
    match Random.State.int rand 6 with
    | 0 ->
        Ast.And
          ( random_pred rand spec schema (depth - 1),
            random_pred rand spec schema (depth - 1) )
    | 1 ->
        Ast.Or
          ( random_pred rand spec schema (depth - 1),
            random_pred rand spec schema (depth - 1) )
    | 2 -> Ast.Not (random_pred rand spec schema (depth - 1))
    | _ -> leaf ()

let non_key_columns schema = List.tl (Schema.columns schema)

let numeric_columns schema =
  List.filter
    (fun (_, ct) -> match ct with Schema.CInt | Schema.CReal -> true | _ -> false)
    (Schema.columns schema)

let random_query rand spec schemas =
  let schemas = Array.of_list schemas in
  let schema = pick rand schemas in
  let rel =
    (* A sliver of unknown-relation probes keeps the Failed path honest. *)
    if Random.State.int rand 25 = 0 then "Zz" else Schema.name schema
  in
  let roll = Random.State.int rand 100 in
  if roll < 25 then
    Ast.Insert
      { rel;
        values = Array.to_list (random_tuple rand spec schema (random_key rand spec)) }
  else if roll < 45 then Ast.Find { rel; key = Value.Int (random_key rand spec) }
  else if roll < 55 then Ast.Delete { rel; key = Value.Int (random_key rand spec) }
  else if roll < 67 then
    let cols =
      let all = List.map fst (Schema.columns schema) in
      let subset = List.filter (fun _ -> Random.State.bool rand) all in
      if subset = [] then None else Some subset
    in
    Ast.Select { rel; cols; where = random_pred rand spec schema 2 }
  else if roll < 75 then
    Ast.Count { rel; where = random_pred rand spec schema 1 }
  else if roll < 85 then
    let agg =
      match Random.State.int rand 3 with 0 -> Ast.Sum | 1 -> Ast.Min | _ -> Ast.Max
    in
    let col =
      (* Prefer a numeric column; occasionally aggregate a non-numeric one
         to exercise the deterministic Failed response. *)
      match numeric_columns schema with
      | (c, _) :: _ when Random.State.int rand 4 > 0 -> c
      | _ -> fst (pick rand (Array.of_list (Schema.columns schema)))
    in
    Ast.Aggregate { agg; rel; col; where = random_pred rand spec schema 1 }
  else if roll < 95 then
    let (col, ct) = pick rand (Array.of_list (non_key_columns schema)) in
    Ast.Update
      { rel;
        col;
        value = random_value rand ~key_range:spec.key_range ct;
        where = random_pred rand spec schema 1 }
  else
    let right_schema = pick rand schemas in
    let (lc, lct) = pick rand (Array.of_list (Schema.columns schema)) in
    let rc =
      (* Prefer a type-compatible right column so joins sometimes match. *)
      match List.find_opt (fun (_, ct) -> ct = lct) (Schema.columns right_schema) with
      | Some (c, _) -> c
      | None -> fst (pick rand (Array.of_list (Schema.columns right_schema)))
    in
    Ast.Join { left = Schema.name schema; right = Schema.name right_schema; on = (lc, rc) }

let generate spec =
  check spec;
  let rand = Random.State.make [| spec.seed; 0x5eed |] in
  let schemas = List.init spec.relations (random_schema rand) in
  let initial =
    List.map (fun s -> (Schema.name s, initial_for rand spec s)) schemas
  in
  let streams =
    List.init spec.clients (fun _ ->
        List.init spec.queries_per_client (fun _ -> random_query rand spec schemas))
  in
  { spec; schemas; initial; streams }

let initial_db s =
  let db = Database.create s.schemas in
  List.fold_left
    (fun db (rel, tuples) ->
      match Database.load db ~rel tuples with
      | Ok db -> db
      | Error e -> invalid_arg ("Gen.initial_db: " ^ e))
    db s.initial

let query_count s =
  List.fold_left (fun acc stream -> acc + List.length stream) 0 s.streams

let pp_streams ppf streams =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf (tag, q) ->
         Format.fprintf ppf "client %d: %s" tag (Ast.to_string q)))
    (List.concat
       (List.mapi (fun tag stream -> List.map (fun q -> (tag, q)) stream) streams))

let pp_scenario ppf s =
  Format.fprintf ppf "@[<v>seed %d: %d clients x %d queries, %d relations@,%a@]"
    s.spec.seed s.spec.clients s.spec.queries_per_client s.spec.relations
    pp_streams s.streams
