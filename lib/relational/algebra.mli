(** Relational-algebra operators over materialized tuple lists.

    These are the pure building blocks used by query translation; the
    lenient engine versions (which pipeline) live in the core library. *)

val select : (Tuple.t -> bool) -> Tuple.t list -> Tuple.t list

val project : int list -> Tuple.t list -> Tuple.t list
(** Keep the given column indices, in the given order.
    @raise Invalid_argument on an out-of-range index. *)

val join :
  ?algo:[ `Hash | `Nested ] ->
  left_col:int ->
  right_col:int ->
  Tuple.t list ->
  Tuple.t list ->
  Tuple.t list
(** Natural join on one column pair; result tuples are the concatenation of
    the matching pairs, ordered by the left side (ties in the right side's
    order).  [`Hash] (default) builds a hash table on the right input and
    probes it with the left — O(n+m+out) — and produces exactly the same
    output as the O(n·m) [`Nested] loop, which is kept for ablation. *)

val union : Tuple.t list -> Tuple.t list -> Tuple.t list
(** Set union (by full-tuple equality), result sorted. *)

val difference : Tuple.t list -> Tuple.t list -> Tuple.t list
(** Elements of the first list absent from the second, preserving the first
    list's order and duplicates.  Sort-merge: O((n+m) log (n+m)). *)

val intersection : Tuple.t list -> Tuple.t list -> Tuple.t list
(** Elements of the first list present in the second, preserving the first
    list's order and duplicates.  Sort-merge: O((n+m) log (n+m)). *)

val product : Tuple.t list -> Tuple.t list -> Tuple.t list
