(** Resizable integer vector (OCaml 5.1 has no [Dynarray]); used by the
    engine to record per-cycle ply widths without list-reversal churn. *)

type t

val create : unit -> t

val push : t -> int -> unit

val length : t -> int

val get : t -> int -> int
(** [get v i] is the [i]th element. @raise Invalid_argument if out of range. *)

val to_array : t -> int array

val fold : (int -> int -> int) -> int -> t -> int
(** [fold f init v] folds [f] over the elements left to right. *)

val max_value : t -> int
(** Largest element, or 0 when empty. *)

val sum : t -> int
