(** Counterexample minimization.

    When a sweep seed fails the oracle, the raw scenario is dozens of
    queries across several clients; almost all of them are noise.  The
    shrinker greedily minimizes the client streams against a caller-supplied
    predicate ("does this smaller input still fail?") by re-running the
    failing pipeline: whole clients are dropped first, then single queries,
    then each surviving query is replaced by strictly simpler variants
    (predicates collapsed to [True], values shrunk toward zero / the empty
    string, compound reads demoted to counts).

    Every accepted step strictly decreases a well-founded measure, so
    minimization terminates; the result is a local minimum — removing any
    one client or query, or simplifying any one query, makes the failure
    disappear. *)

val query_count : Fdb_query.Ast.query list list -> int

val measure : Fdb_query.Ast.query list list -> int
(** The well-founded size the shrinker descends on.  Exposed for tests. *)

val candidates :
  Fdb_query.Ast.query list list -> Fdb_query.Ast.query list list list
(** One shrink step's worth of candidate inputs, in the order the greedy
    loop tries them (dropped clients, then dropped queries, then simplified
    queries).  Exposed for the soundness tests: every candidate must be
    strictly smaller under {!val:measure} and still well formed. *)

val minimize :
  still_failing:(Fdb_query.Ast.query list list -> bool) ->
  Fdb_query.Ast.query list list ->
  Fdb_query.Ast.query list list
(** [minimize ~still_failing streams] assumes [still_failing streams];
    returns a minimal failing input.  [still_failing] must be
    deterministic (re-run the pipeline with the same seeds). *)
