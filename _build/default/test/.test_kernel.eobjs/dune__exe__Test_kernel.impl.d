test/test_kernel.ml: Alcotest Array Engine Fdb_kernel List Option QCheck2 QCheck_alcotest Random
