lib/kernel/vec.ml: Array
