lib/txn/history.mli: Database Fdb_query Fdb_relational Txn
