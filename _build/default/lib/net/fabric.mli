(** Store-and-forward message transport over a {!Topology.t}.

    Point-to-point topologies: a message advances one hop per cycle; each
    directed link forwards at most [link_capacity] messages per cycle, FIFO.
    Shared bus: the medium delivers at most [link_capacity] messages per
    cycle in arrival order (the "one large merge pseudo-function" of
    Figure 3-1).

    The fabric is deterministic: links are serviced in a fixed order. *)

type 'a t

type stats = {
  sent : int;  (** messages injected *)
  delivered : int;  (** messages that reached their destination *)
  hops : int;  (** total link traversals *)
  max_in_flight : int;
}

val create : ?link_capacity:int -> Topology.t -> 'a t
(** Default capacity: 1 message per link per cycle. *)

val topology : 'a t -> Topology.t

val send : 'a t -> src:int -> dst:int -> 'a -> unit
(** Inject a message.  [src = dst] delivers on the next {!val:step} (local
    hand-off still takes a cycle, keeping timing uniform). *)

val broadcast : 'a t -> src:int -> 'a -> unit
(** Send a copy to every other node (the primary pushing tagged responses
    onto the medium, Figure 3-1). *)

val step : 'a t -> (int * 'a) list
(** Advance one cycle; returns [(dst, payload)] deliveries, in deterministic
    order. *)

val in_flight : 'a t -> int

val stats : 'a t -> stats
