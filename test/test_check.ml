(* The correctness harness checking itself: generator determinism, the
   serializability oracle over seeded sweeps (every merge policy and the
   fault-injected fabric), oracle self-tests by mutation (a swapped pair of
   dependent queries must be rejected), and shrinker minimality. *)

open Fdb_relational
module Gen = Fdb_check.Gen
module Oracle = Fdb_check.Oracle
module Shrink = Fdb_check.Shrink
module Sim = Fdb_check.Sim
module Merge = Fdb_merge.Merge
module Ast = Fdb_query.Ast

let q = Fdb_query.Parser.parse_exn

let streams_to_strings = List.map (List.map Ast.to_string)

let policies seed =
  [ Merge.Arrival_order;
    Merge.Eager_clients [ 1; 2; 3 ];
    Merge.Seeded ((7 * seed) + 1);
    Merge.Concatenated ]

(* -- generator ---------------------------------------------------------- *)

let test_gen_deterministic () =
  let spec = { Gen.default_spec with seed = 11 } in
  let a = Gen.generate spec and b = Gen.generate spec in
  Alcotest.(check (list (list string)))
    "same spec, same streams"
    (streams_to_strings a.Gen.streams)
    (streams_to_strings b.Gen.streams);
  Alcotest.(check int) "same initial size"
    (Database.total_tuples (Gen.initial_db a))
    (Database.total_tuples (Gen.initial_db b));
  let c = Gen.generate { spec with seed = 12 } in
  Alcotest.(check bool) "different seed, different streams" false
    (streams_to_strings a.Gen.streams = streams_to_strings c.Gen.streams)

let test_gen_shape () =
  for seed = 0 to 9 do
    let spec =
      { Gen.clients = 4; relations = 3; queries_per_client = 5;
        initial_tuples = 4; key_range = 10; seed }
    in
    let sc = Gen.generate spec in
    Alcotest.(check int) "streams per client" 4 (List.length sc.Gen.streams);
    List.iter
      (fun s ->
        Alcotest.(check int) "queries per stream" 5 (List.length s))
      sc.Gen.streams;
    Alcotest.(check int) "schemas" 3 (List.length sc.Gen.schemas);
    Alcotest.(check int) "query_count" 20 (Gen.query_count sc);
    (* the initial load must be accepted by the reference semantics *)
    ignore (Gen.initial_db sc)
  done

(* -- oracle: seeded sweeps over every merge policy ----------------------- *)

(* 50 seeds x 4 policies = 200 scenarios: every deterministic merge of a
   correct sequential execution must be judged serializable, and the
   returned witness must itself be a merge (per-stream order preserved,
   every query present exactly once). *)
let test_oracle_sweep () =
  for seed = 0 to 49 do
    let sc = Gen.generate { Gen.default_spec with seed } in
    let initial = Gen.initial_db sc in
    List.iter
      (fun policy ->
        let merged = Merge.merge policy sc.Gen.streams in
        match Oracle.check_merged ~initial ~streams:sc.Gen.streams merged with
        | Oracle.Serializable witness ->
            Alcotest.(check int) "witness covers every query"
              (Gen.query_count sc) (List.length witness);
            List.iteri
              (fun tag stream ->
                let sub =
                  List.filter_map
                    (fun (t, query) -> if t = tag then Some query else None)
                    witness
                in
                Alcotest.(check (list string))
                  (Printf.sprintf "seed %d: witness preserves stream %d" seed
                     tag)
                  (List.map Ast.to_string stream)
                  (List.map Ast.to_string sub))
              sc.Gen.streams
        | v ->
            Alcotest.failf "seed %d rejected a correct execution: %a" seed
              Oracle.pp_verdict v)
      (policies seed)
  done

(* -- oracle self-test by mutation ---------------------------------------- *)

let tiny_db () =
  Database.create
    [ Schema.make ~name:"R" ~cols:[ ("key", Schema.CInt); ("v", Schema.CStr) ] ]

(* Execute a client's insert/find pair in the wrong order: the observation
   attributes the Found None to the stream position holding the insert, so
   no interleaving can explain it.  This is exactly the bug class the
   oracle exists to catch; if this passes, the oracle is vacuous. *)
let test_mutation_rejected () =
  let initial = tiny_db () in
  let insert = q "insert (7, \"x\") into R" and find = q "find 7 in R" in
  let streams = [ [ insert; find ] ] in
  let good =
    Oracle.observe ~initial ~clients:1
      [ { Merge.tag = 0; item = insert }; { Merge.tag = 0; item = find } ]
  in
  Alcotest.(check bool) "faithful execution accepted" true
    (Oracle.accepted (Oracle.check ~initial ~streams good));
  let swapped =
    Oracle.observe ~initial ~clients:1
      [ { Merge.tag = 0; item = find }; { Merge.tag = 0; item = insert } ]
  in
  (match Oracle.check ~initial ~streams swapped with
  | Oracle.Not_serializable { total; _ } ->
      Alcotest.(check int) "counted both queries" 2 total
  | v ->
      Alcotest.failf "mutated execution not rejected: %a" Oracle.pp_verdict v)

(* Cross-client flavour: client 1's delete observed before client 0's
   insert of the same key, while the responses claim the opposite. *)
let test_mutation_rejected_cross_client () =
  let initial = tiny_db () in
  let insert = q "insert (3, \"y\") into R" and delete = q "delete 3 from R" in
  let streams = [ [ insert ]; [ delete ] ] in
  let obs =
    { Oracle.responses =
        [ [ Fdb_txn.Txn.Inserted true ]; [ Fdb_txn.Txn.Deleted false ] ];
      final =
        (match Database.insert initial ~rel:"R"
                 (Tuple.make [ Value.Int 3; Value.Str "y" ])
         with
        | Ok (db, _) -> db
        | Error e -> Alcotest.fail e) }
  in
  (* Deleted false is explained by delete-before-insert, and the final
     database (holding key 3) agrees: serializable. *)
  Alcotest.(check bool) "delete-then-insert story accepted" true
    (Oracle.accepted (Oracle.check ~initial ~streams obs));
  let impossible =
    { obs with
      Oracle.responses =
        [ [ Fdb_txn.Txn.Inserted true ]; [ Fdb_txn.Txn.Deleted true ] ] }
  in
  (* Deleted true forces insert-then-delete, but the final database still
     holds the tuple: no interleaving explains both. *)
  Alcotest.(check bool) "contradictory observation rejected" false
    (Oracle.accepted (Oracle.check ~initial ~streams impossible))

let test_check_validates_shape () =
  let initial = tiny_db () in
  Alcotest.check_raises "ragged responses rejected"
    (Invalid_argument "Oracle.check: stream/response list counts differ")
    (fun () ->
      ignore
        (Oracle.check ~initial
           ~streams:[ [ q "count R" ]; [ q "count R" ] ]
           { Oracle.responses = [ [ Fdb_txn.Txn.Counted 0 ] ]; final = initial }))

(* -- shrinker ------------------------------------------------------------ *)

let test_shrink_terminates_at_local_minimum () =
  let streams =
    [ List.map q [ "insert (1, \"a\") into R"; "count R"; "find 1 in R" ];
      List.map q [ "count R"; "delete 1 from R" ] ]
  in
  (* Predicate: any nonempty input "fails" — the minimum is one query. *)
  let still_failing ss = Shrink.query_count ss >= 1 in
  let w = Shrink.minimize ~still_failing streams in
  Alcotest.(check int) "one query survives" 1 (Shrink.query_count w);
  Alcotest.(check bool) "measure strictly decreased" true
    (Shrink.measure w < Shrink.measure streams)

(* Plant a real violation — a pipeline that swaps client 0's first two
   queries before merging — in a haystack of commuting reads, and require
   the shrinker to cut it down to the dependent pair. *)
let test_shrink_planted_violation () =
  let initial = tiny_db () in
  let streams =
    [ List.map q
        [ "insert (99, \"p\") into R"; "find 99 in R"; "count R"; "count R" ];
      List.map q [ "count R"; "count R"; "count R" ];
      List.map q [ "count R"; "count R" ] ]
  in
  let swap_first_two = function
    | (a :: b :: rest) :: others -> (b :: a :: rest) :: others
    | ss -> ss
  in
  let still_failing ss =
    let merged = Merge.merge Merge.Arrival_order (swap_first_two ss) in
    not (Oracle.accepted (Oracle.check_merged ~initial ~streams:ss merged))
  in
  Alcotest.(check bool) "planted violation fails" true (still_failing streams);
  let w = Shrink.minimize ~still_failing streams in
  Alcotest.(check bool)
    (Format.asprintf "shrunk to <= 3 queries, got:@.%a" Gen.pp_streams w)
    true
    (Shrink.query_count w <= 3);
  Alcotest.(check bool) "witness still fails" true (still_failing w);
  Alcotest.(check bool) "witness strictly smaller" true
    (Shrink.measure w < Shrink.measure streams)

(* -- differential fuzz: lenient pipeline vs the oracle -------------------- *)

module Pipeline = Fdb.Pipeline
module Machine = Fdb_rediflow.Machine
module Topology = Fdb_net.Topology
module Txn = Fdb_txn.Txn

(* Joins are substituted before the differential run: the pipeline
   enumerates join pairs in physical scan order while the reference
   hash-joins, so [Joined]'s tuple order is representation-dependent.
   Every other query kind has a canonical answer. *)
let dejoin = function
  | Ast.Join { left; _ } -> Ast.Count { rel = left; where = Ast.True }
  | q -> q

let to_txn_response = function
  | Pipeline.Inserted b -> Txn.Inserted b
  | Pipeline.Found [] -> Txn.Found None
  | Pipeline.Found (t :: _) -> Txn.Found (Some t)
  | Pipeline.Deleted n -> Txn.Deleted (n > 0)
  | Pipeline.Selected ts -> Txn.Selected ts
  | Pipeline.Counted n -> Txn.Counted n
  | Pipeline.Aggregated v -> Txn.Aggregated v
  | Pipeline.Updated n -> Txn.Updated n
  | Pipeline.Joined ts -> Txn.Joined ts
  | Pipeline.Failed s -> Txn.Failed s

let db_of_contents schemas contents =
  List.fold_left
    (fun db (rel, tuples) ->
      match Database.load db ~rel tuples with
      | Ok db -> db
      | Error e -> Alcotest.fail e)
    (Database.create schemas) contents

let fuzz_modes =
  [ ("ideal", Pipeline.Ideal);
    ( "machine",
      Pipeline.On_machine (Machine.default_config (Topology.hypercube 2)) ) ]

(* 50 seeds x 2 machine modes x 2 semantics = 200 scenarios pitting the
   lenient pipeline against an independent implementation.  Prepend (the
   1985 multiset semantics) has no [Txn] reference, so it is checked
   against the pipeline's own sequential meaning; Ordered_unique runs the
   full differential: convert the pipeline's responses and final database
   into an {!Oracle.observation} and demand a serial witness. *)
let test_differential_fuzz () =
  let scenarios = ref 0 in
  for seed = 0 to 49 do
    let sc = Gen.generate { Gen.default_spec with seed } in
    let streams = List.map (List.map dejoin) sc.Gen.streams in
    let spec =
      { Pipeline.schemas = sc.Gen.schemas; initial = sc.Gen.initial }
    in
    let tagged =
      List.map
        (fun { Merge.tag; item } -> (tag, item))
        (Merge.merge (Merge.Seeded (seed + 1)) streams)
    in
    List.iter
      (fun (mname, mode) ->
        (match
           Pipeline.check_serializable ~semantics:Pipeline.Prepend ~mode spec
             tagged
         with
        | Ok true -> incr scenarios
        | Ok false ->
            Alcotest.failf "seed %d (%s, prepend): responses diverge" seed mname
        | Error e ->
            Alcotest.failf "seed %d (%s, prepend): %s" seed mname e);
        let report =
          Pipeline.run ~semantics:Pipeline.Ordered_unique ~mode spec tagged
        in
        let obs =
          { Oracle.responses =
              List.init (List.length streams) (fun tag ->
                  List.map to_txn_response (Pipeline.responses_for ~tag report));
            final = db_of_contents sc.Gen.schemas report.Pipeline.final_db }
        in
        match Oracle.check ~initial:(Gen.initial_db sc) ~streams obs with
        | Oracle.Serializable _ -> incr scenarios
        | v ->
            Alcotest.failf "seed %d (%s, ordered): %a" seed mname
              Oracle.pp_verdict v)
      fuzz_modes
  done;
  Alcotest.(check int) "200 scenarios exercised" 200 !scenarios

(* -- shrinker soundness --------------------------------------------------- *)

(* Every candidate one shrink step proposes must be strictly smaller under
   the measure (termination) and still well formed: each query must print
   to concrete syntax the parser maps back to the same query (so any
   candidate can be re-run and reported). *)
let test_shrink_candidates_sound () =
  for seed = 0 to 9 do
    let sc = Gen.generate { Gen.default_spec with seed } in
    let streams = sc.Gen.streams in
    let m = Shrink.measure streams in
    let cands = Shrink.candidates streams in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: shrink step proposes candidates" seed)
      true (cands <> []);
    List.iter
      (fun cand ->
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: candidate strictly smaller" seed)
          true
          (Shrink.measure cand < m);
        List.iter
          (List.iter (fun query ->
               let s = Ast.to_string query in
               Alcotest.(check string)
                 (Printf.sprintf "seed %d: candidate query roundtrips" seed)
                 s
                 (Ast.to_string (q s))))
          cand)
      cands
  done

(* A fixed failing predicate over a generated scenario: minimization must
   be deterministic (same minimum twice), end at a local minimum (no
   candidate of the result still fails), and the result must still fail. *)
let test_shrink_known_seed_minimal () =
  let sc = Gen.generate { Gen.default_spec with seed = 17 } in
  let still_failing ss = List.exists (List.exists Ast.is_update) ss in
  Alcotest.(check bool) "seed 17 contains an update query" true
    (still_failing sc.Gen.streams);
  let w1 = Shrink.minimize ~still_failing sc.Gen.streams in
  let w2 = Shrink.minimize ~still_failing sc.Gen.streams in
  Alcotest.(check (list (list string))) "deterministic minimum"
    (streams_to_strings w1) (streams_to_strings w2);
  Alcotest.(check bool) "minimum still fails" true (still_failing w1);
  Alcotest.(check int) "minimum is one query" 1 (Shrink.query_count w1);
  Alcotest.(check bool) "local minimum: no candidate still fails" true
    (List.for_all
       (fun cand -> not (still_failing cand))
       (Shrink.candidates w1))

(* -- fault-injecting simulation ------------------------------------------ *)

(* 25 seeds through drops, duplicates and reorders: the primary's
   reassembled execution must stay serial-equivalent and lose nothing. *)
let test_sim_sweep () =
  for seed = 0 to 24 do
    let sc = Gen.generate { Gen.default_spec with seed } in
    let o = Sim.run ~seed sc in
    (match o.Sim.verdict with
    | Oracle.Serializable _ -> ()
    | v ->
        Alcotest.failf "seed %d: fault-injected run rejected: %a" seed
          Oracle.pp_verdict v);
    Alcotest.(check int)
      (Printf.sprintf "seed %d: every query committed" seed)
      (Gen.query_count sc) o.Sim.applied
  done

let test_sim_faults_actually_fire () =
  (* Across the sweep the injected faults must actually exercise their
     code paths, else the harness is quietly testing a perfect network. *)
  let dup = ref 0 and delayed = ref 0 and drops = ref 0 in
  for seed = 0 to 24 do
    let sc = Gen.generate { Gen.default_spec with seed } in
    let o = Sim.run ~seed sc in
    dup := !dup + o.Sim.dup_suppressed;
    delayed := !delayed + o.Sim.delayed;
    drops := !drops + o.Sim.net.Fdb_net.Reliable.drops
  done;
  Alcotest.(check bool) "duplicates were suppressed" true (!dup > 0);
  Alcotest.(check bool) "queries took the reorder path" true (!delayed > 0);
  Alcotest.(check bool) "the medium dropped frames" true (!drops > 0)

let test_sim_deterministic () =
  let sc = Gen.generate { Gen.default_spec with seed = 5 } in
  let a = Sim.run ~seed:5 sc and b = Sim.run ~seed:5 sc in
  Alcotest.(check int) "applied" a.Sim.applied b.Sim.applied;
  Alcotest.(check int) "dup_suppressed" a.Sim.dup_suppressed b.Sim.dup_suppressed;
  Alcotest.(check int) "delayed" a.Sim.delayed b.Sim.delayed;
  Alcotest.(check bool) "net stats" true (a.Sim.net = b.Sim.net);
  Alcotest.(check bool) "verdicts agree" (Oracle.accepted a.Sim.verdict)
    (Oracle.accepted b.Sim.verdict)

let test_sim_no_faults () =
  let sc = Gen.generate { Gen.default_spec with seed = 3 } in
  let o = Sim.run ~faults:Sim.no_faults ~seed:3 sc in
  Alcotest.(check bool) "clean network serializable" true
    (Oracle.accepted o.Sim.verdict);
  Alcotest.(check int) "nothing suppressed" 0 o.Sim.dup_suppressed;
  Alcotest.(check int) "nothing delayed" 0 o.Sim.delayed;
  Alcotest.(check int) "nothing dropped" 0 o.Sim.net.Fdb_net.Reliable.drops

let () =
  Alcotest.run "check"
    [ ( "gen",
        [ Alcotest.test_case "deterministic in the spec" `Quick
            test_gen_deterministic;
          Alcotest.test_case "shape follows the spec" `Quick test_gen_shape ] );
      ( "oracle",
        [ Alcotest.test_case "200 seeded scenarios, all policies" `Slow
            test_oracle_sweep;
          Alcotest.test_case "mutation: swapped dependent pair" `Quick
            test_mutation_rejected;
          Alcotest.test_case "mutation: contradictory cross-client" `Quick
            test_mutation_rejected_cross_client;
          Alcotest.test_case "ragged observation rejected" `Quick
            test_check_validates_shape ] );
      ( "differential",
        [ Alcotest.test_case "200 scenarios: pipeline vs oracle" `Slow
            test_differential_fuzz ] );
      ( "shrink",
        [ Alcotest.test_case "terminates at a local minimum" `Quick
            test_shrink_terminates_at_local_minimum;
          Alcotest.test_case "planted violation -> <= 3 queries" `Quick
            test_shrink_planted_violation;
          Alcotest.test_case "candidates smaller and well-formed" `Quick
            test_shrink_candidates_sound;
          Alcotest.test_case "known seed shrinks deterministically" `Quick
            test_shrink_known_seed_minimal ] );
      ( "sim",
        [ Alcotest.test_case "25 fault-injected seeds" `Slow test_sim_sweep;
          Alcotest.test_case "faults actually fire" `Slow
            test_sim_faults_actually_fire;
          Alcotest.test_case "deterministic in the seed" `Quick
            test_sim_deterministic;
          Alcotest.test_case "clean network" `Quick test_sim_no_faults ] ) ]
