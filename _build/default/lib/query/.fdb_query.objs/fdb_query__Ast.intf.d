lib/query/ast.mli: Fdb_relational Format Value
