(** The merge pseudo-function at the engine level (paper §2.4, §3.1).

    [merge] is an arbiter: it chases every input stream's cells and appends
    each element to the single output stream {e in the order the cells
    become available} — timing-dependent, hence not a function, exactly as
    the paper says.  Within one input the order is always preserved; across
    inputs the interleaving is decided by production timing (and, on equal
    cycles, by deterministic scheduler order, which is what makes runs
    reproducible).

    Elements are tagged with their origin stream so responses can be routed
    back; {!val:choose} is the inverse selection a site applies to the
    medium (Figure 3-1). *)

open Fdb_kernel

val merge : Engine.t -> ?label:string -> 'a Llist.t list -> (int * 'a) Llist.t
(** One arbiter continuation per arriving cell; the output cell for an
    element is available the cycle after the element itself. *)

val choose : Engine.t -> ?label:string -> tag:int -> (int * 'a) Llist.t -> 'a Llist.t
(** The substream of one origin, untagged. *)
