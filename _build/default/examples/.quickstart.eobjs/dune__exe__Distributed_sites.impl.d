examples/distributed_sites.ml: Cluster Fdb Fdb_kernel Fdb_net Fdb_query Fdb_rediflow Fdb_relational Format List Pipeline Printf Schema Tuple Value
