(** Tuples of data items.  By convention, component 0 is the key used for
    [find]/[delete] by key and for relation ordering. *)

type t = Value.t array

val make : Value.t list -> t

val key : t -> Value.t
(** @raise Invalid_argument on the empty tuple. *)

val arity : t -> int

val get : t -> int -> Value.t

val set : t -> int -> Value.t -> t
(** Copy with one component replaced. *)

val compare : t -> t -> int
(** Lexicographic, so key-first. *)

val equal : t -> t -> bool

val compare_key : t -> t -> int
(** Key components only. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
