(* Unit and property tests for the lenient-evaluation kernel. *)

open Fdb_kernel

let run_ideal f =
  let eng = Engine.create () in
  let out = f eng in
  let stats = Engine.run eng in
  (out, stats)

(* -- ivar basics -------------------------------------------------------- *)

let test_put_then_await () =
  let (got, stats) =
    run_ideal (fun eng ->
        let iv = Engine.ivar eng in
        let got = ref None in
        Engine.spawn eng (fun () -> Engine.put iv 42);
        Engine.await iv (fun v -> got := Some v);
        got)
  in
  Alcotest.(check (option int)) "value seen" (Some 42) !got;
  Alcotest.(check int) "no orphans" 0 stats.Engine.orphans

let test_await_already_full () =
  let (got, _) =
    run_ideal (fun eng ->
        let iv = Engine.full eng "hello" in
        let got = ref "" in
        Engine.await iv (fun v -> got := v);
        got)
  in
  Alcotest.(check string) "value seen" "hello" !got

let test_double_put_raises () =
  let eng = Engine.create () in
  let iv = Engine.ivar eng in
  Engine.spawn eng (fun () -> Engine.put iv 1);
  Engine.spawn eng (fun () ->
      Alcotest.check_raises "second put" (Engine.Double_put
        "Engine.put: cell already full") (fun () -> Engine.put iv 2));
  ignore (Engine.run eng)

let test_multiple_waiters_in_order () =
  let (seen, _) =
    run_ideal (fun eng ->
        let iv = Engine.ivar eng in
        let seen = ref [] in
        for i = 1 to 5 do
          Engine.await iv (fun v -> seen := (i, v) :: !seen)
        done;
        Engine.spawn eng (fun () -> Engine.put iv 9);
        seen)
  in
  Alcotest.(check (list (pair int int)))
    "waiters woken in registration order"
    [ (1, 9); (2, 9); (3, 9); (4, 9); (5, 9) ]
    (List.rev !seen)

let test_orphan_detection () =
  let eng = Engine.create () in
  let iv : int Engine.ivar = Engine.ivar eng in
  Engine.await iv (fun _ -> ());
  Engine.await iv (fun _ -> ());
  let stats = Engine.run eng in
  Alcotest.(check int) "two orphans" 2 stats.Engine.orphans

let test_peek () =
  let eng = Engine.create () in
  let iv = Engine.ivar eng in
  Alcotest.(check (option int)) "empty" None (Engine.peek iv);
  Engine.spawn eng (fun () -> Engine.put iv 7);
  ignore (Engine.run eng);
  Alcotest.(check (option int)) "full" (Some 7) (Engine.peek iv);
  Alcotest.(check bool) "is_full" true (Engine.is_full iv)

(* -- task-graph shapes: known ply profiles ------------------------------ *)

(* A chain of n dependent tasks must take n cycles with ply 1. *)
let test_chain_ply () =
  let n = 20 in
  let eng = Engine.create () in
  let rec chain i prev =
    if i < n then begin
      let next = Engine.ivar eng in
      Engine.await prev (fun v -> Engine.put next (v + 1));
      chain (i + 1) next
    end
    else prev
  in
  let first = Engine.ivar eng in
  let last = chain 0 first in
  Engine.spawn eng (fun () -> Engine.put first 0);
  let stats = Engine.run eng in
  Alcotest.(check (option int)) "chain result" (Some n) (Engine.peek last);
  Alcotest.(check int) "ply of a chain" 1 stats.Engine.max_ply;
  Alcotest.(check int) "n+1 tasks" (n + 1) stats.Engine.tasks

(* A fan-out of width w from one source: ply w in one cycle. *)
let test_fanout_ply () =
  let w = 16 in
  let eng = Engine.create () in
  let src = Engine.ivar eng in
  let hits = ref 0 in
  for _ = 1 to w do
    Engine.await src (fun _ -> incr hits)
  done;
  Engine.spawn eng (fun () -> Engine.put src ());
  let stats = Engine.run eng in
  Alcotest.(check int) "all ran" w !hits;
  Alcotest.(check int) "max ply = fanout width" w stats.Engine.max_ply

(* Diamond: a -> (b, c) -> d.  Four tasks, three cycles, max ply 2. *)
let test_diamond () =
  let eng = Engine.create () in
  let a = Engine.ivar eng
  and b = Engine.ivar eng
  and c = Engine.ivar eng in
  let d = ref 0 in
  Engine.await a (fun v -> Engine.put b (v + 1));
  Engine.await a (fun v -> Engine.put c (v + 2));
  Engine.await b (fun vb -> Engine.await c (fun vc -> d := vb + vc));
  Engine.spawn eng (fun () -> Engine.put a 10);
  let stats = Engine.run eng in
  Alcotest.(check int) "diamond result" 23 !d;
  Alcotest.(check int) "max ply" 2 stats.Engine.max_ply

(* Two independent chains run concurrently: makespan ~ one chain. *)
let test_independent_chains_overlap () =
  let n = 30 in
  let build eng =
    let first = Engine.ivar eng in
    let rec chain i prev =
      if i < n then begin
        let next = Engine.ivar eng in
        Engine.await prev (fun v -> Engine.put next (v + 1));
        chain (i + 1) next
      end
    in
    chain 0 first;
    Engine.spawn eng (fun () -> Engine.put first 0)
  in
  let eng = Engine.create () in
  build eng;
  build eng;
  let stats = Engine.run eng in
  Alcotest.(check int) "both chains' tasks" (2 * (n + 1)) stats.Engine.tasks;
  Alcotest.(check bool) "overlapped (makespan ~ n, not 2n)" true
    (stats.Engine.cycles <= n + 3);
  Alcotest.(check int) "ply 2 steady state" 2 stats.Engine.max_ply

let test_trace_records_labels () =
  let eng = Engine.create ~trace:true () in
  let iv = Engine.ivar eng in
  Engine.spawn eng ~label:"producer" (fun () -> Engine.put iv 1);
  Engine.await ~label:"consumer" iv (fun _ -> ());
  let stats = Engine.run eng in
  let labels = List.map snd stats.Engine.trace in
  Alcotest.(check (list string)) "trace labels" [ "producer"; "consumer" ]
    labels;
  (* consumer runs the cycle after producer *)
  (match stats.Engine.trace with
  | [ (c1, _); (c2, _) ] ->
      Alcotest.(check int) "one cycle apart" 1 (c2 - c1)
  | _ -> Alcotest.fail "expected two trace events")

let test_avg_ply_definition () =
  let eng = Engine.create () in
  let src = Engine.ivar eng in
  for _ = 1 to 10 do
    Engine.await src (fun _ -> ())
  done;
  Engine.spawn eng (fun () -> Engine.put src ());
  let stats = Engine.run eng in
  Alcotest.(check int) "tasks" 11 stats.Engine.tasks;
  Alcotest.(check (float 1e-9)) "avg = tasks/cycles"
    (float_of_int stats.Engine.tasks /. float_of_int stats.Engine.cycles)
    stats.Engine.avg_ply

let test_stalled () =
  (* A self-perpetuating task chain never quiesces: run must raise. *)
  let eng = Engine.create () in
  let rec tick () = Engine.spawn eng tick in
  Engine.spawn eng tick;
  Alcotest.check_raises "stalls"
    (Engine.Stalled "no quiescence after 100 cycles") (fun () ->
      ignore (Engine.run ~max_cycles:100 eng))

let test_spawn_site_inheritance () =
  let eng = Engine.create () in
  let sites = ref [] in
  Engine.spawn eng ~site:3 (fun () ->
      sites := Engine.current_site eng :: !sites;
      Engine.spawn eng (fun () ->
          sites := Engine.current_site eng :: !sites));
  ignore (Engine.run eng);
  Alcotest.(check (list int)) "child inherits parent site" [ 3; 3 ]
    (List.rev !sites)

(* -- demand-driven cells -------------------------------------------------- *)

let test_suspend_without_demand_never_fires () =
  let eng = Engine.create () in
  let fired = ref 0 in
  let iv : unit Engine.ivar = Engine.suspend eng (fun () -> incr fired) in
  let stats = Engine.run eng in
  Alcotest.(check int) "not fired without demand" 0 !fired;
  Alcotest.(check int) "zero tasks" 0 stats.Engine.tasks;
  Alcotest.(check bool) "cell still empty" false (Engine.is_full iv)

let test_suspend_produces_on_demand () =
  let eng = Engine.create () in
  let fired = ref 0 in
  let knot = ref None in
  let iv =
    Engine.suspend eng (fun () ->
        incr fired;
        Engine.put (Option.get !knot) 7)
  in
  knot := Some iv;
  let got = ref 0 in
  Engine.await iv (fun v -> got := v);
  let stats = Engine.run eng in
  Alcotest.(check int) "produced once" 1 !fired;
  Alcotest.(check int) "value" 7 !got;
  Alcotest.(check int) "producer + waiter = 2 tasks" 2 stats.Engine.tasks

let test_suspend_fires_once_under_two_demands () =
  let eng = Engine.create () in
  let fired = ref 0 in
  let knot = ref None in
  let iv =
    Engine.suspend eng (fun () ->
        incr fired;
        Engine.put (Option.get !knot) "x")
  in
  knot := Some iv;
  let hits = ref 0 in
  Engine.await iv (fun _ -> incr hits);
  Engine.await iv (fun _ -> incr hits);
  ignore (Engine.run eng);
  Alcotest.(check int) "one production" 1 !fired;
  Alcotest.(check int) "both waiters woken" 2 !hits

let test_demand_chain_is_sequential () =
  (* A chain of suspended cells forces one per demand step: the classic
     lazy-list cost profile. *)
  let eng = Engine.create () in
  let n = 15 in
  let rec build i =
    if i = 0 then Engine.full eng 0
    else begin
      let knot = ref None in
      let prev = build (i - 1) in
      let iv =
        Engine.suspend eng (fun () ->
            Engine.await prev (fun v -> Engine.put (Option.get !knot) (v + 1)))
      in
      knot := Some iv;
      iv
    end
  in
  let top = build n in
  let got = ref (-1) in
  Engine.await top (fun v -> got := v);
  let stats = Engine.run eng in
  Alcotest.(check int) "value" n !got;
  Alcotest.(check int) "ply 1 (no speculation)" 1 stats.Engine.max_ply

(* -- qcheck: random DAGs execute all tasks exactly once ------------------ *)

let prop_random_dag =
  QCheck2.Test.make ~name:"random dag executes every node once" ~count:100
    QCheck2.Gen.(pair (int_range 1 60) (int_range 0 1000))
    (fun (n, seed) ->
      let rand = Random.State.make [| seed |] in
      let eng = Engine.create () in
      let cells = Array.init n (fun _ -> Engine.ivar eng) in
      let fired = Array.make n 0 in
      (* node i waits on a random earlier node (or the root) *)
      for i = n - 1 downto 1 do
        let j = Random.State.int rand i in
        Engine.await cells.(j) (fun v ->
            fired.(i) <- fired.(i) + 1;
            Engine.put cells.(i) (v + 1))
      done;
      Engine.spawn eng (fun () ->
          fired.(0) <- fired.(0) + 1;
          Engine.put cells.(0) 0);
      let stats = Engine.run eng in
      Array.for_all (fun c -> c = 1) fired
      && stats.Engine.tasks = n
      && stats.Engine.orphans = 0)

let prop_ply_bounds =
  QCheck2.Test.make ~name:"avg ply <= max ply <= tasks" ~count:100
    QCheck2.Gen.(pair (int_range 1 40) (int_range 0 1000))
    (fun (n, seed) ->
      let rand = Random.State.make [| seed |] in
      let eng = Engine.create () in
      let root = Engine.ivar eng in
      for _ = 1 to n do
        if Random.State.bool rand then Engine.await root (fun _ -> ())
        else Engine.spawn eng (fun () -> ())
      done;
      Engine.spawn eng (fun () -> Engine.put root ());
      let s = Engine.run eng in
      s.Engine.avg_ply <= float_of_int s.Engine.max_ply +. 1e-9
      && s.Engine.max_ply <= s.Engine.tasks
      && s.Engine.busy_cycles <= s.Engine.cycles)

let () =
  Alcotest.run "kernel"
    [
      ( "ivar",
        [
          Alcotest.test_case "put then await" `Quick test_put_then_await;
          Alcotest.test_case "await already full" `Quick
            test_await_already_full;
          Alcotest.test_case "double put raises" `Quick test_double_put_raises;
          Alcotest.test_case "waiters in order" `Quick
            test_multiple_waiters_in_order;
          Alcotest.test_case "orphan detection" `Quick test_orphan_detection;
          Alcotest.test_case "peek/is_full" `Quick test_peek;
        ] );
      ( "ply",
        [
          Alcotest.test_case "chain" `Quick test_chain_ply;
          Alcotest.test_case "fan-out" `Quick test_fanout_ply;
          Alcotest.test_case "diamond" `Quick test_diamond;
          Alcotest.test_case "independent chains overlap" `Quick
            test_independent_chains_overlap;
          Alcotest.test_case "avg ply definition" `Quick
            test_avg_ply_definition;
        ] );
      ( "engine",
        [
          Alcotest.test_case "trace" `Quick test_trace_records_labels;
          Alcotest.test_case "stall detection" `Quick test_stalled;
          Alcotest.test_case "site inheritance" `Quick
            test_spawn_site_inheritance;
        ] );
      ( "demand",
        [
          Alcotest.test_case "no demand, no production" `Quick
            test_suspend_without_demand_never_fires;
          Alcotest.test_case "produces on demand" `Quick
            test_suspend_produces_on_demand;
          Alcotest.test_case "fires once" `Quick
            test_suspend_fires_once_under_two_demands;
          Alcotest.test_case "demand chain" `Quick
            test_demand_chain_is_sequential;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_random_dag;
          QCheck_alcotest.to_alcotest prop_ply_bounds;
        ] );
    ]
