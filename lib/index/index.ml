open Fdb_relational
module Plan = Fdb_query.Plan
module Meter = Fdb_persistent.Meter
module Metrics = Fdb_obs.Metrics
module Trace = Fdb_obs.Trace
module Event = Fdb_obs.Event

let h_touched = Metrics.histogram "index.maintain_touched"
let h_allocs = Metrics.histogram "index.maintain_allocs"

(* Secondary / covering entries, ordered by (indexed value, primary key):
   duplicates of the indexed value are disambiguated by the (unique) base
   key, so the tree stays a set and an equality probe walks the group in
   primary-key order. *)
module Entry = struct
  type t = { ik : Value.t; pk : Value.t; payload : Tuple.t }

  let compare a b =
    match Value.compare a.ik b.ik with
    | 0 -> Value.compare a.pk b.pk
    | c -> c
end

(* One derived-index group: the maintained statistics plus the sorted
   multiset of target values, which is what makes min/max maintainable
   under deletes (the running sum alone could not recover a removed
   extremum). *)
module Group = struct
  type t = {
    gk : Value.t;
    count : int;
    sum : Value.t;
    values : Value.t list;  (** ascending *)
    vmax : Value.t;
  }

  let compare a b = Value.compare a.gk b.gk
end

module S2 = Fdb_persistent.Two3.Make (Entry)
module SB = Fdb_persistent.Btree.Make (Entry)
module G2 = Fdb_persistent.Two3.Make (Group)
module GB = Fdb_persistent.Btree.Make (Group)

type repr = Sec2 of S2.t | SecB of SB.t | Der2 of G2.t | DerB of GB.t

type t = {
  desc : Plan.index_desc;
  schema : Schema.t;  (** base relation schema *)
  col_idx : int;  (** indexed (or group) column position *)
  stored : (string * int) list;  (** covering payload columns, base positions *)
  stored_schema : Schema.t;  (** covering payload schema, named after the rel *)
  target_idx : int;  (** derived target column position *)
  target_ct : Schema.ctype;
  repr : repr;
  entries : int;  (** base tuples currently reflected *)
}

let desc t = t.desc
let entries t = t.entries
let stored_schema t = t.stored_schema
let kind_name t = Plan.index_kind_name t.desc.Plan.ix_kind

(* -- derived-group arithmetic ---------------------------------------------- *)

let vzero = function Schema.CReal -> Value.Real 0.0 | _ -> Value.Int 0

let vadd a b =
  match (a, b) with
  | (Value.Int x, Value.Int y) -> Value.Int (x + y)
  | (Value.Real x, Value.Real y) -> Value.Real (x +. y)
  | _ -> a

let vsub a b =
  match (a, b) with
  | (Value.Int x, Value.Int y) -> Value.Int (x - y)
  | (Value.Real x, Value.Real y) -> Value.Real (x -. y)
  | _ -> a

let rec vinsert v = function
  | [] -> [ v ]
  | x :: rest ->
      if Value.compare v x <= 0 then v :: x :: rest else x :: vinsert v rest

let rec vremove v = function
  | [] -> []
  | x :: rest -> if Value.compare x v = 0 then rest else x :: vremove v rest

let rec vlast = function
  | [] -> invalid_arg "Index: empty group"
  | [ x ] -> x
  | _ :: rest -> vlast rest

let group_probe gk =
  { Group.gk; count = 0; sum = Value.Int 0; values = []; vmax = Value.Int 0 }

let group_make tct gk v =
  { Group.gk; count = 1; sum = vadd (vzero tct) v; values = [ v ]; vmax = v }

let group_add (g : Group.t) v =
  {
    g with
    Group.count = g.Group.count + 1;
    sum = vadd g.Group.sum v;
    values = vinsert v g.Group.values;
    vmax = (if Value.compare v g.Group.vmax > 0 then v else g.Group.vmax);
  }

let group_remove (g : Group.t) v =
  let values = vremove v g.Group.values in
  let count = g.Group.count - 1 in
  let vmax =
    if count <= 0 then g.Group.vmax
    else if Value.compare v g.Group.vmax >= 0 then vlast values
    else g.Group.vmax
  in
  { g with Group.count; sum = vsub g.Group.sum v; values; vmax }

(* -- construction ---------------------------------------------------------- *)

let column schema name =
  match Schema.column_index schema name with
  | Some i -> Ok i
  | None ->
      Error
        (Printf.sprintf "index: relation %s has no column %s"
           (Schema.name schema) name)

let entry_of t tup =
  {
    Entry.ik = Tuple.get tup t.col_idx;
    pk = Tuple.key tup;
    payload =
      (match t.desc.Plan.ix_kind with
      | Plan.Ix_covering _ ->
          Tuple.make (List.map (fun (_, i) -> Tuple.get tup i) t.stored)
      | Plan.Ix_secondary | Plan.Ix_derived _ -> [||]);
  }

let entry_probe t tup =
  { Entry.ik = Tuple.get tup t.col_idx; pk = Tuple.key tup; payload = [||] }

let build (desc : Plan.index_desc) r =
  let schema = Relation.schema r in
  let branching =
    match Relation.backend r with
    | Relation.Btree_backend b -> Some b
    | Relation.List_backend | Relation.Avl_backend | Relation.Two3_backend
    | Relation.Column_backend _ ->
        None
  in
  let ( let* ) = Result.bind in
  let* col_idx = column schema desc.Plan.ix_col in
  let* (stored, target_idx, target_ct) =
    match desc.Plan.ix_kind with
    | Plan.Ix_secondary -> Ok ([], 0, Schema.CInt)
    | Plan.Ix_covering cols ->
        if cols = [] then Error "index: covering index stores no columns"
        else
          let rec resolve = function
            | [] -> Ok []
            | c :: rest ->
                let* i = column schema c in
                Result.map (fun is -> (c, i) :: is) (resolve rest)
          in
          Result.map (fun s -> (s, 0, Schema.CInt)) (resolve cols)
    | Plan.Ix_derived tgt ->
        let* i = column schema tgt in
        Ok ([], i, snd (List.nth (Schema.columns schema) i))
  in
  let stored_schema =
    (* Named after the base relation so residual-compilation errors read
       identically whichever side compiles them. *)
    match stored with
    | [] -> schema
    | cols ->
        Schema.make
          ~name:(Schema.name schema)
          ~cols:
            (List.map
               (fun (c, i) -> (c, snd (List.nth (Schema.columns schema) i)))
               cols)
  in
  let t0 =
    {
      desc;
      schema;
      col_idx;
      stored;
      stored_schema;
      target_idx;
      target_ct;
      repr = Sec2 S2.empty;
      entries = 0;
    }
  in
  let repr =
    match desc.Plan.ix_kind with
    | Plan.Ix_secondary | Plan.Ix_covering _ ->
        let es =
          List.rev (Relation.fold (fun acc tup -> entry_of t0 tup :: acc) [] r)
        in
        (match branching with
        | Some b -> SecB (SB.of_list ~branching:b es)
        | None -> Sec2 (S2.of_list es))
    | Plan.Ix_derived _ ->
        let groups : (Value.t, Group.t) Hashtbl.t = Hashtbl.create 64 in
        Relation.iter
          (fun tup ->
            let gk = Tuple.get tup col_idx in
            let v = Tuple.get tup target_idx in
            match Hashtbl.find_opt groups gk with
            | Some g -> Hashtbl.replace groups gk (group_add g v)
            | None -> Hashtbl.replace groups gk (group_make target_ct gk v))
          r;
        let gs = Hashtbl.fold (fun _ g acc -> g :: acc) groups [] in
        (match branching with
        | Some b -> DerB (GB.of_list ~branching:b gs)
        | None -> Der2 (G2.of_list gs))
  in
  Ok { t0 with repr; entries = Relation.size r }

(* -- incremental maintenance ----------------------------------------------- *)

let der_bounds probe =
  ( (fun (e : Group.t) -> Group.compare e probe >= 0),
    fun (e : Group.t) -> Group.compare e probe <= 0 )

let der_remove2 ?meter tr gk v =
  let probe = group_probe gk in
  match G2.find probe tr with
  | None -> tr
  | Some g ->
      if g.Group.count <= 1 then fst (G2.delete ?meter probe tr)
      else
        let (ge_lo, le_hi) = der_bounds probe in
        fst (G2.rewrite ?meter ~ge_lo ~le_hi (fun g -> Some (group_remove g v)) tr)

let der_add2 ?meter tct tr gk v =
  let probe = group_probe gk in
  match G2.find probe tr with
  | None -> G2.insert ?meter (group_make tct gk v) tr
  | Some _ ->
      let (ge_lo, le_hi) = der_bounds probe in
      fst (G2.rewrite ?meter ~ge_lo ~le_hi (fun g -> Some (group_add g v)) tr)

let der_removeb ?meter tr gk v =
  let probe = group_probe gk in
  match GB.find probe tr with
  | None -> tr
  | Some g ->
      if g.Group.count <= 1 then fst (GB.delete ?meter probe tr)
      else
        let (ge_lo, le_hi) = der_bounds probe in
        fst (GB.rewrite ?meter ~ge_lo ~le_hi (fun g -> Some (group_remove g v)) tr)

let der_addb ?meter tct tr gk v =
  let probe = group_probe gk in
  match GB.find probe tr with
  | None -> GB.insert ?meter (group_make tct gk v) tr
  | Some _ ->
      let (ge_lo, le_hi) = der_bounds probe in
      fst (GB.rewrite ?meter ~ge_lo ~le_hi (fun g -> Some (group_add g v)) tr)

(* Absorb one write's delta.  Every removed tuple leaves, every added tuple
   enters — an update that changes the indexed column is just a removal
   from one position (or group) and an insertion at another, so the same
   path-copying pass covers all three write shapes. *)
let apply ?meter t ~removed ~added =
  let repr =
    match t.repr with
    | Sec2 tr ->
        let tr =
          List.fold_left
            (fun tr tup -> fst (S2.delete ?meter (entry_probe t tup) tr))
            tr removed
        in
        Sec2
          (List.fold_left
             (fun tr tup -> S2.insert ?meter (entry_of t tup) tr)
             tr added)
    | SecB tr ->
        let tr =
          List.fold_left
            (fun tr tup -> fst (SB.delete ?meter (entry_probe t tup) tr))
            tr removed
        in
        SecB
          (List.fold_left
             (fun tr tup -> SB.insert ?meter (entry_of t tup) tr)
             tr added)
    | Der2 tr ->
        let tr =
          List.fold_left
            (fun tr tup ->
              der_remove2 ?meter tr (Tuple.get tup t.col_idx)
                (Tuple.get tup t.target_idx))
            tr removed
        in
        Der2
          (List.fold_left
             (fun tr tup ->
               der_add2 ?meter t.target_ct tr (Tuple.get tup t.col_idx)
                 (Tuple.get tup t.target_idx))
             tr added)
    | DerB tr ->
        let tr =
          List.fold_left
            (fun tr tup ->
              der_removeb ?meter tr (Tuple.get tup t.col_idx)
                (Tuple.get tup t.target_idx))
            tr removed
        in
        DerB
          (List.fold_left
             (fun tr tup ->
               der_addb ?meter t.target_ct tr (Tuple.get tup t.col_idx)
                 (Tuple.get tup t.target_idx))
             tr added)
  in
  {
    t with
    repr;
    entries = t.entries - List.length removed + List.length added;
  }

(* -- reads ----------------------------------------------------------------- *)

let entry_bounds ~ilo ~ihi =
  let ge_lo (e : Entry.t) =
    match ilo with
    | None -> true
    | Some { Plan.value; inclusive } ->
        let c = Value.compare e.Entry.ik value in
        if inclusive then c >= 0 else c > 0
  in
  let le_hi (e : Entry.t) =
    match ihi with
    | None -> true
    | Some { Plan.value; inclusive } ->
        let c = Value.compare e.Entry.ik value in
        if inclusive then c <= 0 else c < 0
  in
  (ge_lo, le_hi)

let probe_fold ?meter t ~ilo ~ihi f acc =
  let (ge_lo, le_hi) = entry_bounds ~ilo ~ihi in
  let step acc (e : Entry.t) = f acc e.Entry.pk e.Entry.payload in
  match t.repr with
  | Sec2 tr -> S2.range_fold ?meter ~ge_lo ~le_hi step acc tr
  | SecB tr -> SB.range_fold ?meter ~ge_lo ~le_hi step acc tr
  | Der2 _ | DerB _ -> invalid_arg "Index.probe_fold: derived index"

type group_stats = {
  g_count : int;
  g_sum : Value.t;
  g_min : Value.t;
  g_max : Value.t;
}

let group_lookup t gk =
  let of_group (g : Group.t) =
    {
      g_count = g.Group.count;
      g_sum = g.Group.sum;
      g_min = (match g.Group.values with v :: _ -> v | [] -> g.Group.vmax);
      g_max = g.Group.vmax;
    }
  in
  match t.repr with
  | Der2 tr -> Option.map of_group (G2.find (group_probe gk) tr)
  | DerB tr -> Option.map of_group (GB.find (group_probe gk) tr)
  | Sec2 _ | SecB _ -> invalid_arg "Index.group_lookup: scan index"

(* -- measurement and checking ---------------------------------------------- *)

let shared_units ~old t =
  match (old.repr, t.repr) with
  | (Sec2 a, Sec2 b) -> S2.shared_nodes ~old:a b
  | (SecB a, SecB b) -> SB.shared_pages ~old:a b
  | (Der2 a, Der2 b) -> G2.shared_nodes ~old:a b
  | (DerB a, DerB b) -> GB.shared_pages ~old:a b
  | _ -> invalid_arg "Index.shared_units: different representations"

let invariant t =
  match t.repr with
  | Sec2 tr -> S2.invariant tr
  | SecB tr -> SB.invariant tr
  | Der2 tr -> G2.invariant tr
  | DerB tr -> GB.invariant tr

let entry_equal (a : Entry.t) (b : Entry.t) =
  Value.equal a.Entry.ik b.Entry.ik
  && Value.equal a.Entry.pk b.Entry.pk
  && Tuple.equal a.Entry.payload b.Entry.payload

let group_equal (a : Group.t) (b : Group.t) =
  Value.equal a.Group.gk b.Group.gk
  && a.Group.count = b.Group.count
  && Value.equal a.Group.sum b.Group.sum
  && List.equal Value.equal a.Group.values b.Group.values
  && Value.equal a.Group.vmax b.Group.vmax

(* Differential self-check: an incrementally maintained index must equal a
   fresh rebuild from the current base relation, element for element. *)
let coherent t r =
  let fresh =
    match build t.desc r with Ok f -> f | Error e -> invalid_arg e
  in
  let name = t.desc.Plan.ix_name in
  if t.entries <> Relation.size r then
    Error
      (Printf.sprintf "index %s covers %d tuples, base holds %d" name
         t.entries (Relation.size r))
  else if not (invariant t) then
    Error (Printf.sprintf "index %s violates its tree invariant" name)
  else
    let ok =
      match (t.repr, fresh.repr) with
      | (Sec2 a, Sec2 b) -> List.equal entry_equal (S2.to_list a) (S2.to_list b)
      | (SecB a, SecB b) -> List.equal entry_equal (SB.to_list a) (SB.to_list b)
      | (Der2 a, Der2 b) -> List.equal group_equal (G2.to_list a) (G2.to_list b)
      | (DerB a, DerB b) -> List.equal group_equal (GB.to_list a) (GB.to_list b)
      | _ -> false
    in
    if ok then Ok ()
    else
      Error
        (Printf.sprintf "index %s diverges from a fresh rebuild of %s" name
           t.desc.Plan.ix_rel)

(* -- the catalog ----------------------------------------------------------- *)

module Catalog = struct
  type nonrec t = Plan.index_desc list

  let validate schemas catalog =
    let schema_of rel =
      List.find_opt (fun s -> String.equal (Schema.name s) rel) schemas
    in
    let seen = Hashtbl.create 8 in
    let rec go = function
      | [] -> Ok ()
      | (d : Plan.index_desc) :: rest -> (
          if Hashtbl.mem seen d.Plan.ix_name then
            Error (Printf.sprintf "catalog: duplicate index name %s" d.Plan.ix_name)
          else begin
            Hashtbl.replace seen d.Plan.ix_name ();
            match schema_of d.Plan.ix_rel with
            | None ->
                Error
                  (Printf.sprintf "catalog: index %s names unknown relation %s"
                     d.Plan.ix_name d.Plan.ix_rel)
            | Some schema ->
                let missing c =
                  Option.is_none (Schema.column_index schema c)
                in
                let bad =
                  if missing d.Plan.ix_col then Some d.Plan.ix_col
                  else
                    match d.Plan.ix_kind with
                    | Plan.Ix_secondary -> None
                    | Plan.Ix_covering cols -> List.find_opt missing cols
                    | Plan.Ix_derived tgt -> if missing tgt then Some tgt else None
                in
                (match bad with
                | Some c ->
                    Error
                      (Printf.sprintf "catalog: index %s: %s has no column %s"
                         d.Plan.ix_name d.Plan.ix_rel c)
                | None -> go rest)
          end)
    in
    go catalog

  (* The simulation default: for every relation with at least one non-key
     column, a covering index on the first extra column (storing the whole
     tuple, so any projection can go index-only), a plain secondary on the
     second extra column when there is one, and a derived index grouping
     the first extra column over the integer key — generic over the random
     schemas the scenario generator produces. *)
  let default_for schemas =
    List.concat_map
      (fun schema ->
        let rel = Schema.name schema in
        match Schema.columns schema with
        | _key :: (c1, _) :: rest ->
            let all_cols = List.map fst (Schema.columns schema) in
            let cov =
              {
                Plan.ix_name = Printf.sprintf "%s_cov_%s" rel c1;
                ix_rel = rel;
                ix_col = c1;
                ix_kind = Plan.Ix_covering all_cols;
              }
            in
            let der =
              {
                Plan.ix_name = Printf.sprintf "%s_agg_%s" rel c1;
                ix_rel = rel;
                ix_col = c1;
                ix_kind = Plan.Ix_derived "key";
              }
            in
            let sec =
              match rest with
              | (c2, _) :: _ ->
                  [
                    {
                      Plan.ix_name = Printf.sprintf "%s_sec_%s" rel c2;
                      ix_rel = rel;
                      ix_col = c2;
                      ix_kind = Plan.Ix_secondary;
                    };
                  ]
              | [] -> []
            in
            (cov :: sec) @ [ der ]
        | _ -> [])
      schemas
end

(* -- the store: every index over one database version ---------------------- *)

module Store = struct
  type index = t

  type t = { all : (string * index) list }  (** catalog order *)

  let build catalog db =
    let rec go acc = function
      | [] -> Ok { all = List.rev acc }
      | (d : Plan.index_desc) :: rest -> (
          match Database.relation db d.Plan.ix_rel with
          | None ->
              Error
                (Printf.sprintf "index %s: unknown relation %s" d.Plan.ix_name
                   d.Plan.ix_rel)
          | Some r ->
              Result.bind (build d r) (fun ix ->
                  go ((d.Plan.ix_name, ix) :: acc) rest))
    in
    go [] catalog

  let find t name = List.assoc_opt name t.all

  let on t rel =
    List.filter_map
      (fun (_, ix) ->
        if String.equal ix.desc.Plan.ix_rel rel then Some ix else None)
      t.all

  (* Maintain every index of [rel] through one write.  [base] is the base
     relation's size after the write; the maintenance events carry it so
     the lockstep law can compare index and base cardinalities at every
     step.  Per-index allocations are metered locally (and folded into the
     caller's meter when given) so the maintenance histograms see each
     index's path-copy cost separately. *)
  let apply ?meter t ~rel ~base ~removed ~added =
    if removed = [] && added = [] then t
    else
      let touched = List.length removed + List.length added in
      let traced = Trace.enabled () in
      let all =
        List.map
          (fun (name, ix) ->
            if String.equal ix.desc.Plan.ix_rel rel then begin
              let m = Meter.create () in
              let ix' = apply ~meter:m ix ~removed ~added in
              Metrics.observe h_allocs (Meter.allocs m);
              Metrics.observe h_touched touched;
              Meter.alloc meter (Meter.allocs m);
              if traced then
                Trace.emit
                  (Event.Index_maintain
                     {
                       rel;
                       index = name;
                       kind = kind_name ix;
                       base;
                       entries = ix'.entries;
                     });
              (name, ix')
            end
            else (name, ix))
          t.all
      in
      { all }

  let coherent t db =
    let rec go = function
      | [] -> Ok ()
      | (_, ix) :: rest -> (
          match Database.relation db ix.desc.Plan.ix_rel with
          | None ->
              Error
                (Printf.sprintf "index %s: relation %s vanished"
                   ix.desc.Plan.ix_name ix.desc.Plan.ix_rel)
          | Some r -> Result.bind (coherent ix r) (fun () -> go rest))
    in
    go t.all
end

(* -- sessions: the mutable current-store cell an executor threads ---------- *)

module Session = struct
  type t = { catalog : Catalog.t; mutable store : Store.t }

  type use = { session : t; maintain : bool }

  let create catalog db =
    Result.map (fun store -> { catalog; store }) (Store.build catalog db)

  let create_exn catalog db =
    match create catalog db with Ok s -> s | Error e -> invalid_arg e

  let store s = s.store
  let catalog s = s.catalog

  let descs_for s rel =
    List.filter (fun (d : Plan.index_desc) -> String.equal d.Plan.ix_rel rel) s.catalog

  let use ?(maintain = true) session = { session; maintain }

  let on_write u ~rel ~base ~removed ~added =
    if u.maintain then
      u.session.store <- Store.apply u.session.store ~rel ~base ~removed ~added

  (* Replay a committed transaction's publication (its footprint effects)
     onto the session — the repair executor's serial commit point. *)
  let apply_effects s db effects =
    List.iter
      (fun (rel, (removed, added)) ->
        let base =
          match Database.relation db rel with
          | Some r -> Relation.size r
          | None -> 0
        in
        s.store <- Store.apply s.store ~rel ~base ~removed ~added)
      effects
end
