(* Index layer tests: indexed-planner analysis and pinned explain lines,
   golden indexed plans executed on every backend with the advertised
   decision-counter mix, indexed executor vs plain interpreter (property,
   all four backends), derived-index group statistics against naive
   recomputation, incremental maintenance vs fresh rebuild through the
   write path, structure sharing under maintenance (metered), seeded
   multi-client histories with coherence checked at the end, and the
   index-coherence trace law on both recorded and hand-crafted traces. *)

open Fdb_relational
module Ast = Fdb_query.Ast
module Plan = Fdb_query.Plan
module Txn = Fdb_txn.Txn
module Ix = Fdb_index.Index
module Meter = Fdb_persistent.Meter
module Gen = Fdb_check.Gen
module Merge = Fdb_merge.Merge
module Metrics = Fdb_obs.Metrics
module Trace = Fdb_obs.Trace
module Event = Fdb_obs.Event
module Trace_oracle = Fdb_check.Trace_oracle

let schema =
  Schema.make ~name:"R"
    ~cols:[ ("key", Schema.CInt); ("num", Schema.CInt); ("val", Schema.CStr) ]

let backends =
  [ Relation.List_backend; Relation.Avl_backend; Relation.Two3_backend;
    Relation.Btree_backend 4; Relation.Column_backend 4 ]

let tup k =
  Tuple.make
    [ Value.Int k; Value.Int (k * 7 mod 13);
      Value.Str (String.make 1 (Char.chr (97 + (k mod 5)))) ]

let mk_rel backend n =
  match Relation.of_tuples ~backend schema (List.init n tup) with
  | Ok r -> r
  | Error e -> Alcotest.fail e

let mk_db backend n =
  match
    Database.load (Database.create ~backend [ schema ]) ~rel:"R"
      (List.init n tup)
  with
  | Ok db -> db
  | Error e -> Alcotest.fail e

let response_t = Alcotest.testable Txn.pp_response Txn.response_equal

let sec_desc =
  { Plan.ix_name = "R_sec_num"; ix_rel = "R"; ix_col = "num";
    ix_kind = Plan.Ix_secondary }

let cov_desc =
  { Plan.ix_name = "R_cov_val"; ix_rel = "R"; ix_col = "val";
    ix_kind = Plan.Ix_covering [ "key"; "num"; "val" ] }

let der_desc =
  { Plan.ix_name = "R_agg_num"; ix_rel = "R"; ix_col = "num";
    ix_kind = Plan.Ix_derived "key" }

let catalog = [ sec_desc; cov_desc; der_desc ]

let ok_or_fail = function Ok v -> v | Error e -> Alcotest.fail e

let parse = Fdb_query.Parser.parse_exn

(* -- indexed predicate analysis ------------------------------------------- *)

let cmp c op v = Ast.Cmp (c, op, Value.Int v)
let vcmp c op s = Ast.Cmp (c, op, Value.Str s)

let test_analyze_mixed_conjuncts () =
  (* an equality on an indexed column mixed with a non-indexed conjunct
     must split into an index probe plus a residual, never a full scan *)
  (match
     Plan.analyze_indexed schema ~indexes:[ sec_desc ]
       ~wanted:(Plan.Want_cols [])
       (Ast.And (cmp "num" Ast.Eq 3, vcmp "val" Ast.Eq "a"))
   with
  | { Plan.ipath = Plan.Index_scan { ix; only = false; _ };
      iresidual = Ast.Cmp ("val", Ast.Eq, Value.Str "a") }
    when String.equal ix.Plan.ix_name "R_sec_num" ->
      ()
  | ip -> Alcotest.failf "mixed conjuncts: %s" (Plan.iplan_to_string ip));
  (* a key equality still wins over a secondary probe *)
  (match
     Plan.analyze_indexed schema ~indexes:catalog ~wanted:Plan.Want_all
       (Ast.And (cmp "key" Ast.Eq 5, cmp "num" Ast.Eq 3))
   with
  | { Plan.ipath = Plan.Primary (Plan.Point_lookup (Value.Int 5)); _ } -> ()
  | ip -> Alcotest.failf "key eq beats probe: %s" (Plan.iplan_to_string ip));
  (* atoms under Or never steer an index *)
  match
    Plan.analyze_indexed schema ~indexes:catalog ~wanted:Plan.Want_all
      (Ast.Or (cmp "num" Ast.Eq 3, cmp "num" Ast.Eq 4))
  with
  | { Plan.ipath = Plan.Primary Plan.Full_scan; _ } -> ()
  | ip -> Alcotest.failf "or stays residual: %s" (Plan.iplan_to_string ip)

let test_analyze_group_residual_blocks () =
  (* a derived index answers only residual-free group aggregates: any
     extra conjunct must push the plan back to probe + residual *)
  (match
     Plan.analyze_group schema ~indexes:catalog ~target:(`Agg (Ast.Sum, "key"))
       (cmp "num" Ast.Eq 3)
   with
  | Some { Plan.ipath = Plan.Index_group { ix; group = Value.Int 3 }; _ }
    when String.equal ix.Plan.ix_name "R_agg_num" ->
      ()
  | Some ip -> Alcotest.failf "pure group: %s" (Plan.iplan_to_string ip)
  | None -> Alcotest.fail "pure group: no plan");
  (match
     Plan.analyze_group schema ~indexes:catalog ~target:(`Agg (Ast.Sum, "key"))
       (Ast.And (cmp "num" Ast.Eq 3, cmp "key" Ast.Gt 4))
   with
  | None -> ()
  | Some ip -> Alcotest.failf "residual blocks: %s" (Plan.iplan_to_string ip));
  (* the derived target column must match the aggregated column *)
  match
    Plan.analyze_group schema ~indexes:catalog ~target:(`Agg (Ast.Sum, "num"))
      (cmp "num" Ast.Eq 3)
  with
  | None -> ()
  | Some ip -> Alcotest.failf "wrong target: %s" (Plan.iplan_to_string ip)

(* -- golden explain: the fdbsim rendering with a catalog, pinned ----------- *)

let golden_schema_r =
  Schema.make ~name:"R" ~cols:[ ("key", Schema.CInt); ("val", Schema.CStr) ]

let golden_schema_s =
  Schema.make ~name:"S" ~cols:[ ("key", Schema.CInt); ("val", Schema.CStr) ]

let golden_catalog =
  [ { Plan.ix_name = "R_sec_val"; ix_rel = "R"; ix_col = "val";
      ix_kind = Plan.Ix_secondary };
    { Plan.ix_name = "S_cov_val"; ix_rel = "S"; ix_col = "val";
      ix_kind = Plan.Ix_covering [ "key"; "val" ] };
    { Plan.ix_name = "R_agg_val"; ix_rel = "R"; ix_col = "val";
      ix_kind = Plan.Ix_derived "key" } ]

(* One case per indexed access path (the `fdbsim explain` schema with a
   secondary + derived catalog on R and a covering catalog on S).  The
   expected strings are the exact lines the CLI prints under
   `fdbsim explain --secondary R:val --covering S:val --derived R:val`;
   a rewording is a user-visible change and must show up here. *)
let golden_cases =
  [ ( "select * from R where val = \"c\"",
      "select R: index probe R_sec_val [val = \"c\"]" );
    ( "select * from R where val = \"c\" and key > 3",
      "select R: index probe R_sec_val [val = \"c\"]; residual key > 3" );
    ( "select key from S where val = \"c\"",
      "select S: index-only probe S_cov_val [val = \"c\"]; project key" );
    ( "select * from S where val = \"c\"",
      "select S: index-only probe S_cov_val [val = \"c\"]" );
    ( "sum key from R where val = \"c\"",
      "aggregate R: derived index R_agg_val [val = \"c\"]" );
    ( "count S where val = \"c\"",
      "count S: index-only probe S_cov_val [val = \"c\"]" );
    ( "select * from R where val >= \"a\" and val < \"c\"",
      "select R: index range R_sec_val [val >= \"a\", val < \"c\"]" );
    ( "select * from R where val != \"c\"",
      "select R: full scan; residual val != \"c\"" );
    ("min key from R where key < 9", "aggregate R: range scan [-inf, key < 9]");
    ("find 7 in R", "find R: point lookup key = 7");
    ("count R", "count R: size accessor") ]

let golden_schema_of n =
  if n = "R" then Some golden_schema_r
  else if n = "S" then Some golden_schema_s
  else None

let golden_indexes_of rel =
  List.filter
    (fun (d : Plan.index_desc) -> String.equal d.Plan.ix_rel rel)
    golden_catalog

let test_explain_indexed_golden () =
  List.iter
    (fun (src, expected) ->
      Alcotest.(check string) src expected
        (Plan.explain_indexed ~schema_of:golden_schema_of
           ~indexes_of:golden_indexes_of (parse src)))
    golden_cases

(* The explained indexed plans must execute on every persistent backend:
   each golden query runs through a fresh index session per backend, every
   backend must answer exactly as the plain interpreter does, and the
   indexed-planner decision counters must record the advertised mix
   (3 probes, 3 index-only, 1 derived aggregate, 1 scan fallback). *)
let test_explain_indexed_on_backends () =
  let gtup k =
    Tuple.make
      [ Value.Int k; Value.Str (String.make 1 (Char.chr (97 + (k mod 5)))) ]
  in
  let mk backend =
    let db = Database.create ~backend [ golden_schema_r; golden_schema_s ] in
    let db = ok_or_fail (Database.load db ~rel:"R" (List.init 32 gtup)) in
    ok_or_fail (Database.load db ~rel:"S" (List.init 32 gtup))
  in
  let reference =
    let db = mk Relation.List_backend in
    List.map (fun (src, _) -> fst (Txn.translate (parse src) db)) golden_cases
  in
  let m_probe = Metrics.counter "plan.index_probe"
  and m_only = Metrics.counter "plan.index_only"
  and m_agg = Metrics.counter "plan.index_aggregate"
  and m_fallback = Metrics.counter "plan.scan_fallback" in
  List.iter
    (fun backend ->
      let name = Relation.backend_name backend in
      let db = mk backend in
      let session = Ix.Session.create_exn golden_catalog db in
      let use = Ix.Session.use session in
      let p0 = Metrics.counter_value m_probe
      and o0 = Metrics.counter_value m_only
      and a0 = Metrics.counter_value m_agg
      and f0 = Metrics.counter_value m_fallback in
      List.iteri
        (fun i (src, _) ->
          Alcotest.check response_t
            (Printf.sprintf "%s: %s" name src)
            (List.nth reference i)
            (fst (Txn.translate_indexed use (parse src) db)))
        golden_cases;
      Alcotest.(check (list int))
        (name ^ ": indexed planner decision mix")
        [ 3; 3; 1; 1 ]
        [ Metrics.counter_value m_probe - p0;
          Metrics.counter_value m_only - o0;
          Metrics.counter_value m_agg - a0;
          Metrics.counter_value m_fallback - f0 ])
    backends

(* -- indexed executor vs plain interpreter (property, 4 backends) ---------- *)

let gen_pred =
  QCheck2.Gen.(
    let gen_atom =
      let key_atom =
        map2
          (fun op v -> cmp "key" op v)
          (oneofl [ Ast.Eq; Ast.Ne; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge ])
          (int_range (-2) 40)
      and other_atom =
        oneof
          [ map2 (fun op v -> cmp "num" op v)
              (oneofl [ Ast.Eq; Ast.Lt; Ast.Ge ])
              (int_range 0 13);
            map
              (fun c -> Ast.Cmp ("val", Ast.Eq, Value.Str (String.make 1 c)))
              (char_range 'a' 'e');
            return (Ast.Cmp ("ghost", Ast.Eq, Value.Int 0)) ]
      in
      (* indexed-column atoms dominate so probes actually get chosen *)
      frequency [ (2, key_atom); (3, other_atom) ]
    in
    sized @@ fix (fun self n ->
        if n <= 1 then oneof [ return Ast.True; gen_atom ]
        else
          frequency
            [ (3, gen_atom);
              (3, map2 (fun a b -> Ast.And (a, b)) (self (n / 2)) (self (n / 2)));
              (1, map2 (fun a b -> Ast.Or (a, b)) (self (n / 2)) (self (n / 2)));
              (1, map (fun a -> Ast.Not a) (self (n - 1))) ]))

let gen_case =
  QCheck2.Gen.(
    triple
      (list_size (int_range 0 40) (int_range 0 40))
      gen_pred (int_range 0 4))

let prop_indexed_matches_plain =
  QCheck2.Test.make
    ~name:"indexed executor == plain interpreter (4 backends)" ~count:250
    gen_case (fun (keys, where, kind) ->
      let tuples = List.map tup keys in
      List.for_all
        (fun backend ->
          let db =
            match
              Database.load (Database.create ~backend [ schema ]) ~rel:"R"
                tuples
            with
            | Ok db -> db
            | Error e -> QCheck2.Test.fail_report e
          in
          let session = Ix.Session.create_exn catalog db in
          let query =
            match kind with
            | 0 -> Ast.Select { rel = "R"; cols = None; where }
            | 1 -> Ast.Select { rel = "R"; cols = Some [ "val"; "key" ]; where }
            | 2 -> Ast.Count { rel = "R"; where }
            | 3 -> Ast.Aggregate { agg = Ast.Sum; rel = "R"; col = "key"; where }
            | _ -> Ast.Aggregate { agg = Ast.Max; rel = "R"; col = "num"; where }
          in
          let (plain, _) = Txn.translate query db in
          let (indexed, db') =
            Txn.translate_indexed (Ix.Session.use session) query db
          in
          if not (Txn.response_equal plain indexed) then
            QCheck2.Test.fail_reportf "%s on %s: indexed %s, plain %s"
              (Ast.to_string query)
              (Relation.backend_name backend)
              (Format.asprintf "%a" Txn.pp_response indexed)
              (Format.asprintf "%a" Txn.pp_response plain)
          else if not (db' == db) then
            QCheck2.Test.fail_reportf "indexed read replaced the db"
          else true)
        backends)

(* -- derived index group statistics vs naive recomputation ----------------- *)

let naive_stats tuples g =
  let keys = List.filter_map (fun k -> if k * 7 mod 13 = g then Some k else None) tuples in
  match keys with
  | [] -> None
  | _ ->
      Some
        ( List.length keys,
          List.fold_left ( + ) 0 keys,
          List.fold_left min max_int keys,
          List.fold_left max min_int keys )

let check_der_groups name ix tuples =
  Alcotest.(check bool) (name ^ ": tree invariant") true (Ix.invariant ix);
  for g = 0 to 12 do
    let label = Printf.sprintf "%s: group %d" name g in
    match (Ix.group_lookup ix (Value.Int g), naive_stats tuples g) with
    | (None, None) -> ()
    | (Some s, Some (count, sum, vmin, vmax)) ->
        Alcotest.(check int) (label ^ " count") count s.Ix.g_count;
        Alcotest.(check bool) (label ^ " sum") true
          (Value.equal s.Ix.g_sum (Value.Int sum));
        Alcotest.(check bool) (label ^ " min") true
          (Value.equal s.Ix.g_min (Value.Int vmin));
        Alcotest.(check bool) (label ^ " max") true
          (Value.equal s.Ix.g_max (Value.Int vmax))
    | (Some s, None) ->
        Alcotest.failf "%s: stale group (count %d)" label s.Ix.g_count
    | (None, Some (count, _, _, _)) ->
        Alcotest.failf "%s: missing group (expected count %d)" label count
  done;
  Alcotest.(check bool) (name ^ ": absent group") true
    (Ix.group_lookup ix (Value.Int 999) = None)

let test_derived_group_stats () =
  List.iter
    (fun backend ->
      let name = Relation.backend_name backend in
      let keys = List.init 20 Fun.id in
      let ix = ok_or_fail (Ix.build der_desc (mk_rel backend 20)) in
      check_der_groups name ix keys;
      (* insert into an existing group *)
      let keys = 100 :: keys in
      let ix = Ix.apply ix ~removed:[] ~added:[ tup 100 ] in
      check_der_groups (name ^ " +100") ix keys;
      (* delete the maximum of its group: vmax must be recomputed *)
      let keys = List.filter (( <> ) 13) keys in
      let ix = Ix.apply ix ~removed:[ tup 13 ] ~added:[] in
      check_der_groups (name ^ " -13") ix keys;
      (* an update that moves a tuple between groups *)
      let moved = Tuple.make [ Value.Int 5; Value.Int 12; Value.Str "z" ] in
      let ix = Ix.apply ix ~removed:[ tup 5 ] ~added:[ moved ] in
      Alcotest.(check bool) (name ^ ": moved out of group 9") true
        (match Ix.group_lookup ix (Value.Int (5 * 7 mod 13)) with
        | Some s -> s.Ix.g_count = List.length (List.filter (fun k -> k <> 5 && k * 7 mod 13 = 5 * 7 mod 13) keys)
        | None -> false);
      Alcotest.(check bool) (name ^ ": moved into group 12") true
        (match Ix.group_lookup ix (Value.Int 12) with
        | Some s ->
            s.Ix.g_count
            = 1 + List.length (List.filter (fun k -> k <> 5 && k * 7 mod 13 = 12) keys)
        | None -> false);
      (* draining a whole group removes it *)
      let ix = Ix.apply ix ~removed:[ tup 0; tup 13 ] ~added:[] in
      ignore ix)
    backends

let test_derived_group_drained () =
  (* deleting every member of a group removes the group outright *)
  let r = mk_rel Relation.Two3_backend 20 in
  let ix = ok_or_fail (Ix.build der_desc r) in
  (* group 0 holds exactly the keys congruent to 0 mod 13: 0 and 13 *)
  Alcotest.(check bool) "group 0 present" true
    (match Ix.group_lookup ix (Value.Int 0) with
    | Some s -> s.Ix.g_count = 2
    | None -> false);
  let ix = Ix.apply ix ~removed:[ tup 0; tup 13 ] ~added:[] in
  Alcotest.(check bool) "group 0 drained" true
    (Ix.group_lookup ix (Value.Int 0) = None);
  Alcotest.(check bool) "drained invariant" true (Ix.invariant ix)

(* -- incremental maintenance == fresh rebuild through the write path ------- *)

let test_write_path_maintains () =
  List.iter
    (fun backend ->
      let name = Relation.backend_name backend in
      let db = mk_db backend 32 in
      let session = Ix.Session.create_exn catalog db in
      let use = Ix.Session.use session in
      let final =
        List.fold_left
          (fun db src ->
            let (resp, db') = Txn.translate_indexed use (parse src) db in
            (match resp with
            | Txn.Failed e -> Alcotest.failf "%s: %s: %s" name src e
            | _ -> ());
            db')
          db
          [ "insert (100, 3, \"q\") into R";
            "delete 10 from R";
            "update R set num = 99 where key >= 5 and key < 9";
            "insert (101, 0, \"a\") into R";
            "delete 7 from R";
            "update R set val = \"z\" where num = 99" ]
      in
      match Ix.Store.coherent (Ix.Session.store session) final with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" name e)
    backends

let test_maintenance_disabled_leaves_store () =
  (* maintain:false answers through the catalog but never advances it *)
  let db = mk_db Relation.Two3_backend 16 in
  let session = Ix.Session.create_exn catalog db in
  let before = Ix.Session.store session in
  let use = Ix.Session.use ~maintain:false session in
  let (resp, db') = Txn.translate_indexed use (parse "delete 3 from R") db in
  Alcotest.check response_t "delete applied" (Txn.Deleted true) resp;
  Alcotest.(check bool) "store untouched" true
    (Ix.Session.store session == before);
  match Ix.Store.coherent (Ix.Session.store session) db' with
  | Ok () -> Alcotest.fail "stale store reported coherent"
  | Error _ -> ()

(* -- structure sharing under maintenance (metered) ------------------------- *)

let test_maintenance_shares () =
  List.iter
    (fun backend ->
      let name = Relation.backend_name backend in
      let r = mk_rel backend 512 in
      List.iter
        (fun (desc : Plan.index_desc) ->
          let label = Printf.sprintf "%s/%s" name desc.Plan.ix_name in
          let ix = ok_or_fail (Ix.build desc r) in
          let m = Meter.create () in
          let ix' = Ix.apply ~meter:m ix ~removed:[] ~added:[ tup 1000 ] in
          let allocs = Meter.allocs m in
          let (shared, total) = Ix.shared_units ~old:ix ix' in
          Alcotest.(check bool)
            (Printf.sprintf "%s: %d fresh <= %d allocs" label (total - shared)
               allocs)
            true
            (total - shared <= allocs);
          (* scan indexes over 512 entries rebuild only a path: the bulk of
             the structure must be physically shared with the old version
             (derived indexes hold one node per group, so the path is the
             tree — sharing is asserted, dominance is not) *)
          (match desc.Plan.ix_kind with
          | Plan.Ix_derived _ -> ()
          | _ ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: %d allocs << %d units" label allocs total)
                true
                (allocs * 4 < total));
          Alcotest.(check bool) (label ^ ": invariant") true (Ix.invariant ix'))
        catalog)
    backends

(* -- seeded histories: differential + coherence + trace law ---------------- *)

let test_history_sweep_coherent () =
  for seed = 0 to 7 do
    let sc = Gen.generate { Gen.default_spec with seed } in
    let merged = Merge.merge (Merge.Seeded ((7 * seed) + 1)) sc.Gen.streams in
    let initial = Gen.initial_db sc in
    let session =
      Ix.Session.create_exn (Ix.Catalog.default_for sc.Gen.schemas) initial
    in
    let plain = ref initial and indexed = ref initial in
    let ((), events) =
      Trace.record (fun () ->
          List.iter
            (fun (m : _ Merge.tagged) ->
              let q = m.Merge.item in
              let (r1, db1) = Txn.translate q !plain in
              plain := db1;
              let (r2, db2) =
                Txn.translate_indexed (Ix.Session.use session) q !indexed
              in
              indexed := db2;
              Alcotest.check response_t
                (Printf.sprintf "seed %d: %s" seed (Ast.to_string q))
                r1 r2)
            merged)
    in
    (match Ix.Store.coherent (Ix.Session.store session) !indexed with
    | Ok () -> ()
    | Error e -> Alcotest.failf "seed %d: %s" seed e);
    Alcotest.(check int)
      (Printf.sprintf "seed %d: trace law-abiding" seed)
      0
      (List.length (Trace_oracle.check events));
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: maintenance observed" seed)
      true
      (List.exists
         (fun (e : Event.t) ->
           match e.Event.kind with Event.Index_maintain _ -> true | _ -> false)
         events)
  done

(* -- the index-coherence law on crafted traces ----------------------------- *)

let maintain ?(rel = "R") index base entries =
  { Event.ts = 0; site = 0;
    kind = Event.Index_maintain { rel; index; kind = "secondary"; base; entries } }

let test_index_coherence_crafted () =
  let viol = Trace_oracle.index_coherence in
  Alcotest.(check int) "lockstep trace is clean" 0
    (List.length
       (viol
          [ maintain "a" 5 5; maintain "b" 5 5; maintain "a" 6 6;
            maintain "b" 6 6 ]));
  Alcotest.(check bool) "entries <> base is flagged" true
    (viol [ maintain "a" 5 4 ] <> []);
  Alcotest.(check bool) "divergent base sequences are flagged" true
    (viol
       [ maintain "a" 5 5; maintain "b" 5 5; maintain "a" 6 6;
         maintain "b" 7 7 ]
    <> []);
  Alcotest.(check bool) "missed maintenance is flagged" true
    (viol [ maintain "a" 5 5; maintain "b" 5 5; maintain "a" 6 6 ] <> []);
  (* indexes on different relations are independent lockstep groups *)
  Alcotest.(check int) "per-relation lockstep" 0
    (List.length
       (viol [ maintain ~rel:"R" "a" 5 5; maintain ~rel:"S" "b" 9 9 ]))

(* -- catalog validation ----------------------------------------------------- *)

let test_catalog_validate () =
  let ok c = Ix.Catalog.validate [ schema ] c in
  (match ok catalog with
  | Ok () -> ()
  | Error e -> Alcotest.failf "valid catalog rejected: %s" e);
  let expect_err label c =
    match ok c with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "%s accepted" label
  in
  expect_err "unknown relation"
    [ { sec_desc with Plan.ix_rel = "Zz"; ix_name = "Zz_sec" } ];
  expect_err "unknown column" [ { sec_desc with Plan.ix_col = "ghost" } ];
  expect_err "duplicate name" [ sec_desc; sec_desc ];
  expect_err "covering misses a column"
    [ { cov_desc with Plan.ix_kind = Plan.Ix_covering [ "key"; "ghost" ] } ];
  expect_err "derived target unknown"
    [ { der_desc with Plan.ix_kind = Plan.Ix_derived "ghost" } ]

let () =
  Alcotest.run "index"
    [
      ( "analyze",
        [
          Alcotest.test_case "mixed conjuncts split probe+residual" `Quick
            test_analyze_mixed_conjuncts;
          Alcotest.test_case "derived group plans" `Quick
            test_analyze_group_residual_blocks;
          Alcotest.test_case "golden indexed explain lines" `Quick
            test_explain_indexed_golden;
          Alcotest.test_case "golden indexed plans on 4 backends" `Quick
            test_explain_indexed_on_backends;
          Alcotest.test_case "catalog validation" `Quick test_catalog_validate;
        ] );
      ( "derived",
        [
          Alcotest.test_case "group stats vs naive (4 backends)" `Quick
            test_derived_group_stats;
          Alcotest.test_case "drained group removed" `Quick
            test_derived_group_drained;
        ] );
      ( "maintenance",
        [
          Alcotest.test_case "write path == fresh rebuild (4 backends)" `Quick
            test_write_path_maintains;
          Alcotest.test_case "maintain:false leaves the store" `Quick
            test_maintenance_disabled_leaves_store;
          Alcotest.test_case "structure sharing (metered, 4 backends)" `Quick
            test_maintenance_shares;
        ] );
      ( "equivalence",
        [ QCheck_alcotest.to_alcotest prop_indexed_matches_plain ] );
      ( "histories",
        [
          Alcotest.test_case "seeded sweep: differential + coherent + lawful"
            `Quick test_history_sweep_coherent;
          Alcotest.test_case "index-coherence law on crafted traces" `Quick
            test_index_coherence_crafted;
        ] );
    ]
