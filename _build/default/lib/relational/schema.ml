type ctype = CInt | CStr | CBool | CReal

type t = { name : string; cols : (string * ctype) list }

let make ~name ~cols =
  if cols = [] then invalid_arg "Schema.make: no columns";
  let names = List.map fst cols in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then invalid_arg "Schema.make: duplicate column names";
  { name; cols }

let name s = s.name
let columns s = s.cols
let arity s = List.length s.cols

let column_index s col =
  let rec go i = function
    | [] -> None
    | (c, _) :: rest -> if String.equal c col then Some i else go (i + 1) rest
  in
  go 0 s.cols

let type_ok ctype v =
  match (ctype, v) with
  | (CInt, Value.Int _)
  | (CStr, Value.Str _)
  | (CBool, Value.Bool _)
  | (CReal, Value.Real _) ->
      true
  | ((CInt | CStr | CBool | CReal), _) -> false

let matches s tuple =
  Tuple.arity tuple = arity s
  && List.for_all2 type_ok (List.map snd s.cols) (Array.to_list tuple)

let pp_ctype ppf = function
  | CInt -> Format.fprintf ppf "int"
  | CStr -> Format.fprintf ppf "string"
  | CBool -> Format.fprintf ppf "bool"
  | CReal -> Format.fprintf ppf "real"

let pp ppf s =
  let pp_col ppf (c, ty) = Format.fprintf ppf "%s:%a" c pp_ctype ty in
  Format.fprintf ppf "%s(%a)" s.name
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_col)
    s.cols
