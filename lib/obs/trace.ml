let on = ref false
let sink : (Event.t -> unit) ref = ref (fun _ -> ())
let counter = ref 0

(* Bounded ring of recent events, kept independently of the sink so that
   exception diagnostics can always show a tail. *)
let ring_cap = 64
let ring : Event.t option array = Array.make ring_cap None
let ring_next = ref 0

let enabled () = !on

let set_sink = function
  | None ->
      on := false;
      sink := fun _ -> ()
  | Some f ->
      sink := f;
      on := true

let emit_at ~ts ~site kind =
  if !on then begin
    let ev = { Event.ts; site; kind } in
    ring.(!ring_next mod ring_cap) <- Some ev;
    incr ring_next;
    !sink ev
  end

let emit kind =
  incr counter;
  emit_at ~ts:!counter ~site:(-1) kind

let record f =
  let saved_on = !on and saved_sink = !sink in
  let acc = ref [] in
  set_sink (Some (fun ev -> acc := ev :: !acc));
  let restore () =
    on := saved_on;
    sink := saved_sink
  in
  match f () with
  | x ->
      restore ();
      (x, List.rev !acc)
  | exception e ->
      restore ();
      raise e

let tail ?(n = 12) () =
  let events = ref [] in
  for i = !ring_next - 1 downto max 0 (!ring_next - min n ring_cap) do
    match ring.(i mod ring_cap) with
    | Some ev -> events := Event.to_string ev :: !events
    | None -> ()
  done;
  !events

let clear_tail () =
  Array.fill ring 0 ring_cap None;
  ring_next := 0
