(** Read/write footprints of transactions-as-functions.

    Because a transaction is a pure function over a database version
    (paper §2.1), the data it depends on is exactly what it {e read} while
    executing, and the data it publishes is exactly what it {e wrote}.  A
    {!type:collector} turns those accesses — reported through a
    {!Fdb_txn.Txn.tracker} — into a value that conflict analysis can
    compare: per-relation read {e spans} (keys, key ranges, or the whole
    relation) and per-relation write effects (removed and added tuples).

    Transaction Repair (PAPERS.md) needs only one direction of conflict:
    an {e earlier} transaction's writes invalidating a {e later}
    transaction's reads.  Write-write ordering is restored by replaying
    effects in batch order, and read-read never conflicts. *)

open Fdb_relational

type span =
  | Keys of Value.t list  (** point reads: key existence / point lookups *)
  | Range of Relation.bound option * Relation.bound option
      (** a planner range scan; [None] bounds are open ends *)
  | All  (** full scan — any write to the relation invalidates it *)

type t = {
  reads : (string * span list) list;  (** per relation, latest span first *)
  writes : (string * Value.t list) list;  (** keys written, per relation *)
  effects : (string * (Tuple.t list * Tuple.t list)) list;
      (** per relation, (removed, added) tuples in execution order — the
          replayable publication of the transaction *)
}

val empty : t

type collector
(** Mutable accumulator; single-writer (the executing transaction). *)

val collector : unit -> collector
val tracker : collector -> Fdb_txn.Txn.tracker
val captured : collector -> t

val key_in_span : Value.t -> span -> bool

type verdict =
  | No_overlap  (** no relation is both written (earlier) and read (later) *)
  | Key_disjoint
      (** same relation touched, but every written key misses every read
          span — the disjoint-key commutativity bypass *)
  | Overlapping  (** some written key lands inside a read span *)

val overlap : writer:t -> reader:t -> verdict
(** Does [writer] (the earlier transaction) potentially damage [reader]
    (the later one)?  [Overlapping] is a conservative answer; callers may
    still discharge it semantically via {!val:commutes}. *)

val commutes :
  schema_of:(string -> Schema.t option) -> t -> Fdb_query.Ast.query -> bool
(** [commutes ~schema_of writer reader_q]: semantic commutativity bypass
    ("Limits of Commutativity", PAPERS.md).  True when [reader_q] is a
    predicate query (select / count / aggregate / update) over a single
    relation and {e every} tuple the writer removed or added in that
    relation fails the reader's full [where] predicate — then the reader's
    matching set, hence its response and its own effects, are unchanged by
    the writer, so the pair commutes even though their key spans overlap.
    Conservatively false for any other query shape or when the predicate
    does not compile. *)
