(* Rediflow machine-mode tests: timing, load balancing, speedup sanity. *)

open Fdb_kernel
open Fdb_net
open Fdb_rediflow

let run_on topo ?(balance = true) f =
  let machine =
    Machine.create { (Machine.default_config topo) with balance }
  in
  let eng = Engine.create ~scheduler:(Machine.scheduler machine) () in
  f eng;
  let stats = Engine.run eng in
  (stats, Machine.machine_stats machine)

(* The same program in ideal mode, for task-count baselines. *)
let run_ideal f =
  let eng = Engine.create () in
  f eng;
  Engine.run eng

let fanout_program width eng =
  let src = Engine.ivar eng in
  for _ = 1 to width do
    Engine.await src (fun _ -> ())
  done;
  Engine.spawn eng (fun () -> Engine.put src ())

let chain_program n eng =
  let first = Engine.ivar eng in
  let rec chain i prev =
    if i < n then begin
      let next = Engine.ivar eng in
      Engine.await prev (fun v -> Engine.put next (v + 1));
      chain (i + 1) next
    end
  in
  chain 0 first;
  Engine.spawn eng (fun () -> Engine.put first 0)

let test_single_pe_is_sequential () =
  (* On one PE a width-w fanout serializes: makespan >= tasks. *)
  let w = 20 in
  let (stats, _) = run_on (Topology.single ()) (fanout_program w) in
  Alcotest.(check int) "tasks" (w + 1) stats.Engine.tasks;
  Alcotest.(check int) "ply 1" 1 stats.Engine.max_ply;
  Alcotest.(check bool) "makespan >= tasks" true
    (stats.Engine.cycles >= stats.Engine.tasks)

let test_chain_gains_nothing_from_parallelism () =
  let n = 30 in
  let (s1, _) = run_on (Topology.single ()) (chain_program n) in
  let (s8, _) = run_on (Topology.hypercube 3) (chain_program n) in
  (* A pure chain cannot speed up; communication can only slow it down. *)
  Alcotest.(check bool) "8 PEs no faster on a chain" true
    (s8.Engine.cycles >= s1.Engine.cycles)

let test_fanout_speedup_with_balancing () =
  let w = 200 in
  let (s1, _) = run_on (Topology.single ()) (fanout_program w) in
  let (s8, _) = run_on (Topology.hypercube 3) (fanout_program w) in
  let speedup =
    float_of_int s1.Engine.cycles /. float_of_int s8.Engine.cycles
  in
  Alcotest.(check bool)
    (Printf.sprintf "speedup %.2f in (2, 8]" speedup)
    true
    (speedup > 2.0 && speedup <= 8.0)

let test_balancing_beats_no_balancing () =
  let w = 200 in
  let topo = Topology.hypercube 3 in
  let (with_b, mb) = run_on topo ~balance:true (fanout_program w) in
  let (without_b, mn) = run_on topo ~balance:false (fanout_program w) in
  Alcotest.(check bool) "balancing strictly helps on a fanout" true
    (with_b.Engine.cycles < without_b.Engine.cycles);
  Alcotest.(check bool) "migrations happened" true (mb.Machine.migrations > 0);
  Alcotest.(check int) "no migrations when disabled" 0 mn.Machine.migrations

let test_all_tasks_execute_on_machine () =
  let w = 100 in
  let ideal = run_ideal (fanout_program w) in
  let (machine, ms) = run_on (Topology.mesh3d 3 3 3) (fanout_program w) in
  Alcotest.(check int) "same task count as ideal" ideal.Engine.tasks
    machine.Engine.tasks;
  Alcotest.(check int) "per-PE counts sum to total" machine.Engine.tasks
    (Array.fold_left ( + ) 0 ms.Machine.pe_tasks);
  Alcotest.(check int) "no orphans" 0 machine.Engine.orphans

let test_max_ply_bounded_by_pe_count () =
  let (stats, _) = run_on (Topology.hypercube 2) (fanout_program 50) in
  Alcotest.(check bool) "ply <= 4 PEs" true (stats.Engine.max_ply <= 4)

let test_remote_demand_costs_distance () =
  (* The data lives at site 0 (a full cell); a task at site 7 of
     hypercube-3 (distance 3) demands it.  Rediflow semantics: the demand
     travels to the data and the continuation executes at the data's
     site. *)
  let topo = Topology.hypercube 3 in
  let machine = Machine.create (Machine.default_config topo) in
  let eng = Engine.create ~scheduler:(Machine.scheduler machine) () in
  let iv = Engine.full_at eng ~site:0 () in
  let done_at = ref (-1) and done_site = ref (-1) in
  Engine.spawn eng ~site:7 (fun () ->
      Engine.await iv (fun () ->
          done_at := Engine.now eng;
          done_site := Engine.current_site eng));
  let stats = Engine.run eng in
  (* cycle 0: the demander runs at site 7; its demand enters the fabric
     during cycle 0 and takes 3 hops; the continuation executes at the
     data's site at cycle 3. *)
  Alcotest.(check int) "continuation ran at cycle 3" 3 !done_at;
  Alcotest.(check int) "continuation ran at the data's site" 0 !done_site;
  Alcotest.(check int) "makespan 4" 4 stats.Engine.cycles

let test_deferred_put_delivers_to_cell_home () =
  (* A waiter registers on an empty cell homed at site 5; the put happens
     at site 0.  The data travels put-site -> cell-home and the
     continuation fires at the cell's home. *)
  let topo = Topology.ring 8 in
  let machine = Machine.create (Machine.default_config topo) in
  let eng = Engine.create ~scheduler:(Machine.scheduler machine) () in
  let iv = Engine.ivar_at eng ~site:5 in
  let done_site = ref (-1) in
  Engine.spawn eng ~site:2 (fun () ->
      Engine.await iv (fun () -> done_site := Engine.current_site eng));
  Engine.spawn eng ~site:0 (fun () -> Engine.put iv ());
  ignore (Engine.run eng);
  Alcotest.(check int) "continuation at the cell's home" 5 !done_site

let test_utilization_and_imbalance () =
  let (stats, ms) = run_on (Topology.hypercube 3) (fanout_program 300) in
  let u = Machine.utilization ms ~cycles:stats.Engine.cycles in
  Alcotest.(check bool) "utilization in (0,1]" true (u > 0.0 && u <= 1.0);
  Alcotest.(check bool) "imbalance >= 1" true (Machine.imbalance ms >= 1.0)

let test_machine_determinism () =
  let go () =
    let (s, m) = run_on (Topology.mesh3d 2 2 2) (fanout_program 77) in
    (s.Engine.cycles, s.Engine.tasks, m.Machine.migrations)
  in
  Alcotest.(check (triple int int int)) "bit-identical rerun" (go ()) (go ())

(* qcheck: arbitrary fanout/chain mixes complete with no orphans on every
   topology, and machine-mode task counts equal ideal-mode task counts. *)
let prop_machine_completes =
  QCheck2.Test.make ~name:"machine mode executes the full graph" ~count:60
    QCheck2.Gen.(triple (int_range 0 3) (int_range 1 80) (int_range 0 1000))
    (fun (shape, n, seed) ->
      let topo =
        match shape with
        | 0 -> Topology.hypercube 2
        | 1 -> Topology.mesh3d 2 2 2
        | 2 -> Topology.ring 5
        | _ -> Topology.star 4
      in
      let program eng =
        let rand = Random.State.make [| seed |] in
        let root = Engine.ivar eng in
        let prev = ref root in
        for _ = 1 to n do
          if Random.State.bool rand then
            Engine.await !prev (fun _ -> ())
          else begin
            let next = Engine.ivar eng in
            let p = !prev in
            Engine.await p (fun v -> Engine.put next v);
            prev := next
          end
        done;
        Engine.spawn eng (fun () -> Engine.put root 0)
      in
      let ideal = run_ideal program in
      let (machine, _) = run_on topo program in
      machine.Engine.tasks = ideal.Engine.tasks
      && machine.Engine.orphans = 0
      && machine.Engine.cycles >= ideal.Engine.cycles)

let () =
  Alcotest.run "rediflow"
    [
      ( "timing",
        [
          Alcotest.test_case "single PE sequential" `Quick
            test_single_pe_is_sequential;
          Alcotest.test_case "chain immune to parallelism" `Quick
            test_chain_gains_nothing_from_parallelism;
          Alcotest.test_case "remote demand = distance" `Quick
            test_remote_demand_costs_distance;
          Alcotest.test_case "deferred put -> cell home" `Quick
            test_deferred_put_delivers_to_cell_home;
        ] );
      ( "parallelism",
        [
          Alcotest.test_case "fanout speedup" `Quick
            test_fanout_speedup_with_balancing;
          Alcotest.test_case "balancing helps" `Quick
            test_balancing_beats_no_balancing;
          Alcotest.test_case "ply bounded by PEs" `Quick
            test_max_ply_bounded_by_pe_count;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "all tasks execute" `Quick
            test_all_tasks_execute_on_machine;
          Alcotest.test_case "utilization/imbalance" `Quick
            test_utilization_and_imbalance;
          Alcotest.test_case "determinism" `Quick test_machine_determinism;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_machine_completes ]);
    ]
