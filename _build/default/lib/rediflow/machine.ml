open Fdb_kernel
open Fdb_net

type config = {
  topo : Topology.t;
  link_capacity : int;
  balance : bool;
  balance_threshold : int;
}

let default_config topo =
  { topo; link_capacity = 1; balance = true; balance_threshold = 2 }

type t = {
  cfg : config;
  n : int;
  ready : Engine.task Queue.t array;
  incoming : Engine.task Queue.t array;  (* arrivals, merged at advance *)
  fabric : Engine.task Fabric.t;
  pe_tasks : int array;
  mutable migrations : int;
  mutable idle_cycles : int;
}

let create cfg =
  let n = Topology.size cfg.topo in
  {
    cfg;
    n;
    ready = Array.init n (fun _ -> Queue.create ());
    incoming = Array.init n (fun _ -> Queue.create ());
    fabric = Fabric.create ~link_capacity:cfg.link_capacity cfg.topo;
    pe_tasks = Array.make n 0;
    migrations = 0;
    idle_cycles = 0;
  }

let clamp_site m s = if s < 0 || s >= m.n then 0 else s

let enqueue m (task : Engine.task) ~src =
  task.Engine.home <- clamp_site m task.Engine.home;
  let dst = task.Engine.home in
  if src < 0 || src = dst then Queue.push task m.incoming.(dst)
  else Fabric.send m.fabric ~src:(clamp_site m src) ~dst task

let next_batch m =
  let batch = ref [] in
  for pe = m.n - 1 downto 0 do
    if not (Queue.is_empty m.ready.(pe)) then begin
      let task = Queue.pop m.ready.(pe) in
      m.pe_tasks.(pe) <- m.pe_tasks.(pe) + 1;
      batch := task :: !batch
    end
  done;
  if !batch = [] then m.idle_cycles <- m.idle_cycles + 1;
  !batch

let balance m =
  (* Pressure diffusion: service links in fixed order; move at most one
     task per directed link per cycle, from the tail of the heavier queue
     toward the lighter neighbour.  The export travels like any message. *)
  let moved = Array.make m.n 0 in
  let consider (u, v) =
    let lu = Queue.length m.ready.(u) - moved.(u)
    and lv = Queue.length m.ready.(v) in
    if lu > lv + m.cfg.balance_threshold then begin
      (* take from the back: keep old work local, export fresh work *)
      let keep = Queue.create () in
      Queue.transfer m.ready.(u) keep;
      let exported = ref None in
      while not (Queue.is_empty keep) do
        let t = Queue.pop keep in
        if Queue.is_empty keep && !exported = None then exported := Some t
        else Queue.push t m.ready.(u)
      done;
      match !exported with
      | None -> ()
      | Some task ->
          moved.(u) <- moved.(u) + 1;
          m.migrations <- m.migrations + 1;
          task.Engine.home <- v;
          Fabric.send m.fabric ~src:u ~dst:v task
    end
  in
  List.iter consider (Topology.links m.cfg.topo)

let advance m =
  List.iter
    (fun (dst, (task : Engine.task)) ->
      task.Engine.home <- dst;
      Queue.push task m.incoming.(dst))
    (Fabric.step m.fabric);
  for pe = 0 to m.n - 1 do
    Queue.transfer m.incoming.(pe) m.ready.(pe)
  done;
  if m.cfg.balance then balance m

let pending m =
  Fabric.in_flight m.fabric > 0
  || Array.exists (fun q -> not (Queue.is_empty q)) m.ready
  || Array.exists (fun q -> not (Queue.is_empty q)) m.incoming

let scheduler m =
  {
    Engine.sched_name = Topology.name m.cfg.topo;
    sched_enqueue = (fun task ~src -> enqueue m task ~src);
    sched_next_batch = (fun () -> next_batch m);
    sched_advance = (fun () -> advance m);
    sched_pending = (fun () -> pending m);
  }

type machine_stats = {
  pe_tasks : int array;
  migrations : int;
  net : Fabric.stats;
  idle_cycles : int;
}

let machine_stats (m : t) =
  {
    pe_tasks = Array.copy m.pe_tasks;
    migrations = m.migrations;
    net = Fabric.stats m.fabric;
    idle_cycles = m.idle_cycles;
  }

let utilization st ~cycles =
  let p = Array.length st.pe_tasks in
  if p = 0 || cycles = 0 then 0.0
  else
    float_of_int (Array.fold_left ( + ) 0 st.pe_tasks)
    /. float_of_int (p * cycles)

let imbalance st =
  let p = Array.length st.pe_tasks in
  let total = Array.fold_left ( + ) 0 st.pe_tasks in
  if p = 0 || total = 0 then 1.0
  else
    let mx = Array.fold_left max 0 st.pe_tasks in
    float_of_int mx /. (float_of_int total /. float_of_int p)
