(* Topology and fabric tests. *)

open Fdb_net

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
  go x 0

let test_hypercube_shape () =
  let t = Topology.hypercube 3 in
  Alcotest.(check int) "8 nodes" 8 (Topology.size t);
  Alcotest.(check int) "diameter" 3 (Topology.diameter t);
  for u = 0 to 7 do
    Alcotest.(check int)
      (Printf.sprintf "degree of %d" u)
      3
      (List.length (Topology.neighbors t u))
  done

let test_hypercube_distance_is_hamming () =
  let t = Topology.hypercube 4 in
  for u = 0 to 15 do
    for v = 0 to 15 do
      Alcotest.(check int)
        (Printf.sprintf "d(%d,%d)" u v)
        (popcount (u lxor v))
        (Topology.distance t u v)
    done
  done

let test_mesh3d_distance_is_manhattan () =
  let t = Topology.mesh3d 3 3 3 in
  Alcotest.(check int) "27 nodes" 27 (Topology.size t);
  Alcotest.(check int) "diameter" 6 (Topology.diameter t);
  let coord i = (i mod 3, i / 3 mod 3, i / 9) in
  for u = 0 to 26 do
    for v = 0 to 26 do
      let (x1, y1, z1) = coord u and (x2, y2, z2) = coord v in
      Alcotest.(check int)
        (Printf.sprintf "d(%d,%d)" u v)
        (abs (x1 - x2) + abs (y1 - y2) + abs (z1 - z2))
        (Topology.distance t u v)
    done
  done

let test_ring_distance () =
  let t = Topology.ring 10 in
  Alcotest.(check int) "half way" 5 (Topology.distance t 0 5);
  Alcotest.(check int) "wrap" 1 (Topology.distance t 0 9);
  Alcotest.(check int) "diameter" 5 (Topology.diameter t)

let test_star_and_complete () =
  let s = Topology.star 6 in
  Alcotest.(check int) "star diameter" 2 (Topology.diameter s);
  Alcotest.(check int) "leaf to leaf" 2 (Topology.distance s 3 5);
  Alcotest.(check int) "hub degree" 5 (List.length (Topology.neighbors s 0));
  let c = Topology.complete 5 in
  Alcotest.(check int) "complete diameter" 1 (Topology.diameter c)

let test_torus () =
  let t = Topology.torus2d 4 4 in
  Alcotest.(check int) "16 nodes" 16 (Topology.size t);
  Alcotest.(check int) "diameter" 4 (Topology.diameter t);
  Alcotest.(check int) "wraparound x" 1 (Topology.distance t 0 3)

let test_next_hop_decreases_distance () =
  let check t =
    let n = Topology.size t in
    for u = 0 to n - 1 do
      for v = 0 to n - 1 do
        if u <> v then begin
          let h = Topology.next_hop t ~src:u ~dst:v in
          Alcotest.(check bool)
            (Printf.sprintf "%s: hop(%d->%d) progresses" (Topology.name t) u v)
            true
            (Topology.distance t h v = Topology.distance t u v - 1)
        end
      done
    done
  in
  List.iter check
    [
      Topology.hypercube 3;
      Topology.mesh3d 3 3 3;
      Topology.ring 7;
      Topology.torus2d 3 4;
      Topology.star 5;
    ]

let test_line () =
  let t = Topology.line 6 in
  Alcotest.(check int) "diameter" 5 (Topology.diameter t);
  Alcotest.(check int) "end to end" 5 (Topology.distance t 0 5);
  Alcotest.(check (list int)) "interior degree" [ 1; 3 ]
    (Topology.neighbors t 2)

let test_single () =
  let t = Topology.single () in
  Alcotest.(check int) "1 node" 1 (Topology.size t);
  Alcotest.(check int) "diameter 0" 0 (Topology.diameter t)

let prop_random_topology_routes =
  QCheck2.Test.make ~name:"random connected graphs route correctly" ~count:100
    QCheck2.Gen.(triple (int_range 2 20) (int_range 0 15) (int_range 0 9999))
    (fun (n, extra, seed) ->
      let t = Topology.random ~seed ~n ~extra_edges:extra in
      (* connected: every pair has a finite distance, and next_hop always
         makes progress *)
      List.for_all
        (fun u ->
          List.for_all
            (fun v ->
              u = v
              ||
              let d = Topology.distance t u v in
              d >= 1
              && Topology.distance t (Topology.next_hop t ~src:u ~dst:v) v
                 = d - 1)
            (List.init n (fun i -> i)))
        (List.init n (fun i -> i)))

(* -- fabric --------------------------------------------------------------- *)

let drain_until_delivered fabric expected =
  let delivered = ref [] and cycles = ref 0 in
  while List.length !delivered < expected && !cycles < 10_000 do
    delivered := !delivered @ Fabric.step fabric;
    incr cycles
  done;
  (!delivered, !cycles)

let test_fabric_delivery_time_is_distance () =
  let t = Topology.hypercube 3 in
  let f = Fabric.create t in
  Fabric.send f ~src:0 ~dst:7 "x";
  let (delivered, cycles) = drain_until_delivered f 1 in
  Alcotest.(check (list (pair int string))) "delivered" [ (7, "x") ] delivered;
  Alcotest.(check int) "3 hops = 3 cycles" 3 cycles

let test_fabric_local_handoff () =
  let f = Fabric.create (Topology.ring 4) in
  Fabric.send f ~src:2 ~dst:2 "loop";
  let (delivered, cycles) = drain_until_delivered f 1 in
  Alcotest.(check (list (pair int string))) "delivered" [ (2, "loop") ]
    delivered;
  Alcotest.(check int) "next cycle" 1 cycles

let test_fabric_link_contention () =
  (* Two messages over the same first link: second is delayed one cycle. *)
  let t = Topology.ring 8 in
  let f = Fabric.create ~link_capacity:1 t in
  Fabric.send f ~src:0 ~dst:2 "a";
  Fabric.send f ~src:0 ~dst:2 "b";
  let (delivered, cycles) = drain_until_delivered f 2 in
  Alcotest.(check int) "both arrive" 2 (List.length delivered);
  Alcotest.(check int) "serialized on first link" 3 cycles

let test_fabric_capacity_two_avoids_contention () =
  let t = Topology.ring 8 in
  let f = Fabric.create ~link_capacity:2 t in
  Fabric.send f ~src:0 ~dst:2 "a";
  Fabric.send f ~src:0 ~dst:2 "b";
  let (_, cycles) = drain_until_delivered f 2 in
  Alcotest.(check int) "no serialization" 2 cycles

let test_bus_serializes () =
  let f = Fabric.create (Topology.bus 5) in
  for i = 1 to 4 do
    Fabric.send f ~src:0 ~dst:i i
  done;
  let (delivered, cycles) = drain_until_delivered f 4 in
  Alcotest.(check int) "all arrive" 4 (List.length delivered);
  Alcotest.(check int) "medium is serial" 4 cycles;
  (* arrival order preserved: the bus is a merge in arrival order *)
  Alcotest.(check (list int)) "FIFO medium" [ 1; 2; 3; 4 ]
    (List.map snd delivered)

let test_fabric_stats () =
  let f = Fabric.create (Topology.hypercube 2) in
  Fabric.send f ~src:0 ~dst:3 "m";
  ignore (drain_until_delivered f 1);
  let s = Fabric.stats f in
  Alcotest.(check int) "sent" 1 s.Fabric.sent;
  Alcotest.(check int) "delivered" 1 s.Fabric.delivered;
  Alcotest.(check int) "hops" 2 s.Fabric.hops;
  Alcotest.(check int) "in flight drained" 0 (Fabric.in_flight f)

let test_broadcast () =
  let f = Fabric.create (Topology.bus 5) in
  Fabric.broadcast f ~src:2 "hello";
  let (delivered, _) = drain_until_delivered f 4 in
  Alcotest.(check (list (pair int string))) "everyone but the source"
    [ (0, "hello"); (1, "hello"); (3, "hello"); (4, "hello") ]
    (List.sort compare delivered)

(* -- fabric accounting ------------------------------------------------------ *)

let test_fabric_local_handoff_accounting () =
  let f = Fabric.create (Topology.ring 5) in
  for i = 0 to 3 do
    Fabric.send f ~src:i ~dst:i i
  done;
  Alcotest.(check int) "in flight" 4 (Fabric.in_flight f);
  let delivered = Fabric.step f in
  Alcotest.(check int) "all hand-offs complete next cycle" 4
    (List.length delivered);
  let s = Fabric.stats f in
  Alcotest.(check int) "local hand-off uses no medium hops" 0 s.Fabric.hops;
  Alcotest.(check int) "high-water mark" 4 s.Fabric.max_in_flight;
  Alcotest.(check int) "drained" 0 (Fabric.in_flight f)

let test_bus_capacity_service_order () =
  (* Capacity 2: the bus services its arrival-order queue in chunks of at
     most 2 per cycle, never reordering. *)
  let f = Fabric.create ~link_capacity:2 (Topology.bus 6) in
  for i = 1 to 5 do
    Fabric.send f ~src:(i mod 3) ~dst:5 i
  done;
  Alcotest.(check (list int)) "cycle 1" [ 1; 2 ]
    (List.map snd (Fabric.step f));
  Alcotest.(check (list int)) "cycle 2" [ 3; 4 ]
    (List.map snd (Fabric.step f));
  Alcotest.(check (list int)) "cycle 3" [ 5 ] (List.map snd (Fabric.step f));
  let s = Fabric.stats f in
  Alcotest.(check int) "one hop per bus delivery" 5 s.Fabric.hops;
  Alcotest.(check int) "max in flight" 5 s.Fabric.max_in_flight

(* Random send/service schedules: after every action,
   in_flight = sent - delivered and max_in_flight is a true high-water
   mark; after draining, hops equals the sum of shortest-path distances
   (point-to-point) or the count of non-local deliveries (bus), with
   src = dst hand-offs contributing zero. *)
let prop_fabric_accounting =
  QCheck2.Test.make ~name:"fabric accounting invariants" ~count:100
    QCheck2.Gen.(triple (int_range 0 4) (int_range 1 10) (int_range 0 9999))
    (fun (shape, ticks, seed) ->
      let t =
        match shape with
        | 0 -> Topology.hypercube 3
        | 1 -> Topology.mesh3d 2 3 2
        | 2 -> Topology.ring 9
        | 3 -> Topology.star 7
        | _ -> Topology.bus 6
      in
      let n = Topology.size t in
      let rand = Random.State.make [| seed; 0xfab |] in
      let f = Fabric.create t in
      let expected_hops = ref 0 in
      let ok = ref true in
      let check_inv () =
        let s = Fabric.stats f in
        if Fabric.in_flight f <> s.Fabric.sent - s.Fabric.delivered then
          ok := false;
        if s.Fabric.max_in_flight < Fabric.in_flight f then ok := false;
        if s.Fabric.max_in_flight > s.Fabric.sent then ok := false
      in
      for _ = 1 to ticks do
        for _ = 1 to Random.State.int rand 4 do
          let src = Random.State.int rand n and dst = Random.State.int rand n in
          Fabric.send f ~src ~dst ();
          (match Topology.kind t with
          | Topology.Point_to_point ->
              expected_hops := !expected_hops + Topology.distance t src dst
          | Topology.Shared_bus -> if src <> dst then incr expected_hops);
          check_inv ()
        done;
        ignore (Fabric.step f);
        check_inv ()
      done;
      let guard = ref 0 in
      while Fabric.in_flight f > 0 && !guard < 10_000 do
        ignore (Fabric.step f);
        check_inv ();
        incr guard
      done;
      let s = Fabric.stats f in
      !ok
      && Fabric.in_flight f = 0
      && s.Fabric.delivered = s.Fabric.sent
      && s.Fabric.hops = !expected_hops)

(* qcheck: random messages on random topologies all arrive, each taking at
   least distance cycles. *)
let prop_all_messages_delivered =
  QCheck2.Test.make ~name:"fabric delivers everything" ~count:100
    QCheck2.Gen.(triple (int_range 0 4) (int_range 1 30) (int_range 0 1000))
    (fun (shape, k, seed) ->
      let t =
        match shape with
        | 0 -> Topology.hypercube 3
        | 1 -> Topology.mesh3d 2 3 2
        | 2 -> Topology.ring 9
        | 3 -> Topology.star 7
        | _ -> Topology.bus 6
      in
      let rand = Random.State.make [| seed |] in
      let n = Topology.size t in
      let f = Fabric.create t in
      for i = 0 to k - 1 do
        Fabric.send f ~src:(Random.State.int rand n)
          ~dst:(Random.State.int rand n) i
      done;
      let (delivered, _) = drain_until_delivered f k in
      List.length delivered = k && Fabric.in_flight f = 0)

(* -- reliable channel over a lossy medium ---------------------------------- *)

let test_reliable_lossless () =
  let r = Reliable.create (Topology.ring 6) in
  Reliable.send r ~src:0 ~dst:3 "m1";
  Reliable.send r ~src:0 ~dst:3 "m2";
  let delivered = Reliable.run_to_quiescence r in
  Alcotest.(check (list (pair int string))) "in order"
    [ (3, "m1"); (3, "m2") ] delivered;
  let s = Reliable.stats r in
  Alcotest.(check int) "no retransmissions" 2 s.Reliable.transmissions;
  Alcotest.(check int) "no drops" 0 s.Reliable.drops

let test_reliable_survives_loss () =
  let r = Reliable.create ~drop_one_in:3 ~seed:7 (Topology.hypercube 3) in
  for i = 0 to 19 do
    Reliable.send r ~src:(i mod 4) ~dst:(7 - (i mod 4)) i
  done;
  let delivered = Reliable.run_to_quiescence r in
  Alcotest.(check int) "all 20 arrive exactly once" 20
    (List.length delivered);
  let s = Reliable.stats r in
  Alcotest.(check bool) "losses happened" true (s.Reliable.drops > 0);
  Alcotest.(check bool) "retransmissions happened" true
    (s.Reliable.transmissions > 20)

let test_reliable_fifo_per_pair () =
  let r = Reliable.create ~drop_one_in:4 ~seed:11 (Topology.ring 5) in
  for i = 0 to 9 do
    Reliable.send r ~src:0 ~dst:2 i
  done;
  let delivered = Reliable.run_to_quiescence r in
  let payloads = List.map snd delivered in
  (* exactly once, and (with FIFO links + dedup) no reordering across a
     retransmission boundary is guaranteed only per seq acceptance: check
     set equality and that each value appears once *)
  Alcotest.(check (list int)) "each exactly once" [0;1;2;3;4;5;6;7;8;9]
    (List.sort compare payloads)

let prop_reliable_exactly_once =
  QCheck2.Test.make ~name:"exactly-once under random loss" ~count:60
    QCheck2.Gen.(triple (int_range 2 6) (int_range 1 25) (int_range 0 999))
    (fun (loss, k, seed) ->
      let r =
        Reliable.create ~drop_one_in:loss ~seed (Topology.mesh3d 2 2 2)
      in
      let rand = Random.State.make [| seed + 1 |] in
      let sent = ref [] in
      for i = 0 to k - 1 do
        let src = Random.State.int rand 8 in
        let dst = Random.State.int rand 8 in
        if src <> dst then begin
          sent := i :: !sent;
          Reliable.send r ~src ~dst i
        end
      done;
      let delivered = Reliable.run_to_quiescence r in
      List.sort compare (List.map snd delivered)
      = List.sort compare !sent)

(* -- fabric fault injection -------------------------------------------------- *)

let fabric_accounting f =
  let s = Fabric.stats f in
  s.Fabric.sent - s.Fabric.delivered - s.Fabric.faulted = Fabric.in_flight f

let test_fabric_down_purges_buffers () =
  let f = Fabric.create (Topology.ring 6) in
  Fabric.send f ~src:0 ~dst:3 "doomed";
  Alcotest.(check int) "queued" 1 (Fabric.in_flight f);
  Fabric.set_down f 0;
  Alcotest.(check bool) "down" true (Fabric.is_down f 0);
  Alcotest.(check int) "buffers purged" 0 (Fabric.in_flight f);
  Alcotest.(check int) "purge faulted" 1 (Fabric.stats f).Fabric.faulted;
  (* a dead node's sends never enter the medium *)
  Fabric.send f ~src:0 ~dst:1 "from the grave";
  Alcotest.(check int) "not injected" 0 (Fabric.in_flight f);
  (* traffic addressed to a dead node is absorbed, not delivered *)
  Fabric.send f ~src:2 ~dst:0 "to the grave";
  let guard = ref 0 in
  while Fabric.in_flight f > 0 && !guard < 100 do
    Alcotest.(check (list (pair int string))) "no delivery" [] (Fabric.step f);
    incr guard
  done;
  Alcotest.(check bool) "accounting holds" true (fabric_accounting f);
  Fabric.set_up f 0;
  Fabric.send f ~src:0 ~dst:1 "revived";
  let (delivered, _) = drain_until_delivered f 1 in
  Alcotest.(check (list (pair int string))) "back up" [ (1, "revived") ]
    delivered

let test_fabric_partition_and_heal () =
  let f = Fabric.create (Topology.complete 4) in
  Fabric.partition f [ 0; 1 ];
  Alcotest.(check bool) "severed across" true (Fabric.severed f 0 2);
  Alcotest.(check bool) "intact within" false (Fabric.severed f 0 1);
  Fabric.send f ~src:0 ~dst:2 "cross";
  Fabric.send f ~src:0 ~dst:1 "within";
  let got = ref [] and guard = ref 0 in
  while Fabric.in_flight f > 0 && !guard < 100 do
    got := !got @ Fabric.step f;
    incr guard
  done;
  Alcotest.(check (list (pair int string))) "only the intra-side message"
    [ (1, "within") ] !got;
  Alcotest.(check int) "cross-side frame faulted" 1
    (Fabric.stats f).Fabric.faulted;
  Alcotest.(check bool) "accounting holds" true (fabric_accounting f);
  Fabric.heal f;
  Fabric.send f ~src:0 ~dst:2 "after heal";
  let (delivered, _) = drain_until_delivered f 1 in
  Alcotest.(check (list (pair int string))) "healed" [ (2, "after heal") ]
    delivered

(* -- reliable: heavy loss and backoff ---------------------------------------- *)

let test_reliable_half_loss_exactly_once () =
  (* Satellite acceptance: exactly-once at a 1-in-2 drop rate on a star,
     a ring and a bus. *)
  List.iter
    (fun topo ->
      let r = Reliable.create ~drop_one_in:2 ~seed:3 topo in
      for i = 0 to 14 do
        Reliable.send r ~src:(i mod 4) ~dst:((i + 1) mod 4) i
      done;
      let delivered = Reliable.run_to_quiescence ~max_steps:200_000 r in
      Alcotest.(check (list int))
        (Topology.name topo ^ ": each payload exactly once")
        (List.init 15 Fun.id)
        (List.sort compare (List.map snd delivered)))
    [ Topology.star 4; Topology.ring 4; Topology.bus 4 ]

let transmissions_under_loss backoff =
  let total = ref 0 in
  for seed = 0 to 9 do
    let r = Reliable.create ~drop_one_in:2 ~seed ~backoff (Topology.star 5) in
    for i = 0 to 9 do
      Reliable.send r ~src:(1 + (i mod 4)) ~dst:(1 + ((i + 1) mod 4)) i
    done;
    ignore (Reliable.run_to_quiescence ~max_steps:200_000 r);
    total := !total + (Reliable.stats r).Reliable.transmissions
  done;
  !total

let test_backoff_beats_fixed_under_loss () =
  (* Same seeds, same medium drop sequence (jitter has its own RNG
     stream).  The baseline is an aggressive timeout below the loaded
     round-trip time — the regime a fixed policy cannot escape: it keeps
     retransmitting before the ack can possibly arrive, while exponential
     backoff grows past the RTT after a couple of rounds and stops
     flooding the medium. *)
  let fixed = transmissions_under_loss (Reliable.Fixed 2) in
  let expo =
    transmissions_under_loss (Reliable.Exponential { initial = 2; cap = 64 })
  in
  Alcotest.(check bool)
    (Printf.sprintf "exponential (%d) strictly below fixed (%d)" expo fixed)
    true (expo < fixed)

(* Regression for the jitter-past-cap bug: jitter used to be added after
   the clamp, so a current timeout at (or near) the cap armed the next one
   up to 25% beyond the documented ceiling.  Walk the growth sequence from
   [initial] under many seeds, and also probe from arbitrary in-range
   timeouts: no armed timeout may ever exceed [cap]. *)
let prop_backoff_never_exceeds_cap =
  QCheck.Test.make ~count:200 ~name:"armed backoff timeout never exceeds cap"
    QCheck.(triple small_int small_int small_int)
    (fun (seed, initial0, cap0) ->
      let initial = 1 + (initial0 mod 50) in
      let cap = initial + (cap0 mod 200) in
      let r =
        Reliable.create ~seed
          ~backoff:(Reliable.Exponential { initial; cap })
          (Topology.star 3)
      in
      let ok = ref true in
      (* the sequence a real sender follows *)
      let t = ref (Reliable.initial_timeout r) in
      for _ = 1 to 40 do
        t := Reliable.grow_timeout r !t;
        if !t > cap then ok := false
      done;
      (* and arbitrary restart points, including current = cap itself *)
      for current = 1 to cap do
        if Reliable.grow_timeout r current > cap then ok := false
      done;
      !ok)

let test_no_quiescence_carries_diagnostics () =
  let r = Reliable.create ~seed:1 (Topology.ring 4) in
  Fabric.partition (Reliable.fabric r) [ 2 ];
  Reliable.send r ~src:0 ~dst:2 "never arrives";
  match Reliable.run_to_quiescence ~max_steps:500 r with
  | _ -> Alcotest.fail "expected No_quiescence"
  | exception Reliable.No_quiescence { steps; pending; stats; _ } ->
      Alcotest.(check bool) "step budget exhausted" true (steps >= 500);
      Alcotest.(check (list (triple int int int))) "the stuck send"
        [ (0, 2, 0) ] pending;
      Alcotest.(check bool) "stats carried" true
        (stats.Reliable.transmissions >= 1)

let () =
  Alcotest.run "net"
    [
      ( "topology",
        [
          Alcotest.test_case "hypercube shape" `Quick test_hypercube_shape;
          Alcotest.test_case "hypercube = hamming" `Quick
            test_hypercube_distance_is_hamming;
          Alcotest.test_case "mesh3d = manhattan" `Quick
            test_mesh3d_distance_is_manhattan;
          Alcotest.test_case "ring" `Quick test_ring_distance;
          Alcotest.test_case "star/complete" `Quick test_star_and_complete;
          Alcotest.test_case "torus" `Quick test_torus;
          Alcotest.test_case "next_hop progresses" `Quick
            test_next_hop_decreases_distance;
          Alcotest.test_case "line" `Quick test_line;
          QCheck_alcotest.to_alcotest prop_random_topology_routes;
          Alcotest.test_case "single" `Quick test_single;
        ] );
      ( "fabric",
        [
          Alcotest.test_case "latency = distance" `Quick
            test_fabric_delivery_time_is_distance;
          Alcotest.test_case "local hand-off" `Quick test_fabric_local_handoff;
          Alcotest.test_case "link contention" `Quick
            test_fabric_link_contention;
          Alcotest.test_case "capacity 2" `Quick
            test_fabric_capacity_two_avoids_contention;
          Alcotest.test_case "bus serializes" `Quick test_bus_serializes;
          Alcotest.test_case "stats" `Quick test_fabric_stats;
          Alcotest.test_case "broadcast" `Quick test_broadcast;
          Alcotest.test_case "local hand-off accounting" `Quick
            test_fabric_local_handoff_accounting;
          Alcotest.test_case "bus capacity service order" `Quick
            test_bus_capacity_service_order;
          QCheck_alcotest.to_alcotest prop_fabric_accounting;
        ] );
      ( "fabric faults",
        [
          Alcotest.test_case "down purges buffers" `Quick
            test_fabric_down_purges_buffers;
          Alcotest.test_case "partition and heal" `Quick
            test_fabric_partition_and_heal;
        ] );
      ( "reliable",
        [
          Alcotest.test_case "lossless" `Quick test_reliable_lossless;
          Alcotest.test_case "survives loss" `Quick
            test_reliable_survives_loss;
          Alcotest.test_case "exactly once per pair" `Quick
            test_reliable_fifo_per_pair;
          Alcotest.test_case "exactly once at 1/2 loss" `Quick
            test_reliable_half_loss_exactly_once;
          Alcotest.test_case "backoff beats fixed timeout" `Quick
            test_backoff_beats_fixed_under_loss;
          QCheck_alcotest.to_alcotest prop_backoff_never_exceeds_cap;
          Alcotest.test_case "no-quiescence diagnostics" `Quick
            test_no_quiescence_carries_diagnostics;
          QCheck_alcotest.to_alcotest prop_reliable_exactly_once;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_all_messages_delivered ]);
    ]
