examples/fel_apply_stream.ml: Fdb_fel Fdb_kernel Format Printf
