type 'a tagged = { tag : int; item : 'a }

type policy =
  | Arrival_order
  | Eager_clients of int list
  | Seeded of int
  | Concatenated

(* Queues of the remaining items of each stream. *)
let drain_step queues tag acc =
  match queues.(tag) with
  | [] -> (acc, false)
  | item :: rest ->
      queues.(tag) <- rest;
      if Fdb_obs.Trace.enabled () then
        Fdb_obs.Trace.emit
          (Fdb_obs.Event.Merge_take { tag; pos = List.length acc });
      ({ tag; item } :: acc, true)

let total_left queues = Array.exists (fun q -> q <> []) queues

let merge policy streams =
  let queues = Array.of_list streams in
  let n = Array.length queues in
  if n = 0 then []
  else
    let acc = ref [] in
    (match policy with
    | Arrival_order ->
        while total_left queues do
          for tag = 0 to n - 1 do
            let (acc', _) = drain_step queues tag !acc in
            acc := acc'
          done
        done
    | Eager_clients bursts ->
        let bursts = if bursts = [] then [ 1 ] else bursts in
        let nb = List.length bursts in
        let round = ref 0 in
        while total_left queues do
          for tag = 0 to n - 1 do
            let burst = List.nth bursts ((!round + tag) mod nb) in
            for _ = 1 to burst do
              let (acc', _) = drain_step queues tag !acc in
              acc := acc'
            done
          done;
          incr round
        done
    | Seeded seed ->
        let rand = Random.State.make [| seed |] in
        while total_left queues do
          let nonempty =
            List.filter
              (fun tag -> queues.(tag) <> [])
              (List.init n (fun i -> i))
          in
          let tag =
            List.nth nonempty (Random.State.int rand (List.length nonempty))
          in
          let (acc', _) = drain_step queues tag !acc in
          acc := acc'
        done
    | Concatenated ->
        for tag = 0 to n - 1 do
          let continue = ref true in
          while !continue do
            let (acc', took) = drain_step queues tag !acc in
            acc := acc';
            continue := took
          done
        done);
    List.rev !acc

let merge_timed streams =
  let entries =
    List.concat
      (List.mapi
         (fun tag items ->
           List.mapi (fun seq (time, item) -> (time, tag, seq, item)) items)
         streams)
  in
  let ordered =
    List.sort
      (fun (t1, g1, s1, _) (t2, g2, s2, _) ->
        match Float.compare t1 t2 with
        | 0 -> ( match Int.compare g1 g2 with 0 -> Int.compare s1 s2 | c -> c)
        | c -> c)
      entries
  in
  List.map (fun (_, tag, _, item) -> { tag; item }) ordered

let choose ~tag merged =
  List.filter_map
    (fun t -> if t.tag = tag then Some t.item else None)
    merged

let tags_used merged =
  List.sort_uniq Int.compare (List.map (fun t -> t.tag) merged)

let pp pp_item ppf merged =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list
       ~pp_sep:Format.pp_print_cut
       (fun ppf t -> Format.fprintf ppf "[%d] %a" t.tag pp_item t.item))
    merged
