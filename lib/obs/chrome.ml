let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* (key, json-value) pairs for the args object of each event. *)
let args_of (kind : Event.kind) =
  let i k v = (k, string_of_int v) in
  let s k v = (k, Printf.sprintf "\"%s\"" (escape v)) in
  let b k v = (k, if v then "true" else "false") in
  let net (n : Event.net) =
    [
      i "fab" n.fab; i "src" n.src; i "dst" n.dst; i "sent" n.sent;
      i "delivered" n.delivered; i "faulted" n.faulted;
      i "in_flight" n.in_flight;
    ]
  in
  match kind with
  | Dispatch_start { txn; label } | Dispatch_end { txn; label } ->
      [ i "txn" txn; s "label" label ]
  | Cell_write { cell } -> [ i "cell" cell ]
  | Cell_read { cell; label } -> [ i "cell" cell; s "label" label ]
  | Plan_chosen { rel; path } -> [ s "rel" rel; s "path" path ]
  | Merge_take { tag; pos } -> [ i "tag" tag; i "pos" pos ]
  | Dg_send n | Dg_deliver n | Dg_drop n -> net n
  | Dg_retransmit { src; dst; seq } -> [ i "src" src; i "dst" dst; i "seq" seq ]
  | Replica_commit { index; client; seq; backed } ->
      [ i "index" index; i "client" client; i "seq" seq; b "backed" backed ]
  | Replica_ack { upto } -> [ i "upto" upto ]
  | Replica_reply { client; seq; status } ->
      [ i "client" client; i "seq" seq; s "status" status ]
  | Replica_checkpoint { upto; bytes } -> [ i "upto" upto; i "bytes" bytes ]
  | Replica_install { upto } -> [ i "upto" upto ]
  | Replica_promote { suffix } -> [ i "suffix" suffix ]
  | Replica_replay { index } -> [ i "index" index ]
  | Replica_crash { site } -> [ i "site" site ]
  | Repair_batch { batch; size } -> [ i "batch" batch; i "size" size ]
  | Repair_spec { batch; txn } -> [ i "batch" batch; i "txn" txn ]
  | Repair_redo { batch; txn; round } ->
      [ i "batch" batch; i "txn" txn; i "round" round ]
  | Repair_round { batch; round; damaged } ->
      [ i "batch" batch; i "round" round; i "damaged" damaged ]
  | Repair_commit { batch; txn; round } ->
      [ i "batch" batch; i "txn" txn; i "round" round ]
  | Wal_append { index; bytes } -> [ i "index" index; i "bytes" bytes ]
  | Wal_sync { upto } -> [ i "upto" upto ]
  | Wal_checkpoint { upto; bytes; segment } ->
      [ i "upto" upto; i "bytes" bytes; i "segment" segment ]
  | Wal_segment_delete { segment } -> [ i "segment" segment ]
  | Wal_replay { index } -> [ i "index" index ]
  | Wal_recovered { upto; base; reason } ->
      [ i "upto" upto; i "base" base; s "reason" reason ]
  | Index_maintain { rel; index; kind; base; entries } ->
      [
        s "rel" rel; s "index" index; s "kind" kind; i "base" base;
        i "entries" entries;
      ]
  | Index_probe { rel; index; kind } ->
      [ s "rel" rel; s "index" index; s "kind" kind ]
  | Shard_commit { shard; txn; pos } ->
      [ i "shard" shard; i "txn" txn; i "pos" pos ]
  | Shard_bypass { txn; shards } -> [ i "txn" txn; i "shards" shards ]
  | Shard_spine { txn; gsn } -> [ i "txn" txn; i "gsn" gsn ]
  | Shard_conflict { txn; against } -> [ i "txn" txn; i "against" against ]

let record buf ~name ~ph ~ts ~tid ?(extra = []) args =
  if Buffer.length buf > 0 then Buffer.add_string buf ",\n";
  Buffer.add_string buf
    (Printf.sprintf "{\"name\":\"%s\",\"ph\":\"%s\",\"ts\":%d,\"pid\":0,\"tid\":%d"
       (escape name) ph ts tid);
  List.iter (fun (k, v) -> Buffer.add_string buf (Printf.sprintf ",\"%s\":%s" k v)) extra;
  Buffer.add_string buf ",\"args\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":%s" k v))
    args;
  Buffer.add_string buf "}}"

let to_json events =
  let buf = Buffer.create 4096 in
  List.iteri
    (fun idx (ev : Event.t) ->
      let tid = ev.site + 1 in
      let args = args_of ev.kind in
      let base_name = Event.name ev.kind in
      (match ev.kind with
      | Dispatch_start { txn; label } ->
          let name =
            if label = "" then Printf.sprintf "txn-%d" txn else label
          in
          record buf ~name ~ph:"B" ~ts:idx ~tid args
      | Dispatch_end { txn; label } ->
          let name =
            if label = "" then Printf.sprintf "txn-%d" txn else label
          in
          record buf ~name ~ph:"E" ~ts:idx ~tid args
      | _ ->
          record buf ~name:base_name ~ph:"i" ~ts:idx ~tid
            ~extra:[ ("s", "\"t\"") ]
            args);
      match ev.kind with
      | Dg_send n | Dg_deliver n | Dg_drop n ->
          record buf
            ~name:(Printf.sprintf "in_flight(fab%d)" n.fab)
            ~ph:"C" ~ts:idx ~tid:0
            [ ("in_flight", string_of_int n.in_flight) ]
      | _ -> ())
    events;
  Printf.sprintf
    "{\"traceEvents\":[\n%s\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"generator\":\"fdbsim trace\"}}\n"
    (Buffer.contents buf)
