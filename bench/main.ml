(* The benchmark harness: regenerates every table and figure of the paper
   (with the published values alongside for comparison), the ablations from
   DESIGN.md, and a set of bechamel micro-benchmarks.

   Usage:  main.exe [table1|table2|table3|fig21|fig22|fig23|fig31|
                     ablation-repr|ablation-topo|ablation-merge|
                     ablation-semantics|plan|trace-overhead|micro|all]
                    (default: all)

   Usage also covers `par` (scan-flood executor scaling -> BENCH_par.json),
   `repair` (speculative repair executor scaling -> BENCH_repair.json) and
   `shard` (sharded executor spine share/bypass rate -> BENCH_shard.json).

   `plan [--quick] [--seed N] [-o FILE]` sweeps the access-path planner
   (point / range / full scans and hash vs nested joins) over every backend
   and writes a BENCH_plan.json artifact stamped with the seed and git
   revision.  `trace-overhead` asserts that the observability layer's
   guarded emission adds zero allocations per operation while the trace
   sink is disabled. *)

open Fdb
module W = Fdb_workload.Workload
module Topology = Fdb_net.Topology

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* The current git revision, read straight off the repository metadata so
   the artifact needs no subprocess and no extra dependency. *)
let git_rev () =
  let read_line path =
    try
      let ic = open_in path in
      let line = try input_line ic with End_of_file -> "" in
      close_in ic;
      Some (String.trim line)
    with Sys_error _ -> None
  in
  let rec resolve dir depth =
    if depth > 6 then None
    else
      match read_line (Filename.concat dir ".git/HEAD") with
      | Some s when String.length s > 5 && String.sub s 0 5 = "ref: " ->
          let ref_path = String.sub s 5 (String.length s - 5) in
          read_line (Filename.concat dir (Filename.concat ".git" ref_path))
      | Some s -> Some s
      | None -> resolve (Filename.concat dir Filename.parent_dir_name) (depth + 1)
  in
  Option.value ~default:"unknown" (resolve Filename.current_dir_name 0)

(* Published values, transcribed from the paper (a dash marks a cell that is
   illegible in the scanned copy).  Row order: 0, 4, 7, 14, 24, 38 percent;
   column order: 5, 3, 1 relations. *)
let paper_table1 =
  [ (0.0, [ Some (25, 14); Some (27, 15); Some (39, 17) ]);
    (4.0, [ Some (25, 14); Some (28, 15); Some (45, 17) ]);
    (7.0, [ Some (26, 14); None; Some (46, 15) ]);
    (14.0, [ Some (26, 14); Some (29, 13); Some (42, 13) ]);
    (24.0, [ Some (24, 12); Some (28, 11); Some (36, 9) ]);
    (38.0, [ Some (24, 10); Some (24, 9); Some (22, 9) ]) ]

let paper_table2 =
  [ (0.0, [ Some 5.6; Some 5.7; Some 6.2 ]);
    (4.0, [ Some 5.6; Some 5.7; Some 6.1 ]);
    (7.0, [ Some 5.6; None; Some 5.9 ]);
    (14.0, [ Some 5.4; Some 5.5; Some 5.6 ]);
    (24.0, [ Some 5.2; Some 5.0; Some 4.7 ]);
    (38.0, [ Some 4.8; Some 4.6; Some 4.7 ]) ]

let paper_table3 =
  [ (0.0, [ Some 7.2; Some 7.6; Some 8.9 ]);
    (4.0, [ Some 7.2; Some 7.6; Some 8.9 ]);
    (7.0, [ Some 7.1; None; Some 8.9 ]);
    (14.0, [ Some 7.2; Some 7.6; Some 7.8 ]);
    (24.0, [ Some 6.8; Some 6.4; Some 6.1 ]);
    (38.0, [ Some 6.0; Some 6.2; Some 6.0 ]) ]

let table1 () =
  section "Table I: maximum and average degree of concurrency (ideal mode)";
  Printf.printf
    "50 transactions, 50 initial tuples, linked-list relations\n\
     columns: 5 / 3 / 1 relations; each cell: max avg (paper: max avg)\n\n";
  let cells = Experiment.table1 () in
  Printf.printf "%7s  %26s  %26s  %26s\n" "updates" "5 relations"
    "3 relations" "1 relation";
  List.iter
    (fun (pct, paper_row) ->
      Printf.printf "%6.0f%%  " pct;
      List.iteri
        (fun i k ->
          let c =
            List.find
              (fun c ->
                c.Experiment.c_pct = pct && c.Experiment.c_relations = k)
              cells
          in
          let paper =
            match List.nth paper_row i with
            | Some (m, a) -> Printf.sprintf "(paper %2d %2d)" m a
            | None -> "(paper  -  -)"
          in
          Printf.printf "  %3d %5.1f %s" c.Experiment.c_max_ply
            c.Experiment.c_avg_ply paper)
        W.paper_relation_counts;
      print_newline ())
    paper_table1

let speedup_run name topo paper =
  section name;
  Printf.printf "columns: 5 / 3 / 1 relations; each cell: speedup (paper)\n\n";
  let cells = Experiment.speedup_table topo in
  Printf.printf "%7s  %18s  %18s  %18s\n" "updates" "5 relations"
    "3 relations" "1 relation";
  List.iter
    (fun (pct, paper_row) ->
      Printf.printf "%6.0f%%  " pct;
      List.iteri
        (fun i k ->
          let c =
            List.find
              (fun c ->
                c.Experiment.s_pct = pct && c.Experiment.s_relations = k)
              cells
          in
          let paper =
            match List.nth paper_row i with
            | Some v -> Printf.sprintf "(paper %3.1f)" v
            | None -> "(paper  - )"
          in
          Printf.printf "  %6.2f %s" c.Experiment.s_speedup paper)
        W.paper_relation_counts;
      print_newline ())
    paper;
  (* extra machine detail the paper does not tabulate *)
  let mid =
    List.find
      (fun c -> c.Experiment.s_pct = 14.0 && c.Experiment.s_relations = 3)
      cells
  in
  Printf.printf
    "\n(at 14%%/3 relations: utilization %.2f, %d messages, %d migrations,\n\
    \ makespan %d cycles)\n"
    mid.Experiment.s_utilization mid.Experiment.s_messages
    mid.Experiment.s_migrations mid.Experiment.s_cycles

let table2 () =
  speedup_run "Table II: speedup, 8-node binary hypercube"
    (Topology.hypercube 3) paper_table2

let table3 () =
  speedup_run "Table III: speedup, 27-node Euclidean cube (3x3x3)"
    (Topology.mesh3d 3 3 3) paper_table3

let fig21 () =
  section "Figure 2-1: transaction application in graphical form";
  Experiment.fig21 Format.std_formatter ()

let fig22 () =
  section "Figure 2-2 / s3.3: page sharing through separate directories";
  Printf.printf
    "one insert into a B-tree relation (branching 8): pages rebuilt vs\n\
     shared with the old version; the rebuilt fraction ~ (log n)/n\n\n";
  Format.printf "@[<v>%a@]@." Experiment.pp_fig22 (Experiment.fig22 ())

let fig23 () =
  section "Figure 2-3: merging and decomposition of transaction streams";
  Experiment.fig23 Format.std_formatter ()

let fig31 () =
  section "Figure 3-1: the network medium as merge; choose per site";
  let tup k s =
    Fdb_relational.Tuple.make
      [ Fdb_relational.Value.Int k; Fdb_relational.Value.Str s ]
  in
  let spec =
    {
      Pipeline.schemas =
        [ Fdb_relational.Schema.make ~name:"R"
            ~cols:[ ("key", Fdb_relational.Schema.CInt);
                    ("val", Fdb_relational.Schema.CStr) ] ];
      initial = [ ("R", [ tup 1 "a"; tup 2 "b" ]) ];
    }
  in
  let cluster = Cluster.create ~topology:(Topology.bus 4) spec in
  let q = Fdb_query.Parser.parse_exn in
  let outcome =
    Cluster.submit cluster
      [ (1, [ q "insert (10, \"from-site-1\") into R"; q "find 10 in R" ]);
        (2, [ q "count R"; q "find 2 in R" ]);
        (3, [ q "select * from R where key <= 2" ]) ]
  in
  Printf.printf
    "3 client sites + primary on a shared bus; the medium serializes\n\
     (= the merge); responses are tagged and chosen per site.\n\n";
  Printf.printf "merged stream as it arrived at the primary:\n";
  List.iter
    (fun (site, query) ->
      Printf.printf "  [site %d] %s\n" site (Fdb_query.Ast.to_string query))
    outcome.Cluster.merged;
  Printf.printf "\nresponses delivered back (choose at each site):\n";
  List.iter
    (fun (site, rs) ->
      List.iter
        (fun r ->
          Format.printf "  [site %d] %a@." site Pipeline.pp_response r)
        rs)
    outcome.Cluster.per_site;
  Printf.printf
    "\n%d request messages, %d response messages, %d bus cycles;\n\
     serializable: %b\n"
    outcome.Cluster.request_messages outcome.Cluster.response_messages
    outcome.Cluster.transport_cycles
    (Cluster.serializable outcome cluster);
  (* failure transparency by deterministic replay *)
  let fo =
    Cluster.submit_with_failover cluster ~fail_after:2
      [ (1, [ q "insert (10, \"from-site-1\") into R"; q "find 10 in R" ]);
        (2, [ q "count R"; q "find 2 in R" ]);
        (3, [ q "select * from R where key <= 2" ]) ]
  in
  Printf.printf
    "\nfailover drill: primary crashes after %d of %d transactions;\n\
     the standby replays the merged stream from the initial database.\n\
     replayed prefix identical to the served one: %b\n\
     (the version stream is a pure function of the merged stream)\n"
    (List.length fo.Cluster.f_served_before_crash)
    (List.length fo.Cluster.f_merged)
    fo.Cluster.f_prefix_agrees

let ablation_repr () =
  section "Ablation A1: relation representation (list vs trees)";
  Printf.printf
    "reconstruction units (cells/nodes/pages) built per ordered-unique\n\
     insert, and physical sharing after 20 inserts (s2.3: trees are\n\
     projected to beat lists)\n\n";
  Format.printf "@[<v>%a@]@." Experiment.pp_ablation_repr
    (Experiment.ablation_repr ())

let ablation_topo () =
  section "Ablation A2: topology and load management";
  Printf.printf
    "default workload (14%% updates, 3 relations) on every topology, with\n\
     pressure-gradient balancing on/off\n\n";
  Format.printf "@[<v>%a@]@." Experiment.pp_ablation_topo
    (Experiment.ablation_topo ())

let ablation_merge () =
  section "Ablation A3: merge policy (s2.4 'judicious ordering')";
  Format.printf "@[<v>%a@]@." Experiment.pp_ablation_merge
    (Experiment.ablation_merge ())

let ablation_engine_repr () =
  section "Ablation A5: engine-level representation (lenient list vs 2-3 tree)";
  Printf.printf
    "the same single-relation insert/find stream executed as a lenient task\n\
     graph over both representations (s2.3's projection, measured in plies)\n\n";
  Format.printf "@[<v>%a@]@." Experiment.pp_ablation_engine_repr
    (Experiment.ablation_engine_repr ())

let ablation_eval_mode () =
  section "Ablation A6: lenient (data-driven) vs demand-driven evaluation";
  Printf.printf
    "the same FEL program under both strategies: leniency buys anticipatory\n\
     parallelism; demand-driven evaluation admits infinite streams\n\n";
  let programs =
    [ ("3 scans of a 60-list",
       "db = iota:60, RESULT [sum:db, length:db, sum:(reverse:db)]");
      ("apply-stream (4 txns)",
       "apply-stream:[ts, dbs] = if null?:ts then [[], []] else { \
          [response, new-db] = (first:ts):(first:dbs), \
          [more, more-dbs] = apply-stream:[rest:ts, rest:dbs], \
          RESULT [response ^ more, new-db ^ more-dbs] }, \
        mk-insert:k = { txn:db = [k, k ^ db], RESULT txn }, \
        mk-count:i = { txn:db = [length:db, db], RESULT txn }, \
        transactions = [mk-insert:10, mk-count:0, mk-insert:20, mk-count:0], \
        [responses, new-dbs] = apply-stream:[transactions, old-dbs], \
        old-dbs = iota:20 ^ new-dbs, \
        RESULT responses");
      ("take 10 of an infinite stream",
       "inc:x = x + 1, nats = 0 ^ (inc || nats), RESULT take:[10, nats]") ]
  in
  Printf.printf "%-32s %10s %8s %8s %8s\n" "program" "mode" "tasks"
    "cycles" "max ply";
  List.iter
    (fun (name, src) ->
      List.iter
        (fun (mname, mode) ->
          match Fdb_fel.Eval.run_string ~max_cycles:200_000 ~mode src with
          | Ok (_, s) ->
              Printf.printf "%-32s %10s %8d %8d %8d\n" name mname
                s.Fdb_kernel.Engine.tasks s.Fdb_kernel.Engine.cycles
                s.Fdb_kernel.Engine.max_ply
          | Error e ->
              Printf.printf "%-32s %10s %s\n" name mname
                (if String.length e >= 7 && String.sub e 0 7 = "stalled"
                 then "diverges (as lenient semantics dictates)"
                 else e))
        [ ("lenient", Fdb_fel.Eval.Lenient); ("demand", Fdb_fel.Eval.Demand) ])
    programs

let scaling () =
  section "Scaling: concurrency vs stream length and relation size";
  Printf.printf
    "beyond the paper's 50x50 point: 3 relations, 14%% inserts\n\n";
  Format.printf "@[<v>%a@]@." Experiment.pp_scaling (Experiment.scaling ())

let ablation_semantics () =
  section "Ablation A4: insert semantics (multiset prepend vs ordered set)";
  Format.printf "@[<v>%a@]@." Experiment.pp_ablation_semantics
    (Experiment.ablation_semantics ())

(* -- recovery: failover time vs checkpoint interval ------------------------- *)

let recover () =
  let module Gen = Fdb_check.Gen in
  let module Replica = Fdb_replica.Replica in
  let module Snapshot = Fdb_replica.Snapshot in
  let module History = Fdb_txn.History in
  section "Recovery: failover time vs checkpoint interval";
  Printf.printf
    "primary killed after its 12th commit (3 clients x 10 queries, drop \
     1/5);\nmeans over 8 seeds; interval 0 = no checkpoints, replay the \
     whole log\n\n";
  let seeds = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  Printf.printf "%9s %10s %10s %10s %12s\n" "interval" "recovery" "replayed"
    "suffix" "ckpt-bytes";
  List.iter
    (fun interval ->
      let (n, rec_t, rep, suf, bytes) =
        List.fold_left
          (fun (n, rec_t, rep, suf, bytes) seed ->
            let sc =
              Gen.generate
                { Gen.default_spec with Gen.seed; queries_per_client = 10 }
            in
            let config =
              { Replica.default_config with
                Replica.checkpoint_every = interval;
                seed;
                crash = Replica.Mid_stream 12 }
            in
            let r =
              Replica.run ~config ~initial:(Gen.initial_db sc) sc.Gen.streams
            in
            assert (r.Replica.acked_lost = [] && r.Replica.dup_applied = 0);
            ( n + 1,
              rec_t + Option.value ~default:0 r.Replica.recovery_ticks,
              rep + r.Replica.replayed,
              suf + r.Replica.log_suffix_at_crash,
              bytes + r.Replica.checkpoint_bytes ))
          (0, 0, 0, 0, 0) seeds
      in
      let mean x = float_of_int x /. float_of_int n in
      Printf.printf "%9d %10.1f %10.1f %10.1f %12.1f\n" interval (mean rec_t)
        (mean rep) (mean suf) (mean bytes))
    [ 1; 2; 5; 10; 20; 0 ];
  Printf.printf
    "\ncheckpoint wire cost: delta encoding vs every version in full\n";
  Printf.printf "%9s %12s %12s %8s\n" "versions" "delta" "naive" "ratio";
  List.iter
    (fun qpc ->
      let sc =
        Gen.generate { Gen.default_spec with Gen.seed = 1; queries_per_client = qpc }
      in
      let h =
        List.fold_left
          (fun h q -> fst (History.commit_query h q))
          (History.create (Gen.initial_db sc))
          (List.concat sc.Gen.streams)
      in
      let delta = String.length (Snapshot.encode h) in
      let naive = String.length (Snapshot.encode_naive h) in
      Printf.printf "%9d %12d %12d %7.1fx\n" (History.length h) delta naive
        (float_of_int naive /. float_of_int delta))
    [ 4; 8; 16; 32 ]

(* -- plan: access-path planner speedups -------------------------------------- *)

let plan_bench ~quick ~seed ~out =
  let module R = Fdb_relational.Relation in
  let module Schema = Fdb_relational.Schema in
  let module Tuple = Fdb_relational.Tuple in
  let module Value = Fdb_relational.Value in
  let module Database = Fdb_relational.Database in
  let module Algebra = Fdb_relational.Algebra in
  let module Meter = Fdb_persistent.Meter in
  let module Txn = Fdb_txn.Txn in
  let module Pred = Fdb_query.Pred in
  section
    (Printf.sprintf "Access-path planner: indexed reads vs full scans (%s)"
       (if quick then "quick" else "full"));
  (* Calibrated CPU-time loop: repeat until the sample is long enough for
     Sys.time's resolution, report ns per run. *)
  let budget = if quick then 0.01 else 0.05 in
  let time_ns f =
    ignore (f ());
    let rec go iters =
      let t0 = Sys.time () in
      for _ = 1 to iters do
        ignore (f ())
      done;
      let dt = Sys.time () -. t0 in
      if dt < budget && iters < 1_000_000 then go (iters * 4)
      else dt *. 1e9 /. float_of_int iters
    in
    go 1
  in
  let schema =
    Schema.make ~name:"R"
      ~cols:[ ("key", Schema.CInt); ("val", Schema.CStr) ]
  in
  let tup k =
    Tuple.make [ Value.Int k; Value.Str (Printf.sprintf "v%d" (k mod 97)) ]
  in
  let backends =
    [ R.List_backend; R.Avl_backend; R.Two3_backend; R.Btree_backend 8 ]
  in
  let sizes = if quick then [ 1_000 ] else [ 1_000; 10_000 ] in
  let results = ref [] in
  let record ~scenario ~backend ~size ~planned ~naive ~visited ~full =
    results :=
      (scenario, backend, size, planned, naive, visited, full) :: !results;
    Printf.printf "%-12s %-8s %7d %12.0f %12.0f %8.1fx %9d /%8d\n" scenario
      backend size planned naive (naive /. planned) visited full
  in
  Printf.printf "%-12s %-8s %7s %12s %12s %9s %9s %9s\n" "scenario"
    "backend" "size" "planned-ns" "scan-ns" "speedup" "visited" "full";
  List.iter
    (fun size ->
      List.iter
        (fun backend ->
          let name = R.backend_name backend in
          let db =
            match
              Database.load
                (Database.create ~backend [ schema ])
                ~rel:"R"
                (List.init size tup)
            with
            | Ok db -> db
            | Error e -> failwith e
          in
          let r = Option.get (Database.relation db "R") in
          let full_units =
            let m = Meter.create () in
            ignore (R.fold ~meter:m (fun a _ -> a) () r);
            Meter.allocs m
          in
          let run_case scenario src ~lo ~hi =
            let q = Fdb_query.Parser.parse_exn src in
            let txn = Txn.translate q in
            let planned = time_ns (fun () -> fst (txn db)) in
            let test =
              match q with
              | Fdb_query.Ast.Select { where; _ } -> (
                  match Pred.compile schema where with
                  | Ok t -> t
                  | Error e -> failwith e)
              | _ -> assert false
            in
            let naive = time_ns (fun () -> List.filter test (R.to_list r)) in
            let visited =
              let m = Meter.create () in
              ignore (R.range_fold ~meter:m ~lo ~hi (fun a _ -> a) () r);
              Meter.allocs m
            in
            record ~scenario ~backend:name ~size ~planned ~naive ~visited
              ~full:full_units
          in
          let mid = size / 2 in
          run_case "point"
            (Printf.sprintf "select * from R where key = %d" mid)
            ~lo:(R.Inclusive (Value.Int mid))
            ~hi:(R.Inclusive (Value.Int mid));
          List.iter
            (fun sel ->
              let width = max 1 (size * sel / 100) in
              run_case
                (Printf.sprintf "range-%d%%" sel)
                (Printf.sprintf
                   "select * from R where key >= %d and key < %d" mid
                   (mid + width))
                ~lo:(R.Inclusive (Value.Int mid))
                ~hi:(R.Exclusive (Value.Int (mid + width))))
            [ 1; 10 ])
        backends)
    sizes;
  (* hash vs nested-loop join; ~4 right matches per left tuple *)
  let jn = if quick then 300 else 1_000 in
  let side =
    List.init jn (fun i -> Tuple.make [ Value.Int i; Value.Int (i mod (jn / 4)) ])
  in
  let hash =
    time_ns (fun () -> Algebra.join ~algo:`Hash ~left_col:1 ~right_col:1 side side)
  and nested =
    time_ns (fun () ->
        Algebra.join ~algo:`Nested ~left_col:1 ~right_col:1 side side)
  in
  Printf.printf "%-12s %-8s %7d %12.0f %12.0f %8.1fx\n" "join" "hash" jn hash
    nested (nested /. hash);
  Printf.printf
    "\n(planned-ns: executor through Plan.analyze; scan-ns: materialize + \
     filter;\n\
    \ visited: backend units touched by the planned path vs a full fold)\n";
  (* hand-rolled JSON: no dependency for the artifact *)
  let oc = open_out out in
  Printf.fprintf oc
    "{\n  \"mode\": %S,\n  \"seed\": %d,\n  \"git_rev\": %S,\n  \
     \"results\": [\n"
    (if quick then "quick" else "full")
    seed (git_rev ());
  let rows = List.rev !results in
  List.iteri
    (fun i (scenario, backend, size, planned, naive, visited, full) ->
      Printf.fprintf oc
        "    {\"scenario\": %S, \"backend\": %S, \"size\": %d, \
         \"planned_ns\": %.0f, \"scan_ns\": %.0f, \"speedup\": %.2f, \
         \"units_visited\": %d, \"units_full\": %d}%s\n"
        scenario backend size planned naive (naive /. planned) visited full
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc
    "  \"join\": {\"rows\": %d, \"hash_ns\": %.0f, \"nested_ns\": %.0f, \
     \"speedup\": %.2f}\n}\n"
    jn hash nested (nested /. hash);
  close_out oc;
  Printf.printf "\nwrote %s\n" out

(* -- index: secondary/covering/derived index speedups ------------------------- *)

let index_bench ~quick ~seed ~out =
  let module R = Fdb_relational.Relation in
  let module Schema = Fdb_relational.Schema in
  let module Tuple = Fdb_relational.Tuple in
  let module Value = Fdb_relational.Value in
  let module Database = Fdb_relational.Database in
  let module Meter = Fdb_persistent.Meter in
  let module Txn = Fdb_txn.Txn in
  let module Plan = Fdb_query.Plan in
  let module Ix = Fdb_index.Index in
  section
    (Printf.sprintf "Indexes: probes and derived aggregates vs scans (%s)"
       (if quick then "quick" else "full"));
  let groups = 64 in
  let schema =
    Schema.make ~name:"R"
      ~cols:
        [ ("key", Schema.CInt); ("grp", Schema.CInt); ("val", Schema.CStr) ]
  in
  let tup k =
    Tuple.make
      [ Value.Int k; Value.Int (k mod groups);
        Value.Str (Printf.sprintf "s%06d" k) ]
  in
  let backends =
    [ R.List_backend; R.Avl_backend; R.Two3_backend; R.Btree_backend 8 ]
  in
  let sizes = if quick then [ 1_000 ] else [ 1_000; 10_000 ] in
  let samples = if quick then 9 else 21 in
  let budget = if quick then 0.002 else 0.01 in
  (* Batched samples against Sys.time's resolution: calibrate an iteration
     count whose batch exceeds the budget, then report per-run p50/p99 over
     [samples] batches. *)
  let time_pctls f =
    ignore (f ());
    let rec calib iters =
      let t0 = Sys.time () in
      for _ = 1 to iters do
        ignore (f ())
      done;
      let dt = Sys.time () -. t0 in
      if dt < budget && iters < 1_000_000 then calib (iters * 4) else iters
    in
    let iters = calib 1 in
    let sample () =
      let t0 = Sys.time () in
      for _ = 1 to iters do
        ignore (f ())
      done;
      (Sys.time () -. t0) *. 1e9 /. float_of_int iters
    in
    let ts = List.sort compare (List.init samples (fun _ -> sample ())) in
    let pctl p =
      let n = List.length ts in
      List.nth ts (max 0 (min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1)))
    in
    (pctl 0.50, pctl 0.99)
  in
  let results = ref [] in
  let record ~scenario ~backend ~size ~p50 ~p99 ~speedup =
    results := (scenario, backend, size, p50, p99, speedup) :: !results;
    Printf.printf "%-12s %-8s %7d %12.0f %12.0f %8.1fx\n" scenario backend
      size p50 p99 speedup
  in
  Printf.printf "%-12s %-8s %7s %12s %12s %9s\n" "scenario" "backend" "size"
    "p50-ns" "p99-ns" "speedup";
  let maintenance = ref [] in
  List.iter
    (fun size ->
      List.iter
        (fun backend ->
          let name = R.backend_name backend in
          let db =
            match
              Database.load
                (Database.create ~backend [ schema ])
                ~rel:"R"
                (List.init size tup)
            with
            | Ok db -> db
            | Error e -> failwith e
          in
          let r = Option.get (Database.relation db "R") in
          let sec_desc =
            { Plan.ix_name = "R_sec_val"; ix_rel = "R"; ix_col = "val";
              ix_kind = Plan.Ix_secondary }
          in
          let cov_desc =
            { Plan.ix_name = "R_cov_val"; ix_rel = "R"; ix_col = "val";
              ix_kind = Plan.Ix_covering [ "key"; "grp"; "val" ] }
          in
          let der_desc =
            { Plan.ix_name = "R_agg_grp"; ix_rel = "R"; ix_col = "grp";
              ix_kind = Plan.Ix_derived "key" }
          in
          let session_of descs = Ix.Session.create_exn descs db in
          (* point lookup on the unique val column; aggregate over one of
             the [groups] grp groups *)
          let sel_q =
            Fdb_query.Parser.parse_exn
              (Printf.sprintf "select * from R where val = \"s%06d\"" (size / 2))
          in
          let agg_q =
            Fdb_query.Parser.parse_exn "sum key from R where grp = 7"
          in
          let plain q = Txn.translate q in
          let indexed descs q =
            Txn.translate_indexed (Ix.Session.use (session_of descs)) q
          in
          let check what a b =
            let (ra, _) = a db and (rb, _) = b db in
            if not (Txn.response_equal ra rb) then begin
              Printf.printf "FAIL: %s diverges from the scan on %s/%d\n" what
                name size;
              exit 1
            end
          in
          let sec = indexed [ sec_desc ] sel_q in
          let cov = indexed [ cov_desc ] sel_q in
          let der = indexed [ der_desc ] agg_q in
          check "secondary" (plain sel_q) sec;
          check "covering" (plain sel_q) cov;
          check "derived" (plain agg_q) der;
          let time txn = time_pctls (fun () -> fst (txn db)) in
          let (scan50, scan99) = time (plain sel_q) in
          let (sec50, sec99) = time sec in
          let (cov50, cov99) = time cov in
          let (agg50, agg99) = time (plain agg_q) in
          let (der50, der99) = time der in
          record ~scenario:"select-scan" ~backend:name ~size ~p50:scan50
            ~p99:scan99 ~speedup:1.0;
          record ~scenario:"secondary" ~backend:name ~size ~p50:sec50
            ~p99:sec99 ~speedup:(scan50 /. sec50);
          record ~scenario:"covering" ~backend:name ~size ~p50:cov50
            ~p99:cov99 ~speedup:(scan50 /. cov50);
          record ~scenario:"agg-scan" ~backend:name ~size ~p50:agg50
            ~p99:agg99 ~speedup:1.0;
          record ~scenario:"agg-derived" ~backend:name ~size ~p50:der50
            ~p99:der99 ~speedup:(agg50 /. der50);
          (* Maintenance: one fresh insert through each index alone; the
             meter counts the path copy, shared_units the structure reuse. *)
          List.iter
            (fun desc ->
              let ix =
                match Ix.build desc r with
                | Ok ix -> ix
                | Error e -> failwith e
              in
              let m = Meter.create () in
              let ix' = Ix.apply ~meter:m ix ~removed:[] ~added:[ tup size ] in
              let (shared, total) = Ix.shared_units ~old:ix ix' in
              maintenance :=
                ( desc.Plan.ix_name, name, size, Meter.allocs m, shared,
                  total )
                :: !maintenance)
            [ sec_desc; cov_desc; der_desc ])
        backends)
    sizes;
  Printf.printf
    "\n%-12s %-8s %7s %9s %9s %9s %9s\n" "index" "backend" "size"
    "ins-alloc" "shared" "total" "sharing";
  List.iter
    (fun (ixn, backend, size, allocs, shared, total) ->
      Printf.printf "%-12s %-8s %7d %9d %9d %9d %8.1f%%\n" ixn backend size
        allocs shared total
        (100.0 *. float_of_int shared /. float_of_int (max 1 total)))
    (List.rev !maintenance);
  Printf.printf
    "\n(select/agg probe one of %d groups; speedup: scan p50 / indexed p50;\n\
    \ sharing: units of the post-insert index reused from the pre-insert one)\n"
    groups;
  let oc = open_out out in
  Printf.fprintf oc
    "{\n  \"mode\": %S,\n  \"seed\": %d,\n  \"git_rev\": %S,\n  \
     \"groups\": %d,\n  \"results\": [\n"
    (if quick then "quick" else "full")
    seed (git_rev ()) groups;
  let rows = List.rev !results in
  List.iteri
    (fun i (scenario, backend, size, p50, p99, speedup) ->
      Printf.fprintf oc
        "    {\"scenario\": %S, \"backend\": %S, \"size\": %d, \
         \"p50_ns\": %.0f, \"p99_ns\": %.0f, \"speedup\": %.2f}%s\n"
        scenario backend size p50 p99 speedup
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ],\n  \"maintenance\": [\n";
  let mrows = List.rev !maintenance in
  List.iteri
    (fun i (ixn, backend, size, allocs, shared, total) ->
      Printf.fprintf oc
        "    {\"index\": %S, \"backend\": %S, \"size\": %d, \
         \"insert_allocs\": %d, \"shared_units\": %d, \"total_units\": %d, \
         \"sharing_ratio\": %.3f}%s\n"
        ixn backend size allocs shared total
        (float_of_int shared /. float_of_int (max 1 total))
        (if i = List.length mrows - 1 then "" else ","))
    mrows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "\nwrote %s\n" out

(* -- par: scan-flood speedup on real domains --------------------------------- *)

let par_bench ~quick ~seed ~out =
  let module Schema = Fdb_relational.Schema in
  let module Tuple = Fdb_relational.Tuple in
  let module Value = Fdb_relational.Value in
  let module Pool = Fdb_par.Pool in
  section
    (Printf.sprintf "Parallel executor: scan-flood wall-clock by domains (%s)"
       (if quick then "quick" else "full"));
  let n = if quick then 20_000 else 60_000 in
  let rand = Random.State.make [| seed; 0xbe7c |] in
  let tuples =
    List.init n (fun i ->
        Tuple.make
          [ Value.Int (Random.State.int rand (n / 2));
            Value.Str (Printf.sprintf "v%d" (i mod 997)) ])
  in
  let spec =
    {
      Pipeline.schemas =
        [ Schema.make ~name:"R"
            ~cols:[ ("key", Schema.CInt); ("val", Schema.CStr) ] ];
      initial = [ ("R", tuples) ];
    }
  in
  (* A read-only flood: every query scans the whole relation, so the work
     is embarrassingly chunkable and the pool is the only variable. *)
  let nq = if quick then 12 else 24 in
  let tagged =
    List.init nq (fun i ->
        let k = Random.State.int rand (n / 2) in
        let src =
          match i mod 4 with
          | 0 -> Printf.sprintf "select * from R where key >= %d" k
          | 1 -> Printf.sprintf "count R where key < %d" k
          | 2 -> Printf.sprintf "sum key from R where key >= %d" k
          | _ -> "count R"
        in
        (i mod 4, Fdb_query.Parser.parse_exn src))
  in
  let expected = Pipeline.reference spec tagged in
  let check_responses what rs =
    if
      not
        (List.equal
           (fun (t1, r1) (t2, r2) -> t1 = t2 && Pipeline.response_equal r1 r2)
           expected rs)
    then begin
      Printf.printf "FAIL: %s diverges from the sequential reference\n" what;
      exit 1
    end
  in
  let repeats = if quick then 2 else 3 in
  let time_at domains =
    (* best-of-k wall clock (Sys.time is CPU time summed over domains, so
       it cannot see parallel speedup); pool spawn/teardown is included,
       which is honest for a run-sized unit of work *)
    let best = ref infinity in
    for _ = 1 to repeats do
      let t0 = Unix.gettimeofday () in
      let r = Pipeline.run_parallel ~domains ~chunk:1024 spec tagged in
      let dt = Unix.gettimeofday () -. t0 in
      check_responses (Printf.sprintf "%d-domain run" domains)
        r.Pipeline.par_responses;
      if dt < !best then best := dt
    done;
    !best
  in
  ignore (time_at 1) (* warm-up: page in the data, settle the GC *);
  let domain_counts = [ 1; 2; 4; 8 ] in
  let times = List.map (fun d -> (d, time_at d)) domain_counts in
  let t1 = List.assoc 1 times in
  Printf.printf "%8s %12s %9s   (%d tuples, %d scan queries)\n" "domains"
    "wall-ms" "speedup" n nq;
  List.iter
    (fun (d, t) ->
      Printf.printf "%8d %12.2f %8.2fx\n" d (t *. 1000.0) (t1 /. t))
    times;
  Printf.printf
    "\nrecommended_domain_count: %d  (speedup beyond it is not expected;\n\
    \ on a single-core host every row measures the same core plus pool \
     overhead)\n"
    (Domain.recommended_domain_count ());
  let oc = open_out out in
  Printf.fprintf oc
    "{\n  \"mode\": %S,\n  \"seed\": %d,\n  \"git_rev\": %S,\n  \
     \"tuples\": %d,\n  \"queries\": %d,\n  \
     \"recommended_domain_count\": %d,\n  \"results\": [\n"
    (if quick then "quick" else "full")
    seed (git_rev ()) n nq
    (Domain.recommended_domain_count ());
  List.iteri
    (fun i (d, t) ->
      Printf.fprintf oc
        "    {\"domains\": %d, \"wall_ms\": %.3f, \"speedup_vs_1\": %.3f}%s\n"
        d (t *. 1000.0) (t1 /. t)
        (if i = List.length times - 1 then "" else ","))
    times;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n" out

(* -- repair: speculative batch executor wall-clock by domains ---------------- *)

let repair_bench ~quick ~seed ~out =
  let module Schema = Fdb_relational.Schema in
  let module Tuple = Fdb_relational.Tuple in
  let module Value = Fdb_relational.Value in
  let module Exec = Fdb_repair.Exec in
  section
    (Printf.sprintf
       "Repair executor: speculative batch wall-clock by domains (%s)"
       (if quick then "quick" else "full"))
  ;
  let n = if quick then 3_000 else 8_000 in
  let nq = if quick then 160 else 400 in
  let rand = Random.State.make [| seed; 0x4e9a |] in
  let key_space = n * 4 in
  let tuples =
    List.init n (fun i ->
        Tuple.make
          [ Value.Int (Random.State.int rand key_space);
            Value.Str (Printf.sprintf "v%d" (i mod 997)) ])
  in
  let spec =
    {
      Pipeline.schemas =
        [ Schema.make ~name:"R"
            ~cols:[ ("key", Schema.CInt); ("val", Schema.CStr) ] ];
      initial = [ ("R", tuples) ];
    }
  in
  (* Mostly key-disjoint point writes — the speculative sweet spot — with a
     sprinkling of scans and hot-key updates so the conflict scan, the
     commutativity bypass and the repair loop all see real work. *)
  let tagged =
    List.init nq (fun i ->
        let src =
          match i mod 10 with
          | 0 | 1 | 2 | 3 ->
              Printf.sprintf "insert (%d, \"w%d\") into R"
                (Random.State.int rand key_space) i
          | 4 | 5 ->
              Printf.sprintf "delete %d from R" (Random.State.int rand key_space)
          | 6 ->
              Printf.sprintf "update R set val = \"u%d\" where key <= %d" i
                (Random.State.int rand 48)
          | 7 -> Printf.sprintf "find %d in R" (Random.State.int rand key_space)
          | 8 ->
              Printf.sprintf "count R where key >= %d"
                (key_space - Random.State.int rand 512)
          | _ ->
              Printf.sprintf "sum key from R where key <= %d"
                (Random.State.int rand 512)
        in
        (i mod 4, Fdb_query.Parser.parse_exn src))
  in
  let expected = Pipeline.reference ~semantics:Pipeline.Ordered_unique spec tagged in
  let check_responses what rs =
    if
      not
        (List.equal
           (fun (t1, r1) (t2, r2) -> t1 = t2 && Pipeline.response_equal r1 r2)
           expected rs)
    then begin
      Printf.printf "FAIL: %s diverges from the sequential reference\n" what;
      exit 1
    end
  in
  let repeats = if quick then 2 else 3 in
  let batch = 32 in
  let time_at domains =
    (* best-of-k wall clock, pool spawn/teardown included (honest for a
       run-sized unit of work); every run is differentially checked *)
    let best = ref infinity and stats = ref Exec.zero_stats in
    for _ = 1 to repeats do
      let t0 = Unix.gettimeofday () in
      let r = Pipeline.run_repair ~domains ~batch spec tagged in
      let dt = Unix.gettimeofday () -. t0 in
      check_responses
        (Printf.sprintf "%d-domain repair run" domains)
        r.Pipeline.rep_responses;
      stats := r.Pipeline.rep_stats;
      if dt < !best then best := dt
    done;
    (!best, !stats)
  in
  ignore (time_at 1) (* warm-up: page in the data, settle the GC *);
  let domain_counts = [ 1; 2; 4; 8 ] in
  let rows = List.map (fun d -> (d, time_at d)) domain_counts in
  let t1 = fst (List.assoc 1 rows) in
  Printf.printf "%8s %10s %8s %9s %7s %8s   (%d tuples, %d txns, batch %d)\n"
    "domains" "wall-ms" "speedup" "spec-hit" "rounds" "bypass" n nq batch;
  List.iter
    (fun (d, (t, st)) ->
      Printf.printf "%8d %10.2f %7.2fx %8.1f%% %7d %8d\n" d (t *. 1000.0)
        (t1 /. t)
        (100.0 *. float_of_int st.Exec.spec_hits /. float_of_int st.Exec.txns)
        st.Exec.rounds
        (st.Exec.bypass_disjoint + st.Exec.bypass_commute))
    rows;
  let oc = open_out out in
  Printf.fprintf oc
    "{\n  \"mode\": %S,\n  \"seed\": %d,\n  \"git_rev\": %S,\n  \
     \"tuples\": %d,\n  \"queries\": %d,\n  \"batch\": %d,\n  \
     \"recommended_domain_count\": %d,\n  \"results\": [\n"
    (if quick then "quick" else "full")
    seed (git_rev ()) n nq batch
    (Domain.recommended_domain_count ());
  List.iteri
    (fun i (d, (t, st)) ->
      Printf.fprintf oc
        "    {\"domains\": %d, \"wall_ms\": %.3f, \"speedup_vs_1\": %.3f, \
         \"spec_hit_rate\": %.4f, \"rounds\": %d, \"reexecs\": %d, \
         \"bypass_disjoint\": %d, \"bypass_commute\": %d, \
         \"adopted_slots\": %d}%s\n"
        d (t *. 1000.0) (t1 /. t)
        (float_of_int st.Exec.spec_hits /. float_of_int st.Exec.txns)
        st.Exec.rounds st.Exec.reexecs st.Exec.bypass_disjoint
        st.Exec.bypass_commute st.Exec.adopted_slots
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n" out

(* -- shard: spine share and bypass rate by shard count ------------------------ *)

let shard_bench ~quick ~seed ~out =
  let module Shard = Fdb_shard.Shard in
  let module Merge = Fdb_merge.Merge in
  section
    (Printf.sprintf
       "Sharded executor: global-spine share and bypass rate by shard count \
        (%s)"
       (if quick then "quick" else "full"));
  let txns = if quick then 400 else 1600 in
  let workload join_pct =
    W.generate
      {
        W.default_spec with
        transactions = txns;
        relations = 6;
        initial_tuples = 240;
        insert_pct = 20.0;
        delete_pct = 5.0;
        update_pct = 10.0;
        join_pct;
        clients = 4;
        seed;
      }
  in
  let repeats = if quick then 2 else 3 in
  let run join_pct shards =
    let w = workload join_pct in
    let spec = Pipeline.db_spec_of_workload w in
    let tagged =
      List.map
        (fun (t : _ Merge.tagged) -> (t.Merge.tag, t.Merge.item))
        (Merge.merge Merge.Arrival_order w.W.client_streams)
    in
    let expected =
      Pipeline.reference ~semantics:Pipeline.Ordered_unique spec tagged
    in
    let best = ref infinity in
    let stats = ref None in
    for _ = 1 to repeats do
      let t0 = Unix.gettimeofday () in
      let r = Pipeline.run_sharded ~shards spec tagged in
      let dt = Unix.gettimeofday () -. t0 in
      if
        not
          (List.equal
             (fun (t1, r1) (t2, r2) ->
               t1 = t2 && Pipeline.response_equal r1 r2)
             expected r.Pipeline.sh_responses)
      then begin
        Printf.printf
          "FAIL: %d-shard run diverges from the sequential reference\n" shards;
        exit 1
      end;
      stats := Some r.Pipeline.sh_stats;
      if dt < !best then best := dt
    done;
    (!best, Option.get !stats)
  in
  (* bypass fraction = work that never touches the global merge point
     (shard-local commits plus cross-shard commits the commutativity
     analysis let bypass the spine); spine fraction is the rest. *)
  let fracs (st : Shard.stats) =
    let f n = float_of_int n /. float_of_int (max 1 st.Shard.txns) in
    (f (st.Shard.local + st.Shard.bypassed), f st.Shard.spine)
  in
  let shard_counts = [ 1; 2; 4; 8 ] in
  let ratios = [ 0.0; 20.0 ] in
  let rows =
    List.concat_map
      (fun join_pct ->
        List.map
          (fun shards -> (join_pct, shards, run join_pct shards))
          shard_counts)
      ratios
  in
  Printf.printf "%9s %7s %10s %9s %9s %8s   (%d txns, 6 relations)\n"
    "join-pct" "shards" "wall-ms" "bypass" "spine" "x-bypass" txns;
  List.iter
    (fun (join_pct, shards, (t, st)) ->
      let (bypass, spine) = fracs st in
      Printf.printf "%8.0f%% %7d %10.2f %8.1f%% %8.1f%% %8d\n" join_pct shards
        (t *. 1000.0) (100.0 *. bypass) (100.0 *. spine) st.Shard.bypassed)
    rows;
  (* the acceptance claim: with no cross-shard work, nothing ever touches
     the global merge — the bypass fraction is positive (in fact 1.0) *)
  List.iter
    (fun (join_pct, shards, (_, st)) ->
      let (bypass, _) = fracs st in
      if join_pct = 0.0 && bypass <= 0.0 then begin
        Printf.printf
          "FAIL: bypass fraction %.3f at cross-shard ratio 0 (%d shards)\n"
          bypass shards;
        exit 1
      end)
    rows;
  let oc = open_out out in
  Printf.fprintf oc
    "{\n  \"mode\": %S,\n  \"seed\": %d,\n  \"git_rev\": %S,\n  \
     \"transactions\": %d,\n  \"relations\": 6,\n  \"results\": [\n"
    (if quick then "quick" else "full")
    seed (git_rev ()) txns;
  List.iteri
    (fun i (join_pct, shards, (t, st)) ->
      let (bypass, spine) = fracs st in
      Printf.fprintf oc
        "    {\"join_pct\": %.1f, \"shards\": %d, \"wall_ms\": %.3f, \
         \"txns\": %d, \"local\": %d, \"cross_bypassed\": %d, \"spine\": \
         %d, \"bypass_frac\": %.4f, \"spine_frac\": %.4f, \"max_epoch\": \
         %d}%s\n"
        join_pct shards (t *. 1000.0) st.Shard.txns st.Shard.local
        st.Shard.bypassed st.Shard.spine bypass spine st.Shard.max_epoch
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n" out

(* -- wal: restart-recovery wall-clock vs log length -------------------------- *)

let wal_bench ~quick ~seed ~out =
  let module Schema = Fdb_relational.Schema in
  let module Wal = Fdb_wal.Wal in
  section
    (Printf.sprintf "Durable log: restart-recovery wall-clock vs log length (%s)"
       (if quick then "quick" else "full"));
  let sizes = if quick then [ 100; 400; 1600 ] else [ 250; 1000; 4000 ] in
  let repeats = if quick then 7 else 15 in
  let spec =
    {
      Pipeline.schemas =
        [ Schema.make ~name:"R"
            ~cols:[ ("key", Schema.CInt); ("val", Schema.CStr) ] ];
      initial = [];
    }
  in
  let db0 = Pipeline.initial_database spec in
  (* A version chain of the requested length: every query touches the
     relation, so version i+1 differs from version i and the log gets one
     delta frame per query. *)
  let versions n =
    let rand = Random.State.make [| seed; 0x3a1d; n |] in
    (* a bounded key space keeps the relation — and so every delta frame —
       at a steady size, so log bytes grow linearly with the version count
       and the sweep isolates recovery cost vs log length *)
    let key_space = 512 in
    let rec go db i acc =
      if i >= n then List.rev acc
      else
        let src =
          match i mod 5 with
          | 0 | 1 | 2 ->
              Printf.sprintf "insert (%d, \"w%d\") into R"
                (Random.State.int rand key_space) i
          | 3 ->
              Printf.sprintf "update R set val = \"u%d\" where key = %d" i
                (Random.State.int rand key_space)
          | _ ->
              Printf.sprintf "delete %d from R" (Random.State.int rand key_space)
        in
        let _, db' = Fdb_txn.Txn.translate (Fdb_query.Parser.parse_exn src) db in
        if db' == db then go db (i + 1) acc else go db' (i + 1) (db' :: acc)
    in
    go db0 0 []
  in
  let fresh_dir tag n =
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "fdb-bench-wal-%d-%s-%d" (Unix.getpid ()) tag n)
    in
    if Sys.file_exists dir then
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir)
    else Sys.mkdir dir 0o700;
    dir
  in
  let rm_dir dir =
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  in
  (* Write a log of [vs] under [dir], then time [Wal.recover] from a cold
     store [repeats] times.  Returns (log_bytes, segments, times sorted). *)
  let measure ~checkpoint_every dir vs =
    let store = Wal.Fs.store ~dir in
    let w = Wal.create ~sync_every:8 ~checkpoint_every ~store db0 in
    List.iter (Wal.append w) vs;
    Wal.sync w;
    let appended = Wal.appended w in
    let log_bytes =
      List.fold_left
        (fun acc f ->
          acc
          + match store.Wal.Store.read f with
            | Some s -> String.length s
            | None -> 0)
        0
        (store.Wal.Store.list_files ())
    in
    let segments = List.length (store.Wal.Store.list_files ()) in
    store.Wal.Store.close ();
    let times =
      List.init repeats (fun _ ->
          let cold = Wal.Fs.store ~dir in
          let t0 = Unix.gettimeofday () in
          let r = Wal.recover cold in
          let dt = Unix.gettimeofday () -. t0 in
          cold.Wal.Store.close ();
          if r.Wal.upto <> appended then begin
            Printf.printf "FAIL: recovery stopped at %d of %d appended\n"
              r.Wal.upto appended;
            exit 1
          end;
          dt)
    in
    (log_bytes, segments, List.sort compare times)
  in
  let pctl sorted p =
    let n = List.length sorted in
    let i = min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1) in
    List.nth sorted (max 0 i) *. 1000.0
  in
  let rows =
    List.map
      (fun n ->
        let vs = versions n in
        let dir = fresh_dir "full" n in
        (* full replay: no compaction, recovery cost grows with the log *)
        let bytes, segs, ts = measure ~checkpoint_every:0 dir vs in
        rm_dir dir;
        let dir = fresh_dir "ckpt" n in
        (* compacted: checkpoints bound the replay suffix *)
        let cbytes, csegs, cts = measure ~checkpoint_every:64 dir vs in
        rm_dir dir;
        (List.length vs, bytes, segs, ts, cbytes, csegs, cts))
      sizes
  in
  Printf.printf "%9s %10s %10s %10s | %10s %10s %10s   (ckpt every 64)\n"
    "versions" "log-KiB" "p50-ms" "p99-ms" "ckpt-KiB" "p50-ms" "p99-ms";
  List.iter
    (fun (n, bytes, _segs, ts, cbytes, _csegs, cts) ->
      Printf.printf "%9d %10.1f %10.2f %10.2f | %10.1f %10.2f %10.2f\n" n
        (float_of_int bytes /. 1024.0)
        (pctl ts 0.50) (pctl ts 0.99)
        (float_of_int cbytes /. 1024.0)
        (pctl cts 0.50) (pctl cts 0.99))
    rows;
  let oc = open_out out in
  Printf.fprintf oc
    "{\n  \"mode\": %S,\n  \"seed\": %d,\n  \"git_rev\": %S,\n  \
     \"repeats\": %d,\n  \"sync_every\": 8,\n  \"checkpoint_every\": 64,\n  \
     \"results\": [\n"
    (if quick then "quick" else "full")
    seed (git_rev ()) repeats;
  List.iteri
    (fun i (n, bytes, segs, ts, cbytes, csegs, cts) ->
      Printf.fprintf oc
        "    {\"versions\": %d, \"log_bytes\": %d, \"segments\": %d, \
         \"recover_p50_ms\": %.3f, \"recover_p99_ms\": %.3f, \
         \"compact_log_bytes\": %d, \"compact_segments\": %d, \
         \"compact_recover_p50_ms\": %.3f, \"compact_recover_p99_ms\": %.3f}%s\n"
        n bytes segs (pctl ts 0.50) (pctl ts 0.99) cbytes csegs (pctl cts 0.50)
        (pctl cts 0.99)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n" out

(* -- traffic: open-loop production harness over the execution modes ---------- *)

let traffic_bench ~quick ~seed ~out =
  let module Openloop = Fdb_workload.Openloop in
  let module Traffic = Fdb.Traffic in
  let module R = Fdb_relational.Relation in
  section
    (Printf.sprintf
       "Production traffic: open-loop stream, latency percentiles (%s)"
       (if quick then "quick" else "full"));
  let initial_tuples = if quick then 20_000 else 1_000_000 in
  let txns = if quick then 4_000 else 30_000 in
  let spec = Openloop.standard ~initial_tuples ~txns ~seed () in
  let t0 = Unix.gettimeofday () in
  let plan = Openloop.generate spec in
  let gen_s = Unix.gettimeofday () -. t0 in
  Printf.printf
    "generated %d txns over %d initial tuples (%d tenants) in %.2fs\n"
    (Openloop.total_txns plan) initial_tuples spec.Openloop.tenants gen_s;
  let clock = Monotonic_clock.now in
  let runs =
    [
      (Traffic.Sequential, R.Btree_backend 8);
      (Traffic.Sequential, R.Column_backend 256);
    ]
    @
    (* the batched modes at differential scale: they re-materialize state
       between microbatches, so they ride a smaller stream *)
    if quick then []
    else
      [
        (Traffic.Parallel { domains = None }, R.Btree_backend 8);
        (Traffic.Sharded { shards = 4 }, R.Btree_backend 8);
      ]
  in
  let small_plan =
    if quick then plan
    else Openloop.generate (Openloop.standard ~initial_tuples:20_000 ~txns:4_000 ~seed ())
  in
  let reports =
    List.map
      (fun (mode, backend) ->
        let p =
          match mode with Traffic.Sequential -> plan | _ -> small_plan
        in
        let r = Traffic.drive ~mode ~backend ~clock p in
        Printf.printf
          "%-10s %-10s load %6.2fs  run %6.2fs  %9.0f txn/s  p50 %7.0fns  \
           p99 %8.0fns  p999 %8.0fns  failed %d\n"
          r.Traffic.tr_mode r.Traffic.tr_backend r.Traffic.tr_load_s
          r.Traffic.tr_run_s r.Traffic.tr_throughput r.Traffic.tr_p50_ns
          r.Traffic.tr_p99_ns r.Traffic.tr_p999_ns r.Traffic.tr_failed;
        List.iter
          (fun ph ->
            Printf.printf
              "           phase %-12s %6d txns  p50 %7.0fns  p99 %8.0fns  \
               p999 %8.0fns\n"
              ph.Traffic.ph_name ph.Traffic.ph_txns ph.Traffic.ph_p50_ns
              ph.Traffic.ph_p99_ns ph.Traffic.ph_p999_ns)
          r.Traffic.tr_phases;
        (mode, r))
      runs
  in
  (* differential: every sequential run saw the same stream, so the final
     states must agree across backends — and the batched modes against the
     small stream's sequential reference *)
  (match reports with
  | (_, first) :: _ ->
      let small_ref =
        if quick then first.Traffic.tr_final_digest
        else
          (Traffic.drive ~backend:(R.Btree_backend 8) ~clock small_plan)
            .Traffic.tr_final_digest
      in
      List.iter
        (fun (mode, r) ->
          let expect =
            match mode with
            | Traffic.Sequential when not quick -> first.Traffic.tr_final_digest
            | _ -> small_ref
          in
          if r.Traffic.tr_final_digest <> expect then begin
            Printf.printf "FAIL: %s/%s final state diverges\n"
              r.Traffic.tr_mode r.Traffic.tr_backend;
            exit 1
          end)
        reports;
      Printf.printf "final states agree across backends and modes\n"
  | [] -> ());
  let oc = open_out out in
  Printf.fprintf oc
    "{\n  \"mode\": %S,\n  \"seed\": %d,\n  \"git_rev\": %S,\n  \
     \"relations\": %d,\n  \"initial_tuples\": %d,\n  \"tenants\": %d,\n  \
     \"txns\": %d,\n  \"generate_s\": %.3f,\n  \"results\": [\n"
    (if quick then "quick" else "full")
    seed (git_rev ()) spec.Openloop.relations initial_tuples
    spec.Openloop.tenants txns gen_s;
  List.iteri
    (fun i (_, r) ->
      let phases =
        String.concat ", "
          (List.map
             (fun ph ->
               Printf.sprintf
                 "{\"name\": %S, \"txns\": %d, \"p50_ns\": %.0f, \
                  \"p99_ns\": %.0f, \"p999_ns\": %.0f}"
                 ph.Traffic.ph_name ph.Traffic.ph_txns ph.Traffic.ph_p50_ns
                 ph.Traffic.ph_p99_ns ph.Traffic.ph_p999_ns)
             r.Traffic.tr_phases)
      in
      Printf.fprintf oc
        "    {\"mode\": %S, \"backend\": %S, \"initial_tuples\": %d, \
         \"txns\": %d, \"load_s\": %.3f, \"run_s\": %.3f, \
         \"throughput_txn_s\": %.0f, \"latency_unit\": %S, \"p50_ns\": %.0f, \
         \"p99_ns\": %.0f, \"p999_ns\": %.0f, \"failed\": %d, \
         \"final_tuples\": %d, \"final_digest\": %S, \"phases\": [%s]}%s\n"
        r.Traffic.tr_mode r.Traffic.tr_backend r.Traffic.tr_initial_tuples
        r.Traffic.tr_txns r.Traffic.tr_load_s r.Traffic.tr_run_s
        r.Traffic.tr_throughput r.Traffic.tr_latency_unit r.Traffic.tr_p50_ns
        r.Traffic.tr_p99_ns r.Traffic.tr_p999_ns r.Traffic.tr_failed
        r.Traffic.tr_final_tuples r.Traffic.tr_final_digest phases
        (if i = List.length reports - 1 then "" else ","))
    reports;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n" out

(* -- trace-overhead: zero allocations when the sink is disabled -------------- *)

let trace_overhead () =
  let module Trace = Fdb_obs.Trace in
  let module Event = Fdb_obs.Event in
  section "Trace overhead: guarded emission with the sink disabled";
  Trace.set_sink None;
  assert (not (Trace.enabled ()));
  (* The exact pattern every instrumented hot path uses: the event record
     is only constructed inside the [enabled] branch, so with the sink
     disabled each iteration must allocate nothing. *)
  let sink = ref 0 in
  let probe n =
    let w0 = Gc.minor_words () in
    for i = 1 to n do
      if Trace.enabled () then
        Trace.emit_at ~ts:i ~site:0 (Event.Cell_write { cell = i });
      sink := !sink + i
    done;
    Gc.minor_words () -. w0
  in
  ignore (probe 1_000);
  (* [Gc.minor_words] itself boxes its float result; comparing two probe
     sizes cancels that constant, leaving only the per-iteration cost. *)
  let small = probe 1_000 in
  let large = probe 1_000_000 in
  let per_iter = (large -. small) /. 999_000.0 in
  Printf.printf
    "1k iterations: %.0f minor words; 1M iterations: %.0f minor words\n\
     per-iteration allocation: %.6f words\n"
    small large per_iter;
  (* A pipeline-level spot check: the same end-to-end run allocates the
     same with instrumentation compiled in but disabled, run to run. *)
  let w = W.generate W.default_spec in
  let tagged = Experiment.merged_workload w in
  let spec = Pipeline.db_spec_of_workload w in
  ignore (Pipeline.run spec tagged);
  let pipeline_words () =
    let w0 = Gc.minor_words () in
    ignore (Pipeline.run spec tagged);
    Gc.minor_words () -. w0
  in
  let a = pipeline_words () and b = pipeline_words () in
  Printf.printf
    "pipeline.run(50txn) minor words, disabled sink, two runs: %.0f / %.0f\n"
    a b;
  if per_iter > 0.001 then begin
    Printf.printf
      "FAIL: disabled tracing allocates %.6f words per operation\n" per_iter;
    exit 1
  end;
  if a <> b then begin
    Printf.printf "FAIL: disabled tracing made pipeline.run nondeterministic\n";
    exit 1
  end;
  Printf.printf "OK: disabled tracing allocates nothing on the hot path\n"

(* -- bechamel micro-benchmarks ---------------------------------------------- *)

let micro () =
  section "Micro-benchmarks (bechamel, monotonic clock)";
  let open Bechamel in
  let open Toolkit in
  let module IntAvl = Fdb_persistent.Avl.Make (Fdb_persistent.Ordered.Int) in
  let module Int23 = Fdb_persistent.Two3.Make (Fdb_persistent.Ordered.Int) in
  let module IntBt = Fdb_persistent.Btree.Make (Fdb_persistent.Ordered.Int) in
  let module IntPl = Fdb_persistent.Plist.Make (Fdb_persistent.Ordered.Int) in
  let n = 1000 in
  let keys = List.init n (fun i -> ((i * 7919) mod 10007) * 2) in
  let avl = IntAvl.of_list keys
  and t23 = Int23.of_list keys
  and bt = IntBt.of_list ~branching:8 keys
  and pl = IntPl.of_list keys in
  let w = W.generate W.default_spec in
  let tagged = Experiment.merged_workload w in
  let spec = Pipeline.db_spec_of_workload w in
  let query_src = "select val from R1 where key >= 10 and not (val = \"x\")" in
  let tests =
    [ Test.make ~name:"plist.insert(n=1000)"
        (Staged.stage (fun () -> ignore (IntPl.insert 501 pl)));
      Test.make ~name:"avl.insert(n=1000)"
        (Staged.stage (fun () -> ignore (IntAvl.insert 501 avl)));
      Test.make ~name:"two3.insert(n=1000)"
        (Staged.stage (fun () -> ignore (Int23.insert 501 t23)));
      Test.make ~name:"btree.insert(n=1000)"
        (Staged.stage (fun () -> ignore (IntBt.insert 501 bt)));
      Test.make ~name:"avl.member(n=1000)"
        (Staged.stage (fun () -> ignore (IntAvl.member 501 avl)));
      Test.make ~name:"query.parse"
        (Staged.stage (fun () ->
             ignore (Fdb_query.Parser.parse_exn query_src)));
      Test.make ~name:"pipeline.run(50txn,ideal)"
        (Staged.stage (fun () -> ignore (Pipeline.run spec tagged)));
      Test.make ~name:"pipeline.reference(50txn)"
        (Staged.stage (fun () -> ignore (Pipeline.reference spec tagged)));
    ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.3) () in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  Printf.printf "%-30s %16s\n" "benchmark" "ns/run";
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw =
            Benchmark.run cfg Instance.[ monotonic_clock ] elt
          in
          let est = Analyze.one ols Instance.monotonic_clock raw in
          let ns =
            match Analyze.OLS.estimates est with
            | Some (v :: _) -> v
            | _ -> nan
          in
          Printf.printf "%-30s %16.1f\n" (Test.Elt.name elt) ns)
        (Test.elements test))
    tests

let all () =
  table1 ();
  table2 ();
  table3 ();
  fig21 ();
  fig22 ();
  fig23 ();
  fig31 ();
  ablation_repr ();
  ablation_topo ();
  ablation_merge ();
  ablation_semantics ();
  ablation_engine_repr ();
  ablation_eval_mode ();
  scaling ();
  recover ();
  micro ()

let () =
  let cmd = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match cmd with
  | "table1" -> table1 ()
  | "table2" -> table2 ()
  | "table3" -> table3 ()
  | "fig21" -> fig21 ()
  | "fig22" -> fig22 ()
  | "fig23" -> fig23 ()
  | "fig31" -> fig31 ()
  | "ablation-repr" -> ablation_repr ()
  | "ablation-topo" -> ablation_topo ()
  | "ablation-merge" -> ablation_merge ()
  | "ablation-semantics" -> ablation_semantics ()
  | "ablation-engine-repr" -> ablation_engine_repr ()
  | "ablation-eval-mode" -> ablation_eval_mode ()
  | "scaling" -> scaling ()
  | "recover" -> recover ()
  | "plan" ->
      let quick = ref false and out = ref "BENCH_plan.json" in
      let seed = ref 1 in
      let i = ref 2 in
      while !i < Array.length Sys.argv do
        (match Sys.argv.(!i) with
        | "--quick" -> quick := true
        | "--seed" when !i + 1 < Array.length Sys.argv ->
            incr i;
            seed := int_of_string Sys.argv.(!i)
        | "-o" | "--output" when !i + 1 < Array.length Sys.argv ->
            incr i;
            out := Sys.argv.(!i)
        | a ->
            Printf.eprintf "plan: unknown argument %S\n" a;
            exit 1);
        incr i
      done;
      plan_bench ~quick:!quick ~seed:!seed ~out:!out
  | "index" ->
      let quick = ref false and out = ref "BENCH_index.json" in
      let seed = ref 1 in
      let i = ref 2 in
      while !i < Array.length Sys.argv do
        (match Sys.argv.(!i) with
        | "--quick" -> quick := true
        | "--seed" when !i + 1 < Array.length Sys.argv ->
            incr i;
            seed := int_of_string Sys.argv.(!i)
        | "-o" | "--output" when !i + 1 < Array.length Sys.argv ->
            incr i;
            out := Sys.argv.(!i)
        | a ->
            Printf.eprintf "index: unknown argument %S\n" a;
            exit 1);
        incr i
      done;
      index_bench ~quick:!quick ~seed:!seed ~out:!out
  | "par" ->
      let quick = ref false and out = ref "BENCH_par.json" in
      let seed = ref 1 in
      let i = ref 2 in
      while !i < Array.length Sys.argv do
        (match Sys.argv.(!i) with
        | "--quick" -> quick := true
        | "--seed" when !i + 1 < Array.length Sys.argv ->
            incr i;
            seed := int_of_string Sys.argv.(!i)
        | "-o" | "--output" when !i + 1 < Array.length Sys.argv ->
            incr i;
            out := Sys.argv.(!i)
        | a ->
            Printf.eprintf "par: unknown argument %S\n" a;
            exit 1);
        incr i
      done;
      par_bench ~quick:!quick ~seed:!seed ~out:!out
  | "repair" ->
      let quick = ref false and out = ref "BENCH_repair.json" in
      let seed = ref 1 in
      let i = ref 2 in
      while !i < Array.length Sys.argv do
        (match Sys.argv.(!i) with
        | "--quick" -> quick := true
        | "--seed" when !i + 1 < Array.length Sys.argv ->
            incr i;
            seed := int_of_string Sys.argv.(!i)
        | "-o" | "--output" when !i + 1 < Array.length Sys.argv ->
            incr i;
            out := Sys.argv.(!i)
        | a ->
            Printf.eprintf "repair: unknown argument %S\n" a;
            exit 1);
        incr i
      done;
      repair_bench ~quick:!quick ~seed:!seed ~out:!out
  | "shard" ->
      let quick = ref false and out = ref "BENCH_shard.json" in
      let seed = ref 1 in
      let i = ref 2 in
      while !i < Array.length Sys.argv do
        (match Sys.argv.(!i) with
        | "--quick" -> quick := true
        | "--seed" when !i + 1 < Array.length Sys.argv ->
            incr i;
            seed := int_of_string Sys.argv.(!i)
        | "-o" | "--output" when !i + 1 < Array.length Sys.argv ->
            incr i;
            out := Sys.argv.(!i)
        | a ->
            Printf.eprintf "shard: unknown argument %S\n" a;
            exit 1);
        incr i
      done;
      shard_bench ~quick:!quick ~seed:!seed ~out:!out
  | "wal" ->
      let quick = ref false and out = ref "BENCH_wal.json" in
      let seed = ref 1 in
      let i = ref 2 in
      while !i < Array.length Sys.argv do
        (match Sys.argv.(!i) with
        | "--quick" -> quick := true
        | "--seed" when !i + 1 < Array.length Sys.argv ->
            incr i;
            seed := int_of_string Sys.argv.(!i)
        | "-o" | "--output" when !i + 1 < Array.length Sys.argv ->
            incr i;
            out := Sys.argv.(!i)
        | a ->
            Printf.eprintf "wal: unknown argument %S\n" a;
            exit 1);
        incr i
      done;
      wal_bench ~quick:!quick ~seed:!seed ~out:!out
  | "traffic" ->
      let quick = ref false and out = ref "BENCH_traffic.json" in
      let seed = ref 42 in
      let i = ref 2 in
      while !i < Array.length Sys.argv do
        (match Sys.argv.(!i) with
        | "--quick" -> quick := true
        | "--seed" when !i + 1 < Array.length Sys.argv ->
            incr i;
            seed := int_of_string Sys.argv.(!i)
        | "-o" | "--output" when !i + 1 < Array.length Sys.argv ->
            incr i;
            out := Sys.argv.(!i)
        | a ->
            Printf.eprintf "traffic: unknown argument %S\n" a;
            exit 1);
        incr i
      done;
      traffic_bench ~quick:!quick ~seed:!seed ~out:!out
  | "trace-overhead" -> trace_overhead ()
  | "micro" -> micro ()
  | "all" -> all ()
  | other ->
      Printf.eprintf
        "unknown bench %S (try table1|table2|table3|fig21|fig22|fig23|fig31|\
         ablation-repr|ablation-topo|ablation-merge|ablation-semantics|\
         ablation-engine-repr|ablation-eval-mode|scaling|recover|\
         plan [--quick] [--seed N] [-o FILE]|\
         index [--quick] [--seed N] [-o FILE]|\
         par [--quick] [--seed N] [-o FILE]|\
         repair [--quick] [--seed N] [-o FILE]|\
         shard [--quick] [--seed N] [-o FILE]|\
         wal [--quick] [--seed N] [-o FILE]|\
         traffic [--quick] [--seed N] [-o FILE]|trace-overhead|micro|all)\n"
        other;
      exit 1
