(** Access-path planning: decompose a predicate's conjuncts to choose how a
    relation is read.

    The key order that makes path-copying writes cheap (paper §2.2) equally
    supports indexed reads: a conjunct comparing the key column against a
    literal can steer the executor to a point lookup or a pruned range scan
    instead of a full materializing scan.  [analyze] extracts those atoms
    and leaves everything else as a residual predicate, so that
    (access path) ∧ (residual) is equivalent to the original [where]. *)

open Fdb_relational

type bound = { value : Value.t; inclusive : bool }

type path =
  | Point_lookup of Value.t  (** key-equality conjunct: single probe *)
  | Range_scan of { lo : bound option; hi : bound option }
      (** key-bound conjuncts, tightest of each side; [None] = unbounded *)
  | Full_scan  (** no key atom: every tuple is visited *)

type t = { path : path; residual : Ast.pred }

val analyze : Schema.t -> Ast.pred -> t
(** Total: never fails, falling back to [Full_scan] with the whole predicate
    as residual.  Only top-level conjuncts ([And] chains) are examined —
    atoms under [Or]/[Not] stay residual; a second key equality stays
    residual (it either agrees or falsifies); [Ne] never helps an ordered
    probe.  Unknown columns are left in the residual for {!Pred.compile} to
    report. *)

val conjuncts : Ast.pred -> Ast.pred list
(** Flatten a top-level [And] spine, dropping [True]. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** E.g. ["range scan [key >= 3, key < 9]; residual v = \"x\""]. *)

val explain :
  schema_of:(string -> Schema.t option) -> Ast.query -> string
(** One-line access-path explanation for any query, using [schema_of] to
    resolve relation names (unknown relations are reported, not errors). *)
