lib/query/pred.ml: Ast Fdb_relational Format List Printf Result Schema Tuple Value
