type 'a tagged = { tag : int; item : 'a }

type policy =
  | Arrival_order
  | Eager_clients of int list
  | Seeded of int
  | Concatenated

let total_left queues = Array.exists (fun q -> q <> []) queues

let merge policy streams =
  let queues = Array.of_list streams in
  let n = Array.length queues in
  if n = 0 then []
  else begin
    let acc = ref [] in
    (* The output position is threaded as a counter: computing it as
       [List.length acc] on every take made a traced merge O(n^2). *)
    let pos = ref 0 in
    let take tag =
      match queues.(tag) with
      | [] -> false
      | item :: rest ->
          queues.(tag) <- rest;
          if Fdb_obs.Trace.enabled () then
            Fdb_obs.Trace.emit (Fdb_obs.Event.Merge_take { tag; pos = !pos });
          acc := { tag; item } :: !acc;
          incr pos;
          true
    in
    (match policy with
    | Arrival_order ->
        while total_left queues do
          for tag = 0 to n - 1 do
            ignore (take tag)
          done
        done
    | Eager_clients bursts ->
        (* A burst that never takes cannot drain the queues; keep only
           positive sizes so the policy always terminates. *)
        let bursts = List.filter (fun b -> b > 0) bursts in
        let bursts = if bursts = [] then [ 1 ] else bursts in
        let nb = List.length bursts in
        let round = ref 0 in
        while total_left queues do
          for tag = 0 to n - 1 do
            let burst = List.nth bursts ((!round + tag) mod nb) in
            for _ = 1 to burst do
              ignore (take tag)
            done
          done;
          incr round
        done
    | Seeded seed ->
        let rand = Random.State.make [| seed |] in
        while total_left queues do
          let nonempty =
            List.filter
              (fun tag -> queues.(tag) <> [])
              (List.init n (fun i -> i))
          in
          let tag =
            List.nth nonempty (Random.State.int rand (List.length nonempty))
          in
          ignore (take tag)
        done
    | Concatenated ->
        for tag = 0 to n - 1 do
          while take tag do
            ()
          done
        done);
    List.rev !acc
  end

let merge_timed streams =
  let entries =
    List.concat
      (List.mapi
         (fun tag items ->
           List.mapi (fun seq (time, item) -> (time, tag, seq, item)) items)
         streams)
  in
  let ordered =
    List.sort
      (fun (t1, g1, s1, _) (t2, g2, s2, _) ->
        match Float.compare t1 t2 with
        | 0 -> ( match Int.compare g1 g2 with 0 -> Int.compare s1 s2 | c -> c)
        | c -> c)
      entries
  in
  List.map (fun (_, tag, _, item) -> { tag; item }) ordered

let choose ~tag merged =
  List.filter_map
    (fun t -> if t.tag = tag then Some t.item else None)
    merged

let tags_used merged =
  List.sort_uniq Int.compare (List.map (fun t -> t.tag) merged)

let pp pp_item ppf merged =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list
       ~pp_sep:Format.pp_print_cut
       (fun ppf t -> Format.fprintf ppf "[%d] %a" t.tag pp_item t.item))
    merged
