exception Parse_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

type cursor = { mutable toks : Lexer.token list }

let peek c = match c.toks with [] -> None | t :: _ -> Some t


let next c =
  match c.toks with
  | [] -> fail "unexpected end of program"
  | t :: r ->
      c.toks <- r;
      t

let expect c tok name =
  let t = next c in
  if t <> tok then fail "expected %s, got %a" name Lexer.pp_token t

let ident c =
  match next c with
  | Lexer.IDENT x -> x
  | t -> fail "expected identifier, got %a" Lexer.pp_token t

(* Does the cursor start with a destructuring pattern "[x, y, ...] ="? *)
let starts_tuple_pattern c =
  let rec scan = function
    | Lexer.IDENT _ :: Lexer.COMMA :: rest -> scan rest
    | Lexer.IDENT _ :: Lexer.RBRACKET :: Lexer.OP "=" :: _ -> true
    | _ -> false
  in
  match c.toks with Lexer.LBRACKET :: rest -> scan rest | _ -> false

let rec expr c =
  match peek c with
  | Some (Lexer.KW "if") ->
      ignore (next c);
      let cond = expr c in
      expect c (Lexer.KW "then") "'then'";
      let t = expr c in
      expect c (Lexer.KW "else") "'else'";
      let e = expr c in
      Ast.If (cond, t, e)
  | _ -> seq_expr c

(* e ^ s, right associative *)
and seq_expr c =
  let left = map_expr c in
  match peek c with
  | Some Lexer.CARET ->
      ignore (next c);
      Ast.Seq (left, seq_expr c)
  | _ -> left

(* f || s, left associative *)
and map_expr c =
  let rec go acc =
    match peek c with
    | Some Lexer.PARPAR ->
        ignore (next c);
        go (Ast.Map (acc, cmp_expr c))
    | _ -> acc
  in
  go (cmp_expr c)

(* comparisons, non-associative *)
and cmp_expr c =
  let left = add_expr c in
  match peek c with
  | Some (Lexer.OP (("=" | "!=" | "<" | "<=" | ">" | ">=") as op)) ->
      ignore (next c);
      Ast.Binop (op, left, add_expr c)
  | _ -> left

and add_expr c =
  let rec go acc =
    match peek c with
    | Some (Lexer.OP (("+" | "-") as op)) ->
        ignore (next c);
        go (Ast.Binop (op, acc, mul_expr c))
    | _ -> acc
  in
  go (mul_expr c)

and mul_expr c =
  let rec go acc =
    match peek c with
    | Some (Lexer.OP (("*" | "/") as op)) ->
        ignore (next c);
        go (Ast.Binop (op, acc, app_expr c))
    | _ -> acc
  in
  go (app_expr c)

(* f:x, left associative and tight *)
and app_expr c =
  let rec go acc =
    match peek c with
    | Some Lexer.COLON ->
        ignore (next c);
        go (Ast.App (acc, atom c))
    | _ -> acc
  in
  go (atom c)

and atom c =
  match next c with
  | Lexer.IDENT x -> Ast.Var x
  | Lexer.INT n -> Ast.Int_lit n
  | Lexer.STRING s -> Ast.Str_lit s
  | Lexer.LPAREN ->
      let e = expr c in
      expect c Lexer.RPAREN "')'";
      e
  | Lexer.LBRACKET -> (
      match peek c with
      | Some Lexer.RBRACKET ->
          ignore (next c);
          Ast.Nil_lit
      | _ ->
          let rec elements acc =
            let e = expr c in
            match next c with
            | Lexer.COMMA -> elements (e :: acc)
            | Lexer.RBRACKET -> List.rev (e :: acc)
            | t -> fail "expected ',' or ']', got %a" Lexer.pp_token t
          in
          Ast.List (elements []))
  | Lexer.LBRACE ->
      let (eqs, res) = block_body c in
      expect c Lexer.RBRACE "'}'";
      Ast.Block (eqs, res)
  | t -> fail "expected expression, got %a" Lexer.pp_token t

(* equations and RESULT, comma-separated *)
and block_body c =
  let rec go eqs =
    match peek c with
    | Some (Lexer.KW "RESULT") ->
        ignore (next c);
        let res = expr c in
        (List.rev eqs, res)
    | _ ->
        let eq = equation c in
        (match peek c with
        | Some Lexer.COMMA -> ignore (next c)
        | _ -> ());
        go (eq :: eqs)
  in
  go []

and equation c =
  if starts_tuple_pattern c then begin
    ignore (next c);
    (* LBRACKET *)
    let rec names acc =
      let x = ident c in
      match next c with
      | Lexer.COMMA -> names (x :: acc)
      | Lexer.RBRACKET -> List.rev (x :: acc)
      | t -> fail "expected ',' or ']', got %a" Lexer.pp_token t
    in
    let xs = names [] in
    expect c (Lexer.OP "=") "'='";
    Ast.Def_val (Ast.Ptuple xs, expr c)
  end
  else
    let name = ident c in
    match peek c with
    | Some Lexer.COLON ->
        ignore (next c);
        let pat =
          match next c with
          | Lexer.IDENT x -> Ast.Pvar x
          | Lexer.LBRACKET ->
              let rec names acc =
                let x = ident c in
                match next c with
                | Lexer.COMMA -> names (x :: acc)
                | Lexer.RBRACKET -> List.rev (x :: acc)
                | t -> fail "expected ',' or ']', got %a" Lexer.pp_token t
              in
              Ast.Ptuple (names [])
          | t -> fail "expected parameter pattern, got %a" Lexer.pp_token t
        in
        expect c (Lexer.OP "=") "'='";
        Ast.Def_fun (name, pat, expr c)
    | Some (Lexer.OP "=") ->
        ignore (next c);
        Ast.Def_val (Ast.Pvar name, expr c)
    | Some t -> fail "expected ':' or '=' in equation, got %a" Lexer.pp_token t
    | None -> fail "unexpected end of equation"

let wrap f src =
  match Lexer.tokens src with
  | exception Lexer.Lex_error (msg, pos) ->
      Error (Printf.sprintf "lexical error at %d: %s" pos msg)
  | toks -> (
      let c = { toks } in
      match f c with
      | v ->
          if c.toks = [] then Ok v
          else
            Error
              (Format.asprintf "trailing input: %a" Lexer.pp_token
                 (List.hd c.toks))
      | exception Parse_error msg -> Error msg)

let parse_expr src = wrap expr src

let parse_program src =
  wrap
    (fun c ->
      let (eqs, res) = block_body c in
      { Ast.equations = eqs; result = res })
    src

let parse_program_exn src =
  match parse_program src with Ok p -> p | Error e -> failwith e
