test/test_relational.ml: Alcotest Algebra Array Database Fdb_relational List QCheck2 QCheck_alcotest Relation Schema Tuple Value
