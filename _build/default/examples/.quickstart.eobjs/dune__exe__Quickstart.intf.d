examples/quickstart.mli:
