(** Speculative batch execution with incremental repair.

    Transaction Repair (PAPERS.md) applied to the paper's pure-function
    transactions: a batch of [n] queries is executed {e speculatively in
    parallel}, every transaction against the batch-entry version, while a
    {!Fdb_repair.Footprint} records what each one read and wrote.  A
    fixpoint loop then repairs the damage instead of re-ordering or
    aborting:

    + find the transactions whose read footprint intersects a
      non-commuting earlier transaction's writes (the {e damaged} set);
    + the prefix before the first damaged transaction is final — commit
      it by replaying effects onto the running version (adopting the
      speculative relation slot outright when the slot it was built from
      is still current);
    + re-execute only the damaged transactions against the repaired
      prefix version, and iterate.

    The first damaged index strictly increases every round (a repaired
    transaction's base includes all final earlier writes), so the loop
    takes at most [n] rounds and converges to exactly the serial result.
    Results are deterministic: they depend only on the batch-entry version
    and the query list, never on domain scheduling.

    When a trace sink is installed ({!Fdb_obs.Trace.enabled}), speculative
    executions run inline on the coordinator instead of on the pool — the
    sink is not domain-safe — so traced runs double as a determinism
    check against pooled runs. *)

open Fdb_relational

type stats = {
  txns : int;
  rounds : int;  (** repair rounds (0 when the whole batch speculated clean) *)
  spec_hits : int;  (** transactions whose round-0 speculation was committed *)
  reexecs : int;  (** damaged transaction re-executions *)
  bypass_disjoint : int;  (** pair checks passed by key-span disjointness *)
  bypass_commute : int;  (** pair checks passed by semantic commutativity *)
  adopted_slots : int;  (** relation slots adopted O(1) instead of replayed *)
}

val zero_stats : stats
val add_stats : stats -> stats -> stats
val pp_stats : Format.formatter -> stats -> unit

type report = {
  responses : Fdb_txn.Txn.response list;  (** batch order *)
  history : Fdb_txn.History.t;
      (** batch-entry version plus one version per transaction — ordinary
          versions, indistinguishable from sequentially committed ones *)
  final : Database.t;
  stats : stats;
}

val run_batch :
  ?pool:Fdb_par.Pool.t ->
  ?domains:int ->
  ?index:Fdb_index.Index.Session.t ->
  ?batch_id:int ->
  Database.t ->
  Fdb_query.Ast.query list ->
  report
(** Execute one batch.  Equivalent to translating and applying the queries
    sequentially (the {!Fdb_txn.Txn} reference semantics).  With [?pool]
    absent a pool of [?domains] is created and torn down around the batch
    via {!Fdb_par.Pool.with_pool}.

    With [?index], speculative executions answer reads through the
    session's indexes (maintenance disabled — the store tracks the
    committed prefix, which is exactly every round's base version), and
    each commit advances the indexes from the transaction's recorded
    effects at the serial commit point, so indexes and base relations move
    in lockstep in batch order. *)
