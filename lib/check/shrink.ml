open Fdb_relational
module Ast = Fdb_query.Ast

let query_count streams =
  List.fold_left (fun acc s -> acc + List.length s) 0 streams

(* -- the well-founded measure --------------------------------------------- *)

let value_weight = function
  | Value.Int n -> abs n
  | Value.Str s -> String.length s
  | Value.Real r -> if r = 0.0 then 0 else 1
  | Value.Bool _ -> 0

let rec pred_size = function
  | Ast.True -> 0
  | Ast.Cmp (_, _, v) -> 2 + value_weight v
  | Ast.And (a, b) | Ast.Or (a, b) -> 1 + pred_size a + pred_size b
  | Ast.Not p -> 1 + pred_size p

let query_size = function
  | Ast.Count { where; _ } -> 1 + pred_size where
  | Ast.Find { key; _ } | Ast.Delete { key; _ } -> 2 + value_weight key
  | Ast.Insert { values; _ } ->
      2 + List.fold_left (fun acc v -> acc + value_weight v) 0 values
  | Ast.Select { cols; where; _ } ->
      3
      + (match cols with None -> 0 | Some cs -> List.length cs)
      + pred_size where
  | Ast.Aggregate { where; _ } -> 4 + pred_size where
  | Ast.Update { value; where; _ } -> 4 + value_weight value + pred_size where
  | Ast.Join _ -> 5

(* Dropping an empty client still has to shrink the measure, hence the
   per-client constant. *)
let measure streams =
  List.fold_left
    (fun acc s ->
      acc + 50 + List.fold_left (fun a q -> a + 1000 + query_size q) 0 s)
    0 streams

(* -- candidate generation -------------------------------------------------- *)

let drop_nth n l = List.filteri (fun i _ -> i <> n) l

let drop_one_client streams = List.mapi (fun i _ -> drop_nth i streams) streams

let drop_one_query streams =
  List.concat
    (List.mapi
       (fun ci stream ->
         List.mapi
           (fun qi _ ->
             List.mapi
               (fun ci' s -> if ci' = ci then drop_nth qi s else s)
               streams)
           stream)
       streams)

let shrink_value = function
  | Value.Int n when n <> 0 ->
      if n / 2 <> 0 && n / 2 <> n then [ Value.Int 0; Value.Int (n / 2) ]
      else [ Value.Int 0 ]
  | Value.Str s when s <> "" -> [ Value.Str "" ]
  | Value.Real r when r <> 0.0 -> [ Value.Real 0.0 ]
  | _ -> []

let replace_nth n x l = List.mapi (fun i y -> if i = n then x else y) l

(* Strictly simpler variants of one query (smaller [query_size]). *)
let simpler_query q =
  match q with
  | Ast.Count { rel; where } ->
      if where <> Ast.True then [ Ast.Count { rel; where = Ast.True } ] else []
  | Ast.Find { rel; key } ->
      List.map (fun k -> Ast.Find { rel; key = k }) (shrink_value key)
  | Ast.Delete { rel; key } ->
      List.map (fun k -> Ast.Delete { rel; key = k }) (shrink_value key)
  | Ast.Insert { rel; values } ->
      List.concat
        (List.mapi
           (fun i v ->
             List.map
               (fun v' -> Ast.Insert { rel; values = replace_nth i v' values })
               (shrink_value v))
           values)
  | Ast.Select { rel; cols; where } ->
      Ast.Count { rel; where = Ast.True }
      :: (if where <> Ast.True then [ Ast.Select { rel; cols; where = Ast.True } ]
          else [])
      @ (match cols with
        | Some _ -> [ Ast.Select { rel; cols = None; where } ]
        | None -> [])
  | Ast.Aggregate { agg; rel; col; where } ->
      Ast.Count { rel; where = Ast.True }
      :: (if where <> Ast.True then
            [ Ast.Aggregate { agg; rel; col; where = Ast.True } ]
          else [])
  | Ast.Update { rel; col; value; where } ->
      (if where <> Ast.True then [ Ast.Update { rel; col; value; where = Ast.True } ]
       else [])
      @ List.map
          (fun v -> Ast.Update { rel; col; value = v; where })
          (shrink_value value)
  | Ast.Join { left; _ } -> [ Ast.Count { rel = left; where = Ast.True } ]

let replace_one_query streams =
  List.concat
    (List.mapi
       (fun ci stream ->
         List.concat
           (List.mapi
              (fun qi q ->
                List.map
                  (fun q' ->
                    List.mapi
                      (fun ci' s ->
                        if ci' = ci then replace_nth qi q' s else s)
                      streams)
                  (simpler_query q))
              stream))
       streams)

let candidates streams =
  drop_one_client streams @ drop_one_query streams @ replace_one_query streams

(* -- greedy minimization ---------------------------------------------------- *)

let minimize ~still_failing streams =
  let current = ref streams in
  let current_measure = ref (measure streams) in
  let improved = ref true in
  while !improved do
    improved := false;
    let rec try_candidates = function
      | [] -> ()
      | cand :: rest ->
          let m = measure cand in
          if m < !current_measure && still_failing cand then begin
            current := cand;
            current_measure := m;
            improved := true
          end
          else try_candidates rest
    in
    try_candidates (candidates !current)
  done;
  !current
