type t =
  | Int of int
  | Str of string
  | Bool of bool
  | Real of float

let rank = function Int _ -> 0 | Str _ -> 1 | Bool _ -> 2 | Real _ -> 3

let compare a b =
  match (a, b) with
  | (Int x, Int y) -> Int.compare x y
  | (Str x, Str y) -> String.compare x y
  | (Bool x, Bool y) -> Bool.compare x y
  | (Real x, Real y) -> Float.compare x y
  | _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let pp ppf = function
  | Int x -> Format.fprintf ppf "%d" x
  | Str x -> Format.fprintf ppf "%S" x
  | Bool x -> Format.fprintf ppf "%b" x
  | Real x -> Format.fprintf ppf "%g" x

let to_string v = Format.asprintf "%a" pp v

let type_name = function
  | Int _ -> "int"
  | Str _ -> "string"
  | Bool _ -> "bool"
  | Real _ -> "real"
