type net = {
  fab : int;
  src : int;
  dst : int;
  sent : int;
  delivered : int;
  faulted : int;
  in_flight : int;
}

type kind =
  | Dispatch_start of { txn : int; label : string }
  | Dispatch_end of { txn : int; label : string }
  | Cell_write of { cell : int }
  | Cell_read of { cell : int; label : string }
  | Plan_chosen of { rel : string; path : string }
  | Merge_take of { tag : int; pos : int }
  | Dg_send of net
  | Dg_deliver of net
  | Dg_drop of net
  | Dg_retransmit of { src : int; dst : int; seq : int }
  | Replica_commit of { index : int; client : int; seq : int; backed : bool }
  | Replica_ack of { upto : int }
  | Replica_reply of { client : int; seq : int; status : string }
  | Replica_checkpoint of { upto : int; bytes : int }
  | Replica_install of { upto : int }
  | Replica_promote of { suffix : int }
  | Replica_replay of { index : int }
  | Replica_crash of { site : int }
  | Repair_batch of { batch : int; size : int }
  | Repair_spec of { batch : int; txn : int }
  | Repair_redo of { batch : int; txn : int; round : int }
  | Repair_round of { batch : int; round : int; damaged : int }
  | Repair_commit of { batch : int; txn : int; round : int }
  | Wal_append of { index : int; bytes : int }
  | Wal_sync of { upto : int }
  | Wal_checkpoint of { upto : int; bytes : int; segment : int }
  | Wal_segment_delete of { segment : int }
  | Wal_replay of { index : int }
  | Wal_recovered of { upto : int; base : int; reason : string }
  | Index_maintain of {
      rel : string;
      index : string;
      kind : string;
      base : int;
      entries : int;
    }
  | Index_probe of { rel : string; index : string; kind : string }
  | Shard_commit of { shard : int; txn : int; pos : int }
  | Shard_bypass of { txn : int; shards : int }
  | Shard_spine of { txn : int; gsn : int }
  | Shard_conflict of { txn : int; against : int }

type t = { ts : int; site : int; kind : kind }

let name = function
  | Dispatch_start _ -> "dispatch_start"
  | Dispatch_end _ -> "dispatch_end"
  | Cell_write _ -> "cell_write"
  | Cell_read _ -> "cell_read"
  | Plan_chosen _ -> "plan_chosen"
  | Merge_take _ -> "merge_take"
  | Dg_send _ -> "dg_send"
  | Dg_deliver _ -> "dg_deliver"
  | Dg_drop _ -> "dg_drop"
  | Dg_retransmit _ -> "dg_retransmit"
  | Replica_commit _ -> "replica_commit"
  | Replica_ack _ -> "replica_ack"
  | Replica_reply _ -> "replica_reply"
  | Replica_checkpoint _ -> "replica_checkpoint"
  | Replica_install _ -> "replica_install"
  | Replica_promote _ -> "replica_promote"
  | Replica_replay _ -> "replica_replay"
  | Replica_crash _ -> "replica_crash"
  | Repair_batch _ -> "repair_batch"
  | Repair_spec _ -> "repair_spec"
  | Repair_redo _ -> "repair_redo"
  | Repair_round _ -> "repair_round"
  | Repair_commit _ -> "repair_commit"
  | Wal_append _ -> "wal_append"
  | Wal_sync _ -> "wal_sync"
  | Wal_checkpoint _ -> "wal_checkpoint"
  | Wal_segment_delete _ -> "wal_segment_delete"
  | Wal_replay _ -> "wal_replay"
  | Wal_recovered _ -> "wal_recovered"
  | Index_maintain _ -> "index_maintain"
  | Index_probe _ -> "index_probe"
  | Shard_commit _ -> "shard_commit"
  | Shard_bypass _ -> "shard_bypass"
  | Shard_spine _ -> "shard_spine"
  | Shard_conflict _ -> "shard_conflict"

let pp_kind ppf = function
  | Dispatch_start { txn; label } -> Fmt.pf ppf "dispatch_start txn=%d %s" txn label
  | Dispatch_end { txn; label } -> Fmt.pf ppf "dispatch_end txn=%d %s" txn label
  | Cell_write { cell } -> Fmt.pf ppf "cell_write #%d" cell
  | Cell_read { cell; label } -> Fmt.pf ppf "cell_read #%d (%s)" cell label
  | Plan_chosen { rel; path } -> Fmt.pf ppf "plan_chosen %s: %s" rel path
  | Merge_take { tag; pos } -> Fmt.pf ppf "merge_take tag=%d pos=%d" tag pos
  | Dg_send n ->
      Fmt.pf ppf "dg_send fab=%d %d->%d (s=%d d=%d f=%d if=%d)" n.fab n.src
        n.dst n.sent n.delivered n.faulted n.in_flight
  | Dg_deliver n ->
      Fmt.pf ppf "dg_deliver fab=%d %d->%d (s=%d d=%d f=%d if=%d)" n.fab n.src
        n.dst n.sent n.delivered n.faulted n.in_flight
  | Dg_drop n ->
      Fmt.pf ppf "dg_drop fab=%d %d->%d (s=%d d=%d f=%d if=%d)" n.fab n.src
        n.dst n.sent n.delivered n.faulted n.in_flight
  | Dg_retransmit { src; dst; seq } ->
      Fmt.pf ppf "dg_retransmit %d->%d seq=%d" src dst seq
  | Replica_commit { index; client; seq; backed } ->
      Fmt.pf ppf "replica_commit idx=%d c%d#%d backed=%b" index client seq
        backed
  | Replica_ack { upto } -> Fmt.pf ppf "replica_ack upto=%d" upto
  | Replica_reply { client; seq; status } ->
      Fmt.pf ppf "replica_reply c%d#%d %s" client seq status
  | Replica_checkpoint { upto; bytes } ->
      Fmt.pf ppf "replica_checkpoint upto=%d bytes=%d" upto bytes
  | Replica_install { upto } -> Fmt.pf ppf "replica_install upto=%d" upto
  | Replica_promote { suffix } -> Fmt.pf ppf "replica_promote suffix=%d" suffix
  | Replica_replay { index } -> Fmt.pf ppf "replica_replay idx=%d" index
  | Replica_crash { site } -> Fmt.pf ppf "replica_crash site=%d" site
  | Repair_batch { batch; size } ->
      Fmt.pf ppf "repair_batch b%d size=%d" batch size
  | Repair_spec { batch; txn } -> Fmt.pf ppf "repair_spec b%d txn=%d" batch txn
  | Repair_redo { batch; txn; round } ->
      Fmt.pf ppf "repair_redo b%d txn=%d round=%d" batch txn round
  | Repair_round { batch; round; damaged } ->
      Fmt.pf ppf "repair_round b%d round=%d damaged=%d" batch round damaged
  | Repair_commit { batch; txn; round } ->
      Fmt.pf ppf "repair_commit b%d txn=%d round=%d" batch txn round
  | Wal_append { index; bytes } ->
      Fmt.pf ppf "wal_append v%d (%d bytes)" index bytes
  | Wal_sync { upto } -> Fmt.pf ppf "wal_sync upto=%d" upto
  | Wal_checkpoint { upto; bytes; segment } ->
      Fmt.pf ppf "wal_checkpoint upto=%d bytes=%d seg=%d" upto bytes segment
  | Wal_segment_delete { segment } ->
      Fmt.pf ppf "wal_segment_delete seg=%d" segment
  | Wal_replay { index } -> Fmt.pf ppf "wal_replay v%d" index
  | Wal_recovered { upto; base; reason } ->
      Fmt.pf ppf "wal_recovered upto=%d base=%d (%s)" upto base reason
  | Index_maintain { rel; index; kind; base; entries } ->
      Fmt.pf ppf "index_maintain %s.%s (%s) base=%d entries=%d" rel index kind
        base entries
  | Index_probe { rel; index; kind } ->
      Fmt.pf ppf "index_probe %s.%s (%s)" rel index kind
  | Shard_commit { shard; txn; pos } ->
      Fmt.pf ppf "shard_commit s%d txn=%d pos=%d" shard txn pos
  | Shard_bypass { txn; shards } ->
      Fmt.pf ppf "shard_bypass txn=%d shards=%d" txn shards
  | Shard_spine { txn; gsn } -> Fmt.pf ppf "shard_spine txn=%d gsn=%d" txn gsn
  | Shard_conflict { txn; against } ->
      Fmt.pf ppf "shard_conflict txn=%d against=%d" txn against

let pp ppf { ts; site; kind } = Fmt.pf ppf "[t=%d s=%d] %a" ts site pp_kind kind
let to_string ev = Fmt.str "%a" pp ev
