(** Access-path planning: decompose a predicate's conjuncts to choose how a
    relation is read.

    The key order that makes path-copying writes cheap (paper §2.2) equally
    supports indexed reads: a conjunct comparing the key column against a
    literal can steer the executor to a point lookup or a pruned range scan
    instead of a full materializing scan.  [analyze] extracts those atoms
    and leaves everything else as a residual predicate, so that
    (access path) ∧ (residual) is equivalent to the original [where]. *)

open Fdb_relational

type bound = { value : Value.t; inclusive : bool }

type path =
  | Point_lookup of Value.t  (** key-equality conjunct: single probe *)
  | Range_scan of { lo : bound option; hi : bound option }
      (** key-bound conjuncts, tightest of each side; [None] = unbounded *)
  | Full_scan  (** no key atom: every tuple is visited *)

type t = { path : path; residual : Ast.pred }

val analyze : Schema.t -> Ast.pred -> t
(** Total: never fails, falling back to [Full_scan] with the whole predicate
    as residual.  Only top-level conjuncts ([And] chains) are examined —
    atoms under [Or]/[Not] stay residual; a second key equality stays
    residual (it either agrees or falsifies); [Ne] never helps an ordered
    probe.  Unknown columns are left in the residual for {!Pred.compile} to
    report. *)

val conjuncts : Ast.pred -> Ast.pred list
(** Flatten a top-level [And] spine, dropping [True]. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** E.g. ["range scan [key >= 3, key < 9]; residual v = \"x\""]. *)

val explain :
  schema_of:(string -> Schema.t option) -> Ast.query -> string
(** One-line access-path explanation for any query, using [schema_of] to
    resolve relation names (unknown relations are reported, not errors). *)

(** {1 Indexed planning}

    Descriptions of the secondary / covering / derived indexes available on
    a relation (the catalog lives in [lib/index]; the planner only sees
    this declarative form), and an extended analysis that can route a read
    through one of them.  [analyze] and its golden plan lines are
    untouched: indexed planning is a separate layer consulted only when a
    catalog is in force. *)

type index_kind =
  | Ix_secondary  (** entries carry only the primary key: probe, then fetch *)
  | Ix_covering of string list
      (** entries carry the named columns, so reads needing no more than
          these are answered from the index alone *)
  | Ix_derived of string
      (** per-group count/sum/min/max over the named target column,
          grouped by the indexed column *)

type index_desc = {
  ix_name : string;
  ix_rel : string;
  ix_col : string;  (** indexed column; the group column for [Ix_derived] *)
  ix_kind : index_kind;
}

val index_kind_name : index_kind -> string
(** ["secondary"], ["covering"] or ["derived"]. *)

type ipath =
  | Primary of path  (** no index beats the base access path *)
  | Index_scan of {
      ix : index_desc;
      ilo : bound option;
      ihi : bound option;
      only : bool;  (** answered from the index payload alone *)
    }
  | Index_group of { ix : index_desc; group : Value.t }
      (** O(log n): the maintained group statistics are the answer *)

type iplan = { ipath : ipath; iresidual : Ast.pred }

type want = Want_all | Want_cols of string list | Want_base
(** Which columns the executor still needs per matching tuple: every
    column ([Want_all]), a projection list ([Want_cols] — counts pass
    [[]]), or full base tuples unconditionally ([Want_base], used by
    aggregates whose compiled step functions read base positions). *)

val analyze_indexed :
  Schema.t -> indexes:index_desc list -> wanted:want -> Ast.pred -> iplan
(** Like {!analyze}, with the catalog in play.  Preference order: primary
    point lookup, index equality probe (covering before secondary),
    primary range scan, index range scan, full scan.  (access path) ∧
    (residual) remains equivalent to the original predicate; absorbed
    atoms mention only the chosen index's column. *)

val analyze_group :
  Schema.t ->
  indexes:index_desc list ->
  target:[ `Count | `Agg of Ast.agg * string ] ->
  Ast.pred ->
  iplan option
(** [Some] only when the predicate is exactly one equality on a derived
    index's group column and the index maintains the requested statistic
    ([Sum] additionally requires a numeric target, mirroring
    {!Pred.compile_aggregate}). *)

val pp_iplan : Format.formatter -> iplan -> unit

val iplan_to_string : iplan -> string
(** E.g. ["index-only probe cov_val [val = \"x\"]; residual a > 2"]. *)

val explain_indexed :
  schema_of:(string -> Schema.t option) ->
  indexes_of:(string -> index_desc list) ->
  Ast.query ->
  string
(** {!explain} with a catalog: select/count/aggregate lines show the
    chosen indexed path; other queries print exactly as {!explain}. *)
