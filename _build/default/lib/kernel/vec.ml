type t = { mutable data : int array; mutable len : int }

let create () = { data = Array.make 64 0; len = 0 }

let push v x =
  if v.len = Array.length v.data then begin
    let bigger = Array.make (2 * v.len) 0 in
    Array.blit v.data 0 bigger 0 v.len;
    v.data <- bigger
  end;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let length v = v.len

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get";
  v.data.(i)

let to_array v = Array.sub v.data 0 v.len

let fold f init v =
  let acc = ref init in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let max_value v = fold (fun a x -> if x > a then x else a) 0 v

let sum v = fold ( + ) 0 v
