(** Interconnection topologies for the Rediflow machine model.

    The paper evaluates on an 8-node binary hypercube (Table II) and a
    27-node 3x3x3 "Euclidean cube" (Table III); the physical-network
    discussion (§3.1, Figure 3-1) uses an Ethernet-like shared bus.  The
    additional shapes are for the topology ablation. *)

type kind =
  | Point_to_point  (** messages travel hop by hop over links *)
  | Shared_bus  (** one shared medium; every pair is one hop apart *)

type t

val name : t -> string
val size : t -> int
val kind : t -> kind

val hypercube : int -> t
(** [hypercube d]: 2^d nodes; nodes adjacent iff their ids differ in one
    bit.  [hypercube 3] is the paper's 8-node machine. *)

val mesh3d : int -> int -> int -> t
(** [mesh3d nx ny nz]: Euclidean grid, 6-neighbour adjacency.
    [mesh3d 3 3 3] is the paper's 27-node cube. *)

val ring : int -> t

val line : int -> t
(** A path: node i is adjacent to i-1 and i+1. *)

val torus2d : int -> int -> t

val star : int -> t
(** Node 0 is the hub. *)

val complete : int -> t

val bus : int -> t
(** Ethernet-like shared medium (§3.1): the medium is one big merge. *)

val single : unit -> t
(** One node, no links — the sequential machine. *)

val random : seed:int -> n:int -> extra_edges:int -> t
(** A random connected graph: a random spanning tree plus [extra_edges]
    random extra links.  Used for routing robustness tests. *)

val neighbors : t -> int -> int list
(** Sorted neighbour ids. *)

val distance : t -> int -> int -> int
(** Hop count along a shortest path. *)

val next_hop : t -> src:int -> dst:int -> int
(** First node after [src] on a shortest path to [dst].
    @raise Invalid_argument if [src = dst] or [dst] unreachable. *)

val diameter : t -> int

val links : t -> (int * int) list
(** All directed links (u, v), lexicographically sorted.  Empty for a
    shared bus. *)

val pp : Format.formatter -> t -> unit
