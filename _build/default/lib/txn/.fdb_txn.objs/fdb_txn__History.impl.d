lib/txn/history.ml: Database Fdb_relational List Txn
