open Fdb_kernel

exception Runtime_error of string

let error fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

type value =
  | VInt of int
  | VStr of string
  | VBool of bool
  | VNil
  | VCons of fvalue * fvalue
  | VClosure of env * Ast.pattern * Ast.expr
  | VPrim of string

and fvalue = value Engine.ivar

and env = (string * fvalue) list

let lookup env x =
  match List.assoc_opt x env with
  | Some v -> v
  | None -> error "unbound identifier %s" x

(* One forwarding task: when [src] fills, copy into [dst]. *)
let forward _eng ?(label = "forward") src dst =
  Engine.await ~label src (fun v -> Engine.put dst v)

type mode = Lenient | Demand

(* A cell filled by [f ()]'s result, computed only when first demanded. *)
let delay eng ?label f =
  let knot = ref None in
  let iv =
    Engine.suspend eng ?label (fun () ->
        match !knot with
        | Some iv -> forward eng ?label (f ()) iv
        | None -> assert false)
  in
  knot := Some iv;
  iv

let type_name = function
  | VInt _ -> "int"
  | VStr _ -> "string"
  | VBool _ -> "bool"
  | VNil -> "[]"
  | VCons _ -> "stream"
  | VClosure _ -> "function"
  | VPrim _ -> "primitive"

(* Shallow equality, enough for the paper's "transactions = []" tests.
   Comparing two nonempty streams is a runtime error rather than a deep
   (possibly divergent) traversal. *)
let equal_values a b =
  match (a, b) with
  | (VInt x, VInt y) -> x = y
  | (VStr x, VStr y) -> String.equal x y
  | (VBool x, VBool y) -> x = y
  | (VNil, VNil) -> true
  | (VNil, VCons _) | (VCons _, VNil) -> false
  | (VCons _, VCons _) -> error "cannot compare two streams with ="
  | _ -> error "cannot compare %s with %s" (type_name a) (type_name b)

let arith op a b =
  match (op, a, b) with
  | ("+", VInt x, VInt y) -> VInt (x + y)
  | ("-", VInt x, VInt y) -> VInt (x - y)
  | ("*", VInt x, VInt y) -> VInt (x * y)
  | ("/", VInt x, VInt y) ->
      if y = 0 then error "division by zero" else VInt (x / y)
  | ("+", VStr x, VStr y) -> VStr (x ^ y)
  | ("=", _, _) -> VBool (equal_values a b)
  | ("!=", _, _) -> VBool (not (equal_values a b))
  | ("<", VInt x, VInt y) -> VBool (x < y)
  | ("<=", VInt x, VInt y) -> VBool (x <= y)
  | (">", VInt x, VInt y) -> VBool (x > y)
  | (">=", VInt x, VInt y) -> VBool (x >= y)
  | ("<", VStr x, VStr y) -> VBool (x < y)
  | ("<=", VStr x, VStr y) -> VBool (x <= y)
  | (">", VStr x, VStr y) -> VBool (x > y)
  | (">=", VStr x, VStr y) -> VBool (x >= y)
  | _ -> error "bad operands for %s: %s, %s" op (type_name a) (type_name b)

let truthy = function
  | VBool b -> b
  | VInt n -> n <> 0
  | v -> error "%s is not a condition" (type_name v)

(* Bind a pattern to an argument future.  Tuple patterns walk the cons
   cells as they materialize — selection from an incomplete object. *)
let bind eng pat (arg : fvalue) env =
  match pat with
  | Ast.Pvar x -> (x, arg) :: env
  | Ast.Ptuple xs ->
      let cells = List.map (fun x -> (x, Engine.ivar eng)) xs in
      let rec walk cursor = function
        | [] -> ()
        | (x, cell) :: rest ->
            Engine.await ~label:("select:" ^ x) cursor (function
              | VCons (h, t) ->
                  forward eng ~label:("bind:" ^ x) h cell;
                  walk t rest
              | v -> error "cannot destructure %s" (type_name v))
      in
      walk arg cells;
      List.rev_append cells env

let rec eval_m mode eng env e : fvalue =
  (* In Demand mode, a subexpression in a constructor/argument/definition
     position becomes a suspended cell; everything else is forced as
     needed.  [Lenient] evaluates every subexpression immediately (the
     paper's data-driven model). *)
  let sub env e =
    match mode with
    | Lenient -> eval_m mode eng env e
    | Demand -> delay eng ~label:"thunk" (fun () -> eval_m mode eng env e)
  in
  match e with
  | Ast.Var x -> lookup env x
  | Ast.Int_lit n -> Engine.full eng (VInt n)
  | Ast.Str_lit s -> Engine.full eng (VStr s)
  | Ast.Nil_lit -> Engine.full eng VNil
  | Ast.List es ->
      (* lenient tuple: the spine exists immediately *)
      let rec build = function
        | [] -> Engine.full eng VNil
        | e :: rest -> Engine.full eng (VCons (sub env e, build rest))
      in
      build es
  | Ast.Seq (a, b) -> Engine.full eng (VCons (sub env a, sub env b))
  | Ast.App (Ast.Var "result-on", Ast.List [ body; site_e ]) ->
      (* Site pragma (paper §3.2): RESULT-ON:[expr, site] yields the value
         of expr but computes its outermost function on the given site.
         A syntactic form: the body's evaluation is launched from a task
         placed there, so the work it spawns starts on that site. *)
      let r = Engine.ivar eng in
      Engine.await ~label:"result-on" (eval_m mode eng env site_e) (fun v ->
          match v with
          | VInt site ->
              Engine.spawn eng ~label:"result-on" ~site (fun () ->
                  forward eng ~label:"result-on" (eval_m mode eng env body) r)
          | v -> error "result-on: site must be an int, got %s" (type_name v));
      r
  | Ast.App (f, arg) ->
      let r = Engine.ivar eng in
      let fv = eval_m mode eng env f and av = sub env arg in
      apply mode eng fv av r;
      r
  | Ast.Map (f, s) ->
      let fv = eval_m mode eng env f in
      let rec step sv =
        (* In Demand mode each output cell is produced only when demanded,
           so infinite inputs are fine; in Lenient mode the whole stream
           maps eagerly ("anticipatory" production). *)
        let produce out sv =
          Engine.await ~label:"apply-to-all" sv (function
            | VNil -> Engine.put out VNil
            | VCons (h, t) ->
                let mapped = Engine.ivar eng in
                apply mode eng fv h mapped;
                Engine.put out (VCons (mapped, step t))
            | v -> error "|| applied to %s" (type_name v))
        in
        match mode with
        | Lenient ->
            let out = Engine.ivar eng in
            produce out sv;
            out
        | Demand ->
            let knot = ref None in
            let out =
              Engine.suspend eng ~label:"apply-to-all" (fun () ->
                  match !knot with
                  | Some out -> produce out sv
                  | None -> assert false)
            in
            knot := Some out;
            out
      in
      step (eval_m mode eng env s)
  | Ast.If (c, t, e) ->
      let r = Engine.ivar eng in
      Engine.await ~label:"if" (eval_m mode eng env c) (fun v ->
          if truthy v then forward eng (eval_m mode eng env t) r
          else forward eng (eval_m mode eng env e) r);
      r
  | Ast.Binop (op, a, b) ->
      let r = Engine.ivar eng in
      let av = eval_m mode eng env a and bv = eval_m mode eng env b in
      Engine.await ~label:op av (fun va ->
          Engine.await ~label:op bv (fun vb -> Engine.put r (arith op va vb)));
      r
  | Ast.Block (eqs, res) -> eval_block mode eng env eqs res

and apply mode eng fv av r =
  Engine.await ~label:"apply" fv (function
    | VClosure (cenv, pat, body) ->
        let env' = bind eng pat av cenv in
        forward eng ~label:"return" (eval_m mode eng env' body) r
    | VPrim name -> prim eng name av r
    | v -> error "%s is not applicable" (type_name v))

and prim eng name av r =
  Engine.await ~label:name av (fun v ->
      match (name, v) with
      | ("first", VCons (h, _)) -> forward eng ~label:"first" h r
      | ("rest", VCons (_, t)) -> forward eng ~label:"rest" t r
      | (("first" | "rest"), VNil) -> error "%s of []" name
      | ("null?", VNil) -> Engine.put r (VBool true)
      | ("null?", VCons _) -> Engine.put r (VBool false)
      | ("not", VBool b) -> Engine.put r (VBool (not b))
      | ("my-site", _) ->
          (* Site pragma (paper §3.2): the site this task runs on. *)
          Engine.put r (VInt (Engine.current_site eng))
      | (_, v) -> error "%s applied to %s" name (type_name v))

and eval_block mode eng env eqs res =
  eval_m mode eng (bind_equations mode eng env eqs) res

(* Letrec: every left-hand side gets its cell first, so recursive
   equations (old = initial ^ new) and recursive functions work.  In
   Demand mode value equations are suspended until first use. *)
and bind_equations mode eng env eqs =
  let env_ref = ref env in
  let lazy_cell label f =
    match mode with
    | Lenient -> None
    | Demand -> Some (delay eng ~label f)
  in
  let cells =
    List.concat_map
      (fun eq ->
        match eq with
        | Ast.Def_fun (f, _, _) -> [ (f, Engine.ivar eng) ]
        | Ast.Def_val (Ast.Pvar x, rhs) -> (
            match
              lazy_cell ("def:" ^ x) (fun () -> eval_m mode eng !env_ref rhs)
            with
            | Some cell -> [ (x, cell) ]
            | None -> [ (x, Engine.ivar eng) ])
        | Ast.Def_val (Ast.Ptuple xs, rhs) -> (
            match mode with
            | Lenient -> List.map (fun x -> (x, Engine.ivar eng)) xs
            | Demand ->
                (* one shared suspended RHS; each name selects its
                   component on demand *)
                let rhsv =
                  delay eng ~label:"def-tuple" (fun () ->
                      eval_m mode eng !env_ref rhs)
                in
                List.mapi
                  (fun i x ->
                    ( x,
                      delay eng ~label:("def:" ^ x) (fun () ->
                          let out = Engine.ivar eng in
                          let rec walk j cursor =
                            Engine.await ~label:("def:" ^ x) cursor (function
                              | VCons (h, t) ->
                                  if j = i then forward eng h out
                                  else walk (j + 1) t
                              | v ->
                                  error "cannot destructure %s" (type_name v))
                          in
                          walk 0 rhsv;
                          out) ))
                  xs))
      eqs
  in
  let env' = List.rev_append cells env in
  env_ref := env';
  let cell x = List.assoc x cells in
  List.iter
    (fun eq ->
      match (mode, eq) with
      | (_, Ast.Def_fun (f, pat, body)) ->
          Engine.put (cell f) (VClosure (env', pat, body))
      | (Demand, Ast.Def_val _) -> ()
      | (Lenient, Ast.Def_val (Ast.Pvar x, rhs)) ->
          forward eng ~label:("def:" ^ x) (eval_m Lenient eng env' rhs)
            (cell x)
      | (Lenient, Ast.Def_val (Ast.Ptuple xs, rhs)) ->
          let rhsv = eval_m Lenient eng env' rhs in
          let rec walk cursor = function
            | [] -> ()
            | x :: rest ->
                Engine.await ~label:("def:" ^ x) cursor (function
                  | VCons (h, t) ->
                      forward eng ~label:("def:" ^ x) h (cell x);
                      walk t rest
                  | v -> error "cannot destructure %s" (type_name v))
          in
          walk rhsv xs)
    eqs;
  env'

let eval eng env e = eval_m Lenient eng env e

let prelude_src =
  {| ;; the mini-FEL standard prelude: list functions, written in FEL
     length:s = if null?:s then 0 else 1 + length:(rest:s),
     append:[a, b] = if null?:a then b else first:a ^ append:[rest:a, b],
     take:[n, s] = if n = 0 then [] else first:s ^ take:[n - 1, rest:s],
     drop:[n, s] = if n = 0 then s else drop:[n - 1, rest:s],
     reverse:s = {
       rev:[s, acc] = if null?:s then acc else rev:[rest:s, first:s ^ acc],
       RESULT rev:[s, []]
     },
     member:[x, s] =
       if null?:s then 0 else if first:s = x then 1 else member:[x, rest:s],
     sum:s = if null?:s then 0 else first:s + sum:(rest:s),
     nth:[n, s] = if n = 0 then first:s else nth:[n - 1, rest:s],
     filter:[p, s] =
       if null?:s then []
       else if p:(first:s) then first:s ^ filter:[p, rest:s]
       else filter:[p, rest:s],
     foldr:[f, z, s] =
       if null?:s then z else f:[first:s, foldr:[f, z, rest:s]],
     iota:n = {
       go:[i, m] = if i = m then [] else i ^ go:[i + 1, m],
       RESULT go:[0, n]
     }
  |}

let base_env eng =
  List.map
    (fun name -> (name, Engine.full eng (VPrim name)))
    [ "first"; "rest"; "null?"; "not"; "my-site" ]

let render fv =
  let buf = Buffer.create 64 in
  let rec go fv =
    match Engine.peek fv with
    | None -> Buffer.add_string buf "_|_"
    | Some v -> (
        match v with
        | VInt n -> Buffer.add_string buf (string_of_int n)
        | VStr s -> Buffer.add_string buf (Printf.sprintf "%S" s)
        | VBool b -> Buffer.add_string buf (string_of_bool b)
        | VNil -> Buffer.add_string buf "[]"
        | VClosure _ -> Buffer.add_string buf "<function>"
        | VPrim p -> Buffer.add_string buf ("<prim:" ^ p ^ ">")
        | VCons _ ->
            Buffer.add_char buf '[';
            let rec cells fv first =
              match Engine.peek fv with
              | None -> if not first then Buffer.add_string buf " | _|_"
                        else Buffer.add_string buf "_|_"
              | Some VNil -> ()
              | Some (VCons (h, t)) ->
                  if not first then Buffer.add_string buf ", ";
                  go h;
                  cells t false
              | Some v ->
                  if not first then Buffer.add_string buf " | ";
                  Buffer.add_string buf (type_name v)
            in
            cells fv true;
            Buffer.add_char buf ']')
  in
  go fv;
  Buffer.contents buf

let env_with_prelude ?(mode = Lenient) eng =
  match Parser.parse_program (prelude_src ^ ", RESULT 0") with
  | Error e -> failwith ("FEL prelude does not parse: " ^ e)
  | Ok p -> bind_equations mode eng (base_env eng) p.Ast.equations

(* Drive a value to full materialization — the printing demand.  Needed in
   Demand mode, where nothing runs until something asks. *)
let rec deep_force eng fv k =
  Engine.await ~label:"force" fv (function
    | VCons (h, t) -> deep_force eng h (fun () -> deep_force eng t k)
    | _ -> k ())

let eval_program ?(mode = Lenient) eng (program : Ast.program) =
  let result =
    eval_block mode eng
      (env_with_prelude ~mode eng)
      program.Ast.equations program.Ast.result
  in
  (match mode with Demand -> deep_force eng result (fun () -> ()) | Lenient -> ());
  result

let run_program ?max_cycles ?mode (program : Ast.program) =
  let eng = Engine.create () in
  match eval_program ?mode eng program with
  | result -> (
      match Engine.run ?max_cycles eng with
      | stats -> Ok (render result, stats)
      | exception Runtime_error msg -> Error ("runtime error: " ^ msg)
      | exception Engine.Stalled msg -> Error ("stalled: " ^ msg))
  | exception Runtime_error msg -> Error ("runtime error: " ^ msg)

let run_string ?max_cycles ?mode src =
  match Parser.parse_program src with
  | Error e -> Error ("parse error: " ^ e)
  | Ok program -> run_program ?max_cycles ?mode program
