open Fdb_kernel
open Fdb_lenient
open Fdb_relational
open Fdb_rediflow
module Ast = Fdb_query.Ast
module Pred = Fdb_query.Pred
module Plan = Fdb_query.Plan
module Wal = Fdb_wal.Wal
module Ix = Fdb_index.Index

type semantics = Prepend | Ordered_unique

type mode = Ideal | On_machine of Machine.config

type response =
  | Inserted of bool
  | Found of Tuple.t list
  | Deleted of int
  | Selected of Tuple.t list
  | Counted of int
  | Aggregated of Value.t option
  | Updated of int
  | Joined of Tuple.t list
  | Failed of string

let response_equal a b =
  match (a, b) with
  | (Inserted x, Inserted y) -> x = y
  | (Found x, Found y) | (Selected x, Selected y) | (Joined x, Joined y) ->
      List.equal Tuple.equal x y
  | (Deleted x, Deleted y) | (Counted x, Counted y) | (Updated x, Updated y)
    ->
      x = y
  | (Aggregated x, Aggregated y) -> Option.equal Value.equal x y
  | (Failed x, Failed y) -> String.equal x y
  | ( ( Inserted _ | Found _ | Deleted _ | Selected _ | Counted _
      | Aggregated _ | Updated _ | Joined _ | Failed _ ),
      _ ) ->
      false

let pp_tuples ppf ts =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       Tuple.pp)
    ts

let pp_response ppf = function
  | Inserted b -> Format.fprintf ppf "inserted %b" b
  | Found ts -> Format.fprintf ppf "found %a" pp_tuples ts
  | Deleted n -> Format.fprintf ppf "deleted %d" n
  | Selected ts -> Format.fprintf ppf "selected %a" pp_tuples ts
  | Counted n -> Format.fprintf ppf "counted %d" n
  | Aggregated None -> Format.fprintf ppf "aggregated nothing"
  | Aggregated (Some v) -> Format.fprintf ppf "aggregated %a" Value.pp v
  | Updated n -> Format.fprintf ppf "updated %d" n
  | Joined ts -> Format.fprintf ppf "joined %a" pp_tuples ts
  | Failed msg -> Format.fprintf ppf "failed: %s" msg

type db_spec = {
  schemas : Schema.t list;
  initial : (string * Tuple.t list) list;
}

let db_spec_of_workload (w : Fdb_workload.Workload.t) =
  { schemas = w.Fdb_workload.Workload.schemas;
    initial = w.Fdb_workload.Workload.initial }

(* -- shared semantic plumbing (used identically by the lenient run and the
      sequential reference, so that error responses match exactly) -------- *)

let err_unknown_relation rel = Printf.sprintf "unknown relation %s" rel

let err_schema schema tuple =
  Format.asprintf "tuple %a does not match schema %a" Tuple.pp tuple Schema.pp
    schema

let err_no_column schema col =
  Printf.sprintf "relation %s has no column %s" (Schema.name schema) col

let key_eq key tuple = Value.equal (Tuple.key tuple) key

let key_past key tuple = Value.compare (Tuple.key tuple) key > 0

(* Initial relation contents under each semantics.  Prepend keeps load
   order; Ordered_unique sorts by key and keeps the first tuple per key. *)
let initial_state semantics spec =
  let prepare tuples =
    match semantics with
    | Prepend -> tuples
    | Ordered_unique ->
        let sorted = List.stable_sort Tuple.compare_key tuples in
        let rec dedup = function
          | t1 :: t2 :: rest when Value.equal (Tuple.key t1) (Tuple.key t2) ->
              dedup (t1 :: rest)
          | t1 :: rest -> t1 :: dedup rest
          | [] -> []
        in
        dedup sorted
  in
  List.map
    (fun schema ->
      let tuples =
        match List.assoc_opt (Schema.name schema) spec.initial with
        | Some ts -> ts
        | None -> []
      in
      (schema, prepare tuples))
    spec.schemas

(* The durable image of [initial_state Ordered_unique]: [Database.load]
   keeps the first tuple per duplicate key, so a WAL genesis checkpoint
   written from this database matches what every ordered-unique executor
   starts from. *)
let initial_database spec =
  List.fold_left
    (fun db schema ->
      match List.assoc_opt (Schema.name schema) spec.initial with
      | None -> db
      | Some tuples -> (
          match Database.load db ~rel:(Schema.name schema) tuples with
          | Ok db -> db
          | Error e -> invalid_arg ("Pipeline.initial_database: " ^ e)))
    (Database.create spec.schemas)
    spec.schemas

(* The durable log stores relations as keyed sets ({!Fdb_relational}), so a
   Prepend run — a multiset that keeps duplicate keys — has no faithful
   image in it.  Refuse loudly rather than silently dropping tuples. *)
let require_ordered_unique ~who ~semantics wal =
  match (wal, semantics) with
  | (Some _, Prepend) ->
      invalid_arg
        (who
       ^ ": the wal sink requires Ordered_unique semantics (the durable \
          log stores relations as keyed sets)")
  | _ -> ()

(* Archive one changed relation into the next durable version, keeping the
   backend of the version before it. *)
let archive_replace db schema tuples =
  let name = Schema.name schema in
  let backend = Option.map Relation.backend (Database.relation db name) in
  match Relation.of_tuples ?backend schema tuples with
  | Ok rel -> Database.replace db name rel
  | Error e -> invalid_arg ("Pipeline: wal sink could not archive: " ^ e)

let resolve_columns schema cols =
  let rec go = function
    | [] -> Ok []
    | c :: rest -> (
        match Schema.column_index schema c with
        | None -> Error (err_no_column schema c)
        | Some i -> Result.map (fun is -> i :: is) (go rest))
  in
  go cols

(* Compile the read plan of a select: predicate test and projection. *)
let select_plan schema cols where =
  match Pred.compile schema where with
  | Error e -> Error e
  | Ok test -> (
      match cols with
      | None -> Ok (test, fun rows -> rows)
      | Some cs -> (
          match resolve_columns schema cs with
          | Error e -> Error e
          | Ok idxs -> Ok (test, fun rows -> Algebra.project idxs rows)))

let join_plan lschema rschema (lc, rc) =
  match
    (Schema.column_index lschema lc, Schema.column_index rschema rc)
  with
  | (None, _) -> Error (err_no_column lschema lc)
  | (_, None) -> Error (err_no_column rschema rc)
  | (Some li, Some ri) -> Ok (li, ri)

(* -- the lenient execution ------------------------------------------------ *)

type report = {
  responses : (int * response) list;
  stats : Engine.run_stats;
  machine : Machine.machine_stats option;
  speedup : float option;
  final_db : (string * Tuple.t list) list;
}

let responses_for ~tag report =
  List.filter_map
    (fun (t, r) -> if t = tag then Some r else None)
    report.responses

(* Lenient nested-loop join: scan the left relation; each left tuple floods
   a select over the right relation; a collector concatenates the per-tuple
   matches in left order. *)
let lenient_join eng ~label li ri left right result =
  let pred lt rt = Value.equal (Tuple.get lt li) (Tuple.get rt ri) in
  let rec scan l acc =
    Engine.await ~label l (function
      | Llist.Nil ->
          let rec collect acc_rows = function
            | [] -> Engine.put result (List.rev acc_rows)
            | matches :: rest ->
                Engine.await ~label matches (fun (lt, rows) ->
                    let pairs = List.map (fun rt -> Array.append lt rt) rows in
                    collect (List.rev_append pairs acc_rows) rest)
          in
          collect [] (List.rev acc)
      | Llist.Cons (lt, rest) ->
          let matches = Engine.ivar eng in
          let (_, strict) = Llist.select eng ~label (pred lt) right in
          Engine.await ~label strict (fun rows ->
              Engine.put matches (lt, rows));
          scan rest (matches :: acc))
  in
  scan left []

(* Shared setup for both entry points: engine + machine, placed initial
   database, and the transaction executor. *)
let prepare ~semantics ~mode ~trace spec =
  let (machine, eng) =
    match mode with
    | Ideal -> (None, Engine.create ~trace ())
    | On_machine cfg ->
        let m = Machine.create cfg in
        (Some m, Engine.create ~trace ~scheduler:(Machine.scheduler m) ())
  in
  let sites =
    match mode with
    | Ideal -> 1
    | On_machine cfg -> Fdb_net.Topology.size cfg.Machine.topo
  in
  let state = initial_state semantics spec in
  let schemas = Array.of_list (List.map fst state) in
  let nrels = Array.length schemas in
  let rel_index name =
    let rec go i =
      if i >= nrels then None
      else if String.equal (Schema.name schemas.(i)) name then Some i
      else go (i + 1)
    in
    go 0
  in
  (* Block-place the initial cells over the PEs: consecutive cells share a
     site so scans run locally and hop occasionally, and different regions
     (hence different relations) live on different PEs.  New versions
     inherit this layout because copier continuations execute at the old
     cells' sites. *)
  let total_cells =
    List.fold_left (fun acc (_, ts) -> acc + List.length ts) 0 state
  in
  let block = max 1 ((total_cells + sites - 1) / sites) in
  let offset = ref 0 in
  let db0 =
    Array.of_list
      (List.map
         (fun (_, tuples) ->
           let base = !offset in
           offset := base + List.length tuples;
           Llist.of_list eng ~place:(fun j -> (base + j) / block mod sites) tuples)
         state)
  in
  let cmp_key = Tuple.compare_key in
  (* One transaction: returns the next database version immediately;
     responses resolve as their cell-level work completes.  [answer]
     receives the response exactly once. *)
  let exec ~id:i ~answer q (db : Tuple.t Llist.t array) =
    let answer_later iv f = Engine.await iv (fun v -> answer (f v)) in
    let read_only = db in
    let label kind rel = Printf.sprintf "%s:%s#%d" kind rel i in
    match q with
    | Ast.Insert { rel; values } -> (
        let tuple = Tuple.make values in
        match rel_index rel with
        | None ->
            answer (Failed (err_unknown_relation rel));
            read_only
        | Some r ->
            if not (Schema.matches schemas.(r) tuple) then begin
              answer (Failed (err_schema schemas.(r) tuple));
              read_only
            end
            else begin
              match semantics with
              | Prepend ->
                  let db' = Array.copy db in
                  db'.(r) <- Llist.cons eng tuple db.(r);
                  answer (Inserted true);
                  db'
              | Ordered_unique ->
                  let (slot', ack) =
                    Llist.insert_unique eng ~label:(label "insert" rel)
                      ~cmp:cmp_key tuple db.(r)
                  in
                  let db' = Array.copy db in
                  db'.(r) <- slot';
                  answer_later ack (fun added -> Inserted added);
                  db'
            end)
    | Ast.Find { rel; key } -> (
        match rel_index rel with
        | None ->
            answer (Failed (err_unknown_relation rel));
            read_only
        | Some r ->
            (match semantics with
            | Prepend ->
                let (_, strict) =
                  Llist.select eng ~label:(label "find" rel) (key_eq key)
                    db.(r)
                in
                answer_later strict (fun rows -> Found rows)
            | Ordered_unique ->
                let found =
                  Llist.find_until eng ~label:(label "find" rel)
                    ~stop:(key_past key) (key_eq key) db.(r)
                in
                answer_later found (fun t -> Found (Option.to_list t)));
            read_only)
    | Ast.Delete { rel; key } -> (
        match rel_index rel with
        | None ->
            answer (Failed (err_unknown_relation rel));
            read_only
        | Some r ->
            let db' = Array.copy db in
            (match semantics with
            | Prepend ->
                let (slot', count) =
                  Llist.delete_all eng ~label:(label "delete" rel)
                    (key_eq key) db.(r)
                in
                db'.(r) <- slot';
                answer_later count (fun c -> Deleted c)
            | Ordered_unique ->
                let (slot', ack) =
                  Llist.delete_ordered eng ~label:(label "delete" rel)
                    ~cmp:cmp_key
                    (Tuple.make [ key ])
                    db.(r)
                in
                db'.(r) <- slot';
                answer_later ack (fun found -> Deleted (if found then 1 else 0)));
            db')
    | Ast.Select { rel; cols; where } -> (
        match rel_index rel with
        | None ->
            answer (Failed (err_unknown_relation rel));
            read_only
        | Some r ->
            (match select_plan schemas.(r) cols where with
            | Error e -> answer (Failed e)
            | Ok (test, project) ->
                let (_, strict) =
                  Llist.select eng ~label:(label "select" rel) test db.(r)
                in
                answer_later strict (fun rows -> Selected (project rows)));
            read_only)
    | Ast.Count { rel; where } -> (
        match rel_index rel with
        | None ->
            answer (Failed (err_unknown_relation rel));
            read_only
        | Some r ->
            (match where with
            | Ast.True ->
                let len = Llist.length eng ~label:(label "count" rel) db.(r) in
                answer_later len (fun c -> Counted c)
            | _ -> (
                match Pred.compile schemas.(r) where with
                | Error e -> answer (Failed e)
                | Ok test ->
                    let n =
                      Llist.count eng ~label:(label "count" rel) test db.(r)
                    in
                    answer_later n (fun c -> Counted c)));
            read_only)
    | Ast.Aggregate { agg; rel; col; where } -> (
        match rel_index rel with
        | None ->
            answer (Failed (err_unknown_relation rel));
            read_only
        | Some r ->
            (match Pred.compile_aggregate schemas.(r) agg col where with
            | Error e -> answer (Failed e)
            | Ok (step, finish) ->
                let acc =
                  Llist.fold eng ~label:(label "aggregate" rel) step None
                    db.(r)
                in
                answer_later acc (fun acc -> Aggregated (finish acc)));
            read_only)
    | Ast.Update { rel; col; value; where } -> (
        match rel_index rel with
        | None ->
            answer (Failed (err_unknown_relation rel));
            read_only
        | Some r -> (
            match Pred.compile_update schemas.(r) col value where with
            | Error e ->
                answer (Failed e);
                read_only
            | Ok rewrite ->
                let (slot', count) =
                  Llist.update_all eng ~label:(label "update" rel) rewrite
                    db.(r)
                in
                let db' = Array.copy db in
                db'.(r) <- slot';
                answer_later count (fun c -> Updated c);
                db'))
    | Ast.Join { left; right; on } -> (
        match (rel_index left, rel_index right) with
        | (None, _) ->
            answer (Failed (err_unknown_relation left));
            read_only
        | (_, None) ->
            answer (Failed (err_unknown_relation right));
            read_only
        | (Some lr, Some rr) ->
            (match join_plan schemas.(lr) schemas.(rr) on with
            | Error e -> answer (Failed e)
            | Ok (li, ri) ->
                let result = Engine.ivar eng in
                lenient_join eng ~label:(label "join" left) li ri db.(lr)
                  db.(rr) result;
                answer_later result (fun rows -> Joined rows));
            read_only)
  in
  (machine, eng, schemas, db0, exec)

(* Assemble the report once the engine has quiesced. *)
let finish ~mode ~machine ~schemas ~stats ~responses ~last_version =
  let machine_stats = Option.map Machine.machine_stats machine in
  let speedup =
    match mode with
    | Ideal -> None
    | On_machine _ ->
        Some
          (float_of_int stats.Engine.tasks /. float_of_int stats.Engine.cycles)
  in
  let final_db =
    Array.to_list
      (Array.mapi
         (fun r slot -> (Schema.name schemas.(r), Llist.prefix_now slot))
         last_version)
  in
  { responses; stats; machine = machine_stats; speedup; final_db }

(* Replay a lenient run's version chain into the durable log.  Each entry
   is the slot array a dispatch produced, oldest first; a slot that kept
   its physical identity kept its contents (single assignment), so only
   changed slots are materialized.  Runs after quiescence, when every cell
   is resolved, and skips versions whose materialized contents turn out
   unchanged (e.g. a rejected duplicate insert). *)
let log_lenient_versions w ~schemas ~db0 versions =
  let prev_slots = ref db0 in
  let prev_db = ref (Wal.latest w) in
  List.iter
    (fun slots ->
      let changed = ref [] in
      Array.iteri
        (fun r slot ->
          if not (slot == !prev_slots.(r)) then begin
            let tuples = Llist.prefix_now slot in
            let same =
              match Database.relation !prev_db (Schema.name schemas.(r)) with
              | Some rel -> List.equal Tuple.equal (Relation.to_list rel) tuples
              | None -> false
            in
            if not same then changed := (r, tuples) :: !changed
          end)
        slots;
      (match !changed with
      | [] -> ()
      | cs ->
          let db' =
            List.fold_left
              (fun db (r, tuples) -> archive_replace db schemas.(r) tuples)
              !prev_db cs
          in
          prev_db := db';
          Wal.append w db');
      prev_slots := slots)
    versions

let run ?(semantics = Prepend) ?(mode = Ideal) ?(trace = false) ?(primary = 0)
    ?wal spec tagged_queries =
  require_ordered_unique ~who:"Pipeline.run" ~semantics wal;
  let (machine, eng, schemas, db0, exec) = prepare ~semantics ~mode ~trace spec in
  let queries = Array.of_list tagged_queries in
  let n = Array.length queries in
  let resp = Array.init n (fun _ -> Engine.ivar eng) in
  (* The dispatch chain: the unfolding of apply-stream.  One task per
     transaction, homed at the primary site; version i+1 is produced the
     cycle after version i regardless of relation sizes. *)
  let last_version = ref db0 in
  let versions = ref [] in
  Engine.spawn eng ~site:primary (fun () ->
      let first = Engine.ivar eng in
      let rec chain i db_iv =
        if i < n then begin
          let next_iv = Engine.ivar eng in
          let (_, q) = queries.(i) in
          Engine.await
            ~label:(Printf.sprintf "dispatch#%d" i)
            db_iv
            (fun db ->
              if Fdb_obs.Trace.enabled () then
                Fdb_obs.Trace.emit_at ~ts:(Engine.now eng) ~site:primary
                  (Fdb_obs.Event.Dispatch_start
                     { txn = i; label = Printf.sprintf "dispatch#%d" i });
              let db' = exec ~id:i ~answer:(Engine.put resp.(i)) q db in
              if not (db' == db) then versions := db' :: !versions;
              if Fdb_obs.Trace.enabled () then
                Fdb_obs.Trace.emit_at ~ts:(Engine.now eng) ~site:primary
                  (Fdb_obs.Event.Dispatch_end
                     { txn = i; label = Printf.sprintf "dispatch#%d" i });
              (* The span covers only the dispatch step — the handoff of
                 version i+1 — not the flooded cell work, which overlaps
                 later dispatches by design. *)
              Engine.put next_iv db');
          chain (i + 1) next_iv
        end
        else
          Engine.await ~label:"final-version" db_iv (fun db ->
              last_version := db)
      in
      chain 0 first;
      Engine.put first db0);
  let stats = Engine.run eng in
  (match wal with
  | Some w ->
      log_lenient_versions w ~schemas ~db0 (List.rev !versions);
      Wal.sync w
  | None -> ());
  let responses =
    Array.to_list
      (Array.mapi
         (fun i iv ->
           match Engine.peek iv with
           | Some r -> (fst queries.(i), r)
           | None ->
               failwith
                 (Printf.sprintf
                    "Pipeline.run: response %d unresolved (%d orphans)" i
                    stats.Engine.orphans))
         resp)
  in
  finish ~mode ~machine ~schemas ~stats ~responses ~last_version:!last_version

(* Clients as lenient stream producers, merged by the engine arbiter, the
   dispatch chain chasing the merged stream — the whole Figure 2-1/2-3
   architecture as one task graph. *)
let run_streams ?(semantics = Prepend) ?(mode = Ideal) ?(trace = false)
    ?(primary = 0) ?wal spec (streams : Ast.query list list) =
  require_ordered_unique ~who:"Pipeline.run_streams" ~semantics wal;
  let (machine, eng, schemas, db0, exec) =
    prepare ~semantics ~mode ~trace spec
  in
  let inputs =
    List.mapi
      (fun tag qs ->
        Llist.produce eng ~label:(Printf.sprintf "client#%d" tag) qs)
      streams
  in
  let merged = Lmerge.merge eng inputs in
  let collected = ref [] (* (tag, query, response ivar), reverse order *) in
  let last_version = ref db0 in
  let versions = ref [] in
  Engine.spawn eng ~site:primary (fun () ->
      let rec chase i cell db_iv =
        Engine.await ~label:(Printf.sprintf "dispatch#%d" i) cell (function
          | Llist.Nil ->
              Engine.await ~label:"final-version" db_iv (fun db ->
                  last_version := db)
          | Llist.Cons ((tag, q), rest) ->
              let resp = Engine.ivar eng in
              collected := (tag, q, resp) :: !collected;
              let next_iv = Engine.ivar eng in
              Engine.await ~label:(Printf.sprintf "txn#%d" i) db_iv (fun db ->
                  if Fdb_obs.Trace.enabled () then
                    Fdb_obs.Trace.emit_at ~ts:(Engine.now eng) ~site:primary
                      (Fdb_obs.Event.Dispatch_start
                         { txn = i; label = Printf.sprintf "txn#%d" i });
                  let db' = exec ~id:i ~answer:(Engine.put resp) q db in
                  if not (db' == db) then versions := db' :: !versions;
                  if Fdb_obs.Trace.enabled () then
                    Fdb_obs.Trace.emit_at ~ts:(Engine.now eng) ~site:primary
                      (Fdb_obs.Event.Dispatch_end
                         { txn = i; label = Printf.sprintf "txn#%d" i });
                  Engine.put next_iv db');
              chase (i + 1) rest next_iv
        )
      in
      let first = Engine.ivar eng in
      chase 0 merged first;
      Engine.put first db0);
  let stats = Engine.run eng in
  (match wal with
  | Some w ->
      log_lenient_versions w ~schemas ~db0 (List.rev !versions);
      Wal.sync w
  | None -> ());
  let items = List.rev !collected in
  let responses =
    List.mapi
      (fun i (tag, _, iv) ->
        match Engine.peek iv with
        | Some r -> (tag, r)
        | None ->
            failwith
              (Printf.sprintf
                 "Pipeline.run_streams: response %d unresolved (%d orphans)" i
                 stats.Engine.orphans))
      items
  in
  let merged_order = List.map (fun (tag, q, _) -> (tag, q)) items in
  ( finish ~mode ~machine ~schemas ~stats ~responses
      ~last_version:!last_version,
    merged_order )

(* -- the sequential reference --------------------------------------------- *)

(* Mutable relation state for the non-lenient executors: the sequential
   reference and the write half of the parallel executor share it, so
   their write semantics cannot drift apart. *)
let seq_state semantics spec =
  let state = initial_state semantics spec in
  let rels = Array.of_list (List.map (fun (s, ts) -> (s, ref ts)) state) in
  let nrels = Array.length rels in
  let rel_index name =
    let rec go i =
      if i >= nrels then None
      else if String.equal (Schema.name (fst rels.(i))) name then Some i
      else go (i + 1)
    in
    go 0
  in
  (rels, rel_index)

let seq_eval ~semantics rels rel_index q =
  let with_rel rel k =
    match rel_index rel with
    | None -> Failed (err_unknown_relation rel)
    | Some r -> k r
  in
    match q with
    | Ast.Insert { rel; values } ->
        let tuple = Tuple.make values in
        with_rel rel (fun r ->
            let (schema, contents) = rels.(r) in
            if not (Schema.matches schema tuple) then
              Failed (err_schema schema tuple)
            else begin
              match semantics with
              | Prepend ->
                  contents := tuple :: !contents;
                  Inserted true
              | Ordered_unique ->
                  if List.exists (key_eq (Tuple.key tuple)) !contents then
                    Inserted false
                  else begin
                    let rec ins = function
                      | [] -> [ tuple ]
                      | t :: rest ->
                          if Tuple.compare_key tuple t <= 0 then
                            tuple :: t :: rest
                          else t :: ins rest
                    in
                    contents := ins !contents;
                    Inserted true
                  end
            end)
    | Ast.Find { rel; key } ->
        with_rel rel (fun r ->
            let (_, contents) = rels.(r) in
            match semantics with
            | Prepend -> Found (List.filter (key_eq key) !contents)
            | Ordered_unique ->
                Found (Option.to_list (List.find_opt (key_eq key) !contents)))
    | Ast.Delete { rel; key } ->
        with_rel rel (fun r ->
            let (_, contents) = rels.(r) in
            match semantics with
            | Prepend ->
                let (gone, kept) = List.partition (key_eq key) !contents in
                contents := kept;
                Deleted (List.length gone)
            | Ordered_unique ->
                if List.exists (key_eq key) !contents then begin
                  let rec del = function
                    | [] -> []
                    | t :: rest -> if key_eq key t then rest else t :: del rest
                  in
                  contents := del !contents;
                  Deleted 1
                end
                else Deleted 0)
    | Ast.Select { rel; cols; where } ->
        with_rel rel (fun r ->
            let (schema, contents) = rels.(r) in
            match select_plan schema cols where with
            | Error e -> Failed e
            | Ok (test, project) ->
                Selected (project (List.filter test !contents)))
    | Ast.Count { rel; where } ->
        with_rel rel (fun r ->
            let (schema, contents) = rels.(r) in
            match where with
            | Ast.True -> Counted (List.length !contents)
            | _ -> (
                match Pred.compile schema where with
                | Error e -> Failed e
                | Ok test -> Counted (List.length (List.filter test !contents))))
    | Ast.Aggregate { agg; rel; col; where } ->
        with_rel rel (fun r ->
            let (schema, contents) = rels.(r) in
            match Pred.compile_aggregate schema agg col where with
            | Error e -> Failed e
            | Ok (step, finish) ->
                Aggregated (finish (List.fold_left step None !contents)))
    | Ast.Update { rel; col; value; where } ->
        with_rel rel (fun r ->
            let (schema, contents) = rels.(r) in
            match Pred.compile_update schema col value where with
            | Error e -> Failed e
            | Ok rewrite ->
                let changed = ref 0 in
                contents :=
                  List.map
                    (fun tup ->
                      match rewrite tup with
                      | Some tup' ->
                          incr changed;
                          tup'
                      | None -> tup)
                    !contents;
                Updated !changed)
    | Ast.Join { left; right; on } ->
        with_rel left (fun lr ->
            with_rel right (fun rr ->
                match join_plan (fst rels.(lr)) (fst rels.(rr)) on with
                | Error e -> Failed e
                | Ok (li, ri) ->
                    Joined
                      (Algebra.join ~left_col:li ~right_col:ri
                         !(snd rels.(lr))
                         !(snd rels.(rr)))))

let reference ?(semantics = Prepend) spec tagged_queries =
  let (rels, rel_index) = seq_state semantics spec in
  List.map
    (fun (tag, q) -> (tag, seq_eval ~semantics rels rel_index q))
    tagged_queries

let check_serializable ?semantics ?mode spec tagged_queries =
  let lenient = (run ?semantics ?mode spec tagged_queries).responses in
  let sequential = reference ?semantics spec tagged_queries in
  let rec compare_all i = function
    | ([], []) -> Ok true
    | ((t1, r1) :: rest1, (t2, r2) :: rest2) ->
        if t1 <> t2 then
          Error (Printf.sprintf "tag mismatch at %d: %d vs %d" i t1 t2)
        else if not (response_equal r1 r2) then
          Error
            (Format.asprintf
               "response mismatch at %d (tag %d): lenient %a, sequential %a" i
               t1 pp_response r1 pp_response r2)
        else compare_all (i + 1) (rest1, rest2)
    | _ -> Error "response count mismatch"
  in
  compare_all 0 (lenient, sequential)

(* -- the parallel executor ------------------------------------------------- *)

module Pool = Fdb_par.Pool

let m_floods = Fdb_obs.Metrics.counter "par.scans_flooded"
let m_chunks = Fdb_obs.Metrics.counter "par.chunk_tasks"

(* Same registry name as the planner's counter in [Fdb_txn]: the metrics
   registry keys instruments by name, so both executors share it. *)
let m_ixagg = Fdb_obs.Metrics.counter "plan.index_aggregate"

type par_report = {
  par_responses : (int * response) list;
  par_final_db : (string * Tuple.t list) list;
  par_tasks : int;  (* pool tasks executed, summed over worker domains *)
  par_steals : int;
  par_domains : int;
}

(* A dispatched query's answer: writes resolve inline on the dispatch
   thread; flooded reads resolve when the pool drains. *)
type pending = Now of response | Later of response Lcell.t

let chunks_of ~chunk xs =
  let rec go acc cur n = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
        if n + 1 >= chunk then go (List.rev (x :: cur) :: acc) [] 0 rest
        else go acc (x :: cur) (n + 1) rest
  in
  go [] [] 0 xs

(* Chunked map-reduce over one relation scan.  Each chunk is an
   independent pool task writing its slot; the last one to finish reduces
   and fills the cell.  Plain slot writes are published to the reducing
   domain by the atomic countdown (release/acquire), so no chunk result
   is ever read torn. *)
let flood pool ~chunk ~site0 xs ~map ~reduce =
  Fdb_obs.Metrics.incr m_floods;
  let cell = Lcell.create () in
  let cks = Array.of_list (chunks_of ~chunk xs) in
  let n = Array.length cks in
  if n = 0 then Lcell.put cell (reduce [||])
  else begin
    let slots = Array.make n None in
    let remaining = Atomic.make n in
    Array.iteri
      (fun i ck ->
        Fdb_obs.Metrics.incr m_chunks;
        Pool.submit pool ~site:(site0 + i) (fun () ->
            slots.(i) <- Some (map ck);
            if Atomic.fetch_and_add remaining (-1) = 1 then
              Lcell.put cell
                (reduce
                   (Array.map
                      (function Some v -> v | None -> assert false)
                      slots))))
      cks
  end;
  cell

let run_parallel ?(semantics = Prepend) ?domains ?(chunk = 512) ?pool ?wal
    ?index spec tagged_queries =
  if chunk < 1 then invalid_arg "Pipeline.run_parallel: chunk must be >= 1";
  require_ordered_unique ~who:"Pipeline.run_parallel" ~semantics wal;
  (match (index, semantics) with
  | (Some _, Prepend) ->
      invalid_arg
        "Pipeline.run_parallel: an index session requires Ordered_unique \
         semantics (indexes mirror keyed sets)"
  | _ -> ());
  let go pool =
    let (rels, rel_index) = seq_state semantics spec in
    (* Index maintenance happens inline on the dispatch thread, right
       after the write it mirrors — writes are serial here, so indexes
       advance in lockstep with the mutable relation state.  Deltas are
       derived before/after [seq_eval]: the removed tuple of a delete and
       the rewrite pairs of an update are only recoverable from the
       pre-write contents. *)
    let eval_write q =
      match (index, q) with
      | (None, _) -> seq_eval ~semantics rels rel_index q
      | (Some session, Ast.Insert { rel; values }) ->
          let tuple = Tuple.make values in
          let r = seq_eval ~semantics rels rel_index q in
          (match (r, rel_index rel) with
          | (Inserted true, Some ri) ->
              Ix.Session.on_write (Ix.Session.use session) ~rel
                ~base:(List.length !(snd rels.(ri)))
                ~removed:[] ~added:[ tuple ]
          | _ -> ());
          r
      | (Some session, Ast.Delete { rel; key }) ->
          let removed =
            match rel_index rel with
            | Some ri -> List.find_opt (key_eq key) !(snd rels.(ri))
            | None -> None
          in
          let r = seq_eval ~semantics rels rel_index q in
          (match (r, removed, rel_index rel) with
          | (Deleted 1, Some t, Some ri) ->
              Ix.Session.on_write (Ix.Session.use session) ~rel
                ~base:(List.length !(snd rels.(ri)))
                ~removed:[ t ] ~added:[]
          | _ -> ());
          r
      | (Some session, Ast.Update { rel; col; value; where }) ->
          let pairs =
            match rel_index rel with
            | None -> []
            | Some ri -> (
                let (schema, contents) = rels.(ri) in
                match Pred.compile_update schema col value where with
                | Error _ -> []
                | Ok rewrite ->
                    List.filter_map
                      (fun t -> Option.map (fun t' -> (t, t')) (rewrite t))
                      !contents)
          in
          let r = seq_eval ~semantics rels rel_index q in
          (match (r, rel_index rel) with
          | (Updated n, Some ri) when n > 0 && pairs <> [] ->
              Ix.Session.on_write (Ix.Session.use session) ~rel
                ~base:(List.length !(snd rels.(ri)))
                ~removed:(List.map fst pairs)
                ~added:(List.map snd pairs)
          | _ -> ());
          r
      | (Some _, _) -> seq_eval ~semantics rels rel_index q
    in
    (* Writes mutate [rels] inline on the dispatch thread, so the durable
       version chain is rebuilt there too: snapshot the relation lists
       before a write, archive whichever relations actually changed.
       [Update] always reallocates the list spine, so change detection is
       element-wise physical equality — an update that rewrote nothing
       keeps every tuple physically and is not logged. *)
    let log_write =
      match wal with
      | None -> fun _before -> ()
      | Some w ->
          fun before ->
            let db = ref (Wal.latest w) in
            let changed = ref false in
            Array.iteri
              (fun i (schema, contents) ->
                let now = !contents in
                if not (List.equal ( == ) before.(i) now) then begin
                  db := archive_replace !db schema now;
                  changed := true
                end)
              rels;
            if !changed then Wal.append w !db
    in
    let floods = ref 0 in
    let next_site () =
      let s = !floods in
      incr floods;
      s
    in
    let concat parts = List.concat (Array.to_list parts) in
    let sum = Array.fold_left ( + ) 0 in
    (* Reads capture the relation's current (immutable) tuple list at
       dispatch time — a version snapshot, so later inline writes never
       race the flooded scans.  This is exactly the paper's pipelining:
       transaction i+1 proceeds against its version while transaction i's
       reads are still being computed. *)
    let dispatch q =
      match q with
      | (Ast.Insert _ | Ast.Delete _ | Ast.Update _)
        when Option.is_none wal ->
          Now (eval_write q)
      | Ast.Insert _ | Ast.Delete _ | Ast.Update _ ->
          let before = Array.map (fun (_, c) -> !c) rels in
          let r = eval_write q in
          log_write before;
          Now r
      | Ast.Find { rel; key } -> (
          match rel_index rel with
          | None -> Now (Failed (err_unknown_relation rel))
          | Some r -> (
              let contents = !(snd rels.(r)) in
              match semantics with
              | Prepend ->
                  Later
                    (flood pool ~chunk ~site0:(next_site ()) contents
                       ~map:(List.filter (key_eq key))
                       ~reduce:(fun parts -> Found (concat parts)))
              | Ordered_unique ->
                  Later
                    (flood pool ~chunk ~site0:(next_site ()) contents
                       ~map:(List.find_opt (key_eq key))
                       ~reduce:(fun parts ->
                         let rec first i =
                           if i >= Array.length parts then None
                           else
                             match parts.(i) with
                             | Some _ as s -> s
                             | None -> first (i + 1)
                         in
                         Found (Option.to_list (first 0))))))
      | Ast.Select { rel; cols; where } -> (
          match rel_index rel with
          | None -> Now (Failed (err_unknown_relation rel))
          | Some r -> (
              let (schema, contents) = rels.(r) in
              let contents = !contents in
              match select_plan schema cols where with
              | Error e -> Now (Failed e)
              | Ok (test, project) ->
                  Later
                    (flood pool ~chunk ~site0:(next_site ()) contents
                       ~map:(fun ck -> project (List.filter test ck))
                       ~reduce:(fun parts -> Selected (concat parts)))))
      | Ast.Count { rel; where } -> (
          match rel_index rel with
          | None -> Now (Failed (err_unknown_relation rel))
          | Some r -> (
              let (schema, contents) = rels.(r) in
              let contents = !contents in
              match where with
              | Ast.True ->
                  Later
                    (flood pool ~chunk ~site0:(next_site ()) contents
                       ~map:List.length
                       ~reduce:(fun parts -> Counted (sum parts)))
              | _ -> (
                  match Pred.compile schema where with
                  | Error e -> Now (Failed e)
                  | Ok test ->
                      Later
                        (flood pool ~chunk ~site0:(next_site ()) contents
                           ~map:(fun ck -> List.length (List.filter test ck))
                           ~reduce:(fun parts -> Counted (sum parts))))))
      | Ast.Aggregate { agg; rel; col; where } -> (
          match rel_index rel with
          | None -> Now (Failed (err_unknown_relation rel))
          | Some r -> (
              let (schema, contents) = rels.(r) in
              let contents = !contents in
              match Pred.compile_aggregate schema agg col where with
              | Error e -> Now (Failed e)
              | Ok (step, finish) -> (
                  let slow () =
                    (* The fold is opaque (not exposed as an associative
                       op), so it runs as one asynchronous task rather
                       than a chunked flood. *)
                    let cell = Lcell.create () in
                    Pool.submit pool ~site:(next_site ()) (fun () ->
                        Lcell.put cell
                          (Aggregated
                             (finish (List.fold_left step None contents))));
                    Later cell
                  in
                  (* With a derived index whose group matches the predicate
                     exactly, the maintained statistics answer inline in
                     O(log n) — the one query shape the flood cannot chunk
                     becomes the cheapest of all. *)
                  match index with
                  | None -> slow ()
                  | Some session -> (
                      match
                        Plan.analyze_group schema
                          ~indexes:(Ix.Session.descs_for session rel)
                          ~target:(`Agg (agg, col)) where
                      with
                      | Some
                          { Plan.ipath = Plan.Index_group { ix; group }; _ }
                        -> (
                          match
                            Ix.Store.find (Ix.Session.store session)
                              ix.Plan.ix_name
                          with
                          | None -> slow ()
                          | Some built ->
                              Fdb_obs.Metrics.incr m_ixagg;
                              let answer =
                                match Ix.group_lookup built group with
                                | Some st -> (
                                    match agg with
                                    | Ast.Sum -> Some st.Ix.g_sum
                                    | Ast.Min -> Some st.Ix.g_min
                                    | Ast.Max -> Some st.Ix.g_max)
                                | None -> finish None
                              in
                              Now (Aggregated answer))
                      | Some _ | None -> slow ()))))
      | Ast.Join { left; right; on } -> (
          match (rel_index left, rel_index right) with
          | (None, _) -> Now (Failed (err_unknown_relation left))
          | (_, None) -> Now (Failed (err_unknown_relation right))
          | (Some lr, Some rr) -> (
              match join_plan (fst rels.(lr)) (fst rels.(rr)) on with
              | Error e -> Now (Failed e)
              | Ok (li, ri) ->
                  let lts = !(snd rels.(lr)) and rts = !(snd rels.(rr)) in
                  (* [Algebra.join] is left-major, so joining left chunks
                     against the whole right relation and concatenating
                     in chunk order reproduces the unchunked output
                     tuple for tuple. *)
                  Later
                    (flood pool ~chunk ~site0:(next_site ()) lts
                       ~map:(fun ck ->
                         Algebra.join ~left_col:li ~right_col:ri ck rts)
                       ~reduce:(fun parts -> Joined (concat parts)))))
    in
    let pending = List.map (fun (tag, q) -> (tag, dispatch q)) tagged_queries in
    (match wal with Some w -> Wal.sync w | None -> ());
    Pool.wait pool;
    let (stats : Pool.stats) = Pool.stats pool in
    let responses =
      List.mapi
        (fun i (tag, p) ->
          match p with
          | Now r -> (tag, r)
          | Later cell -> (
              match Lcell.peek cell with
              | Some r -> (tag, r)
              | None ->
                  failwith
                    (Printf.sprintf
                       "Pipeline.run_parallel: response %d unresolved" i)))
        pending
    in
    let final_db =
      Array.to_list
        (Array.map (fun (s, ts) -> (Schema.name s, !ts)) rels)
    in
    {
      par_responses = responses;
      par_final_db = final_db;
      par_tasks = sum stats.executed;
      par_steals = stats.steals;
      par_domains = stats.domains;
    }
  in
  match pool with
  | Some p -> go p
  | None -> Pool.with_pool ?domains go

(* -- the speculative repair executor -------------------------------------- *)

type repair_report = {
  rep_responses : (int * response) list;
  rep_final_db : (string * Tuple.t list) list;
  rep_batches : int;
  rep_versions : int;  (* archived versions across all batches, incl. v0 *)
  rep_stats : Fdb_repair.Exec.stats;
}

(* The repair executor runs the Txn reference semantics, whose responses
   are shaped slightly differently (option/bool where the pipeline uses
   list/int).  Error strings are identical by construction: Txn and the
   pipeline share Pred and format unknown-relation / schema / column
   errors the same way. *)
let response_of_txn : Fdb_txn.Txn.response -> response = function
  | Fdb_txn.Txn.Inserted b -> Inserted b
  | Fdb_txn.Txn.Found t -> Found (Option.to_list t)
  | Fdb_txn.Txn.Deleted b -> Deleted (if b then 1 else 0)
  | Fdb_txn.Txn.Selected ts -> Selected ts
  | Fdb_txn.Txn.Counted n -> Counted n
  | Fdb_txn.Txn.Aggregated v -> Aggregated v
  | Fdb_txn.Txn.Updated n -> Updated n
  | Fdb_txn.Txn.Joined ts -> Joined ts
  | Fdb_txn.Txn.Failed e -> Failed e

let run_repair ?domains ?(batch = 16) ?pool ?wal ?index spec tagged_queries =
  if batch < 1 then invalid_arg "Pipeline.run_repair: batch must be >= 1";
  (* Relations are keyed sets, so this mode is inherently Ordered_unique
     (see [initial_database]) — no wal guard needed. *)
  let db0 = initial_database spec in
  let go pool =
    let (tagged_rev, final, stats, versions, batches) =
      List.fold_left
        (fun (acc, db, stats, versions, bid) chunk ->
          let r =
            Fdb_repair.Exec.run_batch ~pool ?index ~batch_id:bid db
              (List.map snd chunk)
          in
          (match wal with
          | Some w ->
              let h = r.Fdb_repair.Exec.history in
              for i = 1 to Fdb_txn.History.length h - 1 do
                Wal.append w (Fdb_txn.History.version h i)
              done
          | None -> ());
          let tagged =
            List.map2
              (fun (tag, _) resp -> (tag, response_of_txn resp))
              chunk r.Fdb_repair.Exec.responses
          in
          ( List.rev_append tagged acc,
            r.Fdb_repair.Exec.final,
            Fdb_repair.Exec.add_stats stats r.Fdb_repair.Exec.stats,
            versions + (Fdb_txn.History.length r.Fdb_repair.Exec.history - 1),
            bid + 1 ))
        ([], db0, Fdb_repair.Exec.zero_stats, 1, 0)
        (chunks_of ~chunk:batch tagged_queries)
    in
    (match wal with Some w -> Wal.sync w | None -> ());
    let final_db =
      List.map
        (fun schema ->
          let name = Schema.name schema in
          ( name,
            match Database.relation final name with
            | Some r -> Relation.to_list r
            | None -> [] ))
        spec.schemas
    in
    {
      rep_responses = List.rev tagged_rev;
      rep_final_db = final_db;
      rep_batches = batches;
      rep_versions = versions;
      rep_stats = stats;
    }
  in
  match pool with Some p -> go p | None -> Pool.with_pool ?domains go

(* -- the sharded two-level merge executor ---------------------------------- *)

type shard_report = {
  sh_responses : (int * response) list;
  sh_final_db : (string * Tuple.t list) list;
  sh_shards : int;
  sh_versions : int;  (* durable versions incl. v0 *)
  sh_stats : Fdb_shard.Shard.stats;
}

let run_sharded ?(shards = 2) ?wal spec tagged_queries =
  (* Relations are keyed sets, so this mode is inherently Ordered_unique
     (see [initial_database]) — no wal guard needed. *)
  let db0 = initial_database spec in
  let merged =
    List.map
      (fun (tag, q) -> { Fdb_merge.Merge.tag; item = q })
      tagged_queries
  in
  let r = Fdb_shard.Shard.run_merged ~shards ~initial:db0 merged in
  (match wal with
  | Some w ->
      List.iter (Wal.append w) r.Fdb_shard.Shard.versions;
      Wal.sync w
  | None -> ());
  let responses =
    List.mapi
      (fun i tag -> (tag, response_of_txn r.Fdb_shard.Shard.responses.(i)))
      (Array.to_list r.Fdb_shard.Shard.tags)
  in
  let final_db =
    List.map
      (fun schema ->
        let name = Schema.name schema in
        ( name,
          match Database.relation r.Fdb_shard.Shard.final name with
          | Some rel -> Relation.to_list rel
          | None -> [] ))
      spec.schemas
  in
  {
    sh_responses = responses;
    sh_final_db = final_db;
    sh_shards = shards;
    sh_versions = 1 + List.length r.Fdb_shard.Shard.versions;
    sh_stats = r.Fdb_shard.Shard.stats;
  }
