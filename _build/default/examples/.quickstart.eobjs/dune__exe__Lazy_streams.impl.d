examples/lazy_streams.ml: Fdb_fel Fdb_kernel Format String
