test/test_fel.mli:
