lib/persistent/plist.ml: List Meter Ordered
