(** The lenient-evaluation kernel.

    Keller & Lindstrom's database programs run on a reduction machine whose
    observable behaviour is a dynamic graph of unit-length tasks connected by
    single-assignment cells ("lenient data constructors").  This module
    reproduces that model directly:

    - an {!type:ivar} is a single-assignment cell: {!val:put} fills it once;
      {!val:await} registers a continuation that becomes a runnable task when
      (and as soon as) the value is present;
    - every continuation and every {!val:spawn}ed closure costs exactly one
      time unit when executed (the paper's ideal-mode "unit task lengths");
    - a pluggable {!type:scheduler} decides which ready tasks run in each
      cycle.  {!val:ideal_scheduler} runs {e all} of them — the paper's
      "arbitrary degree of parallelism" mode used for Table I; the Rediflow
      machine scheduler (in [Fdb_rediflow]) runs one task per processing
      element and charges communication delays.

    The per-cycle number of executed tasks is the {e ply width}; the run
    statistics expose its maximum and average, which are exactly the
    concurrency figures of the paper's Table I. *)

exception Double_put of string
(** Raised when {!val:put} is applied twice to the same cell; lenient cells
    are single-assignment. *)

exception Stalled of string
(** Raised by {!val:run} when the cycle budget is exhausted. *)

type t
(** An engine instance: one program run. *)

type task = {
  tid : int;  (** unique, allocation-ordered task id *)
  label : string;  (** human-readable label, used by the trace *)
  mutable home : int;  (** site the task is currently placed on *)
  work : unit -> unit;  (** the unit of computation *)
}

type scheduler = {
  sched_name : string;
  sched_enqueue : task -> src:int -> unit;
      (** A task became ready.  [src] is the site of the event that enabled
          it (the task that spawned it, or the [put] that woke it); [-1]
          for setup-time events outside any task. *)
  sched_next_batch : unit -> task list;
      (** Tasks to execute in the current cycle.  May be empty while
          messages are still in flight. *)
  sched_advance : unit -> unit;
      (** End of cycle: move time forward (deliver messages, balance
          load, ...). *)
  sched_pending : unit -> bool;
      (** Is any work queued or in flight? *)
}

val create : ?trace:bool -> ?scheduler:scheduler -> unit -> t
(** Fresh engine.  Default scheduler is {!val:ideal_scheduler}.  When
    [trace] is set, each executed task with a non-empty label is recorded
    as [(cycle, label)] — used to print de-facto parallel schedules
    (paper Figure 2-3). *)

val ideal_scheduler : unit -> scheduler
(** Unbounded processors, zero communication cost: every ready task runs in
    the cycle after it becomes ready. *)

val set_scheduler : t -> scheduler -> unit
(** Replace the scheduler before any task has been spawned. *)

val spawn : t -> ?label:string -> ?site:int -> (unit -> unit) -> unit
(** Create a unit task, ready in the next cycle.  [site] defaults to the
    site of the currently executing task (locality of spawning). *)

val current_site : t -> int
(** Site of the task being executed, or [-1] during setup. *)

val now : t -> int
(** Current cycle number. *)

val tasks_executed : t -> int

(** {1 Single-assignment cells} *)

type 'a ivar

val ivar : t -> 'a ivar
(** Fresh empty cell. *)

val ivar_at : t -> site:int -> 'a ivar
(** Fresh empty cell homed at an explicit site. *)

val full : t -> 'a -> 'a ivar
(** Cell created already holding a value (costs no task). *)

val home : 'a ivar -> int
(** The site a cell lives on; continuations on the cell execute there. *)

val full_at : t -> site:int -> 'a -> 'a ivar
(** Like {!val:full} but homed at an explicit site — used to place
    pre-existing data (the initial database) across the machine. *)

val suspend : t -> ?label:string -> (unit -> unit) -> 'a ivar
(** Demand-driven cell: the computation is launched (as one task, at the
    cell's creation site) by the {e first} {!val:await} on the cell, and is
    expected to eventually {!val:put} it.  This is lazy evaluation as a
    special case of the lenient machinery — the engine stays data-driven
    once a demand has fired. *)

val put : 'a ivar -> 'a -> unit
(** Fill the cell and wake all waiters.  @raise Double_put on refill. *)

val await : ?label:string -> 'a ivar -> ('a -> unit) -> unit
(** Run the continuation as a fresh unit task once the value is present.
    The continuation is homed at the {e cell's} site — the task moves to
    the data, as in Rediflow (paper §3.4) — and the scheduler charges the
    demand or data transfer. *)

val peek : 'a ivar -> 'a option
(** Non-consuming, zero-cost read; used to extract results after a run. *)

val is_full : 'a ivar -> bool

(** {1 Running} *)

type run_stats = {
  cycles : int;  (** makespan in cycles *)
  tasks : int;  (** total tasks executed *)
  max_ply : int;  (** widest cycle — "maximum concurrency" *)
  avg_ply : float;  (** tasks / cycles — "average concurrency" *)
  busy_cycles : int;  (** cycles in which at least one task ran *)
  orphans : int;  (** waiters never woken: latent deadlock *)
  trace : (int * string) list;  (** (cycle, label) events, oldest first *)
}

val run : ?max_cycles:int -> t -> run_stats
(** Drive the scheduler to quiescence.  @raise Stalled if [max_cycles]
    (default 20,000,000) elapse first. *)

val pp_stats : Format.formatter -> run_stats -> unit
