(* The observability layer checking itself: the metrics registry, the
   trace sink and ring buffer, the Chrome exporter, and the trace-invariant
   oracles — green on real traces (pipeline runs, crash-failover sims) and
   red on doctored ones, so the invariants are known to be non-vacuous. *)

open Fdb
module Event = Fdb_obs.Event
module Trace = Fdb_obs.Trace
module Metrics = Fdb_obs.Metrics
module Chrome = Fdb_obs.Chrome
module Trace_oracle = Fdb_check.Trace_oracle
module Gen = Fdb_check.Gen
module Sim = Fdb_check.Sim
module Oracle = Fdb_check.Oracle

let ev ?(ts = 0) ?(site = 0) kind = { Event.ts; site; kind }

let count_occurrences needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i acc =
    if i + n > h then acc
    else if String.sub hay i n = needle then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let contains needle hay = count_occurrences needle hay > 0

(* -- metrics -------------------------------------------------------------- *)

let test_metrics_counters () =
  Metrics.reset ();
  let c = Metrics.counter "test.obs.counter" in
  Alcotest.(check int) "fresh" 0 (Metrics.counter_value c);
  Metrics.incr c;
  Metrics.add c 4;
  Alcotest.(check int) "1 + 4" 5 (Metrics.counter_value c);
  let c' = Metrics.counter "test.obs.counter" in
  Metrics.incr c';
  Alcotest.(check int) "same name, same counter" 6 (Metrics.counter_value c);
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes, registration survives" 0
    (Metrics.counter_value c)

let test_metrics_histogram () =
  Metrics.reset ();
  let h = Metrics.histogram "test.obs.histo" in
  List.iter (Metrics.observe h) [ 1; 2; 3; 100; 0 ];
  let stats =
    match List.assoc_opt "test.obs.histo" (Metrics.snapshot ()).Metrics.histograms with
    | Some s -> s
    | None -> Alcotest.fail "histogram missing from snapshot"
  in
  Alcotest.(check int) "count" 5 stats.Metrics.count;
  Alcotest.(check int) "sum" 106 stats.Metrics.sum;
  Alcotest.(check int) "min" 0 stats.Metrics.min;
  Alcotest.(check int) "max" 100 stats.Metrics.max;
  (* pow2 buckets by inclusive upper bound: 0; 1; 2-3 (two hits); 64-127 *)
  Alcotest.(check (list (pair int int)))
    "buckets" [ (0, 1); (1, 1); (3, 2); (127, 1) ]
    stats.Metrics.buckets

let test_metrics_snapshot_sorted () =
  Metrics.reset ();
  Metrics.incr (Metrics.counter "test.obs.zz");
  Metrics.incr (Metrics.counter "test.obs.aa");
  let names = List.map fst (Metrics.snapshot ()).Metrics.counters in
  Alcotest.(check bool) "both present" true
    (List.mem "test.obs.aa" names && List.mem "test.obs.zz" names);
  Alcotest.(check (list string)) "sorted" (List.sort compare names) names;
  (* idle instruments stay out of the snapshot entirely *)
  ignore (Metrics.counter "test.obs.idle");
  Alcotest.(check bool) "zero counter omitted" false
    (List.mem_assoc "test.obs.idle" (Metrics.snapshot ()).Metrics.counters)

(* Bucket boundaries: bucket 0 holds v <= 0; bucket i holds
   2^(i-1) <= v < 2^i; everything past the last bucket clamps into it. *)
let test_metrics_bucket_boundaries () =
  Alcotest.(check int) "v = 0" 0 (Metrics.bucket_of 0);
  Alcotest.(check int) "v = -7" 0 (Metrics.bucket_of (-7));
  Alcotest.(check int) "v = min_int" 0 (Metrics.bucket_of min_int);
  Alcotest.(check int) "v = 1" 1 (Metrics.bucket_of 1);
  Alcotest.(check int) "v = 2" 2 (Metrics.bucket_of 2);
  Alcotest.(check int) "v = 3" 2 (Metrics.bucket_of 3);
  Alcotest.(check int) "v = 4" 3 (Metrics.bucket_of 4);
  (* the power-of-two edges across the whole in-range span *)
  for k = 1 to Metrics.n_buckets - 2 do
    Alcotest.(check int)
      (Printf.sprintf "v = 2^%d" k)
      (k + 1)
      (Metrics.bucket_of (1 lsl k));
    Alcotest.(check int)
      (Printf.sprintf "v = 2^%d - 1" k)
      k
      (Metrics.bucket_of ((1 lsl k) - 1))
  done;
  (* past the last bucket: clamp, never an out-of-bounds index *)
  let last = Metrics.n_buckets - 1 in
  Alcotest.(check int) "v = 2^31" last (Metrics.bucket_of (1 lsl 31));
  Alcotest.(check int) "v = max_int" last (Metrics.bucket_of max_int)

let test_metrics_bucket_uppers () =
  Metrics.reset ();
  let h = Metrics.histogram "test.obs.bounds" in
  List.iter (Metrics.observe h) [ 0; 1; 2; 3; 4; max_int ];
  let stats =
    match
      List.assoc_opt "test.obs.bounds" (Metrics.snapshot ()).Metrics.histograms
    with
    | Some s -> s
    | None -> Alcotest.fail "histogram missing from snapshot"
  in
  (* uppers are inclusive: 0 | 1 | 2-3 | 4-7 | ... | clamp bucket, whose
     upper bound is 2^31 - 1 regardless of the actual observed max *)
  Alcotest.(check (list (pair int int)))
    "boundary buckets"
    [ (0, 1); (1, 1); (3, 2); (7, 1); ((1 lsl 31) - 1, 1) ]
    stats.Metrics.buckets;
  Alcotest.(check int) "max survives the clamp" max_int stats.Metrics.max

let test_metrics_percentile () =
  Metrics.reset ();
  let stats_of_obs obs =
    Metrics.reset ();
    let h = Metrics.histogram "test.obs.pct" in
    List.iter (Metrics.observe h) obs;
    match
      List.assoc_opt "test.obs.pct" (Metrics.snapshot ()).Metrics.histograms
    with
    | Some s -> s
    | None -> Alcotest.fail "histogram missing"
  in
  (* empty histogram reads 0 everywhere (an unobserved instrument never
     reaches the snapshot, so build the zero stats directly) *)
  let empty =
    { Metrics.count = 0; sum = 0; min = 0; max = 0; buckets = [] }
  in
  Alcotest.(check (float 0.0)) "empty p50" 0.0 (Metrics.percentile empty 0.5);
  Alcotest.(check (float 0.0)) "empty p999" 0.0
    (Metrics.percentile empty 0.999);
  (* a single value is every percentile *)
  let one = stats_of_obs [ 37 ] in
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "single p%g" (q *. 100.0))
        37.0 (Metrics.percentile one q))
    [ 0.0; 0.5; 0.99; 1.0 ];
  (* percentiles clamp to the observed extremes, not bucket bounds *)
  let two = stats_of_obs [ 10; 1000 ] in
  Alcotest.(check (float 0.0)) "low clamps to min" 10.0
    (Metrics.percentile two 0.0);
  Alcotest.(check (float 0.0)) "high clamps to max" 1000.0
    (Metrics.percentile two 1.0);
  (* a known distribution: 99 fast observations, one slow outlier.  The
     p50 stays in the fast bucket, the p999 lands in the outlier's one —
     within power-of-two bucket resolution. *)
  let dist = stats_of_obs (List.init 99 (fun _ -> 100) @ [ 100_000 ]) in
  let p50 = Metrics.percentile dist 0.5
  and p99 = Metrics.percentile dist 0.99
  and p999 = Metrics.percentile dist 0.999 in
  Alcotest.(check bool)
    (Printf.sprintf "p50 %.0f in the fast bucket" p50)
    true
    (p50 >= 64.0 && p50 <= 127.0);
  Alcotest.(check bool)
    (Printf.sprintf "p999 %.0f reaches the outlier" p999)
    true
    (p999 > 1000.0 && p999 <= 100_000.0);
  Alcotest.(check bool) "monotone" true (p50 <= p99 && p99 <= p999)

let test_metrics_scoped () =
  Metrics.reset ();
  let c = Metrics.counter "test.obs.scoped.c" in
  let h = Metrics.histogram "test.obs.scoped.h" in
  Metrics.add c 10;
  Metrics.observe h 5;
  let (result, inner) =
    Metrics.scoped (fun () ->
        Alcotest.(check int) "scope starts clean" 0 (Metrics.counter_value c);
        Metrics.add c 3;
        Metrics.observe h 100;
        "done")
  in
  Alcotest.(check string) "result passed through" "done" result;
  Alcotest.(check int) "inner sees only the scope" 3
    (List.assoc "test.obs.scoped.c" inner.Metrics.counters);
  let inner_h = List.assoc "test.obs.scoped.h" inner.Metrics.histograms in
  Alcotest.(check int) "inner histogram count" 1 inner_h.Metrics.count;
  Alcotest.(check int) "inner histogram max" 100 inner_h.Metrics.max;
  (* the surrounding accumulation is restored plus the scope's own *)
  Alcotest.(check int) "outer total restored" 13 (Metrics.counter_value c);
  let outer_h =
    List.assoc "test.obs.scoped.h" (Metrics.snapshot ()).Metrics.histograms
  in
  Alcotest.(check int) "outer histogram count" 2 outer_h.Metrics.count;
  (* exception-safe: the saved totals come back even when f raises *)
  (try
     ignore (Metrics.scoped (fun () -> Metrics.add c 999; failwith "boom"))
   with Failure _ -> ());
  Alcotest.(check int) "restored after exception" 13 (Metrics.counter_value c)

(* -- trace sink and ring --------------------------------------------------- *)

let test_trace_disabled_is_silent () =
  Trace.set_sink None;
  Trace.clear_tail ();
  Alcotest.(check bool) "disabled" false (Trace.enabled ());
  (* emit_at without the guard: documented to drop silently when disabled *)
  Trace.emit_at ~ts:1 ~site:0 (Event.Cell_write { cell = 1 });
  Alcotest.(check (list string)) "nothing in the ring" [] (Trace.tail ())

let test_trace_record_collects_in_order () =
  let (x, events) =
    Trace.record (fun () ->
        Trace.emit (Event.Cell_write { cell = 1 });
        Trace.emit (Event.Cell_read { cell = 1; label = "t" });
        42)
  in
  Alcotest.(check int) "result passed through" 42 x;
  Alcotest.(check (list string)) "both events, emission order"
    [ "cell_write"; "cell_read" ]
    (List.map (fun (e : Event.t) -> Event.name e.Event.kind) events);
  Alcotest.(check bool) "sink restored (disabled) after record" false
    (Trace.enabled ())

let test_trace_record_restores_on_exception () =
  (try
     ignore
       (Trace.record (fun () ->
            Trace.emit (Event.Cell_write { cell = 2 });
            failwith "boom"))
   with Failure _ -> ());
  Alcotest.(check bool) "sink restored after exception" false
    (Trace.enabled ())

let test_trace_tail_keeps_last () =
  Trace.clear_tail ();
  let ((), _) =
    Trace.record (fun () ->
        for i = 1 to 100 do
          Trace.emit (Event.Cell_write { cell = i })
        done)
  in
  let tail = Trace.tail ~n:5 () in
  Alcotest.(check int) "asked for 5" 5 (List.length tail);
  (* oldest first: the last element renders the most recent event *)
  let last = List.nth tail 4 in
  Alcotest.(check bool)
    (Printf.sprintf "most recent event mentions cell 100: %s" last)
    true (contains "100" last)

(* -- Chrome exporter ------------------------------------------------------- *)

(* No JSON parser in the test universe; check the structural frame and that
   span begin/end pairs survive export.  (fdbsim's own CI smoke validates a
   full trace with an external parser.) *)
let test_chrome_export () =
  let events =
    [ ev (Event.Dispatch_start { txn = 0; label = "count R" });
      ev (Event.Cell_write { cell = 1 });
      ev (Event.Dispatch_end { txn = 0; label = "count R" });
      ev
        (Event.Dg_send
           { fab = 1; src = 0; dst = 1; sent = 1; delivered = 0; faulted = 0;
             in_flight = 1 }) ]
  in
  let json = Chrome.to_json events in
  Alcotest.(check bool) "opens a traceEvents array" true
    (count_occurrences "\"traceEvents\"" json = 1);
  Alcotest.(check int) "one span begin" 1 (count_occurrences "\"ph\":\"B\"" json);
  Alcotest.(check int) "one span end" 1 (count_occurrences "\"ph\":\"E\"" json);
  Alcotest.(check bool) "datagram gets a counter sample" true
    (count_occurrences "\"ph\":\"C\"" json >= 1);
  Alcotest.(check int) "balanced braces" (count_occurrences "{" json)
    (count_occurrences "}" json);
  Alcotest.(check int) "balanced brackets" (count_occurrences "[" json)
    (count_occurrences "]" json)

(* -- trace oracles: red on doctored traces --------------------------------- *)

let names vs = List.map (fun v -> v.Trace_oracle.invariant) vs

let test_oracle_reply_without_ack () =
  let trace =
    [ ev (Event.Replica_commit { index = 1; client = 1; seq = 0; backed = true });
      ev (Event.Replica_reply { client = 1; seq = 0; status = "committed" }) ]
  in
  Alcotest.(check (list string)) "unacked reply caught"
    [ "ack_before_reply" ]
    (names (Trace_oracle.check trace));
  let acked =
    [ ev (Event.Replica_commit { index = 1; client = 1; seq = 0; backed = true });
      ev (Event.Replica_ack { upto = 2 });
      ev (Event.Replica_reply { client = 1; seq = 0; status = "committed" }) ]
  in
  Alcotest.(check (list string)) "acked reply passes" []
    (names (Trace_oracle.check acked))

let test_oracle_double_write () =
  let trace =
    [ ev (Event.Cell_write { cell = 7 }); ev (Event.Cell_write { cell = 7 }) ]
  in
  Alcotest.(check (list string)) "double write caught"
    [ "single_assignment" ]
    (names (Trace_oracle.check trace))

let test_oracle_conservation () =
  let bad =
    ev
      (Event.Dg_send
         { fab = 1; src = 0; dst = 1; sent = 3; delivered = 1; faulted = 0;
           in_flight = 1 })
  in
  Alcotest.(check (list string)) "broken ledger caught"
    [ "fabric_conservation" ]
    (names (Trace_oracle.check [ bad ]))

let test_oracle_replay_count () =
  let trace =
    [ ev (Event.Replica_promote { suffix = 2 });
      ev (Event.Replica_replay { index = 4 }) ]
  in
  Alcotest.(check (list string)) "short replay caught"
    [ "exact_suffix_replay" ]
    (names (Trace_oracle.check trace));
  let early =
    [ ev (Event.Replica_replay { index = 4 });
      ev (Event.Replica_promote { suffix = 0 }) ]
  in
  Alcotest.(check (list string)) "replay before promotion caught"
    [ "exact_suffix_replay" ]
    (names (Trace_oracle.check early))

let test_oracle_dispatch_nesting () =
  let trace =
    [ ev (Event.Dispatch_start { txn = 0; label = "a" });
      ev (Event.Dispatch_start { txn = 1; label = "b" });
      ev (Event.Dispatch_end { txn = 1; label = "b" });
      ev (Event.Dispatch_end { txn = 0; label = "a" }) ]
  in
  (* nested start + mismatched end *)
  Alcotest.(check bool) "interleaved spans caught" true
    (List.mem "dispatch_spans" (names (Trace_oracle.check trace)));
  let unclosed = [ ev (Event.Dispatch_start { txn = 0; label = "a" }) ] in
  Alcotest.(check bool) "unclosed span caught" true
    (List.mem "dispatch_spans" (names (Trace_oracle.check unclosed)))

(* -- trace oracles: green (and non-vacuous) on real traces ------------------ *)

let test_pipeline_trace_lawful () =
  let sc = Gen.generate { Gen.default_spec with Gen.seed = 8 } in
  let spec = { Pipeline.schemas = sc.Gen.schemas; initial = sc.Gen.initial } in
  let tagged = List.concat (List.mapi (fun tag s -> List.map (fun q -> (tag, q)) s) sc.Gen.streams) in
  let (_, events) =
    Trace.record (fun () ->
        Pipeline.run ~semantics:Pipeline.Ordered_unique spec tagged)
  in
  let kinds = List.map (fun (e : Event.t) -> Event.name e.Event.kind) events in
  Alcotest.(check bool) "spans present" true (List.mem "dispatch_start" kinds);
  Alcotest.(check bool) "cell writes present" true (List.mem "cell_write" kinds);
  Alcotest.(check (list string)) "pipeline trace lawful" []
    (names (Trace_oracle.check events))

let test_failover_trace_lawful () =
  let sc = Gen.generate { Gen.default_spec with Gen.seed = 2 } in
  let o = Sim.run ~faults:{ Sim.default_faults with Sim.crash = true } ~seed:2 sc in
  Alcotest.(check bool) "sim accepted" true (Oracle.accepted o.Sim.verdict);
  let kinds = List.map (fun (e : Event.t) -> Event.name e.Event.kind) o.Sim.trace in
  (* every invariant must have had something to bite on *)
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " events present") true (List.mem k kinds))
    [ "dg_send"; "dg_deliver"; "replica_commit"; "replica_ack";
      "replica_reply"; "replica_promote"; "replica_crash" ];
  Alcotest.(check (list string)) "failover trace lawful" []
    (names (Trace_oracle.check o.Sim.trace))

let () =
  Alcotest.run "obs"
    [ ( "metrics",
        [ Alcotest.test_case "counters find-or-create and reset" `Quick
            test_metrics_counters;
          Alcotest.test_case "histogram pow2 buckets" `Quick
            test_metrics_histogram;
          Alcotest.test_case "snapshot sorted by name" `Quick
            test_metrics_snapshot_sorted;
          Alcotest.test_case "bucket boundaries" `Quick
            test_metrics_bucket_boundaries;
          Alcotest.test_case "bucket upper bounds in stats" `Quick
            test_metrics_bucket_uppers;
          Alcotest.test_case "percentiles from buckets" `Quick
            test_metrics_percentile;
          Alcotest.test_case "scoped isolates and restores" `Quick
            test_metrics_scoped ] );
      ( "trace",
        [ Alcotest.test_case "disabled sink is silent" `Quick
            test_trace_disabled_is_silent;
          Alcotest.test_case "record collects in order" `Quick
            test_trace_record_collects_in_order;
          Alcotest.test_case "record restores sink on exception" `Quick
            test_trace_record_restores_on_exception;
          Alcotest.test_case "ring keeps the last events" `Quick
            test_trace_tail_keeps_last ] );
      ( "chrome",
        [ Alcotest.test_case "export frame and span pairing" `Quick
            test_chrome_export ] );
      ( "trace-oracle",
        [ Alcotest.test_case "reply without ack" `Quick
            test_oracle_reply_without_ack;
          Alcotest.test_case "cell written twice" `Quick
            test_oracle_double_write;
          Alcotest.test_case "fabric ledger broken" `Quick
            test_oracle_conservation;
          Alcotest.test_case "replay count wrong" `Quick
            test_oracle_replay_count;
          Alcotest.test_case "dispatch spans interleaved" `Quick
            test_oracle_dispatch_nesting;
          Alcotest.test_case "pipeline trace lawful" `Quick
            test_pipeline_trace_lawful;
          Alcotest.test_case "failover trace lawful and non-vacuous" `Slow
            test_failover_trace_lawful ] ) ]
