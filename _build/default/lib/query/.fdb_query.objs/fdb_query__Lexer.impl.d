lib/query/lexer.ml: Buffer Format List Printf String
