open Fdb_relational
module Openloop = Fdb_workload.Openloop
module Metrics = Fdb_obs.Metrics
module Txn = Fdb_txn.Txn

type mode =
  | Sequential
  | Parallel of { domains : int option }
  | Repair of { batch : int }
  | Sharded of { shards : int }

let mode_name = function
  | Sequential -> "sequential"
  | Parallel _ -> "parallel"
  | Repair _ -> "repair"
  | Sharded _ -> "sharded"

type phase_stats = {
  ph_name : string;
  ph_txns : int;
  ph_p50_ns : float;
  ph_p99_ns : float;
  ph_p999_ns : float;
}

type report = {
  tr_mode : string;
  tr_backend : string;
  tr_initial_tuples : int;
  tr_txns : int;
  tr_load_s : float;
  tr_run_s : float;
  tr_throughput : float;
  tr_latency_unit : string;
  tr_p50_ns : float;
  tr_p99_ns : float;
  tr_p999_ns : float;
  tr_failed : int;
  tr_final_tuples : int;
  tr_final_digest : string;
  tr_phases : phase_stats list;
}

let latency_hist = "traffic.latency_ns"

let phase_hist name = "traffic.phase." ^ name ^ ".latency_ns"

(* Wall-clock nanoseconds.  [gettimeofday] only resolves microseconds, so
   sub-microsecond service times land in the lowest buckets; benches that
   care pass a real monotonic nanosecond clock. *)
let default_clock () = Int64.of_float (Unix.gettimeofday () *. 1e9)

(* Content digest of a final state, for cross-backend and cross-mode
   differential checks: equal streams must land equal states no matter
   which layout or executor processed them. *)
let digest_contents per_relation =
  let b = Buffer.create 4096 in
  List.iter
    (fun (name, tuples) ->
      Buffer.add_string b name;
      Buffer.add_char b '\n';
      List.iter
        (fun tup ->
          Buffer.add_string b (Tuple.to_string tup);
          Buffer.add_char b '\n')
        tuples)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) per_relation);
  Digest.to_hex (Digest.string (Buffer.contents b))

let db_contents db =
  List.map
    (fun name ->
      match Database.relation db name with
      | Some r -> (name, Relation.to_list r)
      | None -> (name, []))
    (Database.names db)

(* Bulk-load the initial image on the chosen backend.  [Relation.of_tuples]
   takes the column backend's O(n log n) pack path, so million-tuple loads
   do not rebuild a chunk per tuple. *)
let initial_db ~backend (plan : Openloop.t) =
  List.fold_left
    (fun db schema ->
      let name = Schema.name schema in
      match List.assoc_opt name plan.Openloop.initial with
      | None -> db
      | Some tuples -> (
          match Relation.of_tuples ~backend schema tuples with
          | Ok rel -> Database.replace db name rel
          | Error e -> invalid_arg ("Traffic.drive: " ^ e)))
    (Database.create ~backend plan.Openloop.schemas)
    plan.Openloop.schemas

let percentiles stats =
  ( Metrics.percentile stats 0.50,
    Metrics.percentile stats 0.99,
    Metrics.percentile stats 0.999 )

let stats_of snap name =
  List.assoc_opt name snap.Metrics.histograms
  |> Option.value
       ~default:{ Metrics.count = 0; sum = 0; min = 0; max = 0; buckets = [] }

(* One transaction at a time against the chosen backend — the sequential
   reference path, and the only mode with true per-transaction service
   times.  The database version chain is rolled forward without retention,
   so million-tuple runs hold one version (plus the in-flight copy). *)
let run_sequential ~clock (plan : Openloop.t) db0 =
  let h = Metrics.histogram latency_hist in
  let phase_hists =
    List.map
      (fun (name, start, stop) ->
        (Metrics.histogram (phase_hist name), start, stop))
      plan.Openloop.phase_bounds
  in
  let db = ref db0 in
  let failed = ref 0 in
  let n = Array.length plan.Openloop.stream in
  let t0 = clock () in
  for i = 0 to n - 1 do
    let (_tenant, q) = plan.Openloop.stream.(i) in
    let s = clock () in
    let (resp, db') = Txn.translate q !db in
    let e = clock () in
    let ns = Int64.to_int (Int64.sub e s) in
    Metrics.observe h ns;
    List.iter
      (fun (ph, start, stop) -> if i >= start && i < stop then Metrics.observe ph ns)
      phase_hists;
    (match resp with Txn.Failed _ -> incr failed | _ -> ());
    db := db'
  done;
  let t1 = clock () in
  let run_s = Int64.to_float (Int64.sub t1 t0) /. 1e9 in
  (run_s, !failed, db_contents !db)

(* The stream cut into microbatches, each run through a [Pipeline]
   execution mode against the state the previous batch left.  The modes
   consume a [db_spec] (tuple lists), so state is re-materialized between
   batches — per-batch latency includes that handoff, which is why this
   path is for differential smoke and mode comparison, not million-tuple
   sustained-throughput claims (use [Sequential] for those). *)
let run_batched ~clock ~mode ~microbatch (plan : Openloop.t) =
  let h = Metrics.histogram latency_hist in
  let stream = Array.of_list (Openloop.tagged plan) in
  let n = Array.length stream in
  let pool =
    match mode with
    | Parallel { domains } -> Some (Fdb_par.Pool.create ?domains ())
    | Repair _ -> Some (Fdb_par.Pool.create ())
    | _ -> None
  in
  let current = ref plan.Openloop.initial in
  let failed = ref 0 in
  let t0 = clock () in
  let i = ref 0 in
  while !i < n do
    let len = min microbatch (n - !i) in
    let batch = Array.to_list (Array.sub stream !i len) in
    let spec =
      { Pipeline.schemas = plan.Openloop.schemas; initial = !current }
    in
    let s = clock () in
    let (responses, final_db) =
      match mode with
      | Sequential -> assert false
      | Parallel _ ->
          let r =
            Pipeline.run_parallel ~semantics:Pipeline.Ordered_unique ?pool
              spec batch
          in
          (r.Pipeline.par_responses, r.Pipeline.par_final_db)
      | Repair { batch = b } ->
          let r = Pipeline.run_repair ~batch:b ?pool spec batch in
          (r.Pipeline.rep_responses, r.Pipeline.rep_final_db)
      | Sharded { shards } ->
          let r = Pipeline.run_sharded ~shards spec batch in
          (r.Pipeline.sh_responses, r.Pipeline.sh_final_db)
    in
    let e = clock () in
    Metrics.observe h (Int64.to_int (Int64.sub e s));
    List.iter
      (fun (_, resp) ->
        match resp with Pipeline.Failed _ -> incr failed | _ -> ())
      responses;
    current := final_db;
    i := !i + len
  done;
  let t1 = clock () in
  Option.iter Fdb_par.Pool.shutdown pool;
  let run_s = Int64.to_float (Int64.sub t1 t0) /. 1e9 in
  (run_s, !failed, !current)

let drive ?(mode = Sequential) ?(microbatch = 512)
    ?(backend = Relation.Btree_backend 8) ?(clock = default_clock)
    (plan : Openloop.t) =
  if microbatch < 1 then invalid_arg "Traffic.drive: microbatch < 1";
  let load0 = clock () in
  let db0 =
    match mode with Sequential -> Some (initial_db ~backend plan) | _ -> None
  in
  let load_s =
    Int64.to_float (Int64.sub (clock ()) load0) /. 1e9
  in
  let ((run_s, failed, final), snap) =
    Metrics.scoped (fun () ->
        match mode with
        | Sequential -> run_sequential ~clock plan (Option.get db0)
        | _ -> run_batched ~clock ~mode ~microbatch plan)
  in
  let txns = Openloop.total_txns plan in
  let (p50, p99, p999) = percentiles (stats_of snap latency_hist) in
  let phases =
    match mode with
    | Sequential ->
        List.map
          (fun (name, start, stop) ->
            let (p50, p99, p999) =
              percentiles (stats_of snap (phase_hist name))
            in
            {
              ph_name = name;
              ph_txns = stop - start;
              ph_p50_ns = p50;
              ph_p99_ns = p99;
              ph_p999_ns = p999;
            })
          plan.Openloop.phase_bounds
    | _ -> []
  in
  {
    tr_mode = mode_name mode;
    tr_backend = Relation.backend_name backend;
    tr_initial_tuples = plan.Openloop.spec.Openloop.initial_tuples;
    tr_txns = txns;
    tr_load_s = load_s;
    tr_run_s = run_s;
    tr_throughput = (if run_s > 0.0 then float_of_int txns /. run_s else 0.0);
    tr_latency_unit =
      (match mode with Sequential -> "txn" | _ -> "microbatch");
    tr_p50_ns = p50;
    tr_p99_ns = p99;
    tr_p999_ns = p999;
    tr_failed = failed;
    tr_final_tuples =
      List.fold_left (fun acc (_, ts) -> acc + List.length ts) 0 final;
    tr_final_digest = digest_contents final;
    tr_phases = phases;
  }
