examples/tree_sharing.ml: Fdb_persistent Fdb_relational Format List Printf Relation Schema Tuple Value
