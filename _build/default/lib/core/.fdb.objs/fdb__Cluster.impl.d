lib/core/cluster.ml: Fabric Fdb_net Fdb_query List Pipeline Topology
