open Fdb_relational
module Ast = Fdb_query.Ast
module Pred = Fdb_query.Pred
module Plan = Fdb_query.Plan

(* Plan-path hit rates: which access path the planner chose, per analyzed
   query.  Counters are always on; the event is traced only when a sink is
   installed. *)
let m_point = Fdb_obs.Metrics.counter "plan.path.point"
let m_range = Fdb_obs.Metrics.counter "plan.path.range"
let m_full = Fdb_obs.Metrics.counter "plan.path.full"

let note_plan rel (plan : Plan.t) =
  (match plan.Plan.path with
  | Plan.Point_lookup _ -> Fdb_obs.Metrics.incr m_point
  | Plan.Range_scan _ -> Fdb_obs.Metrics.incr m_range
  | Plan.Full_scan -> Fdb_obs.Metrics.incr m_full);
  if Fdb_obs.Trace.enabled () then
    Fdb_obs.Trace.emit
      (Fdb_obs.Event.Plan_chosen { rel; path = Plan.to_string plan });
  plan

(* Indexed-planner decision counters.  [plan.scan_fallback] counts only the
   analyses made {e with a catalog in force} that still ended in a full
   scan — the miss rate of the catalog, not of the planner at large. *)
let m_ixprobe = Fdb_obs.Metrics.counter "plan.index_probe"
let m_ixonly = Fdb_obs.Metrics.counter "plan.index_only"
let m_ixagg = Fdb_obs.Metrics.counter "plan.index_aggregate"
let m_fallback = Fdb_obs.Metrics.counter "plan.scan_fallback"

let note_iplan rel (ip : Plan.iplan) =
  (match ip.Plan.ipath with
  | Plan.Primary (Plan.Point_lookup _) -> Fdb_obs.Metrics.incr m_point
  | Plan.Primary (Plan.Range_scan _) -> Fdb_obs.Metrics.incr m_range
  | Plan.Primary Plan.Full_scan ->
      Fdb_obs.Metrics.incr m_full;
      Fdb_obs.Metrics.incr m_fallback
  | Plan.Index_scan { only = true; _ } -> Fdb_obs.Metrics.incr m_ixonly
  | Plan.Index_scan { only = false; _ } -> Fdb_obs.Metrics.incr m_ixprobe
  | Plan.Index_group _ -> Fdb_obs.Metrics.incr m_ixagg);
  if Fdb_obs.Trace.enabled () then begin
    Fdb_obs.Trace.emit
      (Fdb_obs.Event.Plan_chosen { rel; path = Plan.iplan_to_string ip });
    match ip.Plan.ipath with
    | Plan.Primary _ -> ()
    | Plan.Index_scan { ix; _ } | Plan.Index_group { ix; _ } ->
        Fdb_obs.Trace.emit
          (Fdb_obs.Event.Index_probe
             {
               rel;
               index = ix.Plan.ix_name;
               kind = Plan.index_kind_name ix.Plan.ix_kind;
             })
  end;
  ip

module Ix = Fdb_index.Index
module Parser = Fdb_query.Parser

type response =
  | Inserted of bool
  | Found of Tuple.t option
  | Deleted of bool
  | Selected of Tuple.t list
  | Counted of int
  | Aggregated of Value.t option
  | Updated of int
  | Joined of Tuple.t list
  | Failed of string

let response_equal a b =
  match (a, b) with
  | (Inserted x, Inserted y) -> x = y
  | (Found x, Found y) -> Option.equal Tuple.equal x y
  | (Deleted x, Deleted y) -> x = y
  | (Selected x, Selected y) -> List.equal Tuple.equal x y
  | (Counted x, Counted y) -> x = y
  | (Aggregated x, Aggregated y) -> Option.equal Value.equal x y
  | (Updated x, Updated y) -> x = y
  | (Joined x, Joined y) -> List.equal Tuple.equal x y
  | (Failed x, Failed y) -> String.equal x y
  | ( ( Inserted _ | Found _ | Deleted _ | Selected _ | Counted _
      | Aggregated _ | Updated _ | Joined _ | Failed _ ),
      _ ) ->
      false

let pp_tuples ppf ts =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       Tuple.pp)
    ts

let pp_response ppf = function
  | Inserted b -> Format.fprintf ppf "inserted %b" b
  | Found None -> Format.fprintf ppf "found nothing"
  | Found (Some t) -> Format.fprintf ppf "found %a" Tuple.pp t
  | Deleted b -> Format.fprintf ppf "deleted %b" b
  | Selected ts -> Format.fprintf ppf "selected %a" pp_tuples ts
  | Counted n -> Format.fprintf ppf "counted %d" n
  | Aggregated None -> Format.fprintf ppf "aggregated nothing"
  | Aggregated (Some v) -> Format.fprintf ppf "aggregated %a" Value.pp v
  | Updated n -> Format.fprintf ppf "updated %d" n
  | Joined ts -> Format.fprintf ppf "joined %a" pp_tuples ts
  | Failed msg -> Format.fprintf ppf "failed: %s" msg

type t = Database.t -> response * Database.t

let fail db msg = (Failed msg, db)

let with_relation db rel k =
  match Database.relation db rel with
  | None -> fail db (Printf.sprintf "unknown relation %s" rel)
  | Some r -> k r

let resolve_columns schema cols =
  let rec go = function
    | [] -> Ok []
    | c :: rest -> (
        match Schema.column_index schema c with
        | None ->
            Error
              (Printf.sprintf "relation %s has no column %s"
                 (Schema.name schema) c)
        | Some i -> Result.map (fun is -> i :: is) (go rest))
  in
  go cols

let rel_bound = function
  | None -> None
  | Some { Plan.value; inclusive } ->
      Some
        (if inclusive then Relation.Inclusive value
         else Relation.Exclusive value)

(* Drive [step] over the tuples reachable through [plan]'s access path.
   Checking the residual predicate is the caller's responsibility; the
   absorbed key atoms are enforced by the path itself. *)
let fold_path r plan step acc =
  match plan.Plan.path with
  | Plan.Point_lookup key -> (
      match Relation.find_key r key with
      | Some tup -> step acc tup
      | None -> acc)
  | Plan.Range_scan { lo; hi } ->
      Relation.range_fold ?lo:(rel_bound lo) ?hi:(rel_bound hi) step acc r
  | Plan.Full_scan -> Relation.fold step acc r

type tracker = {
  read_key : rel:string -> Value.t -> unit;
  read_range :
    rel:string -> lo:Relation.bound option -> hi:Relation.bound option -> unit;
  read_all : rel:string -> unit;
  write : rel:string -> removed:Tuple.t list -> added:Tuple.t list -> unit;
}

(* Footprint recording is strictly observational: every call below sits on a
   path [translate] already takes, so the tracked and untracked transactions
   compute identical (response, database) pairs.  [Failed] outcomes record
   nothing — a failed transaction's response is database-independent, so no
   concurrent write can damage it. *)
let translate_with ?index tk query : t =
  let read_key rel key =
    match tk with Some t -> t.read_key ~rel key | None -> ()
  in
  let read_all rel = match tk with Some t -> t.read_all ~rel | None -> () in
  (* The catalog (which indexes exist) is fixed at translate time; the
     store (their current contents) is read at execution time, because
     [run_queries] translates a whole stream upfront and the indexes
     advance with every write in between. *)
  let ix_descs rel =
    match index with
    | Some u -> Ix.Session.descs_for u.Ix.Session.session rel
    | None -> []
  in
  let ix_find name =
    match index with
    | None -> None
    | Some u -> Ix.Store.find (Ix.Session.store u.Ix.Session.session) name
  in
  let ix_maintains =
    match index with Some u -> u.Ix.Session.maintain | None -> false
  in
  let ix_write rel db' ~removed ~added =
    match index with
    | Some u when removed <> [] || added <> [] ->
        let base =
          match Database.relation db' rel with
          | Some r -> Relation.size r
          | None -> 0
        in
        Ix.Session.on_write u ~rel ~base ~removed ~added
    | Some _ | None -> ()
  in
  let read_path rel (plan : Plan.t) =
    match tk with
    | None -> ()
    | Some t -> (
        match plan.Plan.path with
        | Plan.Point_lookup key -> t.read_key ~rel key
        | Plan.Range_scan { lo; hi } ->
            t.read_range ~rel ~lo:(rel_bound lo) ~hi:(rel_bound hi)
        | Plan.Full_scan -> t.read_all ~rel)
  in
  let wrote rel ~removed ~added =
    match tk with Some t -> t.write ~rel ~removed ~added | None -> ()
  in
  match query with
  | Ast.Insert { rel; values } ->
      let tuple = Tuple.make values in
      fun db -> (
        match Database.insert db ~rel tuple with
        | Ok (db', added) ->
            (* An insert reads exactly one key: its own (to detect the
               duplicate); it writes the tuple only when actually added. *)
            read_key rel (Tuple.key tuple);
            if added then begin
              wrote rel ~removed:[] ~added:[ tuple ];
              ix_write rel db' ~removed:[] ~added:[ tuple ]
            end;
            (Inserted added, db')
        | Error e -> fail db e)
  | Ast.Find { rel; key } ->
      fun db -> (
        match Database.find db ~rel ~key with
        | Ok t ->
            read_key rel key;
            (Found t, db)
        | Error e -> fail db e)
  | Ast.Delete { rel; key } ->
      fun db -> (
        match Database.delete db ~rel ~key with
        | Ok (db', found) ->
            read_key rel key;
            (if found && (Option.is_some tk || ix_maintains) then
               (* [Database.delete] does not return the removed tuple; fetch
                  it from the pre-delete version for the effect record. *)
               match Database.find db ~rel ~key with
               | Ok (Some t) ->
                   wrote rel ~removed:[ t ] ~added:[];
                   ix_write rel db' ~removed:[ t ] ~added:[]
               | Ok None | Error _ -> ());
            (Deleted found, db')
        | Error e -> fail db e)
  | Ast.Select { rel; cols; where } ->
      fun db ->
        with_relation db rel (fun r ->
            let schema = Relation.schema r in
            (* Compiling only the residual is sound: absorbed atoms mention
               the key column alone, which every schema has. *)
            let run_plan plan =
              match Pred.compile schema plan.Plan.residual with
              | Error e -> fail db e
              | Ok residual -> (
                  let project =
                    match cols with
                    | None -> Ok None
                    | Some cs ->
                        Result.map Option.some (resolve_columns schema cs)
                  in
                  match project with
                  | Error e -> fail db e
                  | Ok idxs ->
                      read_path rel plan;
                      let emit =
                        match idxs with
                        | None -> fun acc tup -> tup :: acc
                        | Some is ->
                            fun acc tup ->
                              Array.of_list (List.map (Tuple.get tup) is)
                              :: acc
                      in
                      let step acc tup =
                        if residual tup then emit acc tup else acc
                      in
                      (Selected (List.rev (fold_path r plan step [])), db))
            in
            match ix_descs rel with
            | [] -> run_plan (note_plan rel (Plan.analyze schema where))
            | descs -> (
                let wanted =
                  match cols with
                  | None -> Plan.Want_all
                  | Some cs -> Plan.Want_cols cs
                in
                let ip =
                  note_iplan rel
                    (Plan.analyze_indexed schema ~indexes:descs ~wanted where)
                in
                match ip.Plan.ipath with
                | Plan.Primary path ->
                    run_plan { Plan.path; residual = ip.Plan.iresidual }
                | Plan.Index_group _ ->
                    fail db "select cannot use a derived index"
                | Plan.Index_scan { ix; ilo; ihi; only } -> (
                    match ix_find ix.Plan.ix_name with
                    | None ->
                        fail db
                          (Printf.sprintf "index %s is not built"
                             ix.Plan.ix_name)
                    | Some built when only -> (
                        (* Index-only: residual and projection both resolve
                           against the stored payload; results are re-sorted
                           into base key order, which range probes (ordered
                           by indexed value) do not deliver. *)
                        let ischema = Ix.stored_schema built in
                        match Pred.compile ischema ip.Plan.iresidual with
                        | Error e -> fail db e
                        | Ok residual -> (
                            let out_cols =
                              match cols with
                              | Some cs -> cs
                              | None ->
                                  List.map fst (Schema.columns schema)
                            in
                            match resolve_columns ischema out_cols with
                            | Error e -> fail db e
                            | Ok is ->
                                read_all rel;
                                let hits =
                                  Ix.probe_fold built ~ilo ~ihi
                                    (fun acc pk payload ->
                                      if residual payload then
                                        ( pk,
                                          Array.of_list
                                            (List.map (Tuple.get payload) is)
                                        )
                                        :: acc
                                      else acc)
                                    []
                                in
                                let sorted =
                                  List.sort
                                    (fun (a, _) (b, _) -> Value.compare a b)
                                    hits
                                in
                                (Selected (List.map snd sorted), db)))
                    | Some built -> (
                        (* Probe-then-fetch: entries give primary keys; the
                           base tuple carries the residual columns and the
                           projection. *)
                        match Pred.compile schema ip.Plan.iresidual with
                        | Error e -> fail db e
                        | Ok residual -> (
                            let project =
                              match cols with
                              | None -> Ok None
                              | Some cs ->
                                  Result.map Option.some
                                    (resolve_columns schema cs)
                            in
                            match project with
                            | Error e -> fail db e
                            | Ok idxs ->
                                read_all rel;
                                let emit tup =
                                  match idxs with
                                  | None -> tup
                                  | Some is ->
                                      Array.of_list
                                        (List.map (Tuple.get tup) is)
                                in
                                let hits =
                                  Ix.probe_fold built ~ilo ~ihi
                                    (fun acc pk _ ->
                                      match Relation.find_key r pk with
                                      | Some tup when residual tup ->
                                          (pk, emit tup) :: acc
                                      | Some _ | None -> acc)
                                    []
                                in
                                let sorted =
                                  List.sort
                                    (fun (a, _) (b, _) -> Value.compare a b)
                                    hits
                                in
                                (Selected (List.map snd sorted), db))))))
  | Ast.Count { rel; where } -> (
      match where with
      | Ast.True ->
          fun db ->
            with_relation db rel (fun r ->
                read_all rel;
                (Counted (Relation.size r), db))
      | _ ->
          fun db ->
            with_relation db rel (fun r ->
                let schema = Relation.schema r in
                let run_plan plan =
                  match Pred.compile schema plan.Plan.residual with
                  | Error e -> fail db e
                  | Ok residual ->
                      read_path rel plan;
                      let step acc tup =
                        if residual tup then acc + 1 else acc
                      in
                      (Counted (fold_path r plan step 0), db)
                in
                match ix_descs rel with
                | [] -> run_plan (note_plan rel (Plan.analyze schema where))
                | descs -> (
                    match
                      Plan.analyze_group schema ~indexes:descs ~target:`Count
                        where
                    with
                    | Some ({ Plan.ipath = Plan.Index_group { ix; group }; _ }
                            as ip) -> (
                        match ix_find ix.Plan.ix_name with
                        | None ->
                            fail db
                              (Printf.sprintf "index %s is not built"
                                 ix.Plan.ix_name)
                        | Some built ->
                            ignore (note_iplan rel ip);
                            read_all rel;
                            let n =
                              match Ix.group_lookup built group with
                              | Some stats -> stats.Ix.g_count
                              | None -> 0
                            in
                            (Counted n, db))
                    | Some _ | None -> (
                        let ip =
                          note_iplan rel
                            (Plan.analyze_indexed schema ~indexes:descs
                               ~wanted:(Plan.Want_cols []) where)
                        in
                        match ip.Plan.ipath with
                        | Plan.Primary path ->
                            run_plan
                              { Plan.path; residual = ip.Plan.iresidual }
                        | Plan.Index_group _ ->
                            fail db "count cannot use a derived index here"
                        | Plan.Index_scan { ix; ilo; ihi; only } -> (
                            match ix_find ix.Plan.ix_name with
                            | None ->
                                fail db
                                  (Printf.sprintf "index %s is not built"
                                     ix.Plan.ix_name)
                            | Some built when only -> (
                                match
                                  Pred.compile (Ix.stored_schema built)
                                    ip.Plan.iresidual
                                with
                                | Error e -> fail db e
                                | Ok residual ->
                                    read_all rel;
                                    let n =
                                      Ix.probe_fold built ~ilo ~ihi
                                        (fun acc _ payload ->
                                          if residual payload then acc + 1
                                          else acc)
                                        0
                                    in
                                    (Counted n, db))
                            | Some built -> (
                                match
                                  Pred.compile schema ip.Plan.iresidual
                                with
                                | Error e -> fail db e
                                | Ok residual ->
                                    read_all rel;
                                    let n =
                                      Ix.probe_fold built ~ilo ~ihi
                                        (fun acc pk _ ->
                                          match Relation.find_key r pk with
                                          | Some tup when residual tup ->
                                              acc + 1
                                          | Some _ | None -> acc)
                                        0
                                    in
                                    (Counted n, db)))))))
  | Ast.Aggregate { agg; rel; col; where } ->
      fun db ->
        with_relation db rel (fun r ->
            let schema = Relation.schema r in
            match Pred.compile_aggregate schema agg col where with
            | Error e -> fail db e
            | Ok (step, finish) -> (
                (* [step] tests the full [where] itself; the access path only
                   narrows which tuples are offered to it. *)
                let run_plan plan =
                  read_path rel plan;
                  (Aggregated (finish (fold_path r plan step None)), db)
                in
                match ix_descs rel with
                | [] -> run_plan (note_plan rel (Plan.analyze schema where))
                | descs -> (
                    match
                      Plan.analyze_group schema ~indexes:descs
                        ~target:(`Agg (agg, col)) where
                    with
                    | Some ({ Plan.ipath = Plan.Index_group { ix; group }; _ }
                            as ip) -> (
                        match ix_find ix.Plan.ix_name with
                        | None ->
                            fail db
                              (Printf.sprintf "index %s is not built"
                                 ix.Plan.ix_name)
                        | Some built ->
                            ignore (note_iplan rel ip);
                            read_all rel;
                            let answer =
                              match Ix.group_lookup built group with
                              | Some stats -> (
                                  match agg with
                                  | Ast.Sum -> Some stats.Ix.g_sum
                                  | Ast.Min -> Some stats.Ix.g_min
                                  | Ast.Max -> Some stats.Ix.g_max)
                              | None ->
                                  (* Empty group: exactly the compiled
                                     aggregate's empty answer (a typed zero
                                     for [Sum], [None] for min/max). *)
                                  finish None
                            in
                            (Aggregated answer, db))
                    | Some _ | None -> (
                        (* [Want_base]: [step] reads base column positions,
                           so an index can narrow the probe but never answer
                           from its payload alone — mixed indexed and
                           residual conjuncts split here instead of forcing
                           a full scan. *)
                        let ip =
                          note_iplan rel
                            (Plan.analyze_indexed schema ~indexes:descs
                               ~wanted:Plan.Want_base where)
                        in
                        match ip.Plan.ipath with
                        | Plan.Primary path ->
                            run_plan { Plan.path; residual = where }
                        | Plan.Index_group _ ->
                            fail db "aggregate cannot use this derived index"
                        | Plan.Index_scan { ix; ilo; ihi; only = _ } -> (
                            match ix_find ix.Plan.ix_name with
                            | None ->
                                fail db
                                  (Printf.sprintf "index %s is not built"
                                     ix.Plan.ix_name)
                            | Some built ->
                                read_all rel;
                                let acc =
                                  Ix.probe_fold built ~ilo ~ihi
                                    (fun acc pk _ ->
                                      match Relation.find_key r pk with
                                      | Some tup -> step acc tup
                                      | None -> acc)
                                    None
                                in
                                (Aggregated (finish acc), db))))))
  | Ast.Update { rel; col; value; where } ->
      fun db ->
        with_relation db rel (fun r ->
            let schema = Relation.schema r in
            match Pred.compile_update schema col value where with
            | Error e -> fail db e
            | Ok rewrite ->
                (* [rewrite] tests the full [where]; the plan's key bounds
                   let the single-traversal update skip subtrees that cannot
                   match. *)
                let plan = note_plan rel (Plan.analyze schema where) in
                let (lo, hi) =
                  match plan.Plan.path with
                  | Plan.Point_lookup key ->
                      let b = Some (Relation.Inclusive key) in
                      (b, b)
                  | Plan.Range_scan { lo; hi } -> (rel_bound lo, rel_bound hi)
                  | Plan.Full_scan -> (None, None)
                in
                read_path rel plan;
                let pairs =
                  if Option.is_some tk || ix_maintains then
                    (* Pre-collect the rewrite pairs over the same access
                       path so the effect record (and index maintenance)
                       lists exact removed/added tuples.  The key column
                       cannot change, so removed and added keys coincide. *)
                    fold_path r plan
                      (fun acc tup ->
                        match rewrite tup with
                        | Some tup' -> (tup, tup') :: acc
                        | None -> acc)
                      []
                  else []
                in
                if pairs <> [] then
                  wrote rel
                    ~removed:(List.rev_map fst pairs)
                    ~added:(List.rev_map snd pairs);
                let (r', changed) = Relation.update ?lo ?hi r rewrite in
                if changed = 0 then (Updated 0, db)
                else
                  let db' = Database.replace db rel r' in
                  ix_write rel db'
                    ~removed:(List.rev_map fst pairs)
                    ~added:(List.rev_map snd pairs);
                  (Updated changed, db'))
  | Ast.Join { left; right; on = (lc, rc) } ->
      fun db ->
        with_relation db left (fun lr ->
            with_relation db right (fun rr ->
                match
                  ( Schema.column_index (Relation.schema lr) lc,
                    Schema.column_index (Relation.schema rr) rc )
                with
                | (None, _) ->
                    fail db
                      (Printf.sprintf "relation %s has no column %s" left lc)
                | (_, None) ->
                    fail db
                      (Printf.sprintf "relation %s has no column %s" right rc)
                | (Some li, Some ri) ->
                    read_all left;
                    read_all right;
                    ( Joined
                        (Algebra.join ~left_col:li ~right_col:ri
                           (Relation.to_list lr) (Relation.to_list rr)),
                      db )))

let translate query = translate_with None query
let translate_tracked tk query = translate_with (Some tk) query

let translate_indexed ?tracker u query = translate_with ~index:u tracker query

let translate_string src = Result.map translate (Parser.parse src)

let apply_stream txns db0 =
  (* Tail recursive: transaction streams can be arbitrarily long. *)
  let rec go db resps dbs = function
    | [] -> (List.rev resps, List.rev dbs)
    | txn :: rest ->
        let (resp, db') = txn db in
        go db' (resp :: resps) (db' :: dbs) rest
  in
  go db0 [] [] txns

let run_queries db queries =
  let txns = List.rev (List.rev_map translate queries) in
  let rec go db resps = function
    | [] -> (List.rev resps, db)
    | txn :: rest ->
        let (resp, db') = txn db in
        go db' (resp :: resps) rest
  in
  go db [] txns
