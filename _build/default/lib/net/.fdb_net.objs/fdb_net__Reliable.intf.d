lib/net/reliable.mli: Topology
