(* Cross-layer integration tests: the two execution stacks against each
   other, full client-to-client scenarios over networks (lossy included),
   and end-to-end workload runs. *)

open Fdb
open Fdb_relational
module Ast = Fdb_query.Ast
module Txn = Fdb_txn.Txn
module W = Fdb_workload.Workload
module M = Fdb_merge.Merge
module Topology = Fdb_net.Topology
module Reliable = Fdb_net.Reliable
module Machine = Fdb_rediflow.Machine
module Engine = Fdb_kernel.Engine

(* -- the two stacks agree -------------------------------------------------- *)

(* Map the production interpreter's responses onto the pipeline's. *)
let txn_response_matches (a : Txn.response) (b : Pipeline.response) =
  match (a, b) with
  | (Txn.Inserted x, Pipeline.Inserted y) -> x = y
  | (Txn.Found None, Pipeline.Found []) -> true
  | (Txn.Found (Some t), Pipeline.Found [ u ]) -> Tuple.equal t u
  | (Txn.Deleted x, Pipeline.Deleted y) -> (if x then 1 else 0) = y
  | (Txn.Selected x, Pipeline.Selected y) | (Txn.Joined x, Pipeline.Joined y)
    ->
      List.equal Tuple.equal x y
  | (Txn.Counted x, Pipeline.Counted y) -> x = y
  | (Txn.Aggregated x, Pipeline.Aggregated y) -> Option.equal Value.equal x y
  | (Txn.Updated x, Pipeline.Updated y) -> x = y
  | (Txn.Failed _, Pipeline.Failed _) -> true
  | _ -> false

let build_database spec =
  let db = Database.create spec.Pipeline.schemas in
  List.fold_left
    (fun db (rel, tuples) ->
      match Database.load db ~rel tuples with
      | Ok db -> db
      | Error e -> Alcotest.fail e)
    db spec.Pipeline.initial

let prop_production_equals_pipeline =
  (* On keyed workloads the sequential production interpreter (set
     semantics over persistent relations) and the lenient pipeline in
     Ordered_unique mode must answer identically. *)
  QCheck2.Test.make ~name:"Txn interpreter == lenient pipeline (ordered)"
    ~count:100
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 5 40))
    (fun (seed, txns) ->
      let w =
        W.generate
          { W.default_spec with
            seed;
            transactions = txns;
            insert_pct = 20.0;
            delete_pct = 10.0 }
      in
      let spec = Pipeline.db_spec_of_workload w in
      let tagged = Experiment.merged_workload w in
      let queries = List.map snd tagged in
      let (txn_responses, _) = Txn.run_queries (build_database spec) queries in
      let pipeline =
        (Pipeline.run ~semantics:Pipeline.Ordered_unique spec tagged)
          .Pipeline.responses
      in
      List.for_all2
        (fun a (_, b) -> txn_response_matches a b)
        txn_responses pipeline)

let test_two_stacks_on_script () =
  let script =
    {| insert (1, "a") into R
       insert (2, "b") into R
       find 1 in R
       sum key from R
       update R set val = "z" where key = 2
       find 2 in R
       delete 1 from R
       count R
       select * from R where key >= 0 |}
  in
  let queries =
    match Fdb_query.Parser.parse_script script with
    | Ok qs -> qs
    | Error e -> Alcotest.fail e
  in
  let schemas =
    [ Schema.make ~name:"R" ~cols:[ ("key", Schema.CInt); ("val", Schema.CStr) ] ]
  in
  let spec = { Pipeline.schemas; initial = [] } in
  let (txn_responses, _) = Txn.run_queries (build_database spec) queries in
  let pipeline =
    (Pipeline.run ~semantics:Pipeline.Ordered_unique spec
       (List.map (fun q -> (0, q)) queries))
      .Pipeline.responses
  in
  List.iteri
    (fun i (a, (_, b)) ->
      Alcotest.(check bool)
        (Printf.sprintf "query %d agrees (%s vs %s)" i
           (Format.asprintf "%a" Txn.pp_response a)
           (Format.asprintf "%a" Pipeline.pp_response b))
        true (txn_response_matches a b))
    (List.combine txn_responses pipeline)

(* -- full client-to-client scenario over a lossy transport ------------------ *)

let test_queries_over_lossy_transport () =
  (* Clients serialize query texts over a lossy reliable channel to the
     primary; the merged arrival order is processed by the pipeline; the
     outcome matches a direct run of the same order. *)
  let topo = Topology.star 4 in
  let channel = Reliable.create ~drop_one_in:3 ~seed:5 topo in
  let client_streams =
    [ (1, [ "insert (100, \"x\") into R"; "find 100 in R" ]);
      (2, [ "count R"; "insert (101, \"y\") into R" ]);
      (3, [ "select * from R where key >= 100" ]) ]
  in
  List.iter
    (fun (site, queries) ->
      List.iter (fun src -> Reliable.send channel ~src:site ~dst:0 src) queries)
    client_streams;
  let arrived = Reliable.run_to_quiescence channel in
  Alcotest.(check int) "all queries arrived" 5 (List.length arrived);
  let tagged =
    List.map
      (fun (_, text) -> (0, Fdb_query.Parser.parse_exn text))
      arrived
  in
  let schemas =
    [ Schema.make ~name:"R" ~cols:[ ("key", Schema.CInt); ("val", Schema.CStr) ] ]
  in
  let spec = { Pipeline.schemas; initial = [] } in
  match Pipeline.check_serializable spec tagged with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

(* -- end-to-end cluster on a machine ---------------------------------------- *)

let test_cluster_machine_end_to_end () =
  let w =
    W.generate { W.default_spec with transactions = 30; clients = 3 }
  in
  let spec = Pipeline.db_spec_of_workload w in
  let cluster =
    Cluster.create ~topology:(Topology.bus 4)
      ~mode:(Pipeline.On_machine (Machine.default_config (Topology.hypercube 3)))
      spec
  in
  let sessions =
    List.mapi (fun i stream -> (i + 1, stream)) w.W.client_streams
  in
  let outcome = Cluster.submit cluster sessions in
  Alcotest.(check int) "every query answered" 30
    (List.fold_left
       (fun acc (_, rs) -> acc + List.length rs)
       0 outcome.Cluster.per_site);
  Alcotest.(check bool) "serializable over the machine" true
    (Cluster.serializable outcome cluster);
  let s = outcome.Cluster.report.Pipeline.stats in
  Alcotest.(check int) "no orphans" 0 s.Engine.orphans

(* -- the experiment grid is self-consistent --------------------------------- *)

let test_table_grids_complete () =
  let t1 = Experiment.table1 ~transactions:10 ~initial_tuples:10 () in
  Alcotest.(check int) "table1 grid" 18 (List.length t1);
  let rows = Experiment.ablation_engine_repr () in
  Alcotest.(check int) "A5 rows" 12 (List.length rows);
  (* trees always do less work than lists on the same stream *)
  List.iter
    (fun pct ->
      let find repr =
        List.find
          (fun r -> r.Experiment.e_repr = repr && r.Experiment.e_pct = pct)
          rows
      in
      Alcotest.(check bool)
        (Printf.sprintf "tree cheaper at %.0f%%" pct)
        true
        ((find "two3").Experiment.e_tasks < (find "list").Experiment.e_tasks))
    [ 0.0; 14.0; 38.0 ]

(* -- FEL to database round trip --------------------------------------------- *)

let test_fel_computes_workload_answer () =
  (* Compute a sum both through the database pipeline and through a FEL
     program over the same data. *)
  let keys = [ 3; 14; 15; 92; 65 ] in
  let schemas =
    [ Schema.make ~name:"R" ~cols:[ ("key", Schema.CInt); ("val", Schema.CStr) ] ]
  in
  let spec =
    {
      Pipeline.schemas;
      initial =
        [ ("R",
           List.map
             (fun k -> Tuple.make [ Value.Int k; Value.Str "v" ])
             keys) ];
    }
  in
  let report =
    Pipeline.run spec [ (0, Fdb_query.Parser.parse_exn "sum key from R") ]
  in
  let db_sum =
    match report.Pipeline.responses with
    | [ (_, Pipeline.Aggregated (Some (Value.Int n))) ] -> n
    | _ -> Alcotest.fail "no sum"
  in
  let fel_src =
    Printf.sprintf
      "total:s = if null?:s then 0 else first:s + total:(rest:s), RESULT total:[%s]"
      (String.concat ", " (List.map string_of_int keys))
  in
  match Fdb_fel.Eval.run_string fel_src with
  | Ok (result, _) ->
      Alcotest.(check string) "same sum" (string_of_int db_sum) result
  | Error e -> Alcotest.fail e

let () =
  Alcotest.run "integration"
    [
      ( "stack agreement",
        [
          QCheck_alcotest.to_alcotest prop_production_equals_pipeline;
          Alcotest.test_case "script through both stacks" `Quick
            test_two_stacks_on_script;
        ] );
      ( "distributed",
        [
          Alcotest.test_case "queries over lossy transport" `Quick
            test_queries_over_lossy_transport;
          Alcotest.test_case "cluster on a machine" `Quick
            test_cluster_machine_end_to_end;
        ] );
      ( "experiments",
        [ Alcotest.test_case "grids complete" `Quick test_table_grids_complete ]
      );
      ( "fel",
        [
          Alcotest.test_case "FEL agrees with the database" `Quick
            test_fel_computes_workload_answer;
        ] );
    ]
