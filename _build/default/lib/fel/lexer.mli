(** Mini-FEL lexer.

    Identifiers are alphanumeric words that may contain interior hyphens
    when followed by a letter ([apply-stream] is one identifier; [x - 1]
    and [x-1] are subtractions).  [;;] comments run to end of line. *)

type token =
  | IDENT of string
  | INT of int
  | STRING of string
  | KW of string  (** if, then, else, RESULT *)
  | LBRACKET | RBRACKET
  | LBRACE | RBRACE
  | LPAREN | RPAREN
  | COMMA
  | COLON  (** application *)
  | CARET  (** followed-by *)
  | PARPAR  (** apply-to-all *)
  | OP of string  (** = != < <= > >= + - * / *)

exception Lex_error of string * int

val tokens : string -> token list

val pp_token : Format.formatter -> token -> unit
