module History = Fdb_txn.History
module Wire = Fdb_wire.Wire
module Event = Fdb_obs.Event
module Trace = Fdb_obs.Trace
module Metrics = Fdb_obs.Metrics

let m_appends = Metrics.counter "wal.appends"
let m_syncs = Metrics.counter "wal.syncs"
let m_ckpts = Metrics.counter "wal.checkpoints"
let m_seg_deletes = Metrics.counter "wal.segments_deleted"
let m_replays = Metrics.counter "wal.replays"
let m_recoveries = Metrics.counter "wal.recoveries"
let h_frame_bytes = Metrics.histogram "wal.frame_bytes"
let h_recovered = Metrics.histogram "wal.recovered_versions"

let emit kind = if Trace.enabled () then Trace.emit kind

(* -- stores ----------------------------------------------------------------- *)

module Store = struct
  type t = {
    append : string -> string -> unit;
    sync : string -> unit;
    read : string -> string option;
    list_files : unit -> string list;
    remove : string -> unit;
    close : unit -> unit;
  }
end

module Mem = struct
  type file = { buf : Buffer.t; mutable synced : int }
  type t = { files : (string, file) Hashtbl.t }

  let create () = { files = Hashtbl.create 8 }

  let file m name =
    match Hashtbl.find_opt m.files name with
    | Some f -> f
    | None ->
        let f = { buf = Buffer.create 256; synced = 0 } in
        Hashtbl.replace m.files name f;
        f

  let store m =
    {
      Store.append =
        (fun name bytes -> Buffer.add_string (file m name).buf bytes);
      sync =
        (fun name ->
          let f = file m name in
          f.synced <- Buffer.length f.buf);
      read =
        (fun name ->
          Option.map
            (fun f -> Buffer.contents f.buf)
            (Hashtbl.find_opt m.files name));
      list_files =
        (fun () ->
          List.sort compare
            (Hashtbl.fold (fun k _ acc -> k :: acc) m.files []));
      remove = (fun name -> Hashtbl.remove m.files name);
      close = ignore;
    }

  (* The torn-write fault model: the synced prefix survives; of the
     unsynced suffix, a random prefix made it to "disk" before the kill. *)
  let crash ~rand m =
    Hashtbl.iter
      (fun _ f ->
        let unsynced = Buffer.length f.buf - f.synced in
        if unsynced > 0 then
          Buffer.truncate f.buf (f.synced + Random.State.int rand (unsynced + 1)))
      m.files

  let synced m name =
    match Hashtbl.find_opt m.files name with Some f -> f.synced | None -> 0

  let get m name =
    match Hashtbl.find_opt m.files name with
    | Some f -> Buffer.contents f.buf
    | None -> ""

  let set m name s =
    let f = file m name in
    Buffer.clear f.buf;
    Buffer.add_string f.buf s;
    f.synced <- min f.synced (String.length s)
end

module Fs = struct
  let store ~dir =
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let handles : (string, out_channel) Hashtbl.t = Hashtbl.create 4 in
    let path name = Filename.concat dir name in
    let out name =
      match Hashtbl.find_opt handles name with
      | Some oc -> oc
      | None ->
          let oc =
            open_out_gen
              [ Open_append; Open_creat; Open_binary ]
              0o644 (path name)
          in
          Hashtbl.replace handles name oc;
          oc
    in
    let flush_of name =
      match Hashtbl.find_opt handles name with
      | Some oc -> flush oc
      | None -> ()
    in
    {
      Store.append = (fun name bytes -> output_string (out name) bytes);
      sync = flush_of;
      read =
        (fun name ->
          flush_of name;
          if Sys.file_exists (path name) then
            Some (In_channel.with_open_bin (path name) In_channel.input_all)
          else None);
      list_files =
        (fun () ->
          if Sys.file_exists dir then
            List.sort compare (Array.to_list (Sys.readdir dir))
          else []);
      remove =
        (fun name ->
          (match Hashtbl.find_opt handles name with
          | Some oc ->
              close_out_noerr oc;
              Hashtbl.remove handles name
          | None -> ());
          if Sys.file_exists (path name) then Sys.remove (path name));
      close =
        (fun () ->
          Hashtbl.iter (fun _ oc -> close_out_noerr oc) handles;
          Hashtbl.reset handles);
    }
end

(* -- segment naming --------------------------------------------------------- *)

let segment_name n = Printf.sprintf "seg-%06d.wal" n
let seg_name = segment_name

let segment_number name =
  if
    String.length name = 14
    && String.sub name 0 4 = "seg-"
    && String.sub name 10 4 = ".wal"
  then int_of_string_opt (String.sub name 4 6)
  else None

(* -- writer ------------------------------------------------------------------ *)

type writer = {
  store : Store.t;
  sync_every : int;
  checkpoint_every : int;
  mutable history : History.t;  (* versions [first..appended], shadow *)
  mutable first : int;
  mutable durable : int;
  mutable seg : int;
  mutable unsynced : int;  (* appends since the last sync *)
  mutable since_ckpt : int;
}

let appended w = w.first + History.length w.history - 1
let durable w = w.durable
let segment w = w.seg
let history w = w.history
let latest w = History.latest w.history

(* Write and sync a checkpoint frame as the head of segment [seg]: the
   covered version index, then a one-version archive of that database. *)
let write_checkpoint store ~seg ~upto db =
  let b = Buffer.create 1024 in
  Wire.write_int b upto;
  Buffer.add_string b (Wire.encode_archive (History.create db));
  let fr = Wire.frame ~kind:Wire.Checkpoint (Buffer.contents b) in
  store.Store.append (seg_name seg) fr;
  store.Store.sync (seg_name seg);
  emit (Event.Wal_checkpoint { upto; bytes = String.length fr; segment = seg });
  Metrics.incr m_ckpts;
  Metrics.observe h_frame_bytes (String.length fr)

(* Old segments go only after the new checkpoint is down and synced. *)
let delete_older store ~than =
  List.iter
    (fun name ->
      match segment_number name with
      | Some n when n < than ->
          store.Store.remove name;
          emit (Event.Wal_segment_delete { segment = n });
          Metrics.incr m_seg_deletes
      | _ -> ())
    (store.Store.list_files ())

let sync w =
  if w.durable < appended w || w.unsynced > 0 then begin
    w.store.Store.sync (seg_name w.seg);
    w.durable <- appended w;
    w.unsynced <- 0;
    Metrics.incr m_syncs;
    emit (Event.Wal_sync { upto = w.durable })
  end

let checkpoint w =
  sync w;
  let upto = appended w in
  let seg = w.seg + 1 in
  write_checkpoint w.store ~seg ~upto (latest w);
  w.seg <- seg;
  w.since_ckpt <- 0;
  delete_older w.store ~than:seg

let make ?(sync_every = 1) ?(checkpoint_every = 0) ~store ~first ~seg db =
  if sync_every < 0 then invalid_arg "Wal.create: sync_every < 0";
  if checkpoint_every < 0 then invalid_arg "Wal.create: checkpoint_every < 0";
  write_checkpoint store ~seg ~upto:first db;
  delete_older store ~than:seg;
  {
    store;
    sync_every;
    checkpoint_every;
    history = History.create db;
    first;
    durable = first;
    seg;
    unsynced = 0;
    since_ckpt = 0;
  }

let create ?sync_every ?checkpoint_every ~store db =
  make ?sync_every ?checkpoint_every ~store ~first:0 ~seg:0 db

let append w db =
  let prev = latest w in
  let idx = appended w + 1 in
  let b = Buffer.create 256 in
  Wire.write_int b idx;
  Buffer.add_string b (Wire.encode_version ~prev db);
  let fr = Wire.frame ~kind:Wire.Delta (Buffer.contents b) in
  w.store.Store.append (seg_name w.seg) fr;
  w.history <- History.append w.history db;
  w.unsynced <- w.unsynced + 1;
  w.since_ckpt <- w.since_ckpt + 1;
  Metrics.incr m_appends;
  Metrics.observe h_frame_bytes (String.length fr);
  emit (Event.Wal_append { index = idx; bytes = String.length fr });
  if w.sync_every > 0 && w.unsynced >= w.sync_every then sync w;
  if w.checkpoint_every > 0 && w.since_ckpt >= w.checkpoint_every then
    checkpoint w

(* -- recovery ---------------------------------------------------------------- *)

type stop_reason = Clean | Stopped of { offset : int; reason : string }

let pp_stop ppf = function
  | Clean -> Format.fprintf ppf "clean"
  | Stopped { offset; reason } ->
      Format.fprintf ppf "stopped at byte %d: %s" offset reason

type recovery = {
  rhistory : History.t;
  base : int;
  upto : int;
  segments : int;
  stop : stop_reason;
}

let corrupt offset reason = raise (Wire.Corrupt { offset; reason })

(* Parse a checkpoint payload: covered version index + 1-version archive. *)
let parse_checkpoint payload =
  let (upto, p) = Wire.read_int payload ~pos:0 in
  let (h, next) = Wire.decode_archive_sub payload ~pos:p in
  if next <> String.length payload then
    corrupt next "trailing bytes in checkpoint payload";
  (upto, History.latest h)

let recover (store : Store.t) =
  let segs =
    List.sort
      (fun (a, _) (b, _) -> compare b a)
      (List.filter_map
         (fun name -> Option.map (fun n -> (n, name)) (segment_number name))
         (store.Store.list_files ()))
  in
  if segs = [] then corrupt 0 "no log segments";
  (* Newest segment whose head checkpoint frame is intact.  A torn head
     means the crash hit mid-checkpoint, before the old segments were
     deleted — nothing in that segment was ever promised durable. *)
  let rec choose = function
    | [] -> corrupt 0 "no segment with an intact checkpoint"
    | (_, name) :: rest -> (
        match store.Store.read name with
        | None -> choose rest
        | Some content -> (
            match Wire.read_frame content ~pos:0 with
            | Wire.Frame { kind = Wire.Checkpoint; payload; next } ->
                let (base, db) = parse_checkpoint payload in
                (content, next, base, db)
            | Wire.Frame { kind = Wire.Delta; _ }
            | Wire.End_of_input | Wire.Torn _ ->
                choose rest))
  in
  let (content, start, base, db0) = choose segs in
  let hist = ref (History.create db0) in
  let nextv = ref (base + 1) in
  let stop = ref Clean in
  let pos = ref start in
  let running = ref true in
  while !running do
    match Wire.read_frame content ~pos:!pos with
    | Wire.End_of_input -> running := false
    | Wire.Torn { offset; reason } ->
        stop := Stopped { offset; reason };
        running := false
    | Wire.Frame { kind = Wire.Checkpoint; _ } ->
        (* A checkpoint can only head a segment; one mid-segment is a
           duplicated or misdirected frame — stop before it. *)
        stop := Stopped { offset = !pos; reason = "unexpected checkpoint frame" };
        running := false
    | Wire.Frame { kind = Wire.Delta; payload; next } ->
        let (idx, p) = Wire.read_int payload ~pos:0 in
        if idx <> !nextv then begin
          stop :=
            Stopped
              {
                offset = !pos;
                reason =
                  Printf.sprintf "out-of-order version index %d (expected %d)"
                    idx !nextv;
              };
          running := false
        end
        else begin
          let prev = History.latest !hist in
          let (db, consumed) = Wire.decode_version_sub ~prev payload ~pos:p in
          if consumed <> String.length payload then
            corrupt consumed "trailing bytes in delta payload";
          hist := History.append !hist db;
          emit (Event.Wal_replay { index = idx });
          Metrics.incr m_replays;
          incr nextv;
          pos := next
        end
  done;
  let upto = !nextv - 1 in
  let reason =
    match !stop with Clean -> "clean" | Stopped { reason; _ } -> reason
  in
  emit (Event.Wal_recovered { upto; base; reason });
  Metrics.incr m_recoveries;
  Metrics.observe h_recovered (upto - base);
  { rhistory = !hist; base; upto; segments = List.length segs; stop = !stop }

let resume ?sync_every ?checkpoint_every ~store (r : recovery) =
  (* Highest existing segment number + 1, so a torn newer segment (skipped
     by recovery) is superseded, then deleted once the checkpoint is down. *)
  let top =
    List.fold_left
      (fun acc name ->
        match segment_number name with Some n -> max acc n | None -> acc)
      (-1)
      (store.Store.list_files ())
  in
  make ?sync_every ?checkpoint_every ~store ~first:r.upto ~seg:(top + 1)
    (History.latest r.rhistory)
