(* Tests for values, tuples, schemas, relations (all backends), relational
   algebra, and the versioned database. *)

open Fdb_relational

let v_int i = Value.Int i
let v_str s = Value.Str s

let schema =
  Schema.make ~name:"R" ~cols:[ ("key", Schema.CInt); ("val", Schema.CStr) ]

let tup k s = Tuple.make [ v_int k; v_str s ]

let tuple_t = Alcotest.testable Tuple.pp Tuple.equal

(* -- value ---------------------------------------------------------------- *)

let test_value_order () =
  Alcotest.(check bool) "int order" true (Value.compare (v_int 1) (v_int 2) < 0);
  Alcotest.(check bool) "str order" true
    (Value.compare (v_str "a") (v_str "b") < 0);
  Alcotest.(check bool) "cross-type total" true
    (Value.compare (v_int 99) (v_str "a") < 0);
  Alcotest.(check bool) "equal" true (Value.equal (Value.Bool true) (Value.Bool true));
  Alcotest.(check string) "pp int" "7" (Value.to_string (v_int 7));
  Alcotest.(check string) "pp str quoted" "\"hi\"" (Value.to_string (v_str "hi"))

(* -- tuple ---------------------------------------------------------------- *)

let test_tuple_basics () =
  let t = tup 3 "x" in
  Alcotest.(check int) "arity" 2 (Tuple.arity t);
  Alcotest.(check bool) "key" true (Value.equal (v_int 3) (Tuple.key t));
  Alcotest.check_raises "empty tuple" (Invalid_argument "Tuple.make: empty tuple")
    (fun () -> ignore (Tuple.make []));
  Alcotest.(check bool) "lexicographic" true
    (Tuple.compare (tup 1 "z") (tup 2 "a") < 0);
  Alcotest.(check bool) "same key, second column decides" true
    (Tuple.compare (tup 1 "a") (tup 1 "b") < 0);
  Alcotest.(check bool) "shorter is smaller" true
    (Tuple.compare (Tuple.make [ v_int 1 ]) (tup 1 "a") < 0);
  Alcotest.(check int) "compare_key ignores payload" 0
    (Tuple.compare_key (tup 1 "a") (tup 1 "zzz"))

(* -- schema --------------------------------------------------------------- *)

let test_schema () =
  Alcotest.(check int) "arity" 2 (Schema.arity schema);
  Alcotest.(check (option int)) "column_index" (Some 1)
    (Schema.column_index schema "val");
  Alcotest.(check (option int)) "missing column" None
    (Schema.column_index schema "nope");
  Alcotest.(check bool) "matches" true (Schema.matches schema (tup 1 "a"));
  Alcotest.(check bool) "wrong type" false
    (Schema.matches schema (Tuple.make [ v_str "k"; v_str "v" ]));
  Alcotest.(check bool) "wrong arity" false
    (Schema.matches schema (Tuple.make [ v_int 1 ]));
  Alcotest.check_raises "duplicate columns"
    (Invalid_argument "Schema.make: duplicate column names") (fun () ->
      ignore (Schema.make ~name:"X" ~cols:[ ("a", Schema.CInt); ("a", Schema.CInt) ]))

(* -- relation, across all backends ----------------------------------------- *)

let backends =
  [ Relation.List_backend; Relation.Avl_backend; Relation.Two3_backend;
    Relation.Btree_backend 4; Relation.Column_backend 4 ]

let test_relation_roundtrip () =
  List.iter
    (fun backend ->
      let name = Relation.backend_name backend in
      let r = Relation.create ~backend schema in
      let r =
        List.fold_left
          (fun r t ->
            match Relation.insert r t with
            | Ok (r', true) -> r'
            | Ok (_, false) -> Alcotest.failf "%s: unexpected duplicate" name
            | Error e -> Alcotest.fail e)
          r
          [ tup 3 "c"; tup 1 "a"; tup 2 "b" ]
      in
      Alcotest.(check int) (name ^ " size") 3 (Relation.size r);
      Alcotest.(check (list tuple_t))
        (name ^ " sorted by key")
        [ tup 1 "a"; tup 2 "b"; tup 3 "c" ]
        (Relation.to_list r);
      Alcotest.(check (option tuple_t))
        (name ^ " find")
        (Some (tup 2 "b"))
        (Relation.find_key r (v_int 2));
      Alcotest.(check bool) (name ^ " mem") true (Relation.mem_key r (v_int 1));
      (* duplicate key rejected, relation shared *)
      (match Relation.insert r (tup 2 "DUP") with
      | Ok (r', false) ->
          Alcotest.(check bool) (name ^ " dup shares") true (r == r')
      | _ -> Alcotest.failf "%s: duplicate accepted" name);
      let (r2, found) = Relation.delete_key r (v_int 2) in
      Alcotest.(check bool) (name ^ " deleted") true found;
      Alcotest.(check int) (name ^ " size after delete") 2 (Relation.size r2);
      let (_, missing) = Relation.delete_key r2 (v_int 99) in
      Alcotest.(check bool) (name ^ " delete missing") false missing)
    backends

let test_relation_schema_mismatch () =
  let r = Relation.create schema in
  match Relation.insert r (Tuple.make [ v_str "bad"; v_str "x" ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "schema mismatch accepted"

let test_relation_select () =
  let r =
    match
      Relation.of_tuples schema [ tup 1 "a"; tup 2 "b"; tup 3 "a" ]
    with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check (list tuple_t)) "select by payload"
    [ tup 1 "a"; tup 3 "a" ]
    (Relation.select r (fun t -> Value.equal (Tuple.get t 1) (v_str "a")))

let test_relation_sharing_backend_mismatch () =
  let a = Relation.create ~backend:Relation.List_backend schema in
  let b = Relation.create ~backend:Relation.Avl_backend schema in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Relation.shared_units: backend mismatch") (fun () ->
      ignore (Relation.shared_units ~old:a b))

(* -- the column backend's chunk layout ------------------------------------- *)

let column_rel ?(chunk = 4) tuples =
  match Relation.of_tuples ~backend:(Relation.Column_backend chunk) schema tuples with
  | Ok r -> r
  | Error e -> Alcotest.fail e

let test_column_chunk_sharing () =
  let tuples = List.init 32 (fun i -> tup i "v") in
  let r = column_rel tuples in
  Alcotest.(check int) "chunks" 8 (Array.length (Relation.column_chunks r));
  (* a point insert path-copies one chunk and the spine; the rest share.
     key 100 lands in the full last chunk, which splits in half *)
  let r2 =
    match Relation.insert r (tup 100 "new") with
    | Ok (r2, true) -> r2
    | _ -> Alcotest.fail "insert failed"
  in
  let (shared, total) = Relation.shared_units ~old:r r2 in
  Alcotest.(check (pair int int)) "only the split chunk rebuilt" (7, 9)
    (shared, total);
  (* a delete rebuilds exactly the containing chunk *)
  let (r3, found) = Relation.delete_key r (v_int 5) in
  Alcotest.(check bool) "deleted" true found;
  let (shared, total) = Relation.shared_units ~old:r r3 in
  Alcotest.(check (pair int int)) "7 of 8 chunks shared" (7, 8) (shared, total);
  (* an update touching two chunks rebuilds two *)
  let (r4, touched) =
    Relation.update r
      ~lo:(Relation.Inclusive (v_int 6))
      ~hi:(Relation.Inclusive (v_int 9))
      (fun t -> Some (Tuple.make [ Tuple.get t 0; v_str "w" ]))
  in
  Alcotest.(check int) "rows touched" 4 touched;
  let (shared, total) = Relation.shared_units ~old:r r4 in
  Alcotest.(check (pair int int)) "6 of 8 chunks shared" (6, 8) (shared, total)

let test_column_direct () =
  let module C = Fdb_persistent.Column.Make (struct
    type t = int
    type field = int

    let fields k = [| k |]
    let of_fields f = f.(0)
    let compare_field = compare
  end) in
  (* of_list dedups to the first occurrence and packs full chunks *)
  let c = C.of_list ~chunk:4 [ 3; 1; 3; 2; 1; 5; 4; 9; 8; 7; 6 ] in
  Alcotest.(check (list int)) "sorted, first occurrence kept"
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ] (C.to_list c);
  Alcotest.(check int) "packed chunks" 3 (C.chunk_count c);
  Alcotest.(check bool) "invariant" true (C.invariant c);
  (* inserting into a full chunk splits it in half *)
  let c0 = C.of_list ~chunk:4 [ 1; 2; 3; 4 ] in
  let c1 = C.insert 2 c0 in
  Alcotest.(check bool) "set semantics" true (C.to_list c1 = C.to_list c0);
  let c2 = C.insert 5 c0 in
  Alcotest.(check int) "split" 2 (C.chunk_count c2);
  Alcotest.(check (list int)) "split contents" [ 1; 2; 3; 4; 5 ] (C.to_list c2);
  Alcotest.(check bool) "split invariant" true (C.invariant c2);
  (* deleting the last row of a chunk drops the chunk *)
  let c3 = C.of_list ~chunk:2 [ 1; 2; 3 ] in
  let (c4, found) = C.delete 3 c3 in
  Alcotest.(check bool) "found" true found;
  Alcotest.(check int) "empty chunk dropped" 1 (C.chunk_count c4);
  let (c5, found) = C.delete 42 c4 in
  Alcotest.(check bool) "missing" false found;
  Alcotest.(check bool) "miss shares" true (c5 == c4);
  (* range_fold visits only overlapping chunks *)
  let big = C.of_list ~chunk:4 (List.init 64 Fun.id) in
  let meter = Fdb_persistent.Meter.create () in
  let seen =
    C.range_fold ~meter ~ge_lo:(fun k -> k >= 20) ~le_hi:(fun k -> k < 28)
      (fun acc k -> k :: acc) [] big
  in
  Alcotest.(check (list int)) "range" [ 27; 26; 25; 24; 23; 22; 21; 20 ] seen;
  Alcotest.(check bool) "pruned visit" true
    (Fdb_persistent.Meter.allocs meter <= 4)

let prop_backends_agree =

  QCheck2.Test.make ~name:"all backends agree under random keyed ops"
    ~count:150
    QCheck2.Gen.(list_size (int_range 0 60) (int_range (-20) 20))
    (fun ops ->
      let apply backend =
        let r =
          List.fold_left
            (fun r op ->
              if op >= 0 then
                match Relation.insert r (tup op "v") with
                | Ok (r', _) -> r'
                | Error e -> failwith e
              else fst (Relation.delete_key r (v_int (-op))))
            (Relation.create ~backend schema)
            ops
        in
        Relation.to_list r
      in
      let reference = apply Relation.List_backend in
      List.for_all
        (fun b -> List.equal Tuple.equal (apply b) reference)
        [ Relation.Avl_backend; Relation.Two3_backend; Relation.Btree_backend 4;
          Relation.Column_backend 4 ])

(* -- algebra ---------------------------------------------------------------- *)

let test_algebra_project () =
  let rows = [ tup 1 "a"; tup 2 "b" ] in
  Alcotest.(check (list tuple_t)) "project col 1"
    [ Tuple.make [ v_str "a" ]; Tuple.make [ v_str "b" ] ]
    (Algebra.project [ 1 ] rows);
  Alcotest.(check (list tuple_t)) "reorder"
    [ Tuple.make [ v_str "a"; v_int 1 ] ]
    (Algebra.project [ 1; 0 ] [ tup 1 "a" ]);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Algebra.project: column index out of range") (fun () ->
      ignore (Algebra.project [ 5 ] rows))

let test_algebra_join () =
  let left = [ tup 1 "a"; tup 2 "b" ] in
  let right = [ Tuple.make [ v_str "b"; v_int 10 ];
                Tuple.make [ v_str "b"; v_int 20 ];
                Tuple.make [ v_str "c"; v_int 30 ] ] in
  let joined = Algebra.join ~left_col:1 ~right_col:0 left right in
  Alcotest.(check (list tuple_t)) "join pairs"
    [ Tuple.make [ v_int 2; v_str "b"; v_str "b"; v_int 10 ];
      Tuple.make [ v_int 2; v_str "b"; v_str "b"; v_int 20 ] ]
    joined

let test_algebra_sets () =
  let a = [ tup 1 "a"; tup 2 "b" ] and b = [ tup 2 "b"; tup 3 "c" ] in
  Alcotest.(check (list tuple_t)) "union"
    [ tup 1 "a"; tup 2 "b"; tup 3 "c" ]
    (Algebra.union a b);
  Alcotest.(check (list tuple_t)) "difference" [ tup 1 "a" ]
    (Algebra.difference a b);
  Alcotest.(check (list tuple_t)) "intersection" [ tup 2 "b" ]
    (Algebra.intersection a b);
  Alcotest.(check int) "product size" 4 (List.length (Algebra.product a b))

let prop_join_matches_spec =
  QCheck2.Test.make ~name:"join == nested-loop spec" ~count:200
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 15) (int_range 0 5))
        (list_size (int_range 0 15) (int_range 0 5)))
    (fun (ls, rs) ->
      let left = List.map (fun k -> tup k "l") ls
      and right = List.map (fun k -> tup k "r") rs in
      let spec =
        List.concat_map
          (fun lt ->
            List.filter_map
              (fun rt ->
                if Value.equal (Tuple.key lt) (Tuple.key rt) then
                  Some (Array.append lt rt)
                else None)
              right)
          left
      in
      List.equal Tuple.equal
        (Algebra.join ~left_col:0 ~right_col:0 left right)
        spec)

(* -- database ---------------------------------------------------------------- *)

let two_schemas =
  [ Schema.make ~name:"R" ~cols:[ ("key", Schema.CInt); ("val", Schema.CStr) ];
    Schema.make ~name:"S" ~cols:[ ("key", Schema.CInt); ("val", Schema.CStr) ] ]

let test_database_versioning () =
  let db0 = Database.create two_schemas in
  Alcotest.(check (list string)) "names" [ "R"; "S" ] (Database.names db0);
  let (db1, added) =
    match Database.insert db0 ~rel:"R" (tup 1 "a") with
    | Ok x -> x
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "added" true added;
  (* The untouched relation is physically shared across versions; the
     touched one is not. *)
  Alcotest.(check bool) "S shared" true (Database.shares_relation ~old:db0 db1 "S");
  Alcotest.(check bool) "R replaced" false
    (Database.shares_relation ~old:db0 db1 "R");
  (* The old version is intact. *)
  Alcotest.(check int) "old version empty" 0 (Database.total_tuples db0);
  Alcotest.(check int) "new version has the tuple" 1 (Database.total_tuples db1)

let test_database_errors () =
  let db = Database.create two_schemas in
  (match Database.insert db ~rel:"Zed" (tup 1 "a") with
  | Error e -> Alcotest.(check string) "unknown rel" "unknown relation Zed" e
  | Ok _ -> Alcotest.fail "accepted unknown relation");
  Alcotest.check_raises "duplicate names"
    (Invalid_argument "Database.create: duplicate relation names") (fun () ->
      ignore (Database.create [ schema; schema ]))

let test_database_load_and_find () =
  let db = Database.create two_schemas in
  let db =
    match Database.load db ~rel:"R" [ tup 1 "a"; tup 2 "b" ] with
    | Ok db -> db
    | Error e -> Alcotest.fail e
  in
  (match Database.find db ~rel:"R" ~key:(v_int 2) with
  | Ok (Some t) -> Alcotest.check tuple_t "found" (tup 2 "b") t
  | _ -> Alcotest.fail "find failed");
  match Database.find db ~rel:"S" ~key:(v_int 2) with
  | Ok None -> ()
  | _ -> Alcotest.fail "phantom tuple in S"

let () =
  Alcotest.run "relational"
    [
      ("value", [ Alcotest.test_case "order/pp" `Quick test_value_order ]);
      ("tuple", [ Alcotest.test_case "basics" `Quick test_tuple_basics ]);
      ("schema", [ Alcotest.test_case "basics" `Quick test_schema ]);
      ( "relation",
        [
          Alcotest.test_case "roundtrip all backends" `Quick
            test_relation_roundtrip;
          Alcotest.test_case "schema mismatch" `Quick
            test_relation_schema_mismatch;
          Alcotest.test_case "select" `Quick test_relation_select;
          Alcotest.test_case "column chunk sharing" `Quick
            test_column_chunk_sharing;
          Alcotest.test_case "column layout direct" `Quick test_column_direct;
          Alcotest.test_case "sharing backend mismatch" `Quick
            test_relation_sharing_backend_mismatch;
          QCheck_alcotest.to_alcotest prop_backends_agree;
        ] );
      ( "algebra",
        [
          Alcotest.test_case "project" `Quick test_algebra_project;
          Alcotest.test_case "join" `Quick test_algebra_join;
          Alcotest.test_case "set ops" `Quick test_algebra_sets;
          QCheck_alcotest.to_alcotest prop_join_matches_spec;
        ] );
      ( "database",
        [
          Alcotest.test_case "versioning shares slots" `Quick
            test_database_versioning;
          Alcotest.test_case "errors" `Quick test_database_errors;
          Alcotest.test_case "load and find" `Quick test_database_load_and_find;
        ] );
    ]
