examples/fel_apply_stream.mli:
