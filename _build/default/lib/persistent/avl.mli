(** Persistent AVL trees with metered path copying.

    Myers [18] is cited by the paper for "efficient applicative data types"
    based on AVL trees; this is the corresponding representation for a
    relation.  Set semantics: inserting an element already present returns
    the tree unchanged (and physically shared). *)

module Make (Elt : Ordered.S) : sig
  type t

  val empty : t

  val of_list : Elt.t list -> t

  val to_list : t -> Elt.t list
  (** In-order, ascending. *)

  val size : t -> int

  val height : t -> int

  val member : Elt.t -> t -> bool

  val find : Elt.t -> t -> Elt.t option
  (** The stored element equal to the argument, if any (useful when
      [compare] only inspects a key field). *)

  val insert : ?meter:Meter.t -> Elt.t -> t -> t

  val delete : ?meter:Meter.t -> Elt.t -> t -> t * bool

  val shared_nodes : old:t -> t -> int * int
  (** [(shared, total)] physical-node sharing of the new version against the
      old one. *)

  val invariant : t -> bool
  (** Ordering, height consistency, and balance factors in [-1, 1]. *)
end
