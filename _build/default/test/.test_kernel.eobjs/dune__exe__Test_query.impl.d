test/test_query.ml: Alcotest Fdb_query Fdb_relational List QCheck2 QCheck_alcotest Schema String Tuple Value
