(** The primary-site model over a physical network (paper §3, Figure 3-1).

    Client sites submit tagged query messages onto a shared medium.  The
    medium itself "acts as one large merge pseudo-function": the primary
    site receives an interleaving that respects each client's order, which
    becomes the merged transaction stream.  After processing, tagged
    responses are sent back over the medium, and each site [choose]s the
    substream addressed to it.

    The bus transport and the response routing are simulated cycle by cycle
    with {!Fdb_net.Fabric}; transaction processing itself runs on the
    lenient pipeline in the selected mode. *)

open Fdb_net

type t

val create :
  ?topology:Topology.t ->
  ?primary:int ->
  ?semantics:Pipeline.semantics ->
  ?mode:Pipeline.mode ->
  Pipeline.db_spec ->
  t
(** Default topology: a bus with one node per submitting site plus the
    primary at node 0.  [primary] defaults to 0. *)

type outcome = {
  merged : (int * Fdb_query.Ast.query) list;
      (** the arrival order the medium produced *)
  per_site : (int * Pipeline.response list) list;
      (** responses as delivered back to each site, in that site's order *)
  report : Pipeline.report;  (** the pipeline execution *)
  request_messages : int;  (** messages carried site -> primary *)
  response_messages : int;  (** messages carried primary -> site *)
  transport_cycles : int;  (** bus cycles spent on both trips *)
}

val submit : t -> (int * Fdb_query.Ast.query list) list -> outcome
(** [(site, queries)] per client session.  Sites inject one query per bus
    cycle starting together; the medium's serialization is the merge.
    @raise Invalid_argument if a site is outside the topology or equals
    the primary. *)

val serializable : outcome -> t -> bool
(** Check the outcome's responses against the sequential reference of its
    merged order. *)

(** {1 Failover by deterministic replay}

    The paper defers failure transparency to future work (§1) but lays the
    ground for it: the stream of database versions is a {e pure function}
    of the merged transaction stream.  So if the primary fails after
    answering a prefix, any standby that saw the same merged order (the
    medium broadcasts it) can replay from the initial database and continue
    — and determinism guarantees its answers for the already-served prefix
    are identical, so clients never see an inconsistency. *)

type failover = {
  f_merged : (int * Fdb_query.Ast.query) list;
  f_served_before_crash : Pipeline.response list;
      (** what the primary answered before failing *)
  f_replayed : Pipeline.response list;
      (** the standby's answers for the same prefix, by replay *)
  f_prefix_agrees : bool;
      (** determinism check: served = replayed on the prefix *)
  f_per_site : (int * Pipeline.response list) list;
      (** every client's complete responses (prefix from the primary,
          suffix from the standby) *)
}

val submit_with_failover :
  t -> fail_after:int -> (int * Fdb_query.Ast.query list) list -> failover
(** Run the request trip, let the primary process and answer the first
    [fail_after] transactions, crash it, and have the standby replay the
    whole merged stream from the initial database.
    @raise Invalid_argument if [fail_after] is negative. *)
