test/test_persistent.mli:
