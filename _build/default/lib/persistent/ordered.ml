(** Element signature shared by all persistent ordered structures. *)

module type S = sig
  type t

  val compare : t -> t -> int
end

module Int = struct
  type t = int

  let compare = Int.compare
end

module String = struct
  type t = string

  let compare = String.compare
end
