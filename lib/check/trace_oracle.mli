(** Invariants over captured event traces.

    The serializability {!Oracle} judges a run by its observable responses;
    this oracle judges the {e mechanism} — the ordering and conservation
    laws the trace of any correct run must satisfy, whatever the responses:

    - {b ack-before-reply}: the primary never releases a [Committed] reply
      for a backed commit until a backup ack covering that log index has
      arrived (the durability gate of the replication protocol);
    - {b exact-suffix-replay}: a promotion replays exactly the log suffix
      past the last installed checkpoint — no replay before promotion, no
      missing or extra records;
    - {b single-assignment}: no lenient cell is ever written twice;
    - {b fabric-conservation}: [in_flight = sent - delivered - faulted]
      holds in the counter snapshot carried by {e every} datagram event,
      not just at quiescence, and [in_flight] never goes negative;
    - {b dispatch-spans}: dispatch start/end events are well nested per
      site and transaction ids start in increasing order (the pipeline
      dispatches versions in stream order);
    - {b repair-convergence}: within a speculative batch, every
      transaction that was speculated or re-executed commits exactly
      once, never re-executes after its commit, commits are released in
      batch order, and repair rounds never exceed the batch size (the
      fixpoint termination bound of the repair executor);
    - {b durability}: every version a [Wal_sync] or [Wal_checkpoint]
      promised durable is reached by the following [Wal_recovered] — no
      committed-but-lost versions at any fsync boundary; recovery never
      passes the last append; appends advance one version at a time; and
      a segment is deleted only after a checkpoint heading a strictly
      newer segment was synced;
    - {b index-coherence}: every [Index_maintain] event leaves the index
      covering exactly as many tuples as its base relation holds, and all
      indexes of one relation observe the {e same} sequence of base sizes
      — indexes and base advance in lockstep through the functional
      update path, whatever executor (sequential, pipeline, speculative
      repair) drove the writes;
    - {b shard-serializability}: every shard-local commit stream is
      gap-free ([Shard_commit] positions per shard are exactly
      0, 1, 2, ...), the global spine's sequence numbers appear in
      exactly increasing order ([Shard_spine] is the single serial
      stream), and a transaction for which a non-commuting conflict was
      reported ([Shard_conflict]) never takes the bypass
      ([Shard_bypass]) — bypassed pairs must commute.

    Invariants rely on emission {e order}, never on the layer-local [ts]
    values, so a trace interleaving several clocks is still checkable. *)

type violation = {
  invariant : string;  (** which law, e.g. ["ack_before_reply"] *)
  index : int;  (** position in the trace of the offending event, or
                    [List.length trace] for end-of-trace violations *)
  detail : string;
}

val ack_before_reply : Fdb_obs.Event.t list -> violation list
val exact_suffix_replay : Fdb_obs.Event.t list -> violation list
val single_assignment : Fdb_obs.Event.t list -> violation list
val fabric_conservation : Fdb_obs.Event.t list -> violation list
val dispatch_spans : Fdb_obs.Event.t list -> violation list
val repair_convergence : Fdb_obs.Event.t list -> violation list
val durability : Fdb_obs.Event.t list -> violation list
val index_coherence : Fdb_obs.Event.t list -> violation list
val shard_serializability : Fdb_obs.Event.t list -> violation list

val invariant_names : string list

val check : Fdb_obs.Event.t list -> violation list
(** All invariants, concatenated.  Empty = the trace is law-abiding. *)

val pp_violation : Format.formatter -> violation -> unit
