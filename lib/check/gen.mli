(** Seeded random scenario generation for the correctness harness.

    Generalizes {!Fdb_workload.Workload} beyond the paper's fixed
    (key, val) shape: relations get random extra columns of random types,
    and the per-client streams draw from the whole query language — finds,
    inserts, deletes, selects with random predicates, counts, aggregates,
    updates and joins — so the serializability oracle is exercised over
    read-write conflicts the 1985 experiment never generated.

    Everything is deterministic in the spec (including the seed): the same
    spec always yields the same scenario, which is what lets a failing
    sweep seed be replayed and shrunk. *)

open Fdb_relational

type spec = {
  clients : int;  (** number of independent query streams *)
  relations : int;
  queries_per_client : int;
  initial_tuples : int;  (** per relation (capped by [key_range]) *)
  key_range : int;  (** keys are drawn from [0, key_range); small ranges
                        force cross-client conflicts *)
  seed : int;
}

val default_spec : spec
(** 3 clients x 6 queries over 2 relations of 6 initial tuples,
    keys in [0, 12), seed 0. *)

type scenario = {
  spec : spec;
  schemas : Schema.t list;
  initial : (string * Tuple.t list) list;  (** per-relation bulk load *)
  streams : Fdb_query.Ast.query list list;  (** one stream per client *)
}

val generate : spec -> scenario
(** @raise Invalid_argument on a nonsensical spec. *)

val initial_db : scenario -> Database.t
(** The loaded initial database (reference [Fdb_txn] semantics). *)

val query_count : scenario -> int

val pp_streams : Format.formatter -> Fdb_query.Ast.query list list -> unit
(** One line per query, prefixed by its client tag — the shape the shrunk
    counterexamples are reported in. *)

val pp_scenario : Format.formatter -> scenario -> unit
