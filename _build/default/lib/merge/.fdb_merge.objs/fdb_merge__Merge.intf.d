lib/merge/merge.mli: Format
