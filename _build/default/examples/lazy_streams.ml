(* Lenient vs demand-driven evaluation — the distinction the paper draws in
   §1 between lenient data constructors and lazy evaluation, run live.

   Lenient evaluation (the paper's model) is data-driven: constructors are
   non-strict, so consumers overlap producers ("anticipatory" parallelism),
   but every started computation runs to completion — an unbounded
   recursive stream producer diverges.

   Demand-driven evaluation (call-by-need) only computes what the result
   requires: classic lazy idioms like the sieve of Eratosthenes over an
   infinite stream work, at the price of the anticipatory parallelism.

   Run with:  dune exec examples/lazy_streams.exe *)

module Eval = Fdb_fel.Eval
module Engine = Fdb_kernel.Engine

let sieve =
  {|
    ;; the sieve of Eratosthenes over the infinite stream 2, 3, 4, ...
    from:n = n ^ from:(n + 1),
    indivisible:[d, x] = x - x / d * d != 0,
    strike:[d, s] =
      if indivisible:[d, first:s]
      then first:s ^ strike:[d, rest:s]
      else strike:[d, rest:s],
    sieve:s = first:s ^ sieve:(strike:[first:s, rest:s]),
    primes = sieve:(from:2),
    RESULT take:[10, primes]
  |}

let fib =
  {|
    ;; the classic self-referential fibonacci stream
    zip-add:[a, b] = (first:a + first:b) ^ zip-add:[rest:a, rest:b],
    fibs = 0 ^ 1 ^ zip-add:[fibs, rest:fibs],
    RESULT take:[12, fibs]
  |}

let run name mode mode_name src =
  match Eval.run_string ~max_cycles:500_000 ~mode src with
  | Ok (result, stats) ->
      Format.printf "%-8s %-8s => %s@.%-17s (%d tasks, %d cycles, max ply %d)@.@."
        name mode_name result ""
        stats.Engine.tasks stats.Engine.cycles stats.Engine.max_ply
  | Error e ->
      let short =
        if String.length e >= 7 && String.sub e 0 7 = "stalled" then
          "diverges — lenient evaluation computes the whole infinite stream"
        else e
      in
      Format.printf "%-8s %-8s => %s@.@." name mode_name short

let () =
  Format.printf "-- infinite streams in FEL --@.@.";
  run "primes" Eval.Demand "demand" sieve;
  run "primes" Eval.Lenient "lenient" sieve;
  run "fibs" Eval.Demand "demand" fib;
  run "fibs" Eval.Lenient "lenient" fib;
  Format.printf
    "Lenient constructors are not lazy evaluation: the paper's model@.\
     (data-driven) maximizes overlap on finite structures, while only@.\
     demand-driven evaluation tames infinite ones.@."
