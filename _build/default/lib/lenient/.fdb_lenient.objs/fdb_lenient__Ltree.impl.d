lib/lenient/ltree.ml: Engine Fdb_kernel List
