(** The serializability oracle.

    The paper's central correctness claim (§2.4) is that processing a merge
    of per-client query streams "sequentially but leniently" is a
    sufficient condition for serializability.  This module is the missing
    equivalence check: given the original per-client streams and what a
    system under test {e observed} — each client's responses, in that
    client's own stream order, plus the final database — decide whether
    some interleaving of the streams explains the observation.

    The search walks the merge lattice: a state is a vector of per-stream
    positions plus the database version reached, and the only edges are
    "client [c] commits its next query" — per-stream order is exactly the
    one thing {!Fdb_merge.Merge} guarantees, so it is the one thing the
    oracle assumes.  Branches are pruned the moment a query's reference
    response ({!Fdb_txn.Txn.translate}) disagrees with the observed one,
    and failed states are memoized on (positions, database contents) so
    confluent interleavings (the common case: most queries commute) are
    explored once. *)

open Fdb_relational
module Txn = Fdb_txn.Txn

type observation = {
  responses : Txn.response list list;
      (** per client, in that client's stream order *)
  final : Database.t;
}

type verdict =
  | Serializable of (int * Fdb_query.Ast.query) list
      (** a witness serial order, tagged with client ids *)
  | Not_serializable of { explored : int; deepest : int; total : int }
      (** no interleaving matches; [deepest] of [total] queries could be
          explained before every branch died *)
  | Inconclusive of { explored : int }
      (** state budget exhausted (never happens on harness-sized inputs) *)

val accepted : verdict -> bool
(** [true] only for [Serializable _]. *)

val pp_verdict : Format.formatter -> verdict -> unit

val db_equal : Database.t -> Database.t -> bool
(** Contents equality: same relation names, same tuples (ascending key
    order), physical sharing ignored. *)

val observe :
  initial:Database.t ->
  clients:int ->
  Fdb_query.Ast.query Fdb_merge.Merge.tagged list ->
  observation
(** Execute a merged, tagged stream under the sequential reference
    semantics and package what each client saw.  This is what a correct
    implementation's observable behaviour looks like; feeding it back to
    {!val:check} must always be accepted. *)

val check :
  ?max_states:int ->
  initial:Database.t ->
  streams:Fdb_query.Ast.query list list ->
  observation ->
  verdict
(** Decide serializability of an observation against the client streams.
    [max_states] (default 500,000) bounds the memoized search.
    @raise Invalid_argument when the response lists do not line up
    one-to-one with the streams. *)

val check_merged :
  ?max_states:int ->
  initial:Database.t ->
  streams:Fdb_query.Ast.query list list ->
  Fdb_query.Ast.query Fdb_merge.Merge.tagged list ->
  verdict
(** [observe] then [check]: the end-to-end assertion that a given merge
    order is serial-equivalent to the client streams. *)
