(** Store-and-forward message transport over a {!Topology.t}.

    Point-to-point topologies: a message advances one hop per cycle; each
    directed link forwards at most [link_capacity] messages per cycle, FIFO.
    Shared bus: the medium delivers at most [link_capacity] messages per
    cycle in arrival order (the "one large merge pseudo-function" of
    Figure 3-1).

    The fabric is deterministic: links are serviced in a fixed order.

    {b Fault injection.}  Nodes can be marked down (crash-stop: the node's
    buffered frames are lost, frames addressed to it or routed through it
    are dropped) and brought back up cold; the network can be split into
    two groups whose connecting links silently lose everything that tries
    to cross.  Dropped frames are counted in [faulted], and the accounting
    invariant becomes [in_flight = sent - delivered - faulted]. *)

type 'a t

type stats = {
  sent : int;  (** messages injected *)
  delivered : int;  (** messages that reached their destination *)
  hops : int;  (** total link traversals *)
  max_in_flight : int;
  faulted : int;
      (** messages lost to injected faults: down nodes and severed links *)
}

val create : ?link_capacity:int -> Topology.t -> 'a t
(** Default capacity: 1 message per link per cycle. *)

val topology : 'a t -> Topology.t

val send : 'a t -> src:int -> dst:int -> 'a -> unit
(** Inject a message.  [src = dst] delivers on the next {!val:step} (local
    hand-off still takes a cycle, keeping timing uniform).  Sending from a
    down node is charged to [sent] and immediately lost ([faulted]). *)

val broadcast : 'a t -> src:int -> 'a -> unit
(** Send a copy to every other node (the primary pushing tagged responses
    onto the medium, Figure 3-1). *)

val step : 'a t -> (int * 'a) list
(** Advance one cycle; returns [(dst, payload)] deliveries, in deterministic
    order. *)

val in_flight : 'a t -> int

val stats : 'a t -> stats

(** {1 Fault injection} *)

val set_down : 'a t -> int -> unit
(** Crash a node.  Its local hand-offs and outgoing NIC queues are lost on
    the spot; from now on frames addressed to it, or arriving at it as an
    intermediate hop, are dropped (all counted in [faulted]).  Idempotent.
    @raise Invalid_argument on a bad node id. *)

val set_up : 'a t -> int -> unit
(** Bring a node back (cold: nothing buffered is restored). *)

val is_down : 'a t -> int -> bool

val partition : 'a t -> int list -> unit
(** Split the network: the listed nodes on one side, everyone else on the
    other.  Frames crossing the cut are dropped at the moment they try
    (bus: at delivery; point-to-point: at the severed link).  A second call
    replaces the first. *)

val heal : 'a t -> unit
(** Remove the partition. *)

val severed : 'a t -> int -> int -> bool
(** Are the two nodes on opposite sides of the current partition? *)
