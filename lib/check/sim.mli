(** Fault-injecting end-to-end simulation.

    The oracle's client-side contract — per-stream order in, per-stream
    order out — has to survive a real transport.  This driver runs a
    generated scenario through the network stack: clients sit on the leaves
    of a star topology (client 0 shares the hub with the primary,
    exercising the src = dst local hand-off), queries travel to the primary
    over {!Fdb_net.Reliable} (itself over {!Fdb_net.Fabric}), and three
    seeded fault kinds are injected:

    - {b drop}: the lossy medium loses one in [drop_one_in] arrivals
      (data and acks alike); Reliable retransmits.
    - {b duplicate}: one in [dup_one_in] queries is sent twice with the
      same (client, seq); the primary must deduplicate.
    - {b reorder}: one in [delay_one_in] queries is held back up to
      [max_delay] scheduler ticks before being handed to the transport, so
      a client's later query can arrive first; the primary reassembles by
      per-client sequence number before committing anything.

    The primary applies queries under the sequential reference semantics
    in reassembled arrival order — a nondeterministic (but seeded) merge of
    the client streams — and the resulting observation must pass the
    {!Oracle}. *)

type faults = {
  drop_one_in : int;  (** 0 disables; must not be 1 *)
  dup_one_in : int;  (** 0 disables *)
  delay_one_in : int;  (** 0 disables *)
  max_delay : int;  (** max ticks a delayed query is held *)
  crash : bool;
      (** kill the primary at a seeded point and fail over — see below *)
}

val no_faults : faults

val default_faults : faults
(** drop 1/5, duplicate 1/6, delay 1/4 up to 3 ticks, no crash. *)

type outcome = {
  verdict : Oracle.verdict;
  applied : int;  (** queries committed at the (surviving) primary *)
  dup_suppressed : int;  (** application-level duplicates discarded *)
  delayed : int;  (** queries that took the reorder path *)
  recovery : Fdb_replica.Replica.report option;
      (** full failover report when [crash] was set *)
  net : Fdb_net.Reliable.stats;
  trace : Fdb_obs.Event.t list;
      (** everything the stack emitted while executing (the oracle-search
          phase is not recorded); already checked against
          {!Trace_oracle.check} — [run] raises [Failure] on violations *)
  metrics : Fdb_obs.Metrics.snapshot;
      (** the metrics this run alone recorded: the run executes under
          {!Fdb_obs.Metrics.scoped}, so identical (faults, seed, scenario)
          yield identical snapshots no matter what ran before — no
          registry bleed across sweeps or test suites — and the caller's
          accumulated totals are restored afterwards *)
}

exception
  Lost_queries of {
    missing : (int * int) list;  (** (client, seq) never committed *)
    buffered : int;  (** gap-buffered queries stuck at quiescence *)
    stats : Fdb_net.Reliable.stats;
    trace_tail : string list;  (** last captured events, oldest first *)
  }
(** A transport bug: the run quiesced but some query never committed.
    Carries exactly which (client, seq) pairs are unaccounted for plus the
    channel stats, so a failing seed can be replayed. *)

val run :
  ?faults:faults ->
  ?recover_config:Fdb_replica.Replica.config ->
  seed:int ->
  Gen.scenario ->
  outcome
(** Deterministic in (faults, seed, scenario).

    With [crash] set, the scenario instead runs through
    {!Fdb_replica.Replica}: the primary is killed at a seeded crash point
    (mid-stream, mid-checkpoint or mid-replay, chosen by [seed mod 3]) and
    the backup takes over.  [recover_config] seeds the replica
    configuration (its [drop_one_in], [seed] and [crash] fields are
    overridden from the fault spec).  Beyond the oracle verdict, the
    crash path asserts the failover invariants — no acked commit lost or
    doubly applied, replay exactly the log suffix past the last installed
    checkpoint, no replay divergence — and raises [Failure] on any
    violation.  The other fault knobs ([dup_one_in], [delay_one_in]) are
    client-behaviour faults that the replica's retry layer subsumes, and
    are ignored on this path.

    @raise Invalid_argument on a bad fault spec.
    @raise Lost_queries if the network quiesced but lost a query.
    @raise Failure if the network fails to quiesce or a failover
    invariant is violated. *)

type repair_outcome = {
  repair_verdict : Oracle.verdict;
  repair_stats : Fdb_repair.Exec.stats;  (** summed over batches *)
  repair_trace : Fdb_obs.Event.t list;
      (** from the traced (inline) run; checked against
          {!Trace_oracle.check} including [repair_convergence] *)
  repair_metrics : Fdb_obs.Metrics.snapshot;
}

val run_repair :
  ?pool:Fdb_par.Pool.t ->
  ?domains:int ->
  ?batch:int ->
  ?max_states:int ->
  seed:int ->
  Gen.scenario ->
  repair_outcome
(** Differential sweep of the speculative repair executor
    ({!Fdb_repair.Exec}).  The scenario's client streams are merged by a
    seeded arbiter, cut into batches of [batch] (default 8), and run
    three ways: on the domain pool (parallel speculation), inline under a
    recording trace sink, and through the ideal sequential engine
    ({!Fdb_txn.Txn.run_queries}).  All three must agree on every response
    and on the final database, the trace must satisfy every
    {!Trace_oracle} law, and the per-client observation must be accepted
    by the serializability {!Oracle} ([max_states] bounds its search).

    Runs under {!Fdb_obs.Metrics.scoped} like {!val:run}.  When [pool] is
    absent a pool of [domains] is created via {!Fdb_par.Pool.with_pool},
    whose bracket joins the worker domains even when the scenario raises
    — every failure path raises {e inside} the bracket.

    @raise Failure on any divergence, trace violation, or non-accepted
    oracle verdict (the message carries [seed] for replay).
    @raise Invalid_argument when [batch < 1]. *)

(** {1 Sharded two-level serialization} *)

type shard_outcome = {
  shard_verdict : Oracle.verdict;
  shard_stats : Fdb_shard.Shard.stats;
  shard_streams : int array;
      (** shard-local commit stream length per shard *)
  shard_trace : Fdb_obs.Event.t list;
      (** from the traced run; checked against {!Trace_oracle.check}
          including [shard_serializability] *)
  shard_metrics : Fdb_obs.Metrics.snapshot;
}

val cross_shardify : ratio:float -> seed:int -> Gen.scenario -> Gen.scenario
(** Rewrite a generated scenario to a controlled cross-shard ratio: each
    query slot is independently forced to a cross-relation join with
    probability [ratio], and below the threshold any native
    cross-relation join is folded onto its left relation — so
    [ratio = 0.0] carries {e no} cross-shard work and the knob is
    monotone.  Deterministic in [seed].
    @raise Invalid_argument when [ratio] is outside [[0, 1]]. *)

val run_sharded :
  ?policy:Fdb_merge.Merge.policy ->
  ?replicate:bool ->
  ?max_states:int ->
  shards:int ->
  seed:int ->
  Gen.scenario ->
  shard_outcome
(** Differential sweep of the sharded executor ({!Fdb_shard.Shard}).
    The scenario runs through {!Fdb_shard.Shard.run} under a recording
    trace sink ([policy] defaults to a [seed]-derived seeded merge), and
    must survive four independent checks:

    - the trace satisfies every {!Trace_oracle} law, including
      [shard_serializability];
    - {b sequential differential}: responses and final database equal
      the ideal engine's ({!Fdb_txn.Txn.run_queries}) over the same
      router order — and for [shards = 1] the rendered output bytes are
      identical to the unsharded pipeline's, not merely equivalent;
    - {b adversarial replay}: re-executing
      {!Fdb_shard.Shard.reorder_schedule} (each epoch reordered
      shard-major) reproduces every response and the final database —
      the soundness witness for every bypass the analysis granted;
    - {b serializability}: the per-client observation is accepted by the
      {!Oracle} ([max_states] bounds its search).

    With [replicate] set, each shard's local commit stream additionally
    drives a {!Fdb_replica.Replica.run} over its slice: the surviving
    replica state must equal the final slice, no acked commit may be
    lost or doubly applied, and the replica's responses must reproduce
    the sharded run's — the composition of partitioning with per-shard
    primary/backup replication.

    Runs under {!Fdb_obs.Metrics.scoped} like {!val:run}.
    @raise Failure on any divergence (the message carries [seed]).
    @raise Invalid_argument when [shards < 1]. *)

(** {1 Crash-restart disk recovery} *)

type disk_fault =
  | Clean_kill  (** sync, then kill — nothing may be lost *)
  | Truncate_mid_frame  (** cut the tail segment inside a frame *)
  | Bit_flip  (** flip one bit somewhere past the synced mark *)
  | Duplicate_tail  (** re-append the last whole frame verbatim *)

val all_disk_faults : disk_fault list
val disk_fault_name : disk_fault -> string
val disk_fault_of_name : string -> disk_fault option

type disk_outcome = {
  disk_appended : int;  (** versions logged before the kill *)
  disk_durable : int;  (** newest version the fsync discipline promised *)
  disk_recovered : int;  (** newest version the first recovery rebuilt *)
  disk_base : int;  (** checkpoint version the first recovery started from *)
  disk_stop : string;  (** why replay stopped (["clean"] if it didn't) *)
  disk_segments : int;  (** segment files present at the first recovery *)
  disk_resumed : int;  (** versions appended after restart *)
  disk_trace : Fdb_obs.Event.t list;
      (** already checked against {!Trace_oracle.check}, including the
          [durability] law *)
  disk_metrics : Fdb_obs.Metrics.snapshot;
}

val run_disk :
  ?sync_every:int ->
  ?checkpoint_every:int ->
  fault:disk_fault ->
  seed:int ->
  Gen.scenario ->
  disk_outcome
(** Crash-restart differential sweep of the durable version log
    ({!Fdb_wal.Wal}).  The scenario's streams are merged by a seeded
    arbiter and committed through the sequential reference engine with a
    WAL sink over the in-memory torn-write store; at a seeded kill point
    the store crashes (keeping the synced prefix plus a random prefix of
    the unsynced suffix), the surviving tail is doctored according to
    [fault], and {!Fdb_wal.Wal.recover} rebuilds the state.

    The recovered history is compared differentially against the
    pre-crash run: every version the fsync discipline promised must be
    back, nothing past the last append may appear, and each recovered
    version must equal — by {!Oracle.db_equal} — the version the
    pre-crash engine committed.  The run then {e resumes} on the
    recovered state, commits the remaining queries, recovers once more
    and re-verifies.  The whole run executes under a recording trace
    sink and {!Fdb_obs.Metrics.scoped}; the trace must satisfy every
    {!Trace_oracle} law including [durability].

    Deterministic in ([sync_every], [checkpoint_every], [fault], [seed],
    scenario).  [sync_every] defaults to 3 (so a torn unsynced tail
    actually exists); [checkpoint_every] defaults to 0 (never compact).

    @raise Failure on any recovery divergence or trace violation (the
    message carries [seed] for replay). *)
