open Fdb_kernel

type 'a cell = Nil | Cons of 'a * 'a t
and 'a t = 'a cell Engine.ivar

(* Structure-sharing economics of the version-producing operations
   (paper §2.2): each copy-loop step duplicates one cell of the old
   version, each splice shares the entire untouched suffix in O(1).
   [cells_copied] counts duplicated cells; [cells_shared] counts suffix
   splices (one event per shared tail, whatever its length). *)
let m_copied = Fdb_obs.Metrics.counter "lenient.cells_copied"
let m_shared = Fdb_obs.Metrics.counter "lenient.cells_shared"
let copied () = Fdb_obs.Metrics.incr m_copied
let shared () = Fdb_obs.Metrics.incr m_shared

let nil eng = Engine.full eng Nil
let cons eng x tail = Engine.full eng (Cons (x, tail))
let empty eng = Engine.ivar eng

let of_list eng ?(place = fun _ -> 0) xs =
  let rec build i = function
    | [] -> Engine.full_at eng ~site:(place i) Nil
    | x :: rest ->
        Engine.full_at eng ~site:(place i) (Cons (x, build (i + 1) rest))
  in
  build 0 xs

let produce eng ?(label = "produce") xs =
  let head = Engine.ivar eng in
  let rec step xs out =
    Engine.spawn eng ~label (fun () ->
        match xs with
        | [] -> Engine.put out Nil
        | x :: rest ->
            let out' = Engine.ivar eng in
            Engine.put out (Cons (x, out'));
            step rest out')
  in
  step xs head;
  head

let to_list_now l =
  let rec chase acc l =
    match Engine.peek l with
    | None -> None
    | Some Nil -> Some (List.rev acc)
    | Some (Cons (x, rest)) -> chase (x :: acc) rest
  in
  chase [] l

let prefix_now l =
  let rec chase acc l =
    match Engine.peek l with
    | None | Some Nil -> List.rev acc
    | Some (Cons (x, rest)) -> chase (x :: acc) rest
  in
  chase [] l

let find eng ?(label = "find") pred l =
  let result = Engine.ivar eng in
  let rec step l =
    Engine.await ~label l (function
      | Nil -> Engine.put result None
      | Cons (x, rest) ->
          if pred x then Engine.put result (Some x) else step rest)
  in
  step l;
  result

let find_until eng ?(label = "find_until") ~stop pred l =
  let result = Engine.ivar eng in
  let rec step l =
    Engine.await ~label l (function
      | Nil -> Engine.put result None
      | Cons (x, rest) ->
          if pred x then Engine.put result (Some x)
          else if stop x then Engine.put result None
          else step rest)
  in
  step l;
  result

let fold eng ?(label = "fold") f init l =
  let result = Engine.ivar eng in
  let rec step acc l =
    Engine.await ~label l (function
      | Nil -> Engine.put result acc
      | Cons (x, rest) -> step (f acc x) rest)
  in
  step init l;
  result

let length eng ?(label = "length") l = fold eng ~label (fun n _ -> n + 1) 0 l

let count eng ?(label = "count") pred l =
  fold eng ~label (fun n x -> if pred x then n + 1 else n) 0 l

let exists eng ?(label = "exists") pred l =
  let result = Engine.ivar eng in
  let rec step l =
    Engine.await ~label l (function
      | Nil -> Engine.put result false
      | Cons (x, rest) -> if pred x then Engine.put result true else step rest)
  in
  step l;
  result

let insert_ordered eng ?(label = "insert") ~cmp x l =
  let head = Engine.ivar eng and ack = Engine.ivar eng in
  let rec step l out =
    Engine.await ~label l (function
      | Nil ->
          Engine.put out (Cons (x, nil eng));
          Engine.put ack ()
      | Cons (y, rest) as old_cell ->
          if cmp x y <= 0 then begin
            (* splice and share the untouched suffix *)
            shared ();
            Engine.put out (Cons (x, Engine.full eng old_cell));
            Engine.put ack ()
          end
          else begin
            copied ();
            let out' = Engine.ivar eng in
            Engine.put out (Cons (y, out'));
            step rest out'
          end)
  in
  step l head;
  (head, ack)

let append_elem eng ?(label = "append") x l =
  let head = Engine.ivar eng and ack = Engine.ivar eng in
  let rec step l out =
    Engine.await ~label l (function
      | Nil ->
          Engine.put out (Cons (x, nil eng));
          Engine.put ack ()
      | Cons (y, rest) ->
          let out' = Engine.ivar eng in
          Engine.put out (Cons (y, out'));
          step rest out')
  in
  step l head;
  (head, ack)

let insert_unique eng ?(label = "insert_unique") ~cmp x l =
  let head = Engine.ivar eng and ack = Engine.ivar eng in
  let rec step l out =
    Engine.await ~label l (function
      | Nil ->
          Engine.put out (Cons (x, nil eng));
          Engine.put ack true
      | Cons (y, rest) as old_cell ->
          let c = cmp x y in
          if c = 0 then begin
            (* already present: share from here on, discard the copies *)
            shared ();
            Engine.put out old_cell;
            Engine.put ack false
          end
          else if c < 0 then begin
            shared ();
            Engine.put out (Cons (x, Engine.full eng old_cell));
            Engine.put ack true
          end
          else begin
            copied ();
            let out' = Engine.ivar eng in
            Engine.put out (Cons (y, out'));
            step rest out'
          end)
  in
  step l head;
  (head, ack)

let delete_ordered eng ?(label = "delete_ordered") ~cmp x l =
  let head = Engine.ivar eng and ack = Engine.ivar eng in
  let rec step l out =
    Engine.await ~label l (function
      | Nil ->
          Engine.put out Nil;
          Engine.put ack false
      | Cons (y, rest) as old_cell ->
          let c = cmp x y in
          if c = 0 then begin
            shared ();
            Engine.await ~label rest (fun suffix -> Engine.put out suffix);
            Engine.put ack true
          end
          else if c < 0 then begin
            (* passed the ordered position: absent *)
            shared ();
            Engine.put out old_cell;
            Engine.put ack false
          end
          else begin
            copied ();
            let out' = Engine.ivar eng in
            Engine.put out (Cons (y, out'));
            step rest out'
          end)
  in
  step l head;
  (head, ack)

let update_all eng ?(label = "update_all") rewrite l =
  let head = Engine.ivar eng and ack = Engine.ivar eng in
  let rec step changed l out =
    Engine.await ~label l (function
      | Nil ->
          Engine.put out Nil;
          Engine.put ack changed
      | Cons (y, rest) ->
          let out' = Engine.ivar eng in
          copied ();
          (match rewrite y with
          | Some y' ->
              Engine.put out (Cons (y', out'));
              step (changed + 1) rest out'
          | None ->
              Engine.put out (Cons (y, out'));
              step changed rest out'))
  in
  step 0 l head;
  (head, ack)

let delete_all eng ?(label = "delete_all") pred l =
  let head = Engine.ivar eng and ack = Engine.ivar eng in
  let rec step removed l out =
    Engine.await ~label l (function
      | Nil ->
          Engine.put out Nil;
          Engine.put ack removed
      | Cons (y, rest) ->
          if pred y then step (removed + 1) rest out
          else begin
            copied ();
            let out' = Engine.ivar eng in
            Engine.put out (Cons (y, out'));
            step removed rest out'
          end)
  in
  step 0 l head;
  (head, ack)

let delete_first eng ?(label = "delete") pred l =
  let head = Engine.ivar eng and ack = Engine.ivar eng in
  let rec step l out =
    Engine.await ~label l (function
      | Nil ->
          Engine.put out Nil;
          Engine.put ack false
      | Cons (y, rest) ->
          if pred y then begin
            (* drop y, share the suffix *)
            shared ();
            Engine.await ~label rest (fun suffix -> Engine.put out suffix);
            Engine.put ack true
          end
          else begin
            copied ();
            let out' = Engine.ivar eng in
            Engine.put out (Cons (y, out'));
            step rest out'
          end)
  in
  step l head;
  (head, ack)

let map eng ?(label = "map") f l =
  let head = Engine.ivar eng in
  let rec step l out =
    Engine.await ~label l (function
      | Nil -> Engine.put out Nil
      | Cons (x, rest) ->
          let out' = Engine.ivar eng in
          Engine.put out (Cons (f x, out'));
          step rest out')
  in
  step l head;
  head

let filter eng ?(label = "filter") pred l =
  let head = Engine.ivar eng in
  let rec step l out =
    Engine.await ~label l (function
      | Nil -> Engine.put out Nil
      | Cons (x, rest) ->
          if pred x then begin
            let out' = Engine.ivar eng in
            Engine.put out (Cons (x, out'));
            step rest out'
          end
          else step rest out)
  in
  step l head;
  head

let append eng ?(label = "append2") a b =
  let head = Engine.ivar eng in
  let rec step l out =
    Engine.await ~label l (function
      | Nil -> Engine.await ~label b (fun cell -> Engine.put out cell)
      | Cons (x, rest) ->
          let out' = Engine.ivar eng in
          Engine.put out (Cons (x, out'));
          step rest out')
  in
  step a head;
  head

let select eng ?(label = "select") pred l =
  let head = Engine.ivar eng and strict = Engine.ivar eng in
  let rec step acc l out =
    Engine.await ~label l (function
      | Nil ->
          Engine.put out Nil;
          Engine.put strict (List.rev acc)
      | Cons (x, rest) ->
          if pred x then begin
            let out' = Engine.ivar eng in
            Engine.put out (Cons (x, out'));
            step (x :: acc) rest out'
          end
          else step acc rest out)
  in
  step [] l head;
  (head, strict)
