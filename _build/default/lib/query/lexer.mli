(** Hand-written lexer for the query language. *)

type token =
  | IDENT of string
  | INT of int
  | REAL of float
  | STRING of string
  | KW of string  (** lower-cased keyword: insert, into, find, ... *)
  | LPAREN
  | RPAREN
  | COMMA
  | STAR
  | OP of string  (** = != < <= > >= *)

exception Lex_error of string * int  (** message, byte position *)

val keywords : string list
(** Reserved words; identifiers cannot collide with them. *)

val tokens : string -> token list
(** @raise Lex_error on an unrecognized character or unterminated string. *)

val pp_token : Format.formatter -> token -> unit
