type token =
  | IDENT of string
  | INT of int
  | REAL of float
  | STRING of string
  | KW of string
  | LPAREN
  | RPAREN
  | COMMA
  | STAR
  | OP of string

exception Lex_error of string * int

let keywords =
  [ "insert"; "into"; "find"; "in"; "delete"; "from"; "select"; "where";
    "count"; "sum"; "min"; "max"; "update"; "set"; "join"; "and"; "or";
    "not"; "on"; "true"; "false" ]

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

let tokens src =
  let n = String.length src in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      let c = src.[i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then go (i + 1) acc
      else if c = '(' then go (i + 1) (LPAREN :: acc)
      else if c = ')' then go (i + 1) (RPAREN :: acc)
      else if c = ',' then go (i + 1) (COMMA :: acc)
      else if c = '*' then go (i + 1) (STAR :: acc)
      else if c = '=' then go (i + 1) (OP "=" :: acc)
      else if c = '!' then
        if i + 1 < n && src.[i + 1] = '=' then go (i + 2) (OP "!=" :: acc)
        else raise (Lex_error ("expected '=' after '!'", i))
      else if c = '<' then
        if i + 1 < n && src.[i + 1] = '=' then go (i + 2) (OP "<=" :: acc)
        else go (i + 1) (OP "<" :: acc)
      else if c = '>' then
        if i + 1 < n && src.[i + 1] = '=' then go (i + 2) (OP ">=" :: acc)
        else go (i + 1) (OP ">" :: acc)
      else if c = '"' || c = '\'' then begin
        let quote = c in
        let buf = Buffer.create 16 in
        let rec str j =
          if j >= n then raise (Lex_error ("unterminated string", i))
          else if src.[j] = quote then j + 1
          else begin
            Buffer.add_char buf src.[j];
            str (j + 1)
          end
        in
        let i' = str (i + 1) in
        go i' (STRING (Buffer.contents buf) :: acc)
      end
      else if is_digit c || (c = '-' && i + 1 < n && is_digit src.[i + 1])
      then begin
        let j = ref (if c = '-' then i + 1 else i) in
        while !j < n && is_digit src.[!j] do
          incr j
        done;
        if !j < n && src.[!j] = '.' then begin
          incr j;
          while !j < n && is_digit src.[!j] do
            incr j
          done;
          let s = String.sub src i (!j - i) in
          go !j (REAL (float_of_string s) :: acc)
        end
        else
          let s = String.sub src i (!j - i) in
          go !j (INT (int_of_string s) :: acc)
      end
      else if is_alpha c then begin
        let j = ref i in
        while !j < n && is_alnum src.[!j] do
          incr j
        done;
        let word = String.sub src i (!j - i) in
        let lower = String.lowercase_ascii word in
        if List.mem lower keywords then go !j (KW lower :: acc)
        else go !j (IDENT word :: acc)
      end
      else raise (Lex_error (Printf.sprintf "unexpected character %C" c, i))
  in
  go 0 []

let pp_token ppf = function
  | IDENT s -> Format.fprintf ppf "ident %s" s
  | INT i -> Format.fprintf ppf "int %d" i
  | REAL f -> Format.fprintf ppf "real %g" f
  | STRING s -> Format.fprintf ppf "string %S" s
  | KW s -> Format.fprintf ppf "keyword %s" s
  | LPAREN -> Format.pp_print_string ppf "("
  | RPAREN -> Format.pp_print_string ppf ")"
  | COMMA -> Format.pp_print_string ppf ","
  | STAR -> Format.pp_print_string ppf "*"
  | OP s -> Format.fprintf ppf "op %s" s
