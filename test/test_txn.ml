(* Transaction-layer tests: translate semantics for every query form,
   apply_stream versioning, and error behaviour. *)

open Fdb_relational
module Ast = Fdb_query.Ast
module Txn = Fdb_txn.Txn

let schemas =
  [ Schema.make ~name:"R" ~cols:[ ("key", Schema.CInt); ("val", Schema.CStr) ];
    Schema.make ~name:"S" ~cols:[ ("key", Schema.CInt); ("tag", Schema.CStr) ] ]

let tup k s = Tuple.make [ Value.Int k; Value.Str s ]

let db_with_data () =
  let db = Database.create schemas in
  let db =
    match Database.load db ~rel:"R" [ tup 1 "a"; tup 2 "b"; tup 3 "c" ] with
    | Ok db -> db
    | Error e -> Alcotest.fail e
  in
  match Database.load db ~rel:"S" [ tup 2 "x"; tup 9 "y" ] with
  | Ok db -> db
  | Error e -> Alcotest.fail e

let response_t = Alcotest.testable Txn.pp_response Txn.response_equal

let q = Fdb_query.Parser.parse_exn

let run_one src db = Txn.translate (q src) db

let test_insert_and_duplicate () =
  let db = db_with_data () in
  let (r1, db1) = run_one "insert (4, \"d\") into R" db in
  Alcotest.check response_t "insert" (Txn.Inserted true) r1;
  Alcotest.(check int) "grew" 6 (Database.total_tuples db1);
  let (r2, db2) = run_one "insert (4, \"other\") into R" db1 in
  Alcotest.check response_t "duplicate" (Txn.Inserted false) r2;
  Alcotest.(check int) "unchanged" 6 (Database.total_tuples db2)

let test_find () =
  let db = db_with_data () in
  let (r, _) = run_one "find 2 in R" db in
  Alcotest.check response_t "hit" (Txn.Found (Some (tup 2 "b"))) r;
  let (r, _) = run_one "find 99 in R" db in
  Alcotest.check response_t "miss" (Txn.Found None) r

let test_delete () =
  let db = db_with_data () in
  let (r, db') = run_one "delete 2 from R" db in
  Alcotest.check response_t "deleted" (Txn.Deleted true) r;
  Alcotest.(check int) "shrunk" 4 (Database.total_tuples db');
  let (r, _) = run_one "delete 2 from R" db' in
  Alcotest.check response_t "gone" (Txn.Deleted false) r

let test_select_project () =
  let db = db_with_data () in
  let (r, _) = run_one "select * from R where key >= 2" db in
  Alcotest.check response_t "select"
    (Txn.Selected [ tup 2 "b"; tup 3 "c" ])
    r;
  let (r, _) = run_one "select val from R where key = 1" db in
  Alcotest.check response_t "project"
    (Txn.Selected [ Tuple.make [ Value.Str "a" ] ])
    r

let test_aggregate () =
  let db = db_with_data () in
  let (r, _) = run_one "sum key from R" db in
  Alcotest.check response_t "sum" (Txn.Aggregated (Some (Value.Int 6))) r;
  let (r, _) = run_one "max val from R where key <= 2" db in
  Alcotest.check response_t "max" (Txn.Aggregated (Some (Value.Str "b"))) r;
  let (r, _) = run_one "min key from R where key > 10" db in
  Alcotest.check response_t "empty min" (Txn.Aggregated None) r;
  let (r, db') = run_one "sum tag from S" db in
  (match r with
  | Txn.Failed _ -> ()
  | other -> Alcotest.failf "sum over strings: %a" Txn.pp_response other);
  Alcotest.(check bool) "db unchanged" true (db == db')

let test_update () =
  let db = db_with_data () in
  let (r, db') = run_one "update R set val = \"z\" where key >= 2" db in
  Alcotest.check response_t "two rewritten" (Txn.Updated 2) r;
  let (r, _) = run_one "find 2 in R" db' in
  Alcotest.check response_t "new value" (Txn.Found (Some (tup 2 "z"))) r;
  (* old version unchanged *)
  let (r, _) = run_one "find 2 in R" db in
  Alcotest.check response_t "old value intact" (Txn.Found (Some (tup 2 "b"))) r;
  let (r, db'') = run_one "update R set val = \"z\" where key >= 2" db' in
  Alcotest.check response_t "idempotent" (Txn.Updated 0) r;
  Alcotest.(check bool) "no-op shares db" true (db' == db'');
  let (r, _) = run_one "update R set key = 9" db in
  match r with
  | Txn.Failed _ -> ()
  | other -> Alcotest.failf "key update: %a" Txn.pp_response other

let test_count_join () =
  let db = db_with_data () in
  let (r, _) = run_one "count S" db in
  Alcotest.check response_t "count" (Txn.Counted 2) r;
  let (r, _) = run_one "join R and S on key = key" db in
  Alcotest.check response_t "join"
    (Txn.Joined
       [ Tuple.make [ Value.Int 2; Value.Str "b"; Value.Int 2; Value.Str "x" ] ])
    r

let test_failures_leave_db_unchanged () =
  let db = db_with_data () in
  let check_failed src =
    let (r, db') = run_one src db in
    (match r with
    | Txn.Failed _ -> ()
    | other ->
        Alcotest.failf "%s: expected failure, got %a" src Txn.pp_response other);
    Alcotest.(check bool) (src ^ ": db physically unchanged") true (db == db')
  in
  check_failed "find 1 in Nope";
  check_failed "insert (1, \"a\") into Nope";
  check_failed "insert (\"wrongtype\", \"a\") into R";
  check_failed "select ghost from R";
  check_failed "select * from R where ghost = 1";
  check_failed "join R and S on key = ghost"

let test_read_only_shares_db () =
  let db = db_with_data () in
  let (_, db') = run_one "find 1 in R" db in
  Alcotest.(check bool) "find returns the same db" true (db == db');
  let (_, db'') = run_one "select * from R" db in
  Alcotest.(check bool) "select returns the same db" true (db == db'')

let test_apply_stream_versions () =
  let db = db_with_data () in
  let txns =
    List.map
      (fun s -> Txn.translate (q s))
      [ "insert (10, \"j\") into R"; "find 10 in R"; "delete 10 from R";
        "find 10 in R" ]
  in
  let (resps, dbs) = Txn.apply_stream txns db in
  Alcotest.(check int) "4 responses" 4 (List.length resps);
  Alcotest.(check int) "4 versions" 4 (List.length dbs);
  Alcotest.(check (list response_t)) "history"
    [ Txn.Inserted true; Txn.Found (Some (tup 10 "j")); Txn.Deleted true;
      Txn.Found None ]
    resps;
  (* Each version is observable independently: the insert is visible in
     version 1 but undone in version 3. *)
  (match dbs with
  | [ v1; _; v3; _ ] ->
      Alcotest.(check int) "v1 has it" 6 (Database.total_tuples v1);
      Alcotest.(check int) "v3 does not" 5 (Database.total_tuples v3)
  | _ -> Alcotest.fail "wrong version count");
  Alcotest.(check int) "original untouched" 5 (Database.total_tuples db)

let test_translate_string () =
  (match Txn.translate_string "count R" with
  | Ok txn ->
      let (r, _) = txn (db_with_data ()) in
      Alcotest.check response_t "count via string" (Txn.Counted 3) r
  | Error e -> Alcotest.fail e);
  match Txn.translate_string "not a query" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "translated garbage"

let test_run_queries () =
  let (resps, final) =
    Txn.run_queries (db_with_data ())
      [ q "insert (7, \"z\") into S"; q "count S" ]
  in
  Alcotest.(check (list response_t)) "responses"
    [ Txn.Inserted true; Txn.Counted 3 ]
    resps;
  Alcotest.(check int) "final version" 6 (Database.total_tuples final)

(* Regression: apply_stream and run_queries must be tail recursive — the
   former non-tail versions overflowed the stack on long transaction
   streams.  Read-only queries keep the stream itself the only O(n) cost. *)
let test_long_stream () =
  let db = db_with_data () in
  let n = 200_000 in
  let queries =
    List.init n (fun i -> Ast.Find { rel = "R"; key = Value.Int (1 + (i mod 4)) })
  in
  let (resps, dbs) = Txn.apply_stream (List.map Txn.translate queries) db in
  Alcotest.(check int) "responses" n (List.length resps);
  Alcotest.(check int) "versions" n (List.length dbs);
  let (resps', final) = Txn.run_queries db queries in
  Alcotest.(check int) "run_queries responses" n (List.length resps');
  Alcotest.(check int) "final version untouched" 5
    (Database.total_tuples final)

(* Read-only transactions commute: any interleaving of finds with one
   update stream gives each find the value of the latest preceding
   version. *)
let prop_apply_stream_matches_fold =
  QCheck2.Test.make ~name:"apply_stream == left fold" ~count:200
    QCheck2.Gen.(list_size (int_range 0 40) (int_range (-15) 15))
    (fun ops ->
      let queries =
        List.map
          (fun op ->
            if op >= 0 then
              Ast.Insert
                { rel = "R"; values = [ Value.Int op; Value.Str "v" ] }
            else Ast.Delete { rel = "R"; key = Value.Int (-op) })
          ops
      in
      let db0 = Database.create schemas in
      let (resps, dbs) = Txn.apply_stream (List.map Txn.translate queries) db0 in
      let folded =
        List.fold_left
          (fun db query -> snd (Txn.translate query db))
          db0 queries
      in
      let final = match List.rev dbs with [] -> db0 | d :: _ -> d in
      List.length resps = List.length queries
      && Database.total_tuples final = Database.total_tuples folded)

(* -- complete archives (paper section 3.3) ------------------------------------ *)

module History = Fdb_txn.History

let test_history_time_travel () =
  let (h, responses) =
    History.of_queries (db_with_data ())
      (List.map q
         [ "insert (10, \"j\") into R"; "delete 1 from R"; "count R";
           "update R set val = \"w\" where key = 2" ])
  in
  Alcotest.(check int) "5 versions (incl. v0)" 5 (History.length h);
  Alcotest.(check int) "4 responses" 4 (List.length responses);
  (* every historical version still answers as it did *)
  Alcotest.check response_t "count at v0" (Txn.Counted 3)
    (History.query_at h 0 (q "count R"));
  Alcotest.check response_t "count at v1" (Txn.Counted 4)
    (History.query_at h 1 (q "count R"));
  Alcotest.check response_t "count at v2" (Txn.Counted 3)
    (History.query_at h 2 (q "count R"));
  Alcotest.check response_t "v0 still has key 1" (Txn.Found (Some (tup 1 "a")))
    (History.query_at h 0 (q "find 1 in R"));
  Alcotest.check response_t "latest has the update"
    (Txn.Found (Some (tup 2 "w")))
    (History.query_at h 4 (q "find 2 in R"))

let test_history_changed_relations () =
  let (h, _) =
    History.of_queries (db_with_data ())
      (List.map q [ "insert (10, \"j\") into R"; "count S"; "insert (11, \"k\") into S" ])
  in
  Alcotest.(check (list string)) "v1 touched R" [ "R" ]
    (History.changed_relations h 1);
  Alcotest.(check (list string)) "v2 read-only" []
    (History.changed_relations h 2);
  Alcotest.(check (list string)) "v3 touched S" [ "S" ]
    (History.changed_relations h 3);
  Alcotest.(check (list string)) "v0 has no predecessor" []
    (History.changed_relations h 0)

let test_history_sharing_ratio () =
  (* Single-relation updates leave the other slot shared: with 2 relations
     and only R-txns, half the slots share, plus fully-shared read-only
     steps. *)
  let (h, _) =
    History.of_queries (db_with_data ())
      (List.map q [ "insert (10, \"a\") into R"; "count R"; "count S" ])
  in
  (* slots: v1 shares S only (1/2); v2, v3 share both (4/4) -> 5/6 *)
  Alcotest.(check (float 1e-9)) "ratio" (5.0 /. 6.0) (History.sharing_ratio h);
  let fresh = History.create (db_with_data ()) in
  Alcotest.(check (float 1e-9)) "trivial archive" 1.0
    (History.sharing_ratio fresh)

(* Regression for the array-backed accessor: [version], [to_array] and
   [changed_relations] must agree exactly with the original List.nth-based
   walk, computed here from first principles by replaying the commits. *)
let test_history_accessor_matches_reference () =
  let queries =
    List.concat
      (List.init 10 (fun i ->
           [ Printf.sprintf "insert (%d, \"n%d\") into R" (100 + i) i;
             "count R";
             Printf.sprintf "insert (%d, \"s%d\") into S" (200 + i) i;
             Printf.sprintf "delete %d from R" (100 + i) ]))
  in
  let db0 = db_with_data () in
  let (h, _) = History.of_queries db0 (List.map q queries) in
  (* Reference: the version list rebuilt by folding the same queries. *)
  let reference_versions =
    List.rev
      (List.fold_left
         (fun acc query ->
           match acc with
           | db :: _ -> snd (Txn.translate (Fdb_query.Parser.parse_exn query) db) :: acc
           | [] -> assert false)
         [ db0 ] queries)
  in
  let n = List.length reference_versions in
  Alcotest.(check int) "lengths agree" n (History.length h);
  (* version i has exactly the contents the fold produced (the replay
     allocates its own databases, so compare contents, not identity) *)
  List.iteri
    (fun i expected ->
      Alcotest.(check bool)
        (Printf.sprintf "version %d contents agree" i)
        true
        (Fdb_check.Oracle.db_equal (History.version h i) expected))
    reference_versions;
  let arr = History.to_array h in
  Alcotest.(check int) "to_array length" n (Array.length arr);
  Array.iteri
    (fun i db ->
      Alcotest.(check bool)
        (Printf.sprintf "to_array.(%d) = version %d" i i)
        true
        (db == History.version h i))
    arr;
  (* changed_relations against the definitional computation *)
  for i = 0 to n - 1 do
    let expected =
      if i = 0 then []
      else
        let before = List.nth reference_versions (i - 1) in
        let after = List.nth reference_versions i in
        List.filter
          (fun name -> not (Database.shares_relation ~old:before after name))
          (Database.names after)
    in
    Alcotest.(check (list string))
      (Printf.sprintf "changed_relations %d" i)
      expected
      (History.changed_relations h i)
  done;
  (* extending the archive invalidates nothing: old indices still answer
     identically on the new value, and the new tip is reachable *)
  let (h', _) = History.commit_query h (q "insert (999, \"tip\") into R") in
  Alcotest.(check int) "extended length" (n + 1) (History.length h');
  for i = 0 to n - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "old version %d survives the commit" i)
      true
      (History.version h' i == History.version h i)
  done;
  Alcotest.check response_t "new tip has the insert"
    (Txn.Found (Some (tup 999 "tip")))
    (History.query_at h' n (q "find 999 in R"))

let test_history_bounds () =
  let h = History.create (db_with_data ()) in
  Alcotest.check_raises "out of range"
    (Invalid_argument "History.version: out of range") (fun () ->
      ignore (History.version h 1))

let test_history_empty () =
  (* The empty archive is unrepresentable through create/commit; building
     one explicitly raises the named exception rather than an anonymous
     assertion failure. *)
  Alcotest.check_raises "of_versions []" History.Empty_history (fun () ->
      ignore (History.of_versions []));
  (* and a non-empty explicit construction round-trips, newest first in,
     oldest first out *)
  let a = db_with_data () in
  let (_, b) = Txn.translate (q "insert (9, \"ninety\") into R") a in
  let h = History.of_versions [ b; a ] in
  Alcotest.(check int) "length" 2 (History.length h);
  Alcotest.(check bool) "version 0 is the oldest" true
    (History.version h 0 == a);
  Alcotest.(check bool) "latest is the newest" true (History.latest h == b)

let () =
  Alcotest.run "txn"
    [
      ( "translate",
        [
          Alcotest.test_case "insert/duplicate" `Quick
            test_insert_and_duplicate;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "delete" `Quick test_delete;
          Alcotest.test_case "select/project" `Quick test_select_project;
          Alcotest.test_case "count/join" `Quick test_count_join;
          Alcotest.test_case "aggregate" `Quick test_aggregate;
          Alcotest.test_case "update" `Quick test_update;
          Alcotest.test_case "failures" `Quick
            test_failures_leave_db_unchanged;
          Alcotest.test_case "read-only shares" `Quick
            test_read_only_shares_db;
          Alcotest.test_case "translate_string" `Quick test_translate_string;
        ] );
      ( "history",
        [
          Alcotest.test_case "time travel" `Quick test_history_time_travel;
          Alcotest.test_case "changed relations" `Quick
            test_history_changed_relations;
          Alcotest.test_case "sharing ratio" `Quick test_history_sharing_ratio;
          Alcotest.test_case "accessor matches reference" `Quick
            test_history_accessor_matches_reference;
          Alcotest.test_case "bounds" `Quick test_history_bounds;
          Alcotest.test_case "empty history raises" `Quick test_history_empty;
        ] );
      ( "apply_stream",
        [
          Alcotest.test_case "version stream" `Quick
            test_apply_stream_versions;
          Alcotest.test_case "run_queries" `Quick test_run_queries;
          Alcotest.test_case "200k stream stays on the heap" `Quick
            test_long_stream;
          QCheck_alcotest.to_alcotest prop_apply_stream_matches_fold;
        ] );
    ]
