open Fdb_relational
module Ast = Fdb_query.Ast
module Pred = Fdb_query.Pred
module Txn = Fdb_txn.Txn

type span =
  | Keys of Value.t list
  | Range of Relation.bound option * Relation.bound option
  | All

type t = {
  reads : (string * span list) list;
  writes : (string * Value.t list) list;
  effects : (string * (Tuple.t list * Tuple.t list)) list;
}

let empty = { reads = []; writes = []; effects = [] }

(* Tiny association lists: a transaction touches a handful of relations. *)
let upsert rel v merge assoc =
  let rec go = function
    | [] -> [ (rel, v) ]
    | (name, v0) :: rest when String.equal name rel -> (name, merge v0 v) :: rest
    | kv :: rest -> kv :: go rest
  in
  go assoc

type collector = { mutable fp : t }

let collector () = { fp = empty }
let captured c = c.fp

let tracker c : Txn.tracker =
  let add_read rel span =
    c.fp <-
      { c.fp with reads = upsert rel [ span ] (fun old s -> s @ old) c.fp.reads }
  in
  {
    Txn.read_key = (fun ~rel key -> add_read rel (Keys [ key ]));
    read_range = (fun ~rel ~lo ~hi -> add_read rel (Range (lo, hi)));
    read_all = (fun ~rel -> add_read rel All);
    write =
      (fun ~rel ~removed ~added ->
        (* An update's removed and added keys coincide (the key column
           cannot change); dedup once here instead of at every overlap
           test. *)
        let keys =
          List.sort_uniq Value.compare
            (List.rev_append (List.rev_map Tuple.key removed)
               (List.map Tuple.key added))
        in
        c.fp <-
          {
            c.fp with
            writes = upsert rel keys (fun old ks -> old @ ks) c.fp.writes;
            effects =
              upsert rel (removed, added)
                (fun (r0, a0) (r1, a1) -> (r0 @ r1, a0 @ a1))
                c.fp.effects;
          });
  }

let below key = function
  | None -> true
  | Some (Relation.Inclusive v) -> Value.compare key v <= 0
  | Some (Relation.Exclusive v) -> Value.compare key v < 0

let above key = function
  | None -> true
  | Some (Relation.Inclusive v) -> Value.compare key v >= 0
  | Some (Relation.Exclusive v) -> Value.compare key v > 0

let key_in_span key = function
  | All -> true
  | Keys ks -> List.exists (Value.equal key) ks
  | Range (lo, hi) -> above key lo && below key hi

type verdict = No_overlap | Key_disjoint | Overlapping

let overlap ~writer ~reader =
  let shared =
    List.filter
      (fun (rel, keys) -> keys <> [] && List.mem_assoc rel reader.reads)
      writer.writes
  in
  if shared = [] then No_overlap
  else if
    List.exists
      (fun (rel, keys) ->
        let spans = List.assoc rel reader.reads in
        List.exists (fun k -> List.exists (key_in_span k) spans) keys)
      shared
  then Overlapping
  else Key_disjoint

let commutes ~schema_of (writer : t) (reader_q : Ast.query) =
  (* Only queries whose response (and, for update, whose own effects) are a
     function of the set of tuples matching their full [where] predicate
     qualify: a writer whose affected tuples all fail the predicate leaves
     that matching set — hence the reader — untouched.  Find / insert /
     delete / join depend on more than a matching set, so they never
     bypass here (the key-disjoint test already covers their point
     accesses). *)
  let target =
    match reader_q with
    | Ast.Select { rel; where; _ } -> Some (rel, where)
    | Ast.Count { rel; where } -> Some (rel, where)
    | Ast.Aggregate { rel; where; _ } -> Some (rel, where)
    | Ast.Update { rel; where; _ } -> Some (rel, where)
    | Ast.Insert _ | Ast.Find _ | Ast.Delete _ | Ast.Join _ -> None
  in
  match target with
  | None -> false
  | Some (rel, where) -> (
      match schema_of rel with
      | None -> false
      | Some schema -> (
          match Pred.compile schema where with
          | Error _ -> false
          | Ok matches ->
              List.for_all
                (fun (wrel, (removed, added)) ->
                  (not (String.equal wrel rel))
                  || not
                       (List.exists matches removed || List.exists matches added))
                writer.effects))
