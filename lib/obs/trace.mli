(** The global event sink.

    Tracing is off by default and the disabled path is a guaranteed no-op:
    instrumented code must guard event {e construction} behind
    {!val:enabled}, as in

    {[
      if Trace.enabled () then
        Trace.emit_at ~ts ~site (Event.Cell_write { cell })
    ]}

    so that with the sink disabled no event record is ever allocated (the
    bench [trace-overhead] check asserts this on the pipeline hot path).

    While enabled, every event also lands in a small ring buffer so failure
    diagnostics ({!Fdb_net.Reliable.No_quiescence}, [Sim.Lost_queries]) can
    attach the last-N-events tail without any cooperation from the sink. *)

val enabled : unit -> bool
(** Branch guard; a plain [bool ref] dereference. *)

val set_sink : (Event.t -> unit) option -> unit
(** Install (or remove, with [None]) the sink.  Tracing is enabled exactly
    when a sink is installed. *)

val emit_at : ts:int -> site:int -> Event.kind -> unit
(** Deliver an event to the sink and the ring.  Callers must have checked
    {!val:enabled} first — when disabled this silently drops, but by then
    the event was already allocated. *)

val emit : Event.kind -> unit
(** [emit_at] with [ts] taken from a global emission counter and
    [site = -1]; for layers with no meaningful clock or placement. *)

val record : (unit -> 'a) -> 'a * Event.t list
(** [record f] runs [f] with a collecting sink installed and returns its
    result together with every event emitted during the call, in emission
    order.  Restores the previous sink (even on exception — the exception
    is re-raised). *)

val tail : ?n:int -> unit -> string list
(** Rendered copies of the last [n] (default 12) events seen while tracing
    was enabled; oldest first.  Empty if tracing never ran. *)

val clear_tail : unit -> unit
