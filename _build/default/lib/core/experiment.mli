(** Experiment runners: one function per paper table/figure plus the
    ablations listed in DESIGN.md.  Everything is deterministic in the
    seed; the bench harness and the CLI both call these. *)

open Fdb_net

(** {1 Table I — maximum and average concurrency (ideal mode)} *)

type concurrency_cell = {
  c_pct : float;
  c_relations : int;
  c_max_ply : int;
  c_avg_ply : float;
  c_tasks : int;
  c_cycles : int;
}

val table1 :
  ?transactions:int -> ?initial_tuples:int -> ?seed:int ->
  ?semantics:Pipeline.semantics -> unit -> concurrency_cell list
(** The paper grid: relations in {5, 3, 1} x insert percentage in
    {0, 4, 7, 14, 24, 38}. *)

val pp_table1 : Format.formatter -> concurrency_cell list -> unit
(** Same layout as the paper's Table I. *)

(** {1 Tables II and III — speedup on a machine} *)

type speedup_cell = {
  s_pct : float;
  s_relations : int;
  s_speedup : float;
  s_utilization : float;
  s_migrations : int;
  s_messages : int;
  s_cycles : int;
}

val speedup_table :
  ?transactions:int -> ?initial_tuples:int -> ?seed:int ->
  ?semantics:Pipeline.semantics -> Topology.t -> speedup_cell list

val table2 : ?seed:int -> unit -> speedup_cell list
(** 8-node binary hypercube. *)

val table3 : ?seed:int -> unit -> speedup_cell list
(** 27-node (3x3x3) Euclidean cube. *)

val pp_speedup_table : Format.formatter -> speedup_cell list -> unit

(** {1 Figure 2-1 — apply-stream in action} *)

val fig21 : Format.formatter -> unit -> unit
(** Prints the functional-equation view of transaction processing and runs
    a three-transaction demonstration showing the version stream. *)

(** {1 Figure 2-2 / §3.3 — page sharing under functional updating} *)

type sharing_row = {
  h_n : int;  (** tuples in the relation *)
  h_pages : int;  (** pages in the new version *)
  h_rebuilt : int;  (** pages built by one insert *)
  h_shared : int;
  h_fraction : float;  (** rebuilt / total — the (log n)/n claim *)
}

val fig22 : ?branching:int -> ?sizes:int list -> unit -> sharing_row list

val pp_fig22 : Format.formatter -> sharing_row list -> unit

(** {1 Figure 2-3 — merge and de-facto parallel schedule} *)

val fig23 : Format.formatter -> unit -> unit
(** Runs the paper's exact two-stream example with tracing and prints the
    merged stream and the cycle-by-cycle schedule it decomposed into. *)

(** {1 Ablations} *)

type repr_row = {
  r_backend : string;
  r_n : int;
  r_units_per_insert : float;  (** cells/nodes/pages rebuilt, averaged *)
  r_shared_fraction : float;
}

val ablation_repr : ?sizes:int list -> unit -> repr_row list
(** List vs AVL vs 2-3 vs B-tree reconstruction cost per update (the §2.3 /
    §5 projection that trees beat lists). *)

val pp_ablation_repr : Format.formatter -> repr_row list -> unit

type topo_row = {
  t_name : string;
  t_pes : int;
  t_balance : bool;
  t_speedup : float;
  t_cycles : int;
  t_migrations : int;
}

val ablation_topo : ?seed:int -> unit -> topo_row list
(** The default workload across ring / star / torus / hypercube / mesh /
    bus, with load balancing on and off. *)

val pp_ablation_topo : Format.formatter -> topo_row list -> unit

type merge_row = {
  m_policy : string;
  m_clients : int;
  m_max_ply : int;
  m_avg_ply : float;
  m_serializable : bool;
}

val ablation_merge : ?seed:int -> unit -> merge_row list
(** Merge-policy sensitivity (§2.4's "judicious ordering" future work):
    every interleaving must stay serializable; concurrency may differ. *)

val pp_ablation_merge : Format.formatter -> merge_row list -> unit

type engine_repr_row = {
  e_repr : string;
  e_pct : float;
  e_tasks : int;
  e_cycles : int;
  e_max_ply : int;
  e_avg_ply : float;
}

val ablation_engine_repr : ?seed:int -> unit -> engine_repr_row list
(** List vs 2-3 tree {e at the engine level}: the same single-relation
    insert/find stream executed over a lenient ordered list and a lenient
    2-3 tree.  Quantifies §2.3's projection inside the task-graph model
    itself (the pure-structure version is {!val:ablation_repr}). *)

val pp_ablation_engine_repr : Format.formatter -> engine_repr_row list -> unit

type semantics_row = {
  x_semantics : string;
  x_pct : float;
  x_max_ply : int;
  x_avg_ply : float;
  x_tasks : int;
}

val ablation_semantics : ?seed:int -> unit -> semantics_row list
(** Prepend (the paper's multiset lists) vs Ordered_unique (keyed sets):
    how the insert representation changes the concurrency profile. *)

val pp_ablation_semantics : Format.formatter -> semantics_row list -> unit

type scaling_row = {
  g_transactions : int;
  g_tuples : int;
  g_max_ply : int;
  g_avg_ply : float;
  g_cycles : int;
  g_tasks : int;
}

val scaling : ?seed:int -> unit -> scaling_row list
(** Beyond the paper's fixed 50x50 point: how the extracted concurrency
    grows with the stream length and the relation size (3 relations,
    14% inserts). *)

val pp_scaling : Format.formatter -> scaling_row list -> unit

(** {1 Shared plumbing} *)

val merged_workload :
  Fdb_workload.Workload.t -> (int * Fdb_query.Ast.query) list
(** Merge the workload's client streams in arrival order and tag them. *)
