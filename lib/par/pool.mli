(** A fixed pool of OCaml 5 domains executing site-addressed tasks.

    The multicore execution layer under the parallel pipeline executor:
    each worker domain owns a deque, {!val:submit}[ ~site] routes a task
    to deque [site mod domains] (the same site-to-processor mapping the
    Rediflow scheduler uses), idle workers steal from the back of their
    neighbours' deques, and {!val:wait} is a barrier over everything
    submitted so far.

    The pool promises nothing about execution {e order} — determinism of
    results comes from the data (single-assignment cells, immutable
    versions), which makes the task graph confluent.  The deterministic
    single-threaded engine remains the oracle; this pool is how the same
    answers are produced as fast as the hardware allows. *)

type t

type stats = {
  domains : int;
  executed : int array;  (** tasks run per worker domain *)
  steals : int;  (** tasks taken from another domain's deque *)
}

val create : ?domains:int -> unit -> t
(** Spawn the worker domains.  [domains] defaults to
    [Domain.recommended_domain_count () - 1] (at least 1); it must be in
    1..128.  Every pool must be {!val:shutdown} (or use
    {!val:with_pool}). *)

val size : t -> int
(** Number of worker domains. *)

val submit : t -> site:int -> (unit -> unit) -> unit
(** Enqueue a task on the deque of domain [site mod size].  Tasks may
    submit further tasks.  A task that raises records its exception (the
    first one wins) for the next {!val:wait} to re-raise. *)

val wait : t -> unit
(** Park until every task submitted so far has completed, then re-raise
    the first exception any of them recorded, if any. *)

val stats : t -> stats

val shutdown : t -> unit
(** {!val:wait}, then stop and join the worker domains. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [create], run, [shutdown] (also on exception). *)
