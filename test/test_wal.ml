(* The durable version log (lib/wal): writer/recovery round trips, the
   group-fsync loss bound, checkpoint compaction, the durability trace
   oracle, the truncation-fuzz property (every byte-prefix of a log
   recovers a version-prefix or is rejected — never a wrong history), the
   crash-restart differential sweep, and the Pipeline durability sink. *)

open Fdb_relational
module Wal = Fdb_wal.Wal
module Wire = Fdb_wire.Wire
module History = Fdb_txn.History
module Txn = Fdb_txn.Txn
module Sim = Fdb_check.Sim
module Gen = Fdb_check.Gen
module Oracle = Fdb_check.Oracle
module Trace_oracle = Fdb_check.Trace_oracle
module Merge = Fdb_merge.Merge
module Event = Fdb_obs.Event
module Trace = Fdb_obs.Trace
module Pipeline = Fdb.Pipeline

let q = Fdb_query.Parser.parse_exn

(* A seeded chain of committed versions (oldest first, element 0 = the
   initial database): a generated scenario's streams, seed-merged and run
   through the sequential reference engine, keeping changed versions. *)
let chain ~seed =
  let sc = Gen.generate { Gen.default_spec with seed; queries_per_client = 24 } in
  let db0 = Gen.initial_db sc in
  let merged = Merge.merge (Merge.Seeded seed) sc.Gen.streams in
  let versions = ref [ db0 ] in
  let db = ref db0 in
  List.iter
    (fun (m : _ Merge.tagged) ->
      let (_r, db') = Txn.translate m.Merge.item !db in
      if not (db' == !db) then begin
        db := db';
        versions := db' :: !versions
      end)
    merged;
  Array.of_list (List.rev !versions)

let write_chain ?sync_every ?checkpoint_every store vs =
  let w = Wal.create ?sync_every ?checkpoint_every ~store vs.(0) in
  for i = 1 to Array.length vs - 1 do
    Wal.append w vs.(i)
  done;
  w

let check_recovered msg (r : Wal.recovery) vs =
  for i = r.Wal.base to r.Wal.upto do
    Alcotest.(check bool)
      (Printf.sprintf "%s: version %d" msg i)
      true
      (Oracle.db_equal (History.version r.Wal.rhistory (i - r.Wal.base)) vs.(i))
  done

let is_clean (r : Wal.recovery) =
  match r.Wal.stop with Wal.Clean -> true | Wal.Stopped _ -> false

(* -- writer / recovery ------------------------------------------------------ *)

let test_roundtrip () =
  let vs = chain ~seed:1 in
  let mem = Wal.Mem.create () in
  let store = Wal.Mem.store mem in
  let w = write_chain store vs in
  Wal.sync w;
  Alcotest.(check int) "appended" (Array.length vs - 1) (Wal.appended w);
  Alcotest.(check int) "durable" (Wal.appended w) (Wal.durable w);
  let r = Wal.recover store in
  Alcotest.(check bool) "clean" true (is_clean r);
  Alcotest.(check int) "base" 0 r.Wal.base;
  Alcotest.(check int) "upto" (Wal.appended w) r.Wal.upto;
  check_recovered "roundtrip" r vs

let test_group_sync_loss_bound () =
  let vs = chain ~seed:2 in
  let mem = Wal.Mem.create () in
  let store = Wal.Mem.store mem in
  let w = write_chain ~sync_every:4 store vs in
  let appended = Wal.appended w and durable = Wal.durable w in
  Alcotest.(check bool) "loss bound" true
    (durable <= appended && appended - durable < 4);
  Wal.Mem.crash ~rand:(Random.State.make [| 42 |]) mem;
  let r = Wal.recover store in
  Alcotest.(check bool) "durable <= upto" true (durable <= r.Wal.upto);
  Alcotest.(check bool) "upto <= appended" true (r.Wal.upto <= appended);
  check_recovered "after crash" r vs

let test_sync_every_zero_is_explicit_only () =
  let vs = chain ~seed:3 in
  let mem = Wal.Mem.create () in
  let store = Wal.Mem.store mem in
  let w = write_chain ~sync_every:0 store vs in
  (* only the genesis checkpoint was synced *)
  Alcotest.(check int) "durable" 0 (Wal.durable w);
  Wal.sync w;
  Alcotest.(check int) "after sync" (Wal.appended w) (Wal.durable w)

let test_resume () =
  let vs = chain ~seed:5 in
  let n = Array.length vs in
  let half = n / 2 in
  let mem = Wal.Mem.create () in
  let store = Wal.Mem.store mem in
  let w = Wal.create ~sync_every:2 ~store vs.(0) in
  for i = 1 to half - 1 do
    Wal.append w vs.(i)
  done;
  Wal.sync w;
  Wal.Mem.crash ~rand:(Random.State.make [| 7 |]) mem;
  let r = Wal.recover store in
  Alcotest.(check int) "nothing lost" (half - 1) r.Wal.upto;
  let w2 = Wal.resume ~sync_every:2 ~store r in
  Alcotest.(check bool) "fresh segment" true (Wal.segment w2 > 0);
  for i = half to n - 1 do
    Wal.append w2 vs.(i)
  done;
  Wal.sync w2;
  let r2 = Wal.recover store in
  Alcotest.(check int) "full chain" (n - 1) r2.Wal.upto;
  check_recovered "resumed" r2 vs

let test_create_validates () =
  let store = Wal.Mem.store (Wal.Mem.create ()) in
  let db = Database.create [] in
  List.iter
    (fun f ->
      match f () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "bad parameter accepted")
    [ (fun () -> ignore (Wal.create ~sync_every:(-1) ~store db));
      (fun () -> ignore (Wal.create ~checkpoint_every:(-2) ~store db)) ]

(* -- checkpoint compaction -------------------------------------------------- *)

(* Recovery from checkpoint + suffix equals recovery from the full log on
   the overlapping version range, and compaction actually deletes the old
   segments (only the current one remains). *)
let test_compaction_equality () =
  let vs = chain ~seed:11 in
  let mem_c = Wal.Mem.create () in
  let store_c = Wal.Mem.store mem_c in
  let wc = write_chain ~checkpoint_every:4 store_c vs in
  Wal.sync wc;
  let mem_f = Wal.Mem.create () in
  let store_f = Wal.Mem.store mem_f in
  let wf = write_chain store_f vs in
  Wal.sync wf;
  let rc = Wal.recover store_c and rf = Wal.recover store_f in
  Alcotest.(check int) "same upto" rf.Wal.upto rc.Wal.upto;
  Alcotest.(check int) "full log from v0" 0 rf.Wal.base;
  Alcotest.(check bool) "compacted past v0" true (rc.Wal.base > 0);
  for i = rc.Wal.base to rc.Wal.upto do
    Alcotest.(check bool)
      (Printf.sprintf "overlap version %d" i)
      true
      (Oracle.db_equal
         (History.version rc.Wal.rhistory (i - rc.Wal.base))
         (History.version rf.Wal.rhistory i))
  done;
  Alcotest.(check bool) "latest equal" true
    (Oracle.db_equal
       (History.latest rc.Wal.rhistory)
       (History.latest rf.Wal.rhistory));
  (* old segments are gone; the survivor is the newest one *)
  (match store_c.Wal.Store.list_files () with
  | [ f ] ->
      Alcotest.(check bool) "newest segment" true
        (Wal.segment_number f = Some (Wal.segment wc))
  | files ->
      Alcotest.fail
        (Printf.sprintf "%d segment files after compaction" (List.length files)));
  check_recovered "compacted" rc vs

(* A checkpoint's deletions must survive a crash right after the
   checkpoint returns: the new segment's checkpoint frame was synced
   before anything was deleted. *)
let test_compaction_then_crash () =
  let vs = chain ~seed:12 in
  let mem = Wal.Mem.create () in
  let store = Wal.Mem.store mem in
  let w = write_chain ~sync_every:0 ~checkpoint_every:3 store vs in
  let durable = Wal.durable w in
  Wal.Mem.crash ~rand:(Random.State.make [| 13 |]) mem;
  let r = Wal.recover store in
  Alcotest.(check bool) "checkpointed versions survive" true
    (r.Wal.upto >= durable);
  check_recovered "post-checkpoint crash" r vs

(* -- the durability trace oracle ------------------------------------------- *)

let ev kind = { Event.ts = 0; site = 0; kind }

let check_violates name events =
  match Trace_oracle.durability events with
  | [] -> Alcotest.fail (name ^ ": violation not detected")
  | v :: _ ->
      Alcotest.(check string) (name ^ ": invariant") "durability"
        v.Trace_oracle.invariant

let test_durability_oracle_rejects () =
  (* committed-but-lost: recovery falls short of the durable mark *)
  check_violates "lost commit"
    [ ev (Event.Wal_append { index = 1; bytes = 10 });
      ev (Event.Wal_append { index = 2; bytes = 10 });
      ev (Event.Wal_sync { upto = 2 });
      ev (Event.Wal_recovered { upto = 1; base = 0; reason = "torn" }) ];
  (* recovery inventing versions past the last append *)
  check_violates "invented version"
    [ ev (Event.Wal_append { index = 1; bytes = 10 });
      ev (Event.Wal_recovered { upto = 5; base = 0; reason = "clean" }) ];
  (* the doctored compaction ordering: deleting the old segment when the
     newest synced checkpoint still lives in it *)
  check_violates "early segment delete"
    [ ev (Event.Wal_checkpoint { upto = 0; bytes = 10; segment = 0 });
      ev (Event.Wal_segment_delete { segment = 0 }) ];
  check_violates "delete before any checkpoint"
    [ ev (Event.Wal_segment_delete { segment = 0 }) ];
  (* appends must advance one version at a time *)
  check_violates "append gap"
    [ ev (Event.Wal_append { index = 1; bytes = 10 });
      ev (Event.Wal_append { index = 3; bytes = 10 }) ];
  (* sync cannot promise more than was appended *)
  check_violates "over-promising sync"
    [ ev (Event.Wal_append { index = 1; bytes = 10 });
      ev (Event.Wal_sync { upto = 2 }) ]

let test_durability_oracle_accepts () =
  Alcotest.(check (list string)) "lawful synthetic" []
    (List.map
       (fun v -> v.Trace_oracle.detail)
       (Trace_oracle.durability
          [ ev (Event.Wal_checkpoint { upto = 0; bytes = 10; segment = 0 });
            ev (Event.Wal_append { index = 1; bytes = 10 });
            ev (Event.Wal_sync { upto = 1 });
            ev (Event.Wal_checkpoint { upto = 1; bytes = 12; segment = 1 });
            ev (Event.Wal_segment_delete { segment = 0 });
            ev (Event.Wal_append { index = 2; bytes = 10 });
            ev (Event.Wal_recovered { upto = 1; base = 1; reason = "torn" });
            (* the restarted writer continues from the recovered tail *)
            ev (Event.Wal_append { index = 2; bytes = 10 }) ]))

(* A real writer + recovery, recorded live, is lawful under every oracle
   law — and actually emits the durability events. *)
let test_live_trace_lawful () =
  let vs = chain ~seed:6 in
  let ((), trace) =
    Trace.record (fun () ->
        let mem = Wal.Mem.create () in
        let store = Wal.Mem.store mem in
        let w = write_chain ~sync_every:2 ~checkpoint_every:4 store vs in
        Wal.sync w;
        ignore (Wal.recover store))
  in
  let has k = List.exists (fun (e : Event.t) -> Event.name e.Event.kind = k) in
  List.iter
    (fun k -> Alcotest.(check bool) ("emits " ^ k) true (has k trace))
    [ "wal_append"; "wal_sync"; "wal_checkpoint"; "wal_segment_delete";
      "wal_replay"; "wal_recovered" ];
  Alcotest.(check (list string)) "lawful" []
    (List.map (fun v -> v.Trace_oracle.detail) (Trace_oracle.check trace))

(* -- the truncation-fuzz property (satellite) -------------------------------

   For a random history, every strict byte-prefix of the encoded log
   either recovers a strict version-prefix (judged against the versions
   the reference engine committed) or raises [Wire.Corrupt] — never a
   wrong or reordered history. *)

let prop_prefix_recovers_prefix =
  QCheck2.Test.make ~name:"byte-prefix recovers version-prefix" ~count:200
    QCheck2.Gen.(int_range 0 9999)
    (fun seed ->
      let rand = Random.State.make [| seed; 0xF52 |] in
      let vs = chain ~seed:(seed mod 37) in
      let checkpoint_every = if seed mod 2 = 0 then 0 else 3 in
      let mem = Wal.Mem.create () in
      let store = Wal.Mem.store mem in
      let w = write_chain ~checkpoint_every store vs in
      Wal.sync w;
      (* truncate the newest segment at a random strict prefix *)
      let name = Wal.segment_name (Wal.segment w) in
      let bytes = Wal.Mem.get mem name in
      let cut = Random.State.int rand (String.length bytes) in
      Wal.Mem.set mem name (String.sub bytes 0 cut);
      match Wal.recover store with
      | exception Wire.Corrupt _ ->
          (* a typed rejection is always acceptable: the cut fell inside
             fsync'd checkpoint bytes — real corruption, not a torn
             write — leaving no intact checkpoint to recover from *)
          true
      | r ->
          r.Wal.upto <= Wal.appended w
          && r.Wal.base <= r.Wal.upto
          && (let ok = ref true in
              for i = r.Wal.base to r.Wal.upto do
                if
                  not
                    (Oracle.db_equal
                       (History.version r.Wal.rhistory (i - r.Wal.base))
                       vs.(i))
                then ok := false
              done;
              !ok))

(* -- the crash-restart differential sweep ----------------------------------- *)

let test_run_disk_sweep () =
  let sc = Gen.generate { Gen.default_spec with seed = 9 } in
  List.iter
    (fun fault ->
      List.iter
        (fun checkpoint_every ->
          for seed = 0 to 3 do
            let o = Sim.run_disk ~checkpoint_every ~fault ~seed sc in
            Alcotest.(check bool)
              (Printf.sprintf "%s/ck%d/seed%d recovered >= durable"
                 (Sim.disk_fault_name fault) checkpoint_every seed)
              true
              (o.Sim.disk_recovered >= o.Sim.disk_durable);
            Alcotest.(check bool) "recoveries metered" true
              (match
                 List.assoc_opt "wal.recoveries"
                   o.Sim.disk_metrics.Fdb_obs.Metrics.counters
               with
              | Some n -> n >= 2
              | None -> false)
          done)
        [ 0; 3 ])
    Sim.all_disk_faults

let test_disk_fault_names_roundtrip () =
  List.iter
    (fun f ->
      Alcotest.(check bool) (Sim.disk_fault_name f) true
        (Sim.disk_fault_of_name (Sim.disk_fault_name f) = Some f))
    Sim.all_disk_faults;
  Alcotest.(check bool) "unknown" true (Sim.disk_fault_of_name "nope" = None)

(* -- the Pipeline durability sink ------------------------------------------- *)

let schemas =
  [ Schema.make ~name:"R" ~cols:[ ("key", Schema.CInt); ("val", Schema.CStr) ];
    Schema.make ~name:"S" ~cols:[ ("key", Schema.CInt); ("val", Schema.CStr) ] ]

let tup k s = Tuple.make [ Value.Int k; Value.Str s ]

let spec_small =
  {
    Pipeline.schemas;
    initial = [ ("R", [ tup 1 "a"; tup 3 "c" ]); ("S", [ tup 10 "x" ]) ];
  }

let tagged =
  List.mapi
    (fun i src -> (i mod 3, q src))
    [
      "insert (2, \"b\") into R";
      "find 1 in R";
      "insert (2, \"dup\") into R";
      (* rejected duplicate: no version logged *)
      "delete 3 from R";
      "insert (20, \"y\") into S";
      "update R set val = \"u\" where key = 1";
      "count R";
      "select * from S where key >= 10";
      "delete 99 from S" (* miss: no version logged *);
    ]

let check_final_db msg final_db db =
  List.iter
    (fun (name, tuples) ->
      match Database.relation db name with
      | None -> Alcotest.fail (msg ^ ": missing relation " ^ name)
      | Some rel ->
          Alcotest.(check bool)
            (msg ^ ": " ^ name)
            true
            (List.equal Tuple.equal tuples (Relation.to_list rel)))
    final_db

let recover_clean store =
  let r = Wal.recover store in
  Alcotest.(check bool) "clean recovery" true (is_clean r);
  r

let test_sink_run () =
  let store = Wal.Mem.store (Wal.Mem.create ()) in
  let w = Wal.create ~store (Pipeline.initial_database spec_small) in
  let report =
    Pipeline.run ~semantics:Pipeline.Ordered_unique ~wal:w spec_small tagged
  in
  let r = recover_clean store in
  Alcotest.(check int) "all appends durable" (Wal.appended w) r.Wal.upto;
  check_final_db "lenient run" report.Pipeline.final_db
    (History.latest r.Wal.rhistory)

let test_sink_run_streams () =
  let store = Wal.Mem.store (Wal.Mem.create ()) in
  let w = Wal.create ~store (Pipeline.initial_database spec_small) in
  let (report, _merged) =
    Pipeline.run_streams ~semantics:Pipeline.Ordered_unique ~wal:w spec_small
      [ List.map snd tagged ]
  in
  let r = recover_clean store in
  check_final_db "run_streams" report.Pipeline.final_db
    (History.latest r.Wal.rhistory)

let test_sink_run_parallel () =
  let store = Wal.Mem.store (Wal.Mem.create ()) in
  let w = Wal.create ~store (Pipeline.initial_database spec_small) in
  let report =
    Pipeline.run_parallel ~semantics:Pipeline.Ordered_unique ~domains:2 ~wal:w
      spec_small tagged
  in
  let r = recover_clean store in
  check_final_db "run_parallel" report.Pipeline.par_final_db
    (History.latest r.Wal.rhistory)

let test_sink_run_repair () =
  let store = Wal.Mem.store (Wal.Mem.create ()) in
  let w = Wal.create ~store (Pipeline.initial_database spec_small) in
  let report = Pipeline.run_repair ~domains:2 ~batch:4 ~wal:w spec_small tagged in
  let r = recover_clean store in
  Alcotest.(check int) "all appends durable" (Wal.appended w) r.Wal.upto;
  check_final_db "run_repair" report.Pipeline.rep_final_db
    (History.latest r.Wal.rhistory)

let test_sink_run_sharded () =
  let store = Wal.Mem.store (Wal.Mem.create ()) in
  let w = Wal.create ~store (Pipeline.initial_database spec_small) in
  let report = Pipeline.run_sharded ~shards:2 ~wal:w spec_small tagged in
  let r = recover_clean store in
  Alcotest.(check int) "all appends durable" (Wal.appended w) r.Wal.upto;
  Alcotest.(check int) "one version per commit plus the initial"
    report.Pipeline.sh_versions (1 + r.Wal.upto);
  check_final_db "run_sharded" report.Pipeline.sh_final_db
    (History.latest r.Wal.rhistory)

(* The three logging modes agree: same inputs, same durable version chain. *)
let test_sink_modes_agree () =
  let log run =
    let store = Wal.Mem.store (Wal.Mem.create ()) in
    let w = Wal.create ~store (Pipeline.initial_database spec_small) in
    run w;
    Wal.recover store
  in
  let a =
    log (fun w ->
        ignore
          (Pipeline.run ~semantics:Pipeline.Ordered_unique ~wal:w spec_small
             tagged))
  in
  let b =
    log (fun w ->
        ignore
          (Pipeline.run_parallel ~semantics:Pipeline.Ordered_unique ~wal:w
             spec_small tagged))
  in
  Alcotest.(check int) "same version count" a.Wal.upto b.Wal.upto;
  for i = 0 to a.Wal.upto do
    Alcotest.(check bool)
      (Printf.sprintf "version %d agrees" i)
      true
      (Oracle.db_equal
         (History.version a.Wal.rhistory i)
         (History.version b.Wal.rhistory i))
  done

let test_sink_rejects_prepend () =
  let store = Wal.Mem.store (Wal.Mem.create ()) in
  let w = Wal.create ~store (Pipeline.initial_database spec_small) in
  List.iter
    (fun f ->
      match f () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "Prepend + wal accepted")
    [ (fun () -> ignore (Pipeline.run ~wal:w spec_small tagged));
      (fun () -> ignore (Pipeline.run_streams ~wal:w spec_small []));
      (fun () -> ignore (Pipeline.run_parallel ~domains:2 ~wal:w spec_small []))
    ]

let () =
  Alcotest.run "wal"
    [
      ( "writer",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "group-sync loss bound" `Quick
            test_group_sync_loss_bound;
          Alcotest.test_case "explicit-only sync" `Quick
            test_sync_every_zero_is_explicit_only;
          Alcotest.test_case "resume" `Quick test_resume;
          Alcotest.test_case "argument validation" `Quick test_create_validates;
        ] );
      ( "compaction",
        [
          Alcotest.test_case "checkpoint+suffix == full log" `Quick
            test_compaction_equality;
          Alcotest.test_case "crash after checkpoint" `Quick
            test_compaction_then_crash;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "rejects violations" `Quick
            test_durability_oracle_rejects;
          Alcotest.test_case "accepts lawful" `Quick
            test_durability_oracle_accepts;
          Alcotest.test_case "live trace lawful" `Quick test_live_trace_lawful;
        ] );
      ( "fuzz",
        [ QCheck_alcotest.to_alcotest prop_prefix_recovers_prefix ] );
      ( "crash-restart",
        [
          Alcotest.test_case "differential sweep" `Slow test_run_disk_sweep;
          Alcotest.test_case "fault names" `Quick
            test_disk_fault_names_roundtrip;
        ] );
      ( "pipeline-sink",
        [
          Alcotest.test_case "run" `Quick test_sink_run;
          Alcotest.test_case "run_streams" `Quick test_sink_run_streams;
          Alcotest.test_case "run_parallel" `Slow test_sink_run_parallel;
          Alcotest.test_case "run_repair" `Slow test_sink_run_repair;
          Alcotest.test_case "run_sharded" `Quick test_sink_run_sharded;
          Alcotest.test_case "modes agree" `Slow test_sink_modes_agree;
          Alcotest.test_case "rejects Prepend" `Quick test_sink_rejects_prepend;
        ] );
    ]
