test/test_rediflow.ml: Alcotest Array Engine Fdb_kernel Fdb_net Fdb_rediflow Machine Printf QCheck2 QCheck_alcotest Random Topology
