test/test_lenient.ml: Alcotest Engine Fdb_kernel Fdb_lenient List Llist Lmerge Ltree Printf QCheck2 QCheck_alcotest
