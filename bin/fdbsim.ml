(* fdbsim: command-line driver for the functional distributed database.

   Subcommands:
     run        — execute a query script through the lenient pipeline
     explain    — show the access path the planner picks for each query
                  (optionally with a declared index catalog)
     index      — differential sweeps of the secondary/derived index layer
     workload   — generate and run a synthetic workload, print concurrency
     table      — reproduce a paper table (1, 2 or 3)
     fel        — run a mini-FEL program
     topo       — describe a topology
     check      — seeded serializability sweeps (oracle + fault injection)
     recover    — crash-failover sweeps through the replicated pair
     trace      — capture a run as Chrome trace_event JSON + invariants
     stats      — metrics registry snapshot after a seeded sweep
     par        — differential sweeps of the domain-parallel flood executor
     repair     — differential sweeps of the speculative repair executor
     shard      — cross-shard differential sweeps of the sharded executor
     recover-disk — crash-restart sweeps of the durable version log
     wal        — inspect a log directory frame by frame *)

open Cmdliner
module W = Fdb_workload.Workload
module Topology = Fdb_net.Topology
module Machine = Fdb_rediflow.Machine
module Engine = Fdb_kernel.Engine
open Fdb

(* -- shared argument converters -------------------------------------------- *)

let topology_of_string s =
  match String.split_on_char ':' s with
  | [ "single" ] -> Ok (Topology.single ())
  | [ "hypercube"; d ] -> (
      match int_of_string_opt d with
      | Some d when d >= 0 -> Ok (Topology.hypercube d)
      | _ -> Error "hypercube:<dim>")
  | [ "mesh"; dims ] -> (
      match List.map int_of_string_opt (String.split_on_char 'x' dims) with
      | [ Some x; Some y; Some z ] -> Ok (Topology.mesh3d x y z)
      | _ -> Error "mesh:<x>x<y>x<z>")
  | [ "ring"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 2 -> Ok (Topology.ring n)
      | _ -> Error "ring:<n>")
  | [ "star"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 2 -> Ok (Topology.star n)
      | _ -> Error "star:<n>")
  | [ "torus"; dims ] -> (
      match List.map int_of_string_opt (String.split_on_char 'x' dims) with
      | [ Some x; Some y ] -> Ok (Topology.torus2d x y)
      | _ -> Error "torus:<x>x<y>")
  | [ "bus"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 1 -> Ok (Topology.bus n)
      | _ -> Error "bus:<n>")
  | [ "complete"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 2 -> Ok (Topology.complete n)
      | _ -> Error "complete:<n>")
  | _ ->
      Error
        "expected single | hypercube:<d> | mesh:<x>x<y>x<z> | ring:<n> | \
         star:<n> | torus:<x>x<y> | bus:<n> | complete:<n>"

let topology_conv =
  let parse s =
    match topology_of_string s with
    | Ok t -> Ok t
    | Error e -> Error (`Msg ("bad topology: " ^ e))
  in
  Arg.conv (parse, fun ppf t -> Topology.pp ppf t)

let topo_arg =
  Arg.(
    value
    & opt (some topology_conv) None
    & info [ "t"; "topology" ] ~docv:"TOPO"
        ~doc:
          "Run on a Rediflow machine with this topology (e.g. hypercube:3, \
           mesh:3x3x3, ring:8).  Without it, the ideal machine is used.")

let semantics_arg =
  let s =
    Arg.enum [ ("prepend", Pipeline.Prepend); ("ordered", Pipeline.Ordered_unique) ]
  in
  Arg.(
    value & opt s Pipeline.Prepend
    & info [ "semantics" ] ~docv:"SEM"
        ~doc:
          "Insert semantics: $(b,prepend) (the paper's multiset lists) or \
           $(b,ordered) (keyed sets).")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Workload random seed.")

let mode_of topo =
  match topo with
  | None -> Pipeline.Ideal
  | Some t -> Pipeline.On_machine (Machine.default_config t)

let print_stats (report : Pipeline.report) =
  let s = report.Pipeline.stats in
  Format.printf
    "@.engine: %d tasks, %d cycles, max ply %d, avg ply %.2f@." s.Engine.tasks
    s.Engine.cycles s.Engine.max_ply s.Engine.avg_ply;
  match (report.Pipeline.speedup, report.Pipeline.machine) with
  | (Some sp, Some m) ->
      Format.printf
        "machine: speedup %.2f, utilization %.2f, %d messages, %d migrations@."
        sp
        (Machine.utilization m ~cycles:s.Engine.cycles)
        m.Machine.net.Fdb_net.Fabric.sent m.Machine.migrations
  | _ -> ()

(* -- run: execute a script --------------------------------------------------- *)

let run_cmd =
  let script_arg =
    Arg.(
      value & pos 0 (some file) None
      & info [] ~docv:"SCRIPT"
          ~doc:"Query script file ( ;-or-newline separated; -- comments).  \
                Reads stdin when omitted.")
  in
  let relations_arg =
    Arg.(
      value & opt (list string) [ "R"; "S" ]
      & info [ "relations" ] ~docv:"NAMES"
          ~doc:"Relation names to create (schema: key:int, val:string).")
  in
  let go script relations semantics topo =
    let src =
      match script with
      | Some path -> In_channel.with_open_text path In_channel.input_all
      | None -> In_channel.input_all stdin
    in
    match Fdb_query.Parser.parse_script src with
    | Error e ->
        Format.eprintf "parse error: %s@." e;
        exit 1
    | Ok queries ->
        let schemas =
          List.map
            (fun name ->
              Fdb_relational.Schema.make ~name
                ~cols:
                  [ ("key", Fdb_relational.Schema.CInt);
                    ("val", Fdb_relational.Schema.CStr) ])
            relations
        in
        let spec = { Pipeline.schemas; initial = [] } in
        let tagged = List.map (fun q -> (0, q)) queries in
        let report =
          Pipeline.run ~semantics ~mode:(mode_of topo) spec tagged
        in
        List.iter
          (fun ((_, q), (_, r)) ->
            Format.printf "%-50s => %a@."
              (Fdb_query.Ast.to_string q)
              Pipeline.pp_response r)
          (List.combine tagged report.Pipeline.responses);
        print_stats report
  in
  let doc = "Execute a query script through the lenient pipeline." in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const go $ script_arg $ relations_arg $ semantics_arg $ topo_arg)

(* -- explain: show chosen access paths ---------------------------------------- *)

let explain_cmd =
  let module Plan = Fdb_query.Plan in
  let script_arg =
    Arg.(
      value & pos 0 (some file) None
      & info [] ~docv:"SCRIPT"
          ~doc:"Query script file ( ;-or-newline separated; -- comments).  \
                Reads stdin when omitted.")
  in
  let relations_arg =
    Arg.(
      value & opt (list string) [ "R"; "S" ]
      & info [ "relations" ] ~docv:"NAMES"
          ~doc:"Relation names to resolve (schema: key:int, val:string).")
  in
  let ix_conv =
    let parse s =
      match String.split_on_char ':' s with
      | [ rel; col ] when rel <> "" && col <> "" -> Ok (rel, col)
      | _ -> Error (`Msg "expected REL:COL")
    in
    Arg.conv (parse, fun ppf (r, c) -> Format.fprintf ppf "%s:%s" r c)
  in
  let secondary_arg =
    Arg.(
      value & opt_all ix_conv []
      & info [ "secondary" ] ~docv:"REL:COL"
          ~doc:"Declare a secondary index on REL's column COL (repeatable).")
  in
  let covering_arg =
    Arg.(
      value & opt_all ix_conv []
      & info [ "covering" ] ~docv:"REL:COL"
          ~doc:
            "Declare a covering index on REL's column COL storing every \
             column, so matching reads go index-only (repeatable).")
  in
  let derived_arg =
    Arg.(
      value & opt_all ix_conv []
      & info [ "derived" ] ~docv:"REL:COL"
          ~doc:
            "Declare a derived aggregation index grouping REL by COL over \
             the key column (repeatable).")
  in
  let go script relations secondary covering derived =
    let src =
      match script with
      | Some path -> In_channel.with_open_text path In_channel.input_all
      | None -> In_channel.input_all stdin
    in
    match Fdb_query.Parser.parse_script src with
    | Error e ->
        Format.eprintf "parse error: %s@." e;
        exit 1
    | Ok queries ->
        let schemas =
          List.map
            (fun name ->
              ( name,
                Fdb_relational.Schema.make ~name
                  ~cols:
                    [ ("key", Fdb_relational.Schema.CInt);
                      ("val", Fdb_relational.Schema.CStr) ] ))
            relations
        in
        let schema_of name = List.assoc_opt name schemas in
        let descs =
          List.map
            (fun (rel, col) ->
              { Plan.ix_name = Printf.sprintf "%s_sec_%s" rel col;
                ix_rel = rel; ix_col = col; ix_kind = Plan.Ix_secondary })
            secondary
          @ List.map
              (fun (rel, col) ->
                let cols =
                  match schema_of rel with
                  | Some s -> List.map fst (Fdb_relational.Schema.columns s)
                  | None -> [ col ]
                in
                { Plan.ix_name = Printf.sprintf "%s_cov_%s" rel col;
                  ix_rel = rel; ix_col = col;
                  ix_kind = Plan.Ix_covering cols })
              covering
          @ List.map
              (fun (rel, col) ->
                { Plan.ix_name = Printf.sprintf "%s_agg_%s" rel col;
                  ix_rel = rel; ix_col = col;
                  ix_kind = Plan.Ix_derived "key" })
              derived
        in
        (match
           Fdb_index.Index.Catalog.validate (List.map snd schemas) descs
         with
        | Ok () -> ()
        | Error e ->
            Format.eprintf "fdbsim explain: %s@." e;
            exit 2);
        let explain =
          if descs = [] then Plan.explain ~schema_of
          else
            let indexes_of rel =
              List.filter
                (fun (d : Plan.index_desc) -> String.equal d.Plan.ix_rel rel)
                descs
            in
            Plan.explain_indexed ~schema_of ~indexes_of
        in
        List.iter
          (fun q ->
            Format.printf "%-50s => %s@." (Fdb_query.Ast.to_string q)
              (explain q))
          queries
  in
  let doc =
    "Show the access path the planner chooses for each query in a script \
     (point lookup, pruned range scan or full scan, plus the residual \
     predicate), without executing anything.  With $(b,--secondary), \
     $(b,--covering) or $(b,--derived) declarations, the indexed planner \
     runs instead and the lines show index probes, index-only scans and \
     O(log n) derived-aggregate answers."
  in
  Cmd.v (Cmd.info "explain" ~doc)
    Term.(
      const go $ script_arg $ relations_arg $ secondary_arg $ covering_arg
      $ derived_arg)

(* -- index: differential sweeps of the index layer ------------------------------ *)

let index_cmd =
  let module Gen = Fdb_check.Gen in
  let module Merge = Fdb_merge.Merge in
  let module Txn = Fdb_txn.Txn in
  let module Ix = Fdb_index.Index in
  let module Trace_oracle = Fdb_check.Trace_oracle in
  let txns =
    Arg.(
      value & opt int 8
      & info [ "txns"; "n" ] ~doc:"Queries per client stream.")
  in
  let clients =
    Arg.(value & opt int 3 & info [ "clients" ] ~doc:"Client streams.")
  in
  let relations =
    Arg.(value & opt int 2 & info [ "relations" ] ~doc:"Relations.")
  in
  let tuples =
    Arg.(
      value & opt int 8
      & info [ "tuples" ] ~doc:"Initial tuples per relation.")
  in
  let sweep =
    Arg.(
      value & opt int 25
      & info [ "sweep" ] ~doc:"How many consecutive seeds to run.")
  in
  let go seed txns clients relations tuples sweep =
    (try
       ignore
         (Gen.generate
            { Gen.default_spec with
              clients;
              relations;
              queries_per_client = txns;
              initial_tuples = tuples })
     with Invalid_argument msg ->
       Format.eprintf "fdbsim index: %s@." msg;
       exit 2);
    Fdb_obs.Metrics.reset ();
    let failures = ref 0 and queries = ref 0 in
    for s = seed to seed + sweep - 1 do
      let sc =
        Gen.generate
          { Gen.default_spec with
            seed = s;
            clients;
            relations;
            queries_per_client = txns;
            initial_tuples = tuples }
      in
      let merged = Merge.merge (Merge.Seeded ((7 * s) + 1)) sc.Gen.streams in
      let initial = Gen.initial_db sc in
      let session =
        Ix.Session.create_exn (Ix.Catalog.default_for sc.Gen.schemas) initial
      in
      let plain = ref initial and indexed = ref initial in
      let ((), events) =
        Fdb_obs.Trace.record (fun () ->
            List.iter
              (fun (m : _ Merge.tagged) ->
                incr queries;
                let q = m.Merge.item in
                let (r1, db1) = Txn.translate q !plain in
                plain := db1;
                let (r2, db2) =
                  Txn.translate_indexed (Ix.Session.use session) q !indexed
                in
                indexed := db2;
                if not (Txn.response_equal r1 r2) then begin
                  incr failures;
                  Format.printf "seed %d: %s answered %a indexed but %a plain@."
                    s
                    (Fdb_query.Ast.to_string q)
                    Txn.pp_response r2 Txn.pp_response r1
                end)
              merged)
      in
      (match Ix.Store.coherent (Ix.Session.store session) !indexed with
      | Ok () -> ()
      | Error e ->
          incr failures;
          Format.printf "seed %d: index incoherence: %s@." s e);
      List.iter
        (fun v ->
          incr failures;
          Format.printf "seed %d: %a@." s Trace_oracle.pp_violation v)
        (Trace_oracle.check events)
    done;
    if !failures = 0 then begin
      Format.printf
        "index: %d seeds, %d queries; every indexed answer matched the plain \
         interpreter, every store matched a fresh rebuild, every trace law \
         held@."
        sweep !queries;
      Format.printf "%a" Fdb_obs.Metrics.pp_snapshot
        (Fdb_obs.Metrics.snapshot ())
    end
    else begin
      Format.printf "index: %d failure(s) over %d seeds@." !failures sweep;
      exit 1
    end
  in
  let doc =
    "Differentially test the secondary/covering/derived index layer: seeded \
     multi-client workloads run through the plain interpreter and through an \
     index session built from the default catalog; every response must match, \
     every final store must equal a fresh rebuild from its base relation, and \
     the emitted maintenance events must satisfy the index-coherence trace \
     law."
  in
  Cmd.v (Cmd.info "index" ~doc)
    Term.(
      const go $ seed_arg $ txns $ clients $ relations $ tuples $ sweep)

(* -- workload: synthetic runs ------------------------------------------------- *)

let workload_cmd =
  let txns =
    Arg.(value & opt int 50 & info [ "n"; "transactions" ] ~doc:"Transactions.")
  in
  let relations =
    Arg.(value & opt int 3 & info [ "r"; "relations" ] ~doc:"Relations.")
  in
  let tuples =
    Arg.(value & opt int 50 & info [ "tuples" ] ~doc:"Initial tuples.")
  in
  let inserts =
    Arg.(value & opt float 14.0 & info [ "inserts" ] ~doc:"Insert percentage.")
  in
  let deletes =
    Arg.(value & opt float 0.0 & info [ "deletes" ] ~doc:"Delete percentage.")
  in
  let updates =
    Arg.(value & opt float 0.0 & info [ "updates" ] ~doc:"Update percentage.")
  in
  let clients =
    Arg.(value & opt int 2 & info [ "clients" ] ~doc:"Client streams.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ] ~doc:"Verify serializability against the reference.")
  in
  let go txns relations tuples inserts deletes updates clients seed semantics
      topo check =
    let w =
      W.generate
        { W.default_spec with
          transactions = txns;
          relations;
          initial_tuples = tuples;
          insert_pct = inserts;
          delete_pct = deletes;
          update_pct = updates;
          clients;
          seed }
    in
    let tagged = Experiment.merged_workload w in
    let spec = Pipeline.db_spec_of_workload w in
    let report = Pipeline.run ~semantics ~mode:(mode_of topo) spec tagged in
    Format.printf "%d transactions (%d inserts) over %d relations@."
      txns (W.insert_count w) relations;
    print_stats report;
    if check then begin
      match Pipeline.check_serializable ~semantics ~mode:(mode_of topo) spec tagged with
      | Ok _ -> Format.printf "serializability: OK@."
      | Error e ->
          Format.printf "serializability: VIOLATED — %s@." e;
          exit 1
    end
  in
  let doc = "Generate a synthetic workload and measure its concurrency." in
  Cmd.v (Cmd.info "workload" ~doc)
    Term.(
      const go $ txns $ relations $ tuples $ inserts $ deletes $ updates
      $ clients $ seed_arg $ semantics_arg $ topo_arg $ check)

(* -- table: the paper's tables ------------------------------------------------ *)

let table_cmd =
  let which =
    Arg.(
      required & pos 0 (some (enum [ ("1", 1); ("2", 2); ("3", 3) ])) None
      & info [] ~docv:"N" ~doc:"Which table (1, 2 or 3).")
  in
  let go which seed =
    match which with
    | 1 ->
        Format.printf "@[<v>%a@]@." Experiment.pp_table1
          (Experiment.table1 ~seed ())
    | 2 ->
        Format.printf "@[<v>%a@]@." Experiment.pp_speedup_table
          (Experiment.table2 ~seed ())
    | _ ->
        Format.printf "@[<v>%a@]@." Experiment.pp_speedup_table
          (Experiment.table3 ~seed ())
  in
  let doc = "Reproduce one of the paper's tables." in
  Cmd.v (Cmd.info "table" ~doc) Term.(const go $ which $ seed_arg)

(* -- fel: run a FEL program ---------------------------------------------------- *)

let fel_cmd =
  let file =
    Arg.(
      value & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"FEL program; stdin when omitted.")
  in
  let demand =
    Arg.(
      value & flag
      & info [ "demand"; "lazy" ]
          ~doc:
            "Demand-driven (call-by-need) evaluation instead of the              default lenient (data-driven) model.  Infinite streams work;              anticipatory parallelism is lost.")
  in
  let go file demand =
    let src =
      match file with
      | Some path -> In_channel.with_open_text path In_channel.input_all
      | None -> In_channel.input_all stdin
    in
    let mode = if demand then Fdb_fel.Eval.Demand else Fdb_fel.Eval.Lenient in
    match Fdb_fel.Eval.run_string ~mode src with
    | Ok (result, stats) ->
        Format.printf "%s@.%a@." result Engine.pp_stats stats
    | Error e ->
        Format.eprintf "%s@." e;
        exit 1
  in
  let doc = "Evaluate a mini-FEL program on the lenient kernel." in
  Cmd.v (Cmd.info "fel" ~doc) Term.(const go $ file $ demand)

(* -- check: seeded serializability sweeps ---------------------------------------- *)

let check_cmd =
  let module Gen = Fdb_check.Gen in
  let module Oracle = Fdb_check.Oracle in
  let module Shrink = Fdb_check.Shrink in
  let module Sim = Fdb_check.Sim in
  let module Merge = Fdb_merge.Merge in
  let txns =
    Arg.(
      value & opt int 6
      & info [ "txns"; "n" ] ~doc:"Queries per client stream.")
  in
  let clients =
    Arg.(value & opt int 3 & info [ "clients" ] ~doc:"Client streams.")
  in
  let relations =
    Arg.(value & opt int 2 & info [ "relations" ] ~doc:"Relations.")
  in
  let tuples =
    Arg.(
      value & opt int 6
      & info [ "tuples" ] ~doc:"Initial tuples per relation.")
  in
  let sweep =
    Arg.(
      value & opt int 1
      & info [ "sweep" ] ~doc:"How many consecutive seeds to run.")
  in
  let no_faults =
    Arg.(
      value & flag
      & info [ "no-faults" ]
          ~doc:"Skip the fault-injected network path (merge policies only).")
  in
  let policies seed =
    [ ("arrival", Merge.Arrival_order);
      ("eager", Merge.Eager_clients [ 1; 2; 3 ]);
      (Printf.sprintf "seeded-%d" seed, Merge.Seeded ((7 * seed) + 1));
      ("concat", Merge.Concatenated) ]
  in
  let go seed txns clients relations tuples sweep no_faults =
    (* Surface bad specs as a usage error, not a backtrace. *)
    (try
       ignore
         (Gen.generate
            { Gen.default_spec with
              clients;
              relations;
              queries_per_client = txns;
              initial_tuples = tuples })
     with Invalid_argument msg ->
       Format.eprintf "fdbsim check: %s@." msg;
       exit 2);
    let scenarios = ref 0 and failures = ref 0 in
    let report_failure ~what ~seed sc verdict still_failing =
      incr failures;
      Format.printf "seed %d [%s]: %a@." seed what Oracle.pp_verdict verdict;
      let witness = Shrink.minimize ~still_failing sc.Gen.streams in
      Format.printf
        "shrunk counterexample (%d queries over %d clients):@.%a@."
        (List.fold_left (fun a s -> a + List.length s) 0 witness)
        (List.length witness) Gen.pp_streams witness
    in
    for s = seed to seed + sweep - 1 do
      let sc =
        Gen.generate
          { Gen.default_spec with
            seed = s;
            clients;
            relations;
            queries_per_client = txns;
            initial_tuples = tuples }
      in
      let initial = Gen.initial_db sc in
      List.iter
        (fun (name, policy) ->
          incr scenarios;
          let run streams =
            Oracle.check_merged ~initial ~streams (Merge.merge policy streams)
          in
          match run sc.Gen.streams with
          | Oracle.Serializable _ -> ()
          | v ->
              report_failure ~what:("merge " ^ name) ~seed:s sc v (fun streams ->
                  not (Oracle.accepted (run streams))))
        (policies s);
      if not no_faults then begin
        incr scenarios;
        let run streams =
          (Sim.run ~seed:s { sc with Gen.streams }).Sim.verdict
        in
        match run sc.Gen.streams with
        | Oracle.Serializable _ -> ()
        | v ->
            report_failure ~what:"fault-injected fabric" ~seed:s sc v
              (fun streams -> not (Oracle.accepted (run streams)))
      end
    done;
    if !failures = 0 then
      Format.printf "check: %d scenarios over %d seeds, all serializable@."
        !scenarios sweep
    else begin
      Format.printf "check: %d of %d scenarios FAILED@." !failures !scenarios;
      exit 1
    end
  in
  let doc =
    "Sweep seeded random multi-client workloads through every merge policy \
     and the fault-injected network, asserting each observed execution is \
     serial-equivalent to the client streams; failures are shrunk to a \
     minimal witness."
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(
      const go $ seed_arg $ txns $ clients $ relations $ tuples $ sweep
      $ no_faults)

(* -- recover: crash-failover sweeps ---------------------------------------------- *)

let recover_cmd =
  let module Gen = Fdb_check.Gen in
  let module Oracle = Fdb_check.Oracle in
  let module Sim = Fdb_check.Sim in
  let module Replica = Fdb_replica.Replica in
  let txns =
    Arg.(
      value & opt int 6
      & info [ "txns"; "n" ] ~doc:"Queries per client stream.")
  in
  let clients =
    Arg.(value & opt int 3 & info [ "clients" ] ~doc:"Client streams.")
  in
  let relations =
    Arg.(value & opt int 2 & info [ "relations" ] ~doc:"Relations.")
  in
  let tuples =
    Arg.(
      value & opt int 6
      & info [ "tuples" ] ~doc:"Initial tuples per relation.")
  in
  let sweep =
    Arg.(
      value & opt int 50
      & info [ "sweep" ] ~doc:"How many consecutive seeds to run.")
  in
  let ckpt =
    Arg.(
      value & opt int 4
      & info [ "checkpoint-every" ]
          ~doc:"Commits per checkpoint (0 disables checkpoints).")
  in
  let drop =
    Arg.(
      value & opt int 5
      & info [ "drop-one-in" ] ~doc:"Medium loss rate (0 disables).")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Per-seed detail lines.")
  in
  let kind_of_seed ~ckpt s =
    match s mod 3 with
    | 0 -> "mid-stream"
    | 1 -> if ckpt > 0 then "mid-checkpoint" else "mid-stream"
    | _ -> "mid-replay"
  in
  let go seed txns clients relations tuples sweep ckpt drop verbose =
    (try
       ignore
         (Gen.generate
            { Gen.default_spec with
              clients;
              relations;
              queries_per_client = txns;
              initial_tuples = tuples })
     with Invalid_argument msg ->
       Format.eprintf "fdbsim recover: %s@." msg;
       exit 2);
    let failures = ref 0 in
    (* per crash kind: runs, crashes that fired, recovery ticks, replayed,
       suffix length, stale reads, checkpoint bytes *)
    let agg = Hashtbl.create 3 in
    let bump kind (r : Replica.report) =
      let (n, fired, rec_t, rep, suf, stale, bytes) =
        Option.value ~default:(0, 0, 0, 0, 0, 0, 0) (Hashtbl.find_opt agg kind)
      in
      Hashtbl.replace agg kind
        ( n + 1,
          (fired + if r.Replica.crashed then 1 else 0),
          rec_t + Option.value ~default:0 r.Replica.recovery_ticks,
          rep + r.Replica.replayed,
          suf + r.Replica.log_suffix_at_crash,
          stale + r.Replica.stale_served,
          bytes + r.Replica.checkpoint_bytes )
    in
    for s = seed to seed + sweep - 1 do
      let sc =
        Gen.generate
          { Gen.default_spec with
            seed = s;
            clients;
            relations;
            queries_per_client = txns;
            initial_tuples = tuples }
      in
      let faults =
        { Sim.no_faults with Sim.drop_one_in = drop; crash = true }
      in
      let config =
        { Replica.default_config with Replica.checkpoint_every = ckpt }
      in
      match Sim.run ~faults ~recover_config:config ~seed:s sc with
      | exception Failure msg ->
          incr failures;
          Format.printf "seed %d [%s]: INVARIANT VIOLATION: %s@." s
            (kind_of_seed ~ckpt s) msg
      | o ->
          let r = Option.get o.Sim.recovery in
          if not (Oracle.accepted o.Sim.verdict) then begin
            incr failures;
            Format.printf "seed %d [%s]: %a@." s (kind_of_seed ~ckpt s)
              Oracle.pp_verdict o.Sim.verdict
          end
          else begin
            bump (kind_of_seed ~ckpt s) r;
            if verbose then
              Format.printf "seed %d [%s]: %a@." s (kind_of_seed ~ckpt s)
                Replica.pp_report r
          end
    done;
    Format.printf
      "@[<v>crash kind      runs  fired  recovery  replayed  suffix  stale  \
       ckpt-bytes@,\
       ---------------------------------------------------------------------@]@.";
    List.iter
      (fun kind ->
        match Hashtbl.find_opt agg kind with
        | None -> ()
        | Some (n, fired, rec_t, rep, suf, stale, bytes) ->
            let mean x = float_of_int x /. float_of_int (max 1 fired) in
            Format.printf
              "%-14s %5d %6d %9.1f %9.1f %7.1f %6.1f %11.1f@." kind n fired
              (mean rec_t) (mean rep) (mean suf) (mean stale) (mean bytes))
      [ "mid-stream"; "mid-checkpoint"; "mid-replay" ];
    if !failures = 0 then
      Format.printf
        "recover: %d seeds, all serializable; no acked commit lost or \
         doubly applied; replay = log suffix past last checkpoint@."
        sweep
    else begin
      Format.printf "recover: %d of %d seeds FAILED@." !failures sweep;
      exit 1
    end
  in
  let doc =
    "Sweep seeded crash-failover scenarios through the primary/backup \
     pair: the primary is killed mid-stream, mid-checkpoint or mid-replay, \
     the backup promotes by checkpoint + log replay, and every observation \
     must pass the serializability oracle with no acknowledged commit lost \
     or doubly applied."
  in
  Cmd.v (Cmd.info "recover" ~doc)
    Term.(
      const go $ seed_arg $ txns $ clients $ relations $ tuples $ sweep
      $ ckpt $ drop $ verbose)

(* -- trace: capture a failover run as Chrome trace_event JSON ------------------- *)

let trace_cmd =
  let module Gen = Fdb_check.Gen in
  let module Oracle = Fdb_check.Oracle in
  let module Sim = Fdb_check.Sim in
  let module Replica = Fdb_replica.Replica in
  let module Event = Fdb_obs.Event in
  let txns =
    Arg.(
      value & opt int 6
      & info [ "txns"; "n" ] ~doc:"Queries per client stream.")
  in
  let clients =
    Arg.(value & opt int 3 & info [ "clients" ] ~doc:"Client streams.")
  in
  let out =
    Arg.(
      value & opt string "trace.json"
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Where to write the Chrome trace_event JSON.")
  in
  let drop =
    Arg.(
      value & opt int 5
      & info [ "drop-one-in" ] ~doc:"Medium loss rate (0 disables).")
  in
  let no_crash =
    Arg.(
      value & flag
      & info [ "no-crash" ]
          ~doc:
            "Trace a crash-free fault-injected run instead of the default \
             replica-failover scenario.")
  in
  let go seed txns clients out drop no_crash =
    let sc =
      Gen.generate
        { Gen.default_spec with seed; clients; queries_per_client = txns }
    in
    let faults =
      { Sim.default_faults with Sim.drop_one_in = drop; crash = not no_crash }
    in
    let o = Sim.run ~faults ~seed sc in
    let json = Fdb_obs.Chrome.to_json o.Sim.trace in
    let oc = open_out out in
    output_string oc json;
    close_out oc;
    let count pred = List.length (List.filter pred o.Sim.trace) in
    Format.printf
      "traced %d events (%d datagram, %d replica protocol) to %s@."
      (List.length o.Sim.trace)
      (count (fun (e : Event.t) ->
           match e.Event.kind with
           | Event.Dg_send _ | Event.Dg_deliver _ | Event.Dg_drop _
           | Event.Dg_retransmit _ ->
               true
           | _ -> false))
      (count (fun (e : Event.t) ->
           match e.Event.kind with
           | Event.Replica_commit _ | Event.Replica_ack _
           | Event.Replica_reply _ | Event.Replica_checkpoint _
           | Event.Replica_install _ | Event.Replica_promote _
           | Event.Replica_replay _ | Event.Replica_crash _ ->
               true
           | _ -> false))
      out;
    (match o.Sim.recovery with
    | Some r when r.Replica.crashed ->
        Format.printf
          "failover: crash at tick %s, promoted at tick %s, %d records \
           replayed@."
          (match r.Replica.crash_tick with
          | Some t -> string_of_int t
          | None -> "?")
          (match r.Replica.promoted_tick with
          | Some t -> string_of_int t
          | None -> "?")
          r.Replica.replayed
    | _ -> ());
    Format.printf "trace invariants checked: %s@."
      (String.concat ", " Fdb_check.Trace_oracle.invariant_names);
    Format.printf "oracle: %a@." Oracle.pp_verdict o.Sim.verdict;
    if not (Oracle.accepted o.Sim.verdict) then exit 1
  in
  let doc =
    "Run a seeded fault-injected scenario (by default with a primary crash \
     and backup failover), capture every event the stack emits, check the \
     trace invariants, and export Chrome trace_event JSON loadable in \
     chrome://tracing or Perfetto."
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const go $ seed_arg $ txns $ clients $ out $ drop $ no_crash)

(* -- stats: the metrics registry after a sweep ---------------------------------- *)

let stats_cmd =
  let module Gen = Fdb_check.Gen in
  let module Sim = Fdb_check.Sim in
  let txns =
    Arg.(
      value & opt int 6
      & info [ "txns"; "n" ] ~doc:"Queries per client stream.")
  in
  let clients =
    Arg.(value & opt int 3 & info [ "clients" ] ~doc:"Client streams.")
  in
  let sweep =
    Arg.(
      value & opt int 8
      & info [ "sweep" ] ~doc:"How many consecutive seeds to run.")
  in
  let go seed txns clients sweep =
    Fdb_obs.Metrics.reset ();
    for s = seed to seed + sweep - 1 do
      let sc =
        Gen.generate
          { Gen.default_spec with seed = s; clients; queries_per_client = txns }
      in
      (* One crash-free transport run and one failover run per seed, plus a
         lenient pipeline run so the cell-copy counters move too. *)
      ignore (Sim.run ~seed:s sc);
      ignore
        (Sim.run ~faults:{ Sim.default_faults with Sim.crash = true } ~seed:s
           sc);
      let spec =
        { Pipeline.schemas = sc.Gen.schemas; initial = sc.Gen.initial }
      in
      ignore
        (Pipeline.run_streams ~semantics:Pipeline.Ordered_unique spec
           sc.Gen.streams)
    done;
    Format.printf "metrics after %d seeds (x3 runs each):@.%a" sweep
      Fdb_obs.Metrics.pp_snapshot
      (Fdb_obs.Metrics.snapshot ())
  in
  let doc =
    "Run a seeded sweep (transport, failover and lenient-pipeline runs) and \
     print the metrics registry: cells copied vs shared, plan-path hit \
     rates, retransmissions, failover latency."
  in
  Cmd.v (Cmd.info "stats" ~doc)
    Term.(const go $ seed_arg $ txns $ clients $ sweep)

(* -- par: differential check of the real-domain parallel executor --------------- *)

let par_cmd =
  let module Gen = Fdb_check.Gen in
  let module Merge = Fdb_merge.Merge in
  let txns =
    Arg.(
      value & opt int 8
      & info [ "txns"; "n" ] ~doc:"Queries per client stream.")
  in
  let clients =
    Arg.(value & opt int 3 & info [ "clients" ] ~doc:"Client streams.")
  in
  let relations =
    Arg.(value & opt int 2 & info [ "relations" ] ~doc:"Relations.")
  in
  let tuples =
    Arg.(
      value & opt int 12
      & info [ "tuples" ] ~doc:"Initial tuples per relation.")
  in
  let sweep =
    Arg.(
      value & opt int 25
      & info [ "sweep" ] ~doc:"How many consecutive seeds to run.")
  in
  let domains =
    Arg.(
      value & opt (some int) None
      & info [ "domains" ]
          ~doc:"Worker domains (default: recommended_domain_count - 1).")
  in
  let chunk =
    Arg.(
      value & opt int 16
      & info [ "chunk" ] ~doc:"Scan flood granularity in tuples.")
  in
  let semantics =
    Arg.(
      value
      & opt
          (enum
             [ ("prepend", Pipeline.Prepend);
               ("ordered", Pipeline.Ordered_unique) ])
          Pipeline.Prepend
      & info [ "semantics" ] ~doc:"Insert semantics: $(b,prepend) or $(b,ordered).")
  in
  let topo =
    Arg.(
      value & opt (some topology_conv) None
      & info [ "topo" ]
          ~doc:
            "Also run the engine on this simulated machine topology and \
             include it in the comparison.")
  in
  let go seed txns clients relations tuples sweep domains chunk semantics topo =
    (try
       ignore
         (Gen.generate
            { Gen.default_spec with
              clients;
              relations;
              queries_per_client = txns;
              initial_tuples = tuples })
     with Invalid_argument msg ->
       Format.eprintf "fdbsim par: %s@." msg;
       exit 2);
    (match domains with
    | Some d when d < 1 || d > 128 ->
        Format.eprintf "fdbsim par: domains must be in 1..128@.";
        exit 2
    | _ -> ());
    if chunk < 1 then begin
      Format.eprintf "fdbsim par: chunk must be >= 1@.";
      exit 2
    end;
    Fdb_obs.Metrics.reset ();
    let divergences = ref 0 in
    let tasks = ref 0 and steals = ref 0 and ndomains = ref 0 in
    let compare_streams ~seed ~what expected actual =
      if
        not
          (List.equal
             (fun (t1, r1) (t2, r2) ->
               t1 = t2 && Pipeline.response_equal r1 r2)
             expected actual)
      then begin
        incr divergences;
        Format.printf "seed %d: parallel executor diverges from %s@." seed what
      end
    in
    Fdb_par.Pool.with_pool ?domains (fun pool ->
        for s = seed to seed + sweep - 1 do
          let sc =
            Gen.generate
              { Gen.default_spec with
                seed = s;
                clients;
                relations;
                queries_per_client = txns;
                initial_tuples = tuples }
          in
          let spec =
            { Pipeline.schemas = sc.Gen.schemas; initial = sc.Gen.initial }
          in
          let tagged =
            List.map
              (fun { Merge.tag; item } -> (tag, item))
              (Merge.merge (Merge.Seeded ((7 * s) + 1)) sc.Gen.streams)
          in
          let ideal = Pipeline.run ~semantics spec tagged in
          let par = Pipeline.run_parallel ~semantics ~chunk ~pool spec tagged in
          tasks := par.Pipeline.par_tasks;
          steals := par.Pipeline.par_steals;
          ndomains := par.Pipeline.par_domains;
          compare_streams ~seed:s ~what:"deterministic engine (ideal)"
            ideal.Pipeline.responses par.Pipeline.par_responses;
          compare_streams ~seed:s ~what:"sequential reference"
            (Pipeline.reference ~semantics spec tagged)
            par.Pipeline.par_responses;
          if not (ideal.Pipeline.final_db = par.Pipeline.par_final_db) then begin
            incr divergences;
            Format.printf "seed %d: final database diverges@." s
          end;
          Option.iter
            (fun topo ->
              let machine =
                Pipeline.run ~semantics
                  ~mode:(Pipeline.On_machine (Machine.default_config topo))
                  spec tagged
              in
              compare_streams ~seed:s ~what:"simulated machine"
                machine.Pipeline.responses par.Pipeline.par_responses)
            topo;
          (* Indexed ordered leg: the same merged stream under keyed-set
             semantics with the default catalog maintained inline on the
             dispatch thread.  Responses must match the sequential
             reference, the final store a fresh rebuild from the final
             database, and the maintenance events the lockstep trace law. *)
          let module Ix = Fdb_index.Index in
          let session =
            Ix.Session.create_exn
              (Ix.Catalog.default_for sc.Gen.schemas)
              (Pipeline.initial_database spec)
          in
          let (ipar, events) =
            Fdb_obs.Trace.record (fun () ->
                Pipeline.run_parallel ~semantics:Pipeline.Ordered_unique
                  ~chunk ~pool ~index:session spec tagged)
          in
          compare_streams ~seed:s ~what:"sequential reference (indexed, ordered)"
            (Pipeline.reference ~semantics:Pipeline.Ordered_unique spec tagged)
            ipar.Pipeline.par_responses;
          (match
             Ix.Store.coherent
               (Ix.Session.store session)
               (Pipeline.initial_database
                  { spec with Pipeline.initial = ipar.Pipeline.par_final_db })
           with
          | Ok () -> ()
          | Error e ->
              incr divergences;
              Format.printf "seed %d: index incoherence: %s@." s e);
          List.iter
            (fun v ->
              incr divergences;
              Format.printf "seed %d: %a@." s
                Fdb_check.Trace_oracle.pp_violation v)
            (Fdb_check.Trace_oracle.check events)
        done);
    if !divergences = 0 then begin
      Format.printf
        "par: %d seeds, every response stream identical across executors; \
         indexes coherent and lockstep under the ordered leg@."
        sweep;
      Format.printf
        "pool: %d domains, %d tasks executed cumulatively, %d stolen@."
        !ndomains !tasks !steals;
      Format.printf "%a" Fdb_obs.Metrics.pp_snapshot (Fdb_obs.Metrics.snapshot ())
    end
    else begin
      Format.printf "par: %d divergence(s) over %d seeds@." !divergences sweep;
      exit 1
    end
  in
  let doc =
    "Differentially test the real-domain parallel executor: the same seeded \
     workloads run under the deterministic engine, the sequential reference \
     (and optionally a simulated machine), and the OCaml 5 domain pool; \
     every response stream and final database must be identical."
  in
  Cmd.v (Cmd.info "par" ~doc)
    Term.(
      const go $ seed_arg $ txns $ clients $ relations $ tuples $ sweep
      $ domains $ chunk $ semantics $ topo)

(* -- repair: differential sweeps of the speculative repair executor ------------- *)

let repair_cmd =
  let module Gen = Fdb_check.Gen in
  let module Sim = Fdb_check.Sim in
  let module Exec = Fdb_repair.Exec in
  let txns =
    Arg.(
      value & opt int 5
      & info [ "txns"; "n" ] ~doc:"Queries per client stream.")
  in
  let clients =
    Arg.(value & opt int 3 & info [ "clients" ] ~doc:"Client streams.")
  in
  let relations =
    Arg.(value & opt int 2 & info [ "relations" ] ~doc:"Relations.")
  in
  let tuples =
    Arg.(
      value & opt int 6
      & info [ "tuples" ] ~doc:"Initial tuples per relation.")
  in
  let key_range =
    Arg.(
      value & opt int 12
      & info [ "key-range" ]
          ~doc:
            "Keys are drawn from 0..N-1; smaller ranges raise the conflict \
             ratio the repair loop has to absorb.")
  in
  let sweep =
    Arg.(
      value & opt int 25
      & info [ "sweep" ] ~doc:"How many consecutive seeds to run.")
  in
  let domains =
    Arg.(
      value & opt (some int) None
      & info [ "domains" ]
          ~doc:"Worker domains (default: recommended_domain_count - 1).")
  in
  let batch =
    Arg.(
      value & opt int 8
      & info [ "batch" ] ~doc:"Transactions speculated per batch.")
  in
  let trace_out =
    Arg.(
      value & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write the first scenario's repair trace as Chrome trace_event \
             JSON.")
  in
  let go seed txns clients relations tuples key_range sweep domains batch
      trace_out =
    (try
       ignore
         (Gen.generate
            { Gen.default_spec with
              clients;
              relations;
              queries_per_client = txns;
              initial_tuples = tuples;
              key_range })
     with Invalid_argument msg ->
       Format.eprintf "fdbsim repair: %s@." msg;
       exit 2);
    (match domains with
    | Some d when d < 1 || d > 128 ->
        Format.eprintf "fdbsim repair: domains must be in 1..128@.";
        exit 2
    | _ -> ());
    if batch < 1 then begin
      Format.eprintf "fdbsim repair: batch must be >= 1@.";
      exit 2
    end;
    if sweep < 1 then begin
      Format.eprintf "fdbsim repair: sweep must be >= 1@.";
      exit 2
    end;
    let divergences = ref 0 in
    let total = ref Exec.zero_stats in
    let first_trace = ref None in
    Fdb_par.Pool.with_pool ?domains (fun pool ->
        for s = seed to seed + sweep - 1 do
          let sc =
            Gen.generate
              { Gen.seed = s;
                clients;
                relations;
                queries_per_client = txns;
                initial_tuples = tuples;
                key_range }
          in
          match Sim.run_repair ~pool ~batch ~seed:s sc with
          | o ->
              total := Exec.add_stats !total o.Sim.repair_stats;
              if !first_trace = None then
                first_trace := Some o.Sim.repair_trace
          | exception Failure msg ->
              incr divergences;
              Format.printf "seed %d: %s@." s msg
        done);
    Option.iter
      (fun out ->
        match !first_trace with
        | Some trace ->
            let oc = open_out out in
            output_string oc (Fdb_obs.Chrome.to_json trace);
            close_out oc;
            Format.printf "first scenario's repair trace (%d events) -> %s@."
              (List.length trace) out
        | None -> ())
      trace_out;
    if !divergences = 0 then begin
      Format.printf
        "repair: %d seeds, responses and final state identical across the \
         repair executor, the traced inline run and the sequential engine; \
         every trace law holds, every verdict is serializable, and the \
         maintained indexes stay coherent with every committed version@."
        sweep;
      Format.printf "%a@." Exec.pp_stats !total
    end
    else begin
      Format.printf "repair: %d divergence(s) over %d seeds@." !divergences
        sweep;
      exit 1
    end
  in
  let doc =
    "Differentially test the speculative repair executor: seeded multi-client \
     workloads are speculated in parallel batches, conflicts repaired to the \
     serial fixpoint, and the results compared against the traced inline run \
     and the ideal sequential engine; traces are checked against the \
     repair-convergence law and observations against the serializability \
     oracle."
  in
  Cmd.v (Cmd.info "repair" ~doc)
    Term.(
      const go $ seed_arg $ txns $ clients $ relations $ tuples $ key_range
      $ sweep $ domains $ batch $ trace_out)

(* -- shard: cross-shard differential sweeps of the sharded executor ------------- *)

let shard_cmd =
  let module Gen = Fdb_check.Gen in
  let module Sim = Fdb_check.Sim in
  let module Shard = Fdb_shard.Shard in
  let module Merge = Fdb_merge.Merge in
  let txns =
    Arg.(
      value & opt int 5
      & info [ "txns"; "n" ] ~doc:"Queries per client stream.")
  in
  let clients =
    Arg.(value & opt int 3 & info [ "clients" ] ~doc:"Client streams.")
  in
  let relations =
    Arg.(value & opt int 4 & info [ "relations" ] ~doc:"Relations.")
  in
  let tuples =
    Arg.(
      value & opt int 6
      & info [ "tuples" ] ~doc:"Initial tuples per relation.")
  in
  let key_range =
    Arg.(
      value & opt int 12
      & info [ "key-range" ] ~doc:"Keys are drawn from 0..N-1.")
  in
  let sweep =
    Arg.(
      value & opt int 2
      & info [ "sweep" ] ~doc:"How many consecutive seeds to run.")
  in
  let shards =
    Arg.(
      value
      & opt (list int) [ 1; 2; 4; 8 ]
      & info [ "shards" ] ~docv:"N,.."
          ~doc:"Shard counts to sweep (comma-separated).")
  in
  let ratios =
    Arg.(
      value
      & opt (list float) [ 0.0; 0.1; 0.5; 1.0 ]
      & info [ "cross-ratio" ] ~docv:"R,.."
          ~doc:
            "Cross-shard ratios to sweep (comma-separated fractions of \
             query slots forced to cross-relation joins).")
  in
  let replicate =
    Arg.(
      value & flag
      & info [ "replicate" ]
          ~doc:
            "Additionally drive each shard's commit stream through its own \
             primary/backup pair and check the composition.")
  in
  let trace_out =
    Arg.(
      value & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write the first scenario's shard trace as Chrome trace_event \
             JSON.")
  in
  let go seed txns clients relations tuples key_range sweep shards ratios
      replicate trace_out =
    (try
       ignore
         (Gen.generate
            { Gen.default_spec with
              clients;
              relations;
              queries_per_client = txns;
              initial_tuples = tuples;
              key_range })
     with Invalid_argument msg ->
       Format.eprintf "fdbsim shard: %s@." msg;
       exit 2);
    if sweep < 1 then begin
      Format.eprintf "fdbsim shard: sweep must be >= 1@.";
      exit 2
    end;
    if shards = [] || List.exists (fun n -> n < 1) shards then begin
      Format.eprintf "fdbsim shard: shard counts must be >= 1@.";
      exit 2
    end;
    if ratios = [] || List.exists (fun r -> r < 0.0 || r > 1.0) ratios
    then begin
      Format.eprintf "fdbsim shard: cross-ratios must be in [0, 1]@.";
      exit 2
    end;
    let policies s =
      [ ("arrival", Merge.Arrival_order);
        ("bursty", Merge.Eager_clients [ 2; 3 ]);
        ("seeded", Merge.Seeded ((7 * s) + 1));
        ("concat", Merge.Concatenated) ]
    in
    let divergences = ref 0 in
    let scenarios = ref 0 in
    let txns_total = ref 0 in
    let local = ref 0 and bypassed = ref 0 and spine = ref 0 in
    let first_trace = ref None in
    for s = seed to seed + sweep - 1 do
      let sc =
        Gen.generate
          { Gen.seed = s;
            clients;
            relations;
            queries_per_client = txns;
            initial_tuples = tuples;
            key_range }
      in
      List.iter
        (fun n ->
          List.iter
            (fun ratio ->
              let sc = Sim.cross_shardify ~ratio ~seed:s sc in
              List.iter
                (fun (pname, policy) ->
                  incr scenarios;
                  match
                    Sim.run_sharded ~policy ~replicate ~shards:n ~seed:s sc
                  with
                  | o ->
                      let st = o.Sim.shard_stats in
                      txns_total := !txns_total + st.Shard.txns;
                      local := !local + st.Shard.local;
                      bypassed := !bypassed + st.Shard.bypassed;
                      spine := !spine + st.Shard.spine;
                      if !first_trace = None then
                        first_trace := Some o.Sim.shard_trace
                  | exception Failure msg ->
                      incr divergences;
                      Format.printf
                        "seed %d shards %d ratio %.2f policy %s: %s@." s n
                        ratio pname msg)
                (policies s))
            ratios)
        shards
    done;
    Option.iter
      (fun out ->
        match !first_trace with
        | Some trace ->
            let oc = open_out out in
            output_string oc (Fdb_obs.Chrome.to_json trace);
            close_out oc;
            Format.printf "first scenario's shard trace (%d events) -> %s@."
              (List.length trace) out
        | None -> ())
      trace_out;
    if !divergences = 0 then begin
      Format.printf
        "shard: %d scenarios (%d seeds x {%s} shards x {%s} cross-ratios x \
         4 policies), responses and final state identical to the sequential \
         engine, every epoch reordering replays identically, every trace \
         satisfies shard_serializability, every verdict is serializable, \
         and one shard is byte-identical to the unsharded pipeline@."
        !scenarios sweep
        (String.concat "," (List.map string_of_int shards))
        (String.concat "," (List.map (Printf.sprintf "%g") ratios));
      let pct a = 100.0 *. float_of_int a /. float_of_int (max 1 !txns_total) in
      Format.printf
        "  %d txns: %d local (%.1f%%), %d bypassed (%.1f%%), %d through the \
         global spine (%.1f%%)@."
        !txns_total !local (pct !local) !bypassed (pct !bypassed) !spine
        (pct !spine)
    end
    else begin
      Format.printf "shard: %d divergence(s) over %d scenarios@." !divergences
        !scenarios;
      exit 1
    end
  in
  let doc =
    "Differentially test the sharded executor: seeded multi-client workloads \
     are rewritten to each cross-shard ratio, serialized over N merge points \
     with the commutativity-aware spine bypass, and compared against the \
     ideal sequential engine, the adversarial epoch reordering and the \
     serializability oracle; traces are checked against the \
     shard-serializability law."
  in
  Cmd.v (Cmd.info "shard" ~doc)
    Term.(
      const go $ seed_arg $ txns $ clients $ relations $ tuples $ key_range
      $ sweep $ shards $ ratios $ replicate $ trace_out)

(* -- recover-disk: crash-restart sweeps of the durable version log -------------- *)

let recover_disk_cmd =
  let module Gen = Fdb_check.Gen in
  let module Sim = Fdb_check.Sim in
  let txns =
    Arg.(
      value & opt int 8 & info [ "txns"; "n" ] ~doc:"Queries per client stream.")
  in
  let clients =
    Arg.(value & opt int 3 & info [ "clients" ] ~doc:"Client streams.")
  in
  let relations =
    Arg.(value & opt int 2 & info [ "relations" ] ~doc:"Relations.")
  in
  let tuples =
    Arg.(
      value & opt int 6 & info [ "tuples" ] ~doc:"Initial tuples per relation.")
  in
  let sweep =
    Arg.(
      value & opt int 13
      & info [ "sweep" ]
          ~doc:"Consecutive seeds per (fault, checkpoint-interval) cell.")
  in
  let checkpoints =
    Arg.(
      value
      & opt (list int) [ 0; 3; 8 ]
      & info [ "checkpoints" ] ~docv:"N,N,.."
          ~doc:"Checkpoint intervals to sweep (0 = never compact).")
  in
  let sync_every =
    Arg.(
      value & opt int 3
      & info [ "sync-every" ] ~doc:"Appends grouped per automatic fsync.")
  in
  let fault_conv =
    Arg.conv
      ( (fun s ->
          match Sim.disk_fault_of_name s with
          | Some f -> Ok f
          | None ->
              Error
                (`Msg
                  (Printf.sprintf "unknown fault kind %s (expected %s)" s
                     (String.concat " | "
                        (List.map Sim.disk_fault_name Sim.all_disk_faults)))))
        ,
        fun ppf f -> Format.pp_print_string ppf (Sim.disk_fault_name f) )
  in
  let faults =
    Arg.(
      value
      & opt (list fault_conv) Sim.all_disk_faults
      & info [ "faults" ] ~docv:"KIND,KIND,.."
          ~doc:
            "Fault kinds to inject after the torn-write crash: clean-kill, \
             truncate-mid-frame, bit-flip, duplicate-tail.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write the first scenario's crash-restart trace (appends, syncs, \
             checkpoints, replay, recovery) as Chrome trace_event JSON.")
  in
  let go seed txns clients relations tuples sweep checkpoints sync_every
      faults trace_out =
    (try
       ignore
         (Gen.generate
            { Gen.default_spec with
              clients;
              relations;
              queries_per_client = txns;
              initial_tuples = tuples })
     with Invalid_argument msg ->
       Format.eprintf "fdbsim recover-disk: %s@." msg;
       exit 2);
    if sweep < 1 then begin
      Format.eprintf "fdbsim recover-disk: sweep must be >= 1@.";
      exit 2
    end;
    if sync_every < 0 || List.exists (fun c -> c < 0) checkpoints then begin
      Format.eprintf "fdbsim recover-disk: intervals must be >= 0@.";
      exit 2
    end;
    let failures = ref 0 in
    let scenarios = ref 0 in
    let first_trace = ref None in
    let stops = Hashtbl.create 8 in
    List.iter
      (fun fault ->
        let appended = ref 0
        and durable = ref 0
        and recovered = ref 0
        and resumed = ref 0
        and cells = ref 0 in
        List.iter
          (fun checkpoint_every ->
            for s = seed to seed + sweep - 1 do
              incr scenarios;
              let sc =
                Gen.generate
                  { Gen.default_spec with
                    seed = s;
                    clients;
                    relations;
                    queries_per_client = txns;
                    initial_tuples = tuples }
              in
              match
                Sim.run_disk ~sync_every ~checkpoint_every ~fault ~seed:s sc
              with
              | o ->
                  incr cells;
                  appended := !appended + o.Sim.disk_appended;
                  durable := !durable + o.Sim.disk_durable;
                  recovered := !recovered + o.Sim.disk_recovered;
                  resumed := !resumed + o.Sim.disk_resumed;
                  Hashtbl.replace stops o.Sim.disk_stop
                    (1
                    + Option.value ~default:0
                        (Hashtbl.find_opt stops o.Sim.disk_stop));
                  if !first_trace = None then
                    first_trace := Some o.Sim.disk_trace
              | exception Failure msg ->
                  incr failures;
                  Format.printf "%s/ckpt %d/seed %d: %s@."
                    (Sim.disk_fault_name fault)
                    checkpoint_every s msg
            done)
          checkpoints;
        Format.printf
          "%-18s %3d scenarios: appended %4d, durable %4d, recovered %4d, \
           resumed after restart %4d@."
          (Sim.disk_fault_name fault)
          !cells !appended !durable !recovered !resumed)
      faults;
    Format.printf "replay stops:";
    Hashtbl.iter (fun reason n -> Format.printf " %s=%d" reason n) stops;
    Format.printf "@.";
    Option.iter
      (fun out ->
        match !first_trace with
        | Some trace ->
            let oc = open_out out in
            output_string oc (Fdb_obs.Chrome.to_json trace);
            close_out oc;
            Format.printf "first scenario's recovery trace (%d events) -> %s@."
              (List.length trace) out
        | None -> ())
      trace_out;
    if !failures = 0 then
      Format.printf
        "recover-disk: %d crash-restart scenarios; every recovery rebuilt \
         exactly the fsync-promised prefix, every restart continued it, and \
         the durability trace law held throughout@."
        !scenarios
    else begin
      Format.printf "recover-disk: %d failure(s) over %d scenarios@." !failures
        !scenarios;
      exit 1
    end
  in
  let doc =
    "Crash-restart sweeps of the durable version log: seeded workloads are \
     committed through the write-ahead log over a torn-write store, killed at \
     a random point, the log tail doctored (truncation, bit flips, duplicated \
     frames), and recovery differentially checked against the pre-crash run \
     under the durability trace oracle."
  in
  Cmd.v (Cmd.info "recover-disk" ~doc)
    Term.(
      const go $ seed_arg $ txns $ clients $ relations $ tuples $ sweep
      $ checkpoints $ sync_every $ faults $ trace_out)

(* -- wal: inspect a log directory frame by frame -------------------------------- *)

let wal_cmd =
  let module Wal = Fdb_wal.Wal in
  let module Wire = Fdb_wire.Wire in
  let module Gen = Fdb_check.Gen in
  let dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR" ~doc:"WAL directory to inspect.")
  in
  let gen =
    Arg.(
      value
      & opt (some int) None
      & info [ "gen" ] ~docv:"N"
          ~doc:
            "First write a demo log into DIR: a seeded workload of N queries \
             per client, checkpointed every 4 versions.")
  in
  let go seed dir gen =
    Option.iter
      (fun txns ->
        let sc =
          Gen.generate { Gen.default_spec with seed; queries_per_client = txns }
        in
        let store = Wal.Fs.store ~dir in
        let db = ref (Gen.initial_db sc) in
        let w = Wal.create ~checkpoint_every:4 ~store !db in
        List.iter
          (fun (m : _ Fdb_merge.Merge.tagged) ->
            let (_, db') = Fdb_txn.Txn.translate m.Fdb_merge.Merge.item !db in
            if not (db' == !db) then begin
              db := db';
              Wal.append w db'
            end)
          (Fdb_merge.Merge.merge (Fdb_merge.Merge.Seeded seed) sc.Gen.streams);
        Wal.sync w;
        store.Wal.Store.close ())
      gen;
    let store = Wal.Fs.store ~dir in
    let segments =
      List.sort compare
        (List.filter_map
           (fun f -> Option.map (fun n -> (n, f)) (Wal.segment_number f))
           (store.Wal.Store.list_files ()))
    in
    if segments = [] then Format.printf "%s: no segment files@." dir;
    List.iter
      (fun (_, name) ->
        match store.Wal.Store.read name with
        | None -> Format.printf "%s: unreadable@." name
        | Some bytes ->
            Format.printf "%s (%d bytes)@." name (String.length bytes);
            let rec walk pos =
              match Wire.read_frame bytes ~pos with
              | Wire.End_of_input -> ()
              | Wire.Torn { offset; reason } ->
                  Format.printf "  @@%-8d torn: %s@." offset reason
              | Wire.Frame { kind; payload; next } ->
                  let (version, _) = Wire.read_int payload ~pos:0 in
                  Format.printf "  @@%-8d %-10s v%-5d %6d bytes, crc ok@." pos
                    (match kind with
                    | Wire.Checkpoint -> "checkpoint"
                    | Wire.Delta -> "delta")
                    version
                    (String.length payload);
                  walk next
            in
            walk 0)
      segments;
    (match Wal.recover store with
    | r ->
        Format.printf "recovery: versions %d..%d over %d segment(s), %a@."
          r.Wal.base r.Wal.upto r.Wal.segments Wal.pp_stop r.Wal.stop
    | exception Wire.Corrupt { offset; reason } ->
        Format.printf "recovery: corrupt (offset %d: %s)@." offset reason);
    store.Wal.Store.close ()
  in
  let doc =
    "Inspect a durable version log directory: every frame of every segment \
     (offset, kind, version index, checksum status), then what recovery \
     would rebuild.  With $(b,--gen), first writes a seeded demo log."
  in
  Cmd.v (Cmd.info "wal" ~doc) Term.(const go $ seed_arg $ dir $ gen)

(* -- traffic: open-loop stream through the execution modes --------------------- *)

let traffic_cmd =
  let module Openloop = Fdb_workload.Openloop in
  let module Traffic = Fdb.Traffic in
  let module Relation = Fdb_relational.Relation in
  let txns =
    Arg.(
      value & opt int 2_000 & info [ "n"; "transactions" ] ~doc:"Transactions.")
  in
  let tuples =
    Arg.(value & opt int 5_000 & info [ "tuples" ] ~doc:"Initial tuples.")
  in
  let relations =
    Arg.(value & opt int 2 & info [ "r"; "relations" ] ~doc:"Relations.")
  in
  let tenants =
    Arg.(value & opt int 3 & info [ "tenants" ] ~doc:"Tenant streams.")
  in
  let go txns tuples relations tenants seed =
    let plan =
      Openloop.generate
        (Openloop.standard ~relations ~initial_tuples:tuples ~tenants ~txns
           ~seed ())
    in
    Format.printf "%d transactions over %d initial tuples, %d tenants@." txns
      tuples tenants;
    let print r =
      Format.printf
        "%-10s %-10s %9.0f txn/s  p50 %7.0fns  p99 %8.0fns  p999 %8.0fns  \
         failed %d@."
        r.Traffic.tr_mode r.Traffic.tr_backend r.Traffic.tr_throughput
        r.Traffic.tr_p50_ns r.Traffic.tr_p99_ns r.Traffic.tr_p999_ns
        r.Traffic.tr_failed;
      r.Traffic.tr_final_digest
    in
    (* differential smoke: the same stream through every execution mode and
       two layouts must land byte-identical final states *)
    let reference =
      print (Traffic.drive ~backend:(Relation.Btree_backend 8) plan)
    in
    let digests =
      List.map
        (fun (mode, backend) -> print (Traffic.drive ~mode ~backend plan))
        [
          (Traffic.Sequential, Relation.Column_backend 256);
          (Traffic.Parallel { domains = None }, Relation.Btree_backend 8);
          (Traffic.Repair { batch = 32 }, Relation.Btree_backend 8);
          (Traffic.Sharded { shards = 4 }, Relation.Btree_backend 8);
        ]
    in
    if List.for_all (String.equal reference) digests then
      Format.printf "final states agree across modes and backends@."
    else begin
      Format.printf "FAIL: final states diverge@.";
      exit 1
    end
  in
  let doc =
    "Drive an open-loop traffic plan through every execution mode and check \
     the final states agree."
  in
  Cmd.v (Cmd.info "traffic" ~doc)
    Term.(const go $ txns $ tuples $ relations $ tenants $ seed_arg)

(* -- topo: describe a topology -------------------------------------------------- *)

let topo_cmd =
  let topo =
    Arg.(
      required & pos 0 (some topology_conv) None
      & info [] ~docv:"TOPO" ~doc:"Topology to describe.")
  in
  let go topo =
    Format.printf "%a@." Topology.pp topo;
    let n = Topology.size topo in
    for u = 0 to min (n - 1) 15 do
      Format.printf "  %2d -> %s@." u
        (String.concat ", "
           (List.map string_of_int (Topology.neighbors topo u)))
    done;
    if n > 16 then Format.printf "  ...@."
  in
  let doc = "Describe a topology (size, diameter, adjacency)." in
  Cmd.v (Cmd.info "topo" ~doc) Term.(const go $ topo)

let () =
  let doc =
    "A functional distributed database (Keller & Lindstrom, ICDCS 1985)"
  in
  let info = Cmd.info "fdbsim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; explain_cmd; index_cmd; workload_cmd; table_cmd; fel_cmd;
            topo_cmd; check_cmd; recover_cmd; trace_cmd; stats_cmd; par_cmd;
            repair_cmd; shard_cmd; recover_disk_cmd; wal_cmd; traffic_cmd ]))
