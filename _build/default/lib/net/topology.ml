type kind = Point_to_point | Shared_bus

type t = {
  name : string;
  n : int;
  kind : kind;
  adj : int list array;
  (* dist.(dst).(src) and hop.(dst).(src): BFS tables toward each
     destination; hop.(dst).(src) = -1 when src = dst or unreachable. *)
  dist : int array array;
  hop : int array array;
}

let name t = t.name
let size t = t.n
let kind t = t.kind

let bfs_toward adj n dst =
  let dist = Array.make n max_int and hop = Array.make n (-1) in
  dist.(dst) <- 0;
  let q = Queue.create () in
  Queue.push dst q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    let du = dist.(u) in
    let visit v =
      if dist.(v) = max_int then begin
        dist.(v) <- du + 1;
        (* first hop from v toward dst is u when v is reached from u *)
        hop.(v) <- u;
        Queue.push v q
      end
    in
    List.iter visit adj.(u)
  done;
  (dist, hop)

let build name kind n edges =
  if n <= 0 then invalid_arg "Topology: size must be positive";
  let adj = Array.make n [] in
  let add (u, v) =
    if u < 0 || v < 0 || u >= n || v >= n || u = v then
      invalid_arg "Topology: bad edge";
    if not (List.mem v adj.(u)) then adj.(u) <- v :: adj.(u);
    if not (List.mem u adj.(v)) then adj.(v) <- u :: adj.(v)
  in
  List.iter add edges;
  Array.iteri (fun i ns -> adj.(i) <- List.sort compare ns) adj;
  let dist = Array.make n [||] and hop = Array.make n [||] in
  for dst = 0 to n - 1 do
    let d, h = bfs_toward adj n dst in
    dist.(dst) <- d;
    hop.(dst) <- h
  done;
  { name; n; kind; adj; dist; hop }

let hypercube d =
  if d < 0 || d > 16 then invalid_arg "Topology.hypercube";
  let n = 1 lsl d in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for b = 0 to d - 1 do
      let v = u lxor (1 lsl b) in
      if u < v then edges := (u, v) :: !edges
    done
  done;
  build (Printf.sprintf "hypercube-%d" n) Point_to_point n !edges

let mesh3d nx ny nz =
  if nx <= 0 || ny <= 0 || nz <= 0 then invalid_arg "Topology.mesh3d";
  let n = nx * ny * nz in
  let id x y z = x + (nx * (y + (ny * z))) in
  let edges = ref [] in
  for x = 0 to nx - 1 do
    for y = 0 to ny - 1 do
      for z = 0 to nz - 1 do
        if x + 1 < nx then edges := (id x y z, id (x + 1) y z) :: !edges;
        if y + 1 < ny then edges := (id x y z, id x (y + 1) z) :: !edges;
        if z + 1 < nz then edges := (id x y z, id x y (z + 1)) :: !edges
      done
    done
  done;
  build (Printf.sprintf "mesh-%dx%dx%d" nx ny nz) Point_to_point n !edges

let ring n =
  if n < 2 then invalid_arg "Topology.ring";
  let edges = List.init n (fun i -> (i, (i + 1) mod n)) in
  build (Printf.sprintf "ring-%d" n) Point_to_point n edges

let line n =
  if n < 2 then invalid_arg "Topology.line";
  let edges = List.init (n - 1) (fun i -> (i, i + 1)) in
  build (Printf.sprintf "line-%d" n) Point_to_point n edges

let torus2d nx ny =
  if nx < 2 || ny < 2 then invalid_arg "Topology.torus2d";
  let n = nx * ny in
  let id x y = x + (nx * y) in
  let edges = ref [] in
  for x = 0 to nx - 1 do
    for y = 0 to ny - 1 do
      let u = id x y in
      let r = id ((x + 1) mod nx) y and d = id x ((y + 1) mod ny) in
      if u <> r then edges := (u, r) :: !edges;
      if u <> d then edges := (u, d) :: !edges
    done
  done;
  build (Printf.sprintf "torus-%dx%d" nx ny) Point_to_point n !edges

let star n =
  if n < 2 then invalid_arg "Topology.star";
  let edges = List.init (n - 1) (fun i -> (0, i + 1)) in
  build (Printf.sprintf "star-%d" n) Point_to_point n edges

let complete n =
  if n < 2 then invalid_arg "Topology.complete";
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  build (Printf.sprintf "complete-%d" n) Point_to_point n !edges

let bus n =
  if n < 1 then invalid_arg "Topology.bus";
  (* Model the medium as a complete adjacency so distance is uniformly 1;
     the fabric serializes it (Shared_bus kind). *)
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  build (Printf.sprintf "bus-%d" n) Shared_bus n !edges

let single () = build "single" Point_to_point 1 []

let random ~seed ~n ~extra_edges =
  if n < 2 then invalid_arg "Topology.random";
  let rand = Random.State.make [| seed |] in
  (* random spanning tree: attach each node to a random earlier one *)
  let edges = ref [] in
  for v = 1 to n - 1 do
    edges := (Random.State.int rand v, v) :: !edges
  done;
  let tries = ref (10 * extra_edges) and added = ref 0 in
  while !added < extra_edges && !tries > 0 do
    decr tries;
    let u = Random.State.int rand n and v = Random.State.int rand n in
    if u <> v && not (List.mem (u, v) !edges || List.mem (v, u) !edges)
    then begin
      edges := (u, v) :: !edges;
      incr added
    end
  done;
  build (Printf.sprintf "random-%d-%d" n seed) Point_to_point n !edges

let neighbors t u =
  if u < 0 || u >= t.n then invalid_arg "Topology.neighbors";
  t.adj.(u)

let distance t u v =
  if u < 0 || v < 0 || u >= t.n || v >= t.n then
    invalid_arg "Topology.distance";
  let d = t.dist.(v).(u) in
  if d = max_int then invalid_arg "Topology.distance: unreachable" else d

let next_hop t ~src ~dst =
  if src = dst then invalid_arg "Topology.next_hop: src = dst";
  let h = t.hop.(dst).(src) in
  if h = -1 then invalid_arg "Topology.next_hop: unreachable" else h

let diameter t =
  let best = ref 0 in
  for u = 0 to t.n - 1 do
    for v = 0 to t.n - 1 do
      let d = t.dist.(v).(u) in
      if d <> max_int && d > !best then best := d
    done
  done;
  !best

let links t =
  match t.kind with
  | Shared_bus -> []
  | Point_to_point ->
      let acc = ref [] in
      for u = t.n - 1 downto 0 do
        List.iter (fun v -> acc := (u, v) :: !acc) (List.rev t.adj.(u))
      done;
      List.sort compare !acc

let pp ppf t =
  Format.fprintf ppf "%s (%d nodes, diameter %d)" t.name t.n (diameter t)
