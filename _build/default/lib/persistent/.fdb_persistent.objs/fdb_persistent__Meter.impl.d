lib/persistent/meter.ml:
