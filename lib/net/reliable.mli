(** Exactly-once delivery over a lossy medium.

    The paper leaves failure transparency as "an opportunity for future
    investigation" (§1).  This module explores the transport half of that
    opportunity: a sequence-numbered, acknowledged, retransmitting channel
    layered over a {!Fabric.t} whose deliveries can be dropped.

    Semantics per (src, dst) pair: FIFO senders, at-least-once transmission
    by timeout-driven retransmission, exactly-once {e delivery} by receiver
    deduplication.  Acknowledgements travel the same lossy medium.

    Retransmission timeouts follow a {!type:backoff} policy; the default is
    capped exponential backoff with deterministic seeded jitter, which cuts
    total transmissions sharply under heavy loss compared to a fixed
    timeout (see the property tests). *)

type 'a t

type backoff =
  | Fixed of int  (** retransmit every [n] steps, the pre-backoff behaviour *)
  | Exponential of { initial : int; cap : int }
      (** first timeout [initial]; doubled (plus up to 25% seeded jitter)
          after every retransmission, never beyond [cap] *)

type stats = {
  transmissions : int;
      (** data and datagram injections, including retransmissions *)
  drops : int;  (** messages (data or ack) lost by the medium *)
  duplicates : int;  (** retransmitted data suppressed at the receiver *)
  delivered : int;  (** unique payloads handed to the application *)
}

exception
  No_quiescence of {
    steps : int;  (** steps taken before giving up *)
    in_flight : int;  (** frames still inside the fabric *)
    pending : (int * int * int) list;
        (** unacknowledged [(src, dst, seq)] sends, sorted *)
    stats : stats;
    trace_tail : string list;
        (** the last captured trace events (rendered), oldest first; empty
            when tracing was never enabled *)
  }
(** Raised by {!val:run_to_quiescence} with everything needed to diagnose
    why the network would not drain (e.g. a peer that is down keeps its
    senders retransmitting forever). *)

val create :
  ?drop_one_in:int ->
  ?seed:int ->
  ?retransmit_after:int ->
  ?backoff:backoff ->
  ?link_capacity:int ->
  Topology.t ->
  'a t
(** [drop_one_in] = n loses roughly one in n arrivals (default 0: lossless).
    [backoff] picks the retransmission policy (default
    [Exponential { initial = 4 * diameter + 4; cap = 16 * initial }]);
    [retransmit_after n] is the backward-compatible spelling of
    [~backoff:(Fixed n)] and is overridden by an explicit [backoff].
    Jitter draws come from a dedicated RNG stream, so at one [seed] the
    medium's drop sequence is identical across backoff policies.
    @raise Invalid_argument on a non-positive timeout or [cap < initial]. *)

type 'a frame
(** The channel's private wire envelope (data, acks, datagrams). *)

val fabric : 'a t -> 'a frame Fabric.t
(** The underlying fabric, exposed for fault injection
    ({!Fabric.set_down}, {!Fabric.partition}) and its {!Fabric.stats};
    the envelope type keeps callers from injecting frames directly. *)

val send : 'a t -> src:int -> dst:int -> 'a -> unit
(** Reliable: retransmitted until acknowledged, delivered exactly once. *)

val send_raw : 'a t -> src:int -> dst:int -> 'a -> unit
(** Fire-and-forget datagram over the same medium: no sequence number, no
    acknowledgement, no retransmission; delivered at most once.  The UDP to
    {!val:send}'s TCP — heartbeats and idempotent notifications. *)

val cancel : 'a t -> src:int -> dst:int -> unit
(** Abandon every unacknowledged send from [src] to [dst] (connection
    teardown: a client giving up on a dead server stops the retransmission
    timers it owns). *)

val cancel_node : 'a t -> int -> unit
(** Abandon everything sent by {e or addressed to} the node: its own timers
    died with it, and nobody will ever be acknowledged by it. *)

val step : 'a t -> (int * 'a) list
(** Advance one cycle; returns fresh [(dst, payload)] deliveries (never a
    duplicate of a reliable send; raw datagrams are delivered as-is). *)

val idle : 'a t -> bool
(** Nothing outstanding, in flight, or awaiting acknowledgement. *)

val run_to_quiescence : ?max_steps:int -> 'a t -> (int * 'a) list
(** Step until {!val:idle} (default [max_steps] 100,000); returns all
    deliveries in order.
    @raise No_quiescence when [max_steps] is exceeded. *)

val stats : 'a t -> stats

val initial_timeout : 'a t -> int
(** The first armed timeout under the channel's backoff policy. *)

val grow_timeout : 'a t -> int -> int
(** The timeout armed after a retransmission whose timeout was [current]:
    policy-dependent growth plus jitter, never exceeding an
    [Exponential] policy's [cap].  Exposed for property tests. *)
