(** Predicate compilation: resolve column names against a schema once,
    producing a tuple test.  This is the "higher-order function" step of the
    paper's [translate] (§2.1). *)

open Fdb_relational

val compile : Schema.t -> Ast.pred -> (Tuple.t -> bool, string) result
(** [Error] when a predicate mentions a column the schema lacks. *)

val eval : Schema.t -> Ast.pred -> Tuple.t -> (bool, string) result
(** One-shot convenience wrapper over {!val:compile}. *)

val compile_aggregate :
  Schema.t -> Ast.agg -> string -> Ast.pred ->
  ( (Value.t option -> Tuple.t -> Value.t option)
    * (Value.t option -> Value.t option),
    string )
  result
(** [(step, finish)] for a fold over the relation's tuples: [step] folds
    one (filtered) tuple into the accumulator, [finish] closes it (the sum
    of no rows is [Int 0]; min/max of no rows is [None]).  Errors: unknown
    column, or [sum] over a non-numeric column. *)

val compile_update :
  Schema.t -> string -> Value.t -> Ast.pred ->
  (Tuple.t -> Tuple.t option, string) result
(** A per-tuple rewrite: [Some t'] when the tuple matches and changes.
    Errors: unknown column, attempting to update the key column (0), or a
    value of the wrong type. *)
