test/test_workload.ml: Alcotest Fdb_query Fdb_relational Fdb_workload List Printf
