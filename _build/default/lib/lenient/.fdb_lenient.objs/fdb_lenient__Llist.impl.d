lib/lenient/llist.ml: Engine Fdb_kernel List
