(* Domain-safe named counters and histograms.

   Counters are single [Atomic.t] ints.  Histograms shard per domain: each
   domain lazily creates its own plain-mutable shard through [Domain.DLS]
   (registered in the histogram's shard list under the registry lock), so
   the observe hot path never synchronizes; [snapshot] merges the shards.
   Registration (find-or-create by name) takes the registry lock — the
   cold path, paid once per instrument per module. *)

type counter = { c_name : string; count : int Atomic.t }

type shard = {
  mutable s_count : int;
  mutable s_sum : int;
  mutable s_min : int;
  mutable s_max : int;
  s_buckets : int array;  (* power-of-two buckets *)
}

type histogram = {
  h_name : string;
  h_shards : shard list ref;  (* every domain's shard; under [registry] *)
  h_key : shard Domain.DLS.key;
}

let n_buckets = 32
let registry = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let locked f =
  Mutex.lock registry;
  match f () with
  | v ->
      Mutex.unlock registry;
      v
  | exception e ->
      Mutex.unlock registry;
      raise e

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
          let c = { c_name = name; count = Atomic.make 0 } in
          Hashtbl.add counters name c;
          c)

let incr c = Atomic.incr c.count
let add c n = ignore (Atomic.fetch_and_add c.count n)
let counter_value c = Atomic.get c.count

let new_shard () =
  { s_count = 0; s_sum = 0; s_min = 0; s_max = 0;
    s_buckets = Array.make n_buckets 0 }

let histogram name =
  locked (fun () ->
      match Hashtbl.find_opt histograms name with
      | Some h -> h
      | None ->
          let shards = ref [] in
          let key =
            Domain.DLS.new_key (fun () ->
                let s = new_shard () in
                locked (fun () -> shards := s :: !shards);
                s)
          in
          let h = { h_name = name; h_shards = shards; h_key = key } in
          Hashtbl.add histograms name h;
          h)

(* bucket 0: v <= 0; bucket i: 2^(i-1) <= v < 2^i, clamped to the last. *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 and x = ref v in
    while !x > 0 do
      Stdlib.incr b;
      x := !x lsr 1
    done;
    min !b (n_buckets - 1)
  end

let observe h v =
  let s = Domain.DLS.get h.h_key in
  if s.s_count = 0 then begin
    s.s_min <- v;
    s.s_max <- v
  end
  else begin
    if v < s.s_min then s.s_min <- v;
    if v > s.s_max then s.s_max <- v
  end;
  s.s_count <- s.s_count + 1;
  s.s_sum <- s.s_sum + v;
  let b = bucket_of v in
  s.s_buckets.(b) <- s.s_buckets.(b) + 1

type histo_stats = {
  count : int;
  sum : int;
  min : int;
  max : int;
  buckets : (int * int) list;
}

type snapshot = {
  counters : (string * int) list;
  histograms : (string * histo_stats) list;
}

(* Merge a histogram's shards; caller holds the registry lock (a snapshot
   taken while other domains are observing is approximate — quiesce, or
   use {!scoped}, for exact figures). *)
let merged_stats h =
  let acc = new_shard () in
  List.iter
    (fun s ->
      if s.s_count > 0 then begin
        if acc.s_count = 0 then begin
          acc.s_min <- s.s_min;
          acc.s_max <- s.s_max
        end
        else begin
          if s.s_min < acc.s_min then acc.s_min <- s.s_min;
          if s.s_max > acc.s_max then acc.s_max <- s.s_max
        end;
        acc.s_count <- acc.s_count + s.s_count;
        acc.s_sum <- acc.s_sum + s.s_sum;
        for i = 0 to n_buckets - 1 do
          acc.s_buckets.(i) <- acc.s_buckets.(i) + s.s_buckets.(i)
        done
      end)
    !(h.h_shards);
  let buckets = ref [] in
  for i = n_buckets - 1 downto 0 do
    if acc.s_buckets.(i) > 0 then
      let upper = if i = 0 then 0 else (1 lsl i) - 1 in
      buckets := (upper, acc.s_buckets.(i)) :: !buckets
  done;
  {
    count = acc.s_count;
    sum = acc.s_sum;
    min = acc.s_min;
    max = acc.s_max;
    buckets = !buckets;
  }

(* The q-quantile estimated from the power-of-two buckets: find the bucket
   the target rank falls in and interpolate linearly inside it, clamped to
   the exact observed min/max so the ends are never extrapolated past
   reality.  Resolution is the bucket width (a factor of two), which is
   what a latency tail wants: p99/p999 within 2x at O(1) space. *)
let percentile (h : histo_stats) q =
  if h.count = 0 then 0.0
  else
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = q *. float_of_int h.count in
    let rec go cum = function
      | [] -> float_of_int h.max
      | (upper, n) :: rest ->
          let cum' = cum +. float_of_int n in
          if cum' >= rank || rest = [] then
            let hi = float_of_int upper in
            (* bucket with inclusive upper 2^i - 1 starts at 2^(i-1) *)
            let lo = if upper <= 0 then hi else float_of_int ((upper + 1) / 2) in
            let frac = if n = 0 then 0.0 else (rank -. cum) /. float_of_int n in
            Float.max (float_of_int h.min)
              (Float.min (float_of_int h.max) (lo +. (frac *. (hi -. lo))))
          else go cum' rest
    in
    go 0.0 h.buckets

(* Only instruments with activity appear: a merely-registered counter is
   indistinguishable from an unloaded module's, so including zeros would
   make snapshots depend on initialisation order. *)
let snapshot () =
  locked (fun () ->
      let cs =
        Hashtbl.fold
          (fun name (c : counter) acc ->
            let v = Atomic.get c.count in
            if v = 0 then acc else (name, v) :: acc)
          counters []
      in
      let hs =
        Hashtbl.fold
          (fun name h acc ->
            let m = merged_stats h in
            if m.count = 0 then acc else (name, m) :: acc)
          histograms []
      in
      let by_name (a, _) (b, _) = String.compare a b in
      { counters = List.sort by_name cs; histograms = List.sort by_name hs })

let zero_shard s =
  s.s_count <- 0;
  s.s_sum <- 0;
  s.s_min <- 0;
  s.s_max <- 0;
  Array.fill s.s_buckets 0 n_buckets 0

let reset () =
  locked (fun () ->
      Hashtbl.iter (fun _ (c : counter) -> Atomic.set c.count 0) counters;
      Hashtbl.iter
        (fun _ h -> List.iter zero_shard !(h.h_shards))
        histograms)

(* Scoped delta: save the registry, zero it in place (the instrument
   records modules captured at init keep working), run [f], snapshot what
   [f] alone did, then add the saved values back — so callers above this
   scope still see their own accumulation.  The saved histogram totals are
   restored into the calling domain's shard. *)
let scoped f =
  let saved_counters =
    locked (fun () ->
        Hashtbl.fold
          (fun _ (c : counter) acc -> (c, Atomic.exchange c.count 0) :: acc)
          counters [])
  in
  let saved_histos =
    locked (fun () ->
        Hashtbl.fold
          (fun _ h acc ->
            let m = merged_stats h in
            List.iter zero_shard !(h.h_shards);
            (h, m) :: acc)
          histograms [])
  in
  let restore () =
    List.iter
      (fun ((c : counter), v) -> ignore (Atomic.fetch_and_add c.count v))
      saved_counters;
    List.iter
      (fun (h, (m : histo_stats)) ->
        if m.count > 0 then begin
          let s = Domain.DLS.get h.h_key in
          if s.s_count = 0 then begin
            s.s_min <- m.min;
            s.s_max <- m.max
          end
          else begin
            if m.min < s.s_min then s.s_min <- m.min;
            if m.max > s.s_max then s.s_max <- m.max
          end;
          s.s_count <- s.s_count + m.count;
          s.s_sum <- s.s_sum + m.sum;
          List.iter
            (fun (upper, n) ->
              let b = if upper <= 0 then 0 else bucket_of upper in
              s.s_buckets.(b) <- s.s_buckets.(b) + n)
            m.buckets
        end)
      saved_histos
  in
  match f () with
  | v ->
      let snap = snapshot () in
      restore ();
      (v, snap)
  | exception e ->
      (* As if the failed scope never ran: drop its partial recordings,
         then put the surrounding totals back. *)
      reset ();
      restore ();
      raise e

let pp_snapshot ppf snap =
  Fmt.pf ppf "counters:@.";
  List.iter
    (fun (name, v) -> Fmt.pf ppf "  %-34s %d@." name v)
    snap.counters;
  if snap.histograms <> [] then begin
    Fmt.pf ppf "histograms:@.";
    List.iter
      (fun (name, h) ->
        let mean = if h.count = 0 then 0.0 else float h.sum /. float h.count in
        Fmt.pf ppf "  %-34s n=%d min=%d max=%d mean=%.1f@." name h.count h.min
          h.max mean;
        List.iter
          (fun (upper, c) -> Fmt.pf ppf "    <=%-8d %d@." upper c)
          h.buckets)
      snap.histograms
  end
