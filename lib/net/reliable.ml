type 'a frame =
  | Data of { src : int; dst : int; seq : int; payload : 'a }
  | Ack of { src : int; dst : int; seq : int }
      (* acknowledges Data seq sent src -> dst; travels dst -> src *)
  | Raw of { dst : int; payload : 'a }
      (* fire-and-forget datagram: no seq, no ack, no retransmission *)

type backoff =
  | Fixed of int
  | Exponential of { initial : int; cap : int }

type 'a outstanding = {
  o_dst : int;
  o_seq : int;
  o_payload : 'a;
  mutable o_age : int;
  mutable o_timeout : int;  (* current armed timeout, grows under Exponential *)
}

type stats = {
  transmissions : int;
  drops : int;
  duplicates : int;
  delivered : int;
}

exception
  No_quiescence of {
    steps : int;
    in_flight : int;
    pending : (int * int * int) list;
    stats : stats;
    trace_tail : string list;
        (* last events seen while tracing was on; [] if it never was *)
  }

let m_retransmissions = Fdb_obs.Metrics.counter "reliable.retransmissions"
let m_drops = Fdb_obs.Metrics.counter "reliable.medium_drops"
let m_duplicates = Fdb_obs.Metrics.counter "reliable.duplicates"

type 'a t = {
  fabric : 'a frame Fabric.t;
  rand : Random.State.t;
  brand : Random.State.t;  (* backoff jitter only, so the drop sequence is
                              identical across backoff policies at one seed *)
  drop_one_in : int;
  backoff : backoff;
  next_seq : (int * int, int) Hashtbl.t;  (* (src, dst) -> next seq *)
  pending : (int, 'a outstanding list ref) Hashtbl.t;  (* per source *)
  seen : (int * int * int, unit) Hashtbl.t;  (* (src, dst, seq) delivered *)
  mutable s_transmissions : int;
  mutable s_drops : int;
  mutable s_duplicates : int;
  mutable s_delivered : int;
}

let check_backoff = function
  | Fixed n -> if n < 1 then invalid_arg "Reliable: Fixed backoff < 1"
  | Exponential { initial; cap } ->
      if initial < 1 then invalid_arg "Reliable: Exponential initial < 1";
      if cap < initial then invalid_arg "Reliable: Exponential cap < initial"

let create ?(drop_one_in = 0) ?(seed = 42) ?retransmit_after ?backoff
    ?link_capacity topo =
  let backoff =
    match (backoff, retransmit_after) with
    | (Some b, _) -> b
    | (None, Some n) -> Fixed n
    | (None, None) ->
        let initial = (4 * Topology.diameter topo) + 4 in
        Exponential { initial; cap = 16 * initial }
  in
  check_backoff backoff;
  if drop_one_in = 1 then
    invalid_arg "Reliable.create: drop_one_in = 1 loses everything";
  {
    fabric = Fabric.create ?link_capacity topo;
    rand = Random.State.make [| seed |];
    brand = Random.State.make [| seed; 0xb0ff |];
    drop_one_in;
    backoff;
    next_seq = Hashtbl.create 16;
    pending = Hashtbl.create 16;
    seen = Hashtbl.create 64;
    s_transmissions = 0;
    s_drops = 0;
    s_duplicates = 0;
    s_delivered = 0;
  }

let fabric t = t.fabric

let initial_timeout t =
  match t.backoff with Fixed n -> n | Exponential { initial; _ } -> initial

(* The next armed timeout after a retransmission: doubled, plus up to 25%
   seeded jitter so synchronized senders desynchronize deterministically,
   clamped to the cap last — jitter must never push an armed timeout past
   the documented ceiling. *)
let grow_timeout t current =
  match t.backoff with
  | Fixed n -> n
  | Exponential { cap; _ } ->
      let doubled = min cap (2 * current) in
      min cap (doubled + Random.State.int t.brand ((doubled / 4) + 1))

let pending_of t src =
  match Hashtbl.find_opt t.pending src with
  | Some l -> l
  | None ->
      let l = ref [] in
      Hashtbl.replace t.pending src l;
      l

let transmit t ~src ~dst frame =
  (match frame with
  | Data _ | Raw _ -> t.s_transmissions <- t.s_transmissions + 1
  | Ack _ -> ());
  Fabric.send t.fabric ~src ~dst frame

let send t ~src ~dst payload =
  let key = (src, dst) in
  let seq = Option.value ~default:0 (Hashtbl.find_opt t.next_seq key) in
  Hashtbl.replace t.next_seq key (seq + 1);
  let slot = pending_of t src in
  slot :=
    !slot
    @ [ { o_dst = dst; o_seq = seq; o_payload = payload; o_age = 0;
          o_timeout = initial_timeout t } ];
  transmit t ~src ~dst (Data { src; dst; seq; payload })

let send_raw t ~src ~dst payload =
  transmit t ~src ~dst (Raw { dst; payload })

let cancel t ~src ~dst =
  match Hashtbl.find_opt t.pending src with
  | None -> ()
  | Some slot -> slot := List.filter (fun o -> o.o_dst <> dst) !slot

let cancel_node t node =
  (match Hashtbl.find_opt t.pending node with
  | None -> ()
  | Some slot -> slot := []);
  Hashtbl.iter (fun _ slot -> slot := List.filter (fun o -> o.o_dst <> node) !slot)
    t.pending

let lost t =
  t.drop_one_in > 0 && Random.State.int t.rand t.drop_one_in = 0

let step t =
  (* Retransmission timers. *)
  Hashtbl.iter
    (fun src slot ->
      List.iter
        (fun o ->
          o.o_age <- o.o_age + 1;
          if o.o_age >= o.o_timeout then begin
            o.o_age <- 0;
            o.o_timeout <- grow_timeout t o.o_timeout;
            Fdb_obs.Metrics.incr m_retransmissions;
            if Fdb_obs.Trace.enabled () then
              Fdb_obs.Trace.emit
                (Fdb_obs.Event.Dg_retransmit
                   { src; dst = o.o_dst; seq = o.o_seq });
            transmit t ~src ~dst:o.o_dst
              (Data { src; dst = o.o_dst; seq = o.o_seq; payload = o.o_payload })
          end)
        !slot)
    t.pending;
  (* Medium. *)
  let deliveries = ref [] in
  List.iter
    (fun (_, frame) ->
      if lost t then begin
        t.s_drops <- t.s_drops + 1;
        Fdb_obs.Metrics.incr m_drops
      end
      else
        match frame with
        | Data { src; dst; seq; payload } ->
            if Hashtbl.mem t.seen (src, dst, seq) then begin
              t.s_duplicates <- t.s_duplicates + 1;
              Fdb_obs.Metrics.incr m_duplicates
            end
            else begin
              Hashtbl.replace t.seen (src, dst, seq) ();
              t.s_delivered <- t.s_delivered + 1;
              deliveries := (dst, payload) :: !deliveries
            end;
            (* always (re-)acknowledge *)
            transmit t ~src:dst ~dst:src (Ack { src; dst; seq })
        | Ack { src; dst; seq } ->
            let slot = pending_of t src in
            slot :=
              List.filter
                (fun o -> not (o.o_dst = dst && o.o_seq = seq))
                !slot
        | Raw { dst; payload } ->
            t.s_delivered <- t.s_delivered + 1;
            deliveries := (dst, payload) :: !deliveries)
    (Fabric.step t.fabric);
  List.rev !deliveries

let idle t =
  Fabric.in_flight t.fabric = 0
  && Hashtbl.fold (fun _ slot acc -> acc && !slot = []) t.pending true

let stats t =
  {
    transmissions = t.s_transmissions;
    drops = t.s_drops;
    duplicates = t.s_duplicates;
    delivered = t.s_delivered;
  }

let unacked t =
  Hashtbl.fold
    (fun src slot acc ->
      List.fold_left (fun acc o -> (src, o.o_dst, o.o_seq) :: acc) acc !slot)
    t.pending []
  |> List.sort compare

let run_to_quiescence ?(max_steps = 100_000) t =
  let out = ref [] and steps = ref 0 in
  while not (idle t) do
    if !steps > max_steps then
      raise
        (No_quiescence
           { steps = !steps;
             in_flight = Fabric.in_flight t.fabric;
             pending = unacked t;
             stats = stats t;
             trace_tail = Fdb_obs.Trace.tail () });
    incr steps;
    out := !out @ step t
  done;
  !out
