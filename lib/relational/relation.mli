(** A relation: a persistent set of tuples with unique keys (column 0),
    stored in one of the interchangeable persistent representations.

    The paper's experiments use the linked-list backend; §2.2/§3.3 project
    tree backends for better sharing — the ablation benches compare them. *)

type backend =
  | List_backend  (** ordered linked list (the paper's experimental setup) *)
  | Avl_backend
  | Two3_backend
  | Btree_backend of int  (** branching factor *)
  | Column_backend of int
      (** chunked column store: per-column packed arrays at this chunk
          granularity, persistent by chunk path-copying *)

val backend_name : backend -> string

type t

val create : ?backend:backend -> Schema.t -> t
(** Empty relation (default backend: [List_backend]). *)

val schema : t -> Schema.t

val backend : t -> backend

val size : t -> int

val to_list : t -> Tuple.t list
(** Ascending key order. *)

val insert : ?meter:Fdb_persistent.Meter.t -> t -> Tuple.t -> (t * bool, string) result
(** [Ok (t', added)]: [added] is false when the key was already present
    (the relation is returned physically unchanged).  [Error] on schema
    mismatch. *)

val delete_key : ?meter:Fdb_persistent.Meter.t -> t -> Value.t -> t * bool

val find_key : t -> Value.t -> Tuple.t option

val mem_key : t -> Value.t -> bool

val select : t -> (Tuple.t -> bool) -> Tuple.t list
(** Materializing filter over {!to_list}; the streaming access paths below
    are preferred on hot paths. *)

val fold : ?meter:Fdb_persistent.Meter.t -> ('a -> Tuple.t -> 'a) -> 'a -> t -> 'a
(** Fold in ascending key order without materializing a list.  Meters one
    unit per backend unit (cell, node or page) visited. *)

val iter : (Tuple.t -> unit) -> t -> unit

type bound = Inclusive of Value.t | Exclusive of Value.t
(** A key bound for range access paths. *)

val range_fold :
  ?meter:Fdb_persistent.Meter.t ->
  ?lo:bound ->
  ?hi:bound ->
  ('a -> Tuple.t -> 'a) ->
  'a ->
  t ->
  'a
(** Fold over the tuples whose key lies within the given bounds (absent
    bound = unbounded), in ascending key order.  Tree backends prune
    subtrees outside the range, so the meter charges only the units actually
    visited — O(log n + k) for a k-tuple range; the list backend still walks
    the prefix but stops at the upper bound. *)

val range : ?meter:Fdb_persistent.Meter.t -> ?lo:bound -> ?hi:bound -> t -> Tuple.t list
(** [range_fold] materialized, ascending. *)

val update :
  ?meter:Fdb_persistent.Meter.t ->
  ?lo:bound ->
  ?hi:bound ->
  t ->
  (Tuple.t -> Tuple.t option) ->
  t * int
(** Rewrite tuples in a single structural traversal: the function returns
    [Some t'] for rows to replace (the key must not change — enforced with
    [Invalid_argument]).  Untouched subtrees stay physically shared, and
    subtrees outside the optional key bounds are not visited at all.
    Returns the rewrite count; the relation is returned physically unchanged
    when it is zero. *)

val of_tuples : ?backend:backend -> Schema.t -> Tuple.t list -> (t, string) result
(** Bulk load; fails on the first schema mismatch.  Duplicate keys keep the
    first occurrence. *)

val shared_units : old:t -> t -> int * int
(** [(shared, total)] physical sharing (cells, nodes, pages or chunks, per
    the backend) of the new version against the old.  Both must use the
    same backend. @raise Invalid_argument otherwise. *)

val column_chunks : t -> Value.t array array array
(** The packed per-chunk column arrays of a {!constructor:Column_backend}
    relation, ascending: element [ci] is chunk [ci]'s columns,
    [cols.(j).(i)] the value of column [j] in its row [i].  Shared with
    the relation — callers must not mutate.  [[||]] for other backends
    (indistinguishable from an empty column relation; callers dispatch on
    {!val:backend} first). *)

val pp : Format.formatter -> t -> unit
