type stats = {
  sent : int;
  delivered : int;
  hops : int;
  max_in_flight : int;
  faulted : int;
}

type 'a msg = { m_src : int; dst : int; payload : 'a }

type 'a t = {
  topo : Topology.t;
  links : (int * int) list;  (* cached; serviced in this fixed order *)
  capacity : int;
  (* Point-to-point: queue.(u) has per-neighbour FIFO queues keyed by the
     neighbour's position in (neighbors topo u).  Shared bus / local
     hand-off: dedicated queues. *)
  link_q : (int, 'a msg Queue.t) Hashtbl.t;  (* key: u * n + v *)
  local_q : 'a msg Queue.t array;  (* src = dst hand-offs *)
  bus_q : 'a msg Queue.t;
  down : bool array;
  group : int array;  (* partition ids; all equal = healed *)
  mutable sent : int;
  mutable delivered : int;
  mutable hops : int;
  mutable in_flight : int;
  mutable max_in_flight : int;
  mutable faulted : int;
  fab_id : int;  (* distinguishes interleaved fabrics in one trace *)
  mutable clock : int;  (* step count, the fabric's local timebase *)
}

let next_fab_id = ref 0

let m_sent = Fdb_obs.Metrics.counter "fabric.sent"
let m_delivered = Fdb_obs.Metrics.counter "fabric.delivered"
let m_faulted = Fdb_obs.Metrics.counter "fabric.faulted"

(* Post-operation counter snapshot carried on every datagram event; the
   trace oracle checks [in_flight = sent - delivered - faulted] on each. *)
let snap f ~src ~dst : Fdb_obs.Event.net =
  {
    fab = f.fab_id;
    src;
    dst;
    sent = f.sent;
    delivered = f.delivered;
    faulted = f.faulted;
    in_flight = f.in_flight;
  }

let create ?(link_capacity = 1) topo =
  if link_capacity < 1 then invalid_arg "Fabric.create: capacity < 1";
  let n = Topology.size topo in
  let link_q = Hashtbl.create 64 in
  List.iter
    (fun (u, v) -> Hashtbl.replace link_q ((u * n) + v) (Queue.create ()))
    (Topology.links topo);
  {
    topo;
    links = Topology.links topo;
    capacity = link_capacity;
    link_q;
    local_q = Array.init n (fun _ -> Queue.create ());
    bus_q = Queue.create ();
    down = Array.make n false;
    group = Array.make n 0;
    sent = 0;
    delivered = 0;
    hops = 0;
    in_flight = 0;
    max_in_flight = 0;
    faulted = 0;
    fab_id = (incr next_fab_id; !next_fab_id);
    clock = 0;
  }

let topology f = f.topo

let check_node f u ~what =
  if u < 0 || u >= Topology.size f.topo then
    invalid_arg (Printf.sprintf "Fabric.%s: bad node" what)

let fault f m =
  f.faulted <- f.faulted + 1;
  f.in_flight <- f.in_flight - 1;
  Fdb_obs.Metrics.incr m_faulted;
  if Fdb_obs.Trace.enabled () then
    Fdb_obs.Trace.emit_at ~ts:f.clock ~site:m.dst
      (Fdb_obs.Event.Dg_drop (snap f ~src:m.m_src ~dst:m.dst))

(* -- crash faults ----------------------------------------------------------- *)

let is_down f u =
  check_node f u ~what:"is_down";
  f.down.(u)

let purge f q =
  while not (Queue.is_empty q) do
    fault f (Queue.pop q)
  done

let set_down f u =
  check_node f u ~what:"set_down";
  if not f.down.(u) then begin
    f.down.(u) <- true;
    (* A crash loses the node's buffers: its local hand-offs and anything
       still sitting in its outgoing NIC queues.  Frames already on other
       nodes' queues (or on the shared medium) are past the point of no
       return and keep travelling. *)
    purge f f.local_q.(u);
    let n = Topology.size f.topo in
    List.iter
      (fun (a, b) ->
        if a = u then purge f (Hashtbl.find f.link_q ((a * n) + b)))
      f.links
  end

let set_up f u =
  check_node f u ~what:"set_up";
  f.down.(u) <- false

let severed f u v = f.group.(u) <> f.group.(v)

let partition f members =
  Array.fill f.group 0 (Array.length f.group) 0;
  List.iter
    (fun u ->
      check_node f u ~what:"partition";
      f.group.(u) <- 1)
    members

let heal f = Array.fill f.group 0 (Array.length f.group) 0

(* -- transport -------------------------------------------------------------- *)

let enqueue_link f u v m =
  let n = Topology.size f.topo in
  match Hashtbl.find_opt f.link_q ((u * n) + v) with
  | Some q -> Queue.push m q
  | None -> invalid_arg "Fabric: no such link"

let send f ~src ~dst payload =
  let n = Topology.size f.topo in
  if src < 0 || dst < 0 || src >= n || dst >= n then
    invalid_arg "Fabric.send: bad endpoint";
  let m = { m_src = src; dst; payload } in
  f.sent <- f.sent + 1;
  Fdb_obs.Metrics.incr m_sent;
  if f.down.(src) then begin
    (* A dead node transmits nothing: the injection is charged and lost. *)
    f.faulted <- f.faulted + 1;
    Fdb_obs.Metrics.incr m_faulted;
    if Fdb_obs.Trace.enabled () then
      Fdb_obs.Trace.emit_at ~ts:f.clock ~site:src
        (Fdb_obs.Event.Dg_drop (snap f ~src ~dst))
  end
  else begin
    f.in_flight <- f.in_flight + 1;
    if f.in_flight > f.max_in_flight then f.max_in_flight <- f.in_flight;
    if Fdb_obs.Trace.enabled () then
      Fdb_obs.Trace.emit_at ~ts:f.clock ~site:src
        (Fdb_obs.Event.Dg_send (snap f ~src ~dst));
    if src = dst then Queue.push m f.local_q.(src)
    else
      match Topology.kind f.topo with
      | Topology.Shared_bus -> Queue.push m f.bus_q
      | Topology.Point_to_point ->
          enqueue_link f src (Topology.next_hop f.topo ~src ~dst) m
  end

let broadcast f ~src payload =
  let n = Topology.size f.topo in
  for dst = 0 to n - 1 do
    if dst <> src then send f ~src ~dst payload
  done

let step f =
  f.clock <- f.clock + 1;
  let deliveries = ref [] in
  let deliver m =
    if f.down.(m.dst) || severed f m.m_src m.dst then fault f m
    else begin
      f.delivered <- f.delivered + 1;
      f.in_flight <- f.in_flight - 1;
      Fdb_obs.Metrics.incr m_delivered;
      if Fdb_obs.Trace.enabled () then
        Fdb_obs.Trace.emit_at ~ts:f.clock ~site:m.dst
          (Fdb_obs.Event.Dg_deliver (snap f ~src:m.m_src ~dst:m.dst));
      deliveries := (m.dst, m.payload) :: !deliveries
    end
  in
  (* Local hand-offs: all of them complete (no medium involved). *)
  Array.iter
    (fun q ->
      while not (Queue.is_empty q) do
        deliver (Queue.pop q)
      done)
    f.local_q;
  (match Topology.kind f.topo with
  | Topology.Shared_bus ->
      let budget = ref f.capacity in
      while !budget > 0 && not (Queue.is_empty f.bus_q) do
        f.hops <- f.hops + 1;
        deliver (Queue.pop f.bus_q);
        decr budget
      done
  | Topology.Point_to_point ->
      let n = Topology.size f.topo in
      (* Collect this cycle's moves first so a message moves at most one
         hop per cycle. *)
      let moves = ref [] in
      List.iter
        (fun (u, v) ->
          let q = Hashtbl.find f.link_q ((u * n) + v) in
          let budget = ref f.capacity in
          while !budget > 0 && not (Queue.is_empty q) do
            let m = Queue.pop q in
            (* A severed link loses what tries to cross it; a dead sender's
               queues were purged at crash time, but a frame can still be
               mid-route at a node that dies under it. *)
            if f.down.(u) || severed f u v then fault f m
            else moves := (v, m) :: !moves;
            decr budget
          done)
        (Topology.links f.topo);
      List.iter
        (fun (at, m) ->
          f.hops <- f.hops + 1;
          if at = m.dst then deliver m
          else if f.down.(at) then fault f m
          else enqueue_link f at (Topology.next_hop f.topo ~src:at ~dst:m.dst) m)
        (List.rev !moves));
  List.rev !deliveries

let in_flight f = f.in_flight

let stats f : stats =
  {
    sent = f.sent;
    delivered = f.delivered;
    hops = f.hops;
    max_in_flight = f.max_in_flight;
    faulted = f.faulted;
  }
