lib/relational/algebra.ml: Array List Tuple Value
