lib/persistent/btree.mli: Meter Ordered
