lib/query/pred.mli: Ast Fdb_relational Schema Tuple Value
