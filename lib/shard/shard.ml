open Fdb_relational
module Ast = Fdb_query.Ast
module Merge = Fdb_merge.Merge
module Txn = Fdb_txn.Txn
module History = Fdb_txn.History
module Footprint = Fdb_repair.Footprint
module Metrics = Fdb_obs.Metrics
module Trace = Fdb_obs.Trace
module Event = Fdb_obs.Event

let m_local = Metrics.counter "shard.local_commits"
let m_bypass = Metrics.counter "shard.bypass"
let m_spine = Metrics.counter "shard.spine"
let m_conflict = Metrics.counter "shard.conflicts"
let h_epoch = Metrics.histogram "shard.epoch_len"

(* Placement must be stable across runs and processes (it is part of the
   simulated topology), so roll a tiny string hash instead of leaning on
   [Hashtbl.hash]. *)
let shard_of ~shards rel =
  if shards < 1 then invalid_arg "Shard.shard_of: shards < 1";
  let h =
    String.fold_left
      (fun h c -> ((h * 131) + Char.code c) land 0x3FFFFFFF)
      7 rel
  in
  h mod shards

let shards_of_query ~shards q =
  match
    List.sort_uniq Int.compare
      (List.map (shard_of ~shards) (Ast.relations_touched q))
  with
  | [] -> [ 0 ]
  | shs -> shs

let one_way ~schema_of ((wfp : Footprint.t), _wq) ((rfp : Footprint.t), rq) =
  match Footprint.overlap ~writer:wfp ~reader:rfp with
  | Footprint.No_overlap | Footprint.Key_disjoint -> true
  | Footprint.Overlapping -> Footprint.commutes ~schema_of wfp rq

(* Both directions: neither execution's reads may be invalidated by the
   other's writes.  Every write path reads the written key first (the
   existence check), so write-write collisions always surface as a read
   overlap in one of the directions. *)
let pair_commutes ~schema_of a b =
  one_way ~schema_of a b && one_way ~schema_of b a

type stats = {
  txns : int;
  local : int;
  bypassed : int;
  spine : int;
  conflicts : int;
  max_epoch : int;
}

let pp_stats ppf s =
  Fmt.pf ppf "txns=%d local=%d bypassed=%d spine=%d conflicts=%d max_epoch=%d"
    s.txns s.local s.bypassed s.spine s.conflicts s.max_epoch

type report = {
  shards : int;
  queries : Ast.query array;
  tags : int array;
  responses : Txn.response array;
  final : Database.t;
  shard_dbs : Database.t array;
  histories : History.t array;
  commit_log : int list array;
  local_queries : Ast.query list array;
  foreign_writes : bool array;
  versions : Database.t list;
  epochs : (int list * int option) list;
  stats : stats;
}

(* Slice the initial database: shard [s] owns exactly the relations that
   hash to it, physically sharing their slots with [initial]. *)
let slice ~shards initial =
  let names = Database.names initial in
  Array.init shards (fun s ->
      let mine = List.filter (fun r -> shard_of ~shards r = s) names in
      let schemas = List.filter_map (Database.schema_of initial) mine in
      List.fold_left
        (fun db r ->
          match Database.relation initial r with
          | Some slot -> Database.replace db r slot
          | None -> db)
        (Database.create schemas) mine)

let run_merged ~shards ~initial merged =
  if shards < 1 then invalid_arg "Shard.run_merged: shards < 1";
  let qs = Array.of_list (List.map (fun (m : _ Merge.tagged) -> m.Merge.item) merged) in
  let tags = Array.of_list (List.map (fun (m : _ Merge.tagged) -> m.Merge.tag) merged) in
  let n = Array.length qs in
  let traced = Trace.enabled () in
  let schema_of rel = Database.schema_of initial rel in
  let shard_dbs = slice ~shards initial in
  let histories = Array.map History.create shard_dbs in
  let commit_log = Array.make shards [] in
  let local_queries = Array.make shards [] in
  let foreign_writes = Array.make shards false in
  let pos = Array.make shards 0 in
  (* Per shard: everything committed there since the last global barrier,
     newest first — the open epoch the bypass analysis compares against. *)
  let windows = Array.make shards [] in
  let global = ref initial in
  let versions = ref [] in
  let responses = Array.make n (Txn.Failed "unexecuted") in
  let gsn = ref 0 in
  let epoch_members = ref [] in
  let epochs = ref [] in
  let epoch_len = ref 0 in
  let local = ref 0 and bypassed = ref 0 and spine = ref 0 in
  let conflicts = ref 0 and max_epoch = ref 0 in
  let commit_on i s =
    commit_log.(s) <- i :: commit_log.(s);
    if traced then
      Trace.emit_at ~ts:i ~site:s
        (Event.Shard_commit { shard = s; txn = i; pos = pos.(s) });
    pos.(s) <- pos.(s) + 1
  in
  let exec db q =
    let c = Footprint.collector () in
    let (resp, db') = Txn.translate_tracked (Footprint.tracker c) q db in
    (resp, db', Footprint.captured c)
  in
  (* Keep the assembled global view's slots in lockstep with a slice. *)
  let publish_global ~source_db rels =
    List.iter
      (fun rel ->
        match Database.relation source_db rel with
        | None -> ()
        | Some slot -> global := Database.replace !global rel slot)
      rels
  in
  (* Scatter a coordinator-built version back into the owning slices. *)
  let publish_slices ~source_db rels =
    List.iter
      (fun rel ->
        match Database.relation source_db rel with
        | None -> ()
        | Some slot ->
            let s = shard_of ~shards rel in
            shard_dbs.(s) <- Database.replace shard_dbs.(s) rel slot;
            foreign_writes.(s) <- true)
      rels
  in
  let advance_histories shs =
    List.iter
      (fun s ->
        if not (History.latest histories.(s) == shard_dbs.(s)) then
          histories.(s) <- History.append histories.(s) shard_dbs.(s))
      shs
  in
  for i = 0 to n - 1 do
    let q = qs.(i) in
    let shs = shards_of_query ~shards q in
    incr epoch_len;
    if !epoch_len > !max_epoch then max_epoch := !epoch_len;
    match shs with
    | [ s ] ->
        (* Shard-local work: the slice is the whole world.  Never touches
           the spine — this is the scale-out path. *)
        let (resp, db', fp) = exec shard_dbs.(s) q in
        responses.(i) <- resp;
        if not (db' == shard_dbs.(s)) then begin
          shard_dbs.(s) <- db';
          publish_global ~source_db:db' (List.map fst fp.Footprint.effects);
          histories.(s) <- History.append histories.(s) db';
          versions := !global :: !versions
        end;
        incr local;
        Metrics.incr m_local;
        commit_on i s;
        local_queries.(s) <- q :: local_queries.(s);
        windows.(s) <- (i, fp, q) :: windows.(s);
        epoch_members := i :: !epoch_members
    | shs ->
        (* Cross-shard: the coordinator assembles the involved slices —
           [!global]'s slots are maintained in lockstep with them. *)
        let (resp, db', fp) = exec !global q in
        responses.(i) <- resp;
        let conflict =
          List.find_map
            (fun s ->
              List.find_map
                (fun (j, wfp, wq) ->
                  if pair_commutes ~schema_of (wfp, wq) (fp, q) then None
                  else Some j)
                windows.(s))
            shs
        in
        let changed = not (db' == !global) in
        let wrote = List.map fst fp.Footprint.effects in
        (match conflict with
        | None ->
            (* Every in-epoch neighbour commutes: commit shard-locally,
               the spine never hears about it. *)
            incr bypassed;
            Metrics.incr m_bypass;
            if traced then
              Trace.emit
                (Event.Shard_bypass { txn = i; shards = List.length shs });
            if changed then begin
              global := db';
              publish_slices ~source_db:db' wrote;
              versions := !global :: !versions
            end;
            List.iter (commit_on i) shs;
            advance_histories shs;
            List.iter (fun s -> windows.(s) <- (i, fp, q) :: windows.(s)) shs;
            epoch_members := i :: !epoch_members
        | Some j ->
            (* Genuinely conflicting work rides the serial spine: a global
               sequence number, and a barrier closing the epoch on every
               shard. *)
            incr conflicts;
            Metrics.incr m_conflict;
            if traced then
              Trace.emit (Event.Shard_conflict { txn = i; against = j });
            incr spine;
            Metrics.incr m_spine;
            if traced then Trace.emit (Event.Shard_spine { txn = i; gsn = !gsn });
            incr gsn;
            if changed then begin
              global := db';
              publish_slices ~source_db:db' wrote;
              versions := !global :: !versions
            end;
            List.iter (commit_on i) shs;
            advance_histories shs;
            Array.fill windows 0 shards [];
            epochs := (List.rev !epoch_members, Some i) :: !epochs;
            epoch_members := [];
            Metrics.observe h_epoch !epoch_len;
            epoch_len := 0)
  done;
  if !epoch_members <> [] then
    epochs := (List.rev !epoch_members, None) :: !epochs;
  if !epoch_len > 0 then Metrics.observe h_epoch !epoch_len;
  {
    shards;
    queries = qs;
    tags;
    responses;
    final = !global;
    shard_dbs;
    histories;
    commit_log = Array.map List.rev commit_log;
    local_queries = Array.map List.rev local_queries;
    foreign_writes;
    versions = List.rev !versions;
    epochs = List.rev !epochs;
    stats =
      {
        txns = n;
        local = !local;
        bypassed = !bypassed;
        spine = !spine;
        conflicts = !conflicts;
        max_epoch = !max_epoch;
      };
  }

let run ?(policy = Merge.Arrival_order) ~shards ~initial streams =
  run_merged ~shards ~initial (Merge.merge policy streams)

(* The adversarial replay: within each epoch, commit shard-major (stable
   by lowest touched shard) instead of router order.  Every swapped pair
   either shares no shard or was checked by the analysis when the later
   one committed, so a sound bypass makes this schedule observationally
   identical to the original run. *)
let reorder_schedule r =
  let key i = List.hd (shards_of_query ~shards:r.shards r.queries.(i)) in
  let entry i = (i, r.tags.(i), r.queries.(i)) in
  List.concat_map
    (fun (members, closing) ->
      let sorted =
        List.stable_sort (fun a b -> Int.compare (key a) (key b)) members
      in
      List.map entry sorted
      @ match closing with Some i -> [ entry i ] | None -> [])
    r.epochs
