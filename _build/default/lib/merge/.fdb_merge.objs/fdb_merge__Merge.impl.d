lib/merge/merge.ml: Array Float Format Int List Random
