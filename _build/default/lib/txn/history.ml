open Fdb_relational

type t = { versions : Database.t list (* newest first, never empty *) }

let create db0 = { versions = [ db0 ] }

let newest t =
  match t.versions with [] -> assert false | db :: _ -> db

let commit t txn =
  let (response, db') = txn (newest t) in
  ({ versions = db' :: t.versions }, response)

let commit_query t query = commit t (Txn.translate query)

let of_queries db0 queries =
  let (t, rev_responses) =
    List.fold_left
      (fun (t, acc) query ->
        let (t', r) = commit_query t query in
        (t', r :: acc))
      (create db0, [])
      queries
  in
  (t, List.rev rev_responses)

let length t = List.length t.versions

let version t i =
  let n = length t in
  if i < 0 || i >= n then invalid_arg "History.version: out of range";
  List.nth t.versions (n - 1 - i)

let latest = newest

let query_at t i query = fst (Txn.translate query (version t i))

let changed_relations t i =
  if i <= 0 then []
  else
    let before = version t (i - 1) and after = version t i in
    List.filter
      (fun name -> not (Database.shares_relation ~old:before after name))
      (Database.names after)

let sharing_ratio t =
  let n = length t in
  if n < 2 then 1.0
  else begin
    let shared = ref 0 and total = ref 0 in
    for i = 1 to n - 1 do
      let before = version t (i - 1) and after = version t i in
      List.iter
        (fun name ->
          incr total;
          if Database.shares_relation ~old:before after name then incr shared)
        (Database.names after)
    done;
    float_of_int !shared /. float_of_int !total
  end
