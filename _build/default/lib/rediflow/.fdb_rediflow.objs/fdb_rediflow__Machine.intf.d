lib/rediflow/machine.mli: Engine Fabric Fdb_kernel Fdb_net Topology
