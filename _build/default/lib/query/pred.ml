open Fdb_relational

let cmp_fun = function
  | Ast.Eq -> fun c -> c = 0
  | Ast.Ne -> fun c -> c <> 0
  | Ast.Lt -> fun c -> c < 0
  | Ast.Le -> fun c -> c <= 0
  | Ast.Gt -> fun c -> c > 0
  | Ast.Ge -> fun c -> c >= 0

let compile schema pred =
  let rec go = function
    | Ast.True -> Ok (fun _ -> true)
    | Ast.Cmp (col, op, lit) -> (
        match Schema.column_index schema col with
        | None ->
            Error
              (Printf.sprintf "relation %s has no column %s"
                 (Schema.name schema) col)
        | Some i ->
            let test = cmp_fun op in
            Ok (fun tup -> test (Value.compare (Tuple.get tup i) lit)))
    | Ast.And (a, b) -> combine a b (fun fa fb tup -> fa tup && fb tup)
    | Ast.Or (a, b) -> combine a b (fun fa fb tup -> fa tup || fb tup)
    | Ast.Not p -> (
        match go p with Ok f -> Ok (fun tup -> not (f tup)) | e -> e)
  and combine a b op =
    match (go a, go b) with
    | (Ok fa, Ok fb) -> Ok (op fa fb)
    | ((Error _ as e), _) | (_, (Error _ as e)) -> e
  in
  go pred

let eval schema pred tuple =
  Result.map (fun f -> f tuple) (compile schema pred)

let compile_aggregate schema agg col where =
  match Schema.column_index schema col with
  | None ->
      Error
        (Printf.sprintf "relation %s has no column %s" (Schema.name schema)
           col)
  | Some i -> (
      match compile schema where with
      | Error e -> Error e
      | Ok test -> (
          let col_type = List.nth (Schema.columns schema) i in
          match (agg, snd col_type) with
          | (Ast.Sum, (Schema.CInt | Schema.CReal)) ->
              let add a b =
                match (a, b) with
                | (Value.Int x, Value.Int y) -> Value.Int (x + y)
                | (Value.Real x, Value.Real y) -> Value.Real (x +. y)
                | _ -> a (* unreachable: schema-checked *)
              in
              let step acc tup =
                if test tup then
                  match acc with
                  | None -> Some (Tuple.get tup i)
                  | Some a -> Some (add a (Tuple.get tup i))
                else acc
              in
              let finish = function
                | None ->
                    Some
                      (match snd col_type with
                      | Schema.CReal -> Value.Real 0.0
                      | _ -> Value.Int 0)
                | acc -> acc
              in
              Ok (step, finish)
          | (Ast.Sum, (Schema.CStr | Schema.CBool)) ->
              Error
                (Printf.sprintf "cannot sum non-numeric column %s of %s" col
                   (Schema.name schema))
          | ((Ast.Min | Ast.Max), _) ->
              let better =
                match agg with
                | Ast.Min -> fun c -> c < 0
                | _ -> fun c -> c > 0
              in
              let step acc tup =
                if test tup then
                  let v = Tuple.get tup i in
                  match acc with
                  | None -> Some v
                  | Some a -> if better (Value.compare v a) then Some v else acc
                else acc
              in
              Ok (step, fun acc -> acc)))

let compile_update schema col value where =
  match Schema.column_index schema col with
  | None ->
      Error
        (Printf.sprintf "relation %s has no column %s" (Schema.name schema)
           col)
  | Some 0 ->
      Error
        (Printf.sprintf "cannot update the key column %s of %s" col
           (Schema.name schema))
  | Some i -> (
      let expected = snd (List.nth (Schema.columns schema) i) in
      let type_ok =
        match (expected, value) with
        | (Schema.CInt, Value.Int _)
        | (Schema.CStr, Value.Str _)
        | (Schema.CBool, Value.Bool _)
        | (Schema.CReal, Value.Real _) ->
            true
        | ((Schema.CInt | Schema.CStr | Schema.CBool | Schema.CReal), _) ->
            false
      in
      if not type_ok then
        Error
          (Format.asprintf "value %a does not fit column %s of %s" Value.pp
             value col (Schema.name schema))
      else
        match compile schema where with
        | Error e -> Error e
        | Ok test ->
            Ok
              (fun tup ->
                if test tup && not (Value.equal (Tuple.get tup i) value)
                then Some (Tuple.set tup i value)
                else None))
