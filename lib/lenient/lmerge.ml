open Fdb_kernel

let merge eng ?(label = "merge") inputs =
  let head = Engine.ivar eng in
  match inputs with
  | [] ->
      Engine.put head Llist.Nil;
      head
  | _ ->
      (* The arbiter's state: the output cell currently awaiting content
         and the number of input streams still producing.  Continuations
         within one cycle execute sequentially, so the mutable tail is a
         faithful model of the paper's single merge point. *)
      let tail = ref head in
      let live = ref (List.length inputs) in
      let pos = ref 0 in
      let emit tag v =
        if Fdb_obs.Trace.enabled () then
          Fdb_obs.Trace.emit_at ~ts:(Engine.now eng)
            ~site:(Engine.current_site eng)
            (Fdb_obs.Event.Merge_take { tag; pos = !pos });
        incr pos;
        let next = Engine.ivar eng in
        Engine.put !tail (Llist.Cons (v, next));
        tail := next
      in
      let finish () =
        decr live;
        if !live = 0 then Engine.put !tail Llist.Nil
      in
      List.iteri
        (fun tag l ->
          let rec chase l =
            Engine.await ~label l (function
              | Llist.Nil -> finish ()
              | Llist.Cons (x, rest) ->
                  emit tag (tag, x);
                  chase rest)
          in
          chase l)
        inputs;
      head

let choose eng ?(label = "choose") ~tag merged =
  let own = Llist.filter eng ~label (fun (t, _) -> t = tag) merged in
  Llist.map eng ~label snd own
