(** Chrome [trace_event] export.

    Renders a captured event list as the JSON object format understood by
    [chrome://tracing] / Perfetto: dispatch start/end become duration
    ("B"/"E") spans, everything else becomes an instant ("i") event, and
    datagram events additionally emit an [in_flight] counter ("C") track.

    Timestamps are the event's {e index} in the trace (in microseconds):
    the layers run on incomparable local clocks, so emission order is the
    only globally meaningful timeline.  Sites map to Chrome thread ids
    ([tid = site + 1] so site [-1] renders as tid 0). *)

val to_json : Event.t list -> string
(** The full [{"traceEvents": [...], ...}] document, ready to load. *)
