open Fdb_relational
module Ast = Fdb_query.Ast

type spec = {
  transactions : int;
  relations : int;
  initial_tuples : int;
  insert_pct : float;
  delete_pct : float;
  update_pct : float;
  join_pct : float;
  miss_ratio : float;
  skew : float;
  clients : int;
  seed : int;
}

let default_spec =
  {
    transactions = 50;
    relations = 3;
    initial_tuples = 50;
    insert_pct = 14.0;
    delete_pct = 0.0;
    update_pct = 0.0;
    join_pct = 0.0;
    miss_ratio = 0.1;
    skew = 0.0;
    clients = 2;
    seed = 42;
  }

let paper_insert_percentages = [ 0.0; 4.0; 7.0; 14.0; 24.0; 38.0 ]
let paper_relation_counts = [ 5; 3; 1 ]

type t = {
  spec : spec;
  schemas : Schema.t list;
  initial : (string * Tuple.t list) list;
  client_streams : Ast.query list list;
}

let relation_name i = Printf.sprintf "R%d" i

let schema_for i =
  Schema.make ~name:(relation_name i)
    ~cols:[ ("key", Schema.CInt); ("val", Schema.CStr) ]

let tuple_for key = Tuple.make [ Value.Int key; Value.Str (Printf.sprintf "t%d" key) ]

(* Mixes that should sum to exactly 100 often don't in floating point
   (e.g. three copies of [100.0 /. 3.0] sum to 100.00000000000001), so the
   over-100 rejection tolerates rounding noise up to this epsilon. *)
let mix_epsilon = 1e-6

let check spec =
  if spec.transactions < 0 then invalid_arg "Workload: transactions < 0";
  if spec.relations < 1 then invalid_arg "Workload: relations < 1";
  if spec.initial_tuples < 0 then invalid_arg "Workload: initial_tuples < 0";
  if spec.clients < 1 then invalid_arg "Workload: clients < 1";
  if spec.insert_pct < 0.0 || spec.delete_pct < 0.0 || spec.update_pct < 0.0
     || spec.join_pct < 0.0
     || spec.insert_pct +. spec.delete_pct +. spec.update_pct +. spec.join_pct
        > 100.0 +. mix_epsilon
  then invalid_arg "Workload: bad operation mix";
  if spec.miss_ratio < 0.0 || spec.miss_ratio > 1.0 then
    invalid_arg "Workload: miss_ratio outside [0, 1]";
  if spec.skew < 0.0 then invalid_arg "Workload: skew < 0"

(* Which of [n] present keys a reference touches.  [skew = 0.0] is exactly
   the uniform draw the generator always made — same stream consumption,
   so existing seeds regenerate byte-identical workloads.  [skew > 0.0] is
   a rank-skew: a uniform variate raised to [1 + skew] concentrates picks
   on low ranks — the head of the present-key list, i.e. the most recently
   inserted keys — approximating the zipfian access patterns real caches
   and hot rows see.  Higher skew, hotter head. *)
let pick_index rand ~skew n =
  if skew <= 0.0 then Random.State.int rand n
  else
    let u = Random.State.float rand 1.0 in
    min (n - 1) (int_of_float (float_of_int n *. (u ** (1.0 +. skew))))

(* How many of [n] transactions each named kind gets, by largest
   remainder: the combined named total is rounded half away from zero
   (so the paper's lone 7% of 50 still becomes 4) and clamped to [n],
   each kind takes the floor of its exact quota, and the leftover units
   go to the largest fractional remainders, ties in declaration order
   (insert, delete, update, join).  Unlike rounding each kind
   independently, the total can never overflow [n] — a 33.4/33.4/33.4
   mix of 10 transactions is 4/3/3, not three 3s plus a clamped tail
   that silently starves the later kinds. *)
let mix_counts ~insert_pct ~delete_pct ~update_pct ~join_pct n =
  let quotas =
    Array.map
      (fun pct -> pct *. float_of_int n /. 100.0)
      [| insert_pct; delete_pct; update_pct; join_pct |]
  in
  let target =
    min n (int_of_float (Float.round (Array.fold_left ( +. ) 0.0 quotas)))
  in
  let counts = Array.map (fun q -> int_of_float (Float.floor q)) quotas in
  let by_remainder =
    List.stable_sort
      (fun i j ->
        Float.compare
          (quotas.(j) -. float_of_int counts.(j))
          (quotas.(i) -. float_of_int counts.(i)))
      [ 0; 1; 2; 3 ]
  in
  let leftover = ref (target - Array.fold_left ( + ) 0 counts) in
  List.iter
    (fun i ->
      if !leftover > 0 then begin
        counts.(i) <- counts.(i) + 1;
        decr leftover
      end)
    by_remainder;
  assert (Array.fold_left ( + ) 0 counts <= n);
  (counts.(0), counts.(1), counts.(2), counts.(3))

let generate spec =
  check spec;
  let rand = Random.State.make [| spec.seed |] in
  let k = spec.relations in
  let schemas = List.init k (fun i -> schema_for (i + 1)) in
  (* Initial tuples: keys 0 .. initial-1, dealt round-robin. *)
  let initial_keys = Array.make k [] in
  for key = spec.initial_tuples - 1 downto 0 do
    let r = key mod k in
    initial_keys.(r) <- key :: initial_keys.(r)
  done;
  let initial =
    List.init k (fun i ->
        (relation_name (i + 1), List.map tuple_for initial_keys.(i)))
  in
  (* Kind sequence: the right counts of inserts/deletes, shuffled. *)
  let n = spec.transactions in
  let (n_ins, n_del, n_upd, n_join) =
    mix_counts ~insert_pct:spec.insert_pct ~delete_pct:spec.delete_pct
      ~update_pct:spec.update_pct ~join_pct:spec.join_pct n
  in
  let kinds = Array.make n `Find in
  for i = 0 to n_ins - 1 do
    kinds.(i) <- `Insert
  done;
  for i = n_ins to n_ins + n_del - 1 do
    kinds.(i) <- `Delete
  done;
  for i = n_ins + n_del to n_ins + n_del + n_upd - 1 do
    kinds.(i) <- `Update
  done;
  for i = n_ins + n_del + n_upd to n_ins + n_del + n_upd + n_join - 1 do
    kinds.(i) <- `Join
  done;
  for i = n - 1 downto 1 do
    let j = Random.State.int rand (i + 1) in
    let tmp = kinds.(i) in
    kinds.(i) <- kinds.(j);
    kinds.(j) <- tmp
  done;
  (* Present keys per relation evolve as inserts/deletes are generated.
     [Keyset] ranks match the legacy newest-first lists exactly, so the
     draws below reproduce historical streams byte for byte. *)
  let present = Array.map Keyset.of_list initial_keys in
  let next_key = ref spec.initial_tuples in
  let pick_relation () = Random.State.int rand k in
  let queries =
    Array.to_list
      (Array.mapi
         (fun _i kind ->
           let r = pick_relation () in
           let rel = relation_name (r + 1) in
           match kind with
           | `Insert ->
               let key = !next_key in
               incr next_key;
               Keyset.prepend present.(r) key;
               Ast.Insert { rel; values = [ Value.Int key;
                                            Value.Str (Printf.sprintf "t%d" key) ] }
           | `Delete ->
               let keys = present.(r) in
               if Keyset.size keys = 0 then
                 (* nothing to delete here: probe an absent key *)
                 Ast.Delete { rel; key = Value.Int (-1) }
               else
                 let key =
                   Keyset.remove keys
                     (pick_index rand ~skew:spec.skew (Keyset.size keys))
                 in
                 Ast.Delete { rel; key = Value.Int key }
           | `Update ->
               let keys = present.(r) in
               if Keyset.size keys = 0 then
                 Ast.Update { rel; col = "val";
                              value = Value.Str "touched";
                              where = Ast.Cmp ("key", Ast.Eq, Value.Int (-1)) }
               else
                 let key =
                   Keyset.get keys
                     (pick_index rand ~skew:spec.skew (Keyset.size keys))
                 in
                 Ast.Update
                   { rel; col = "val";
                     value = Value.Str (Printf.sprintf "u%d" key);
                     where = Ast.Cmp ("key", Ast.Eq, Value.Int key) }
           | `Join ->
               (* Cross-relation when there is more than one relation —
                  the multi-site (cross-shard) transaction of the sharded
                  executor.  Consumes one extra draw, but only workloads
                  with [join_pct > 0] reach this branch, so historical
                  seeds regenerate byte-identical streams. *)
               let r2 =
                 if k = 1 then r
                 else (r + 1 + Random.State.int rand (k - 1)) mod k
               in
               Ast.Join
                 { left = rel; right = relation_name (r2 + 1);
                   on = ("key", "key") }
           | `Find ->
               let miss = Random.State.float rand 1.0 < spec.miss_ratio in
               let keys = present.(r) in
               if miss || Keyset.size keys = 0 then
                 Ast.Find { rel; key = Value.Int (-1 - Random.State.int rand 1000) }
               else
                 Ast.Find
                   { rel;
                     key =
                       Value.Int
                         (Keyset.get keys
                            (pick_index rand ~skew:spec.skew
                               (Keyset.size keys)))
                   })
         kinds)
  in
  (* Deal queries round-robin into client streams. *)
  let streams = Array.make spec.clients [] in
  List.iteri
    (fun i q -> streams.(i mod spec.clients) <- q :: streams.(i mod spec.clients))
    queries;
  let client_streams = Array.to_list (Array.map List.rev streams) in
  { spec; schemas; initial; client_streams }

let all_queries w = List.concat w.client_streams

let insert_count w =
  List.length
    (List.filter (function Ast.Insert _ -> true | _ -> false) (all_queries w))
