examples/multi_user.mli:
