lib/relational/tuple.ml: Array Format Value
