(* An indexable set of present keys, ranked newest-first.

   The generator used to keep each relation's present keys as a plain list
   (head = most recently inserted) and address it with [List.nth] /
   [List.filter] — O(n) per reference, O(n^2) per workload, minutes for a
   million-tuple spec.  This is the same abstract sequence with O(log n)
   rank selection and rank removal: keys live in an append-order array and
   a Fenwick (binary indexed) tree counts the alive slots, so the element
   at newest-first rank [i] is the [(count - i)]-th alive slot in append
   order.  Ranks — and therefore every random draw the generator makes —
   are identical to the legacy list at every skew, which is what keeps
   historical seeds byte-identical. *)

type t = {
  mutable keys : int array;  (* append order; slots [0, len) are in use *)
  mutable alive : Bytes.t;  (* '\001' alive, '\000' removed, per slot *)
  mutable tree : int array;  (* 1-based Fenwick tree over the alive flags *)
  mutable cap : int;  (* a power of two *)
  mutable len : int;
  mutable count : int;  (* alive slots *)
}

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let create ?(capacity = 8) () =
  let cap = pow2_at_least (max 1 capacity) 1 in
  {
    keys = Array.make cap 0;
    alive = Bytes.make cap '\000';
    tree = Array.make (cap + 1) 0;
    cap;
    len = 0;
    count = 0;
  }

let size t = t.count

(* Add [delta] at slot [p] (0-based) in the Fenwick tree. *)
let bump t p delta =
  let i = ref (p + 1) in
  while !i <= t.cap do
    t.tree.(!i) <- t.tree.(!i) + delta;
    i := !i + (!i land - !i)
  done

let grow t =
  let cap = t.cap * 2 in
  let keys = Array.make cap 0 in
  Array.blit t.keys 0 keys 0 t.len;
  let alive = Bytes.make cap '\000' in
  Bytes.blit t.alive 0 alive 0 t.len;
  (* Linear-time Fenwick build: by the time slot [i] propagates to its
     parent it already holds its own flag plus its children's sums. *)
  let tree = Array.make (cap + 1) 0 in
  for i = 1 to cap do
    if i <= t.len && Bytes.get alive (i - 1) = '\001' then
      tree.(i) <- tree.(i) + 1;
    let j = i + (i land -i) in
    if j <= cap then tree.(j) <- tree.(j) + tree.(i)
  done;
  t.keys <- keys;
  t.alive <- alive;
  t.tree <- tree;
  t.cap <- cap

let prepend t key =
  if t.len = t.cap then grow t;
  t.keys.(t.len) <- key;
  Bytes.set t.alive t.len '\001';
  bump t t.len 1;
  t.len <- t.len + 1;
  t.count <- t.count + 1

(* 0-based slot of the k-th (1-based) alive slot in append order, by
   binary lifting down the Fenwick tree: O(log cap). *)
let select t k =
  let pos = ref 0 and rem = ref k in
  let bit = ref t.cap in
  while !bit > 0 do
    let next = !pos + !bit in
    if next <= t.cap && t.tree.(next) < !rem then begin
      rem := !rem - t.tree.(next);
      pos := next
    end;
    bit := !bit / 2
  done;
  !pos

let get t idx =
  if idx < 0 || idx >= t.count then invalid_arg "Keyset.get: rank out of range";
  t.keys.(select t (t.count - idx))

let remove t idx =
  if idx < 0 || idx >= t.count then
    invalid_arg "Keyset.remove: rank out of range";
  let p = select t (t.count - idx) in
  Bytes.set t.alive p '\000';
  bump t p (-1);
  t.count <- t.count - 1;
  t.keys.(p)

let of_list newest_first =
  let t = create ~capacity:(max 8 (List.length newest_first)) () in
  List.iter (prepend t) (List.rev newest_first);
  t

let to_list t =
  let acc = ref [] in
  for p = 0 to t.len - 1 do
    if Bytes.get t.alive p = '\001' then acc := t.keys.(p) :: !acc
  done;
  !acc
