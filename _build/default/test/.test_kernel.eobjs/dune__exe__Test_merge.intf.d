test/test_merge.mli:
