let select = List.filter

let project idxs tuples =
  let pick t =
    Array.of_list
      (List.map
         (fun i ->
           if i < 0 || i >= Tuple.arity t then
             invalid_arg "Algebra.project: column index out of range"
           else Tuple.get t i)
         idxs)
  in
  List.map pick tuples

let nested_join ~left_col ~right_col left right =
  List.concat_map
    (fun lt ->
      List.filter_map
        (fun rt ->
          if Value.equal (Tuple.get lt left_col) (Tuple.get rt right_col) then
            Some (Array.append lt rt)
          else None)
        right)
    left

(* Hash the join values with [Value.equal] (not structural [=]) so that
   e.g. [Real nan] and [Real (-0.)] behave exactly as in the nested loop. *)
module VH = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Hashtbl.hash
end)

let hash_join ~left_col ~right_col left right =
  let tbl = VH.create 64 in
  List.iter
    (fun rt ->
      let k = Tuple.get rt right_col in
      let prev = match VH.find_opt tbl k with Some l -> l | None -> [] in
      VH.replace tbl k (rt :: prev))
    right;
  (* Buckets were accumulated reversed; restore the right side's original
     order so the output matches the nested loop tuple for tuple. *)
  VH.filter_map_inplace (fun _ bucket -> Some (List.rev bucket)) tbl;
  List.concat_map
    (fun lt ->
      match VH.find_opt tbl (Tuple.get lt left_col) with
      | None -> []
      | Some bucket -> List.map (fun rt -> Array.append lt rt) bucket)
    left

let join ?(algo = `Hash) ~left_col ~right_col left right =
  match algo with
  | `Hash -> hash_join ~left_col ~right_col left right
  | `Nested -> nested_join ~left_col ~right_col left right

let union a b = List.sort_uniq Tuple.compare (a @ b)

(* Sort-merge membership flags: [flags.(i)] tells whether the i-th element
   of [a] occurs in [b].  O((n+m) log (n+m)) against the former O(n·m)
   [List.exists] scans, while preserving [a]'s order and duplicates. *)
let presence_in a b =
  let an = Array.of_list (List.mapi (fun i t -> (t, i)) a) in
  Array.sort
    (fun (t1, i1) (t2, i2) ->
      let c = Tuple.compare t1 t2 in
      if c <> 0 then c else Int.compare i1 i2)
    an;
  let bn = Array.of_list b in
  Array.sort Tuple.compare bn;
  let flags = Array.make (Array.length an) false in
  let m = Array.length bn in
  let j = ref 0 in
  Array.iter
    (fun (t, i) ->
      while !j < m && Tuple.compare bn.(!j) t < 0 do
        incr j
      done;
      if !j < m && Tuple.compare bn.(!j) t = 0 then flags.(i) <- true)
    an;
  flags

let difference a b =
  match b with
  | [] -> a
  | _ ->
      let flags = presence_in a b in
      List.filteri (fun i _ -> not flags.(i)) a

let intersection a b =
  match b with
  | [] -> []
  | _ ->
      let flags = presence_in a b in
      List.filteri (fun i _ -> flags.(i)) a

let product a b =
  List.concat_map (fun lt -> List.map (fun rt -> Array.append lt rt) b) a
