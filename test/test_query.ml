(* Query language tests: lexer, parser, pretty-printer round trips, and
   predicate compilation. *)

open Fdb_relational
module Ast = Fdb_query.Ast
module Lexer = Fdb_query.Lexer
module Parser = Fdb_query.Parser
module Pred = Fdb_query.Pred

let parse_ok src =
  match Parser.parse src with
  | Ok q -> q
  | Error e -> Alcotest.failf "parse %S: %s" src e

let parse_err src =
  match Parser.parse src with
  | Ok _ -> Alcotest.failf "parse %S unexpectedly succeeded" src
  | Error e -> e

(* -- lexer ------------------------------------------------------------------ *)

let test_lexer_basic () =
  let toks = Lexer.tokens "insert (1, \"a b\") into R" in
  Alcotest.(check int) "token count" 8 (List.length toks);
  (match toks with
  | [ Lexer.KW "insert"; Lexer.LPAREN; Lexer.INT 1; Lexer.COMMA;
      Lexer.STRING "a b"; Lexer.RPAREN; Lexer.KW "into"; Lexer.IDENT "R" ] ->
      ()
  | _ -> Alcotest.fail "unexpected tokens")

let test_lexer_numbers_and_ops () =
  (match Lexer.tokens "-3 4.5 <= >= != < > =" with
  | [ Lexer.INT (-3); Lexer.REAL 4.5; Lexer.OP "<="; Lexer.OP ">=";
      Lexer.OP "!="; Lexer.OP "<"; Lexer.OP ">"; Lexer.OP "=" ] ->
      ()
  | _ -> Alcotest.fail "numbers/ops mis-lexed");
  match Lexer.tokens "'single'" with
  | [ Lexer.STRING "single" ] -> ()
  | _ -> Alcotest.fail "single quotes"

let test_lexer_keywords_case_insensitive () =
  match Lexer.tokens "INSERT Into r" with
  | [ Lexer.KW "insert"; Lexer.KW "into"; Lexer.IDENT "r" ] -> ()
  | _ -> Alcotest.fail "keyword case"

let test_lexer_errors () =
  Alcotest.check_raises "unterminated string"
    (Lexer.Lex_error ("unterminated string", 0)) (fun () ->
      ignore (Lexer.tokens "\"oops"));
  (try
     ignore (Lexer.tokens "a @ b");
     Alcotest.fail "lexed '@'"
   with Lexer.Lex_error (_, pos) -> Alcotest.(check int) "position" 2 pos)

(* -- parser ------------------------------------------------------------------ *)

let test_parse_insert () =
  match parse_ok "insert (7, \"g\", true, 1.5) into Widgets" with
  | Ast.Insert { rel = "Widgets"; values } ->
      Alcotest.(check int) "arity" 4 (List.length values);
      Alcotest.(check bool) "bool literal" true
        (List.exists (Value.equal (Value.Bool true)) values)
  | _ -> Alcotest.fail "wrong AST"

let test_parse_find_delete_count () =
  (match parse_ok "find 3 in R" with
  | Ast.Find { rel = "R"; key = Value.Int 3 } -> ()
  | _ -> Alcotest.fail "find");
  (match parse_ok "delete \"k\" from S" with
  | Ast.Delete { rel = "S"; key = Value.Str "k" } -> ()
  | _ -> Alcotest.fail "delete");
  (match parse_ok "count R" with
  | Ast.Count { rel = "R"; where = Ast.True } -> ()
  | _ -> Alcotest.fail "count");
  match parse_ok "count R where key > 2" with
  | Ast.Count { rel = "R"; where = Ast.Cmp ("key", Ast.Gt, Value.Int 2) } -> ()
  | _ -> Alcotest.fail "count where"

let test_parse_select () =
  (match parse_ok "select * from R" with
  | Ast.Select { rel = "R"; cols = None; where = Ast.True } -> ()
  | _ -> Alcotest.fail "select star");
  (match parse_ok "select a, b from R where a > 3 and not (b = 2 or a <= 1)" with
  | Ast.Select { cols = Some [ "a"; "b" ];
                 where = Ast.And (Ast.Cmp ("a", Ast.Gt, Value.Int 3),
                                  Ast.Not (Ast.Or _)); _ } -> ()
  | q -> Alcotest.failf "select where: %s" (Ast.to_string q));
  (* 'and' binds tighter than 'or' *)
  match parse_ok "select * from R where a = 1 or b = 2 and a = 3" with
  | Ast.Select { where = Ast.Or (_, Ast.And _); _ } -> ()
  | _ -> Alcotest.fail "precedence"

let test_parse_aggregate () =
  (match parse_ok "sum age from People where age >= 30" with
  | Ast.Aggregate { agg = Ast.Sum; rel = "People"; col = "age";
                    where = Ast.Cmp ("age", Ast.Ge, Value.Int 30) } -> ()
  | _ -> Alcotest.fail "sum");
  (match parse_ok "min price from Items" with
  | Ast.Aggregate { agg = Ast.Min; rel = "Items"; col = "price";
                    where = Ast.True } -> ()
  | _ -> Alcotest.fail "min");
  match parse_ok "max price from Items" with
  | Ast.Aggregate { agg = Ast.Max; _ } -> ()
  | _ -> Alcotest.fail "max"

let test_parse_update () =
  (match parse_ok "update R set val = \"x\" where key > 3" with
  | Ast.Update { rel = "R"; col = "val"; value = Value.Str "x";
                 where = Ast.Cmp ("key", Ast.Gt, Value.Int 3) } -> ()
  | _ -> Alcotest.fail "update");
  match parse_ok "update R set flag = true" with
  | Ast.Update { where = Ast.True; value = Value.Bool true; _ } -> ()
  | _ -> Alcotest.fail "update no where"

let test_parse_join () =
  match parse_ok "join R and S on b = c" with
  | Ast.Join { left = "R"; right = "S"; on = ("b", "c") } -> ()
  | _ -> Alcotest.fail "join"

let test_parse_errors () =
  let check_err src =
    let msg = parse_err src in
    Alcotest.(check bool) (src ^ ": message nonempty") true (msg <> "")
  in
  List.iter check_err
    [ ""; "insert 3 into R"; "find in R"; "select from R"; "insert (1,) into R";
      "find 3 in"; "count"; "join R and S on b"; "find 3 in R extra";
      "select * from R where" ]

let test_parse_script () =
  match
    Parser.parse_script
      "-- a comment\ninsert (1, \"a\") into R; find 1 in R\n\ncount R"
  with
  | Ok [ Ast.Insert _; Ast.Find _; Ast.Count _ ] -> ()
  | Ok qs -> Alcotest.failf "got %d queries" (List.length qs)
  | Error e -> Alcotest.fail e

let test_parse_script_error_location () =
  match Parser.parse_script "count R; garbage here" with
  | Error e ->
      Alcotest.(check bool) "mentions the bad line" true
        (String.length e > 0 &&
         String.sub e 0 3 = "in ")
  | Ok _ -> Alcotest.fail "script accepted garbage"

(* -- pretty-printer round trip (property) ------------------------------------- *)

let gen_value =
  QCheck2.Gen.(
    oneof
      [ map (fun i -> Value.Int i) (int_range (-100) 100);
        map (fun s -> Value.Str s)
          (string_size ~gen:(char_range 'a' 'z') (int_range 0 8));
        map (fun b -> Value.Bool b) bool ])

let keywords = Lexer.keywords

let gen_ident =
  (* Identifiers must not collide with keywords or the round trip breaks
     for the wrong reason. *)
  QCheck2.Gen.(
    map2
      (fun c rest ->
        let s = String.make 1 c ^ rest in
        if List.mem s keywords then s ^ "x" else s)
      (char_range 'a' 'z')
      (string_size ~gen:(char_range 'a' 'z') (int_range 0 6)))

let gen_cmp = QCheck2.Gen.oneofl [ Ast.Eq; Ast.Ne; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge ]

let gen_pred =
  QCheck2.Gen.(
    sized @@ fix (fun self n ->
        if n <= 1 then
          map3 (fun c op v -> Ast.Cmp (c, op, v)) gen_ident gen_cmp gen_value
        else
          oneof
            [ map3 (fun c op v -> Ast.Cmp (c, op, v)) gen_ident gen_cmp gen_value;
              map2 (fun a b -> Ast.And (a, b)) (self (n / 2)) (self (n / 2));
              map2 (fun a b -> Ast.Or (a, b)) (self (n / 2)) (self (n / 2));
              map (fun a -> Ast.Not a) (self (n - 1)) ]))

let gen_query =
  QCheck2.Gen.(
    oneof
      [ map2
          (fun rel values -> Ast.Insert { rel; values })
          gen_ident
          (list_size (int_range 1 4) gen_value);
        map2 (fun rel key -> Ast.Find { rel; key }) gen_ident gen_value;
        map2 (fun rel key -> Ast.Delete { rel; key }) gen_ident gen_value;
        map3
          (fun rel cols where -> Ast.Select { rel; cols; where })
          gen_ident
          (oneof [ return None;
                   map (fun cs -> Some cs) (list_size (int_range 1 3) gen_ident) ])
          gen_pred;
        map2 (fun rel where -> Ast.Count { rel; where }) gen_ident
          (oneof [ QCheck2.Gen.return Ast.True; gen_pred ]);
        map2
          (fun (agg, rel) (col, where) -> Ast.Aggregate { agg; rel; col; where })
          (pair (oneofl [ Ast.Sum; Ast.Min; Ast.Max ]) gen_ident)
          (pair gen_ident gen_pred);
        map2
          (fun (rel, col) (value, where) ->
            Ast.Update { rel; col; value; where })
          (pair gen_ident gen_ident)
          (pair gen_value gen_pred);
        map3
          (fun left right on -> Ast.Join { left; right; on })
          gen_ident gen_ident (pair gen_ident gen_ident) ])

let prop_pp_parse_roundtrip =
  QCheck2.Test.make ~name:"parse (to_string q) = q" ~count:500 gen_query
    (fun q ->
      match Parser.parse (Ast.to_string q) with
      | Ok q' -> q' = q
      | Error e -> QCheck2.Test.fail_reportf "%s on %S" e (Ast.to_string q))

(* -- predicates ----------------------------------------------------------------- *)

let schema =
  Schema.make ~name:"R" ~cols:[ ("key", Schema.CInt); ("val", Schema.CStr) ]

let test_pred_compile () =
  let t = Tuple.make [ Value.Int 5; Value.Str "m" ] in
  let check_pred src expected =
    match parse_ok ("select * from R where " ^ src) with
    | Ast.Select { where; _ } -> (
        match Pred.eval schema where t with
        | Ok b -> Alcotest.(check bool) src expected b
        | Error e -> Alcotest.fail e)
    | _ -> Alcotest.fail "not a select"
  in
  check_pred "key = 5" true;
  check_pred "key != 5" false;
  check_pred "key > 4 and val = \"m\"" true;
  check_pred "key < 5 or val >= \"a\"" true;
  check_pred "not key <= 5" false;
  check_pred "true" true

let test_aggregate_compile () =
  let rows =
    [ Tuple.make [ Value.Int 1; Value.Str "a" ];
      Tuple.make [ Value.Int 5; Value.Str "b" ];
      Tuple.make [ Value.Int 3; Value.Str "c" ] ]
  in
  let run agg col where =
    match Pred.compile_aggregate schema agg col where with
    | Ok (step, finish) -> Ok (finish (List.fold_left step None rows))
    | Error e -> Error e
  in
  (match run Ast.Sum "key" Ast.True with
  | Ok (Some (Value.Int 9)) -> ()
  | _ -> Alcotest.fail "sum");
  (match run Ast.Min "key" Ast.True with
  | Ok (Some (Value.Int 1)) -> ()
  | _ -> Alcotest.fail "min");
  (match run Ast.Max "val" Ast.True with
  | Ok (Some (Value.Str "c")) -> ()
  | _ -> Alcotest.fail "max over strings");
  (match run Ast.Sum "key" (Ast.Cmp ("key", Ast.Gt, Value.Int 100)) with
  | Ok (Some (Value.Int 0)) -> ()
  | _ -> Alcotest.fail "empty sum is 0");
  (match run Ast.Min "key" (Ast.Cmp ("key", Ast.Gt, Value.Int 100)) with
  | Ok None -> ()
  | _ -> Alcotest.fail "empty min is nothing");
  (match run Ast.Sum "val" Ast.True with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "sum over strings accepted");
  match run Ast.Sum "ghost" Ast.True with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "ghost column accepted"

let test_pred_unknown_column () =
  match Pred.compile schema (Ast.Cmp ("ghost", Ast.Eq, Value.Int 1)) with
  | Error msg ->
      Alcotest.(check string) "message" "relation R has no column ghost" msg
  | Ok _ -> Alcotest.fail "compiled against a ghost column"

let test_update_compile () =
  (match Pred.compile_update schema "val" (Value.Str "n") Ast.True with
  | Ok rewrite -> (
      match rewrite (Tuple.make [ Value.Int 1; Value.Str "o" ]) with
      | Some t' ->
          Alcotest.(check bool) "rewritten" true
            (Value.equal (Tuple.get t' 1) (Value.Str "n"))
      | None -> Alcotest.fail "should rewrite")
  | Error e -> Alcotest.fail e);
  (match Pred.compile_update schema "key" (Value.Int 9) Ast.True with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "key column update accepted");
  (match Pred.compile_update schema "val" (Value.Int 9) Ast.True with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong type accepted");
  match Pred.compile_update schema "ghost" (Value.Int 9) Ast.True with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "ghost column accepted"

let () =
  Alcotest.run "query"
    [
      ( "lexer",
        [
          Alcotest.test_case "basic" `Quick test_lexer_basic;
          Alcotest.test_case "numbers and ops" `Quick
            test_lexer_numbers_and_ops;
          Alcotest.test_case "case-insensitive keywords" `Quick
            test_lexer_keywords_case_insensitive;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "insert" `Quick test_parse_insert;
          Alcotest.test_case "find/delete/count" `Quick
            test_parse_find_delete_count;
          Alcotest.test_case "select" `Quick test_parse_select;
          Alcotest.test_case "aggregate" `Quick test_parse_aggregate;
          Alcotest.test_case "update" `Quick test_parse_update;
          Alcotest.test_case "join" `Quick test_parse_join;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "script" `Quick test_parse_script;
          Alcotest.test_case "script error" `Quick
            test_parse_script_error_location;
        ] );
      ("round-trip", [ QCheck_alcotest.to_alcotest prop_pp_parse_roundtrip ]);
      ( "predicates",
        [
          Alcotest.test_case "compile/eval" `Quick test_pred_compile;
          Alcotest.test_case "aggregates" `Quick test_aggregate_compile;
          Alcotest.test_case "update compile" `Quick test_update_compile;
          Alcotest.test_case "unknown column" `Quick test_pred_unknown_column;
        ] );
    ]
