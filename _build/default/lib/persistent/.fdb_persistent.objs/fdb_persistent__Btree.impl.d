lib/persistent/btree.ml: Array Hashtbl List Meter Ordered
