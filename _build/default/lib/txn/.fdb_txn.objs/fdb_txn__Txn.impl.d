lib/txn/txn.ml: Algebra Database Fdb_query Fdb_relational Format List Option Printf Relation Result Schema String Tuple Value
